# Empty dependencies file for retention_map.
# This may be replaced when dependencies are built.
