file(REMOVE_RECURSE
  "CMakeFiles/retention_map.dir/retention_map.cc.o"
  "CMakeFiles/retention_map.dir/retention_map.cc.o.d"
  "retention_map"
  "retention_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retention_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
