file(REMOVE_RECURSE
  "CMakeFiles/softmc_repl.dir/softmc_repl.cc.o"
  "CMakeFiles/softmc_repl.dir/softmc_repl.cc.o.d"
  "softmc_repl"
  "softmc_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softmc_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
