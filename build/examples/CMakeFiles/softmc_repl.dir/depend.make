# Empty dependencies file for softmc_repl.
# This may be replaced when dependencies are built.
