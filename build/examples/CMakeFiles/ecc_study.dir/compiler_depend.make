# Empty compiler generated dependencies file for ecc_study.
# This may be replaced when dependencies are built.
