file(REMOVE_RECURSE
  "CMakeFiles/ecc_study.dir/ecc_study.cc.o"
  "CMakeFiles/ecc_study.dir/ecc_study.cc.o.d"
  "ecc_study"
  "ecc_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecc_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
