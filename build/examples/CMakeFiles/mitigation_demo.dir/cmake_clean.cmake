file(REMOVE_RECURSE
  "CMakeFiles/mitigation_demo.dir/mitigation_demo.cc.o"
  "CMakeFiles/mitigation_demo.dir/mitigation_demo.cc.o.d"
  "mitigation_demo"
  "mitigation_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitigation_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
