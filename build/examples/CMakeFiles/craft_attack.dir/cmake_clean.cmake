file(REMOVE_RECURSE
  "CMakeFiles/craft_attack.dir/craft_attack.cc.o"
  "CMakeFiles/craft_attack.dir/craft_attack.cc.o.d"
  "craft_attack"
  "craft_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/craft_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
