# Empty compiler generated dependencies file for craft_attack.
# This may be replaced when dependencies are built.
