file(REMOVE_RECURSE
  "CMakeFiles/bench_trrespass.dir/bench_trrespass.cc.o"
  "CMakeFiles/bench_trrespass.dir/bench_trrespass.cc.o.d"
  "bench_trrespass"
  "bench_trrespass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trrespass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
