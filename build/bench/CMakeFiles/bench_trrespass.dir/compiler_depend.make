# Empty compiler generated dependencies file for bench_trrespass.
# This may be replaced when dependencies are built.
