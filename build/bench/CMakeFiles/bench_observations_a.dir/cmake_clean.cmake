file(REMOVE_RECURSE
  "CMakeFiles/bench_observations_a.dir/bench_observations_a.cc.o"
  "CMakeFiles/bench_observations_a.dir/bench_observations_a.cc.o.d"
  "bench_observations_a"
  "bench_observations_a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_observations_a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
