# Empty dependencies file for bench_observations_a.
# This may be replaced when dependencies are built.
