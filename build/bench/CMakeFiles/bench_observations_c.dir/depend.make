# Empty dependencies file for bench_observations_c.
# This may be replaced when dependencies are built.
