file(REMOVE_RECURSE
  "CMakeFiles/bench_observations_c.dir/bench_observations_c.cc.o"
  "CMakeFiles/bench_observations_c.dir/bench_observations_c.cc.o.d"
  "bench_observations_c"
  "bench_observations_c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_observations_c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
