# Empty compiler generated dependencies file for bench_hcfirst.
# This may be replaced when dependencies are built.
