file(REMOVE_RECURSE
  "CMakeFiles/bench_hcfirst.dir/bench_hcfirst.cc.o"
  "CMakeFiles/bench_hcfirst.dir/bench_hcfirst.cc.o.d"
  "bench_hcfirst"
  "bench_hcfirst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hcfirst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
