file(REMOVE_RECURSE
  "CMakeFiles/bench_rowscout.dir/bench_rowscout.cc.o"
  "CMakeFiles/bench_rowscout.dir/bench_rowscout.cc.o.d"
  "bench_rowscout"
  "bench_rowscout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rowscout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
