# Empty compiler generated dependencies file for bench_rowscout.
# This may be replaced when dependencies are built.
