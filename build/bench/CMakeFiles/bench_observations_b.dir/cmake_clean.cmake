file(REMOVE_RECURSE
  "CMakeFiles/bench_observations_b.dir/bench_observations_b.cc.o"
  "CMakeFiles/bench_observations_b.dir/bench_observations_b.cc.o.d"
  "bench_observations_b"
  "bench_observations_b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_observations_b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
