# Empty dependencies file for bench_observations_b.
# This may be replaced when dependencies are built.
