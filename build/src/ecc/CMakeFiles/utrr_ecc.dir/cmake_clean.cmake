file(REMOVE_RECURSE
  "CMakeFiles/utrr_ecc.dir/chipkill.cc.o"
  "CMakeFiles/utrr_ecc.dir/chipkill.cc.o.d"
  "CMakeFiles/utrr_ecc.dir/ecc_analysis.cc.o"
  "CMakeFiles/utrr_ecc.dir/ecc_analysis.cc.o.d"
  "CMakeFiles/utrr_ecc.dir/galois.cc.o"
  "CMakeFiles/utrr_ecc.dir/galois.cc.o.d"
  "CMakeFiles/utrr_ecc.dir/reed_solomon.cc.o"
  "CMakeFiles/utrr_ecc.dir/reed_solomon.cc.o.d"
  "CMakeFiles/utrr_ecc.dir/secded.cc.o"
  "CMakeFiles/utrr_ecc.dir/secded.cc.o.d"
  "libutrr_ecc.a"
  "libutrr_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utrr_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
