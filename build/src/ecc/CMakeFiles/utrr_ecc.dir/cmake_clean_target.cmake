file(REMOVE_RECURSE
  "libutrr_ecc.a"
)
