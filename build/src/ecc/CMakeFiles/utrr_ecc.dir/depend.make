# Empty dependencies file for utrr_ecc.
# This may be replaced when dependencies are built.
