file(REMOVE_RECURSE
  "CMakeFiles/utrr_mitigation.dir/blockhammer.cc.o"
  "CMakeFiles/utrr_mitigation.dir/blockhammer.cc.o.d"
  "CMakeFiles/utrr_mitigation.dir/graphene.cc.o"
  "CMakeFiles/utrr_mitigation.dir/graphene.cc.o.d"
  "CMakeFiles/utrr_mitigation.dir/para.cc.o"
  "CMakeFiles/utrr_mitigation.dir/para.cc.o.d"
  "libutrr_mitigation.a"
  "libutrr_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utrr_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
