# Empty dependencies file for utrr_mitigation.
# This may be replaced when dependencies are built.
