
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mitigation/blockhammer.cc" "src/mitigation/CMakeFiles/utrr_mitigation.dir/blockhammer.cc.o" "gcc" "src/mitigation/CMakeFiles/utrr_mitigation.dir/blockhammer.cc.o.d"
  "/root/repo/src/mitigation/graphene.cc" "src/mitigation/CMakeFiles/utrr_mitigation.dir/graphene.cc.o" "gcc" "src/mitigation/CMakeFiles/utrr_mitigation.dir/graphene.cc.o.d"
  "/root/repo/src/mitigation/para.cc" "src/mitigation/CMakeFiles/utrr_mitigation.dir/para.cc.o" "gcc" "src/mitigation/CMakeFiles/utrr_mitigation.dir/para.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/utrr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
