file(REMOVE_RECURSE
  "libutrr_mitigation.a"
)
