# Empty dependencies file for utrr_dram.
# This may be replaced when dependencies are built.
