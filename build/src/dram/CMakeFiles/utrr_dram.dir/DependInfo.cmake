
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dram/bank.cc" "src/dram/CMakeFiles/utrr_dram.dir/bank.cc.o" "gcc" "src/dram/CMakeFiles/utrr_dram.dir/bank.cc.o.d"
  "/root/repo/src/dram/data_pattern.cc" "src/dram/CMakeFiles/utrr_dram.dir/data_pattern.cc.o" "gcc" "src/dram/CMakeFiles/utrr_dram.dir/data_pattern.cc.o.d"
  "/root/repo/src/dram/mapping.cc" "src/dram/CMakeFiles/utrr_dram.dir/mapping.cc.o" "gcc" "src/dram/CMakeFiles/utrr_dram.dir/mapping.cc.o.d"
  "/root/repo/src/dram/module.cc" "src/dram/CMakeFiles/utrr_dram.dir/module.cc.o" "gcc" "src/dram/CMakeFiles/utrr_dram.dir/module.cc.o.d"
  "/root/repo/src/dram/module_spec.cc" "src/dram/CMakeFiles/utrr_dram.dir/module_spec.cc.o" "gcc" "src/dram/CMakeFiles/utrr_dram.dir/module_spec.cc.o.d"
  "/root/repo/src/dram/physics.cc" "src/dram/CMakeFiles/utrr_dram.dir/physics.cc.o" "gcc" "src/dram/CMakeFiles/utrr_dram.dir/physics.cc.o.d"
  "/root/repo/src/dram/refresh_engine.cc" "src/dram/CMakeFiles/utrr_dram.dir/refresh_engine.cc.o" "gcc" "src/dram/CMakeFiles/utrr_dram.dir/refresh_engine.cc.o.d"
  "/root/repo/src/dram/row.cc" "src/dram/CMakeFiles/utrr_dram.dir/row.cc.o" "gcc" "src/dram/CMakeFiles/utrr_dram.dir/row.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/utrr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trr/CMakeFiles/utrr_trr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
