file(REMOVE_RECURSE
  "CMakeFiles/utrr_dram.dir/bank.cc.o"
  "CMakeFiles/utrr_dram.dir/bank.cc.o.d"
  "CMakeFiles/utrr_dram.dir/data_pattern.cc.o"
  "CMakeFiles/utrr_dram.dir/data_pattern.cc.o.d"
  "CMakeFiles/utrr_dram.dir/mapping.cc.o"
  "CMakeFiles/utrr_dram.dir/mapping.cc.o.d"
  "CMakeFiles/utrr_dram.dir/module.cc.o"
  "CMakeFiles/utrr_dram.dir/module.cc.o.d"
  "CMakeFiles/utrr_dram.dir/module_spec.cc.o"
  "CMakeFiles/utrr_dram.dir/module_spec.cc.o.d"
  "CMakeFiles/utrr_dram.dir/physics.cc.o"
  "CMakeFiles/utrr_dram.dir/physics.cc.o.d"
  "CMakeFiles/utrr_dram.dir/refresh_engine.cc.o"
  "CMakeFiles/utrr_dram.dir/refresh_engine.cc.o.d"
  "CMakeFiles/utrr_dram.dir/row.cc.o"
  "CMakeFiles/utrr_dram.dir/row.cc.o.d"
  "libutrr_dram.a"
  "libutrr_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utrr_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
