file(REMOVE_RECURSE
  "libutrr_dram.a"
)
