file(REMOVE_RECURSE
  "libutrr_core.a"
)
