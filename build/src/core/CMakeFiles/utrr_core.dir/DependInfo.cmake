
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/mapping_reveng.cc" "src/core/CMakeFiles/utrr_core.dir/mapping_reveng.cc.o" "gcc" "src/core/CMakeFiles/utrr_core.dir/mapping_reveng.cc.o.d"
  "/root/repo/src/core/retention_profiler.cc" "src/core/CMakeFiles/utrr_core.dir/retention_profiler.cc.o" "gcc" "src/core/CMakeFiles/utrr_core.dir/retention_profiler.cc.o.d"
  "/root/repo/src/core/reveng.cc" "src/core/CMakeFiles/utrr_core.dir/reveng.cc.o" "gcc" "src/core/CMakeFiles/utrr_core.dir/reveng.cc.o.d"
  "/root/repo/src/core/row_group.cc" "src/core/CMakeFiles/utrr_core.dir/row_group.cc.o" "gcc" "src/core/CMakeFiles/utrr_core.dir/row_group.cc.o.d"
  "/root/repo/src/core/row_scout.cc" "src/core/CMakeFiles/utrr_core.dir/row_scout.cc.o" "gcc" "src/core/CMakeFiles/utrr_core.dir/row_scout.cc.o.d"
  "/root/repo/src/core/trr_analyzer.cc" "src/core/CMakeFiles/utrr_core.dir/trr_analyzer.cc.o" "gcc" "src/core/CMakeFiles/utrr_core.dir/trr_analyzer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/softmc/CMakeFiles/utrr_softmc.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/utrr_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/trr/CMakeFiles/utrr_trr.dir/DependInfo.cmake"
  "/root/repo/build/src/mitigation/CMakeFiles/utrr_mitigation.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/utrr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
