file(REMOVE_RECURSE
  "CMakeFiles/utrr_core.dir/mapping_reveng.cc.o"
  "CMakeFiles/utrr_core.dir/mapping_reveng.cc.o.d"
  "CMakeFiles/utrr_core.dir/retention_profiler.cc.o"
  "CMakeFiles/utrr_core.dir/retention_profiler.cc.o.d"
  "CMakeFiles/utrr_core.dir/reveng.cc.o"
  "CMakeFiles/utrr_core.dir/reveng.cc.o.d"
  "CMakeFiles/utrr_core.dir/row_group.cc.o"
  "CMakeFiles/utrr_core.dir/row_group.cc.o.d"
  "CMakeFiles/utrr_core.dir/row_scout.cc.o"
  "CMakeFiles/utrr_core.dir/row_scout.cc.o.d"
  "CMakeFiles/utrr_core.dir/trr_analyzer.cc.o"
  "CMakeFiles/utrr_core.dir/trr_analyzer.cc.o.d"
  "libutrr_core.a"
  "libutrr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utrr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
