# Empty dependencies file for utrr_core.
# This may be replaced when dependencies are built.
