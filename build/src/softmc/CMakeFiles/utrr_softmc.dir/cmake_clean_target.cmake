file(REMOVE_RECURSE
  "libutrr_softmc.a"
)
