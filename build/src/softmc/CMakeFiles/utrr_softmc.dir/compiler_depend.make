# Empty compiler generated dependencies file for utrr_softmc.
# This may be replaced when dependencies are built.
