
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/softmc/assembler.cc" "src/softmc/CMakeFiles/utrr_softmc.dir/assembler.cc.o" "gcc" "src/softmc/CMakeFiles/utrr_softmc.dir/assembler.cc.o.d"
  "/root/repo/src/softmc/command.cc" "src/softmc/CMakeFiles/utrr_softmc.dir/command.cc.o" "gcc" "src/softmc/CMakeFiles/utrr_softmc.dir/command.cc.o.d"
  "/root/repo/src/softmc/host.cc" "src/softmc/CMakeFiles/utrr_softmc.dir/host.cc.o" "gcc" "src/softmc/CMakeFiles/utrr_softmc.dir/host.cc.o.d"
  "/root/repo/src/softmc/timing_checker.cc" "src/softmc/CMakeFiles/utrr_softmc.dir/timing_checker.cc.o" "gcc" "src/softmc/CMakeFiles/utrr_softmc.dir/timing_checker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dram/CMakeFiles/utrr_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/mitigation/CMakeFiles/utrr_mitigation.dir/DependInfo.cmake"
  "/root/repo/build/src/trr/CMakeFiles/utrr_trr.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/utrr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
