file(REMOVE_RECURSE
  "CMakeFiles/utrr_softmc.dir/assembler.cc.o"
  "CMakeFiles/utrr_softmc.dir/assembler.cc.o.d"
  "CMakeFiles/utrr_softmc.dir/command.cc.o"
  "CMakeFiles/utrr_softmc.dir/command.cc.o.d"
  "CMakeFiles/utrr_softmc.dir/host.cc.o"
  "CMakeFiles/utrr_softmc.dir/host.cc.o.d"
  "CMakeFiles/utrr_softmc.dir/timing_checker.cc.o"
  "CMakeFiles/utrr_softmc.dir/timing_checker.cc.o.d"
  "libutrr_softmc.a"
  "libutrr_softmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utrr_softmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
