
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trr/trr.cc" "src/trr/CMakeFiles/utrr_trr.dir/trr.cc.o" "gcc" "src/trr/CMakeFiles/utrr_trr.dir/trr.cc.o.d"
  "/root/repo/src/trr/vendor_a.cc" "src/trr/CMakeFiles/utrr_trr.dir/vendor_a.cc.o" "gcc" "src/trr/CMakeFiles/utrr_trr.dir/vendor_a.cc.o.d"
  "/root/repo/src/trr/vendor_b.cc" "src/trr/CMakeFiles/utrr_trr.dir/vendor_b.cc.o" "gcc" "src/trr/CMakeFiles/utrr_trr.dir/vendor_b.cc.o.d"
  "/root/repo/src/trr/vendor_c.cc" "src/trr/CMakeFiles/utrr_trr.dir/vendor_c.cc.o" "gcc" "src/trr/CMakeFiles/utrr_trr.dir/vendor_c.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/utrr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
