file(REMOVE_RECURSE
  "CMakeFiles/utrr_trr.dir/trr.cc.o"
  "CMakeFiles/utrr_trr.dir/trr.cc.o.d"
  "CMakeFiles/utrr_trr.dir/vendor_a.cc.o"
  "CMakeFiles/utrr_trr.dir/vendor_a.cc.o.d"
  "CMakeFiles/utrr_trr.dir/vendor_b.cc.o"
  "CMakeFiles/utrr_trr.dir/vendor_b.cc.o.d"
  "CMakeFiles/utrr_trr.dir/vendor_c.cc.o"
  "CMakeFiles/utrr_trr.dir/vendor_c.cc.o.d"
  "libutrr_trr.a"
  "libutrr_trr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utrr_trr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
