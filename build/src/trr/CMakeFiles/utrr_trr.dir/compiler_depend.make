# Empty compiler generated dependencies file for utrr_trr.
# This may be replaced when dependencies are built.
