file(REMOVE_RECURSE
  "libutrr_trr.a"
)
