# Empty dependencies file for utrr_attack.
# This may be replaced when dependencies are built.
