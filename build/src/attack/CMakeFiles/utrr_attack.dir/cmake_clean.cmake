file(REMOVE_RECURSE
  "CMakeFiles/utrr_attack.dir/evaluator.cc.o"
  "CMakeFiles/utrr_attack.dir/evaluator.cc.o.d"
  "CMakeFiles/utrr_attack.dir/pattern.cc.o"
  "CMakeFiles/utrr_attack.dir/pattern.cc.o.d"
  "CMakeFiles/utrr_attack.dir/sweep.cc.o"
  "CMakeFiles/utrr_attack.dir/sweep.cc.o.d"
  "CMakeFiles/utrr_attack.dir/trrespass.cc.o"
  "CMakeFiles/utrr_attack.dir/trrespass.cc.o.d"
  "libutrr_attack.a"
  "libutrr_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utrr_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
