
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/evaluator.cc" "src/attack/CMakeFiles/utrr_attack.dir/evaluator.cc.o" "gcc" "src/attack/CMakeFiles/utrr_attack.dir/evaluator.cc.o.d"
  "/root/repo/src/attack/pattern.cc" "src/attack/CMakeFiles/utrr_attack.dir/pattern.cc.o" "gcc" "src/attack/CMakeFiles/utrr_attack.dir/pattern.cc.o.d"
  "/root/repo/src/attack/sweep.cc" "src/attack/CMakeFiles/utrr_attack.dir/sweep.cc.o" "gcc" "src/attack/CMakeFiles/utrr_attack.dir/sweep.cc.o.d"
  "/root/repo/src/attack/trrespass.cc" "src/attack/CMakeFiles/utrr_attack.dir/trrespass.cc.o" "gcc" "src/attack/CMakeFiles/utrr_attack.dir/trrespass.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/utrr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/softmc/CMakeFiles/utrr_softmc.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/utrr_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/trr/CMakeFiles/utrr_trr.dir/DependInfo.cmake"
  "/root/repo/build/src/mitigation/CMakeFiles/utrr_mitigation.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/utrr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
