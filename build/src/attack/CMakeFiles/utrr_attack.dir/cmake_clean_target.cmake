file(REMOVE_RECURSE
  "libutrr_attack.a"
)
