file(REMOVE_RECURSE
  "CMakeFiles/utrr_common.dir/logging.cc.o"
  "CMakeFiles/utrr_common.dir/logging.cc.o.d"
  "CMakeFiles/utrr_common.dir/rng.cc.o"
  "CMakeFiles/utrr_common.dir/rng.cc.o.d"
  "CMakeFiles/utrr_common.dir/stats.cc.o"
  "CMakeFiles/utrr_common.dir/stats.cc.o.d"
  "CMakeFiles/utrr_common.dir/table.cc.o"
  "CMakeFiles/utrr_common.dir/table.cc.o.d"
  "libutrr_common.a"
  "libutrr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utrr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
