file(REMOVE_RECURSE
  "libutrr_common.a"
)
