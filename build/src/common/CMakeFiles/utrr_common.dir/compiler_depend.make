# Empty compiler generated dependencies file for utrr_common.
# This may be replaced when dependencies are built.
