# Empty dependencies file for test_host_protocol.
# This may be replaced when dependencies are built.
