file(REMOVE_RECURSE
  "CMakeFiles/test_host_protocol.dir/test_host_protocol.cc.o"
  "CMakeFiles/test_host_protocol.dir/test_host_protocol.cc.o.d"
  "test_host_protocol"
  "test_host_protocol.pdb"
  "test_host_protocol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_host_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
