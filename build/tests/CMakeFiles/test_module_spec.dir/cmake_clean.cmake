file(REMOVE_RECURSE
  "CMakeFiles/test_module_spec.dir/test_module_spec.cc.o"
  "CMakeFiles/test_module_spec.dir/test_module_spec.cc.o.d"
  "test_module_spec"
  "test_module_spec.pdb"
  "test_module_spec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_module_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
