# Empty compiler generated dependencies file for test_patterns_unit.
# This may be replaced when dependencies are built.
