file(REMOVE_RECURSE
  "CMakeFiles/test_patterns_unit.dir/test_patterns_unit.cc.o"
  "CMakeFiles/test_patterns_unit.dir/test_patterns_unit.cc.o.d"
  "test_patterns_unit"
  "test_patterns_unit.pdb"
  "test_patterns_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_patterns_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
