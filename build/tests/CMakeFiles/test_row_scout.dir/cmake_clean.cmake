file(REMOVE_RECURSE
  "CMakeFiles/test_row_scout.dir/test_row_scout.cc.o"
  "CMakeFiles/test_row_scout.dir/test_row_scout.cc.o.d"
  "test_row_scout"
  "test_row_scout.pdb"
  "test_row_scout[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_row_scout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
