# Empty dependencies file for test_row_scout.
# This may be replaced when dependencies are built.
