file(REMOVE_RECURSE
  "CMakeFiles/test_trrespass.dir/test_trrespass.cc.o"
  "CMakeFiles/test_trrespass.dir/test_trrespass.cc.o.d"
  "test_trrespass"
  "test_trrespass.pdb"
  "test_trrespass[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trrespass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
