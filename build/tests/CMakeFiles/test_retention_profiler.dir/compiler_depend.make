# Empty compiler generated dependencies file for test_retention_profiler.
# This may be replaced when dependencies are built.
