file(REMOVE_RECURSE
  "CMakeFiles/test_retention_profiler.dir/test_retention_profiler.cc.o"
  "CMakeFiles/test_retention_profiler.dir/test_retention_profiler.cc.o.d"
  "test_retention_profiler"
  "test_retention_profiler.pdb"
  "test_retention_profiler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_retention_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
