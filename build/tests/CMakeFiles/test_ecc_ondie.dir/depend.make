# Empty dependencies file for test_ecc_ondie.
# This may be replaced when dependencies are built.
