file(REMOVE_RECURSE
  "CMakeFiles/test_ecc_ondie.dir/test_ecc_ondie.cc.o"
  "CMakeFiles/test_ecc_ondie.dir/test_ecc_ondie.cc.o.d"
  "test_ecc_ondie"
  "test_ecc_ondie.pdb"
  "test_ecc_ondie[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecc_ondie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
