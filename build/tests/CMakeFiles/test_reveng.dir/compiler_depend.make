# Empty compiler generated dependencies file for test_reveng.
# This may be replaced when dependencies are built.
