# Empty compiler generated dependencies file for test_ecc_galois.
# This may be replaced when dependencies are built.
