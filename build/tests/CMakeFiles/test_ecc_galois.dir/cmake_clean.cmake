file(REMOVE_RECURSE
  "CMakeFiles/test_ecc_galois.dir/test_ecc_galois.cc.o"
  "CMakeFiles/test_ecc_galois.dir/test_ecc_galois.cc.o.d"
  "test_ecc_galois"
  "test_ecc_galois.pdb"
  "test_ecc_galois[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecc_galois.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
