file(REMOVE_RECURSE
  "CMakeFiles/test_row_group.dir/test_row_group.cc.o"
  "CMakeFiles/test_row_group.dir/test_row_group.cc.o.d"
  "test_row_group"
  "test_row_group.pdb"
  "test_row_group[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_row_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
