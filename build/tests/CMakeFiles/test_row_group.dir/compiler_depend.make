# Empty compiler generated dependencies file for test_row_group.
# This may be replaced when dependencies are built.
