# Empty dependencies file for test_ecc_chipkill.
# This may be replaced when dependencies are built.
