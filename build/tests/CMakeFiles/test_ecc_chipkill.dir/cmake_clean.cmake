file(REMOVE_RECURSE
  "CMakeFiles/test_ecc_chipkill.dir/test_ecc_chipkill.cc.o"
  "CMakeFiles/test_ecc_chipkill.dir/test_ecc_chipkill.cc.o.d"
  "test_ecc_chipkill"
  "test_ecc_chipkill.pdb"
  "test_ecc_chipkill[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecc_chipkill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
