# Empty dependencies file for test_ecc_rs.
# This may be replaced when dependencies are built.
