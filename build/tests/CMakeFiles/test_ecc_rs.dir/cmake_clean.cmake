file(REMOVE_RECURSE
  "CMakeFiles/test_ecc_rs.dir/test_ecc_rs.cc.o"
  "CMakeFiles/test_ecc_rs.dir/test_ecc_rs.cc.o.d"
  "test_ecc_rs"
  "test_ecc_rs.pdb"
  "test_ecc_rs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecc_rs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
