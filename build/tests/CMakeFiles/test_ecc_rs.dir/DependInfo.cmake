
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ecc_rs.cc" "tests/CMakeFiles/test_ecc_rs.dir/test_ecc_rs.cc.o" "gcc" "tests/CMakeFiles/test_ecc_rs.dir/test_ecc_rs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attack/CMakeFiles/utrr_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/utrr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/utrr_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/mitigation/CMakeFiles/utrr_mitigation.dir/DependInfo.cmake"
  "/root/repo/build/src/softmc/CMakeFiles/utrr_softmc.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/utrr_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/trr/CMakeFiles/utrr_trr.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/utrr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
