# Empty compiler generated dependencies file for test_refresh_engine.
# This may be replaced when dependencies are built.
