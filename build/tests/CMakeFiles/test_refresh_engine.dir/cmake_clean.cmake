file(REMOVE_RECURSE
  "CMakeFiles/test_refresh_engine.dir/test_refresh_engine.cc.o"
  "CMakeFiles/test_refresh_engine.dir/test_refresh_engine.cc.o.d"
  "test_refresh_engine"
  "test_refresh_engine.pdb"
  "test_refresh_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_refresh_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
