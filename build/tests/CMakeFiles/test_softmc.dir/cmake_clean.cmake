file(REMOVE_RECURSE
  "CMakeFiles/test_softmc.dir/test_softmc.cc.o"
  "CMakeFiles/test_softmc.dir/test_softmc.cc.o.d"
  "test_softmc"
  "test_softmc.pdb"
  "test_softmc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_softmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
