# Empty compiler generated dependencies file for test_data_pattern.
# This may be replaced when dependencies are built.
