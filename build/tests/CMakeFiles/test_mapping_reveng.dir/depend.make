# Empty dependencies file for test_mapping_reveng.
# This may be replaced when dependencies are built.
