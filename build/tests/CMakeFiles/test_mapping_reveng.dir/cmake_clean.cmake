file(REMOVE_RECURSE
  "CMakeFiles/test_mapping_reveng.dir/test_mapping_reveng.cc.o"
  "CMakeFiles/test_mapping_reveng.dir/test_mapping_reveng.cc.o.d"
  "test_mapping_reveng"
  "test_mapping_reveng.pdb"
  "test_mapping_reveng[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mapping_reveng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
