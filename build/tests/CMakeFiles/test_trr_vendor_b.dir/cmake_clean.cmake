file(REMOVE_RECURSE
  "CMakeFiles/test_trr_vendor_b.dir/test_trr_vendor_b.cc.o"
  "CMakeFiles/test_trr_vendor_b.dir/test_trr_vendor_b.cc.o.d"
  "test_trr_vendor_b"
  "test_trr_vendor_b.pdb"
  "test_trr_vendor_b[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trr_vendor_b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
