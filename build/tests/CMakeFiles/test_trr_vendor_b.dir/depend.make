# Empty dependencies file for test_trr_vendor_b.
# This may be replaced when dependencies are built.
