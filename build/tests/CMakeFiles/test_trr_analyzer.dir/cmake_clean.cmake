file(REMOVE_RECURSE
  "CMakeFiles/test_trr_analyzer.dir/test_trr_analyzer.cc.o"
  "CMakeFiles/test_trr_analyzer.dir/test_trr_analyzer.cc.o.d"
  "test_trr_analyzer"
  "test_trr_analyzer.pdb"
  "test_trr_analyzer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trr_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
