# Empty dependencies file for test_trr_analyzer.
# This may be replaced when dependencies are built.
