# Empty compiler generated dependencies file for test_trr_vendor_a.
# This may be replaced when dependencies are built.
