file(REMOVE_RECURSE
  "CMakeFiles/test_trr_vendor_a.dir/test_trr_vendor_a.cc.o"
  "CMakeFiles/test_trr_vendor_a.dir/test_trr_vendor_a.cc.o.d"
  "test_trr_vendor_a"
  "test_trr_vendor_a.pdb"
  "test_trr_vendor_a[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trr_vendor_a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
