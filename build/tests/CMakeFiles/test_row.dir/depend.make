# Empty dependencies file for test_row.
# This may be replaced when dependencies are built.
