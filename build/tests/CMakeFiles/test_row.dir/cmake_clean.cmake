file(REMOVE_RECURSE
  "CMakeFiles/test_row.dir/test_row.cc.o"
  "CMakeFiles/test_row.dir/test_row.cc.o.d"
  "test_row"
  "test_row.pdb"
  "test_row[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_row.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
