file(REMOVE_RECURSE
  "CMakeFiles/test_ecc_secded.dir/test_ecc_secded.cc.o"
  "CMakeFiles/test_ecc_secded.dir/test_ecc_secded.cc.o.d"
  "test_ecc_secded"
  "test_ecc_secded.pdb"
  "test_ecc_secded[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecc_secded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
