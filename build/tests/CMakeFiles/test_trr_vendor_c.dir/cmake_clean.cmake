file(REMOVE_RECURSE
  "CMakeFiles/test_trr_vendor_c.dir/test_trr_vendor_c.cc.o"
  "CMakeFiles/test_trr_vendor_c.dir/test_trr_vendor_c.cc.o.d"
  "test_trr_vendor_c"
  "test_trr_vendor_c.pdb"
  "test_trr_vendor_c[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trr_vendor_c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
