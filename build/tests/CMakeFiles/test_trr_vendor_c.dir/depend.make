# Empty dependencies file for test_trr_vendor_c.
# This may be replaced when dependencies are built.
