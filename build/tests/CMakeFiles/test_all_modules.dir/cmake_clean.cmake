file(REMOVE_RECURSE
  "CMakeFiles/test_all_modules.dir/test_all_modules.cc.o"
  "CMakeFiles/test_all_modules.dir/test_all_modules.cc.o.d"
  "test_all_modules"
  "test_all_modules.pdb"
  "test_all_modules[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_all_modules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
