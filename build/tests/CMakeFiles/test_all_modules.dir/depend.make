# Empty dependencies file for test_all_modules.
# This may be replaced when dependencies are built.
