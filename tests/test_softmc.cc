#include <gtest/gtest.h>

#include "dram/module.hh"
#include "softmc/host.hh"

namespace utrr
{
namespace
{

ModuleSpec
smallSpec()
{
    ModuleSpec spec = *findModuleSpec("A5");
    spec.trr = TrrVersion::kNone;
    spec.rowsPerBank = 4 * 1024;
    spec.banks = 2;
    spec.remapsPerBank = 0;
    spec.scramble = RowScramble::kSequential;
    return spec;
}

struct HostFixture : public ::testing::Test
{
    HostFixture() : module(smallSpec(), 1), host(module) {}

    DramModule module;
    SoftMcHost host;
};

TEST_F(HostFixture, ClockAdvancesPerCommand)
{
    const Timing &t = host.timing();
    EXPECT_EQ(host.now(), 0);
    host.act(0, 10);
    EXPECT_EQ(host.now(), t.tRAS);
    host.pre(0);
    EXPECT_EQ(host.now(), t.tRAS + t.tRP);
    host.ref();
    EXPECT_EQ(host.now(), t.tRAS + t.tRP + t.tRFC);
}

TEST_F(HostFixture, HammerCycleTiming)
{
    host.hammer(0, 10, 100);
    EXPECT_EQ(host.now(), 100 * host.timing().hammerCycle());
    EXPECT_EQ(host.actCount(), 100u);
}

TEST_F(HostFixture, WriteReadRoundTrip)
{
    host.writeRow(0, 42, DataPattern::colStripe());
    const RowReadout readout = host.readRow(0, 42);
    EXPECT_EQ(readout.countFlipsVs(DataPattern::colStripe(), 42), 0);
}

TEST_F(HostFixture, WaitAdvancesWithoutCommands)
{
    host.wait(12'345);
    EXPECT_EQ(host.now(), 12'345);
    EXPECT_EQ(host.refCommandCount(), 0u);
}

TEST_F(HostFixture, WaitWithRefreshIssuesRefsAtDefaultRate)
{
    host.waitWithRefresh(78'000); // 10 tREFI
    EXPECT_EQ(host.refCommandCount(), 10u);
    EXPECT_GE(host.now(), 78'000);
}

TEST_F(HostFixture, RefAtDefaultRateSpacing)
{
    host.refAtDefaultRate(5);
    EXPECT_EQ(host.refCommandCount(), 5u);
    EXPECT_EQ(host.now(), 5 * host.timing().tREFI);
}

TEST_F(HostFixture, InterleavedHammerAlternates)
{
    // Interleaved hammering of two neighbours accumulates full-weight
    // disturbance on the victim between them.
    host.writeRow(0, 100, DataPattern::allOnes());
    host.hammerInterleaved({{0, 99}, {0, 101}}, {50, 50});
    const Row phys = module.toPhysical(0, 100);
    const double interleaved =
        module.bankAt(0).peekRow(phys)->hammerCharge();

    host.writeRow(0, 200, DataPattern::allOnes());
    host.hammerCascaded({{0, 199}, {0, 201}}, {50, 50});
    const double cascaded = module.bankAt(0)
                                .peekRow(module.toPhysical(0, 200))
                                ->hammerCharge();
    EXPECT_GT(interleaved, 1.3 * cascaded);
}

TEST_F(HostFixture, InterleavedHonoursPerRowCounts)
{
    host.hammerInterleaved({{0, 10}, {0, 400}}, {3, 7});
    EXPECT_EQ(host.actCount(), 10u);
}

TEST_F(HostFixture, MultiBankHammerBoundedByBankCycle)
{
    // 4 banks, one ACT per bank per round: the per-bank cycle time
    // dominates tFAW with default timing.
    const Time start = host.now();
    host.hammerMultiBank({{0, 1}, {1, 1}}, 10);
    EXPECT_EQ(host.now() - start, 10 * host.timing().hammerCycle());
    EXPECT_EQ(host.actCount(), 20u);
}

TEST_F(HostFixture, MultiBankHammerTfawBound)
{
    // With 8 "banks" (more than 4 ACTs per tFAW window can serve),
    // the tFAW bound kicks in when it exceeds the per-bank cycle.
    Timing timing;
    timing.tFAW = 400; // make tFAW dominate: 8 * 400 / 4 = 800 / round
    SoftMcHost slow_host(module, timing);
    std::vector<std::pair<Bank, Row>> rows;
    for (Bank b = 0; b < 2; ++b)
        rows.emplace_back(b, 1);
    const Time start = slow_host.now();
    slow_host.hammerMultiBank(rows, 5);
    EXPECT_EQ(slow_host.now() - start, 5 * 2 * 400 / 4);
}

TEST_F(HostFixture, ProgramExecutionCapturesReads)
{
    Program program;
    program.writeRow(0, 7, DataPattern::allOnes())
        .writeRow(0, 9, DataPattern::allZeros())
        .readRow(0, 7)
        .readRow(0, 9)
        .ref(2);
    const ExecResult result = host.execute(program);
    ASSERT_EQ(result.reads.size(), 2u);
    EXPECT_EQ(result.reads[0].row, 7);
    EXPECT_EQ(result.reads[0].readout.countFlipsVs(
                  DataPattern::allOnes(), 7),
              0);
    EXPECT_EQ(result.reads[1].row, 9);
    EXPECT_EQ(host.refCommandCount(), 2u);
    EXPECT_GT(result.endTime, result.startTime);
}

TEST_F(HostFixture, ProgramHammerAndWait)
{
    Program program;
    program.hammer(0, 3, 10).wait(1'000).waitWithRefresh(78'000);
    host.execute(program);
    EXPECT_EQ(host.actCount(), 10u);
    EXPECT_EQ(host.refCommandCount(), 10u);
}

TEST(Program, InstructionToString)
{
    Program program;
    program.act(1, 2).pre(1).ref().wait(5);
    const auto &instrs = program.instructions();
    ASSERT_EQ(instrs.size(), 4u);
    EXPECT_EQ(instrs[0].toString(), "ACT b1 r2");
    EXPECT_EQ(instrs[1].toString(), "PRE b1");
    EXPECT_EQ(instrs[2].toString(), "REF");
    EXPECT_EQ(instrs[3].toString(), "WAIT 5ns");
}

TEST(Program, CompositeSizes)
{
    Program program;
    program.writeRow(0, 1, DataPattern::allOnes());
    EXPECT_EQ(program.size(), 3u); // ACT + WR + PRE
    program.hammer(0, 2, 5);
    EXPECT_EQ(program.size(), 13u);
}

} // namespace
} // namespace utrr
