#include <gtest/gtest.h>

#include "dram/module.hh"
#include "softmc/compiler.hh"
#include "softmc/host.hh"

namespace utrr
{
namespace
{

ModuleSpec
smallSpec()
{
    ModuleSpec spec = *findModuleSpec("A5");
    spec.trr = TrrVersion::kNone;
    spec.rowsPerBank = 4 * 1024;
    spec.banks = 2;
    spec.remapsPerBank = 0;
    spec.scramble = RowScramble::kSequential;
    return spec;
}

struct HostFixture : public ::testing::Test
{
    HostFixture() : module(smallSpec(), 1), host(module) {}

    DramModule module;
    SoftMcHost host;
};

TEST_F(HostFixture, ClockAdvancesPerCommand)
{
    const Timing &t = host.timing();
    EXPECT_EQ(host.now(), 0);
    host.act(0, 10);
    EXPECT_EQ(host.now(), t.tRAS);
    host.pre(0);
    EXPECT_EQ(host.now(), t.tRAS + t.tRP);
    host.ref();
    EXPECT_EQ(host.now(), t.tRAS + t.tRP + t.tRFC);
}

TEST_F(HostFixture, HammerCycleTiming)
{
    host.hammer(0, 10, 100);
    EXPECT_EQ(host.now(), 100 * host.timing().hammerCycle());
    EXPECT_EQ(host.actCount(), 100u);
}

TEST_F(HostFixture, WriteReadRoundTrip)
{
    host.writeRow(0, 42, DataPattern::colStripe());
    const RowReadout readout = host.readRow(0, 42);
    EXPECT_EQ(readout.countFlipsVs(DataPattern::colStripe(), 42), 0);
}

TEST_F(HostFixture, WaitAdvancesWithoutCommands)
{
    host.wait(12'345);
    EXPECT_EQ(host.now(), 12'345);
    EXPECT_EQ(host.refCommandCount(), 0u);
}

TEST_F(HostFixture, WaitWithRefreshIssuesRefsAtDefaultRate)
{
    host.waitWithRefresh(78'000); // 10 tREFI
    EXPECT_EQ(host.refCommandCount(), 10u);
    EXPECT_GE(host.now(), 78'000);
}

TEST_F(HostFixture, RefAtDefaultRateSpacing)
{
    host.refAtDefaultRate(5);
    EXPECT_EQ(host.refCommandCount(), 5u);
    EXPECT_EQ(host.now(), 5 * host.timing().tREFI);
}

TEST_F(HostFixture, InterleavedHammerAlternates)
{
    // Interleaved hammering of two neighbours accumulates full-weight
    // disturbance on the victim between them.
    host.writeRow(0, 100, DataPattern::allOnes());
    host.hammerInterleaved({{0, 99}, {0, 101}}, {50, 50});
    const Row phys = module.toPhysical(0, 100);
    const double interleaved =
        module.bankAt(0).peekRow(phys)->hammerCharge();

    host.writeRow(0, 200, DataPattern::allOnes());
    host.hammerCascaded({{0, 199}, {0, 201}}, {50, 50});
    const double cascaded = module.bankAt(0)
                                .peekRow(module.toPhysical(0, 200))
                                ->hammerCharge();
    EXPECT_GT(interleaved, 1.3 * cascaded);
}

TEST_F(HostFixture, InterleavedHonoursPerRowCounts)
{
    host.hammerInterleaved({{0, 10}, {0, 400}}, {3, 7});
    EXPECT_EQ(host.actCount(), 10u);
}

TEST_F(HostFixture, MultiBankHammerBoundedByBankCycle)
{
    // 4 banks, one ACT per bank per round: the per-bank cycle time
    // dominates tFAW with default timing.
    const Time start = host.now();
    host.hammerMultiBank({{0, 1}, {1, 1}}, 10);
    EXPECT_EQ(host.now() - start, 10 * host.timing().hammerCycle());
    EXPECT_EQ(host.actCount(), 20u);
}

TEST_F(HostFixture, MultiBankHammerTfawBound)
{
    // With 8 "banks" (more than 4 ACTs per tFAW window can serve),
    // the tFAW bound kicks in when it exceeds the per-bank cycle.
    Timing timing;
    timing.tFAW = 400; // make tFAW dominate: 8 * 400 / 4 = 800 / round
    SoftMcHost slow_host(module, timing);
    std::vector<std::pair<Bank, Row>> rows;
    for (Bank b = 0; b < 2; ++b)
        rows.emplace_back(b, 1);
    const Time start = slow_host.now();
    slow_host.hammerMultiBank(rows, 5);
    EXPECT_EQ(slow_host.now() - start, 5 * 2 * 400 / 4);
}

TEST_F(HostFixture, ProgramExecutionCapturesReads)
{
    Program program;
    program.writeRow(0, 7, DataPattern::allOnes())
        .writeRow(0, 9, DataPattern::allZeros())
        .readRow(0, 7)
        .readRow(0, 9)
        .ref(2);
    const ExecResult result = host.execute(program);
    ASSERT_EQ(result.reads.size(), 2u);
    EXPECT_EQ(result.reads[0].row, 7);
    EXPECT_EQ(result.reads[0].readout.countFlipsVs(
                  DataPattern::allOnes(), 7),
              0);
    EXPECT_EQ(result.reads[1].row, 9);
    EXPECT_EQ(host.refCommandCount(), 2u);
    EXPECT_GT(result.endTime, result.startTime);
}

TEST_F(HostFixture, ProgramHammerAndWait)
{
    Program program;
    program.hammer(0, 3, 10).wait(1'000).waitWithRefresh(78'000);
    host.execute(program);
    EXPECT_EQ(host.actCount(), 10u);
    EXPECT_EQ(host.refCommandCount(), 10u);
}

TEST(Program, InstructionToString)
{
    Program program;
    program.act(1, 2).pre(1).ref().wait(5);
    const auto &instrs = program.instructions();
    ASSERT_EQ(instrs.size(), 4u);
    EXPECT_EQ(instrs[0].toString(), "ACT b1 r2");
    EXPECT_EQ(instrs[1].toString(), "PRE b1");
    EXPECT_EQ(instrs[2].toString(), "REF");
    EXPECT_EQ(instrs[3].toString(), "WAIT 5ns");
}

TEST(Program, CompositeSizes)
{
    Program program;
    program.writeRow(0, 1, DataPattern::allOnes());
    EXPECT_EQ(program.size(), 3u); // ACT + WR + PRE
    program.hammer(0, 2, 5);
    EXPECT_EQ(program.size(), 13u);
}

// ---------------------------------------------------------------------
// ProgramCompiler: fusion rules of the compiled tier (DESIGN.md §17).
// The tests below pin the *shape* of the lowered stream; bit-identical
// behaviour is pinned by the execution oracle and the conformance
// suite. They assume the clean tree (no UTRR_MUTATION build).
// ---------------------------------------------------------------------

#ifndef UTRR_MUTATION_FUSION_OFF_BY_ONE

TEST(ProgramCompiler, HammerLoopFusesIntoOneBatchOp)
{
    Program program;
    program.hammer(0, 42, 100); // 200 instructions: 100 × (ACT, PRE)
    const CompiledProgram compiled = ProgramCompiler::compile(program);
    ASSERT_EQ(compiled.ops.size(), 1u);
    EXPECT_EQ(compiled.ops[0].kind, CompiledOpKind::kHammer);
    EXPECT_EQ(compiled.ops[0].bank, 0);
    EXPECT_EQ(compiled.ops[0].row, 42);
    EXPECT_EQ(compiled.ops[0].count, 100);
    EXPECT_EQ(compiled.sourceSize, 200u);
    EXPECT_EQ(compiled.readCount, 0u);
}

TEST(ProgramCompiler, HammerFusionBreaksAtRowAndBankBoundaries)
{
    // Interleaved double-sided hammer: the ACT+PRE pairs alternate rows,
    // so no two consecutive pairs may fuse into one batch.
    Program program;
    for (int i = 0; i < 3; ++i) {
        program.hammer(0, 10, 1);
        program.hammer(1, 20, 1);
    }
    const CompiledProgram compiled = ProgramCompiler::compile(program);
    ASSERT_EQ(compiled.ops.size(), 6u);
    for (std::size_t i = 0; i < compiled.ops.size(); ++i) {
        SCOPED_TRACE(i);
        EXPECT_EQ(compiled.ops[i].kind, CompiledOpKind::kHammer);
        EXPECT_EQ(compiled.ops[i].count, 1);
        EXPECT_EQ(compiled.ops[i].bank, i % 2 == 0 ? 0 : 1);
        EXPECT_EQ(compiled.ops[i].row, i % 2 == 0 ? 10 : 20);
    }
}

TEST(ProgramCompiler, RowAccessesFuseAndPatternsIntern)
{
    Program program;
    program.writeRow(0, 5, DataPattern::allOnes());
    program.writeRow(0, 6, DataPattern::allOnes());
    program.writeRow(1, 7, DataPattern::checkerboard());
    program.readRow(0, 5);
    const CompiledProgram compiled = ProgramCompiler::compile(program);
    ASSERT_EQ(compiled.ops.size(), 4u);
    EXPECT_EQ(compiled.ops[0].kind, CompiledOpKind::kWriteRow);
    EXPECT_EQ(compiled.ops[1].kind, CompiledOpKind::kWriteRow);
    EXPECT_EQ(compiled.ops[2].kind, CompiledOpKind::kWriteRow);
    EXPECT_EQ(compiled.ops[3].kind, CompiledOpKind::kReadRow);
    EXPECT_EQ(compiled.ops[3].bank, 0);
    EXPECT_EQ(compiled.ops[3].row, 5);
    // The two allOnes writes share one interned pattern slot.
    ASSERT_EQ(compiled.patterns.size(), 2u);
    EXPECT_EQ(compiled.ops[0].patternIdx, compiled.ops[1].patternIdx);
    EXPECT_NE(compiled.ops[0].patternIdx, compiled.ops[2].patternIdx);
    EXPECT_EQ(compiled.readCount, 1u);
}

TEST(ProgramCompiler, RefRunsCollapseToOneBurst)
{
    Program program;
    program.ref(32).wait(100).ref();
    const CompiledProgram compiled = ProgramCompiler::compile(program);
    ASSERT_EQ(compiled.ops.size(), 3u);
    EXPECT_EQ(compiled.ops[0].kind, CompiledOpKind::kRefBurst);
    EXPECT_EQ(compiled.ops[0].count, 32);
    EXPECT_EQ(compiled.ops[1].kind, CompiledOpKind::kWait);
    EXPECT_EQ(compiled.ops[1].waitNs, 100);
    EXPECT_EQ(compiled.ops[2].kind, CompiledOpKind::kRefBurst);
    EXPECT_EQ(compiled.ops[2].count, 1);
}

TEST(ProgramCompiler, UnfusablePrefixPassesThroughOneToOne)
{
    // An open-row word write cannot fuse (the PRE is separated from the
    // ACT by WR + WRWORD): every command passes through unchanged.
    Program program;
    program.act(1, 300);
    program.wr(1, DataPattern::allZeros());
    program.wrWord(1, 3, 0xfeedULL);
    program.pre(1);
    program.waitWithRefresh(1'000'000);
    program.readRow(1, 300);
    const CompiledProgram compiled = ProgramCompiler::compile(program);
    ASSERT_EQ(compiled.ops.size(), 6u);
    EXPECT_EQ(compiled.ops[0].kind, CompiledOpKind::kAct);
    EXPECT_EQ(compiled.ops[1].kind, CompiledOpKind::kWr);
    EXPECT_EQ(compiled.ops[2].kind, CompiledOpKind::kWrWord);
    EXPECT_EQ(compiled.ops[2].wordIdx, 3);
    EXPECT_EQ(compiled.ops[2].value, 0xfeedULL);
    EXPECT_EQ(compiled.ops[3].kind, CompiledOpKind::kPre);
    EXPECT_EQ(compiled.ops[4].kind, CompiledOpKind::kWaitRef);
    EXPECT_EQ(compiled.ops[5].kind, CompiledOpKind::kReadRow);
    EXPECT_EQ(compiled.readCount, 1u);
}

#endif // !UTRR_MUTATION_FUSION_OFF_BY_ONE

TEST(ProgramCompiler, CompileIsDeterministic)
{
    Program program;
    program.writeRow(0, 1, DataPattern::random(3));
    program.hammer(0, 2, 7).ref(4).readRow(0, 1);
    const CompiledProgram a = ProgramCompiler::compile(program);
    const CompiledProgram b = ProgramCompiler::compile(program);
    ASSERT_EQ(a.ops.size(), b.ops.size());
    for (std::size_t i = 0; i < a.ops.size(); ++i) {
        SCOPED_TRACE(i);
        EXPECT_EQ(a.ops[i].kind, b.ops[i].kind);
        EXPECT_EQ(a.ops[i].bank, b.ops[i].bank);
        EXPECT_EQ(a.ops[i].row, b.ops[i].row);
        EXPECT_EQ(a.ops[i].count, b.ops[i].count);
        EXPECT_EQ(a.ops[i].patternIdx, b.ops[i].patternIdx);
    }
    EXPECT_EQ(a.patterns.size(), b.patterns.size());
    EXPECT_EQ(a.readCount, b.readCount);
    EXPECT_EQ(a.sourceSize, b.sourceSize);
}

TEST_F(HostFixture, CompiledAndInterpretedTiersMatchBitForBit)
{
    // One host per tier over identically-seeded silicon: reads, clock
    // and ACT accounting must agree exactly.
    DramModule module2(smallSpec(), 1);
    SoftMcHost interp(module2);
    host.setExecMode(ExecMode::kCompiled);
    interp.setExecMode(ExecMode::kInterpreted);

    Program program;
    program.writeRow(0, 500, DataPattern::allOnes());
    program.writeRow(0, 499, DataPattern::allZeros());
    program.writeRow(0, 501, DataPattern::allZeros());
    for (int i = 0; i < 2000; ++i) {
        program.hammer(0, 499, 1);
        program.hammer(0, 501, 1);
    }
    program.hammer(0, 499, 5000).hammer(0, 501, 5000);
    program.ref(16).readRow(0, 500);

    const ExecResult a = host.execute(program);
    const ExecResult b = interp.execute(program);
    EXPECT_EQ(host.now(), interp.now());
    EXPECT_EQ(host.actCount(), interp.actCount());
    ASSERT_EQ(a.reads.size(), b.reads.size());
    for (std::size_t i = 0; i < a.reads.size(); ++i) {
        SCOPED_TRACE(i);
        EXPECT_EQ(a.reads[i].bank, b.reads[i].bank);
        EXPECT_EQ(a.reads[i].row, b.reads[i].row);
        EXPECT_EQ(a.reads[i].when, b.reads[i].when);
        EXPECT_EQ(a.reads[i].readout.rawFlips(),
                  b.reads[i].readout.rawFlips());
    }
}

} // namespace
} // namespace utrr
