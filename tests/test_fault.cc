#include <gtest/gtest.h>

#include <cmath>

#include "dram/module.hh"
#include "fault/fault_injector.hh"
#include "softmc/host.hh"

namespace utrr
{
namespace
{

ModuleSpec
smallSpec()
{
    ModuleSpec spec = *findModuleSpec("A5");
    spec.rowsPerBank = 2 * 1024;
    spec.banks = 2;
    spec.remapsPerBank = 0;
    spec.scramble = RowScramble::kSequential;
    return spec;
}

TEST(FaultConfig, DisabledByDefault)
{
    FaultConfig cfg;
    EXPECT_FALSE(cfg.anyEnabled());
    FaultInjector injector(cfg, 1);
    EXPECT_FALSE(injector.enabled());
}

TEST(FaultConfig, ChaosDefaultsEnableEveryHook)
{
    const FaultConfig cfg = FaultConfig::chaosDefaults();
    EXPECT_TRUE(cfg.anyEnabled());
    EXPECT_GT(cfg.vrtFlipChancePerRead, 0.0);
    EXPECT_GT(cfg.readNoiseChancePerRead, 0.0);
    EXPECT_GT(cfg.refJitterChance, 0.0);
    EXPECT_GT(cfg.dropRefChance, 0.0);
    EXPECT_GT(cfg.dropWrChance, 0.0);
    EXPECT_GT(cfg.dropHammerActChance, 0.0);
    EXPECT_GT(cfg.tempStepIntervalNs, 0);
}

TEST(FaultConfig, EachRateAloneEnables)
{
    FaultConfig cfg;
    cfg.vrtFlipChancePerRead = 0.1;
    EXPECT_TRUE(cfg.anyEnabled());
    cfg = FaultConfig();
    cfg.tempStepIntervalNs = 1'000;
    EXPECT_TRUE(cfg.anyEnabled());
    cfg = FaultConfig();
    cfg.dropHammerActChance = 0.5;
    EXPECT_TRUE(cfg.anyEnabled());
}

TEST(FaultInjector, DropHooksFireAtRateOne)
{
    FaultConfig cfg;
    cfg.dropRefChance = 1.0;
    cfg.dropWrChance = 1.0;
    cfg.dropHammerActChance = 1.0;
    FaultInjector injector(cfg, 2);
    EXPECT_TRUE(injector.shouldDropRef(0));
    EXPECT_TRUE(injector.shouldDropWr(0, 10));
    EXPECT_TRUE(injector.shouldDropHammerAct(0, 5, 20));
    EXPECT_EQ(injector.stats().droppedRefs, 1u);
    EXPECT_EQ(injector.stats().droppedWrs, 1u);
    EXPECT_EQ(injector.stats().droppedHammerActs, 1u);
    EXPECT_EQ(injector.stats().droppedCommands(), 3u);
}

TEST(FaultInjector, DropHooksNeverFireAtRateZero)
{
    FaultInjector injector(FaultConfig{}, 2);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(injector.shouldDropRef(i));
        EXPECT_FALSE(injector.shouldDropWr(0, i));
        EXPECT_FALSE(injector.shouldDropHammerAct(0, 5, i));
    }
    EXPECT_EQ(injector.stats().droppedCommands(), 0u);
}

TEST(FaultInjector, RefJitterStaysWithinBound)
{
    FaultConfig cfg;
    cfg.refJitterChance = 1.0;
    cfg.refJitterMaxNs = 200;
    FaultInjector injector(cfg, 3);
    bool nonzero = false;
    for (int i = 0; i < 200; ++i) {
        const Time jitter = injector.refJitter(i);
        EXPECT_GE(jitter, -200);
        EXPECT_LE(jitter, 200);
        nonzero = nonzero || jitter != 0;
    }
    EXPECT_TRUE(nonzero);
    EXPECT_EQ(injector.stats().jitteredRefs, 200u);
}

TEST(FaultInjector, VrtFlipTogglesRowMembership)
{
    DramModule module(smallSpec(), 7);
    FaultConfig cfg;
    cfg.vrtFlipChancePerRead = 1.0;
    cfg.vrtScaleFactor = 3.0;
    FaultInjector injector(cfg, 4);

    injector.onRowRead(module, 0, 100, 0);
    EXPECT_EQ(injector.vrtFlippedRowCount(), 1u);
    injector.onRowRead(module, 0, 100, 10);
    EXPECT_EQ(injector.vrtFlippedRowCount(), 0u);
    injector.onRowRead(module, 1, 200, 20);
    EXPECT_EQ(injector.vrtFlippedRowCount(), 1u);
    EXPECT_EQ(injector.stats().vrtFlips, 3u);
}

TEST(FaultInjector, ReadNoiseInjectsBoundedBits)
{
    DramModule module(smallSpec(), 7);
    SoftMcHost host(module);
    host.writeRow(0, 50, DataPattern::allOnes());
    RowReadout readout = host.readRow(0, 50);
    EXPECT_TRUE(readout.rawFlips().empty());

    FaultConfig cfg;
    cfg.readNoiseChancePerRead = 1.0;
    cfg.readNoiseMaxBits = 2;
    FaultInjector injector(cfg, 5);
    injector.corruptReadout(readout, 0, 0);
    const std::size_t corrupted = readout.rawFlips().size();
    EXPECT_GE(corrupted, 1u);
    EXPECT_LE(corrupted, 2u);
    EXPECT_EQ(injector.stats().noiseBits, corrupted);
}

TEST(FaultInjector, TemperatureWalkStaysClamped)
{
    DramModule module(smallSpec(), 7);
    FaultConfig cfg;
    cfg.tempStepIntervalNs = 1'000;
    cfg.tempStepMaxFactor = 1.01;
    cfg.tempMaxDrift = 1.05;
    FaultInjector injector(cfg, 6);

    injector.onTimeAdvance(module, 0, 500'000);
    EXPECT_GT(injector.stats().tempSteps, 0u);
    EXPECT_GE(injector.temperatureScale(), 1.0 / 1.05 - 1e-12);
    EXPECT_LE(injector.temperatureScale(), 1.05 + 1e-12);
}

TEST(FaultInjector, MetricsExported)
{
    FaultConfig cfg;
    cfg.dropRefChance = 1.0;
    FaultInjector injector(cfg, 8);
    EXPECT_TRUE(injector.shouldDropRef(0));

    MetricsRegistry registry;
    injector.attachMetrics(&registry);
    // Attachment seeds already-accumulated tallies.
    EXPECT_EQ(registry.counter("fault.dropped_refs").value, 1u);
    EXPECT_TRUE(injector.shouldDropRef(1));
    EXPECT_EQ(registry.counter("fault.dropped_refs").value, 2u);
}

/**
 * The tentpole invariant: attaching an injector whose every rate is
 * zero must be bit-identical to not attaching one. Run a representative
 * experiment (write, hammer, refresh at default rate, retention wait,
 * read back) on two hosts and compare every observable.
 */
TEST(FaultInjector, RateZeroInjectorIsBitIdentical)
{
    const ModuleSpec spec = smallSpec();
    DramModule plain_module(spec, 99);
    DramModule faulty_module(spec, 99);
    SoftMcHost plain(plain_module);
    SoftMcHost faulty(faulty_module);
    FaultInjector injector(FaultConfig{}, 12345);
    faulty.attachFaultInjector(&injector);

    auto experiment = [](SoftMcHost &host) {
        std::vector<std::vector<Col>> observations;
        for (Row row = 40; row < 44; ++row)
            host.writeRow(0, row, DataPattern::colStripe());
        host.hammer(0, 41, 2'000);
        host.refAtDefaultRate(16);
        host.waitWithRefresh(50 * kNsPerMs);
        host.wait(800 * kNsPerMs);
        for (Row row = 40; row < 44; ++row)
            observations.push_back(host.readRow(0, row).rawFlips());
        return observations;
    };

    const auto expected = experiment(plain);
    const auto observed = experiment(faulty);
    EXPECT_EQ(expected, observed);
    EXPECT_EQ(plain.now(), faulty.now());
    EXPECT_EQ(plain.actCount(), faulty.actCount());
    EXPECT_EQ(plain.refCommandCount(), faulty.refCommandCount());
    EXPECT_EQ(injector.stats().droppedCommands(), 0u);
    EXPECT_EQ(injector.stats().vrtFlips, 0u);
    EXPECT_EQ(injector.stats().noiseBits, 0u);
}

TEST(Watchdog, ExpiresWithStructuredError)
{
    DramModule module(smallSpec(), 7);
    SoftMcHost host(module);
    host.wait(1'000);
    const Time armed_at = host.now();
    host.setWatchdogBudget(10'000);
    EXPECT_EQ(host.watchdogDeadline(), armed_at + 10'000);

    try {
        host.waitWithRefresh(10 * kNsPerMs);
        FAIL() << "watchdog did not fire";
    } catch (const WatchdogTimeout &e) {
        EXPECT_EQ(e.budgetNs, 10'000);
        EXPECT_EQ(e.deadlineNs, armed_at + 10'000);
        EXPECT_GT(e.nowNs, e.deadlineNs);
        EXPECT_EQ(e.actsIssued, host.actCount());
        EXPECT_EQ(e.refsIssued, host.refCommandCount());
        EXPECT_NE(std::string(e.what()).find("watchdog"),
                  std::string::npos);
    }

    // The host stays usable after disarming.
    host.clearWatchdog();
    EXPECT_EQ(host.watchdogDeadline(), -1);
    host.writeRow(0, 10, DataPattern::allOnes());
    EXPECT_TRUE(host.readRow(0, 10).rawFlips().empty());
}

TEST(Watchdog, GenerousBudgetNeverFires)
{
    DramModule module(smallSpec(), 7);
    SoftMcHost host(module);
    host.setWatchdogBudget(3'600ll * 1'000'000'000);
    host.writeRow(0, 10, DataPattern::allOnes());
    host.hammer(0, 11, 100);
    host.refAtDefaultRate(8);
    EXPECT_NO_THROW(host.waitWithRefresh(100 * kNsPerMs));
}

} // namespace
} // namespace utrr
