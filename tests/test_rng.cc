#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hh"

namespace utrr
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 10'000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    Rng rng(9);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2'000; ++i) {
        const std::int64_t v = rng.uniformInt(3, 10);
        ASSERT_GE(v, 3);
        ASSERT_LE(v, 10);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, ChanceEdgeCases)
{
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 20'000; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 20'000.0, 0.25, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 20'000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, GaussianScaled)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 10'000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(5.0, 2.0);
    EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, LogNormalMedian)
{
    Rng rng(19);
    int below = 0;
    const int n = 10'000;
    for (int i = 0; i < n; ++i)
        below += rng.logNormal(0.0, 0.6) < 1.0 ? 1 : 0;
    // Median of exp(N(0, s)) is 1.
    EXPECT_NEAR(below / static_cast<double>(n), 0.5, 0.03);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(23);
    double sum = 0.0;
    const int n = 20'000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(3.0);
    EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, ForkIsIndependentOfParentUsage)
{
    Rng a(42);
    Rng fork1 = a.fork(1);
    // Forks with the same stream id from the same state match.
    Rng b(42);
    Rng fork2 = b.fork(1);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(fork1.next(), fork2.next());
}

TEST(Rng, ForkStreamsDiffer)
{
    Rng a(42);
    Rng f1 = a.fork(1);
    Rng f2 = a.fork(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += f1.next() == f2.next() ? 1 : 0;
    EXPECT_LT(equal, 3);
}

TEST(Rng, HashMixIsDeterministic)
{
    EXPECT_EQ(hashMix(12345), hashMix(12345));
    EXPECT_NE(hashMix(12345), hashMix(12346));
}

TEST(Rng, HashStringIsStable)
{
    // FNV-1a is a fixed algorithm: pin a known value so a silent change
    // of the hash (which would reshuffle every named stream) is caught.
    EXPECT_EQ(hashString(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(hashString("fault.vrt"), hashString("fault.vrt"));
    EXPECT_NE(hashString("fault.vrt"), hashString("fault.noise"));
}

TEST(Rng, NamedForkIsDeterministic)
{
    Rng a(7);
    Rng b(7);
    Rng fa = a.fork("fault.vrt");
    Rng fb = b.fork("fault.vrt");
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(fa.next(), fb.next());
}

TEST(Rng, NamedForkStreamsDiffer)
{
    Rng a(7);
    Rng f1 = a.fork("fault.vrt");
    Rng f2 = a.fork("fault.noise");
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += f1.next() == f2.next() ? 1 : 0;
    EXPECT_LT(equal, 3);
}

TEST(Rng, NamedForkMatchesNumericForkOfHash)
{
    Rng a(7);
    Rng b(7);
    Rng named = a.fork("stream");
    Rng numeric = b.fork(hashString("stream"));
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(named.next(), numeric.next());
}

} // namespace
} // namespace utrr
