#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/row_scout.hh"
#include "core/trr_analyzer.hh"
#include "dram/module.hh"
#include "obs/json.hh"
#include "obs/report.hh"
#include "softmc/host.hh"

namespace utrr
{
namespace
{

TEST(Json, ScalarRoundTrip)
{
    EXPECT_EQ(Json::parse("42")->asInt(), 42);
    EXPECT_EQ(Json::parse("-7")->asInt(), -7);
    EXPECT_DOUBLE_EQ(Json::parse("2.5")->asNumber(), 2.5);
    EXPECT_TRUE(Json::parse("true")->asBool());
    EXPECT_FALSE(Json::parse("false")->asBool());
    EXPECT_TRUE(Json::parse("null")->isNull());
    EXPECT_EQ(Json::parse("\"hi\"")->asString(), "hi");
}

TEST(Json, LargeIntegersSurviveExactly)
{
    const std::int64_t big = 123'456'789'012'345'678LL;
    Json value(big);
    const auto parsed = Json::parse(value.dump());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->asInt(), big);
}

TEST(Json, StringEscapesRoundTrip)
{
    const std::string nasty = "line\nbreak \"quoted\" back\\slash \t tab";
    Json value(nasty);
    const auto parsed = Json::parse(value.dump());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->asString(), nasty);
}

TEST(Json, NestedDocumentRoundTrip)
{
    Json root = Json::object();
    root["name"] = Json("experiment");
    Json rounds = Json::array();
    for (int i = 0; i < 3; ++i) {
        Json round = Json::object();
        round["refs"] = Json(i * 10);
        round["hit"] = Json(i % 2 == 0);
        rounds.push(std::move(round));
    }
    root["rounds"] = std::move(rounds);

    for (int indent : {-1, 1, 4}) {
        const auto parsed = Json::parse(root.dump(indent));
        ASSERT_TRUE(parsed.has_value()) << "indent " << indent;
        const Json *r = parsed->find("rounds");
        ASSERT_NE(r, nullptr);
        ASSERT_EQ(r->size(), 3u);
        EXPECT_EQ(r->at(2).find("refs")->asInt(), 20);
        EXPECT_TRUE(r->at(0).find("hit")->asBool());
    }
}

TEST(Json, ObjectKeysKeepInsertionOrder)
{
    Json root = Json::object();
    root["zebra"] = Json(1);
    root["alpha"] = Json(2);
    ASSERT_EQ(root.members().size(), 2u);
    EXPECT_EQ(root.members()[0].first, "zebra");
    EXPECT_EQ(root.members()[1].first, "alpha");
}

TEST(Json, MalformedInputsRejected)
{
    EXPECT_FALSE(Json::parse("").has_value());
    EXPECT_FALSE(Json::parse("{").has_value());
    EXPECT_FALSE(Json::parse("[1,]").has_value());
    EXPECT_FALSE(Json::parse("\"unterminated").has_value());
    EXPECT_FALSE(Json::parse("{\"a\" 1}").has_value());
    EXPECT_FALSE(Json::parse("42 trailing").has_value());
}

TEST(ExperimentReport, HasTheConventionalShape)
{
    ExperimentReport report("unit");
    report.setConfig("rows", Json(64));
    report.setSeed(41);
    Json round = Json::object();
    round["refs_after"] = Json(4);
    report.addRound(std::move(round));
    report.setResult("flips", Json(3));
    report.setTiming(1.5, 2'000);

    const auto parsed = Json::parse(report.dump());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->find("report")->asString(), "unit");
    EXPECT_EQ(parsed->find("config")->find("rows")->asInt(), 64);
    EXPECT_EQ(parsed->find("config")->find("seed")->asInt(), 41);
    ASSERT_EQ(parsed->find("rounds")->size(), 1u);
    EXPECT_EQ(parsed->find("results")->find("flips")->asInt(), 3);
    EXPECT_DOUBLE_EQ(parsed->find("timing")->find("wall_ms")->asNumber(),
                     1.5);
    EXPECT_EQ(parsed->find("timing")->find("sim_ns")->asInt(), 2'000);
}

TEST(ExperimentReport, WriteFileRoundTrips)
{
    ExperimentReport report("file_test");
    report.setResult("ok", Json(true));
    MetricsRegistry registry;
    registry.counter("dram.acts").inc(9);
    report.attachMetrics(registry);

    const std::string path =
        testing::TempDir() + "utrr_report_test.json";
    ASSERT_TRUE(report.writeFile(path));

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    const auto parsed = Json::parse(buffer.str());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(parsed->find("results")->find("ok")->asBool());
    EXPECT_EQ(parsed->find("metrics")
                  ->find("counters")
                  ->find("dram.acts")
                  ->asInt(),
              9);
    std::remove(path.c_str());
}

ModuleSpec
smallSpec(TrrVersion trr)
{
    ModuleSpec spec = *findModuleSpec("A5");
    spec.trr = trr;
    spec.rowsPerBank = 4 * 1024;
    spec.banks = 1;
    spec.remapsPerBank = 0;
    spec.scramble = RowScramble::kSequential;
    return spec;
}

TEST(ExperimentReport, AnalyzerReportRecordsMonotonicRounds)
{
    DramModule module(smallSpec(TrrVersion::kATrr1), 41);
    SoftMcHost host(module);
    const DiscoveredMapping mapping =
        DiscoveredMapping::identity(module.spec().rowsPerBank);
    RowScoutConfig scout_cfg;
    scout_cfg.rowEnd = 2'048;
    scout_cfg.layout = RowGroupLayout::parse("R-R");
    scout_cfg.groupCount = 1;
    scout_cfg.consistencyChecks = 15;
    RowScout scout(host, mapping, scout_cfg);
    const auto groups = scout.scout();
    ASSERT_FALSE(groups.empty());

    TrrAnalyzer analyzer(host, mapping);
    TrrExperimentConfig cfg;
    cfg.aggressors = {{groups.front().gapPhysRows().front(), 2'000}};
    cfg.reset = TrrResetMode::kNone;
    cfg.rounds = 5;
    cfg.refsPerRound = 2;
    const TrrMultiResult result =
        analyzer.runExperimentMulti({groups.front()}, cfg);

    ASSERT_EQ(result.rounds.size(), 5u);
    for (std::size_t i = 1; i < result.rounds.size(); ++i) {
        EXPECT_GT(result.rounds[i].refsAfter,
                  result.rounds[i - 1].refsAfter);
        EXPECT_GT(result.rounds[i].actsAfter,
                  result.rounds[i - 1].actsAfter);
        EXPECT_GT(result.rounds[i].simAfter,
                  result.rounds[i - 1].simAfter);
    }
    EXPECT_EQ(result.rounds.back().refsAfter, result.refsAfter);
    EXPECT_GT(result.simNs, 0);

    ExperimentReport report = analyzer.makeReport(cfg, result);
    const auto parsed = Json::parse(report.dump());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->find("report")->asString(), "trr_analyzer");
    EXPECT_EQ(parsed->find("config")->find("rounds")->asInt(), 5);
    EXPECT_EQ(parsed->find("config")->find("seed")->asInt(), 41);
    ASSERT_EQ(parsed->find("rounds")->size(), 5u);
    const Json *groups_json = parsed->find("results")->find("groups");
    ASSERT_NE(groups_json, nullptr);
    ASSERT_EQ(groups_json->size(), 1u);
    EXPECT_EQ(groups_json->at(0).find("flips")->size(), 2u);

    // Row Scout emits the same report shape.
    ExperimentReport rs_report = scout.makeReport(groups);
    const auto rs_parsed = Json::parse(rs_report.dump());
    ASSERT_TRUE(rs_parsed.has_value());
    EXPECT_EQ(rs_parsed->find("report")->asString(), "row_scout");
    EXPECT_EQ(rs_parsed->find("results")->find("groups_found")->asInt(),
              1);
    EXPECT_GT(rs_parsed->find("results")->find("validations_run")->asInt(),
              0);
}

} // namespace
} // namespace utrr
