#include <gtest/gtest.h>

#include "core/retention_profiler.hh"
#include "dram/module.hh"

namespace utrr
{
namespace
{

ModuleSpec
smallSpec()
{
    ModuleSpec spec = *findModuleSpec("A5");
    spec.trr = TrrVersion::kNone;
    spec.rowsPerBank = 4 * 1024;
    spec.banks = 1;
    spec.remapsPerBank = 0;
    spec.scramble = RowScramble::kSequential;
    return spec;
}

TEST(RetentionProfiler, DistributionMatchesTheModel)
{
    DramModule module(smallSpec(), 61);
    SoftMcHost host(module);
    RetentionProfiler::Config cfg;
    cfg.rowEnd = 2'048;
    cfg.repeats = 1;
    RetentionProfiler profiler(host, cfg);
    const RetentionProfile profile = profiler.profile();

    EXPECT_EQ(profile.rowsProfiled, 2'048);
    // The substrate's weak-row fraction is 62% with retention <= 2.5 s,
    // but profiling with a single data pattern only observes the cells
    // charged under that pattern (true-cells for all-ones): roughly
    // three quarters of the weak rows are visible.
    EXPECT_NEAR(profile.weakFraction(), 0.48, 0.06);
    // Nothing fails at the 125 ms floor (clamp is 110 ms, but the
    // first bucket captures rows in (0, 125]): only a sliver.
    EXPECT_LT(profile.failedAtMin, profile.rowsProfiled / 20);
    // Histogram buckets are populated across the tested range.
    EXPECT_GE(profile.histogramMs.size(), 3u);
}

TEST(RetentionProfiler, VrtSuspectsDetected)
{
    DramModule module(smallSpec(), 62);
    SoftMcHost host(module);
    RetentionProfiler::Config cfg;
    cfg.rowEnd = 2'048;
    cfg.repeats = 4;
    RetentionProfiler profiler(host, cfg);
    const RetentionProfile profile = profiler.profile();
    // ~6% of weak rows carry a VRT cell; repeats catch a fraction of
    // them (those toggling near a tested boundary).
    EXPECT_GT(profile.vrtSuspects, 0);
    EXPECT_LT(profile.vrtSuspects, profile.rowsProfiled / 5);
}

TEST(RetentionProfiler, ColdModuleHasFewerWeakRows)
{
    // At 45 C retention is 16x longer: only the weakest tail (base
    // retention under ~250 ms at 85 C) still fails within the 4 s
    // horizon.
    RetentionModelConfig retention;
    retention.tempCelsius = 45.0;
    DramModule module(smallSpec(), 63, &retention);
    SoftMcHost host(module);
    RetentionProfiler::Config cfg;
    cfg.rowEnd = 1'024;
    cfg.repeats = 1;
    RetentionProfiler profiler(host, cfg);
    const RetentionProfile profile = profiler.profile();
    EXPECT_LT(profile.weakFraction(), 0.15);

    // And the hot module sees far more failures over the same range.
    DramModule hot_module(smallSpec(), 63);
    SoftMcHost hot_host(hot_module);
    RetentionProfiler hot_profiler(hot_host, cfg);
    EXPECT_GT(hot_profiler.profile().weakFraction(),
              3.0 * profile.weakFraction());
}

TEST(RetentionProfiler, HistogramTotalsAddUp)
{
    DramModule module(smallSpec(), 64);
    SoftMcHost host(module);
    RetentionProfiler::Config cfg;
    cfg.rowEnd = 512;
    cfg.repeats = 1;
    RetentionProfiler profiler(host, cfg);
    const RetentionProfile profile = profiler.profile();
    int in_histogram = 0;
    for (const auto &[bucket, count] : profile.histogramMs)
        in_histogram += count;
    EXPECT_EQ(in_histogram + profile.neverFailed,
              profile.rowsProfiled);
}

} // namespace
} // namespace utrr
