#include <gtest/gtest.h>

#include "attack/evaluator.hh"
#include "attack/pattern.hh"
#include "attack/sweep.hh"
#include "dram/module.hh"
#include "softmc/host.hh"

namespace utrr
{
namespace
{

struct PatternFixture : public ::testing::Test
{
    PatternFixture()
        : spec(*findModuleSpec("B8")), module(spec, 71), host(module),
          mapping(spec.scramble, spec.rowsPerBank)
    {
    }

    ModuleSpec spec;
    DramModule module;
    SoftMcHost host;
    DiscoveredMapping mapping;
};

TEST_F(PatternFixture, VendorBFrontLoadsAggressors)
{
    // Aggressors hammer right after the TRR-capable REF (window slot
    // 0), dummies fill the later slots.
    VendorBPattern pattern(0, 100, 102, {{1, 5'000}, {2, 5'000}}, 220,
                           4, host.timing());
    pattern.begin(host);

    const std::uint64_t acts0 = host.actCount();
    pattern.runSlot(host, 0);
    const std::uint64_t after0 = host.actCount();
    // Slot 0: up to 74 hammers per aggressor (capacity/2) + dummies.
    const std::uint64_t aggr_bank_acts =
        module.bankAt(0).actCount();
    EXPECT_GE(aggr_bank_acts, 140u);
    EXPECT_GT(after0, acts0);

    // By the last slot of the window the aggressor quota is exhausted:
    // only dummies hammer.
    pattern.runSlot(host, 1);
    pattern.runSlot(host, 2);
    const std::uint64_t bank0_before = module.bankAt(0).actCount();
    pattern.runSlot(host, 3);
    EXPECT_EQ(module.bankAt(0).actCount(), bank0_before);

    // A new window replenishes the quota.
    pattern.runSlot(host, 4);
    EXPECT_GT(module.bankAt(0).actCount(), bank0_before);
}

TEST_F(PatternFixture, VendorCBurstPrecedesAggressors)
{
    const ModuleSpec c_spec = *findModuleSpec("C9");
    DramModule c_module(c_spec, 72);
    SoftMcHost c_host(c_module);
    const Row dummy = 9'000;
    VendorCPattern pattern(0, 100, 102, dummy, /*window_acts=*/400,
                           /*trr_period=*/9, c_host.timing());
    pattern.begin(c_host);

    // Slot 0 and 1: first 400 ACTs go to the dummy; remaining budget
    // to the aggressors.
    pattern.runSlot(c_host, 0); // 149 dummy ACTs
    pattern.runSlot(c_host, 1); // 149 dummy ACTs
    pattern.runSlot(c_host, 2); // 102 dummy + 23 per aggressor
    const Row dummy_phys = c_module.toPhysical(0, dummy);
    // The dummy row itself was activated 400 times in this window.
    // (White-box check through the bank ACT counter is total-bank, so
    // check via the victim charge of the dummy's neighbour instead.)
    const RowState *neighbour =
        c_module.bankAt(0).peekRow(dummy_phys + 1);
    ASSERT_NE(neighbour, nullptr);
    EXPECT_GT(neighbour->hammerCharge(), 100.0);
}

TEST_F(PatternFixture, SingleAndManySidedActCounts)
{
    SingleSidedPattern single(0, 500, 10);
    const std::uint64_t before = host.actCount();
    single.runSlot(host, 0);
    EXPECT_EQ(host.actCount() - before, 10u);

    ManySidedPattern many(0, {600, 602, 604}, 5);
    const std::uint64_t before_many = host.actCount();
    many.runSlot(host, 0);
    EXPECT_EQ(host.actCount() - before_many, 15u);
    EXPECT_EQ(many.name(), "3-sided");
    EXPECT_EQ(many.aggressorRows().size(), 3u);
}

TEST_F(PatternFixture, EvaluatorKeepsRefCadenceUnderOverruns)
{
    // A pattern that overruns its slot (as if throttled) must lose
    // hammer slots, not stretch the REF cadence.
    class OverrunPattern : public AccessPattern
    {
      public:
        std::string name() const override { return "overrun"; }
        void
        runSlot(SoftMcHost &host, std::uint64_t) override
        {
            ++slotsRun;
            host.wait(3 * host.timing().tREFI); // 3x overrun
        }
        std::vector<std::pair<Bank, Row>>
        aggressorRows() const override
        {
            return {};
        }
        int slotsRun = 0;
    };

    OverrunPattern pattern;
    AttackEvaluator evaluator(host);
    const std::uint64_t refs_before = host.refCommandCount();
    evaluator.run(pattern, {{0, 50}}, 12);
    // All 12 REFs issued...
    EXPECT_EQ(host.refCommandCount() - refs_before, 12u);
    // ...but the pattern only got to run in a fraction of the slots.
    EXPECT_LE(pattern.slotsRun, 5);
}

TEST_F(PatternFixture, CustomVictimsForNormalModules)
{
    CustomPatternParams params = defaultCustomParams(spec);
    const auto victims = customPatternVictims(params, mapping, 5'000);
    ASSERT_EQ(victims.size(), 1u);
    EXPECT_EQ(mapping.toPhysical(victims[0]), 5'000);
}

TEST_F(PatternFixture, FarDummySelectionRespectsDistance)
{
    CustomPatternParams params = defaultCustomParams(spec);
    auto pattern = makeCustomPattern(params, host, mapping, 0, 5'000);
    pattern->begin(host);
    pattern->runSlot(host, 0);
    pattern->runSlot(host, 1);
    pattern->runSlot(host, 2);
    pattern->runSlot(host, 3);
    // No dummy activity may have disturbed the victim neighbourhood:
    // rows within +-2 of the victim got charge only from the two
    // aggressors.
    for (Row d : {-2, -1, 1, 2}) {
        const RowState *row =
            module.bankAt(0).peekRow(5'000 + d);
        if (row == nullptr)
            continue;
        const Row disturber = row->lastDisturber();
        if (disturber != kInvalidRow) {
            EXPECT_LE(std::abs(disturber - 5'000), 2)
                << "victim neighbourhood disturbed by row "
                << disturber;
        }
    }
}

} // namespace
} // namespace utrr
