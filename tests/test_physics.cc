#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "dram/physics.hh"

namespace utrr
{
namespace
{

PhysicsGenerator
makeGenerator(std::uint64_t seed = 1)
{
    return PhysicsGenerator(RetentionModelConfig{}, HammerModelConfig{},
                            seed, 64 * 1024);
}

TEST(Physics, DeterministicPerRow)
{
    const PhysicsGenerator gen = makeGenerator();
    const RowPhysics a = gen.generate(0, 1234);
    const RowPhysics b = gen.generate(0, 1234);
    ASSERT_EQ(a.weakCells.size(), b.weakCells.size());
    for (std::size_t i = 0; i < a.weakCells.size(); ++i) {
        EXPECT_EQ(a.weakCells[i].col, b.weakCells[i].col);
        EXPECT_EQ(a.weakCells[i].retention, b.weakCells[i].retention);
    }
    ASSERT_EQ(a.hammerCells.size(), b.hammerCells.size());
    EXPECT_EQ(a.hammerCells[0].threshold, b.hammerCells[0].threshold);
}

TEST(Physics, DifferentRowsDiffer)
{
    const PhysicsGenerator gen = makeGenerator();
    const RowPhysics a = gen.generate(0, 1);
    const RowPhysics b = gen.generate(0, 2);
    EXPECT_NE(a.minRetention(), b.minRetention());
}

TEST(Physics, DifferentBanksDiffer)
{
    const PhysicsGenerator gen = makeGenerator();
    EXPECT_NE(gen.generate(0, 7).minRetention(),
              gen.generate(1, 7).minRetention());
}

TEST(Physics, RetentionPrefixMatchesFullGeneration)
{
    const PhysicsGenerator gen = makeGenerator();
    const RowPhysics full = gen.generate(2, 99);
    const RowPhysics ret = gen.generateRetention(2, 99);
    ASSERT_EQ(full.weakCells.size(), ret.weakCells.size());
    for (std::size_t i = 0; i < ret.weakCells.size(); ++i)
        EXPECT_EQ(full.weakCells[i].retention,
                  ret.weakCells[i].retention);
    EXPECT_TRUE(ret.hammerCells.empty());
}

TEST(Physics, WeakCellsSortedByRetention)
{
    const PhysicsGenerator gen = makeGenerator();
    for (Row row = 0; row < 200; ++row) {
        const RowPhysics phys = gen.generateRetention(0, row);
        EXPECT_TRUE(std::is_sorted(
            phys.weakCells.begin(), phys.weakCells.end(),
            [](const WeakCell &a, const WeakCell &b) {
                return a.retention < b.retention;
            }));
    }
}

TEST(Physics, HammerCellsSortedByThreshold)
{
    const PhysicsGenerator gen = makeGenerator();
    const RowPhysics phys = gen.generate(0, 5);
    EXPECT_TRUE(std::is_sorted(
        phys.hammerCells.begin(), phys.hammerCells.end(),
        [](const HammerCell &a, const HammerCell &b) {
            return a.threshold < b.threshold;
        }));
}

TEST(Physics, WeakRowFractionRoughlyRespected)
{
    RetentionModelConfig cfg;
    cfg.weakRowFraction = 0.5;
    const PhysicsGenerator gen(cfg, HammerModelConfig{}, 3, 64 * 1024);
    int weak = 0;
    const int rows = 2'000;
    for (Row row = 0; row < rows; ++row) {
        const RowPhysics phys = gen.generateRetention(0, row);
        if (phys.minRetention() < msToNs(cfg.weakRetMaxMs + 1))
            ++weak;
    }
    EXPECT_NEAR(weak / static_cast<double>(rows), 0.5, 0.05);
}

TEST(Physics, WeakRetentionWithinClamp)
{
    RetentionModelConfig cfg;
    const PhysicsGenerator gen(cfg, HammerModelConfig{}, 4, 64 * 1024);
    for (Row row = 0; row < 500; ++row) {
        const RowPhysics phys = gen.generateRetention(0, row);
        const Time min_ret = phys.minRetention();
        if (min_ret < msToNs(cfg.strongRetMinMs)) {
            EXPECT_GE(min_ret, msToNs(cfg.weakRetMinMs));
            EXPECT_LE(min_ret, msToNs(cfg.weakRetMaxMs));
        }
    }
}

TEST(Physics, TemperatureScalesRetention)
{
    RetentionModelConfig hot;
    hot.tempCelsius = 85.0;
    RetentionModelConfig cool = hot;
    cool.tempCelsius = 45.0;
    // Retention halves every +10 C, so 45 C holds 16x longer than 85 C.
    EXPECT_DOUBLE_EQ(cool.tempScale(), 16.0);
    EXPECT_DOUBLE_EQ(hot.tempScale(), 1.0);

    const PhysicsGenerator hot_gen(hot, HammerModelConfig{}, 5,
                                   64 * 1024);
    const PhysicsGenerator cool_gen(cool, HammerModelConfig{}, 5,
                                    64 * 1024);
    const Time hot_ret = hot_gen.generateRetention(0, 9).minRetention();
    const Time cool_ret =
        cool_gen.generateRetention(0, 9).minRetention();
    EXPECT_NEAR(static_cast<double>(cool_ret),
                16.0 * static_cast<double>(hot_ret), 100.0);
}

TEST(Physics, HcFirstBoundsWeakestCell)
{
    HammerModelConfig ham;
    ham.hcFirst = 10'000;
    const PhysicsGenerator gen(RetentionModelConfig{}, ham, 6,
                               64 * 1024);
    double min_threshold = 1e18;
    for (Row row = 0; row < 500; ++row) {
        const RowPhysics phys = gen.generate(0, row);
        min_threshold =
            std::min(min_threshold, phys.minHammerThreshold());
        // No cell may flip below the module's HC_first in an
        // interleaved double-sided attack (2 units per hammer pair).
        EXPECT_GE(phys.minHammerThreshold(), 2.0 * ham.hcFirst);
    }
    // The weakest rows should sit close to HC_first.
    EXPECT_LT(min_threshold, 2.0 * ham.hcFirst * 1.2);
}

TEST(Physics, VrtCellsAppearInWeakRows)
{
    RetentionModelConfig cfg;
    cfg.vrtRowFraction = 0.5;
    const PhysicsGenerator gen(cfg, HammerModelConfig{}, 7, 64 * 1024);
    int vrt_rows = 0;
    int weak_rows = 0;
    for (Row row = 0; row < 2'000; ++row) {
        const RowPhysics phys = gen.generateRetention(0, row);
        const bool weak =
            phys.minRetention() < msToNs(cfg.weakRetMaxMs + 1);
        if (!weak)
            continue;
        ++weak_rows;
        for (const WeakCell &cell : phys.weakCells)
            if (cell.vrt) {
                ++vrt_rows;
                break;
            }
    }
    ASSERT_GT(weak_rows, 100);
    EXPECT_NEAR(vrt_rows / static_cast<double>(weak_rows), 0.5, 0.08);
}

TEST(Physics, EmptyHammerCellsReportInfiniteThreshold)
{
    RowPhysics phys;
    EXPECT_TRUE(std::isinf(phys.minHammerThreshold()));
    EXPECT_EQ(phys.minRetention(), 0);
}

} // namespace
} // namespace utrr
