#include <gtest/gtest.h>

#include "common/stats.hh"

namespace utrr
{
namespace
{

TEST(BoxStats, EmptyInput)
{
    const BoxStats stats = BoxStats::compute({});
    EXPECT_EQ(stats.count, 0u);
    EXPECT_EQ(stats.median, 0.0);
}

TEST(BoxStats, SingleValue)
{
    const BoxStats stats = BoxStats::compute({5.0});
    EXPECT_EQ(stats.count, 1u);
    EXPECT_EQ(stats.min, 5.0);
    EXPECT_EQ(stats.max, 5.0);
    EXPECT_EQ(stats.median, 5.0);
    EXPECT_EQ(stats.q1, 5.0);
    EXPECT_EQ(stats.q3, 5.0);
}

TEST(BoxStats, PaperFootnote14Quartiles)
{
    // Quartiles are the medians of the sorted halves.
    const BoxStats stats =
        BoxStats::compute({1, 2, 3, 4, 5, 6, 7, 8});
    EXPECT_EQ(stats.median, 4.5);
    EXPECT_EQ(stats.q1, 2.5);
    EXPECT_EQ(stats.q3, 6.5);
}

TEST(BoxStats, OddCountExcludesMedianFromHalves)
{
    const BoxStats stats = BoxStats::compute({1, 2, 3, 4, 5});
    EXPECT_EQ(stats.median, 3.0);
    EXPECT_EQ(stats.q1, 1.5);
    EXPECT_EQ(stats.q3, 4.5);
}

TEST(BoxStats, OutliersBeyondWhiskers)
{
    std::vector<double> values = {1, 2, 3, 4, 5, 6, 7, 8};
    values.push_back(100.0); // way beyond q3 + 1.5*IQR
    const BoxStats stats = BoxStats::compute(values);
    EXPECT_EQ(stats.outliers, 1u);
    EXPECT_EQ(stats.max, 100.0);
    EXPECT_LT(stats.whiskerHi, 100.0);
}

TEST(BoxStats, WhiskersClampToData)
{
    const BoxStats stats = BoxStats::compute({10, 11, 12, 13});
    EXPECT_EQ(stats.whiskerLo, 10.0);
    EXPECT_EQ(stats.whiskerHi, 13.0);
    EXPECT_EQ(stats.outliers, 0u);
}

TEST(BoxStats, MeanComputed)
{
    const BoxStats stats = BoxStats::compute({2, 4, 6});
    EXPECT_DOUBLE_EQ(stats.mean, 4.0);
}

TEST(Histogram, CountsAndTotal)
{
    Histogram hist;
    hist.add(1);
    hist.add(1);
    hist.add(3, 5);
    EXPECT_EQ(hist.countOf(1), 2u);
    EXPECT_EQ(hist.countOf(2), 0u);
    EXPECT_EQ(hist.countOf(3), 5u);
    EXPECT_EQ(hist.total(), 7u);
    EXPECT_EQ(hist.maxValue(), 3);
}

TEST(Histogram, EmptyMaxValue)
{
    Histogram hist;
    EXPECT_EQ(hist.maxValue(), 0);
    EXPECT_EQ(hist.total(), 0u);
}

TEST(Percentile, Interpolates)
{
    std::vector<double> values = {10, 20, 30, 40};
    EXPECT_DOUBLE_EQ(percentile(values, 0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(values, 100), 40.0);
    EXPECT_DOUBLE_EQ(percentile(values, 50), 25.0);
}

TEST(Mean, Basic)
{
    EXPECT_DOUBLE_EQ(mean({1, 2, 3}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

/** Property sweep: BoxStats bounds hold for arbitrary inputs. */
class BoxStatsProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(BoxStatsProperty, OrderingInvariants)
{
    const int seed = GetParam();
    std::vector<double> values;
    unsigned state = static_cast<unsigned>(seed) * 2654435761u + 1;
    const int n = 1 + seed * 7 % 50;
    for (int i = 0; i < n; ++i) {
        state = state * 1664525u + 1013904223u;
        values.push_back(static_cast<double>(state % 1000));
    }
    const BoxStats stats = BoxStats::compute(values);
    EXPECT_LE(stats.min, stats.q1);
    EXPECT_LE(stats.q1, stats.median);
    EXPECT_LE(stats.median, stats.q3);
    EXPECT_LE(stats.q3, stats.max);
    EXPECT_LE(stats.whiskerLo, stats.whiskerHi);
    EXPECT_GE(stats.whiskerLo, stats.min);
    EXPECT_LE(stats.whiskerHi, stats.max);
    EXPECT_EQ(stats.count, values.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoxStatsProperty,
                         ::testing::Range(1, 25));

} // namespace
} // namespace utrr
