#include <gtest/gtest.h>

#include "attack/trrespass.hh"
#include "dram/module.hh"
#include "softmc/host.hh"

namespace utrr
{
namespace
{

TEST(Trrespass, FuzzerFailsAgainstVendorA)
{
    // The paper's point: blind many-sided fuzzing does not break the
    // reverse-engineered TRRs our custom patterns defeat.
    const ModuleSpec spec = *findModuleSpec("A5");
    DramModule module(spec, 51);
    SoftMcHost host(module);
    TrrespassFuzzer::Config cfg;
    cfg.attempts = 8;
    cfg.positions = 1;
    TrrespassFuzzer fuzzer(
        host, DiscoveredMapping(spec.scramble, spec.rowsPerBank), cfg,
        51);
    const FuzzResult result = fuzzer.fuzz();
    EXPECT_EQ(result.patternsTried, 8);
    EXPECT_FALSE(result.anyFlips());
}

TEST(Trrespass, FuzzerCracksUnprotectedModule)
{
    // Sanity: with TRR disabled the very first double-sided shapes
    // flip bits, so the harness itself works.
    ModuleSpec spec = *findModuleSpec("A5");
    spec.trr = TrrVersion::kNone;
    DramModule module(spec, 52);
    SoftMcHost host(module);
    TrrespassFuzzer::Config cfg;
    cfg.attempts = 6;
    cfg.positions = 1;
    cfg.maxSides = 4;
    TrrespassFuzzer fuzzer(
        host, DiscoveredMapping(spec.scramble, spec.rowsPerBank), cfg,
        52);
    const FuzzResult result = fuzzer.fuzz();
    EXPECT_TRUE(result.anyFlips());
    EXPECT_GE(result.best.sides, 2);
}

TEST(Trrespass, EvaluateShapeIsDeterministicPerSeed)
{
    const ModuleSpec spec = *findModuleSpec("A5");
    FuzzedPattern shape;
    shape.sides = 4;
    shape.spacing = 2;

    auto run = [&] {
        DramModule module(spec, 53);
        SoftMcHost host(module);
        TrrespassFuzzer fuzzer(
            host, DiscoveredMapping(spec.scramble, spec.rowsPerBank),
            TrrespassFuzzer::Config{}, 53);
        return fuzzer.evaluateShape(shape);
    };
    EXPECT_EQ(run(), run());
}

TEST(Trrespass, DescribeIsReadable)
{
    FuzzedPattern shape;
    shape.sides = 9;
    shape.spacing = 2;
    shape.hammersPerAggr = 16;
    EXPECT_EQ(shape.describe(), "9-sided, spacing 2, 16 hammers/aggr/REF");
}

} // namespace
} // namespace utrr
