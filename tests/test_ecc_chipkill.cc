#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ecc/chipkill.hh"
#include "ecc/ecc_analysis.hh"

namespace utrr
{
namespace
{

TEST(Chipkill, CleanRoundTrip)
{
    const Chipkill codec;
    const std::uint64_t data = 0x0123456789abcdefULL;
    const auto codeword = codec.encode(data);
    EXPECT_EQ(codec.symbols(), 11);
    EXPECT_EQ(Chipkill::dataOf(codeword), data);
    EXPECT_EQ(codec.decode(codeword).status,
              RsDecodeResult::Status::kClean);
}

TEST(Chipkill, WholeChipFailureCorrected)
{
    // Any error confined to one chip (one symbol) is corrected, even
    // all 8 bits of it.
    const Chipkill codec;
    const std::uint64_t data = 0xa5a5a5a5a5a5a5a5ULL;
    const auto codeword = codec.encode(data);
    for (int chip = 0; chip < 8; ++chip) {
        auto received = codeword;
        received[static_cast<std::size_t>(chip)] ^= 0xff;
        const auto result = codec.decode(received);
        ASSERT_EQ(result.status, RsDecodeResult::Status::kCorrected);
        EXPECT_EQ(Chipkill::dataOf(result.codeword), data);
    }
}

TEST(Chipkill, TwoChipErrorsDetected)
{
    const Chipkill codec;
    const auto codeword = codec.encode(0x1122334455667788ULL);
    Rng rng(3);
    for (int trial = 0; trial < 200; ++trial) {
        auto received = codeword;
        const int c1 = static_cast<int>(rng.uniformInt(0, 7));
        int c2 = c1;
        while (c2 == c1)
            c2 = static_cast<int>(rng.uniformInt(0, 7));
        received[static_cast<std::size_t>(c1)] ^=
            static_cast<Gf256::Elem>(rng.uniformInt(1, 255));
        received[static_cast<std::size_t>(c2)] ^=
            static_cast<Gf256::Elem>(rng.uniformInt(1, 255));
        ASSERT_EQ(codec.decode(received).status,
                  RsDecodeResult::Status::kDetected);
    }
}

TEST(Chipkill, ThreeChipErrorsExceedTheGuarantee)
{
    // §7.4: flips in >= 3 arbitrary chips exceed the guarantee: the
    // decoder can never recover the original data.
    const Chipkill codec;
    const std::uint64_t data = 0;
    const auto codeword = codec.encode(data);
    Rng rng(4);
    for (int trial = 0; trial < 200; ++trial) {
        auto received = codeword;
        for (int chip : {0, 3, 6}) {
            received[static_cast<std::size_t>(chip)] ^=
                static_cast<Gf256::Elem>(rng.uniformInt(1, 255));
        }
        const auto result = codec.decode(received);
        if (result.status == RsDecodeResult::Status::kCorrected)
            EXPECT_NE(Chipkill::dataOf(result.codeword), data);
        else
            EXPECT_EQ(result.status, RsDecodeResult::Status::kDetected);
    }
}

TEST(Chipkill, MiscorrectionIsPossibleBeyondTheGuarantee)
{
    // Deterministic silent corruption: a received word at symbol
    // distance 1 from a *different* codeword decodes to that codeword,
    // silently replacing the stored data.
    const Chipkill codec;
    const std::uint64_t stored = 0x1111111111111111ULL;
    const std::uint64_t other = 0x2222222222222222ULL;
    auto received = codec.encode(other);
    received[4] ^= 0x5a; // one symbol error relative to `other`
    const auto result = codec.decode(received);
    ASSERT_EQ(result.status, RsDecodeResult::Status::kCorrected);
    EXPECT_EQ(Chipkill::dataOf(result.codeword), other);
    EXPECT_NE(Chipkill::dataOf(result.codeword), stored);
}

TEST(EccAnalysis, SingleBitCorrectedEverywhere)
{
    EXPECT_EQ(evaluateSecded({17}), EccOutcome::kCorrected);
    EXPECT_EQ(evaluateChipkill({17}), EccOutcome::kCorrected);
    EXPECT_EQ(evaluateReedSolomon({17}, 7), EccOutcome::kCorrected);
}

TEST(EccAnalysis, NoFlipsIsClean)
{
    EXPECT_EQ(evaluateSecded({}), EccOutcome::kClean);
    EXPECT_EQ(evaluateChipkill({}), EccOutcome::kClean);
}

TEST(EccAnalysis, DoubleBitHandling)
{
    // SECDED detects any double-bit error.
    EXPECT_EQ(evaluateSecded({3, 40}), EccOutcome::kDetected);
    // Two flips in the same chip: chipkill corrects them.
    EXPECT_EQ(evaluateChipkill({0, 5}), EccOutcome::kCorrected);
    // Two flips in different chips: chipkill detects them.
    EXPECT_EQ(evaluateChipkill({0, 60}), EccOutcome::kDetected);
}

TEST(EccAnalysis, SevenFlipsDefeatSecdedAndChipkill)
{
    // The paper's worst case: 7 flips in one 8-byte word.
    const std::vector<int> flips = {1, 11, 21, 31, 41, 51, 61};
    const EccOutcome secded = evaluateSecded(flips);
    EXPECT_TRUE(secded == EccOutcome::kMiscorrected ||
                secded == EccOutcome::kDetected ||
                secded == EccOutcome::kUndetected);
    EXPECT_NE(secded, EccOutcome::kCorrected);

    const EccOutcome ck = evaluateChipkill(flips);
    EXPECT_NE(ck, EccOutcome::kCorrected);

    // A Reed-Solomon code with 14 parity symbols (t = 7) handles it.
    EXPECT_EQ(evaluateReedSolomon(flips, 14), EccOutcome::kCorrected);
}

TEST(EccAnalysis, TallyArithmetic)
{
    EccTally tally;
    tally.add(EccOutcome::kCorrected);
    tally.add(EccOutcome::kCorrected);
    tally.add(EccOutcome::kMiscorrected);
    tally.add(EccOutcome::kUndetected);
    EXPECT_EQ(tally.of(EccOutcome::kCorrected), 2u);
    EXPECT_EQ(tally.total(), 4u);
    EXPECT_EQ(tally.silentCorruption(), 2u);
}

TEST(EccAnalysis, StudyHistogram)
{
    Histogram hist;
    hist.add(1, 100); // 100 words with 1 flip
    hist.add(3, 50);  // 50 words with 3 flips
    const EccStudy study = studyWordFlipHistogram(hist, {4, 14});
    EXPECT_EQ(study.secded.total(), 150u);
    // All single-flip words corrected by SECDED.
    EXPECT_GE(study.secded.of(EccOutcome::kCorrected), 100u);
    // Triple-flip words cause silent corruption in some cases.
    EXPECT_GT(study.secded.silentCorruption(), 0u);
    // RS with 14 parity symbols corrects everything up to 7 flips.
    EXPECT_EQ(study.reedSolomon.at(14).of(EccOutcome::kCorrected),
              150u);
}

TEST(EccAnalysis, OutcomeNames)
{
    EXPECT_EQ(eccOutcomeName(EccOutcome::kMiscorrected),
              "miscorrected");
    EXPECT_EQ(eccOutcomeName(EccOutcome::kClean), "clean");
}

} // namespace
} // namespace utrr
