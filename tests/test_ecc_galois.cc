#include <gtest/gtest.h>

#include "ecc/galois.hh"

namespace utrr
{
namespace
{

TEST(Gf256, AdditionIsXor)
{
    EXPECT_EQ(Gf256::add(0x53, 0xCA), 0x53 ^ 0xCA);
    EXPECT_EQ(Gf256::add(7, 7), 0);
}

TEST(Gf256, MultiplicationBasics)
{
    EXPECT_EQ(Gf256::mul(0, 123), 0);
    EXPECT_EQ(Gf256::mul(123, 0), 0);
    EXPECT_EQ(Gf256::mul(1, 123), 123);
    // alpha * alpha = alpha^2 = 4 for alpha = 2.
    EXPECT_EQ(Gf256::mul(2, 2), 4);
}

TEST(Gf256, KnownProduct)
{
    // 0x53 * 0xCA = 0x01 in GF(256) with poly 0x11D... verify via
    // inverse instead: mul(a, inv(a)) == 1 for all nonzero a.
    for (int a = 1; a < 256; ++a) {
        const auto elem = static_cast<Gf256::Elem>(a);
        EXPECT_EQ(Gf256::mul(elem, Gf256::inv(elem)), 1) << a;
    }
}

TEST(Gf256, DivisionInvertsMultiplication)
{
    for (int a = 1; a < 256; a += 7) {
        for (int b = 1; b < 256; b += 11) {
            const auto ea = static_cast<Gf256::Elem>(a);
            const auto eb = static_cast<Gf256::Elem>(b);
            EXPECT_EQ(Gf256::div(Gf256::mul(ea, eb), eb), ea);
        }
    }
}

TEST(Gf256, ExpLogRoundTrip)
{
    for (int a = 1; a < 256; ++a) {
        const auto elem = static_cast<Gf256::Elem>(a);
        EXPECT_EQ(Gf256::expAlpha(Gf256::logAlpha(elem)), elem);
    }
}

TEST(Gf256, ExpAlphaPeriodic)
{
    EXPECT_EQ(Gf256::expAlpha(0), 1);
    EXPECT_EQ(Gf256::expAlpha(255), 1);
    EXPECT_EQ(Gf256::expAlpha(-1), Gf256::expAlpha(254));
    EXPECT_EQ(Gf256::expAlpha(256), Gf256::expAlpha(1));
}

TEST(Gf256, PowMatchesRepeatedMul)
{
    Gf256::Elem x = 1;
    for (int n = 0; n < 20; ++n) {
        EXPECT_EQ(Gf256::pow(3, n), x);
        x = Gf256::mul(x, 3);
    }
    EXPECT_EQ(Gf256::pow(0, 5), 0);
    EXPECT_EQ(Gf256::pow(0, 0), 1);
}

/** Field axioms sampled across the field. */
class GfAxioms : public ::testing::TestWithParam<int>
{
};

TEST_P(GfAxioms, DistributivityAndAssociativity)
{
    const auto a = static_cast<Gf256::Elem>(GetParam() * 37 % 256);
    const auto b = static_cast<Gf256::Elem>(GetParam() * 101 % 256);
    const auto c = static_cast<Gf256::Elem>(GetParam() * 181 % 256);
    EXPECT_EQ(Gf256::mul(a, Gf256::add(b, c)),
              Gf256::add(Gf256::mul(a, b), Gf256::mul(a, c)));
    EXPECT_EQ(Gf256::mul(a, Gf256::mul(b, c)),
              Gf256::mul(Gf256::mul(a, b), c));
    EXPECT_EQ(Gf256::mul(a, b), Gf256::mul(b, a));
}

INSTANTIATE_TEST_SUITE_P(Samples, GfAxioms, ::testing::Range(1, 40));

} // namespace
} // namespace utrr
