#include <gtest/gtest.h>

#include "attack/evaluator.hh"
#include "dram/module.hh"
#include "softmc/host.hh"

namespace utrr
{
namespace
{

/** Align works against every vendor's TRR cadence. */
class AlignPerVendor : public ::testing::TestWithParam<const char *>
{
};

TEST_P(AlignPerVendor, StopsRightAfterATrrEvent)
{
    const ModuleSpec spec = *findModuleSpec(GetParam());
    DramModule module(spec, 81);
    SoftMcHost host(module);
    AttackEvaluator evaluator(host);

    const std::uint64_t before = module.trrRefreshCount();
    evaluator.alignToTrrEvent(0, 9'000);
    const std::uint64_t after = module.trrRefreshCount();
    ASSERT_GT(after, before);

    // The very next REFs must not fire again until a full TRR period
    // has elapsed (the dummy row keeps the detector fed).
    const int period = spec.traits().trrToRefPeriod;
    for (int i = 1; i < period; ++i) {
        host.hammer(0, 9'000, 8);
        host.ref();
        EXPECT_EQ(module.trrRefreshCount(), after)
            << "unexpected TRR refresh " << i
            << " REFs after alignment";
    }
}

INSTANTIATE_TEST_SUITE_P(Vendors, AlignPerVendor,
                         ::testing::Values("A5", "B8", "B13", "C9",
                                           "C12"));

TEST(Evaluator, AlignGivesUpWithoutTrr)
{
    ModuleSpec spec = *findModuleSpec("A5");
    spec.trr = TrrVersion::kNone;
    DramModule module(spec, 82);
    SoftMcHost host(module);
    AttackEvaluator evaluator(host);
    const std::uint64_t refs = host.refCommandCount();
    evaluator.alignToTrrEvent(0, 9'000, 16);
    EXPECT_EQ(host.refCommandCount() - refs, 16u); // capped
}

TEST(Evaluator, WordHistogramMatchesVictimFlips)
{
    // Synthetic check: hammer without refresh so the victim flips,
    // then verify the word histogram covers exactly the flipped bits.
    ModuleSpec spec = *findModuleSpec("A5");
    spec.trr = TrrVersion::kNone;
    DramModule module(spec, 83);
    SoftMcHost host(module);
    const DiscoveredMapping mapping(spec.scramble, spec.rowsPerBank);
    AttackEvaluator evaluator(host);

    const Row anchor = 3'000;
    DoubleSidedPattern pattern(0, mapping.toLogical(anchor - 1),
                               mapping.toLogical(anchor + 1), 74);
    const AttackOutcome outcome = evaluator.run(
        pattern, {{0, mapping.toLogical(anchor)}}, 1'024);

    std::uint64_t flips_from_words = 0;
    for (const auto &[count, n] : outcome.wordFlips.bins())
        flips_from_words += static_cast<std::uint64_t>(count) * n;
    EXPECT_EQ(flips_from_words,
              static_cast<std::uint64_t>(outcome.totalFlips()));
}

TEST(Evaluator, RefsIssuedOncePerSlot)
{
    ModuleSpec spec = *findModuleSpec("A5");
    spec.trr = TrrVersion::kNone;
    DramModule module(spec, 84);
    SoftMcHost host(module);
    AttackEvaluator evaluator(host);
    SingleSidedPattern pattern(0, 100, 10);
    const std::uint64_t refs = host.refCommandCount();
    const Time start = host.now();
    evaluator.run(pattern, {{0, 200}}, 64);
    EXPECT_EQ(host.refCommandCount() - refs, 64u);
    // Wall time: 64 slots at tREFI each (plus init/readback).
    EXPECT_GE(host.now() - start, 64 * host.timing().tREFI);
}

} // namespace
} // namespace utrr
