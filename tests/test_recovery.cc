/**
 * @file
 * Crash-recovery harness (DESIGN.md §14): a forked child runs a
 * journaled campaign with a planned SIGKILL at a chosen point of the
 * journal stream — after a record commits, halfway through a record's
 * bytes, even mid-header — then the parent resumes from the survivor
 * journal and asserts that the deterministic projection of the merged
 * report is byte-identical to an uninterrupted run, for both the
 * serial and the parallel scheduler.
 *
 * This is the in-process twin of scripts/crash_recovery_smoke.sh
 * (which drives the reverse_engineer binary the same way in CI).
 */

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/durable_file.hh"
#include "dram/module_spec.hh"
#include "fault/io_fault.hh"
#include "obs/report.hh"
#include "runner/campaign.hh"
#include "runner/journal.hh"

namespace utrr
{
namespace
{

std::string
scratchPath(const std::string &stem)
{
    return "recovery_test_" + stem + ".jsonl";
}

void
removeFile(const std::string &path)
{
    std::remove(path.c_str());
}

/** Six cheap deterministic jobs with real simulated work. */
std::vector<ModuleSpec>
recoverySpecs()
{
    std::vector<ModuleSpec> specs;
    for (int i = 0; i < 6; ++i) {
        ModuleSpec spec = *findModuleSpec("A0");
        spec.name = "R" + std::to_string(i);
        spec.rowsPerBank = 1024;
        specs.push_back(spec);
    }
    return specs;
}

JobFn
recoveryJob()
{
    return [](JobContext &ctx) {
        // A few commands so sim_ns, metrics and the verdict all carry
        // nontrivial, schedule-independent content.
        ctx.host.writeRow(0, 2, DataPattern::allZeros());
        ctx.host.hammer(0, 3, 64);
        ctx.host.refBurst(4);
        const RowReadout readout = ctx.host.readRow(0, 2);
        const int flips =
            readout.countFlipsVs(DataPattern::allZeros(), 2);
        ctx.metrics.counter("recovery.jobs").inc();
        ctx.metrics.histogram("recovery.flips").add(flips);
        JobOutcome outcome;
        outcome.ok = true;
        Json verdict = Json::object();
        verdict["index"] = Json(ctx.index);
        verdict["flips"] = Json(static_cast<std::int64_t>(flips));
        verdict["draw"] = Json(ctx.rng.next());
        outcome.verdict = std::move(verdict);
        return outcome;
    };
}

CampaignConfig
recoveryConfig(int jobs, const std::string &journal)
{
    CampaignConfig cfg;
    cfg.jobs = jobs;
    cfg.seed = 99;
    cfg.journalPath = journal;
    cfg.journalFsync = false; // the SIGKILL arrives via the fault
                              // hook, which fsyncs its torn prefix
    cfg.contentTag = "test:recovery:v1";
    return cfg;
}

/** The byte-equality surface: deterministic projection of the report. */
std::string
projectedReport(const CampaignResult &result)
{
    ExperimentReport report("recovery");
    report.setSeed(99);
    result.fillReport(report);
    return deterministicProjection(report.json()).dump();
}

/**
 * Fork a child that runs the campaign with @p fault armed. Returns the
 * child's fate: died by the expected SIGKILL, or exited (status 42
 * means "campaign returned", i.e. the fault never fired).
 */
struct ChildFate
{
    bool signaled = false;
    int signal = 0;
    int exitStatus = -1;
};

ChildFate
runCrashingChild(const CampaignConfig &cfg,
                 const std::vector<ModuleSpec> &specs,
                 const JournalWriteFault &fault, bool via_env)
{
    const pid_t pid = fork();
    if (pid == 0) {
        // Child: arm the crash, run, and report survival via exit
        // status. _exit keeps gtest/atexit machinery out of the child.
        CampaignConfig child_cfg = cfg;
        if (via_env) {
            const std::string spec_text =
                std::to_string(fault.crashAtRecord) +
                (fault.partialBytes >= 0
                     ? ":" + std::to_string(fault.partialBytes)
                     : "");
            ::setenv("UTRR_JOURNAL_CRASH", spec_text.c_str(), 1);
        } else {
            child_cfg.journalFault = fault;
        }
        const CampaignRunner runner(child_cfg);
        (void)runner.run(specs, recoveryJob());
        ::_exit(42);
    }
    ChildFate fate;
    if (pid < 0)
        return fate; // fork failed; caller's assertions will flag it
    int status = 0;
    ::waitpid(pid, &status, 0);
    fate.signaled = WIFSIGNALED(status);
    fate.signal = fate.signaled ? WTERMSIG(status) : 0;
    fate.exitStatus = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return fate;
}

/**
 * The harness proper: SIGKILL the campaign at journal record
 * @p crash_at (optionally mid-record after @p partial_bytes), resume,
 * and require the resumed report to match the clean reference
 * byte-for-byte.
 */
void
crashResumeAndCompare(int jobs, std::int64_t crash_at,
                      std::int64_t partial_bytes, bool via_env,
                      const std::string &tag)
{
    const std::string journal = scratchPath(tag);
    removeFile(journal);
    removeFile(journal + ".stale");
    const std::vector<ModuleSpec> specs = recoverySpecs();

    // Clean reference: same campaign, journaling off.
    CampaignConfig clean_cfg = recoveryConfig(jobs, "");
    const CampaignRunner clean_runner(clean_cfg);
    const std::string reference =
        projectedReport(clean_runner.run(specs, recoveryJob()));

    JournalWriteFault fault;
    fault.crashAtRecord = crash_at;
    fault.partialBytes = partial_bytes;
    const ChildFate fate = runCrashingChild(
        recoveryConfig(jobs, journal), specs, fault, via_env);
    ASSERT_TRUE(fate.signaled)
        << "child exited with status " << fate.exitStatus
        << " instead of dying at journal record " << crash_at;
    ASSERT_EQ(fate.signal, SIGKILL);

    CampaignConfig resume_cfg = recoveryConfig(jobs, journal);
    resume_cfg.resume = true;
    const CampaignRunner resumer(resume_cfg);
    const CampaignResult resumed = resumer.run(specs, recoveryJob());
    EXPECT_TRUE(resumed.allOk());
    EXPECT_FALSE(resumed.interrupted);
    EXPECT_EQ(resumed.journaledJobs + resumed.scheduledJobs,
              specs.size());
    EXPECT_EQ(projectedReport(resumed), reference)
        << "resume after SIGKILL at record " << crash_at
        << " diverged from the uninterrupted run";

    removeFile(journal);
    removeFile(journal + ".stale");
}

TEST(CrashRecovery, SerialKillAfterFirstJobCommits)
{
    // Record 0 is the header; record 2 = second job committed.
    crashResumeAndCompare(1, 2, -1, false, "serial_r2");
}

TEST(CrashRecovery, SerialKillMidRecordLeavesRecoverableTornTail)
{
    const std::string journal = scratchPath("serial_torn");
    removeFile(journal);
    const std::vector<ModuleSpec> specs = recoverySpecs();

    JournalWriteFault fault;
    fault.crashAtRecord = 3;
    fault.partialBytes = 20; // tear the 4th record after 20 bytes
    const ChildFate fate = runCrashingChild(
        recoveryConfig(1, journal), specs, fault, false);
    ASSERT_TRUE(fate.signaled);

    // The survivor journal must show exactly the planned tear.
    const JournalLoad load = loadJournal(journal);
    EXPECT_TRUE(load.headerValid);
    EXPECT_TRUE(load.tornTail);
    EXPECT_EQ(load.jobs.size(), 2u);

    CampaignConfig resume_cfg = recoveryConfig(1, journal);
    resume_cfg.resume = true;
    const CampaignRunner resumer(resume_cfg);
    const CampaignResult resumed = resumer.run(specs, recoveryJob());
    EXPECT_TRUE(resumed.journalTornTail);
    EXPECT_EQ(resumed.journaledJobs, 2u);
    EXPECT_TRUE(resumed.allOk());

    CampaignConfig clean_cfg = recoveryConfig(1, "");
    const CampaignRunner clean_runner(clean_cfg);
    EXPECT_EQ(projectedReport(resumed),
              projectedReport(clean_runner.run(specs, recoveryJob())));
    removeFile(journal);
}

TEST(CrashRecovery, SerialKillMidHeaderFallsBackToFreshRun)
{
    // Dying 10 bytes into the *header* leaves a journal with no valid
    // campaign record at all: resume must rotate it aside and rerun
    // everything — and still match the clean bytes.
    crashResumeAndCompare(1, 0, 10, false, "serial_header");
}

TEST(CrashRecovery, ParallelKillAtEveryEarlyRecord)
{
    // jobs=4: the pool schedules nondeterministically, so which jobs
    // are journaled at the kill point varies — the resumed report must
    // match the reference regardless.
    for (std::int64_t crash_at = 1; crash_at <= 4; ++crash_at) {
        crashResumeAndCompare(4, crash_at, -1, false,
                              "par_r" + std::to_string(crash_at));
        if (::testing::Test::HasFatalFailure())
            return;
    }
}

TEST(CrashRecovery, ParallelKillMidRecord)
{
    crashResumeAndCompare(4, 3, 25, false, "par_torn");
}

TEST(CrashRecovery, EnvVarArmsTheCrashExactlyLikeTheConfigHook)
{
    // UTRR_JOURNAL_CRASH is how the CI smoke script arms the crash in
    // an unmodified binary; it must behave exactly like the config
    // hook (the child sets the variable after fork, so the parent's
    // environment is untouched).
    crashResumeAndCompare(1, 2, 15, true, "env_armed");
}

TEST(CrashRecovery, ResumeOfACompletedJournalIsANoOpReplay)
{
    // No crash at all: run to completion, then "resume" — everything
    // restores from the journal and the bytes still match.
    const std::string journal = scratchPath("noop");
    removeFile(journal);
    const std::vector<ModuleSpec> specs = recoverySpecs();
    CampaignConfig cfg = recoveryConfig(1, journal);
    const CampaignRunner runner(cfg);
    const std::string reference =
        projectedReport(runner.run(specs, recoveryJob()));

    cfg.resume = true;
    const CampaignRunner resumer(cfg);
    const CampaignResult resumed = resumer.run(specs, recoveryJob());
    EXPECT_EQ(resumed.journaledJobs, specs.size());
    EXPECT_EQ(resumed.scheduledJobs, 0u);
    EXPECT_EQ(projectedReport(resumed), reference);
    removeFile(journal);
}

} // namespace
} // namespace utrr
