#include <gtest/gtest.h>

#include "dram/timing.hh"

namespace utrr
{
namespace
{

TEST(Timing, DefaultsMatchPaperFootnote10)
{
    // With 35 ns ACT, 15 ns PRE and 350 ns REF latencies, at most 149
    // hammers fit between two REFs at the default refresh rate.
    const Timing timing;
    EXPECT_EQ(timing.tRAS, 35);
    EXPECT_EQ(timing.tRP, 15);
    EXPECT_EQ(timing.tRFC, 350);
    EXPECT_EQ(timing.tREFI, 7'800);
    EXPECT_EQ(timing.hammerCycle(), 50);
    EXPECT_EQ(timing.hammersPerRefi(), 149);
}

TEST(Timing, RefsPerPeriod)
{
    const Timing timing;
    // ~8K REFs per 64 ms refresh period (paper §6.1.3).
    EXPECT_EQ(timing.refsPerPeriod(), 8'205);
}

TEST(Timing, CustomValuesPropagate)
{
    Timing timing;
    timing.tRAS = 40;
    timing.tRP = 10;
    EXPECT_EQ(timing.hammerCycle(), 50);
    timing.tREFI = 1'000;
    timing.tRFC = 500;
    EXPECT_EQ(timing.hammersPerRefi(), 10);
}

TEST(TimeConversions, MsToNsRoundTrip)
{
    EXPECT_EQ(msToNs(1.0), kNsPerMs);
    EXPECT_EQ(msToNs(0.5), kNsPerMs / 2);
    EXPECT_DOUBLE_EQ(nsToMs(msToNs(123.0)), 123.0);
}

} // namespace
} // namespace utrr
