/**
 * @file
 * Corpus replay tests: every checked-in entry under tests/corpus/ is
 * parsed, validated against the command protocol, and replayed through
 * the full oracle suite — on a clean tree all of them must stay clean.
 * Entries double as format-stability anchors for the corpus text
 * format and the assembler grammar it embeds.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/corpus.hh"
#include "check/fuzzer.hh"
#include "check/oracles.hh"
#include "dram/data_pattern.hh"
#include "dram/module_spec.hh"

#ifndef UTRR_CORPUS_DIR
#error "UTRR_CORPUS_DIR must point at the checked-in corpus"
#endif

namespace utrr
{
namespace
{

std::vector<CorpusEntry>
checkedInCorpus()
{
    std::string error;
    std::vector<CorpusEntry> entries =
        loadCorpusDir(UTRR_CORPUS_DIR, &error);
    EXPECT_TRUE(error.empty()) << error;
    return entries;
}

TEST(Corpus, HasCheckedInAnchors)
{
    const std::vector<CorpusEntry> entries = checkedInCorpus();
    ASSERT_GE(entries.size(), 4U)
        << "expected fixed-seed anchors in " UTRR_CORPUS_DIR;
}

TEST(Corpus, EntriesAreProtocolValid)
{
    for (const CorpusEntry &entry : checkedInCorpus()) {
        SCOPED_TRACE(entry.name);
        const auto spec = findModuleSpec(entry.module);
        ASSERT_TRUE(spec) << "unknown module " << entry.module;
        EXPECT_FALSE(entry.program.size() == 0);
        const std::string error =
            validateProgram(*spec, entry.program);
        EXPECT_TRUE(error.empty()) << error;
    }
}

TEST(Corpus, EntriesReplayCleanThroughOracleSuite)
{
    for (const CorpusEntry &entry : checkedInCorpus()) {
        SCOPED_TRACE(entry.name);
        const auto spec = findModuleSpec(entry.module);
        ASSERT_TRUE(spec);
        OracleConfig oracle;
        oracle.moduleSeed = entry.moduleSeed;
        const OracleReport report =
            runOracleSuite(*spec, entry.program, oracle);
        EXPECT_TRUE(report.clean()) << report.summary();
        EXPECT_GT(report.reads, 0U)
            << "anchor performs no reads; differential oracle idle";
    }
}

TEST(Corpus, TextFormatRoundTrips)
{
    CorpusEntry entry;
    entry.module = "A3";
    entry.moduleSeed = 31337;
    entry.fuzzSeed = 12;
    entry.fuzzIndex = 7;
    entry.oracle = "differential";
    entry.note = "synthetic round-trip entry";
    entry.program.writeRow(2, 500, DataPattern::random(42))
        .waitWithRefresh(msToNs(64))
        .readRow(2, 500);

    CorpusEntry back;
    const std::string error =
        parseCorpusEntry(corpusEntryText(entry), back);
    ASSERT_TRUE(error.empty()) << error;
    EXPECT_EQ(back.module, entry.module);
    EXPECT_EQ(back.moduleSeed, entry.moduleSeed);
    EXPECT_EQ(back.fuzzSeed, entry.fuzzSeed);
    EXPECT_EQ(back.fuzzIndex, entry.fuzzIndex);
    EXPECT_EQ(back.oracle, entry.oracle);
    EXPECT_EQ(back.note, entry.note);
    ASSERT_EQ(back.program.size(), entry.program.size());
    for (std::size_t i = 0; i < entry.program.size(); ++i)
        EXPECT_EQ(back.program.instructions()[i].toString(),
                  entry.program.instructions()[i].toString());
}

TEST(Corpus, ParserRejectsEntriesWithoutModule)
{
    CorpusEntry entry;
    const std::string error =
        parseCorpusEntry("#! note no module here\nWAIT 100\n", entry);
    EXPECT_FALSE(error.empty());
}

TEST(Corpus, ParserSkipsUnknownHeaderKeys)
{
    // Forward compatibility: newer writers may add header keys.
    CorpusEntry entry;
    const std::string error = parseCorpusEntry(
        "#! module A0\n#! future-key some value\nWAIT 100\n", entry);
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_EQ(entry.module, "A0");
    EXPECT_EQ(entry.program.size(), 1U);
}

} // namespace
} // namespace utrr
