#include <gtest/gtest.h>

#include "dram/module.hh"
#include "softmc/assembler.hh"
#include "softmc/host.hh"

namespace utrr
{
namespace
{

TEST(Assembler, BasicInstructions)
{
    const AssembleResult result = assembleProgram(
        "ACT 0 100\n"
        "PRE 0\n"
        "REF 3\n"
        "WAIT 5us\n");
    ASSERT_TRUE(result.ok()) << result.error;
    const auto &instrs = result.program.instructions();
    ASSERT_EQ(instrs.size(), 6u); // ACT PRE REF REF REF WAIT
    EXPECT_EQ(instrs[0].op, Op::kAct);
    EXPECT_EQ(instrs[0].bank, 0);
    EXPECT_EQ(instrs[0].row, 100);
    EXPECT_EQ(instrs[5].op, Op::kWait);
    EXPECT_EQ(instrs[5].waitNs, 5'000);
}

TEST(Assembler, CompositesExpand)
{
    const AssembleResult result = assembleProgram(
        "WRITE 1 50 ones\n"
        "READ 1 50\n"
        "HAMMER 1 60 4\n");
    ASSERT_TRUE(result.ok()) << result.error;
    // 3 + 3 + 8 instructions.
    EXPECT_EQ(result.program.size(), 14u);
}

TEST(Assembler, CommentsAndBlankLines)
{
    const AssembleResult result = assembleProgram(
        "# a comment\n"
        "\n"
        "REF   # trailing comment\n");
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_EQ(result.program.size(), 1u);
}

TEST(Assembler, TimeUnits)
{
    const AssembleResult result = assembleProgram(
        "WAIT 100ns\nWAIT 2us\nWAIT 3ms\nWAITREF 1ms\n");
    ASSERT_TRUE(result.ok()) << result.error;
    const auto &instrs = result.program.instructions();
    EXPECT_EQ(instrs[0].waitNs, 100);
    EXPECT_EQ(instrs[1].waitNs, 2'000);
    EXPECT_EQ(instrs[2].waitNs, 3'000'000);
    EXPECT_EQ(instrs[3].op, Op::kWaitRef);
}

TEST(Assembler, PatternTokens)
{
    EXPECT_TRUE(parsePatternToken("ones").has_value());
    EXPECT_TRUE(parsePatternToken("zeros").has_value());
    EXPECT_TRUE(parsePatternToken("checker").has_value());
    EXPECT_TRUE(parsePatternToken("stripe").has_value());
    ASSERT_TRUE(parsePatternToken("random:42").has_value());
    EXPECT_TRUE(*parsePatternToken("random:42") ==
                DataPattern::random(42));
    EXPECT_FALSE(parsePatternToken("nonsense").has_value());
    EXPECT_FALSE(parsePatternToken("random:x").has_value());
}

TEST(Assembler, ErrorsCarryLineNumbers)
{
    const AssembleResult result =
        assembleProgram("REF\nACT 0\nREF\n");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error.find("line 2"), std::string::npos);
}

TEST(Assembler, UnknownInstruction)
{
    const AssembleResult result = assembleProgram("FOO 1 2\n");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error.find("unknown instruction"),
              std::string::npos);
}

TEST(Assembler, BadOperandsRejected)
{
    EXPECT_FALSE(assembleProgram("ACT 0 abc\n").ok());
    EXPECT_FALSE(assembleProgram("WR 0 rainbow\n").ok());
    EXPECT_FALSE(assembleProgram("WAIT soon\n").ok());
    EXPECT_FALSE(assembleProgram("REF 0\n").ok());
    EXPECT_FALSE(assembleProgram("HAMMER 0 1\n").ok());
}

TEST(Assembler, RoundTripThroughDisassembler)
{
    const std::string text =
        "ACT 0 7\n"
        "WR 0 all-ones\n"
        "PRE 0\n"
        "REF\n"
        "WAIT 1000ns\n";
    const AssembleResult first = assembleProgram(text);
    ASSERT_TRUE(first.ok());
    const std::string disassembled =
        disassembleProgram(first.program);
    const AssembleResult second = assembleProgram(disassembled);
    ASSERT_TRUE(second.ok()) << second.error;
    ASSERT_EQ(second.program.size(), first.program.size());
    for (std::size_t i = 0; i < first.program.size(); ++i) {
        EXPECT_EQ(second.program.instructions()[i].op,
                  first.program.instructions()[i].op);
    }
}

TEST(Assembler, AssembledProgramExecutes)
{
    ModuleSpec spec = *findModuleSpec("A5");
    spec.trr = TrrVersion::kNone;
    spec.rowsPerBank = 4'096;
    spec.banks = 1;
    spec.scramble = RowScramble::kSequential;
    spec.remapsPerBank = 0;
    DramModule module(spec, 5);
    SoftMcHost host(module);

    const AssembleResult result = assembleProgram(
        "WRITE 0 10 checker\n"
        "REF 2\n"
        "READ 0 10\n");
    ASSERT_TRUE(result.ok()) << result.error;
    const ExecResult exec = host.execute(result.program);
    ASSERT_EQ(exec.reads.size(), 1u);
    EXPECT_EQ(exec.reads[0].row, 10);
    EXPECT_EQ(exec.reads[0].readout.countFlipsVs(
                  DataPattern::checkerboard(), 10),
              0);
}

} // namespace
} // namespace utrr
