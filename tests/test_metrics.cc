#include <gtest/gtest.h>

#include "core/row_scout.hh"
#include "core/trr_analyzer.hh"
#include "dram/module.hh"
#include "obs/metrics.hh"
#include "obs/timer.hh"
#include "softmc/host.hh"

namespace utrr
{
namespace
{

TEST(MetricsRegistry, FindOrCreateReturnsStableHandles)
{
    MetricsRegistry registry;
    Counter &a = registry.counter("dram.acts");
    a.inc(3);
    Counter &b = registry.counter("dram.acts");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(b.value, 3u);

    Gauge &g = registry.gauge("occupancy");
    g.set(0.5);
    EXPECT_EQ(&registry.gauge("occupancy"), &g);

    Histogram &h = registry.histogram("latency");
    h.add(7);
    EXPECT_EQ(registry.histogram("latency").total(), 1u);
}

TEST(MetricsRegistry, FindDoesNotCreate)
{
    MetricsRegistry registry;
    EXPECT_EQ(registry.findCounter("missing"), nullptr);
    EXPECT_EQ(registry.findGauge("missing"), nullptr);
    EXPECT_EQ(registry.findHistogram("missing"), nullptr);
    registry.counter("present").inc();
    ASSERT_NE(registry.findCounter("present"), nullptr);
    EXPECT_EQ(registry.findCounter("present")->value, 1u);
    EXPECT_EQ(registry.counters().size(), 1u);
}

TEST(MetricsRegistry, ToJsonSnapshotsEverything)
{
    MetricsRegistry registry;
    registry.counter("c").inc(2);
    registry.gauge("g").set(1.25);
    registry.histogram("h").add(10, 3);

    const Json snapshot = registry.toJson();
    EXPECT_EQ(snapshot.find("counters")->find("c")->asInt(), 2);
    EXPECT_EQ(snapshot.find("gauges")->find("g")->asNumber(), 1.25);
    EXPECT_EQ(snapshot.find("histograms")->find("h")->find("10")->asInt(),
              3);
}

TEST(MetricsRegistry, MergeAddsCountersAndPrefixesNames)
{
    MetricsRegistry a;
    a.counter("dram.acts").inc(5);
    a.gauge("occupancy").set(0.25);
    a.histogram("lat").add(10, 2);

    MetricsRegistry b;
    b.counter("dram.acts").inc(7);
    b.gauge("occupancy").set(0.75);
    b.histogram("lat").add(10, 1);
    b.histogram("lat").add(20, 4);

    // Un-prefixed merge: counters add, gauges last-write-wins,
    // histograms merge bin-wise.
    MetricsRegistry merged;
    merged.merge(a);
    merged.merge(b);
    EXPECT_EQ(merged.findCounter("dram.acts")->value, 12u);
    EXPECT_EQ(merged.findGauge("occupancy")->value, 0.75);
    EXPECT_EQ(merged.findHistogram("lat")->total(), 7u);

    // Prefixed merge keeps per-source sections disjoint, so the
    // result is independent of merge order.
    MetricsRegistry campaign;
    campaign.merge(a, "module.A5.");
    campaign.merge(b, "module.B8.");
    EXPECT_EQ(campaign.findCounter("module.A5.dram.acts")->value, 5u);
    EXPECT_EQ(campaign.findCounter("module.B8.dram.acts")->value, 7u);
    EXPECT_EQ(campaign.findCounter("dram.acts"), nullptr);
}

TEST(ScopedTimer, RecordsHistogramAndCallCounter)
{
    MetricsRegistry registry;
    {
        ScopedTimer timer(&registry, "phase");
        (void)timer;
    }
    ASSERT_NE(registry.findHistogram("phase.us"), nullptr);
    EXPECT_EQ(registry.findHistogram("phase.us")->total(), 1u);
    EXPECT_EQ(registry.findCounter("phase.calls")->value, 1u);
}

TEST(ScopedTimer, NullRegistryIsSafe)
{
    ScopedTimer timer(nullptr, "phase");
    timer.stop();
}

TEST(GroundTruth, ChipWritesDoNotCountAsPeeks)
{
    GroundTruthStore store;
    store.counter("trr.detections").inc(5);
    store.gauge("trr.sampler_occupancy").set(1);
    EXPECT_EQ(store.peekCount(), 0u);
}

TEST(GroundTruth, EveryProbeReadIsCounted)
{
    GroundTruthStore store;
    store.counter("trr.detections").inc(5);

    GroundTruthProbe probe(store);
    EXPECT_EQ(probe.counter("trr.detections"), 5u);
    EXPECT_EQ(store.peekCount(), 1u);
    probe.gauge("trr.sampler_occupancy");
    EXPECT_EQ(store.peekCount(), 2u);
    probe.snapshot();
    EXPECT_EQ(store.peekCount(), 3u);
    // Reading a never-written metric still counts as a peek.
    EXPECT_EQ(probe.counter("absent"), 0u);
    EXPECT_EQ(store.peekCount(), 4u);
}

ModuleSpec
smallSpec(TrrVersion trr)
{
    ModuleSpec spec = *findModuleSpec("A5");
    spec.trr = trr;
    spec.rowsPerBank = 4 * 1024;
    spec.banks = 1;
    spec.remapsPerBank = 0;
    spec.scramble = RowScramble::kSequential;
    return spec;
}

TEST(ModuleMetrics, HostForwardsAndSubstratePopulates)
{
    DramModule module(smallSpec(TrrVersion::kATrr1), 41);
    SoftMcHost host(module);
    MetricsRegistry registry;
    host.attachMetrics(&registry);
    EXPECT_EQ(host.attachedMetrics(), &registry);

    host.hammer(0, 100, 50);
    host.refBurst(10);
    host.writeRow(0, 7, DataPattern::allOnes());
    host.readRow(0, 7);

    EXPECT_EQ(registry.findCounter("dram.acts")->value,
              host.actCount());
    EXPECT_EQ(registry.findCounter("dram.acts.bank0")->value,
              host.actCount());
    EXPECT_EQ(registry.findCounter("dram.refs")->value, 10u);
    EXPECT_GT(registry.findCounter("dram.rows_regular_refreshed")->value,
              0u);
    ASSERT_NE(registry.findCounter("dram.read_flip_bits"), nullptr);

    // Detaching stops the flow without touching recorded values.
    host.attachMetrics(nullptr);
    const std::uint64_t acts = registry.findCounter("dram.acts")->value;
    host.hammer(0, 100, 10);
    EXPECT_EQ(registry.findCounter("dram.acts")->value, acts);
}

/**
 * The observability acceptance gate for the methodology: a full
 * black-box experiment (scout + analyzer) must complete without a
 * single ground-truth read.
 */
TEST(GroundTruth, BlackBoxExperimentNeverPeeks)
{
    DramModule module(smallSpec(TrrVersion::kATrr1), 41);
    SoftMcHost host(module);
    MetricsRegistry registry;
    host.attachMetrics(&registry);

    const DiscoveredMapping mapping =
        DiscoveredMapping::identity(module.spec().rowsPerBank);
    RowScoutConfig scout_cfg;
    scout_cfg.rowEnd = 2'048;
    scout_cfg.layout = RowGroupLayout::parse("R-R");
    scout_cfg.groupCount = 1;
    scout_cfg.consistencyChecks = 15;
    RowScout scout(host, mapping, scout_cfg);
    const auto groups = scout.scout();
    ASSERT_FALSE(groups.empty());

    TrrAnalyzer analyzer(host, mapping);
    TrrExperimentConfig cfg;
    cfg.aggressors = {{groups.front().gapPhysRows().front(), 3'000}};
    cfg.reset = TrrResetMode::kDummyHammer;
    cfg.resetRefs = 128;
    analyzer.runExperiment(groups.front(), cfg);

    EXPECT_EQ(module.groundTruthPeeks(), 0u);

    // ... while the chip-side truth was being written all along.
    GroundTruthProbe probe = module.groundTruthProbe();
    EXPECT_GT(probe.counter("trr.trr_capable_refs"), 0u);
    EXPECT_EQ(module.groundTruthPeeks(), 1u);
}

} // namespace
} // namespace utrr
