#include <gtest/gtest.h>

#include "dram/bank.hh"

namespace utrr
{
namespace
{

struct BankFixture : public ::testing::Test
{
    BankFixture()
        : gen(RetentionModelConfig{}, hammerConfig(), 1, 64 * 1024),
          bank(0, 4'096, &gen)
    {
    }

    static HammerModelConfig
    hammerConfig()
    {
        HammerModelConfig cfg;
        cfg.hcFirst = 1'000;
        return cfg;
    }

    PhysicsGenerator gen;
    DramBank bank;
};

TEST_F(BankFixture, ActivateWriteReadRoundTrip)
{
    bank.activate(100, 0);
    bank.writeOpenRow(DataPattern::allOnes(), 100, 0);
    const RowReadout readout = bank.readOpenRow();
    bank.precharge(0);
    EXPECT_EQ(readout.countFlipsVs(DataPattern::allOnes(), 100), 0);
    EXPECT_EQ(bank.openRow(), kInvalidRow);
}

TEST_F(BankFixture, OpenRowTracked)
{
    EXPECT_EQ(bank.openRow(), kInvalidRow);
    bank.activate(7, 0);
    EXPECT_EQ(bank.openRow(), 7);
    bank.precharge(0);
    EXPECT_EQ(bank.openRow(), kInvalidRow);
}

TEST_F(BankFixture, ActCountsTracked)
{
    for (int i = 0; i < 5; ++i) {
        bank.activate(9, i);
        bank.precharge(i);
    }
    EXPECT_EQ(bank.actCount(), 5u);
}

TEST_F(BankFixture, ActivationDisturbsNeighbours)
{
    // Hammer row 100 many times; neighbours accumulate charge.
    for (int i = 0; i < 50; ++i) {
        bank.activate(100, i);
        bank.precharge(i);
    }
    const RowState *victim = bank.peekRow(101);
    ASSERT_NE(victim, nullptr);
    EXPECT_GT(victim->hammerCharge(), 0.0);
    EXPECT_EQ(victim->lastDisturber(), 100);
}

TEST_F(BankFixture, RepeatedActsDiscountedVsAlternating)
{
    // Single-sided: every disturbance after the first comes from the
    // same row and is weighted down.
    for (int i = 0; i < 100; ++i) {
        bank.activate(100, i);
        bank.precharge(i);
    }
    const double single = bank.peekRow(101)->hammerCharge();

    // Alternating double-sided: 100 ACTs total on the two sides.
    for (int i = 0; i < 50; ++i) {
        bank.activate(200, i);
        bank.precharge(i);
        bank.activate(202, i);
        bank.precharge(i);
    }
    const double alternating = bank.peekRow(201)->hammerCharge();
    EXPECT_GT(alternating, 1.5 * single);
}

TEST_F(BankFixture, DistanceTwoWeaker)
{
    for (int i = 0; i < 100; ++i) {
        bank.activate(300, i);
        bank.precharge(i);
    }
    const double d1 = bank.peekRow(301)->hammerCharge();
    const double d2 = bank.peekRow(302)->hammerCharge();
    EXPECT_GT(d1, 5.0 * d2);
}

TEST_F(BankFixture, RefreshRangeRestoresRows)
{
    bank.activate(50, 0);
    bank.writeOpenRow(DataPattern::allOnes(), 50, 0);
    bank.precharge(0);
    // Let it decay past any retention time, but refresh it first.
    bank.refreshRange(0, 100, msToNs(50));
    EXPECT_GT(bank.rowRefreshCount(), 0u);
    const RowState *row = bank.peekRow(50);
    EXPECT_EQ(row->lastRefresh(), msToNs(50));
}

TEST_F(BankFixture, RefreshRowOnUntouchedRowIsNoop)
{
    bank.refreshRow(999, 0);
    EXPECT_EQ(bank.peekRow(999), nullptr);
}

TEST_F(BankFixture, MaterializedRowsGrowLazily)
{
    EXPECT_EQ(bank.materializedRows(), 0u);
    bank.activate(10, 0);
    bank.precharge(0);
    // Activated row plus its 4 disturbed neighbours.
    EXPECT_EQ(bank.materializedRows(), 5u);
}

TEST_F(BankFixture, HammerCellsAttachLazilyAtChargeThreshold)
{
    // Light disturbance materializes the victim with retention physics
    // only: the ~cellsPerRow hammer population stays deferred.
    for (int i = 0; i < 10; ++i) {
        bank.activate(400, i);
        bank.precharge(i);
    }
    const RowState *victim = bank.peekRow(401);
    ASSERT_NE(victim, nullptr);
    EXPECT_GT(victim->hammerCharge(), 0.0);
    EXPECT_FALSE(victim->hasHammerCells());

    // Interleaved double-sided hammering far past the base threshold;
    // the next refresh crosses needsHammerCells() and attaches the
    // deferred population before restoring the row.
    for (int i = 0; i < 10'000; ++i) {
        bank.activate(400, 100 + i);
        bank.precharge(100 + i);
        bank.activate(402, 100 + i);
        bank.precharge(100 + i);
    }
    bank.refreshRow(401, 20'000);
    victim = bank.peekRow(401);
    EXPECT_TRUE(victim->hasHammerCells());
    EXPECT_EQ(victim->hammerCharge(), 0.0);
}

TEST_F(BankFixture, RefreshRangeClampsToPhysicalBounds)
{
    bank.activate(0, 0);
    bank.writeOpenRow(DataPattern::allOnes(), 0, 0);
    bank.precharge(0);
    // A sweep window extending past both ends of the bank clamps to
    // the physical row range: only the materialized rows (0 plus its
    // two disturbed right neighbours) are refreshed.
    bank.refreshRange(-100, 1 << 20, msToNs(10));
    EXPECT_EQ(bank.rowRefreshCount(), 3u);
    EXPECT_EQ(bank.peekRow(0)->lastRefresh(), msToNs(10));
}

TEST(PairedBank, OnlyPairRowDisturbed)
{
    HammerModelConfig ham;
    ham.hcFirst = 1'000;
    ham.paired = true;
    PhysicsGenerator gen(RetentionModelConfig{}, ham, 2, 64 * 1024);
    DramBank bank(0, 4'096, &gen);

    for (int i = 0; i < 50; ++i) {
        bank.activate(101, i); // odd row: pair is 100
        bank.precharge(i);
    }
    ASSERT_NE(bank.peekRow(100), nullptr);
    EXPECT_GT(bank.peekRow(100)->hammerCharge(), 0.0);
    // Non-pair neighbour 102 must be untouched.
    EXPECT_EQ(bank.peekRow(102), nullptr);
}

TEST(DataCoupling, SameDataDisturbsLess)
{
    HammerModelConfig ham;
    ham.hcFirst = 1'000;
    PhysicsGenerator gen(RetentionModelConfig{}, ham, 3, 64 * 1024);
    DramBank bank(0, 4'096, &gen);

    // Victim 101 stores ones; aggressor 100 stores zeros (inverse).
    bank.activate(101, 0);
    bank.writeOpenRow(DataPattern::allOnes(), 101, 0);
    bank.precharge(0);
    bank.activate(100, 0);
    bank.writeOpenRow(DataPattern::allZeros(), 100, 0);
    bank.precharge(0);
    for (int i = 0; i < 100; ++i) {
        bank.activate(100, i);
        bank.precharge(i);
    }
    const double inverse_data = bank.peekRow(101)->hammerCharge();

    // Same set-up but aggressor stores the same data as the victim.
    bank.activate(201, 0);
    bank.writeOpenRow(DataPattern::allOnes(), 201, 0);
    bank.precharge(0);
    bank.activate(200, 0);
    bank.writeOpenRow(DataPattern::allOnes(), 200, 0);
    bank.precharge(0);
    for (int i = 0; i < 100; ++i) {
        bank.activate(200, i);
        bank.precharge(i);
    }
    const double same_data = bank.peekRow(201)->hammerCharge();
    EXPECT_LT(same_data, inverse_data);
}

} // namespace
} // namespace utrr
