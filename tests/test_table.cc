#include <gtest/gtest.h>

#include <sstream>

#include "common/table.hh"

namespace utrr
{
namespace
{

TEST(TextTable, AlignsColumns)
{
    TextTable table;
    table.header({"a", "long-header", "c"});
    table.addRow(1, 2, 3);
    table.addRow("xx", "y", "zzz");
    std::ostringstream oss;
    table.print(oss);
    const std::string out = oss.str();
    // Every row has the same separator positions.
    std::istringstream lines(out);
    std::string header;
    std::string sep;
    std::string row1;
    std::string row2;
    std::getline(lines, header);
    std::getline(lines, sep);
    std::getline(lines, row1);
    std::getline(lines, row2);
    EXPECT_EQ(header.find('|'), row1.find('|'));
    EXPECT_EQ(row1.find('|'), row2.find('|'));
    EXPECT_NE(header.find("long-header"), std::string::npos);
}

TEST(TextTable, TitlePrinted)
{
    TextTable table("My Title");
    table.header({"x"});
    table.addRow(1);
    std::ostringstream oss;
    table.print(oss);
    EXPECT_NE(oss.str().find("== My Title =="), std::string::npos);
}

TEST(TextTable, RowsCounted)
{
    TextTable table;
    EXPECT_EQ(table.rows(), 0u);
    table.addRow(1, 2);
    table.addRow(3, 4);
    EXPECT_EQ(table.rows(), 2u);
}

TEST(TextTable, MixedCellTypes)
{
    TextTable table;
    table.addRow(std::string("s"), "literal", 42, 3.5, -1);
    std::ostringstream oss;
    table.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("literal"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    EXPECT_NE(out.find("3.5"), std::string::npos);
}

TEST(FmtDouble, TrimsTrailingZeros)
{
    EXPECT_EQ(fmtDouble(1.0), "1");
    EXPECT_EQ(fmtDouble(1.5), "1.5");
    EXPECT_EQ(fmtDouble(1.25), "1.25");
    EXPECT_EQ(fmtDouble(1.234, 2), "1.23");
    EXPECT_EQ(fmtDouble(0.0), "0");
}

TEST(FmtPercent, Formats)
{
    EXPECT_EQ(fmtPercent(0.5), "50%");
    EXPECT_EQ(fmtPercent(0.999), "99.9%");
    EXPECT_EQ(fmtPercent(1.0), "100%");
    EXPECT_EQ(fmtPercent(0.12345, 2), "12.35%");
}

} // namespace
} // namespace utrr
