#include <gtest/gtest.h>

#include "core/mapping_reveng.hh"
#include "dram/module.hh"

namespace utrr
{
namespace
{

ModuleSpec
smallSpec(RowScramble scramble, int remaps = 0)
{
    ModuleSpec spec = *findModuleSpec("A5");
    spec.trr = TrrVersion::kNone;
    spec.rowsPerBank = 4 * 1024;
    spec.banks = 1;
    spec.remapsPerBank = remaps;
    spec.scramble = scramble;
    spec.hcFirst = 5'000; // keep probe hammering fast
    return spec;
}

MappingReveng::Config
quickConfig()
{
    MappingReveng::Config cfg;
    cfg.probes = 8;
    cfg.probeStart = 32;
    cfg.probeStride = 409;
    cfg.hammersStart = 64 * 1024;
    cfg.hammersMax = 2 * 1024 * 1024;
    return cfg;
}

class SchemeDiscovery : public ::testing::TestWithParam<RowScramble>
{
};

TEST_P(SchemeDiscovery, RecoversTheDecoderScramble)
{
    DramModule module(smallSpec(GetParam()), 31);
    SoftMcHost host(module);
    MappingReveng reveng(host, quickConfig());
    const DiscoveredMapping mapping = reveng.discover();
    EXPECT_EQ(mapping.scheme(), GetParam());
    EXPECT_TRUE(mapping.anomalies().empty());
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeDiscovery,
                         ::testing::Values(RowScramble::kSequential,
                                           RowScramble::kSwapHalfPairs,
                                           RowScramble::kBitSwap01));

TEST(MappingReveng, ProbeFindsPhysicalNeighbours)
{
    DramModule module(smallSpec(RowScramble::kSwapHalfPairs), 32);
    SoftMcHost host(module);
    MappingReveng reveng(host, quickConfig());

    // Probe logical row 102 (phys 103 under swap-half-pairs): its
    // physical neighbours 102 and 104 are logical 103 and 104
    // (phys 104 has bit 1 clear, so it maps to itself).
    const auto result = reveng.probe(102);
    ASSERT_FALSE(result.flippedNeighbours.empty());
    for (Row neighbour : {103, 104}) {
        EXPECT_NE(std::find(result.flippedNeighbours.begin(),
                            result.flippedNeighbours.end(), neighbour),
                  result.flippedNeighbours.end())
            << "missing neighbour " << neighbour;
    }
}

TEST(MappingReveng, RemappedProbeFlagsAnomaly)
{
    DramModule module(smallSpec(RowScramble::kSequential, 16), 33);
    SoftMcHost host(module);

    // Find a remapped logical row; hammering it disturbs only spare
    // rows, so the probe sees no flips in the logical neighbourhood.
    Row remapped = kInvalidRow;
    for (Row r = 8; r < module.spec().rowsPerBank - 8; ++r) {
        if (module.mapping(0).isRemapped(r)) {
            remapped = r;
            break;
        }
    }
    ASSERT_NE(remapped, kInvalidRow);

    MappingReveng reveng(host, quickConfig());
    const auto result = reveng.probe(remapped);
    EXPECT_TRUE(result.flippedNeighbours.empty());
    EXPECT_EQ(result.hammersUsed, 0);
}

TEST(MappingReveng, EscalationReportsHammersUsed)
{
    DramModule module(smallSpec(RowScramble::kSequential), 34);
    SoftMcHost host(module);
    MappingReveng reveng(host, quickConfig());
    const auto result = reveng.probe(500);
    ASSERT_FALSE(result.flippedNeighbours.empty());
    EXPECT_GE(result.hammersUsed, quickConfig().hammersStart);
}

TEST(DiscoveredMappingApi, IdentityAndAnomalies)
{
    DiscoveredMapping identity = DiscoveredMapping::identity(128);
    EXPECT_EQ(identity.toPhysical(7), 7);
    EXPECT_EQ(identity.toLogical(7), 7);
    EXPECT_FALSE(identity.isAnomalous(7));

    DiscoveredMapping withAnomaly(RowScramble::kSwapHalfPairs, 128,
                                  {42});
    EXPECT_TRUE(withAnomaly.isAnomalous(42));
    EXPECT_EQ(withAnomaly.toPhysical(2), 3);
    EXPECT_EQ(withAnomaly.toLogical(3), 2);
}

} // namespace
} // namespace utrr
