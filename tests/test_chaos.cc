/**
 * @file
 * Self-healing pipeline tests: Row Scout eviction/replacement under a
 * mid-experiment VRT flip, TRR Analyzer quorum voting under read noise,
 * reveng fresh-row retries, the reveng-level watchdog, and end-to-end
 * identification of representative modules under the documented chaos
 * fault rates.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/reveng.hh"
#include "core/row_scout.hh"
#include "core/trr_analyzer.hh"
#include "dram/module.hh"
#include "fault/fault_injector.hh"
#include "softmc/host.hh"

namespace utrr
{
namespace
{

ModuleSpec
smallSpec(TrrVersion trr)
{
    ModuleSpec spec = *findModuleSpec("A5");
    spec.trr = trr;
    spec.rowsPerBank = 4 * 1024;
    spec.banks = 1;
    spec.remapsPerBank = 0;
    spec.scramble = RowScramble::kSequential;
    return spec;
}

bool
groupsContainPhys(const std::vector<RowGroup> &groups, Row phys)
{
    for (const RowGroup &group : groups)
        for (const ProfiledRow &row : group.rows)
            if (row.physRow == phys)
                return true;
    return false;
}

TEST(ChaosRowScout, EvictsVrtFlippedRowAndReplacesGroup)
{
    DramModule module(smallSpec(TrrVersion::kNone), 41);
    SoftMcHost host(module);
    MetricsRegistry metrics;
    host.attachMetrics(&metrics);
    const auto mapping =
        DiscoveredMapping::identity(module.spec().rowsPerBank);

    RowScoutConfig cfg;
    cfg.rowEnd = 2'048;
    cfg.layout = RowGroupLayout::parse("R-R");
    cfg.groupCount = 2;
    cfg.consistencyChecks = 10;
    cfg.revalidateChecks = 4;
    RowScout scout(host, mapping, cfg);
    std::vector<RowGroup> groups = scout.scout();
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(scout.evictionsPerformed(), 0u);

    // A VRT mode flip after acceptance: the row's retention jumps 3x,
    // so it no longer fails after its profiled T — the retention side
    // channel would silently misread "no flips" as "TRR refreshed it".
    const Row sabotaged = groups.front().rows.front().physRow;
    module.scaleRowRetention(0, sabotaged, 3.0, host.now());

    groups = scout.revalidateAndReplace(std::move(groups));
    EXPECT_EQ(scout.evictionsPerformed(), 1u);
    EXPECT_GE(scout.replacementsFound(), 1u);
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_FALSE(groupsContainPhys(groups, sabotaged));
    EXPECT_EQ(metrics.counter("row_scout.evictions").value, 1u);
    EXPECT_GE(metrics.counter("row_scout.replacements").value, 1u);
    // Replacements share the evicted group's retention time.
    EXPECT_EQ(groups.front().retention, groups.back().retention);
}

TEST(ChaosTrrAnalyzer, QuorumVotingAbsorbsReadNoise)
{
    DramModule module(smallSpec(TrrVersion::kNone), 43);
    SoftMcHost host(module);
    MetricsRegistry metrics;
    host.attachMetrics(&metrics);
    const auto mapping =
        DiscoveredMapping::identity(module.spec().rowsPerBank);

    RowScoutConfig scout_cfg;
    scout_cfg.rowEnd = 2'048;
    scout_cfg.layout = RowGroupLayout::parse("R-R");
    scout_cfg.groupCount = 1;
    scout_cfg.consistencyChecks = 10;
    RowScout scout(host, mapping, scout_cfg);
    const auto groups = scout.scout();
    ASSERT_FALSE(groups.empty());

    // Every readout is corrupted by one bit; with no TRR and no refresh
    // the profiled rows MUST read back flipped, and without quorum
    // voting a noise bit landing on a flipped cell could cancel it.
    FaultConfig fault_cfg;
    fault_cfg.readNoiseChancePerRead = 1.0;
    fault_cfg.readNoiseMaxBits = 1;
    FaultInjector injector(fault_cfg, 7);
    host.attachFaultInjector(&injector);

    TrrAnalyzer analyzer(host, mapping);
    TrrExperimentConfig cfg;
    cfg.aggressors = {{groups.front().gapPhysRows().front(), 3'000}};
    cfg.reset = TrrResetMode::kNone;
    const auto result = analyzer.runExperiment(groups.front(), cfg);

    EXPECT_FALSE(result.anyRefreshed());
    EXPECT_GT(result.flips[0], 0);
    EXPECT_GT(result.flips[1], 0);
    // Two profiled rows, three votes each.
    EXPECT_EQ(metrics.counter("trr_analyzer.read_votes").value, 6u);
    EXPECT_GT(injector.stats().noiseBits, 0u);
}

TEST(ChaosReveng, RetriesWithFreshRowsOnDegenerateResult)
{
    // A module with TRR disabled never shows a refresh event, so period
    // discovery is degenerate by construction; the driver must burn the
    // pool and retry with fresh rows exactly maxRetries times.
    DramModule module(smallSpec(TrrVersion::kNone), 47);
    SoftMcHost host(module);
    MetricsRegistry metrics;
    host.attachMetrics(&metrics);
    const DiscoveredMapping mapping =
        DiscoveredMapping::identity(module.spec().rowsPerBank);

    TrrRevengConfig cfg;
    cfg.scoutRowEnd = 2'048;
    cfg.consistencyChecks = 10;
    cfg.periodIterations = 12;
    cfg.maxRetries = 2;
    TrrReveng reveng(host, mapping, cfg);

    EXPECT_EQ(reveng.discoverTrrRefPeriod(), 0);
    EXPECT_EQ(reveng.freshRowRetriesPerformed(), 2u);
    EXPECT_EQ(metrics.counter("reveng.fresh_row_retries").value, 2u);
}

TEST(ChaosReveng, WatchdogBudgetFailsPathologicalConfigCleanly)
{
    DramModule module(smallSpec(TrrVersion::kATrr1), 53);
    SoftMcHost host(module);
    const DiscoveredMapping mapping =
        DiscoveredMapping::identity(module.spec().rowsPerBank);

    TrrRevengConfig cfg;
    cfg.scoutRowEnd = 2'048;
    cfg.consistencyChecks = 10;
    // 1 ms of simulated time cannot even cover one retention wait: the
    // run must end in a structured timeout, not spin or abort.
    cfg.watchdogBudgetNs = 1 * kNsPerMs;
    TrrReveng reveng(host, mapping, cfg);

    try {
        reveng.discoverAll(false);
        FAIL() << "watchdog did not fire";
    } catch (const WatchdogTimeout &e) {
        EXPECT_EQ(e.budgetNs, 1 * kNsPerMs);
        EXPECT_GT(e.nowNs, e.deadlineNs);
    }
    host.clearWatchdog();
}

struct ChaosCase
{
    const char *module;
};

class ChaosIdentification : public testing::TestWithParam<ChaosCase>
{
};

/**
 * End-to-end acceptance: under the documented default chaos rates the
 * pipeline still derives the correct TRR-to-REF ratio and neighbour
 * count (one representative module per vendor; the full 45-module sweep
 * is `reverse_engineer --chaos`).
 */
TEST_P(ChaosIdentification, PeriodAndNeighboursSurviveInjection)
{
    const ModuleSpec spec = *findModuleSpec(GetParam().module);
    DramModule module(spec, 2021);
    SoftMcHost host(module);
    MetricsRegistry metrics;
    host.attachMetrics(&metrics);
    FaultInjector injector(FaultConfig::chaosDefaults(), 1);
    host.attachFaultInjector(&injector);

    const DiscoveredMapping mapping(spec.scramble, spec.rowsPerBank);
    TrrRevengConfig cfg;
    cfg.scoutRowEnd = 6 * 1024;
    cfg.consistencyChecks = 15;
    cfg.periodIterations = 64;
    cfg.revalidateChecks = 8;
    TrrReveng reveng(host, mapping, cfg);
    host.setWatchdogBudget(3'600ll * 1'000'000'000);

    const TrrTraits truth = spec.traits();
    EXPECT_EQ(reveng.discoverTrrRefPeriod(), truth.trrToRefPeriod);
    EXPECT_EQ(reveng.discoverNeighborsRefreshed(),
              spec.paired() ? 1 : truth.neighborsRefreshed);
}

INSTANTIATE_TEST_SUITE_P(RepresentativeModules, ChaosIdentification,
                         testing::Values(ChaosCase{"A5"},
                                         ChaosCase{"B8"},
                                         ChaosCase{"C9"}),
                         [](const auto &info) {
                             return info.param.module;
                         });

} // namespace
} // namespace utrr
