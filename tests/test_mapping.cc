#include <gtest/gtest.h>

#include <set>

#include "dram/mapping.hh"

namespace utrr
{
namespace
{

TEST(Scramble, SequentialIsIdentity)
{
    for (Row r = 0; r < 64; ++r)
        EXPECT_EQ(applyScramble(RowScramble::kSequential, r), r);
}

TEST(Scramble, SwapHalfPairsLayout)
{
    // 0,1,2,3 -> 0,1,3,2
    EXPECT_EQ(applyScramble(RowScramble::kSwapHalfPairs, 0), 0);
    EXPECT_EQ(applyScramble(RowScramble::kSwapHalfPairs, 1), 1);
    EXPECT_EQ(applyScramble(RowScramble::kSwapHalfPairs, 2), 3);
    EXPECT_EQ(applyScramble(RowScramble::kSwapHalfPairs, 3), 2);
    EXPECT_EQ(applyScramble(RowScramble::kSwapHalfPairs, 6), 7);
}

TEST(Scramble, BitSwap01Layout)
{
    EXPECT_EQ(applyScramble(RowScramble::kBitSwap01, 0), 0);
    EXPECT_EQ(applyScramble(RowScramble::kBitSwap01, 1), 2);
    EXPECT_EQ(applyScramble(RowScramble::kBitSwap01, 2), 1);
    EXPECT_EQ(applyScramble(RowScramble::kBitSwap01, 3), 3);
    EXPECT_EQ(applyScramble(RowScramble::kBitSwap01, 5), 6);
}

class ScrambleProperty : public ::testing::TestWithParam<RowScramble>
{
};

TEST_P(ScrambleProperty, IsAnInvolution)
{
    for (Row r = 0; r < 1'024; ++r)
        EXPECT_EQ(applyScramble(GetParam(),
                                applyScramble(GetParam(), r)),
                  r);
}

TEST_P(ScrambleProperty, IsABijectionOverBlocks)
{
    std::set<Row> seen;
    for (Row r = 0; r < 1'024; ++r)
        seen.insert(applyScramble(GetParam(), r));
    EXPECT_EQ(seen.size(), 1'024u);
    EXPECT_EQ(*seen.begin(), 0);
    EXPECT_EQ(*seen.rbegin(), 1'023);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ScrambleProperty,
                         ::testing::Values(RowScramble::kSequential,
                                           RowScramble::kSwapHalfPairs,
                                           RowScramble::kBitSwap01));

TEST(RowMapping, NoRemapsRoundTrips)
{
    RowMapping mapping(RowScramble::kSwapHalfPairs, 1'024, 0, Rng(1));
    for (Row r = 0; r < 1'024; ++r)
        EXPECT_EQ(mapping.toLogical(mapping.toPhysical(r)), r);
}

TEST(RowMapping, RemappedRowsLandInSpares)
{
    RowMapping mapping(RowScramble::kSequential, 1'024, 5, Rng(2));
    EXPECT_EQ(mapping.remapCount(), 5);
    int in_spares = 0;
    for (Row r = 0; r < 1'024; ++r) {
        const Row phys = mapping.toPhysical(r);
        if (mapping.isRemapped(r)) {
            EXPECT_GE(phys, 1'024);
            ++in_spares;
        } else {
            EXPECT_LT(phys, 1'024);
        }
        EXPECT_EQ(mapping.toLogical(phys), r);
    }
    EXPECT_EQ(in_spares, 5);
}

TEST(RowMapping, VacatedPhysicalSlotsHaveNoLogicalRow)
{
    RowMapping mapping(RowScramble::kSequential, 1'024, 3, Rng(3));
    int vacated = 0;
    for (Row p = 0; p < 1'024; ++p) {
        if (mapping.toLogical(p) == kInvalidRow)
            ++vacated;
    }
    EXPECT_EQ(vacated, 3);
}

TEST(RowMapping, UnusedSparesHaveNoLogicalRow)
{
    RowMapping mapping(RowScramble::kSequential, 1'024, 2, Rng(4), 64);
    EXPECT_EQ(mapping.physicalRows(), 1'024 + 64);
    int mapped_spares = 0;
    for (Row p = 1'024; p < mapping.physicalRows(); ++p) {
        if (mapping.toLogical(p) != kInvalidRow)
            ++mapped_spares;
    }
    EXPECT_EQ(mapped_spares, 2);
}

TEST(RowMapping, MappingIsBijectiveWithRemaps)
{
    RowMapping mapping(RowScramble::kBitSwap01, 2'048, 8, Rng(5));
    std::set<Row> phys;
    for (Row r = 0; r < 2'048; ++r)
        phys.insert(mapping.toPhysical(r));
    EXPECT_EQ(phys.size(), 2'048u);
}

TEST(RowMapping, ScrambleNames)
{
    EXPECT_EQ(scrambleName(RowScramble::kSequential), "sequential");
    EXPECT_EQ(scrambleName(RowScramble::kSwapHalfPairs),
              "swap-half-pairs");
    EXPECT_EQ(scrambleName(RowScramble::kBitSwap01), "bit-swap-01");
}

} // namespace
} // namespace utrr
