#include <gtest/gtest.h>

#include "attack/sweep.hh"
#include "core/mapping_reveng.hh"
#include "core/reveng.hh"
#include "dram/module.hh"
#include "ecc/ecc_analysis.hh"
#include "softmc/host.hh"

namespace utrr
{
namespace
{

/**
 * Full U-TRR pipeline on one module per vendor: discover the mapping
 * black-box, reverse-engineer the TRR parameters, build the custom
 * pattern from the *discovered* profile, and verify it defeats the TRR
 * while the double-sided baseline does not. This closes the paper's
 * methodology loop end to end.
 */
void
runPipeline(const std::string &module_name, int expected_period,
            DetectionType expected_detection)
{
    const ModuleSpec spec = *findModuleSpec(module_name);
    DramModule module(spec, 77);
    SoftMcHost host(module);

    // 1. Mapping reverse engineering (§5.3), fully black-box.
    MappingReveng::Config map_cfg;
    map_cfg.probes = 6;
    MappingReveng mapper(host, map_cfg);
    const DiscoveredMapping mapping = mapper.discover();
    EXPECT_EQ(mapping.scheme(), spec.scramble) << module_name;

    // 2. TRR reverse engineering (§6).
    TrrRevengConfig reveng_cfg;
    reveng_cfg.scoutRowEnd = 6 * 1024;
    reveng_cfg.consistencyChecks = 30;
    TrrReveng reveng(host, mapping, reveng_cfg);
    TrrProfile profile;
    profile.trrToRefPeriod = reveng.discoverTrrRefPeriod();
    profile.detection = reveng.discoverDetectionType();
    EXPECT_EQ(profile.trrToRefPeriod, expected_period) << module_name;
    EXPECT_EQ(profile.detection, expected_detection) << module_name;

    // 3. Craft the custom pattern from the discovered profile (§7.1).
    const CustomPatternParams params =
        customParamsFromProfile(spec.vendor, profile, spec.paired());
    SweepConfig sweep_cfg;
    sweep_cfg.positions = 4;
    const SweepResult custom =
        sweepCustomPattern(host, mapping, params, sweep_cfg);
    EXPECT_GE(custom.vulnerableRows, 2) << module_name;

    // 4. The state-of-the-art baseline stays blocked (§7, footnote 18).
    const SweepResult baseline = sweepBaseline(
        host, mapping, BaselineKind::kDoubleSided, sweep_cfg);
    EXPECT_EQ(baseline.vulnerableRows, 0) << module_name;
}

TEST(Pipeline, VendorA)
{
    runPipeline("A5", 9, DetectionType::kCounterBased);
}

TEST(Pipeline, VendorB)
{
    runPipeline("B8", 4, DetectionType::kSamplingBased);
}

TEST(Pipeline, VendorC)
{
    runPipeline("C9", 9, DetectionType::kWindowBased);
}

TEST(Pipeline, EccBypassEndToEnd)
{
    // §7.4 in miniature: collect real flip patterns from the attack
    // and push them through the ECC codecs.
    const ModuleSpec spec = *findModuleSpec("B13");
    DramModule module(spec, 78);
    SoftMcHost host(module);
    DiscoveredMapping mapping(spec.scramble, spec.rowsPerBank);

    SweepConfig cfg;
    cfg.positions = 8;
    const SweepResult sweep = sweepCustomPattern(
        host, mapping, defaultCustomParams(spec), cfg);
    ASSERT_GT(sweep.wordFlips.total(), 0u);

    const EccStudy study =
        studyWordFlipHistogram(sweep.wordFlips, {14});
    // Single-flip words dominate and are corrected...
    EXPECT_GT(study.secded.of(EccOutcome::kCorrected), 0u);
    // ...but multi-flip words exist and defeat SECDED's guarantee.
    EXPECT_GT(study.secded.of(EccOutcome::kDetected) +
                  study.secded.silentCorruption(),
              0u);
    // An RS code with 14 parity symbols corrects everything the
    // pattern produced (flips per word <= 7 in this sweep).
    if (sweep.wordFlips.maxValue() <= 7) {
        EXPECT_EQ(study.reedSolomon.at(14).silentCorruption(), 0u);
        EXPECT_EQ(study.reedSolomon.at(14).of(EccOutcome::kDetected),
                  0u);
    }
}

TEST(Pipeline, HammeringModeTradeoff)
{
    // §5.2: interleaved hammering flips more bits than cascaded for
    // the same hammer budget. Two identically seeded modules give the
    // same victim the same cell physics, isolating the mode effect.
    ModuleSpec spec = *findModuleSpec("A5");
    spec.trr = TrrVersion::kNone;
    spec.rowsPerBank = 8 * 1024;
    spec.remapsPerBank = 0;

    auto flips_with_mode = [&](bool interleaved) {
        DramModule module(spec, 79);
        SoftMcHost host(module);
        const Row victim = 2'000;
        host.writeRow(0, victim, DataPattern::allOnes());
        host.writeRow(0, victim - 1, DataPattern::allZeros());
        host.writeRow(0, victim + 1, DataPattern::allZeros());
        const std::vector<std::pair<Bank, Row>> rows = {
            {0, victim - 1}, {0, victim + 1}};
        const std::vector<int> counts = {60'000, 60'000};
        if (interleaved)
            host.hammerInterleaved(rows, counts);
        else
            host.hammerCascaded(rows, counts);
        return host.readRow(0, victim).countFlipsVs(
            DataPattern::allOnes(), victim);
    };
    const int interleaved = flips_with_mode(true);
    const int cascaded = flips_with_mode(false);
    EXPECT_GT(interleaved, cascaded);
    EXPECT_GT(interleaved, 0);
}

} // namespace
} // namespace utrr
