#include <gtest/gtest.h>

#include "attack/evaluator.hh"
#include "attack/pattern.hh"
#include "attack/sweep.hh"
#include "attack/synth.hh"
#include "attack/trrespass.hh"
#include "dram/module.hh"
#include "softmc/host.hh"

namespace utrr
{
namespace
{

struct AttackFixture
{
    explicit AttackFixture(const std::string &name,
                           std::uint64_t seed = 21)
        : spec(*findModuleSpec(name)), module(spec, seed), host(module),
          mapping(spec.scramble, spec.rowsPerBank)
    {
    }

    SweepConfig
    sweepConfig(int positions = 6)
    {
        SweepConfig cfg;
        cfg.positions = positions;
        return cfg;
    }

    ModuleSpec spec;
    DramModule module;
    SoftMcHost host;
    DiscoveredMapping mapping;
};

TEST(Patterns, SlotBudgetsRespected)
{
    AttackFixture fix("A5");
    const Timing timing = fix.host.timing();
    const Time slot_budget = timing.tREFI - timing.tRFC;

    CustomPatternParams params = defaultCustomParams(fix.spec);
    auto pattern = makeCustomPattern(params, fix.host, fix.mapping, 0,
                                     5'000);
    pattern->begin(fix.host);
    for (std::uint64_t slot = 0; slot < 32; ++slot) {
        const Time start = fix.host.now();
        pattern->runSlot(fix.host, slot);
        EXPECT_LE(fix.host.now() - start, slot_budget)
            << "slot " << slot;
        fix.host.wait(slot_budget - (fix.host.now() - start));
        fix.host.ref();
    }
}

TEST(Patterns, VendorAHammerCounts)
{
    AttackFixture fix("A5");
    CustomPatternParams params = defaultCustomParams(fix.spec);
    auto pattern = makeCustomPattern(params, fix.host, fix.mapping, 0,
                                     5'000);
    const std::uint64_t before = fix.host.actCount();
    pattern->begin(fix.host);
    pattern->runSlot(fix.host, 0);
    // 2 aggressors x 24 + 16 dummies x 6 = 144 ACTs per slot.
    EXPECT_EQ(fix.host.actCount() - before, 144u);
}

TEST(Patterns, AggressorRowsAreVictimNeighbours)
{
    AttackFixture fix("A5");
    CustomPatternParams params = defaultCustomParams(fix.spec);
    const Row anchor = 5'000;
    auto pattern = makeCustomPattern(params, fix.host, fix.mapping, 0,
                                     anchor);
    const auto aggressors = pattern->aggressorRows();
    ASSERT_EQ(aggressors.size(), 2u);
    std::vector<Row> phys;
    for (const auto &[bank, logical] : aggressors)
        phys.push_back(fix.mapping.toPhysical(logical));
    std::sort(phys.begin(), phys.end());
    EXPECT_EQ(phys[0], anchor - 1);
    EXPECT_EQ(phys[1], anchor + 1);
}

TEST(Patterns, PairedAggressorsArePairRows)
{
    AttackFixture fix("C7");
    CustomPatternParams params = defaultCustomParams(fix.spec);
    ASSERT_TRUE(params.paired);
    const Row anchor = 5'000; // even
    auto pattern = makeCustomPattern(params, fix.host, fix.mapping, 0,
                                     anchor);
    std::vector<Row> phys;
    for (const auto &[bank, logical] : pattern->aggressorRows())
        phys.push_back(fix.mapping.toPhysical(logical));
    std::sort(phys.begin(), phys.end());
    EXPECT_EQ(phys[0], anchor + 1);     // pair of anchor
    EXPECT_EQ(phys[1], anchor + 3);     // pair of anchor + 2
    const auto victims =
        customPatternVictims(params, fix.mapping, anchor);
    EXPECT_EQ(victims.size(), 2u);
}

TEST(Patterns, VendorBUsesMultipleBanksForDummies)
{
    AttackFixture fix("B8");
    CustomPatternParams params = defaultCustomParams(fix.spec);
    EXPECT_FALSE(params.perBankSampler);
    auto pattern = makeCustomPattern(params, fix.host, fix.mapping, 0,
                                     5'000);
    pattern->begin(fix.host);
    // Dummy hammering happens in banks other than the aggressor bank;
    // run a full window and check ACT distribution.
    for (std::uint64_t slot = 0; slot < 4; ++slot) {
        pattern->runSlot(fix.host, slot);
        fix.host.ref();
    }
    int banks_with_acts = 0;
    for (Bank b = 0; b < fix.spec.banks; ++b)
        banks_with_acts +=
            fix.module.bankAt(b).actCount() > 0 ? 1 : 0;
    EXPECT_GE(banks_with_acts, 4);
}

TEST(Patterns, VendorB3DummySharesAggressorBank)
{
    AttackFixture fix("B13");
    CustomPatternParams params = defaultCustomParams(fix.spec);
    EXPECT_TRUE(params.perBankSampler);
    auto pattern = makeCustomPattern(params, fix.host, fix.mapping, 0,
                                     5'000);
    pattern->begin(fix.host);
    for (std::uint64_t slot = 0; slot < 2; ++slot) {
        pattern->runSlot(fix.host, slot);
        fix.host.ref();
    }
    for (Bank b = 1; b < fix.spec.banks; ++b)
        EXPECT_EQ(fix.module.bankAt(b).actCount(), 0u);
}

TEST(AttackEvaluatorTest, AlignToTrrEventStopsAtEvent)
{
    AttackFixture fix("A5");
    AttackEvaluator evaluator(fix.host);
    const std::uint64_t before = fix.module.trrRefreshCount();
    evaluator.alignToTrrEvent(0, 9'000);
    EXPECT_GT(fix.module.trrRefreshCount(), before);
}

TEST(AttackEvaluatorTest, OutcomeAccounting)
{
    AttackOutcome outcome;
    outcome.victimFlips[{0, 1}] = 3;
    outcome.victimFlips[{0, 2}] = 0;
    outcome.victimFlips[{0, 3}] = 7;
    EXPECT_EQ(outcome.totalFlips(), 10);
    EXPECT_EQ(outcome.maxRowFlips(), 7);
    EXPECT_EQ(outcome.vulnerableRows(), 2);
}

TEST(Sweeps, CustomPatternBeatsBaselines)
{
    // The headline §7 result, in miniature: the U-TRR pattern flips
    // rows that single-, double- and many-sided hammering cannot.
    AttackFixture fix("A5");
    SweepConfig cfg;
    cfg.positions = 4;

    const SweepResult custom = sweepCustomPattern(
        fix.host, fix.mapping, defaultCustomParams(fix.spec), cfg);
    EXPECT_GE(custom.vulnerableRows, 3);
    EXPECT_GT(custom.maxRowFlips, 5);

    for (BaselineKind kind :
         {BaselineKind::kDoubleSided, BaselineKind::kManySided9}) {
        const SweepResult baseline =
            sweepBaseline(fix.host, fix.mapping, kind, cfg);
        EXPECT_EQ(baseline.vulnerableRows, 0) << baselineName(kind);
    }
}

TEST(Sweeps, WithoutTrrDoubleSidedFlips)
{
    // Sanity: the baselines fail *because of TRR*, not because the
    // hammering is too weak.
    ModuleSpec spec = *findModuleSpec("A5");
    spec.trr = TrrVersion::kNone;
    DramModule module(spec, 22);
    SoftMcHost host(module);
    DiscoveredMapping mapping(spec.scramble, spec.rowsPerBank);
    SweepConfig cfg;
    cfg.positions = 4;
    const SweepResult result =
        sweepBaseline(host, mapping, BaselineKind::kDoubleSided, cfg);
    EXPECT_GE(result.vulnerableRows, 3);
}

TEST(Sweeps, ResultArithmetic)
{
    SweepResult result;
    result.victimRowsTested = 10;
    result.vulnerableRows = 4;
    result.maxRowFlips = 30;
    result.hammersPerAggrPerRef = 20.0;
    EXPECT_DOUBLE_EQ(result.vulnerableFraction(), 0.4);
    EXPECT_DOUBLE_EQ(result.maxFlipsPerRowPerHammer(), 1.5);
}

// The non-uniform synthesizer must strictly dominate the uniform
// TRRespass baseline: one module per vendor where the black-box
// fuzzer finds nothing but the insight-seeded synthesis flips bits.
// Seeds are pinned — both searches are pure functions of them.
TEST(BaselineGuard, UniformFuzzerFailsWhereSynthesizerSucceeds)
{
    for (const char *name : {"A5", "B13", "C12"}) {
        AttackFixture fix(name, 2021);
        TrrespassFuzzer::Config fuzz_cfg;
        fuzz_cfg.attempts = 8;
        fuzz_cfg.positions = 2;
        TrrespassFuzzer fuzzer(fix.host, fix.mapping, fuzz_cfg, 1);
        const FuzzResult fuzz = fuzzer.fuzz();
        EXPECT_FALSE(fuzz.anyFlips())
            << name << ": uniform baseline unexpectedly flips ("
            << fuzz.best.describe() << ")";

        SynthConfig synth_cfg;
        synth_cfg.attempts = 8;
        synth_cfg.sweepBanks = 1;
        const SynthModuleResult synth = synthesizeForModule(
            fix.spec, synth_cfg, Rng(1).fork(name).fork("synth"));
        EXPECT_TRUE(synth.beaten) << name;
        EXPECT_GT(synth.verifyFlips, 0) << name;
    }
}

TEST(Sweeps, DefaultParamsPerVendor)
{
    EXPECT_EQ(defaultCustomParams(*findModuleSpec("A5")).vendor, 'A');
    EXPECT_EQ(defaultCustomParams(*findModuleSpec("A5")).trrPeriod, 9);
    EXPECT_EQ(defaultCustomParams(*findModuleSpec("B8")).aggressorHammers,
              220);
    // B_TRR3's 2-REF window only fits ~73 hammers per aggressor (§7.1).
    EXPECT_EQ(
        defaultCustomParams(*findModuleSpec("B13")).aggressorHammers,
        73);
    EXPECT_TRUE(defaultCustomParams(*findModuleSpec("C7")).paired);
    EXPECT_EQ(defaultCustomParams(*findModuleSpec("C12")).windowActs,
              1'024);
}

} // namespace
} // namespace utrr
