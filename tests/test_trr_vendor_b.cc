#include <gtest/gtest.h>

#include "trr/vendor_b.hh"

namespace utrr
{
namespace
{

VendorBTrr::Params
chipWide(int period = 4)
{
    VendorBTrr::Params params;
    params.trrRefPeriod = period;
    params.perBank = false;
    return params;
}

TEST(VendorBTrr, SamplesAfterEnoughActivations)
{
    // Obs. B3: thousands of consecutive ACTs to one row make its
    // detection essentially certain.
    VendorBTrr trr(1, chipWide(), 1);
    for (int i = 0; i < 2'000; ++i)
        trr.onActivate(0, 123);
    ASSERT_TRUE(trr.currentSample().has_value());
    EXPECT_EQ(trr.currentSample()->aggressorPhysRow, 123);
}

TEST(VendorBTrr, OnlyEveryFourthRefPerformsTrr)
{
    VendorBTrr trr(1, chipWide(4), 2);
    for (int i = 0; i < 2'000; ++i)
        trr.onActivate(0, 5);
    for (int ref = 1; ref <= 40; ++ref) {
        const auto actions = trr.onRefresh();
        EXPECT_EQ(!actions.empty(), ref % 4 == 0)
            << "unexpected action set at REF " << ref;
    }
}

TEST(VendorBTrr, ConfigurablePeriods)
{
    for (int period : {2, 9}) {
        VendorBTrr trr(1, chipWide(period), 3);
        for (int i = 0; i < 2'000; ++i)
            trr.onActivate(0, 5);
        int first_action_ref = 0;
        for (int ref = 1; ref <= period * 2; ++ref) {
            if (!trr.onRefresh().empty() && first_action_ref == 0)
                first_action_ref = ref;
        }
        EXPECT_EQ(first_action_ref, period);
    }
}

TEST(VendorBTrr, NewSampleOverwritesOld)
{
    // Obs. B4: sampling capacity of exactly one row.
    VendorBTrr trr(1, chipWide(), 4);
    for (int i = 0; i < 2'000; ++i)
        trr.onActivate(0, 111);
    for (int i = 0; i < 2'000; ++i)
        trr.onActivate(0, 222);
    ASSERT_TRUE(trr.currentSample().has_value());
    EXPECT_EQ(trr.currentSample()->aggressorPhysRow, 222);
}

TEST(VendorBTrr, SamplerSharedAcrossBanks)
{
    // Obs. B4: a row from another bank overwrites the sample.
    VendorBTrr trr(4, chipWide(), 5);
    for (int i = 0; i < 2'000; ++i)
        trr.onActivate(0, 111);
    for (int i = 0; i < 2'000; ++i)
        trr.onActivate(3, 333);
    ASSERT_TRUE(trr.currentSample().has_value());
    EXPECT_EQ(trr.currentSample()->bank, 3);
    EXPECT_EQ(trr.currentSample()->aggressorPhysRow, 333);
}

TEST(VendorBTrr, TrrRefreshDoesNotClearSample)
{
    // Obs. B5.
    VendorBTrr trr(1, chipWide(), 6);
    for (int i = 0; i < 2'000; ++i)
        trr.onActivate(0, 77);
    int detections = 0;
    for (int ref = 0; ref < 16; ++ref) {
        for (const auto &action : trr.onRefresh()) {
            EXPECT_EQ(action.aggressorPhysRow, 77);
            ++detections;
        }
    }
    EXPECT_EQ(detections, 4); // every 4th of 16 REFs, same row
}

TEST(VendorBTrr, PerBankModeKeepsIndependentSamples)
{
    VendorBTrr::Params params;
    params.trrRefPeriod = 2;
    params.perBank = true;
    VendorBTrr trr(2, params, 7);
    for (int i = 0; i < 2'000; ++i)
        trr.onActivate(0, 100);
    for (int i = 0; i < 2'000; ++i)
        trr.onActivate(1, 200);
    EXPECT_EQ(trr.currentSampleOf(0).value(), 100);
    EXPECT_EQ(trr.currentSampleOf(1).value(), 200);
    trr.onRefresh();
    const auto actions = trr.onRefresh(); // 2nd REF: TRR-capable
    ASSERT_EQ(actions.size(), 2u);
}

TEST(VendorBTrr, SamplingIsProbabilistic)
{
    // A handful of ACTs is usually not sampled; the probability over
    // many trials matches the configured rate roughly.
    int sampled = 0;
    for (int trial = 0; trial < 300; ++trial) {
        VendorBTrr trr(1, chipWide(), 1'000 + trial);
        trr.onActivate(0, 9);
        sampled += trr.currentSample().has_value() ? 1 : 0;
    }
    // One ACT: expected sampling rate = params.sampleProbability.
    EXPECT_GT(sampled, 1);
    EXPECT_LT(sampled, 60);
}

TEST(VendorBTrr, ResetClearsSampleAndPhase)
{
    VendorBTrr trr(1, chipWide(), 8);
    for (int i = 0; i < 2'000; ++i)
        trr.onActivate(0, 42);
    trr.onRefresh();
    trr.reset();
    EXPECT_FALSE(trr.currentSample().has_value());
    for (int i = 0; i < 2'000; ++i)
        trr.onActivate(0, 43);
    for (int ref = 1; ref <= 4; ++ref) {
        const auto actions = trr.onRefresh();
        EXPECT_EQ(!actions.empty(), ref == 4);
    }
}

} // namespace
} // namespace utrr
