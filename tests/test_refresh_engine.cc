#include <gtest/gtest.h>

#include <vector>

#include "dram/refresh_engine.hh"

namespace utrr
{
namespace
{

TEST(RefreshEngine, EveryRowCoveredOncePerPeriod)
{
    RefreshEngine engine(1'000, 37);
    std::vector<int> covered(1'000, 0);
    for (int ref = 0; ref < 37; ++ref) {
        if (const auto range = engine.onRefresh()) {
            for (Row r = range->first; r < range->second; ++r)
                ++covered[static_cast<std::size_t>(r)];
        }
    }
    for (Row r = 0; r < 1'000; ++r)
        EXPECT_EQ(covered[static_cast<std::size_t>(r)], 1)
            << "row " << r;
}

TEST(RefreshEngine, SweepRepeatsExactly)
{
    RefreshEngine engine(64 * 1024 + 64, 3'758);
    std::vector<std::pair<Row, Row>> first;
    for (int ref = 0; ref < 3'758; ++ref) {
        if (const auto range = engine.onRefresh())
            first.push_back(*range);
    }
    std::vector<std::pair<Row, Row>> second;
    for (int ref = 0; ref < 3'758; ++ref) {
        if (const auto range = engine.onRefresh())
            second.push_back(*range);
    }
    EXPECT_EQ(first, second);
}

TEST(RefreshEngine, RefsUntilRowConsistentWithSweep)
{
    RefreshEngine engine(500, 13);
    for (Row target : {0, 7, 250, 499}) {
        RefreshEngine probe(500, 13);
        // Advance the probe by a few REFs so phases differ.
        probe.onRefresh();
        probe.onRefresh();
        const int wait = probe.refsUntilRow(target);
        bool hit = false;
        for (int k = 0; k <= wait; ++k) {
            if (const auto range = probe.onRefresh()) {
                const bool covers =
                    target >= range->first && target < range->second;
                if (k == wait) {
                    if (covers)
                        hit = true;
                } else {
                    ASSERT_FALSE(covers)
                        << "row refreshed earlier than predicted";
                }
            }
        }
        EXPECT_TRUE(hit) << "row " << target;
    }
}

TEST(RefreshEngine, RefCountAdvances)
{
    RefreshEngine engine(100, 10);
    EXPECT_EQ(engine.refCount(), 0u);
    engine.onRefresh();
    engine.onRefresh();
    EXPECT_EQ(engine.refCount(), 2u);
}

TEST(RefreshEngine, ResetRestartsSweep)
{
    RefreshEngine engine(100, 10);
    engine.onRefresh();
    engine.onRefresh();
    engine.reset();
    const auto range = engine.onRefresh();
    ASSERT_TRUE(range.has_value());
    EXPECT_EQ(range->first, 0);
}

TEST(RefreshEngine, PeriodLongerThanRows)
{
    // Fewer rows than the period: most REFs refresh nothing.
    RefreshEngine engine(4, 16);
    int refreshed_rows = 0;
    int empty_refs = 0;
    for (int ref = 0; ref < 16; ++ref) {
        if (const auto range = engine.onRefresh())
            refreshed_rows += range->second - range->first;
        else
            ++empty_refs;
    }
    EXPECT_EQ(refreshed_rows, 4);
    EXPECT_EQ(empty_refs, 12);
}

} // namespace
} // namespace utrr
