#include <gtest/gtest.h>

#include <vector>

#include "dram/refresh_engine.hh"

namespace utrr
{
namespace
{

TEST(RefreshEngine, EveryRowCoveredOncePerPeriod)
{
    RefreshEngine engine(1'000, 37);
    std::vector<int> covered(1'000, 0);
    for (int ref = 0; ref < 37; ++ref) {
        for (const auto &[lo, hi] : engine.onRefresh()) {
            for (Row r = lo; r < hi; ++r)
                ++covered[static_cast<std::size_t>(r)];
        }
    }
    for (Row r = 0; r < 1'000; ++r)
        EXPECT_EQ(covered[static_cast<std::size_t>(r)], 1)
            << "row " << r;
}

TEST(RefreshEngine, SweepRepeatsExactly)
{
    RefreshEngine engine(64 * 1024 + 64, 3'758);
    std::vector<std::pair<Row, Row>> first;
    for (int ref = 0; ref < 3'758; ++ref) {
        for (const auto &range : engine.onRefresh())
            first.push_back(range);
    }
    std::vector<std::pair<Row, Row>> second;
    for (int ref = 0; ref < 3'758; ++ref) {
        for (const auto &range : engine.onRefresh())
            second.push_back(range);
    }
    EXPECT_EQ(first, second);
}

TEST(RefreshEngine, RefsUntilRowConsistentWithSweep)
{
    RefreshEngine engine(500, 13);
    for (Row target : {0, 7, 250, 499}) {
        RefreshEngine probe(500, 13);
        // Advance the probe by a few REFs so phases differ.
        probe.onRefresh();
        probe.onRefresh();
        const int wait = probe.refsUntilRow(target);
        bool hit = false;
        for (int k = 0; k <= wait; ++k) {
            for (const auto &[lo, hi] : probe.onRefresh()) {
                if (k == wait) {
                    if (target >= lo && target < hi)
                        hit = true;
                } else {
                    ASSERT_FALSE(target >= lo && target < hi)
                        << "row refreshed earlier than predicted";
                }
            }
        }
        EXPECT_TRUE(hit) << "row " << target;
    }
}

TEST(RefreshEngine, RefCountAdvances)
{
    RefreshEngine engine(100, 10);
    EXPECT_EQ(engine.refCount(), 0u);
    engine.onRefresh();
    engine.onRefresh();
    EXPECT_EQ(engine.refCount(), 2u);
}

TEST(RefreshEngine, ResetRestartsSweep)
{
    RefreshEngine engine(100, 10);
    engine.onRefresh();
    engine.onRefresh();
    engine.reset();
    const auto ranges = engine.onRefresh();
    ASSERT_EQ(ranges.size(), 1u);
    EXPECT_EQ(ranges[0].first, 0);
}

TEST(RefreshEngine, PeriodLongerThanRows)
{
    // Fewer rows than the period: most REFs refresh nothing.
    RefreshEngine engine(4, 16);
    int refreshed_rows = 0;
    for (int ref = 0; ref < 16; ++ref) {
        for (const auto &[lo, hi] : engine.onRefresh())
            refreshed_rows += hi - lo;
    }
    EXPECT_EQ(refreshed_rows, 4);
}

} // namespace
} // namespace utrr
