/**
 * @file
 * Validation of the U-TRR inference against the chip's ground truth:
 * the refresh rounds the TRR Analyzer *infers* from the retention side
 * channel must coincide with the TRR-induced victim refreshes the
 * vendor models actually performed (read through the counted
 * GroundTruthProbe — this is a deliberately white-box test).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/row_scout.hh"
#include "core/trr_analyzer.hh"
#include "dram/module.hh"
#include "softmc/host.hh"

namespace utrr
{
namespace
{

ModuleSpec
smallSpec(TrrVersion trr)
{
    ModuleSpec spec = *findModuleSpec("A5");
    spec.trr = trr;
    spec.rowsPerBank = 4 * 1024;
    spec.banks = 1;
    spec.remapsPerBank = 0;
    spec.scramble = RowScramble::kSequential;
    return spec;
}

std::string
victimCounterName(Bank bank, Row phys)
{
    std::ostringstream name;
    name << "chip.trr_victim_refresh.b" << bank << ".r" << phys;
    return name.str();
}

/**
 * Run many single-round experiments with one aggressor in the group's
 * gap. The aggressor's TRR victims are exactly the two profiled rows,
 * so on every iteration:
 *
 *   inferred "refreshed" == (per-row ground-truth counters advanced),
 *
 * except when the regular-refresh sweep coincidentally covers a
 * profiled row during the round's REF (checked white-box and skipped).
 */
void
runGroundTruthValidation(TrrVersion trr)
{
    DramModule module(smallSpec(trr), 41);
    SoftMcHost host(module);
    const DiscoveredMapping mapping =
        DiscoveredMapping::identity(module.spec().rowsPerBank);

    RowScoutConfig scout_cfg;
    scout_cfg.rowEnd = 2'048;
    scout_cfg.layout = RowGroupLayout::parse("R-R");
    scout_cfg.groupCount = 1;
    scout_cfg.consistencyChecks = 15;
    RowScout scout(host, mapping, scout_cfg);
    const auto groups = scout.scout();
    ASSERT_FALSE(groups.empty());
    const RowGroup group = groups.front();

    TrrAnalyzer analyzer(host, mapping);
    const Row aggressor = group.gapPhysRows().front();
    TrrExperimentConfig cfg;
    cfg.aggressors = {{aggressor, 3'000}};
    cfg.rounds = 1;
    cfg.refsPerRound = 1;
    cfg.resetRefs = 256;

    const GroundTruthProbe probe = module.groundTruthProbe();
    const std::vector<std::string> names = {
        victimCounterName(group.bank, group.rows[0].physRow),
        victimCounterName(group.bank, group.rows[1].physRow),
    };

    int inferred_rounds = 0;
    int truth_rounds = 0;
    int compared = 0;
    for (int it = 0; it < 40; ++it) {
        // Coincidence guard: skip iterations whose single REF would
        // regular-refresh a profiled row (the side channel then reports
        // a refresh the TRR mechanism did not perform). The reset dance
        // of iteration 0 issues many REFs, so it is never compared.
        bool sweep_hits = false;
        for (const ProfiledRow &row : group.rows) {
            if (module.refsUntilRegularRefresh(row.physRow) == 0)
                sweep_hits = true;
        }

        TrrExperimentConfig iter_cfg = cfg;
        iter_cfg.reset =
            it == 0 ? TrrResetMode::kDummyHammer : TrrResetMode::kNone;

        const std::uint64_t before =
            probe.counter(names[0]) + probe.counter(names[1]);
        const auto result = analyzer.runExperiment(group, iter_cfg);
        const std::uint64_t after =
            probe.counter(names[0]) + probe.counter(names[1]);

        const bool truth = after > before;
        if (it == 0 || sweep_hits)
            continue;
        ++compared;
        inferred_rounds += result.anyRefreshed() ? 1 : 0;
        truth_rounds += truth ? 1 : 0;
        EXPECT_EQ(result.anyRefreshed(), truth)
            << "iteration " << it << ": inference and ground truth "
            << "disagree (flips " << result.flips[0] << "/"
            << result.flips[1] << ", gt delta " << after - before << ")";
    }

    // The comparison must have exercised both outcomes.
    EXPECT_GT(compared, 20);
    EXPECT_GE(truth_rounds, 1);
    EXPECT_LT(truth_rounds, compared);
    EXPECT_EQ(inferred_rounds, truth_rounds);

    // This test peeks by design; the audit trail must show it.
    EXPECT_GT(module.groundTruthPeeks(), 0u);
}

TEST(GroundTruthValidation, VendorATrr1InferenceMatchesTruth)
{
    runGroundTruthValidation(TrrVersion::kATrr1);
}

TEST(GroundTruthValidation, VendorBTrr1InferenceMatchesTruth)
{
    runGroundTruthValidation(TrrVersion::kBTrr1);
}

} // namespace
} // namespace utrr
