#include <gtest/gtest.h>

#include "core/row_scout.hh"
#include "core/trr_analyzer.hh"
#include "dram/module.hh"
#include "softmc/host.hh"

namespace utrr
{
namespace
{

ModuleSpec
smallSpec(TrrVersion trr)
{
    ModuleSpec spec = *findModuleSpec("A5");
    spec.trr = trr;
    spec.rowsPerBank = 4 * 1024;
    spec.banks = 1;
    spec.remapsPerBank = 0;
    spec.scramble = RowScramble::kSequential;
    return spec;
}

struct AnalyzerFixture
{
    explicit AnalyzerFixture(TrrVersion trr, std::uint64_t seed = 41)
        : module(smallSpec(trr), seed), host(module),
          mapping(DiscoveredMapping::identity(module.spec().rowsPerBank)),
          analyzer(host, mapping)
    {
    }

    RowGroup
    scoutOneGroup()
    {
        RowScoutConfig cfg;
        cfg.rowEnd = 2'048;
        cfg.layout = RowGroupLayout::parse("R-R");
        cfg.groupCount = 1;
        cfg.consistencyChecks = 15;
        RowScout scout(host, mapping, cfg);
        const auto groups = scout.scout();
        EXPECT_FALSE(groups.empty());
        return groups.front();
    }

    DramModule module;
    SoftMcHost host;
    DiscoveredMapping mapping;
    TrrAnalyzer analyzer;
};

TEST(TrrAnalyzer, NoTrrMeansNoRefreshObserved)
{
    AnalyzerFixture fix(TrrVersion::kNone);
    const RowGroup group = fix.scoutOneGroup();

    TrrExperimentConfig cfg;
    cfg.aggressors = {{group.gapPhysRows().front(), 3'000}};
    cfg.reset = TrrResetMode::kNone;
    for (int it = 0; it < 6; ++it) {
        const auto result = fix.analyzer.runExperiment(group, cfg);
        EXPECT_FALSE(result.anyRefreshed()) << "iteration " << it;
        EXPECT_GT(result.flips[0], 0);
        EXPECT_GT(result.flips[1], 0);
    }
}

TEST(TrrAnalyzer, VendorATrrRefreshObservedPeriodically)
{
    AnalyzerFixture fix(TrrVersion::kATrr1);
    const RowGroup group = fix.scoutOneGroup();

    TrrExperimentConfig cfg;
    cfg.aggressors = {{group.gapPhysRows().front(), 3'000}};
    cfg.reset = TrrResetMode::kDummyHammer;
    cfg.resetRefs = 256;

    int refreshed = 0;
    for (int it = 0; it < 20; ++it) {
        TrrExperimentConfig iter_cfg = cfg;
        iter_cfg.reset =
            it == 0 ? TrrResetMode::kDummyHammer : TrrResetMode::kNone;
        const auto result = fix.analyzer.runExperiment(group, iter_cfg);
        refreshed += result.anyRefreshed() ? 1 : 0;
    }
    EXPECT_GE(refreshed, 1);
    EXPECT_LE(refreshed, 4);
}

TEST(TrrAnalyzer, RefCountersReported)
{
    AnalyzerFixture fix(TrrVersion::kNone);
    const RowGroup group = fix.scoutOneGroup();
    TrrExperimentConfig cfg;
    cfg.reset = TrrResetMode::kNone;
    cfg.rounds = 3;
    cfg.refsPerRound = 2;
    const auto result = fix.analyzer.runExperiment(group, cfg);
    EXPECT_EQ(result.refsAfter - result.refsBefore, 6u);
}

TEST(TrrAnalyzer, DummyRowsRespectDistance)
{
    AnalyzerFixture fix(TrrVersion::kNone);
    const std::vector<Row> avoid = {500, 502, 501};
    const auto dummies = fix.analyzer.pickDummyRows(0, avoid, 24);
    ASSERT_EQ(dummies.size(), 24u);
    for (Row dummy : dummies) {
        const Row phys = fix.mapping.toPhysical(dummy);
        for (Row avoided : avoid)
            EXPECT_GE(std::abs(phys - avoided), 100);
    }
}

TEST(TrrAnalyzer, ResetStateDrainsVendorATable)
{
    AnalyzerFixture fix(TrrVersion::kATrr1);
    // Pollute the table with high counters.
    for (int i = 0; i < 50'000; ++i) {
        fix.host.act(0, 700);
        fix.host.pre(0);
    }
    fix.analyzer.resetTrrState(0, {700}, 512, 32, 16);
    // After the dance, a modest new aggressor must win TREF_a quickly:
    // hammer and count TRR refreshes targeting its neighbours.
    const std::uint64_t before = fix.module.trrRefreshCount();
    for (int round = 0; round < 18; ++round) {
        fix.host.hammer(0, 900, 2'000);
        fix.host.ref();
    }
    EXPECT_GT(fix.module.trrRefreshCount(), before);
}

TEST(TrrAnalyzer, VerifyAdjacencyAcceptsTrueNeighbours)
{
    AnalyzerFixture fix(TrrVersion::kNone);
    const RowGroup group = fix.scoutOneGroup();
    const AggressorSpec aggr{group.gapPhysRows().front(), 0};
    EXPECT_TRUE(fix.analyzer.verifyAdjacencyEscalating(group, {aggr}));
}

TEST(TrrAnalyzer, VerifyAdjacencyRejectsFarRows)
{
    AnalyzerFixture fix(TrrVersion::kNone);
    const RowGroup group = fix.scoutOneGroup();
    // An aggressor 500 rows away cannot hammer the profiled rows.
    AggressorSpec far{group.basePhysRow + 500, 0};
    EXPECT_FALSE(fix.analyzer.verifyAdjacency(group, {far}, 400'000));
}

TEST(TrrAnalyzer, MultiGroupExperimentReadsAllGroups)
{
    AnalyzerFixture fix(TrrVersion::kNone);
    RowScoutConfig cfg;
    cfg.rowEnd = 2'048;
    cfg.layout = RowGroupLayout::parse("R-R");
    cfg.groupCount = 3;
    cfg.consistencyChecks = 15;
    RowScout scout(fix.host, fix.mapping, cfg);
    const auto groups = scout.scout();
    ASSERT_EQ(groups.size(), 3u);

    TrrExperimentConfig exp_cfg;
    exp_cfg.reset = TrrResetMode::kNone;
    const TrrMultiResult result =
        fix.analyzer.runExperimentMulti(groups, exp_cfg);
    ASSERT_EQ(result.perGroup.size(), 3u);
    for (std::size_t g = 0; g < 3; ++g) {
        EXPECT_EQ(result.perGroup[g].flips.size(), 2u);
        // No hammering, no REFs: pure retention failure everywhere.
        EXPECT_FALSE(result.groupRefreshed(g));
    }
}

TEST(TrrAnalyzer, RefreshedMaskEncoding)
{
    TrrExperimentResult result;
    result.refreshed = {true, false, true};
    EXPECT_EQ(result.refreshedMask(), 0b101u);
    EXPECT_TRUE(result.anyRefreshed());
    result.refreshed = {false, false};
    EXPECT_EQ(result.refreshedMask(), 0u);
    EXPECT_FALSE(result.anyRefreshed());
}

} // namespace
} // namespace utrr
