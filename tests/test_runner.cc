/**
 * @file
 * Campaign-runner tests: the serial-vs-parallel equivalence contract
 * (bit-identical verdicts and per-module metric counters for any
 * worker count, fault-free and under chaos rates), watchdog
 * retry/quarantine semantics, and the full 45-module battery
 * equivalence at --jobs 8.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "fault/fault_injector.hh"
#include "runner/reveng_job.hh"

namespace utrr
{
namespace
{

/**
 * One module of every TRR version in Table 1. Full-size specs: a
 * module shrunk to a few thousand rows no longer contains any
 * RRR-RRR retention group, which the period experiments need.
 */
std::vector<ModuleSpec>
equivalenceSubset()
{
    std::vector<ModuleSpec> specs;
    for (const char *name :
         {"A5", "A13", "B2", "B10", "B14", "C4", "C10", "C13"})
        specs.push_back(*findModuleSpec(name));
    return specs;
}

/**
 * Cheaper than the battery config (the suite re-identifies each
 * subset module four times): narrower scout windows and fewer
 * iterations, still enough for correct fault-free identification.
 */
IdentifyJobConfig
subsetIdentifyConfig(bool chaos)
{
    IdentifyJobConfig config =
        chaos ? IdentifyJobConfig::chaos() : IdentifyJobConfig::battery();
    config.reveng.scoutRowEnd = 2 * 1024;
    config.reveng.wideScoutRowEnd = 16 * 1024;
    config.reveng.consistencyChecks = 8;
    config.reveng.periodIterations = chaos ? 24 : 32;
    config.reveng.revalidateChecks = chaos ? 4 : config.reveng.revalidateChecks;
    return config;
}

/** Per-module counter maps, keyed by module name (order-free). */
std::map<std::string, std::map<std::string, std::uint64_t>>
counterMaps(const CampaignResult &result)
{
    std::map<std::string, std::map<std::string, std::uint64_t>> out;
    for (const ModuleResult &m : result.modules) {
        std::map<std::string, std::uint64_t> counters;
        for (const auto &[name, c] : m.metrics.counters())
            counters[name] = c.value;
        out[m.module] = std::move(counters);
    }
    return out;
}

void
expectEquivalent(const CampaignResult &serial,
                 const CampaignResult &parallel)
{
    // Byte-identical verdict payloads...
    EXPECT_EQ(serial.verdicts().dump(1), parallel.verdicts().dump(1));
    // ...and identical per-module metric counters. (Histogram ".us"
    // entries are wall-clock and legitimately differ; counters are
    // pure simulated behaviour and must not.)
    EXPECT_EQ(counterMaps(serial), counterMaps(parallel));
    EXPECT_EQ(serial.watchdogRetries, parallel.watchdogRetries);
    EXPECT_EQ(serial.quarantinedJobs, parallel.quarantinedJobs);
    EXPECT_EQ(serial.failedJobs, parallel.failedJobs);
}

TEST(RunnerEquivalence, SerialAndParallelBatteryAreBitIdentical)
{
    const std::vector<ModuleSpec> specs = equivalenceSubset();
    const JobFn job = makeIdentifyJob(subsetIdentifyConfig(false));

    CampaignConfig config;
    config.seed = 7;
    config.jobs = 1;
    const CampaignResult serial = CampaignRunner(config).run(specs, job);
    config.jobs = 4;
    const CampaignResult parallel =
        CampaignRunner(config).run(specs, job);

    ASSERT_EQ(serial.modules.size(), specs.size());
    EXPECT_EQ(serial.jobsUsed, 1);
    EXPECT_EQ(parallel.jobsUsed, 4);
    // Fault-free identification must also be *correct* on every
    // module of the subset, not merely reproducible.
    EXPECT_TRUE(serial.allOk());
    expectEquivalent(serial, parallel);
}

TEST(RunnerEquivalence, ChaosRatesStayBitIdenticalAcrossWorkerCounts)
{
    const std::vector<ModuleSpec> specs = equivalenceSubset();
    const JobFn job = makeIdentifyJob(subsetIdentifyConfig(true));

    CampaignConfig config;
    config.seed = 11;
    config.faults = FaultConfig::chaosDefaults();
    config.jobs = 1;
    const CampaignResult serial = CampaignRunner(config).run(specs, job);
    config.jobs = 4;
    const CampaignResult parallel =
        CampaignRunner(config).run(specs, job);

    // Under injection the verdicts need not all be
    // correct — the contract under test is scheduling-independence.
    expectEquivalent(serial, parallel);
    // The chaos rates really were active and identically replayed.
    std::uint64_t serial_faults = 0;
    for (const ModuleResult &m : serial.modules)
        serial_faults += m.faultStats.vrtFlips + m.faultStats.noiseBits +
            m.faultStats.jitteredRefs + m.faultStats.droppedCommands();
    EXPECT_GT(serial_faults, 0u);
    EXPECT_EQ(serial.faultTotals.droppedCommands(),
              parallel.faultTotals.droppedCommands());
    EXPECT_EQ(serial.faultTotals.vrtFlips, parallel.faultTotals.vrtFlips);
}

/**
 * The full 45-module Table-1 battery: bit-identical at --jobs 1 and
 * --jobs 8. The job is a lightweight substrate exercise (hammer, REF,
 * read-back flip count, job-RNG draw) rather than a full
 * identification so the whole battery stays test-suite fast while
 * still touching module physics, TRR, metrics and the job RNG.
 */
TEST(RunnerEquivalence, FullBattery45ModulesJobs1VsJobs8)
{
    const std::vector<ModuleSpec> &specs = allModuleSpecs();
    ASSERT_EQ(specs.size(), 45u);

    const JobFn job = [](JobContext &ctx) {
        const Row anchor = static_cast<Row>(
            ctx.rng.uniformInt(64, ctx.spec.rowsPerBank - 64));
        ctx.host.writeRow(0, anchor, DataPattern::checkerboard());
        ctx.host.hammerInterleaved({{0, anchor - 1}, {0, anchor + 1}},
                                   {3'000, 3'000});
        ctx.host.refBurst(ctx.spec.traits().trrToRefPeriod + 1);
        const int flips = ctx.host.readRow(0, anchor).countFlipsVs(
            DataPattern::checkerboard(), anchor);
        ctx.metrics.counter("job.flips")
            .inc(static_cast<std::uint64_t>(flips));

        JobOutcome out;
        out.ok = true;
        Json verdict = Json::object();
        verdict["module"] = Json(ctx.spec.name);
        verdict["anchor"] = Json(static_cast<std::int64_t>(anchor));
        verdict["flips"] = Json(flips);
        verdict["acts"] = Json(ctx.host.actCount());
        verdict["rng_probe"] = Json(ctx.rng.next());
        out.verdict = std::move(verdict);
        return out;
    };

    CampaignConfig config;
    config.seed = 2021;
    config.jobs = 1;
    const CampaignResult serial = CampaignRunner(config).run(specs, job);
    config.jobs = 8;
    const CampaignResult parallel =
        CampaignRunner(config).run(specs, job);

    ASSERT_EQ(serial.modules.size(), 45u);
    EXPECT_EQ(parallel.jobsUsed, 8);
    EXPECT_TRUE(serial.allOk());
    expectEquivalent(serial, parallel);
}

// ---------------------------------------------------------------------
// Watchdog retry and quarantine semantics.
// ---------------------------------------------------------------------

std::vector<ModuleSpec>
threeSmallModules()
{
    std::vector<ModuleSpec> specs;
    for (const char *name : {"A5", "B8", "C9"}) {
        ModuleSpec spec = *findModuleSpec(name);
        spec.rowsPerBank = 2 * 1024;
        spec.banks = 1;
        spec.remapsPerBank = 0;
        spec.scramble = RowScramble::kSequential;
        specs.push_back(spec);
    }
    return specs;
}

/** A job whose simulated time always overruns the campaign watchdog. */
JobOutcome
overrunWatchdog(JobContext &ctx)
{
    for (;;)
        ctx.host.waitWithRefresh(msToNs(100));
}

JobOutcome
trivialOkJob(JobContext &ctx)
{
    ctx.host.writeRow(0, 100, DataPattern::allOnes());
    JobOutcome out;
    out.ok = ctx.host.readRow(0, 100).countFlipsVs(
                 DataPattern::allOnes(), 100) == 0;
    Json verdict = Json::object();
    verdict["module"] = Json(ctx.spec.name);
    out.verdict = std::move(verdict);
    return out;
}

TEST(RunnerWatchdog, RetriesThenQuarantinesSickJobAndFinishesRest)
{
    const std::vector<ModuleSpec> specs = threeSmallModules();

    CampaignConfig config;
    config.jobs = 2;
    config.watchdogBudgetNs = msToNs(10);
    config.maxWatchdogRetries = 2;
    const JobFn job = [](JobContext &ctx) {
        if (ctx.spec.name == "B8")
            return overrunWatchdog(ctx);
        return trivialOkJob(ctx);
    };
    const CampaignResult result = CampaignRunner(config).run(specs, job);

    ASSERT_EQ(result.modules.size(), 3u);
    const ModuleResult &sick = result.modules[1];
    EXPECT_EQ(sick.module, "B8");
    EXPECT_FALSE(sick.ok);
    EXPECT_TRUE(sick.quarantined);
    EXPECT_EQ(sick.attempts, 3); // first try + 2 retries
    EXPECT_NE(sick.error.find("watchdog budget"), std::string::npos);

    // The rest of the campaign still completed, correctly.
    EXPECT_TRUE(result.modules[0].ok);
    EXPECT_TRUE(result.modules[2].ok);
    EXPECT_EQ(result.failedJobs, 1u);
    EXPECT_EQ(result.quarantinedJobs, 1u);
    EXPECT_EQ(result.watchdogRetries, 2u);
    EXPECT_EQ(
        result.merged.findCounter("campaign.watchdog_retries")->value,
        2u);
    EXPECT_EQ(result.merged.findCounter("campaign.quarantined")->value,
              1u);
}

TEST(RunnerWatchdog, RetryAttemptCanRecoverAndClearTheError)
{
    const std::vector<ModuleSpec> specs = threeSmallModules();

    CampaignConfig config;
    config.jobs = 1;
    config.watchdogBudgetNs = msToNs(10);
    config.maxWatchdogRetries = 2;
    const JobFn job = [](JobContext &ctx) {
        if (ctx.spec.name == "C9" && ctx.attempt == 0)
            return overrunWatchdog(ctx);
        return trivialOkJob(ctx);
    };
    const CampaignResult result = CampaignRunner(config).run(specs, job);

    const ModuleResult &flaky = result.modules[2];
    EXPECT_EQ(flaky.module, "C9");
    EXPECT_TRUE(flaky.ok);
    EXPECT_FALSE(flaky.quarantined);
    EXPECT_EQ(flaky.attempts, 2);
    EXPECT_TRUE(flaky.error.empty());
    EXPECT_EQ(result.watchdogRetries, 1u);
    EXPECT_TRUE(result.allOk());
}

TEST(RunnerWatchdog, NonWatchdogExceptionFailsWithoutRetry)
{
    const std::vector<ModuleSpec> specs = threeSmallModules();

    CampaignConfig config;
    config.jobs = 2;
    config.maxWatchdogRetries = 2;
    const JobFn job = [](JobContext &ctx) {
        if (ctx.spec.name == "A5")
            throw std::runtime_error("bad configuration");
        return trivialOkJob(ctx);
    };
    const CampaignResult result = CampaignRunner(config).run(specs, job);

    const ModuleResult &broken = result.modules[0];
    EXPECT_FALSE(broken.ok);
    EXPECT_FALSE(broken.quarantined);
    EXPECT_EQ(broken.attempts, 1);
    EXPECT_EQ(broken.error, "bad configuration");
    EXPECT_EQ(result.watchdogRetries, 0u);
    EXPECT_EQ(result.failedJobs, 1u);
}

// ---------------------------------------------------------------------
// Aggregation: merged metrics, traces and the report shape.
// ---------------------------------------------------------------------

TEST(RunnerAggregation, MergesPerModuleMetricsAndTraces)
{
    const std::vector<ModuleSpec> specs = threeSmallModules();

    CampaignConfig config;
    config.jobs = 3;
    config.traceCapacity = 256;
    const CampaignResult result =
        CampaignRunner(config).run(specs, trivialOkJob);

    // Per-module counters land under the "module.<name>." prefix.
    for (const ModuleResult &m : result.modules) {
        EXPECT_FALSE(m.traceEvents.empty()) << m.module;
        const Counter *acts = result.merged.findCounter(
            "module." + m.module + ".dram.acts");
        ASSERT_NE(acts, nullptr) << m.module;
        EXPECT_GT(acts->value, 0u);
    }
    EXPECT_EQ(result.merged.findCounter("campaign.jobs")->value, 3u);

    // Campaign-merged command trace via the join-time merge API.
    CommandTrace merged(1024);
    for (const ModuleResult &m : result.modules) {
        CommandTrace per_job(256);
        for (const TraceEvent &event : m.traceEvents)
            per_job.record(event.kind, event.bank, event.row,
                           event.start, event.duration);
        merged.mergeFrom(per_job);
    }
    EXPECT_EQ(merged.size(),
              result.modules[0].traceEvents.size() +
                  result.modules[1].traceEvents.size() +
                  result.modules[2].traceEvents.size());
}

TEST(RunnerAggregation, FillReportProducesPerModuleRoundsAndRollups)
{
    const std::vector<ModuleSpec> specs = threeSmallModules();

    CampaignConfig config;
    config.jobs = 2;
    const CampaignResult result =
        CampaignRunner(config).run(specs, trivialOkJob);

    ExperimentReport report("runner_test");
    result.fillReport(report);
    const Json &root = report.json();
    ASSERT_NE(root.find("rounds"), nullptr);
    EXPECT_EQ(root.find("rounds")->size(), 3u);
    const Json *results = root.find("results");
    ASSERT_NE(results, nullptr);
    EXPECT_EQ(results->find("modules")->asInt(), 3);
    EXPECT_EQ(results->find("failures")->asInt(), 0);
    const Json *timing = root.find("timing");
    ASSERT_NE(timing, nullptr);
    EXPECT_GT(timing->find("sim_ns")->asInt(), 0);
}

} // namespace
} // namespace utrr
