#include <gtest/gtest.h>

#include "trr/vendor_c.hh"

namespace utrr
{
namespace
{

VendorCTrr::Params
defaultParams()
{
    VendorCTrr::Params params;
    params.trrRefPeriod = 17;
    params.windowActs = 2'048;
    return params;
}

/** Hammer until the bank holds a candidate (sampling is
 *  probabilistic). */
void
hammerUntilCandidate(VendorCTrr &trr, Bank bank, Row row,
                     int max_acts = 4'000)
{
    for (int i = 0; i < max_acts && !trr.candidateOf(bank); ++i)
        trr.onActivate(bank, row);
}

TEST(VendorCTrr, EligibleEverySeventeenthRef)
{
    VendorCTrr trr(1, defaultParams(), 1);
    hammerUntilCandidate(trr, 0, 55);
    ASSERT_TRUE(trr.candidateOf(0).has_value());
    for (int ref = 1; ref <= 17; ++ref) {
        const auto actions = trr.onRefresh();
        EXPECT_EQ(!actions.empty(), ref == 17) << "ref " << ref;
    }
}

TEST(VendorCTrr, DeferredWhenNoCandidate)
{
    // Obs. C1: with no aggressor detected, the TRR-induced refresh is
    // deferred past the eligibility point to a later REF.
    VendorCTrr trr(1, defaultParams(), 2);
    for (int ref = 0; ref < 40; ++ref)
        EXPECT_TRUE(trr.onRefresh().empty());
    // Now a candidate appears; the very next REF performs the refresh.
    hammerUntilCandidate(trr, 0, 77);
    const auto actions = trr.onRefresh();
    ASSERT_EQ(actions.size(), 1u);
    EXPECT_EQ(actions[0].aggressorPhysRow, 77);
}

TEST(VendorCTrr, EarlierRowsStronglyFavoured)
{
    // Obs. C2: hammer row A heavily first, then row B; A should be the
    // detected candidate nearly always.
    int a_wins = 0;
    for (int trial = 0; trial < 50; ++trial) {
        VendorCTrr trr(1, defaultParams(), 100 + trial);
        for (int i = 0; i < 1'000; ++i)
            trr.onActivate(0, 10);
        for (int i = 0; i < 1'000; ++i)
            trr.onActivate(0, 20);
        if (trr.candidateOf(0) && *trr.candidateOf(0) == 10)
            ++a_wins;
    }
    EXPECT_GE(a_wins, 45);
}

TEST(VendorCTrr, ActsBeyondWindowInvisibleWhileCandidateHeld)
{
    VendorCTrr::Params params = defaultParams();
    params.windowActs = 64;
    params.sampleProbability = 1.0; // first ACT is always the candidate
    VendorCTrr trr(1, params, 3);
    trr.onActivate(0, 10);
    // Fill the rest of the window.
    while (trr.windowActsOf(0) < 64)
        trr.onActivate(0, 10);
    ASSERT_TRUE(trr.candidateOf(0).has_value());
    // Massive hammering of another row cannot displace the candidate.
    for (int i = 0; i < 50'000; ++i)
        trr.onActivate(0, 99);
    EXPECT_EQ(*trr.candidateOf(0), 10);
}

TEST(VendorCTrr, WindowReopensWhenExhaustedEmpty)
{
    // Obs. C1 (defer): if the whole window passes without a detection,
    // the mechanism keeps looking instead of going blind.
    VendorCTrr::Params params = defaultParams();
    params.windowActs = 16;
    params.sampleProbability = 0.0; // nothing sampled...
    VendorCTrr trr(1, params, 4);
    for (int i = 0; i < 100; ++i)
        trr.onActivate(0, 5);
    EXPECT_FALSE(trr.candidateOf(0).has_value());
    EXPECT_LE(trr.windowActsOf(0), 16);
}

TEST(VendorCTrr, FiringConsumesCandidateAndReopensWindow)
{
    VendorCTrr trr(1, defaultParams(), 5);
    hammerUntilCandidate(trr, 0, 42);
    for (int ref = 0; ref < 17; ++ref)
        trr.onRefresh();
    EXPECT_FALSE(trr.candidateOf(0).has_value());
    EXPECT_EQ(trr.windowActsOf(0), 0);
}

TEST(VendorCTrr, PerBankCandidates)
{
    VendorCTrr trr(2, defaultParams(), 6);
    hammerUntilCandidate(trr, 0, 100);
    hammerUntilCandidate(trr, 1, 200);
    for (int ref = 0; ref < 16; ++ref)
        trr.onRefresh();
    const auto actions = trr.onRefresh();
    ASSERT_EQ(actions.size(), 2u);
    EXPECT_EQ(actions[0].aggressorPhysRow, 100);
    EXPECT_EQ(actions[1].aggressorPhysRow, 200);
}

TEST(VendorCTrr, CadenceAnchoredOnFiring)
{
    // After a deferred firing, the next eligibility is a full period
    // after the fire, not after the original eligibility point.
    VendorCTrr trr(1, defaultParams(), 7);
    for (int ref = 0; ref < 25; ++ref)
        EXPECT_TRUE(trr.onRefresh().empty()); // deferred (no candidate)
    hammerUntilCandidate(trr, 0, 9);
    EXPECT_FALSE(trr.onRefresh().empty()); // fires now
    hammerUntilCandidate(trr, 0, 9);
    for (int ref = 1; ref <= 17; ++ref) {
        const auto actions = trr.onRefresh();
        EXPECT_EQ(!actions.empty(), ref == 17);
    }
}

TEST(VendorCTrr, ResetClearsEverything)
{
    VendorCTrr trr(1, defaultParams(), 8);
    hammerUntilCandidate(trr, 0, 11);
    for (int ref = 0; ref < 10; ++ref)
        trr.onRefresh();
    trr.reset();
    EXPECT_FALSE(trr.candidateOf(0).has_value());
    EXPECT_EQ(trr.windowActsOf(0), 0);
}

TEST(VendorCTrr, ShortWindowVersion)
{
    // C_TRR3: 1K-ACT window, every 8th REF.
    VendorCTrr::Params params;
    params.trrRefPeriod = 8;
    params.windowActs = 1'024;
    VendorCTrr trr(1, params, 9);
    hammerUntilCandidate(trr, 0, 3);
    for (int ref = 1; ref <= 8; ++ref) {
        const auto actions = trr.onRefresh();
        EXPECT_EQ(!actions.empty(), ref == 8);
    }
}

} // namespace
} // namespace utrr
