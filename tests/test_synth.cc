/**
 * @file
 * Pattern-synthesizer unit tests (DESIGN.md §15).
 *
 * Pins the three contracts the synthesizer's determinism rests on:
 *  - lowering determinism: the same drawn pattern compiles to the same
 *    softmc::Program text, and the live SynthesizedPattern adapter
 *    emits exactly the command stream the lowering compiles;
 *  - protocol compliance: every lowered pattern keeps the REF cadence
 *    (one REF per tREFI, slot budget respected) and passes the DDR
 *    TimingChecker;
 *  - format stability: the pattern text serialization round-trips, and
 *    the checked-in per-vendor bypass anchors under tests/corpus/
 *    replay byte-identically (the synthesis golden regression).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "attack/synth.hh"
#include "dram/module.hh"
#include "obs/json.hh"
#include "softmc/assembler.hh"
#include "softmc/host.hh"
#include "softmc/timing_checker.hh"

#ifndef UTRR_CORPUS_DIR
#error "UTRR_CORPUS_DIR must point at the checked-in corpus"
#endif

namespace utrr
{
namespace
{

const ModuleSpec &
spec(const std::string &name)
{
    static std::vector<ModuleSpec> specs = allModuleSpecs();
    for (const ModuleSpec &s : specs) {
        if (s.name == name)
            return s;
    }
    throw std::runtime_error("unknown module " + name);
}

HammerPattern
decoyShape()
{
    HammerPattern p;
    p.basePeriod = 1;
    PatternElement aggr;
    aggr.kind = ElementKind::kAggressors;
    aggr.rows = 2;
    aggr.amplitude = 24;
    PatternElement decoys;
    decoys.kind = ElementKind::kDummies;
    decoys.rows = 16;
    p.elements = {aggr, decoys};
    return p;
}

HammerPattern
multiBankShape()
{
    HammerPattern p;
    p.basePeriod = 4;
    PatternElement aggr;
    aggr.kind = ElementKind::kAggressors;
    aggr.rows = 2;
    aggr.frequency = 4;
    aggr.span = 1;
    aggr.amplitude = 40;
    PatternElement fill;
    fill.kind = ElementKind::kDummies;
    fill.rows = 4;
    fill.banks = 4;
    fill.frequency = 1;
    fill.span = 4;
    p.elements = {aggr, fill};
    return p;
}

// --- lowering determinism --------------------------------------------

TEST(Synth, DrawIsDeterministic)
{
    const SynthRanges ranges;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        Rng a(seed);
        Rng b(seed);
        const HammerPattern pa = drawPattern(a, ranges, 9);
        const HammerPattern pb = drawPattern(b, ranges, 9);
        EXPECT_EQ(serializeHammerPattern(pa),
                  serializeHammerPattern(pb));
    }
}

TEST(Synth, LoweringIsDeterministic)
{
    const ModuleSpec &a0 = spec("A0");
    const DiscoveredMapping mapping(a0.scramble, a0.rowsPerBank);
    Rng rng(7);
    const SynthRanges ranges;
    for (int i = 0; i < 10; ++i) {
        const HammerPattern drawn = drawPattern(rng, ranges, 9);
        const PatternBinding binding =
            bindPattern(drawn, a0, mapping, 0, 5'000);

        // Twice from the same object, once from a round-tripped copy:
        // the program text must not depend on anything but the data.
        HammerPattern reparsed;
        ASSERT_EQ("", parseHammerPattern(
                          serializeHammerPattern(drawn), reparsed));
        const std::string once = disassembleProgram(
            lowerToProgram(drawn, binding, Timing{}, 32));
        EXPECT_EQ(once, disassembleProgram(lowerToProgram(
                            drawn, binding, Timing{}, 32)));
        EXPECT_EQ(once, disassembleProgram(lowerToProgram(
                            reparsed, binding, Timing{}, 32)));
        EXPECT_NE(once.find("REF"), std::string::npos);
    }
}

TEST(Synth, LiveAdapterEmitsTheLoweredStream)
{
    // The SynthesizedPattern adapter (what AttackEvaluator executes)
    // and lowerToProgram (what the corpus/timing tests compile) must
    // consume the same slot plan. Same-bank patterns match command for
    // command; multi-bank fills are truncated in the serial program
    // form, so there the aggressor stream and REF cadence must still
    // agree while the lowered fill carries at most as many ACTs.
    const ModuleSpec &b0 = spec("B0");
    const DiscoveredMapping mapping(b0.scramble, b0.rowsPerBank);
    const int slots = 24;
    for (const HammerPattern &p : {decoyShape(), multiBankShape()}) {
        SCOPED_TRACE(serializeHammerPattern(p));
        const PatternBinding binding =
            bindPattern(p, b0, mapping, 0, 9'000);

        DramModule lowered_module(b0, 2021);
        SoftMcHost lowered_host(lowered_module);
        lowered_host.trace().enable(1 << 20);
        lowered_host.execute(
            lowerToProgram(p, binding, lowered_host.timing(), slots));

        DramModule live_module(b0, 2021);
        SoftMcHost live_host(live_module);
        live_host.trace().enable(1 << 20);
        SynthesizedPattern live(p, binding, live_host.timing());
        const Time budget =
            live_host.timing().tREFI - live_host.timing().tRFC;
        for (int slot = 0; slot < slots; ++slot) {
            const Time start = live_host.now();
            live.runSlot(live_host, static_cast<std::uint64_t>(slot));
            live_host.wait(budget - (live_host.now() - start));
            live_host.ref();
        }

        ASSERT_EQ(lowered_host.now(), live_host.now());
        const auto acts_of = [&](const SoftMcHost &host,
                                 bool aggressors_only) {
            std::vector<std::pair<Bank, Row>> acts;
            for (const TraceEvent &e : host.trace().events()) {
                if (e.kind != TraceKind::kAct)
                    continue;
                const bool is_aggr = e.bank == binding.bank &&
                    (e.row == binding.aggressors[0] ||
                     e.row == binding.aggressors[1]);
                if (!aggressors_only || is_aggr)
                    acts.emplace_back(e.bank, e.row);
            }
            return acts;
        };
        const auto refs_of = [](const SoftMcHost &host) {
            int refs = 0;
            for (const TraceEvent &e : host.trace().events())
                refs += e.kind == TraceKind::kRef ? 1 : 0;
            return refs;
        };

        EXPECT_EQ(refs_of(lowered_host), slots);
        EXPECT_EQ(refs_of(live_host), slots);
        const auto lowered_aggr = acts_of(lowered_host, true);
        EXPECT_GT(lowered_aggr.size(), 0U);
        EXPECT_EQ(lowered_aggr, acts_of(live_host, true));
        if (p.dummyBankCount() <= 1) {
            EXPECT_EQ(acts_of(lowered_host, false),
                      acts_of(live_host, false));
        } else {
            EXPECT_LE(acts_of(lowered_host, false).size(),
                      acts_of(live_host, false).size());
        }
    }
}

// --- slot budget / REF compliance ------------------------------------

TEST(Synth, LoweredPatternsKeepTheRefCadence)
{
    // Every slot must cost exactly tREFI (bursts + wait pad + REF):
    // a synthesized pattern can never stretch the refresh interval.
    const ModuleSpec &c0 = spec("C0");
    const DiscoveredMapping mapping(c0.scramble, c0.rowsPerBank);
    Rng rng(11);
    const SynthRanges ranges;
    const int slots = 32;
    for (int i = 0; i < 10; ++i) {
        const HammerPattern p = drawPattern(rng, ranges, 17);
        const PatternBinding binding =
            bindPattern(p, c0, mapping, 0, 4'000);
        DramModule module(c0, 2021);
        SoftMcHost host(module);
        const Time t0 = host.now();
        host.execute(
            lowerToProgram(p, binding, host.timing(), slots));
        EXPECT_EQ(host.now() - t0,
                  static_cast<Time>(slots) * host.timing().tREFI)
            << serializeHammerPattern(p);
    }
}

TEST(Synth, LoweredPatternsAreTimingClean)
{
    const ModuleSpec &b13 = spec("B13");
    const DiscoveredMapping mapping(b13.scramble, b13.rowsPerBank);
    Rng rng(13);
    const SynthRanges ranges;
    for (int i = 0; i < 10; ++i) {
        const HammerPattern p = drawPattern(rng, ranges, 2);
        const PatternBinding binding =
            bindPattern(p, b13, mapping, 0, 7'000);
        DramModule module(b13, 2021);
        SoftMcHost host(module);
        host.trace().enable(1 << 20);
        host.execute(lowerToProgram(p, binding, host.timing(), 32));

        TimingChecker checker(host.timing(), b13.banks);
        for (const TraceEvent &event : host.trace().events()) {
            switch (event.kind) {
              case TraceKind::kAct:
                checker.onAct(event.bank, event.row, event.start);
                break;
              case TraceKind::kPre:
                checker.onPre(event.bank, event.start);
                break;
              case TraceKind::kRef:
                checker.onRef(event.start);
                break;
              default:
                break;
            }
        }
        EXPECT_TRUE(checker.clean())
            << serializeHammerPattern(p) << "first: "
            << (checker.violations().empty()
                    ? ""
                    : checker.violations().front().detail);
    }
}

// --- text serialization ----------------------------------------------

TEST(Synth, SerializationRoundTrips)
{
    Rng rng(3);
    const SynthRanges ranges;
    for (int i = 0; i < 200; ++i) {
        const HammerPattern p = drawPattern(rng, ranges, 9);
        const std::string text = serializeHammerPattern(p);
        HammerPattern back;
        ASSERT_EQ("", parseHammerPattern(text, back)) << text;
        EXPECT_EQ(text, serializeHammerPattern(back));
        EXPECT_EQ("", validatePattern(back));
    }
}

TEST(Synth, ParserRejectsMalformedText)
{
    HammerPattern out;
    EXPECT_NE("", parseHammerPattern("", out));
    EXPECT_NE("", parseHammerPattern("hammer-pattern v2\nperiod 1\n",
                                     out));
    EXPECT_NE("", parseHammerPattern(
                      "hammer-pattern v1\nperiod 0\n", out));
    EXPECT_NE("",
              parseHammerPattern("hammer-pattern v1\nperiod 4\n"
                                 "elem kind=bogus rows=1\n",
                                 out));
    // Structurally well-formed text still goes through the semantic
    // validator: a dummy-only pattern is rejected at parse time.
    EXPECT_EQ("pattern has no aggressor element",
              parseHammerPattern(
                  "hammer-pattern v1\nperiod 2\n"
                  "elem kind=dummy rows=4 banks=1 freq=1 "
                  "phase=0 span=2 amp=0\n",
                  out));
}

TEST(Synth, ClassifiesTheFourShapes)
{
    HammerPattern uniform;
    uniform.basePeriod = 1;
    PatternElement aggr;
    aggr.kind = ElementKind::kAggressors;
    uniform.elements = {aggr};
    EXPECT_EQ("uniform", patternClass(uniform));

    EXPECT_EQ("decoy-evict", patternClass(decoyShape()));

    HammerPattern early;
    early.basePeriod = 8;
    PatternElement early_aggr;
    early_aggr.kind = ElementKind::kAggressors;
    early_aggr.frequency = 8;
    early_aggr.span = 2;
    PatternElement fill;
    fill.kind = ElementKind::kDummies;
    fill.rows = 4;
    fill.span = 8;
    fill.frequency = 1;
    early.elements = {early_aggr, fill};
    EXPECT_EQ("early-aggr", patternClass(early));

    HammerPattern window;
    window.basePeriod = 8;
    PatternElement burst;
    burst.kind = ElementKind::kDummies;
    burst.rows = 2;
    burst.frequency = 8;
    burst.span = 3;
    PatternElement late_aggr;
    late_aggr.kind = ElementKind::kAggressors;
    late_aggr.frequency = 8;
    late_aggr.phase = 3;
    late_aggr.span = 5;
    window.elements = {burst, late_aggr};
    EXPECT_EQ("window-fill", patternClass(window));
}

// --- binding ----------------------------------------------------------

TEST(Synth, BindingPlacesAggressorsAndFarDummies)
{
    const ModuleSpec &b0 = spec("B0");
    const DiscoveredMapping mapping(b0.scramble, b0.rowsPerBank);
    const HammerPattern p = decoyShape();
    const PatternBinding binding =
        bindPattern(p, b0, mapping, 2, 9'000);
    EXPECT_EQ(2, binding.bank);
    ASSERT_EQ(2U, binding.aggressors.size());
    EXPECT_EQ(mapping.toLogical(8'999), binding.aggressors[0]);
    EXPECT_EQ(mapping.toLogical(9'001), binding.aggressors[1]);
    ASSERT_EQ(16U, binding.dummies.size());
    for (std::size_t i = 0; i < binding.dummies.size(); ++i) {
        SCOPED_TRACE(i);
        // No decoy may sit close enough to disturb the victim.
        const Row phys = mapping.toPhysical(binding.dummies[i]);
        EXPECT_GE(std::abs(static_cast<long>(phys) - 9'000L), 100);
        for (std::size_t j = 0; j < i; ++j)
            EXPECT_NE(binding.dummies[i], binding.dummies[j]);
    }

    // Paired-row module: aggressors are the victims' remap partners.
    const ModuleSpec &c0 = spec("C0");
    const DiscoveredMapping c_mapping(c0.scramble, c0.rowsPerBank);
    const PatternBinding paired =
        bindPattern(p, c0, c_mapping, 0, 4'000);
    ASSERT_EQ(2U, paired.aggressors.size());
    EXPECT_EQ(c_mapping.toLogical(4'000 ^ 1), paired.aggressors[0]);
    EXPECT_EQ(c_mapping.toLogical((4'000 + 2) ^ 1),
              paired.aggressors[1]);
    const auto victims = patternVictims(p, c0, c_mapping, 0, 4'000);
    ASSERT_EQ(2U, victims.size());
    EXPECT_EQ(c_mapping.toLogical(4'000), victims[0].second);
    EXPECT_EQ(c_mapping.toLogical(4'002), victims[1].second);
}

// --- golden bypass anchors (fixed-seed synthesis regression) ----------

std::vector<std::filesystem::path>
anchorFiles()
{
    std::vector<std::filesystem::path> files;
    for (const auto &item :
         std::filesystem::directory_iterator(UTRR_CORPUS_DIR)) {
        if (item.is_regular_file() &&
            item.path().extension() == ".json" &&
            item.path().filename().string().rfind("synth-", 0) == 0)
            files.push_back(item.path());
    }
    std::sort(files.begin(), files.end());
    return files;
}

TEST(SynthCorpus, HasOneAnchorPerVendor)
{
    std::set<char> vendors;
    for (const auto &path : anchorFiles()) {
        const std::string stem = path.stem().string();
        ASSERT_GT(stem.size(), 6U);
        vendors.insert(stem[6]); // "synth-A5" -> 'A'
    }
    EXPECT_TRUE(vendors.count('A'));
    EXPECT_TRUE(vendors.count('B'));
    EXPECT_TRUE(vendors.count('C'));
}

TEST(SynthCorpus, AnchorsReplayByteIdentically)
{
    for (const auto &path : anchorFiles()) {
        SCOPED_TRACE(path.string());
        std::ifstream is(path);
        std::ostringstream text;
        text << is.rdbuf();
        const auto doc = Json::parse(text.str());
        ASSERT_TRUE(doc.has_value());

        const std::string module = doc->find("module")->asString();
        const std::uint64_t seed = static_cast<std::uint64_t>(
            doc->find("seed")->asInt());
        const Json &config = *doc->find("config");
        SynthConfig cfg;
        cfg.attempts =
            static_cast<int>(config.find("attempts")->asInt());
        cfg.positions =
            static_cast<int>(config.find("positions")->asInt());
        cfg.moduleSeed = static_cast<std::uint64_t>(
            config.find("module_seed")->asInt());
        ASSERT_EQ(synthContentTag(cfg),
                  config.find("content_tag")->asString())
            << "anchor was generated with a different synth config; "
               "regenerate it (see EXPERIMENTS.md)";

        // Exactly the campaign job derivation: seed -> module name ->
        // "synth" sub-stream.
        const SynthModuleResult result = synthesizeForModule(
            spec(module), cfg, Rng(seed).fork(module).fork("synth"));
        EXPECT_EQ(doc->find("verdict")->dump(1),
                  synthVerdict(spec(module), result).dump(1));
    }
}

} // namespace
} // namespace utrr
