/**
 * @file
 * Streaming campaign telemetry: JSONL record schema, sequence
 * numbering, ETA semantics, and the end-to-end campaign integration
 * (one heartbeat per job from whichever worker ran it, campaign_start
 * first, campaign_end last) — the same surface scripts/
 * telemetry_check.py validates in CI.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dram/module.hh"
#include "obs/json.hh"
#include "obs/telemetry.hh"
#include "runner/campaign.hh"

namespace utrr
{
namespace
{

std::vector<Json>
parseLines(const std::string &text)
{
    std::vector<Json> records;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        EXPECT_FALSE(line.empty());
        auto parsed = Json::parse(line);
        EXPECT_TRUE(parsed.has_value()) << "unparseable line: " << line;
        if (parsed)
            records.push_back(std::move(*parsed));
    }
    return records;
}

std::int64_t
intField(const Json &record, const char *key)
{
    const Json *found = record.find(key);
    EXPECT_NE(found, nullptr) << "missing field " << key;
    return found == nullptr ? -1 : found->asInt();
}

TEST(TelemetrySinkTest, RecordsCarryTheEnvelopeAndSchema)
{
    std::ostringstream os;
    TelemetrySink sink(os);
    ASSERT_TRUE(sink.good());

    sink.campaignStart(45, 4, 1234);

    MetricsRegistry metrics;
    metrics.counter("dram.acts").inc(17);
    JobHeartbeat beat;
    beat.module = "A5";
    beat.jobIndex = 3;
    beat.ok = true;
    beat.attempts = 1;
    beat.jobWallMs = 12.5;
    beat.jobSimNs = 1'000'000;
    beat.metrics = &metrics;
    sink.heartbeat(beat);

    sink.campaignEnd(45, 0, 2, 1, 321.0);
    EXPECT_EQ(sink.recordsWritten(), 3u);

    const std::vector<Json> records = parseLines(os.str());
    ASSERT_EQ(records.size(), 3u);

    // Envelope: type + monotonically increasing seq on every record.
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(intField(records[i], "seq"),
                  static_cast<std::int64_t>(i));
        EXPECT_NE(records[i].find("wall_ms"), nullptr);
    }

    const Json &start = records[0];
    EXPECT_EQ(start.find("type")->asString(), "campaign_start");
    EXPECT_EQ(intField(start, "schema"), kTelemetrySchemaVersion);
    EXPECT_EQ(intField(start, "jobs_total"), 45);
    EXPECT_EQ(intField(start, "workers"), 4);
    EXPECT_EQ(intField(start, "seed"), 1234);

    const Json &hb = records[1];
    EXPECT_EQ(hb.find("type")->asString(), "heartbeat");
    EXPECT_EQ(hb.find("module")->asString(), "A5");
    EXPECT_EQ(intField(hb, "job_index"), 3);
    EXPECT_TRUE(hb.find("ok")->asBool());
    // The sink counted the job itself against campaign_start's total.
    EXPECT_EQ(intField(hb, "jobs_done"), 1);
    EXPECT_EQ(intField(hb, "jobs_total"), 45);
    EXPECT_EQ(intField(hb, "retries"), 0);
    EXPECT_EQ(intField(hb, "failures"), 0);
    EXPECT_EQ(intField(hb, "job_sim_ns"), 1'000'000);
    const Json *hb_metrics = hb.find("metrics");
    ASSERT_NE(hb_metrics, nullptr);
    EXPECT_EQ(intField(*hb_metrics, "dram.acts"), 17);

    const Json &end = records[2];
    EXPECT_EQ(end.find("type")->asString(), "campaign_end");
    EXPECT_EQ(intField(end, "retries"), 2);
    EXPECT_EQ(intField(end, "quarantined"), 1);
    EXPECT_TRUE(end.find("ok")->asBool());
}

TEST(TelemetrySinkTest, SinkAccumulatesTheCampaignTallies)
{
    std::ostringstream os;
    TelemetrySink sink(os);
    sink.campaignStart(3, 1, 1);

    // Three jobs: clean, retried, quarantined failure. The sink owns
    // the running totals, so the heartbeats carry only per-job facts.
    JobHeartbeat beat;
    beat.module = "A0";
    beat.ok = true;
    beat.attempts = 1;
    sink.heartbeat(beat);
    beat.module = "B3";
    beat.attempts = 3; // two watchdog retries
    sink.heartbeat(beat);
    beat.module = "C7";
    beat.ok = false;
    beat.attempts = 1;
    beat.quarantined = true;
    sink.heartbeat(beat);

    const std::vector<Json> records = parseLines(os.str());
    ASSERT_EQ(records.size(), 4u);
    for (std::size_t i = 1; i < records.size(); ++i) {
        EXPECT_EQ(intField(records[i], "jobs_done"),
                  static_cast<std::int64_t>(i));
        EXPECT_GE(records[i].find("eta_ms")->asNumber(), 0.0);
    }
    const Json &last = records[3];
    EXPECT_EQ(intField(last, "retries"), 2);
    EXPECT_EQ(intField(last, "quarantined_total"), 1);
    EXPECT_EQ(intField(last, "failures"), 1);
}

TEST(TelemetrySinkTest, EtaIsUndefinedWithoutACampaignTotal)
{
    // A heartbeat with no campaign_start (or past the announced total)
    // has no remainder to extrapolate to: eta_ms reports -1.
    std::ostringstream os;
    TelemetrySink sink(os);
    JobHeartbeat beat;
    beat.module = "A0";
    sink.heartbeat(beat);

    const std::vector<Json> records = parseLines(os.str());
    ASSERT_EQ(records.size(), 1u);
    EXPECT_DOUBLE_EQ(records[0].find("eta_ms")->asNumber(), -1.0);
}

TEST(TelemetrySinkTest, ConcurrentHeartbeatsStayMonotone)
{
    // Regression for the racy-tally bug: workers hammering the sink
    // concurrently must never publish jobs_done out of order, because
    // the tally bump and the write share one critical section.
    constexpr int kThreads = 8;
    constexpr int kBeatsPerThread = 25;
    std::ostringstream os;
    TelemetrySink sink(os);
    sink.campaignStart(kThreads * kBeatsPerThread, kThreads, 1);

    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
        pool.emplace_back([&sink]() {
            for (int i = 0; i < kBeatsPerThread; ++i) {
                JobHeartbeat beat;
                beat.module = "A0";
                beat.ok = true;
                beat.attempts = 1;
                sink.heartbeat(beat);
            }
        });
    }
    for (std::thread &worker : pool)
        worker.join();

    const std::vector<Json> records = parseLines(os.str());
    ASSERT_EQ(records.size(),
              static_cast<std::size_t>(kThreads * kBeatsPerThread + 1));
    for (std::size_t i = 1; i < records.size(); ++i) {
        EXPECT_EQ(intField(records[i], "seq"),
                  static_cast<std::int64_t>(i));
        EXPECT_EQ(intField(records[i], "jobs_done"),
                  static_cast<std::int64_t>(i));
    }
}

TEST(TelemetrySinkTest, CampaignEmitsOneHeartbeatPerJob)
{
    std::vector<ModuleSpec> specs;
    for (const char *name : {"A0", "B3", "C7", "A12", "B9"})
        specs.push_back(*findModuleSpec(name));

    std::ostringstream os;
    TelemetrySink sink(os);
    CampaignConfig config;
    config.jobs = 2;
    config.seed = 11;
    config.telemetry = &sink;
    CampaignRunner runner(config);
    const CampaignResult result =
        runner.run(specs, [](JobContext &ctx) {
            ctx.host.refBurst(4);
            JobOutcome outcome;
            outcome.ok = true;
            outcome.verdict = Json::object();
            return outcome;
        });
    EXPECT_TRUE(result.allOk());

    const std::vector<Json> records = parseLines(os.str());
    ASSERT_EQ(records.size(), specs.size() + 2);
    EXPECT_EQ(records.front().find("type")->asString(),
              "campaign_start");
    EXPECT_EQ(records.back().find("type")->asString(), "campaign_end");
    EXPECT_EQ(intField(records.back(), "failures"), 0);

    std::uint64_t prev_done = 0;
    std::vector<std::string> modules;
    for (std::size_t i = 1; i + 1 < records.size(); ++i) {
        const Json &hb = records[i];
        EXPECT_EQ(hb.find("type")->asString(), "heartbeat");
        EXPECT_EQ(intField(hb, "seq"), static_cast<std::int64_t>(i));
        // Progress counts every finished job exactly once, in
        // completion order: monotone, ending at jobs_total.
        const auto done =
            static_cast<std::uint64_t>(intField(hb, "jobs_done"));
        EXPECT_EQ(done, prev_done + 1);
        prev_done = done;
        EXPECT_EQ(intField(hb, "jobs_total"),
                  static_cast<std::int64_t>(specs.size()));
        EXPECT_TRUE(hb.find("ok")->asBool());
        // The job's private metrics snapshot rode along.
        const Json *metrics = hb.find("metrics");
        ASSERT_NE(metrics, nullptr);
        EXPECT_GT(intField(*metrics, "dram.refs"), 0);
        modules.push_back(hb.find("module")->asString());
    }
    EXPECT_EQ(prev_done, specs.size());

    // Every module reported exactly once (arrival order is free).
    std::sort(modules.begin(), modules.end());
    std::vector<std::string> expected;
    for (const ModuleSpec &spec : specs)
        expected.push_back(spec.name);
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(modules, expected);
}

TEST(TelemetrySinkTest, BadPathReportsNotGood)
{
    TelemetrySink sink("/nonexistent-dir/telemetry.jsonl");
    EXPECT_FALSE(sink.good());
}

TEST(TelemetrySinkTest, CampaignResumeSeedsTheProgressTally)
{
    // Journaled jobs emit no heartbeat of their own; campaign_resume
    // seeds jobs_done so the stream still ends at jobs_total.
    std::ostringstream os;
    TelemetrySink sink(os);
    sink.campaignStart(5, 1, 1);
    sink.campaignResume(3, 2);

    JobHeartbeat beat;
    beat.module = "A0";
    beat.ok = true;
    beat.attempts = 1;
    sink.heartbeat(beat);
    sink.heartbeat(beat);
    sink.campaignEnd(5, 0, 0, 0, 1.0);

    const std::vector<Json> records = parseLines(os.str());
    ASSERT_EQ(records.size(), 5u);
    const Json &resume = records[1];
    EXPECT_EQ(resume.find("type")->asString(), "campaign_resume");
    EXPECT_EQ(intField(resume, "seq"), 1);
    EXPECT_EQ(intField(resume, "schema"), kTelemetrySchemaVersion);
    EXPECT_EQ(intField(resume, "journaled"), 3);
    EXPECT_EQ(intField(resume, "scheduled"), 2);
    EXPECT_EQ(intField(resume, "jobs_total"), 5);
    // The two live heartbeats continue from the journaled baseline.
    EXPECT_EQ(intField(records[2], "jobs_done"), 4);
    EXPECT_EQ(intField(records[3], "jobs_done"), 5);
}

TEST(TelemetrySinkTest, ResumedCampaignEmitsTheResumeRecord)
{
    const std::string journal = "telemetry_test_resume.jsonl";
    std::remove(journal.c_str());
    std::vector<ModuleSpec> specs;
    for (const char *name : {"A0", "B3", "C7"})
        specs.push_back(*findModuleSpec(name));
    const JobFn job = [](JobContext &ctx) {
        ctx.host.refBurst(2);
        JobOutcome outcome;
        outcome.ok = true;
        outcome.verdict = Json::object();
        return outcome;
    };

    CampaignConfig config;
    config.jobs = 1;
    config.seed = 11;
    config.journalPath = journal;
    config.journalFsync = false;
    config.contentTag = "test:telemetry:v1";
    CampaignRunner runner(config);
    ASSERT_TRUE(runner.run(specs, job).allOk());

    // Resume with everything journaled: campaign_start, then the
    // resume record, then straight to campaign_end — no heartbeats.
    std::ostringstream os;
    TelemetrySink sink(os);
    config.resume = true;
    config.telemetry = &sink;
    CampaignRunner resumer(config);
    ASSERT_TRUE(resumer.run(specs, job).allOk());

    const std::vector<Json> records = parseLines(os.str());
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[0].find("type")->asString(), "campaign_start");
    const Json &resume = records[1];
    EXPECT_EQ(resume.find("type")->asString(), "campaign_resume");
    EXPECT_EQ(intField(resume, "journaled"), 3);
    EXPECT_EQ(intField(resume, "scheduled"), 0);
    const Json &end = records[2];
    EXPECT_EQ(end.find("type")->asString(), "campaign_end");
    EXPECT_EQ(intField(end, "failures"), 0);
    std::remove(journal.c_str());
}

TEST(TelemetrySinkTest, FsyncingFileSinkWritesDurableRecords)
{
    const std::string path = "telemetry_test_fsync.jsonl";
    std::remove(path.c_str());
    {
        TelemetrySink sink(path, /*fsync_each_record=*/true);
        ASSERT_TRUE(sink.good());
        sink.campaignStart(1, 1, 7);
        JobHeartbeat beat;
        beat.module = "A0";
        beat.ok = true;
        beat.attempts = 1;
        sink.heartbeat(beat);
        sink.campaignEnd(1, 0, 0, 0, 1.0);
    }
    std::ifstream is(path);
    ASSERT_TRUE(is.good());
    std::ostringstream text;
    text << is.rdbuf();
    const std::vector<Json> records = parseLines(text.str());
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[0].find("type")->asString(), "campaign_start");
    EXPECT_EQ(records[2].find("type")->asString(), "campaign_end");
    std::remove(path.c_str());
}

} // namespace
} // namespace utrr
