/**
 * @file
 * Streaming campaign telemetry: JSONL record schema, sequence
 * numbering, ETA semantics, and the end-to-end campaign integration
 * (one heartbeat per job from whichever worker ran it, campaign_start
 * first, campaign_end last) — the same surface scripts/
 * telemetry_check.py validates in CI.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "dram/module.hh"
#include "obs/json.hh"
#include "obs/telemetry.hh"
#include "runner/campaign.hh"

namespace utrr
{
namespace
{

std::vector<Json>
parseLines(const std::string &text)
{
    std::vector<Json> records;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        EXPECT_FALSE(line.empty());
        auto parsed = Json::parse(line);
        EXPECT_TRUE(parsed.has_value()) << "unparseable line: " << line;
        if (parsed)
            records.push_back(std::move(*parsed));
    }
    return records;
}

std::int64_t
intField(const Json &record, const char *key)
{
    const Json *found = record.find(key);
    EXPECT_NE(found, nullptr) << "missing field " << key;
    return found == nullptr ? -1 : found->asInt();
}

TEST(TelemetrySinkTest, RecordsCarryTheEnvelopeAndSchema)
{
    std::ostringstream os;
    TelemetrySink sink(os);
    ASSERT_TRUE(sink.good());

    sink.campaignStart(45, 4, 1234);

    MetricsRegistry metrics;
    metrics.counter("dram.acts").inc(17);
    JobHeartbeat beat;
    beat.module = "A5";
    beat.jobIndex = 3;
    beat.ok = true;
    beat.attempts = 1;
    beat.jobsDone = 1;
    beat.jobsTotal = 45;
    beat.jobWallMs = 12.5;
    beat.jobSimNs = 1'000'000;
    beat.metrics = &metrics;
    sink.heartbeat(beat);

    sink.campaignEnd(45, 0, 2, 1, 321.0);
    EXPECT_EQ(sink.recordsWritten(), 3u);

    const std::vector<Json> records = parseLines(os.str());
    ASSERT_EQ(records.size(), 3u);

    // Envelope: type + monotonically increasing seq on every record.
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(intField(records[i], "seq"),
                  static_cast<std::int64_t>(i));
        EXPECT_NE(records[i].find("wall_ms"), nullptr);
    }

    const Json &start = records[0];
    EXPECT_EQ(start.find("type")->asString(), "campaign_start");
    EXPECT_EQ(intField(start, "schema"), kTelemetrySchemaVersion);
    EXPECT_EQ(intField(start, "jobs_total"), 45);
    EXPECT_EQ(intField(start, "workers"), 4);
    EXPECT_EQ(intField(start, "seed"), 1234);

    const Json &hb = records[1];
    EXPECT_EQ(hb.find("type")->asString(), "heartbeat");
    EXPECT_EQ(hb.find("module")->asString(), "A5");
    EXPECT_EQ(intField(hb, "job_index"), 3);
    EXPECT_TRUE(hb.find("ok")->asBool());
    EXPECT_EQ(intField(hb, "jobs_done"), 1);
    EXPECT_EQ(intField(hb, "job_sim_ns"), 1'000'000);
    const Json *hb_metrics = hb.find("metrics");
    ASSERT_NE(hb_metrics, nullptr);
    EXPECT_EQ(intField(*hb_metrics, "dram.acts"), 17);

    const Json &end = records[2];
    EXPECT_EQ(end.find("type")->asString(), "campaign_end");
    EXPECT_EQ(intField(end, "retries"), 2);
    EXPECT_EQ(intField(end, "quarantined"), 1);
    EXPECT_TRUE(end.find("ok")->asBool());
}

TEST(TelemetrySinkTest, EtaIsUndefinedUntilTheFirstJobFinishes)
{
    std::ostringstream os;
    TelemetrySink sink(os);
    sink.campaignStart(2, 1, 1);

    JobHeartbeat beat;
    beat.module = "A0";
    beat.jobsDone = 0; // no finished jobs yet: no rate to extrapolate
    beat.jobsTotal = 2;
    sink.heartbeat(beat);
    beat.jobsDone = 1;
    sink.heartbeat(beat);

    const std::vector<Json> records = parseLines(os.str());
    ASSERT_EQ(records.size(), 3u);
    EXPECT_DOUBLE_EQ(records[1].find("eta_ms")->asNumber(), -1.0);
    EXPECT_GE(records[2].find("eta_ms")->asNumber(), 0.0);
}

TEST(TelemetrySinkTest, CampaignEmitsOneHeartbeatPerJob)
{
    std::vector<ModuleSpec> specs;
    for (const char *name : {"A0", "B3", "C7", "A12", "B9"})
        specs.push_back(*findModuleSpec(name));

    std::ostringstream os;
    TelemetrySink sink(os);
    CampaignConfig config;
    config.jobs = 2;
    config.seed = 11;
    config.telemetry = &sink;
    CampaignRunner runner(config);
    const CampaignResult result =
        runner.run(specs, [](JobContext &ctx) {
            ctx.host.refBurst(4);
            JobOutcome outcome;
            outcome.ok = true;
            outcome.verdict = Json::object();
            return outcome;
        });
    EXPECT_TRUE(result.allOk());

    const std::vector<Json> records = parseLines(os.str());
    ASSERT_EQ(records.size(), specs.size() + 2);
    EXPECT_EQ(records.front().find("type")->asString(),
              "campaign_start");
    EXPECT_EQ(records.back().find("type")->asString(), "campaign_end");
    EXPECT_EQ(intField(records.back(), "failures"), 0);

    std::uint64_t prev_done = 0;
    std::vector<std::string> modules;
    for (std::size_t i = 1; i + 1 < records.size(); ++i) {
        const Json &hb = records[i];
        EXPECT_EQ(hb.find("type")->asString(), "heartbeat");
        EXPECT_EQ(intField(hb, "seq"), static_cast<std::int64_t>(i));
        // Progress counts every finished job exactly once, in
        // completion order: monotone, ending at jobs_total.
        const auto done =
            static_cast<std::uint64_t>(intField(hb, "jobs_done"));
        EXPECT_EQ(done, prev_done + 1);
        prev_done = done;
        EXPECT_EQ(intField(hb, "jobs_total"),
                  static_cast<std::int64_t>(specs.size()));
        EXPECT_TRUE(hb.find("ok")->asBool());
        // The job's private metrics snapshot rode along.
        const Json *metrics = hb.find("metrics");
        ASSERT_NE(metrics, nullptr);
        EXPECT_GT(intField(*metrics, "dram.refs"), 0);
        modules.push_back(hb.find("module")->asString());
    }
    EXPECT_EQ(prev_done, specs.size());

    // Every module reported exactly once (arrival order is free).
    std::sort(modules.begin(), modules.end());
    std::vector<std::string> expected;
    for (const ModuleSpec &spec : specs)
        expected.push_back(spec.name);
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(modules, expected);
}

TEST(TelemetrySinkTest, BadPathReportsNotGood)
{
    TelemetrySink sink("/nonexistent-dir/telemetry.jsonl");
    EXPECT_FALSE(sink.good());
}

} // namespace
} // namespace utrr
