#include <gtest/gtest.h>

#include "attack/sweep.hh"
#include "dram/module.hh"
#include "softmc/host.hh"

namespace utrr
{
namespace
{

/**
 * Parameterized sanity sweep over all 45 Table-1 module
 * configurations: every module must construct, serve basic command
 * sequences, fire its TRR under hammering, and yield sane custom
 * attack parameters.
 */
class EveryModule : public ::testing::TestWithParam<std::string>
{
  protected:
    ModuleSpec
    spec() const
    {
        return *findModuleSpec(GetParam());
    }
};

TEST_P(EveryModule, ConstructsAndRoundTrips)
{
    DramModule module(spec(), 3);
    SoftMcHost host(module);
    const Row row = 1'234;
    host.writeRow(0, row, DataPattern::checkerboard());
    EXPECT_EQ(host.readRow(0, row).countFlipsVs(
                  DataPattern::checkerboard(), row),
              0);
    // The last bank works too.
    const Bank last = spec().banks - 1;
    host.writeRow(last, row, DataPattern::colStripe());
    EXPECT_EQ(host.readRow(last, row)
                  .countFlipsVs(DataPattern::colStripe(), row),
              0);
}

TEST_P(EveryModule, TrrFiresUnderSustainedHammering)
{
    DramModule module(spec(), 4);
    SoftMcHost host(module);
    // Hammer two rows and REF for two nominal refresh periods.
    const int period = spec().traits().trrToRefPeriod;
    for (int slot = 0; slot < 4 * period + 4; ++slot) {
        host.hammerInterleaved({{0, 4'000}, {0, 4'002}}, {60, 60});
        host.ref();
    }
    EXPECT_GT(module.trrRefreshCount(), 0u)
        << trrVersionName(spec().trr);
}

TEST_P(EveryModule, MappingRoundTripsEveryBank)
{
    DramModule module(spec(), 5);
    for (Bank b = 0; b < spec().banks; ++b) {
        for (Row r : {0, 1, 2, 3, 1'000, spec().rowsPerBank - 1}) {
            EXPECT_EQ(module.toLogical(b, module.toPhysical(b, r)), r)
                << "bank " << b << " row " << r;
        }
    }
}

TEST_P(EveryModule, CustomParamsAreExecutable)
{
    const ModuleSpec s = spec();
    const CustomPatternParams params = defaultCustomParams(s);
    EXPECT_EQ(params.vendor, s.vendor);
    EXPECT_EQ(params.trrPeriod, s.traits().trrToRefPeriod);
    EXPECT_GT(params.aggressorHammers, 0);

    // One pattern slot must fit in a REF interval.
    DramModule module(s, 6);
    SoftMcHost host(module);
    const DiscoveredMapping mapping(s.scramble, s.rowsPerBank);
    auto pattern =
        makeCustomPattern(params, host, mapping, 0, 5'000);
    pattern->begin(host);
    const Time slot_budget =
        host.timing().tREFI - host.timing().tRFC;
    for (std::uint64_t slot = 0; slot < 4; ++slot) {
        const Time start = host.now();
        pattern->runSlot(host, slot);
        EXPECT_LE(host.now() - start, slot_budget) << "slot " << slot;
        host.wait(slot_budget - (host.now() - start));
        host.ref();
    }
}

std::vector<std::string>
allModuleNames()
{
    std::vector<std::string> names;
    for (const ModuleSpec &spec : allModuleSpecs())
        names.push_back(spec.name);
    return names;
}

INSTANTIATE_TEST_SUITE_P(Table1, EveryModule,
                         ::testing::ValuesIn(allModuleNames()));

} // namespace
} // namespace utrr
