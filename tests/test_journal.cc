/**
 * @file
 * Write-ahead journal tests: CRC-32C vectors, durable-file helpers,
 * exact ModuleResult round trips, torn-tail / corrupt-record /
 * foreign-campaign tolerance of the loader, campaign content-hash
 * sensitivity, and the runner-level resume contract (journaled jobs
 * are not re-executed; the merged outcome is bit-identical to an
 * uninterrupted run; quarantined jobs re-attempt with fresh salts).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/checksum.hh"
#include "common/durable_file.hh"
#include "obs/report.hh"
#include "dram/module_spec.hh"
#include "fault/io_fault.hh"
#include "runner/campaign.hh"
#include "runner/cancellation.hh"
#include "runner/journal.hh"

namespace utrr
{
namespace
{

/** Unique-ish scratch path under the build tree's cwd. */
std::string
scratchPath(const std::string &stem)
{
    return "journal_test_" + stem + ".jsonl";
}

void
removeFile(const std::string &path)
{
    std::remove(path.c_str());
}

/** A small synthetic campaign: cheap, deterministic, journal-friendly. */
std::vector<ModuleSpec>
tinySpecs(int count = 4)
{
    std::vector<ModuleSpec> specs;
    for (int i = 0; i < count; ++i) {
        ModuleSpec spec = *findModuleSpec("A0");
        spec.name = "J" + std::to_string(i);
        spec.rowsPerBank = 1024;
        specs.push_back(spec);
    }
    return specs;
}

/**
 * Deterministic job body: a little simulated traffic, metrics in all
 * three families, and an RNG-derived verdict — enough surface for the
 * byte-equality assertions to mean something.
 */
JobFn
syntheticJob()
{
    return [](JobContext &ctx) {
        ctx.host.writeRow(0, 1, DataPattern::allOnes());
        ctx.host.refBurst(2);
        ctx.metrics.counter("job.runs").inc();
        ctx.metrics.gauge("job.noise").set(ctx.rng.uniform());
        ctx.metrics.histogram("job.draws")
            .add(static_cast<std::int64_t>(ctx.rng.uniformInt(0, 7)));
        JobOutcome outcome;
        outcome.ok = true;
        Json verdict = Json::object();
        verdict["index"] = Json(ctx.index);
        verdict["draw"] = Json(ctx.rng.next());
        verdict["module"] = Json(ctx.spec.name);
        outcome.verdict = std::move(verdict);
        return outcome;
    };
}

/** Merged-metrics bytes minus the wall-clock gauge. */
std::string
deterministicMetrics(const CampaignResult &result)
{
    return deterministicProjection(result.merged.toJson()).dump();
}

CampaignConfig
journalConfig(const std::string &path)
{
    CampaignConfig cfg;
    cfg.jobs = 1;
    cfg.seed = 7;
    cfg.journalPath = path;
    cfg.contentTag = "test:synthetic:v1";
    return cfg;
}

TEST(Crc32c, MatchesKnownVectors)
{
    // RFC 3720 (iSCSI) CRC-32C check value.
    EXPECT_EQ(crc32c("123456789"), 0xe3069283u);
    EXPECT_EQ(crc32c(""), 0u);
    EXPECT_EQ(crc32cHex("123456789"), "e3069283");
}

TEST(Crc32c, HexParsesRoundTripAndRejectsJunk)
{
    std::uint32_t value = 0;
    ASSERT_TRUE(parseCrc32cHex("e3069283", value));
    EXPECT_EQ(value, 0xe3069283u);
    EXPECT_FALSE(parseCrc32cHex("e306928", value));   // short
    EXPECT_FALSE(parseCrc32cHex("e30692834", value)); // long
    EXPECT_FALSE(parseCrc32cHex("e30692g3", value));  // non-hex
}

TEST(DurableFile, AppendTruncateAndReadBack)
{
    const std::string path = scratchPath("durable");
    removeFile(path);
    {
        DurableAppendFile file;
        ASSERT_TRUE(file.open(path, /*truncate=*/true,
                              /*fsync_each_record=*/false));
        ASSERT_TRUE(file.append("one\n"));
        ASSERT_TRUE(file.append("two\n"));
        ASSERT_TRUE(file.sync());
    }
    std::string contents;
    ASSERT_TRUE(readFileToString(path, contents));
    EXPECT_EQ(contents, "one\ntwo\n");

    // Re-open without truncation appends; with truncation restarts.
    {
        DurableAppendFile file;
        ASSERT_TRUE(file.open(path, /*truncate=*/false, false));
        ASSERT_TRUE(file.append("three\n"));
    }
    ASSERT_TRUE(readFileToString(path, contents));
    EXPECT_EQ(contents, "one\ntwo\nthree\n");
    {
        DurableAppendFile file;
        ASSERT_TRUE(file.open(path, /*truncate=*/true, false));
    }
    ASSERT_TRUE(readFileToString(path, contents));
    EXPECT_EQ(contents, "");
    removeFile(path);
}

TEST(DurableFile, AtomicReplaceInstallsFullContents)
{
    const std::string path = scratchPath("replace");
    removeFile(path);
    ASSERT_TRUE(atomicReplaceFile(path, "first"));
    std::string contents;
    ASSERT_TRUE(readFileToString(path, contents));
    EXPECT_EQ(contents, "first");
    ASSERT_TRUE(atomicReplaceFile(path, "second, longer than before"));
    ASSERT_TRUE(readFileToString(path, contents));
    EXPECT_EQ(contents, "second, longer than before");
    EXPECT_TRUE(fileExists(path));
    removeFile(path);
    EXPECT_FALSE(fileExists(path));
}

TEST(JournalRecord, ModuleResultRoundTripsExactly)
{
    ModuleResult original;
    original.module = "B7";
    original.index = 11;
    original.ok = true;
    original.quarantined = false;
    original.attempts = 2;
    original.error = "";
    original.wallMs = 123.456789;
    original.simNs = 987654321;
    original.traceRecorded = 42;
    original.faultStats.vrtFlips = 3;
    original.faultStats.droppedRefs = 1;
    Json verdict = Json::object();
    verdict["period"] = Json(std::int64_t{9});
    verdict["ratio"] = Json(0.1); // exercises %.17g round-trip
    original.verdict = std::move(verdict);
    original.metrics.counter("fuzz.ops").inc(1234);
    original.metrics.gauge("temp.scale").set(1.0000001);
    original.metrics.histogram("lat").add(-5, 2);
    original.metrics.histogram("lat").add(17, 1);

    const Json body = moduleResultToJson(original);
    ModuleResult loaded;
    ASSERT_TRUE(moduleResultFromJson(body, loaded));

    EXPECT_TRUE(loaded.completed);
    EXPECT_TRUE(loaded.fromJournal);
    EXPECT_EQ(loaded.module, original.module);
    EXPECT_EQ(loaded.index, original.index);
    EXPECT_EQ(loaded.attempts, original.attempts);
    EXPECT_EQ(loaded.simNs, original.simNs);
    EXPECT_EQ(loaded.traceRecorded, original.traceRecorded);
    EXPECT_EQ(loaded.faultStats.vrtFlips, 3u);
    EXPECT_EQ(loaded.faultStats.droppedRefs, 1u);
    // Byte-exact where it matters: verdict and metrics snapshots.
    EXPECT_EQ(loaded.verdict.dump(), original.verdict.dump());
    EXPECT_EQ(loaded.metrics.toJson().dump(),
              original.metrics.toJson().dump());
    // And the serialization itself is stable under a second round trip.
    EXPECT_EQ(moduleResultToJson(loaded).dump(), body.dump());
}

TEST(JournalRecord, FromJsonRejectsMalformedBodies)
{
    ModuleResult out;
    EXPECT_FALSE(moduleResultFromJson(Json("not an object"), out));
    Json body = moduleResultToJson(ModuleResult{});
    Json missing = Json::object();
    for (const auto &[key, value] : body.members()) {
        if (key != "metrics")
            missing[key] = value;
    }
    EXPECT_FALSE(moduleResultFromJson(missing, out));
}

TEST(CampaignKey, SensitiveToEveryIdentityInput)
{
    const std::vector<ModuleSpec> specs = tinySpecs();
    CampaignConfig base = journalConfig("unused");
    const std::uint64_t k0 =
        CampaignKey::compute(base, specs).value();

    CampaignConfig seed = base;
    seed.seed += 1;
    EXPECT_NE(CampaignKey::compute(seed, specs).value(), k0);

    CampaignConfig module_seed = base;
    module_seed.moduleSeed += 1;
    EXPECT_NE(CampaignKey::compute(module_seed, specs).value(), k0);

    CampaignConfig tag = base;
    tag.contentTag = "test:synthetic:v2";
    EXPECT_NE(CampaignKey::compute(tag, specs).value(), k0);

    CampaignConfig faults = base;
    faults.faults.dropRefChance = 0.25;
    EXPECT_NE(CampaignKey::compute(faults, specs).value(), k0);

    CampaignConfig watchdog = base;
    watchdog.watchdogBudgetNs = 12345;
    EXPECT_NE(CampaignKey::compute(watchdog, specs).value(), k0);

    std::vector<ModuleSpec> renamed = specs;
    renamed[2].name = "Jx";
    EXPECT_NE(CampaignKey::compute(base, renamed).value(), k0);

    // But not to journal plumbing: path/resume/fsync are not identity.
    CampaignConfig plumbing = base;
    plumbing.journalPath = "elsewhere.jsonl";
    plumbing.resume = true;
    plumbing.journalFsync = false;
    EXPECT_EQ(CampaignKey::compute(plumbing, specs).value(), k0);

    // Per-job keys differ across jobs and campaigns.
    const CampaignKey key = CampaignKey::compute(base, specs);
    const CampaignKey other = CampaignKey::compute(seed, specs);
    EXPECT_NE(key.jobKey(specs[0], 0), key.jobKey(specs[1], 1));
    EXPECT_NE(key.jobKey(specs[0], 0), other.jobKey(specs[0], 0));
}

TEST(JournalFile, WriteThenLoadRecoversHeaderAndJobs)
{
    const std::string path = scratchPath("roundtrip");
    removeFile(path);
    const std::vector<ModuleSpec> specs = tinySpecs();
    const CampaignConfig cfg = journalConfig(path);
    const CampaignKey key = CampaignKey::compute(cfg, specs);

    JournalWriter writer;
    ASSERT_TRUE(writer.open(path, key, cfg, specs.size(),
                            /*append_existing=*/false));
    ModuleResult job;
    job.module = "J1";
    job.index = 1;
    job.ok = true;
    job.attempts = 1;
    ASSERT_TRUE(writer.append(key.jobKey(specs[1], 1), job));
    EXPECT_EQ(writer.recordsWritten(), 2u); // header + one job

    const JournalLoad load = loadJournal(path);
    EXPECT_TRUE(load.fileFound);
    EXPECT_TRUE(load.headerValid);
    EXPECT_EQ(load.headerCampaign, key.value());
    EXPECT_EQ(load.headerSeed, cfg.seed);
    EXPECT_EQ(load.headerJobsTotal, specs.size());
    ASSERT_EQ(load.jobs.size(), 1u);
    EXPECT_EQ(load.jobs[0].key, key.jobKey(specs[1], 1));
    EXPECT_EQ(load.jobs[0].result.module, "J1");
    EXPECT_EQ(load.corruptRecords, 0u);
    EXPECT_FALSE(load.tornTail);
    removeFile(path);
}

TEST(JournalFile, MissingFileReportsNotFound)
{
    const JournalLoad load = loadJournal("does_not_exist.jsonl");
    EXPECT_FALSE(load.fileFound);
    EXPECT_FALSE(load.headerValid);
    EXPECT_TRUE(load.jobs.empty());
}

TEST(JournalFile, TornTailIsDroppedWithoutPoisoningTheRest)
{
    const std::string path = scratchPath("torn");
    removeFile(path);
    const std::vector<ModuleSpec> specs = tinySpecs();
    const CampaignConfig cfg = journalConfig(path);
    const CampaignKey key = CampaignKey::compute(cfg, specs);
    {
        JournalWriter writer;
        ASSERT_TRUE(writer.open(path, key, cfg, specs.size(), false));
        for (std::uint64_t i = 0; i < 3; ++i) {
            ModuleResult job;
            job.module = specs[i].name;
            job.index = i;
            job.ok = true;
            ASSERT_TRUE(writer.append(key.jobKey(specs[i], i), job));
        }
    }
    std::string contents;
    ASSERT_TRUE(readFileToString(path, contents));
    // Tear the final record mid-line, exactly like a crash mid-write.
    ASSERT_TRUE(atomicReplaceFile(
        path, std::string_view(contents)
                  .substr(0, contents.size() - 25)));

    const JournalLoad load = loadJournal(path);
    EXPECT_TRUE(load.headerValid);
    EXPECT_TRUE(load.tornTail);
    EXPECT_EQ(load.corruptRecords, 0u);
    ASSERT_EQ(load.jobs.size(), 2u);
    EXPECT_EQ(load.jobs[0].result.module, "J0");
    EXPECT_EQ(load.jobs[1].result.module, "J1");
    removeFile(path);
}

TEST(JournalFile, CorruptMidFileRecordIsSkippedAndCounted)
{
    const std::string path = scratchPath("corrupt");
    removeFile(path);
    const std::vector<ModuleSpec> specs = tinySpecs();
    const CampaignConfig cfg = journalConfig(path);
    const CampaignKey key = CampaignKey::compute(cfg, specs);
    {
        JournalWriter writer;
        ASSERT_TRUE(writer.open(path, key, cfg, specs.size(), false));
        for (std::uint64_t i = 0; i < 3; ++i) {
            ModuleResult job;
            job.module = specs[i].name;
            job.index = i;
            job.ok = true;
            ASSERT_TRUE(writer.append(key.jobKey(specs[i], i), job));
        }
    }
    std::string contents;
    ASSERT_TRUE(readFileToString(path, contents));
    // Flip one byte inside the *second* job record's body: its CRC no
    // longer matches, the other records are untouched.
    std::vector<std::size_t> line_starts{0};
    for (std::size_t i = 0; i < contents.size(); ++i) {
        if (contents[i] == '\n')
            line_starts.push_back(i + 1);
    }
    ASSERT_GE(line_starts.size(), 4u);
    const std::size_t victim = line_starts[2] + 40;
    contents[victim] = contents[victim] == 'x' ? 'y' : 'x';
    ASSERT_TRUE(atomicReplaceFile(path, contents));

    const JournalLoad load = loadJournal(path);
    EXPECT_TRUE(load.headerValid);
    EXPECT_EQ(load.corruptRecords, 1u);
    EXPECT_FALSE(load.tornTail);
    ASSERT_EQ(load.jobs.size(), 2u);
    EXPECT_EQ(load.jobs[0].result.module, "J0");
    EXPECT_EQ(load.jobs[1].result.module, "J2");
    removeFile(path);
}

TEST(JournalWriteFaultSpec, ParsesRecordAndByteOffsets)
{
    auto fault = JournalWriteFault::parse("3");
    ASSERT_TRUE(fault.has_value());
    EXPECT_EQ(fault->crashAtRecord, 3);
    EXPECT_EQ(fault->partialBytes, -1);
    EXPECT_TRUE(fault->armed());
    EXPECT_TRUE(fault->firesAt(3));
    EXPECT_FALSE(fault->firesAt(2));

    fault = JournalWriteFault::parse("5:17");
    ASSERT_TRUE(fault.has_value());
    EXPECT_EQ(fault->crashAtRecord, 5);
    EXPECT_EQ(fault->partialBytes, 17);

    EXPECT_FALSE(JournalWriteFault::parse("").has_value());
    EXPECT_FALSE(JournalWriteFault::parse("x").has_value());
    EXPECT_FALSE(JournalWriteFault::parse("3:").has_value());
}

// --- runner-level resume contract -----------------------------------

/** Count how many times the job body actually executed. */
JobFn
countingJob(std::atomic<int> &executions)
{
    JobFn inner = syntheticJob();
    return [&executions, inner](JobContext &ctx) {
        executions.fetch_add(1, std::memory_order_relaxed);
        return inner(ctx);
    };
}

TEST(CampaignResume, CompletedJournalRunsNothingAndMatchesByteForByte)
{
    const std::string path = scratchPath("resume_full");
    removeFile(path);
    const std::vector<ModuleSpec> specs = tinySpecs();
    CampaignConfig cfg = journalConfig(path);
    cfg.journalFsync = false; // keep the unit test fast

    std::atomic<int> executions{0};
    const CampaignRunner runner(cfg);
    const CampaignResult clean =
        runner.run(specs, countingJob(executions));
    EXPECT_EQ(executions.load(), 4);
    EXPECT_TRUE(clean.allOk());
    EXPECT_FALSE(clean.interrupted);
    EXPECT_EQ(clean.scheduledJobs, 4u);

    cfg.resume = true;
    const CampaignRunner resumer(cfg);
    const CampaignResult resumed =
        resumer.run(specs, countingJob(executions));
    EXPECT_EQ(executions.load(), 4) << "journaled jobs must not re-run";
    EXPECT_EQ(resumed.journaledJobs, 4u);
    EXPECT_EQ(resumed.scheduledJobs, 0u);
    EXPECT_TRUE(resumed.allOk());
    EXPECT_EQ(resumed.verdicts().dump(), clean.verdicts().dump());
    EXPECT_EQ(deterministicMetrics(resumed), deterministicMetrics(clean));
    removeFile(path);
}

TEST(CampaignResume, PartialJournalRunsOnlyMissingJobs)
{
    const std::string path = scratchPath("resume_partial");
    removeFile(path);
    const std::vector<ModuleSpec> specs = tinySpecs();
    CampaignConfig cfg = journalConfig(path);
    cfg.journalFsync = false;

    std::atomic<int> executions{0};
    const CampaignRunner runner(cfg);
    const CampaignResult clean =
        runner.run(specs, countingJob(executions));
    ASSERT_TRUE(clean.allOk());

    // Drop the records for jobs 1 and 3, as if the campaign had been
    // killed before they finished.
    std::string contents;
    ASSERT_TRUE(readFileToString(path, contents));
    std::istringstream lines(contents);
    std::string line;
    std::string kept;
    int line_no = 0;
    while (std::getline(lines, line)) {
        if (line_no != 2 && line_no != 4)
            kept += line + "\n";
        ++line_no;
    }
    ASSERT_TRUE(atomicReplaceFile(path, kept));

    executions.store(0);
    cfg.resume = true;
    const CampaignRunner resumer(cfg);
    const CampaignResult resumed =
        resumer.run(specs, countingJob(executions));
    EXPECT_EQ(executions.load(), 2) << "only the missing jobs re-run";
    EXPECT_EQ(resumed.journaledJobs, 2u);
    EXPECT_EQ(resumed.scheduledJobs, 2u);
    EXPECT_TRUE(resumed.allOk());
    EXPECT_EQ(resumed.verdicts().dump(), clean.verdicts().dump());
    EXPECT_EQ(deterministicMetrics(resumed), deterministicMetrics(clean));
    removeFile(path);
}

TEST(CampaignResume, ForeignJournalIsRotatedAsideAndIgnored)
{
    const std::string path = scratchPath("resume_foreign");
    const std::string stale = path + ".stale";
    removeFile(path);
    removeFile(stale);
    const std::vector<ModuleSpec> specs = tinySpecs();
    CampaignConfig cfg = journalConfig(path);
    cfg.journalFsync = false;

    std::atomic<int> executions{0};
    const CampaignRunner runner(cfg);
    (void)runner.run(specs, countingJob(executions));
    ASSERT_EQ(executions.load(), 4);

    // Same journal, different campaign seed: every record is foreign.
    CampaignConfig other = cfg;
    other.seed += 1;
    other.resume = true;
    const CampaignRunner other_runner(other);
    const CampaignResult result =
        other_runner.run(specs, countingJob(executions));
    EXPECT_EQ(executions.load(), 8) << "nothing may resume across seeds";
    EXPECT_EQ(result.journaledJobs, 0u);
    EXPECT_TRUE(fileExists(stale)) << "old journal rotated, not lost";
    removeFile(path);
    removeFile(stale);
}

TEST(CampaignResume, QuarantinedJobReattemptsWithFreshSalts)
{
    const std::string path = scratchPath("resume_quarantine");
    removeFile(path);
    std::vector<ModuleSpec> specs = tinySpecs(2);
    CampaignConfig cfg = journalConfig(path);
    cfg.journalFsync = false;
    cfg.watchdogBudgetNs = 1'000'000; // 1 ms of simulated time
    cfg.maxWatchdogRetries = 1;       // two attempts per run

    // Job J1 hangs (waits past the watchdog) until the effective
    // attempt counter reaches 2 — i.e. it can only ever succeed on a
    // *resumed* ladder, never within the first run's two attempts.
    const JobFn job = [](JobContext &ctx) {
        if (ctx.spec.name == "J1" && ctx.attempt < 2)
            ctx.host.wait(2'000'000);
        JobOutcome outcome;
        outcome.ok = true;
        Json verdict = Json::object();
        verdict["attempt"] = Json(ctx.attempt);
        outcome.verdict = std::move(verdict);
        return outcome;
    };

    const CampaignRunner runner(cfg);
    const CampaignResult first = runner.run(specs, job);
    EXPECT_EQ(first.quarantinedJobs, 1u);
    EXPECT_FALSE(first.allOk());
    ASSERT_EQ(first.modules.size(), 2u);
    EXPECT_TRUE(first.modules[1].quarantined);
    EXPECT_EQ(first.modules[1].attempts, 2);

    cfg.resume = true;
    const CampaignRunner resumer(cfg);
    const CampaignResult second = resumer.run(specs, job);
    // The quarantined job was NOT treated as complete: it re-ran, with
    // the ladder continued (attempts 2..) and fresh salts, and now
    // succeeds at effective attempt 2.
    EXPECT_EQ(second.journaledJobs, 1u) << "only the ok job restores";
    EXPECT_EQ(second.scheduledJobs, 1u);
    EXPECT_TRUE(second.allOk());
    EXPECT_EQ(second.modules[1].attempts, 3);
    EXPECT_FALSE(second.modules[1].quarantined);
    EXPECT_EQ(second.modules[1].verdict.find("attempt")->asInt(), 2);
    removeFile(path);
}

TEST(Cancellation, StopFlagMakesCampaignResumable)
{
    const std::string path = scratchPath("cancel");
    removeFile(path);
    resetStopFlag();
    const std::vector<ModuleSpec> specs = tinySpecs();
    CampaignConfig cfg = journalConfig(path);
    cfg.journalFsync = false;
    cfg.stopFlag = stopFlagPtr();

    // Request the stop from inside job 1: jobs 2 and 3 are never
    // started, job 1 itself still completes (the stop lands between
    // its commands only on the *next* job's poll in the serial path —
    // the job body here finishes without issuing further commands).
    std::atomic<int> executions{0};
    JobFn inner = syntheticJob();
    const JobFn job = [&](JobContext &ctx) {
        executions.fetch_add(1, std::memory_order_relaxed);
        // Run the body first: the stop must land *after* this job's
        // host commands, or the job itself would be abandoned at the
        // host poll point and stay pending.
        JobOutcome outcome = inner(ctx);
        if (ctx.index == 1)
            requestStop();
        return outcome;
    };

    const CampaignRunner runner(cfg);
    const CampaignResult interrupted = runner.run(specs, job);
    EXPECT_TRUE(interrupted.interrupted);
    EXPECT_EQ(interrupted.pendingJobs, 2u);
    EXPECT_FALSE(interrupted.allOk());
    EXPECT_EQ(executions.load(), 2);

    // The report of the interrupted run says so, resumably.
    ExperimentReport partial("cancel_test");
    interrupted.fillReport(partial);
    ASSERT_NE(partial.json().find("results"), nullptr);
    const Json *flag =
        partial.json().find("results")->find("interrupted");
    ASSERT_NE(flag, nullptr);
    EXPECT_TRUE(flag->asBool());

    // Resume after clearing the stop: finishes the pending two jobs
    // and matches a clean uninterrupted run byte-for-byte.
    resetStopFlag();
    CampaignConfig resume_cfg = cfg;
    resume_cfg.resume = true;
    const CampaignRunner resumer(resume_cfg);
    const CampaignResult resumed = resumer.run(specs, job);
    EXPECT_EQ(resumed.journaledJobs, 2u);
    EXPECT_TRUE(resumed.allOk());

    removeFile(path);
    CampaignConfig clean_cfg = journalConfig("");
    clean_cfg.journalFsync = false;
    const CampaignRunner clean_runner(clean_cfg);
    const CampaignResult clean = clean_runner.run(specs, inner);
    EXPECT_EQ(resumed.verdicts().dump(), clean.verdicts().dump());
    EXPECT_EQ(deterministicMetrics(resumed), deterministicMetrics(clean));
    resetStopFlag();
}

TEST(Cancellation, SignalHandlerSetsTheStopFlag)
{
    resetStopFlag();
    ASSERT_TRUE(installStopSignalHandlers());
    EXPECT_FALSE(stopRequested());
    std::raise(SIGTERM);
    EXPECT_TRUE(stopRequested());
    resetStopFlag();
}

TEST(Cancellation, HostThrowsStopRequestedAtPollPoint)
{
    std::atomic<bool> stop{false};
    ModuleSpec spec = tinySpecs(1)[0];
    DramModule module(spec, 2021);
    SoftMcHost host(module);
    host.attachStopFlag(&stop);
    host.writeRow(0, 1, DataPattern::allOnes()); // flag clear: fine
    stop.store(true);
    EXPECT_THROW(host.readRow(0, 1), StopRequested);
}

} // namespace
} // namespace utrr
