#include <gtest/gtest.h>

#include "core/row_scout.hh"
#include "dram/module.hh"
#include "softmc/host.hh"

namespace utrr
{
namespace
{

ModuleSpec
smallSpec()
{
    ModuleSpec spec = *findModuleSpec("A5");
    spec.trr = TrrVersion::kNone; // scouting needs no TRR
    spec.rowsPerBank = 4 * 1024;
    spec.banks = 1;
    spec.remapsPerBank = 0;
    spec.scramble = RowScramble::kSequential;
    return spec;
}

struct ScoutFixture : public ::testing::Test
{
    ScoutFixture() : module(smallSpec(), 5), host(module) {}

    RowScoutConfig
    config(const char *layout, int groups)
    {
        RowScoutConfig cfg;
        cfg.rowEnd = 2'048;
        cfg.layout = RowGroupLayout::parse(layout);
        cfg.groupCount = groups;
        cfg.consistencyChecks = 15;
        return cfg;
    }

    DramModule module;
    SoftMcHost host;
};

TEST_F(ScoutFixture, FindsSingleRowGroups)
{
    RowScout scout(host,
                   DiscoveredMapping::identity(module.spec().rowsPerBank),
                   config("R", 3));
    const auto groups = scout.scout();
    ASSERT_EQ(groups.size(), 3u);
    for (const RowGroup &group : groups) {
        EXPECT_EQ(group.rows.size(), 1u);
        EXPECT_GT(group.retention, 0);
    }
}

TEST_F(ScoutFixture, FindsRRGroupsWithCorrectSpacing)
{
    RowScout scout(host,
                   DiscoveredMapping::identity(module.spec().rowsPerBank),
                   config("R-R", 4));
    const auto groups = scout.scout();
    ASSERT_EQ(groups.size(), 4u);
    for (const RowGroup &group : groups) {
        ASSERT_EQ(group.rows.size(), 2u);
        EXPECT_EQ(group.rows[1].physRow - group.rows[0].physRow, 2);
        EXPECT_EQ(group.gapPhysRows().front(),
                  group.rows[0].physRow + 1);
    }
}

TEST_F(ScoutFixture, GroupsShareOneRetentionTime)
{
    // Fig. 6: all groups must share the final escalated T.
    RowScout scout(host,
                   DiscoveredMapping::identity(module.spec().rowsPerBank),
                   config("R-R", 5));
    const auto groups = scout.scout();
    ASSERT_GE(groups.size(), 2u);
    for (const RowGroup &group : groups)
        EXPECT_EQ(group.retention, groups.front().retention);
}

TEST_F(ScoutFixture, ProfiledRowsHoldHalfTAndFailAtT)
{
    // The side-channel contract: rows survive T/2, fail after T.
    RowScout scout(host,
                   DiscoveredMapping::identity(module.spec().rowsPerBank),
                   config("R-R", 2));
    const auto groups = scout.scout();
    ASSERT_FALSE(groups.empty());
    for (const RowGroup &group : groups) {
        for (const ProfiledRow &row : group.rows) {
            host.writeRow(row.bank, row.logicalRow,
                          DataPattern::allOnes());
            host.wait(group.retention / 2);
            EXPECT_EQ(host.readRow(row.bank, row.logicalRow)
                          .countFlipsVs(DataPattern::allOnes(),
                                        row.logicalRow),
                      0);
            host.writeRow(row.bank, row.logicalRow,
                          DataPattern::allOnes());
            host.wait(group.retention + group.retention / 100);
            EXPECT_GT(host.readRow(row.bank, row.logicalRow)
                          .countFlipsVs(DataPattern::allOnes(),
                                        row.logicalRow),
                      0);
        }
    }
}

TEST_F(ScoutFixture, GroupsRespectSeparation)
{
    RowScoutConfig cfg = config("R-R", 4);
    cfg.groupSeparation = 32;
    RowScout scout(
        host, DiscoveredMapping::identity(module.spec().rowsPerBank),
        cfg);
    const auto groups = scout.scout();
    for (std::size_t i = 0; i < groups.size(); ++i) {
        for (std::size_t j = i + 1; j < groups.size(); ++j) {
            EXPECT_GE(std::abs(groups[i].basePhysRow -
                               groups[j].basePhysRow),
                      32);
        }
    }
}

TEST_F(ScoutFixture, ValidationRejectsVrtRows)
{
    // Directly exercise the consistency filter: find a VRT row and
    // check that validateRetention rejects it at its apparent T.
    RowScout scout(host,
                   DiscoveredMapping::identity(module.spec().rowsPerBank),
                   config("R", 1));
    const auto &gen = module.physics();
    int vrt_rejected = 0;
    int vrt_seen = 0;
    for (Row r = 0; r < 2'048 && vrt_seen < 5; ++r) {
        const RowPhysics phys = gen.generateRetention(0, r);
        bool vrt = false;
        for (const WeakCell &cell : phys.weakCells)
            vrt = vrt || cell.vrt;
        if (!vrt || phys.minRetention() > msToNs(1'000))
            continue;
        const Time t = phys.minRetention() + msToNs(40);
        // Only rows whose *observable* failure depends on the VRT cell
        // are inconsistent; a second weak cell below t makes the row
        // legitimately consistent despite the VRT cell.
        if (phys.weakCells.size() > 1 &&
            phys.weakCells[1].retention <= t)
            continue;
        ++vrt_seen;
        if (!scout.validateRetention(r, t, 250))
            ++vrt_rejected;
    }
    ASSERT_GT(vrt_seen, 0);
    EXPECT_EQ(vrt_rejected, vrt_seen);
}

TEST_F(ScoutFixture, ScanFindsDecayedRows)
{
    RowScout scout(host,
                   DiscoveredMapping::identity(module.spec().rowsPerBank),
                   config("R", 1));
    const auto failing = scout.scanFailingRows(msToNs(2'600));
    // All weak rows (retention <= 2.5 s) fail after 2.6 s: roughly
    // half the scanned range.
    EXPECT_GT(failing.size(), 700u);
    EXPECT_LT(failing.size(), 1'600u);
}

TEST_F(ScoutFixture, ScrambledMappingYieldsPhysicalSpacing)
{
    ModuleSpec spec = smallSpec();
    spec.scramble = RowScramble::kSwapHalfPairs;
    DramModule scrambled(spec, 6);
    SoftMcHost scrambled_host(scrambled);
    RowScout scout(
        scrambled_host,
        DiscoveredMapping(RowScramble::kSwapHalfPairs,
                          spec.rowsPerBank),
        config("R-R", 2));
    const auto groups = scout.scout();
    ASSERT_FALSE(groups.empty());
    for (const RowGroup &group : groups) {
        // Physical spacing of 2 regardless of the logical addresses.
        EXPECT_EQ(group.rows[1].physRow - group.rows[0].physRow, 2);
        // And the logical rows really map there.
        for (const ProfiledRow &row : group.rows) {
            EXPECT_EQ(applyScramble(RowScramble::kSwapHalfPairs,
                                    row.logicalRow),
                      row.physRow);
        }
    }
}

} // namespace
} // namespace utrr
