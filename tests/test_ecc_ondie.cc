#include <gtest/gtest.h>

#include "ecc/ecc_analysis.hh"
#include "ecc/secded.hh"

namespace utrr
{
namespace
{

TEST(OnDieSec, CleanRoundTrip)
{
    const auto word = OnDieSec::encode(0x0123456789abcdefULL);
    EXPECT_EQ(word.check & 0x80, 0); // no overall parity bit
    const auto result = OnDieSec::decode(word);
    EXPECT_EQ(result.status, OnDieSec::Status::kClean);
    EXPECT_EQ(result.codeword.data, 0x0123456789abcdefULL);
}

/** Property: every single data-bit error is corrected. */
class OnDieSingleError : public ::testing::TestWithParam<int>
{
};

TEST_P(OnDieSingleError, Corrected)
{
    const std::uint64_t data = 0x5a5a1234beefcafeULL;
    const auto original = OnDieSec::encode(data);
    const auto corrupted = Secded::flipBit(original, GetParam());
    const auto result = OnDieSec::decode(corrupted);
    EXPECT_EQ(result.status, OnDieSec::Status::kCorrected);
    EXPECT_EQ(result.codeword.data, data);
}

INSTANTIATE_TEST_SUITE_P(DataBits, OnDieSingleError,
                         ::testing::Range(0, 64));

TEST(OnDieSec, DoubleErrorsNeverDetectedReliably)
{
    // Without the overall parity bit, a double error aliases to a
    // single-bit syndrome most of the time and the decoder happily
    // "corrects" to wrong data — silent corruption.
    const std::uint64_t data = 0;
    const auto original = OnDieSec::encode(data);
    int silent = 0;
    int total = 0;
    for (int i = 0; i < 64; i += 3) {
        for (int j = i + 1; j < 64; j += 5) {
            const auto corrupted =
                Secded::flipBit(Secded::flipBit(original, i), j);
            const auto result = OnDieSec::decode(corrupted);
            ++total;
            if (result.status == OnDieSec::Status::kCorrected &&
                result.codeword.data != data) {
                ++silent;
            }
        }
    }
    EXPECT_GT(total, 100);
    // The overwhelming majority of double errors silently corrupt.
    EXPECT_GT(silent, total * 3 / 5);
}

TEST(OnDieSec, WeakerThanSecdedOnDoubles)
{
    // The same double-bit pattern: SECDED detects, on-die SEC corrupts
    // or mis-handles.
    EXPECT_EQ(evaluateSecded({3, 40}), EccOutcome::kDetected);
    const EccOutcome on_die = evaluateOnDieSec({3, 40});
    EXPECT_NE(on_die, EccOutcome::kCorrected);
    EXPECT_NE(on_die, EccOutcome::kClean);
}

TEST(OnDieSec, AnalysisOutcomes)
{
    EXPECT_EQ(evaluateOnDieSec({}), EccOutcome::kClean);
    EXPECT_EQ(evaluateOnDieSec({17}), EccOutcome::kCorrected);
}

TEST(OnDieSec, StudyIncludesOnDieTally)
{
    Histogram hist;
    hist.add(1, 50);
    hist.add(2, 50);
    const EccStudy study = studyWordFlipHistogram(hist, {});
    EXPECT_EQ(study.onDieSec.total(), 100u);
    EXPECT_EQ(study.onDieSec.of(EccOutcome::kCorrected), 50u);
    // Double-flip words: SECDED detects them all, on-die SEC corrupts
    // most of them silently.
    EXPECT_EQ(study.secded.of(EccOutcome::kDetected), 50u);
    EXPECT_GT(study.onDieSec.silentCorruption(), 25u);
}

} // namespace
} // namespace utrr
