#include <gtest/gtest.h>

#include <algorithm>

#include "trr/vendor_a.hh"

namespace utrr
{
namespace
{

std::vector<TrrRefreshAction>
advanceToTrrRef(VendorATrr &trr, int period = 9)
{
    // Issue REFs until the TRR-capable one; return its actions.
    for (int i = 0; i < period - 1; ++i) {
        const auto actions = trr.onRefresh();
        EXPECT_TRUE(actions.empty());
    }
    return trr.onRefresh();
}

TEST(VendorATrr, OnlyEveryNinthRefIsTrrCapable)
{
    VendorATrr trr(1);
    trr.onActivate(0, 100);
    int trr_refs = 0;
    for (int ref = 1; ref <= 90; ++ref) {
        const auto actions = trr.onRefresh();
        if (!actions.empty()) {
            ++trr_refs;
            EXPECT_EQ(ref % 9, 0) << "TRR refresh at REF " << ref;
        }
    }
    EXPECT_GE(trr_refs, 5);
}

TEST(VendorATrr, CountsActivationsPerRow)
{
    VendorATrr trr(1);
    for (int i = 0; i < 5; ++i)
        trr.onActivate(0, 100);
    trr.onActivate(0, 200);
    const auto table = trr.tableOf(0);
    ASSERT_EQ(table.size(), 2u);
    EXPECT_EQ(table[0].first, 100);
    EXPECT_EQ(table[0].second, 5u);
    EXPECT_EQ(table[1].second, 1u);
}

TEST(VendorATrr, TrefADetectsHighestCounter)
{
    VendorATrr trr(1);
    for (int i = 0; i < 10; ++i)
        trr.onActivate(0, 100);
    for (int i = 0; i < 50; ++i)
        trr.onActivate(0, 200);
    const auto actions = advanceToTrrRef(trr);
    ASSERT_EQ(actions.size(), 1u);
    EXPECT_EQ(actions[0].aggressorPhysRow, 200);
}

TEST(VendorATrr, DetectionResetsCounter)
{
    // Obs. A6: after detection the counter restarts from zero, so the
    // other aggressor wins the next TREF even if hammered less since.
    VendorATrr trr(1);
    for (int i = 0; i < 50; ++i)
        trr.onActivate(0, 200);
    for (int i = 0; i < 10; ++i)
        trr.onActivate(0, 100);
    auto actions = advanceToTrrRef(trr); // TREF_a: row 200, reset
    ASSERT_EQ(actions[0].aggressorPhysRow, 200);
    const auto table = trr.tableOf(0);
    const auto it = std::find_if(table.begin(), table.end(),
                                 [](const auto &entry) {
                                     return entry.first == 200;
                                 });
    ASSERT_NE(it, table.end());
    EXPECT_EQ(it->second, 0u);
}

TEST(VendorATrr, TableCapacity16)
{
    // Obs. A4: at most 16 rows tracked per bank.
    VendorATrr trr(1);
    for (Row r = 0; r < 40; ++r)
        trr.onActivate(0, r);
    EXPECT_EQ(trr.tableOf(0).size(), 16u);
}

TEST(VendorATrr, EvictsMinimumCounter)
{
    // Obs. A5: inserting into a full table evicts the smallest counter.
    VendorATrr trr(1);
    for (Row r = 0; r < 16; ++r) {
        for (int i = 0; i < 10; ++i)
            trr.onActivate(0, r);
    }
    trr.onActivate(0, 5); // row 5 now has 11
    for (int i = 0; i < 3; ++i)
        trr.onActivate(0, 100); // must evict one 10-count row
    const auto table = trr.tableOf(0);
    bool has100 = false;
    for (const auto &[row, count] : table)
        has100 = has100 || row == 100;
    EXPECT_TRUE(has100);
    EXPECT_EQ(table.size(), 16u);
}

TEST(VendorATrr, TrefBTraversesTable)
{
    // Obs. A3/A7: TREF_b walks the table and re-detects entries whose
    // counters are zero, indefinitely.
    VendorATrr trr(1);
    trr.onActivate(0, 100);
    trr.onActivate(0, 200);

    std::vector<Row> detected;
    for (int ref = 0; ref < 9 * 8; ++ref) {
        for (const auto &action : trr.onRefresh())
            detected.push_back(action.aggressorPhysRow);
    }
    // Both rows keep being detected even though activation stopped.
    EXPECT_GE(std::count(detected.begin(), detected.end(), 100), 2);
    EXPECT_GE(std::count(detected.begin(), detected.end(), 200), 2);
}

TEST(VendorATrr, PerBankTables)
{
    VendorATrr trr(2);
    for (int i = 0; i < 10; ++i) {
        trr.onActivate(0, 100);
        trr.onActivate(1, 900);
    }
    const auto actions = advanceToTrrRef(trr);
    ASSERT_EQ(actions.size(), 2u);
    EXPECT_EQ(actions[0].bank, 0);
    EXPECT_EQ(actions[0].aggressorPhysRow, 100);
    EXPECT_EQ(actions[1].bank, 1);
    EXPECT_EQ(actions[1].aggressorPhysRow, 900);
}

TEST(VendorATrr, NoDetectionWithEmptyTable)
{
    VendorATrr trr(1);
    for (int ref = 0; ref < 36; ++ref)
        EXPECT_TRUE(trr.onRefresh().empty());
}

TEST(VendorATrr, TrefASkipsAllZeroCounters)
{
    // After the only entry is detected (count -> 0) and never
    // re-hammered, TREF_a has nothing to detect; only TREF_b keeps
    // cycling the entry.
    VendorATrr trr(1);
    trr.onActivate(0, 100);
    int detections = 0;
    for (int ref = 0; ref < 18 * 4; ++ref)
        detections += static_cast<int>(trr.onRefresh().size());
    // TREF_b fires every 18 REFs on the single entry; TREF_a only the
    // first time (counter 1), then the counter stays zero.
    EXPECT_GE(detections, 4);
    EXPECT_LE(detections, 6);
}

TEST(VendorATrr, ResetClearsState)
{
    VendorATrr trr(1);
    for (int i = 0; i < 100; ++i)
        trr.onActivate(0, 50);
    trr.reset();
    EXPECT_TRUE(trr.tableOf(0).empty());
    // REF counter restarts: the 9th REF after reset is TRR-capable.
    trr.onActivate(0, 60);
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(trr.onRefresh().empty());
    EXPECT_FALSE(trr.onRefresh().empty());
}

} // namespace
} // namespace utrr
