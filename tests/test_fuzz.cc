/**
 * @file
 * Differential fuzzing harness tests: generator validity and
 * determinism, assembler round-trips of generated programs,
 * oracle-clean sweeps across vendors, minimizer properties,
 * serial-vs-parallel campaign equivalence, the compiled/interpreted
 * tier-equivalence property at random snapshot boundaries, and the
 * mutation sanity checks (the oracle suite must catch the
 * compile-time-flagged off-by-one refresh and hammer-fusion bugs
 * within a bounded number of programs).
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "check/fuzz_campaign.hh"
#include "common/rng.hh"
#include "check/fuzzer.hh"
#include "check/minimizer.hh"
#include "check/oracles.hh"
#include "core/sim_backend.hh"
#include "dram/module.hh"
#include "dram/module_spec.hh"
#include "softmc/assembler.hh"
#include "softmc/host.hh"

namespace utrr
{
namespace
{

std::string
instrDump(const Program &program)
{
    std::string out;
    for (const Instr &instr : program.instructions())
        out += instr.toString() + "\n";
    return out;
}

TEST(Fuzzer, GeneratedProgramsAreProtocolValid)
{
    // The generator must never need the repair pass: every program is
    // statically valid against the bank open/close protocol.
    const ModuleSpec spec = *findModuleSpec("A0");
    const ProgramFuzzer fuzzer(spec);
    for (std::uint64_t i = 0; i < 200; ++i) {
        const Program program = fuzzer.generate(42, i);
        EXPECT_GE(program.size(), 4U);
        const std::string error = validateProgram(spec, program);
        ASSERT_TRUE(error.empty()) << "program " << i << ": " << error;
    }
}

TEST(Fuzzer, SameSeedSameProgramDifferentSeedDifferent)
{
    const ModuleSpec spec = *findModuleSpec("B0");
    const ProgramFuzzer fuzzer(spec);
    const Program a = fuzzer.generate(1, 7);
    const Program b = fuzzer.generate(1, 7);
    ASSERT_EQ(instrDump(a), instrDump(b));

    // Different index or seed must decorrelate the stream.
    EXPECT_NE(instrDump(a), instrDump(fuzzer.generate(1, 8)));
    EXPECT_NE(instrDump(a), instrDump(fuzzer.generate(2, 7)));
}

TEST(Fuzzer, GeneratedProgramsSurviveAssemblerRoundTrip)
{
    // Corpus entries are stored as assembler text, so disassemble ->
    // assemble must be lossless for anything the generator emits
    // (including random:<seed> data patterns and WRWORD).
    const ModuleSpec spec = *findModuleSpec("C0");
    const ProgramFuzzer fuzzer(spec);
    for (std::uint64_t i = 0; i < 25; ++i) {
        const Program program = fuzzer.generate(3, i);
        const std::string text = disassembleProgram(program);
        const AssembleResult back = assembleProgram(text);
        ASSERT_TRUE(back.ok()) << back.error;
        ASSERT_EQ(instrDump(program), instrDump(back.program))
            << "program " << i;
    }
}

TEST(Fuzzer, RepairProducesValidPrograms)
{
    // repairProgram is the minimizer's protocol-repair step: dropping
    // arbitrary instruction subsets then repairing must always yield a
    // valid program.
    const ModuleSpec spec = *findModuleSpec("A0");
    const ProgramFuzzer fuzzer(spec);
    Rng rng(99);
    for (std::uint64_t i = 0; i < 40; ++i) {
        const Program program = fuzzer.generate(11, i);
        Program mangled;
        for (const Instr &instr : program.instructions())
            if (rng.chance(0.6))
                mangled.push(instr);
        const Program repaired = repairProgram(spec, mangled);
        const std::string error = validateProgram(spec, repaired);
        ASSERT_TRUE(error.empty()) << "program " << i << ": " << error;
    }
}

TEST(Oracles, CleanSweepAcrossVendors)
{
    // The core zero-violation contract on a clean tree, over one module
    // of each vendor (distinct TRR samplers).
    for (const char *name : {"A0", "B0", "C0"}) {
        const ModuleSpec spec = *findModuleSpec(name);
        FuzzCampaignOptions options;
        options.count = 8;
        options.fuzzSeed = 2024;
        const FuzzCampaignResult result = runFuzzCampaign(spec, options);
        EXPECT_TRUE(result.clean())
            << name << ": " << result.violating << " violating, first: "
            << (result.findings.empty() ? "?"
                                        : result.findings[0].detail);
    }
}

TEST(Oracles, ReportsHashesAndReads)
{
    const ModuleSpec spec = *findModuleSpec("A0");
    const ProgramFuzzer fuzzer(spec);
    const Program program = fuzzer.generate(5, 0);
    const OracleReport report = runOracleSuite(spec, program);
    EXPECT_TRUE(report.clean()) << report.summary();
    EXPECT_GT(report.reads, 0U);
    EXPECT_NE(report.traceHash, 0U);
    EXPECT_NE(report.readHash, 0U);
    EXPECT_GT(report.endTime, 0);

    // Same program, same seed: the report is reproducible.
    const OracleReport again = runOracleSuite(spec, program);
    EXPECT_EQ(report.traceHash, again.traceHash);
    EXPECT_EQ(report.readHash, again.readHash);
    EXPECT_EQ(report.endTime, again.endTime);
}

/**
 * Fixed-seed fuzz round for the restoreCharge fast path: the row's
 * minimum-retention cache must be recomputed on every scaleRetention /
 * scaleAllRetention call, so reaching the same effective scale through
 * different step sequences (0.5 vs 0.25 * 2.0 — exact in binary
 * floating point) must be bit-identical, including for rows that are
 * already mid-decay when the scale changes and for rows materialized
 * after it. A stale cache would either skip a due commit (flips
 * missing) or take the slow path with a mismatched VRT draw count.
 */
TEST(Fuzzer, RetentionScaleInvalidationIsPathIndependent)
{
    const ModuleSpec spec = *findModuleSpec("A0");
    const ProgramFuzzer fuzzer(spec);

    const auto run = [&](std::uint64_t seed,
                         const std::vector<double> &steps,
                         const Program &program) {
        DramModule module(spec, seed);
        SoftMcHost host(module);
        // Materialize rows and let them run mid-decay before scaling.
        for (Row row = 0; row < 32; ++row)
            host.writeRow(0, row, DataPattern::checkerboard());
        host.wait(msToNs(150));
        for (double step : steps)
            module.scaleAllRetention(step);
        ExecResult result = host.execute(program);
        for (Row row = 0; row < 32; ++row)
            result.reads.push_back(
                ReadRecord{0, row, host.now(), host.readRow(0, row)});
        return result;
    };

    for (std::uint64_t i = 0; i < 6; ++i) {
        SCOPED_TRACE("program " + std::to_string(i));
        const Program program = fuzzer.generate(4242, i);
        const ExecResult one = run(900 + i, {0.5}, program);
        const ExecResult two = run(900 + i, {0.25, 2.0}, program);

        ASSERT_EQ(one.reads.size(), two.reads.size());
        ASSERT_EQ(one.endTime, two.endTime);
        for (std::size_t r = 0; r < one.reads.size(); ++r) {
            SCOPED_TRACE("read " + std::to_string(r));
            const RowReadout &a = one.reads[r].readout;
            const RowReadout &b = two.reads[r].readout;
            ASSERT_EQ(one.reads[r].row, two.reads[r].row);
            ASSERT_EQ(a.words(), b.words());
            for (int w = 0; w < a.words(); ++w)
                ASSERT_EQ(a.word(w), b.word(w)) << "word " << w;
        }
    }
}

/**
 * Compiled/interpreted equivalence property (DESIGN.md §17): any fuzz
 * program, split at a random instruction boundary with a snapshot in
 * between, replays bit-identically whichever execution tier runs each
 * half — including restoring a snapshot taken under one tier and
 * resuming the suffix under the other. This pins that snapshots are
 * tier-agnostic and that fusion never leaks state across execute()
 * boundaries.
 */
TEST(Oracles, ExecutionTiersEquivalentAtRandomBoundaries)
{
    const ModuleSpec spec = *findModuleSpec("C0");
    const ProgramFuzzer fuzzer(spec);
    Rng rng(777);
    for (std::uint64_t i = 0; i < 10; ++i) {
        SCOPED_TRACE("program " + std::to_string(i));
        const Program program = fuzzer.generate(31337, i);
        const auto &instrs = program.instructions();
        const std::size_t cut = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(instrs.size())));
        Program prefix;
        Program suffix;
        for (std::size_t k = 0; k < instrs.size(); ++k)
            (k < cut ? prefix : suffix).push(instrs[k]);

        SimBackend compiled(spec, 2021);
        SimBackend interp(spec, 2021);
        compiled.setExecMode(ExecMode::kCompiled);
        interp.setExecMode(ExecMode::kInterpreted);

        const BackendResult pa = compiled.execute(prefix);
        const BackendResult pb = interp.execute(prefix);
        EXPECT_EQ(hashBackendReads(pa), hashBackendReads(pb));
        ASSERT_EQ(pa.endTime, pb.endTime);

        const std::uint64_t ta = compiled.snapshot();
        const std::uint64_t tb = interp.snapshot();
        const BackendResult sa = compiled.execute(suffix);
        const BackendResult sb = interp.execute(suffix);
        EXPECT_EQ(hashBackendReads(sa), hashBackendReads(sb));
        ASSERT_EQ(sa.endTime, sb.endTime);

        // Cross over: resume each snapshot under the opposite tier.
        compiled.restore(ta);
        interp.restore(tb);
        compiled.setExecMode(ExecMode::kInterpreted);
        interp.setExecMode(ExecMode::kCompiled);
        const BackendResult ra = compiled.execute(suffix);
        const BackendResult rb = interp.execute(suffix);
        EXPECT_EQ(hashBackendReads(ra), hashBackendReads(sa));
        EXPECT_EQ(hashBackendReads(rb), hashBackendReads(sb));
        EXPECT_EQ(ra.endTime, sa.endTime);
        EXPECT_EQ(rb.endTime, sb.endTime);
    }
}

TEST(Campaign, VerdictsIdenticalForAnyJobCount)
{
    // The campaign's verdict dump is the byte-equality surface: jobs=1
    // and jobs=4 must produce identical bytes.
    const ModuleSpec spec = *findModuleSpec("B0");
    FuzzCampaignOptions options;
    options.count = 10;
    options.fuzzSeed = 77;

    options.jobs = 1;
    const FuzzCampaignResult serial = runFuzzCampaign(spec, options);
    options.jobs = 4;
    const FuzzCampaignResult parallel = runFuzzCampaign(spec, options);

    EXPECT_TRUE(serial.clean());
    EXPECT_EQ(serial.campaign.verdicts().dump(2),
              parallel.campaign.verdicts().dump(2));
}

TEST(Minimizer, PreservesFailureAndShrinks)
{
    // Synthetic predicate: "program still contains a WAIT longer than
    // 1 ms". ddmin must shrink a fuzzer program to exactly one
    // instruction satisfying it, through protocol repair.
    const ModuleSpec spec = *findModuleSpec("A0");
    FuzzConfig config;
    config.longWaitChance = 0.5;
    const ProgramFuzzer fuzzer(spec, config);

    const auto has_long_wait = [](const Program &program) {
        for (const Instr &instr : program.instructions())
            if (instr.op == Op::kWait && instr.waitNs > msToNs(1))
                return true;
        return false;
    };

    int shrunk = 0;
    for (std::uint64_t i = 0; i < 20 && shrunk < 3; ++i) {
        const Program program = fuzzer.generate(8, i);
        if (!has_long_wait(program))
            continue;
        ++shrunk;
        const MinimizeResult result =
            minimizeProgram(spec, program, has_long_wait);
        EXPECT_TRUE(result.converged);
        EXPECT_TRUE(has_long_wait(result.program));
        EXPECT_LE(result.program.size(), 2U)
            << instrDump(result.program);
        EXPECT_TRUE(validateProgram(spec, result.program).empty());
    }
    ASSERT_EQ(shrunk, 3) << "fuzz config produced too few long waits";
}

TEST(Minimizer, ReturnsInputWhenPredicateNeverFails)
{
    const ModuleSpec spec = *findModuleSpec("A0");
    const ProgramFuzzer fuzzer(spec);
    const Program program = fuzzer.generate(1, 0);
    const MinimizeResult result = minimizeProgram(
        spec, program, [](const Program &) { return false; });
    EXPECT_EQ(instrDump(result.program), instrDump(program));
}

/**
 * Mutation sanity: with UTRR_MUTATION the refresh engine skips the
 * first row of every sweep chunk, and the oracle suite must notice
 * within a bounded fixed-seed sweep — crucially including the
 * black-box differential oracle (retention flips surviving in rows the
 * mutant failed to refresh), not just the white-box accounting one.
 * Without the mutation the identical sweep must be clean, proving the
 * detection is caused by the injected bug.
 */
TEST(MutationSanity, DifferentialOracleCatchesRefreshOffByOne)
{
    const ModuleSpec spec = *findModuleSpec("A0");
    FuzzCampaignOptions options;
    options.count = 20;
    options.fuzzSeed = 1;
    options.fuzz.longWaitChance = 1.0; // decay windows expose refresh
    options.minimize = false;          // bounded runtime
    options.maxFindings = 20;

    const FuzzCampaignResult result = runFuzzCampaign(spec, options);

#ifdef UTRR_MUTATION_REFRESH_OFF_BY_ONE
    ASSERT_FALSE(result.clean())
        << "oracle suite missed the injected refresh bug";
    // Collect every oracle that fired, not just each finding's front
    // violation: UTRR_MUTATION also plants the compiled-tier fusion bug,
    // which makes the (compiled) production run diverge from the
    // reference on nearly every program, so "differential" fronts the
    // findings and would crowd "accounting" out of a front-only view.
    std::set<std::string> oracles;
    for (const FuzzFinding &finding : result.findings)
        oracles.insert(finding.oracles.begin(), finding.oracles.end());
    EXPECT_TRUE(oracles.count("differential"))
        << "no black-box differential catch in " << result.violating
        << " violating programs";
    EXPECT_TRUE(oracles.count("accounting"));
#else
    EXPECT_TRUE(result.clean())
        << result.violating << " violating on a clean tree, first: "
        << (result.findings.empty() ? "?" : result.findings[0].detail);
#endif
}

/**
 * Mutation sanity for the compiled tier: UTRR_MUTATION additionally
 * plants an off-by-one in ProgramCompiler's hammer fusion (a batch of
 * N > 1 ACT+PRE cycles lowers to N-1). Both tiers share the refresh
 * mutation, so a compiled-vs-interpreted comparison cancels that bug
 * out — the execution oracle is what isolates the fusion one: the
 * interpreted rerun hammers one more time per batch, so end time,
 * command trace and ACT accounting all diverge. Without the mutation
 * the identical program must be clean across every oracle.
 */
TEST(MutationSanity, ExecutionOracleCatchesFusionOffByOne)
{
    const ModuleSpec spec = *findModuleSpec("A0");
    Program program;
    program.writeRow(0, 500, DataPattern::allOnes());
    program.writeRow(0, 499, DataPattern::allZeros());
    program.writeRow(0, 501, DataPattern::allZeros());
    program.hammer(0, 499, 8'000).hammer(0, 501, 8'000);
    program.ref(8).readRow(0, 500);

    const OracleReport report = runOracleSuite(spec, program);

#ifdef UTRR_MUTATION_FUSION_OFF_BY_ONE
    bool execution_caught = false;
    for (const OracleViolation &v : report.violations)
        execution_caught = execution_caught || v.oracle == "execution";
    EXPECT_TRUE(execution_caught)
        << "execution oracle missed the planted fusion bug: "
        << report.summary();
#else
    EXPECT_TRUE(report.clean()) << report.summary();
#endif
}

} // namespace
} // namespace utrr
