#include <gtest/gtest.h>

#include "core/row_group.hh"

namespace utrr
{
namespace
{

TEST(RowGroupLayout, ParseRR)
{
    const RowGroupLayout layout = RowGroupLayout::parse("R-R");
    EXPECT_EQ(layout.profiledOffsets(), (std::vector<int>{0, 2}));
    EXPECT_EQ(layout.gapOffsets(), (std::vector<int>{1}));
    EXPECT_EQ(layout.span(), 3);
    EXPECT_EQ(layout.profiledRows(), 2);
    EXPECT_EQ(layout.text(), "R-R");
}

TEST(RowGroupLayout, ParseWide)
{
    const RowGroupLayout layout = RowGroupLayout::parse("RRR-RRR");
    EXPECT_EQ(layout.profiledOffsets(),
              (std::vector<int>{0, 1, 2, 4, 5, 6}));
    EXPECT_EQ(layout.gapOffsets(), (std::vector<int>{3}));
    EXPECT_EQ(layout.span(), 7);
}

TEST(RowGroupLayout, ParseSingle)
{
    const RowGroupLayout layout = RowGroupLayout::parse("R");
    EXPECT_EQ(layout.profiledOffsets(), (std::vector<int>{0}));
    EXPECT_TRUE(layout.gapOffsets().empty());
    EXPECT_EQ(layout.span(), 1);
}

TEST(RowGroupLayout, ParseMultiGap)
{
    const RowGroupLayout layout = RowGroupLayout::parse("R--R");
    EXPECT_EQ(layout.profiledOffsets(), (std::vector<int>{0, 3}));
    EXPECT_EQ(layout.gapOffsets(), (std::vector<int>{1, 2}));
}

TEST(RowGroupLayout, LowercaseAccepted)
{
    const RowGroupLayout layout = RowGroupLayout::parse("r-r");
    EXPECT_EQ(layout.profiledRows(), 2);
}

TEST(RowGroupLayout, BadCharacterIsFatal)
{
    EXPECT_DEATH(RowGroupLayout::parse("R-X"), "bad layout character");
}

TEST(RowGroupLayout, EmptyIsFatal)
{
    EXPECT_DEATH(RowGroupLayout::parse(""), "");
}

/** Parameterized sweep over layouts: offsets partition the span. */
class LayoutProperty : public ::testing::TestWithParam<const char *>
{
};

TEST_P(LayoutProperty, OffsetsPartitionSpan)
{
    const RowGroupLayout layout = RowGroupLayout::parse(GetParam());
    std::vector<int> all = layout.profiledOffsets();
    for (int g : layout.gapOffsets())
        all.push_back(g);
    std::sort(all.begin(), all.end());
    ASSERT_EQ(static_cast<int>(all.size()), layout.span());
    for (int i = 0; i < layout.span(); ++i)
        EXPECT_EQ(all[static_cast<std::size_t>(i)], i);
}

INSTANTIATE_TEST_SUITE_P(Layouts, LayoutProperty,
                         ::testing::Values("R", "R-R", "RR", "RRR-RRR",
                                           "R--R", "-R-", "R-R-R",
                                           "RR--RR"));

TEST(RowGroup, GapPhysRows)
{
    RowGroup group;
    group.layout = RowGroupLayout::parse("R-R");
    group.basePhysRow = 100;
    EXPECT_EQ(group.gapPhysRows(), (std::vector<Row>{101}));

    group.layout = RowGroupLayout::parse("RRR-RRR");
    group.basePhysRow = 200;
    EXPECT_EQ(group.gapPhysRows(), (std::vector<Row>{203}));
}

} // namespace
} // namespace utrr
