#include <gtest/gtest.h>

#include "dram/module.hh"
#include "softmc/host.hh"

namespace utrr
{
namespace
{

ModuleSpec
smallSpec()
{
    ModuleSpec spec = *findModuleSpec("A5");
    spec.trr = TrrVersion::kNone;
    spec.rowsPerBank = 2'048;
    spec.banks = 2;
    spec.remapsPerBank = 0;
    spec.scramble = RowScramble::kSequential;
    return spec;
}

TEST(HostProtocol, ReadWithoutActDies)
{
    DramModule module(smallSpec(), 1);
    SoftMcHost host(module);
    EXPECT_DEATH(host.rd(0), "RD with no open row");
}

TEST(HostProtocol, WriteWithoutActDies)
{
    DramModule module(smallSpec(), 1);
    SoftMcHost host(module);
    EXPECT_DEATH(host.wr(0, DataPattern::allOnes()),
                 "WR with no open row");
}

TEST(HostProtocol, DoubleActDies)
{
    DramModule module(smallSpec(), 1);
    SoftMcHost host(module);
    host.act(0, 5);
    EXPECT_DEATH(host.act(0, 6), "still open");
}

TEST(HostProtocol, OutOfRangeRowDies)
{
    DramModule module(smallSpec(), 1);
    SoftMcHost host(module);
    EXPECT_DEATH(host.act(0, 1'000'000), "out of range");
    EXPECT_DEATH(host.act(0, -1), "out of range");
}

TEST(HostProtocol, OutOfRangeBankDies)
{
    DramModule module(smallSpec(), 1);
    SoftMcHost host(module);
    EXPECT_DEATH(host.act(7, 0), "bank");
}

TEST(HostProtocol, NegativeWaitDies)
{
    DramModule module(smallSpec(), 1);
    SoftMcHost host(module);
    EXPECT_DEATH(host.wait(-5), "negative");
}

TEST(HostProtocol, BanksAreIndependent)
{
    DramModule module(smallSpec(), 2);
    SoftMcHost host(module);
    host.act(0, 10);
    host.act(1, 20); // different bank: legal while bank 0 is open
    host.wr(0, DataPattern::allOnes());
    host.wr(1, DataPattern::allZeros());
    const RowReadout r0 = host.rd(0);
    const RowReadout r1 = host.rd(1);
    host.pre(0);
    host.pre(1);
    EXPECT_EQ(r0.countFlipsVs(DataPattern::allOnes(), 10), 0);
    EXPECT_EQ(r1.countFlipsVs(DataPattern::allZeros(), 20), 0);
}

TEST(HostProtocol, InterleavedCountMismatchDies)
{
    DramModule module(smallSpec(), 1);
    SoftMcHost host(module);
    EXPECT_DEATH(host.hammerInterleaved({{0, 1}}, {1, 2}),
                 "one count per aggressor");
}

TEST(HostProtocol, ClockMonotonicAcrossOperations)
{
    DramModule module(smallSpec(), 3);
    SoftMcHost host(module);
    Time last = host.now();
    auto advance = [&](auto &&op) {
        op();
        EXPECT_GE(host.now(), last);
        last = host.now();
    };
    advance([&] { host.writeRow(0, 4, DataPattern::allOnes()); });
    advance([&] { host.hammer(0, 100, 7); });
    advance([&] { host.ref(); });
    advance([&] { host.wait(123); });
    advance([&] { host.waitWithRefresh(50'000); });
    advance([&] { host.readRow(0, 4); });
}

TEST(HostProtocol, WrWordRoundTrip)
{
    DramModule module(smallSpec(), 4);
    SoftMcHost host(module);
    host.act(0, 9);
    host.wr(0, DataPattern::allZeros());
    host.wrWord(0, 3, 0xdeadbeefULL);
    const RowReadout readout = host.rd(0);
    host.pre(0);
    EXPECT_EQ(readout.word(3), 0xdeadbeefULL);
    EXPECT_EQ(readout.word(2), 0ULL);
}

} // namespace
} // namespace utrr
