#include <gtest/gtest.h>

#include "softmc/timing_checker.hh"

namespace utrr
{
namespace
{

Timing
defaultTiming()
{
    return Timing{};
}

TEST(TimingChecker, LegalSequenceIsClean)
{
    TimingChecker checker(defaultTiming(), 2);
    Time t = 0;
    checker.onAct(0, 10, t);
    t += 35; // tRAS
    checker.onPre(0, t);
    t += 15; // tRP
    checker.onAct(0, 11, t);
    t += 15; // tRCD
    checker.onRead(0, t);
    t += 20;
    checker.onPre(0, t);
    t += 15;
    checker.onRef(t);
    EXPECT_TRUE(checker.clean()) << checker.violations()[0].rule;
}

TEST(TimingChecker, ActToOpenBank)
{
    TimingChecker checker(defaultTiming(), 1);
    checker.onAct(0, 1, 0);
    checker.onAct(0, 2, 100);
    ASSERT_FALSE(checker.clean());
    EXPECT_EQ(checker.violations()[0].rule, "state");
}

TEST(TimingChecker, TrasViolation)
{
    TimingChecker checker(defaultTiming(), 1);
    checker.onAct(0, 1, 0);
    checker.onPre(0, 20); // < tRAS = 35
    ASSERT_FALSE(checker.clean());
    EXPECT_EQ(checker.violations()[0].rule, "tRAS");
}

TEST(TimingChecker, TrpViolation)
{
    TimingChecker checker(defaultTiming(), 1);
    checker.onAct(0, 1, 0);
    checker.onPre(0, 40);
    checker.onAct(0, 2, 45); // 5 ns < tRP = 15
    ASSERT_FALSE(checker.clean());
    EXPECT_EQ(checker.violations()[0].rule, "tRP");
}

TEST(TimingChecker, TrcdViolation)
{
    TimingChecker checker(defaultTiming(), 1);
    checker.onAct(0, 1, 0);
    checker.onRead(0, 5); // < tRCD = 15
    ASSERT_FALSE(checker.clean());
    EXPECT_EQ(checker.violations()[0].rule, "tRCD");
}

TEST(TimingChecker, ReadClosedBank)
{
    TimingChecker checker(defaultTiming(), 1);
    checker.onRead(0, 0);
    ASSERT_FALSE(checker.clean());
    EXPECT_EQ(checker.violations()[0].rule, "state");
}

TEST(TimingChecker, WriteClosedBank)
{
    TimingChecker checker(defaultTiming(), 1);
    checker.onWrite(0, 0);
    ASSERT_FALSE(checker.clean());
}

TEST(TimingChecker, FawViolation)
{
    Timing timing;
    timing.tFAW = 1'000; // make the window easy to hit
    TimingChecker checker(timing, 8);
    // 4 ACTs in different banks, then a 5th within the window.
    for (Bank b = 0; b < 4; ++b) {
        checker.onAct(b, 1, 10 * b);
        EXPECT_TRUE(checker.clean());
    }
    checker.onAct(4, 1, 50);
    ASSERT_FALSE(checker.clean());
    EXPECT_EQ(checker.violations()[0].rule, "tFAW");
}

TEST(TimingChecker, FawWindowSlides)
{
    Timing timing;
    timing.tFAW = 100;
    TimingChecker checker(timing, 8);
    for (Bank b = 0; b < 4; ++b)
        checker.onAct(b, 1, 20 * b); // 0, 20, 40, 60
    checker.onAct(4, 1, 110);        // first ACT left the window
    EXPECT_TRUE(checker.clean());
}

TEST(TimingChecker, RefWithOpenBank)
{
    TimingChecker checker(defaultTiming(), 2);
    checker.onAct(1, 5, 0);
    checker.onRef(100);
    ASSERT_FALSE(checker.clean());
    EXPECT_EQ(checker.violations()[0].rule, "state");
}

TEST(TimingChecker, ActDuringRefresh)
{
    TimingChecker checker(defaultTiming(), 1);
    checker.onRef(0);
    checker.onAct(0, 1, 100); // < tRFC = 350
    ASSERT_FALSE(checker.clean());
    EXPECT_EQ(checker.violations()[0].rule, "tRFC");
}

TEST(TimingChecker, ClearViolations)
{
    TimingChecker checker(defaultTiming(), 1);
    checker.onRead(0, 0);
    EXPECT_FALSE(checker.clean());
    checker.clearViolations();
    EXPECT_TRUE(checker.clean());
}

TEST(TimingChecker, HostCommandCostsAreLegal)
{
    // The SoftMC host's fixed per-command costs produce a legal
    // stream for the hammer/write/read composites.
    const Timing timing;
    TimingChecker checker(timing, 2);
    Time t = 0;
    for (int i = 0; i < 10; ++i) {
        checker.onAct(0, 7, t);
        t += timing.tRAS;
        checker.onPre(0, t);
        t += timing.tRP;
    }
    checker.onAct(0, 8, t);
    t += timing.tRCD;
    checker.onWrite(0, t);
    t += timing.tRAS - timing.tRCD;
    checker.onPre(0, t);
    EXPECT_TRUE(checker.clean());
}

} // namespace
} // namespace utrr
