/**
 * @file
 * Direct equivalence tests between the naive ReferenceModule
 * interpreter and the production DramModule + SoftMcHost pair.
 *
 * The reference model is the oracle of the differential fuzzer, so its
 * agreement with production is load-bearing: these tests pin exact
 * read-back, clock, and refresh/TRR-accounting equality on hand-built
 * programs that exercise each physics regime (plain retention decay,
 * VRT-heavy configurations, RowHammer disturbance through TRR) before
 * the fuzzer explores random interleavings of them.
 */

#include <gtest/gtest.h>

#include <string>

#include "check/reference_module.hh"
#include "dram/module.hh"
#include "dram/module_spec.hh"
#include "obs/metrics.hh"
#include "softmc/host.hh"

namespace utrr
{
namespace
{

/** Retention overrides that make decay and VRT dominate quickly. */
RetentionModelConfig
vrtHeavyRetention()
{
    RetentionModelConfig ret;
    ret.weakRowFraction = 1.0;
    ret.weakRetMedianMs = 150.0;
    ret.weakRetMinMs = 60.0;
    ret.weakRetMaxMs = 400.0;
    ret.vrtRowFraction = 0.8;
    ret.vrtDwellMs = 120.0;
    return ret;
}

/**
 * Execute @p program on both implementations and require bit-exact
 * reads, clocks, and refresh/TRR bookkeeping.
 */
void
expectEquivalent(const ModuleSpec &spec, const Program &program,
                 std::uint64_t seed,
                 const RetentionModelConfig *retention = nullptr)
{
    SCOPED_TRACE("module " + spec.name + " seed " +
                 std::to_string(seed));

    DramModule module(spec, seed, retention);
    SoftMcHost host(module);
    const ExecResult prod = host.execute(program);

    ReferenceModule ref(spec, seed, retention);
    const ReferenceResult shadow = ref.execute(program);

    ASSERT_EQ(prod.reads.size(), shadow.reads.size());
    for (std::size_t i = 0; i < prod.reads.size(); ++i) {
        SCOPED_TRACE("read " + std::to_string(i));
        const ReadRecord &got = prod.reads[i];
        const ReferenceRead &want = shadow.reads[i];
        EXPECT_EQ(got.bank, want.bank);
        EXPECT_EQ(got.row, want.row);
        EXPECT_EQ(got.when, want.when);
        ASSERT_EQ(static_cast<std::size_t>(got.readout.words()),
                  want.words.size());
        for (int w = 0; w < got.readout.words(); ++w)
            ASSERT_EQ(got.readout.word(w),
                      want.words[static_cast<std::size_t>(w)])
                << "word " << w;
    }

    EXPECT_EQ(host.now(), ref.now());
    EXPECT_EQ(prod.endTime, shadow.endTime);
    EXPECT_EQ(module.refCount(), ref.refCount());
    EXPECT_EQ(module.trrRefreshCount(), ref.trrVictimRefreshCount());
    for (Bank b = 0; b < spec.banks; ++b)
        EXPECT_EQ(module.bankAt(b).rowRefreshCount(),
                  ref.rowRefreshCount(b))
            << "bank " << static_cast<int>(b);
}

TEST(Reference, RetentionDecayMatchesAcrossVendors)
{
    // Long refresh-paused decay: weak cells flip in production and the
    // reference must predict the same bits from the same seed.
    for (const char *name : {"A0", "B0", "C0"}) {
        const ModuleSpec spec = *findModuleSpec(name);
        Program program;
        for (Row row = 100; row < 108; ++row)
            program.writeRow(0, row, DataPattern::allOnes());
        program.wait(msToNs(1'500));
        for (Row row = 100; row < 108; ++row)
            program.readRow(0, row);
        expectEquivalent(spec, program, 2021);
    }
}

TEST(Reference, VrtHeavyConfigMatches)
{
    // Nearly every row carries a VRT cell with a short dwell time, and
    // the read-back pattern depends on the per-row telegraph draws
    // lining up exactly (one draw per commit, dt accumulated since the
    // previous draw).
    const RetentionModelConfig ret = vrtHeavyRetention();
    const ModuleSpec spec = *findModuleSpec("A0");
    for (std::uint64_t seed : {7ULL, 99ULL}) {
        Program program;
        for (Row row = 40; row < 52; ++row)
            program.writeRow(1, row, DataPattern::colStripe());
        for (int burst = 0; burst < 4; ++burst) {
            program.wait(msToNs(260));
            for (Row row = 40; row < 52; ++row)
                program.readRow(1, row);
        }
        expectEquivalent(spec, program, seed, &ret);
    }
}

TEST(Reference, ShortRetentionOverridesMatch)
{
    // Aggressively short retention amplifies the charge/lastRestore
    // bookkeeping: any drift in restore times shows up as a different
    // flip set within one or two windows.
    RetentionModelConfig ret;
    ret.weakRowFraction = 1.0;
    ret.weakRetMedianMs = 80.0;
    ret.weakRetMinMs = 40.0;
    ret.weakRetMaxMs = 150.0;
    ret.vrtRowFraction = 0.0;

    const ModuleSpec spec = *findModuleSpec("B3");
    Program program;
    for (Row row = 10; row < 20; ++row)
        program.writeRow(0, row, DataPattern::checkerboard());
    program.wait(msToNs(120));
    for (Row row = 10; row < 20; ++row)
        program.readRow(0, row);
    // Re-write and decay again: writePattern must clear overrides and
    // flips identically on both sides.
    for (Row row = 10; row < 20; ++row)
        program.writeRow(0, row, DataPattern::allZeros());
    program.wait(msToNs(200));
    for (Row row = 10; row < 20; ++row)
        program.readRow(0, row);
    expectEquivalent(spec, program, 5);
}

TEST(Reference, HammerThroughTrrMatches)
{
    // Double-sided hammering at ~2x HC_first with refresh cycles in
    // between drives both the disturbance model and the TRR sampler;
    // equality covers victim selection, charge accumulation, and the
    // TRR victim-refresh accounting.
    for (const char *name : {"A1", "B0", "C4"}) {
        const ModuleSpec spec = *findModuleSpec(name);
        const Row victim = 2'000;
        Program program;
        program.writeRow(0, victim, DataPattern::allOnes());
        program.writeRow(0, victim - 1, DataPattern::allZeros());
        program.writeRow(0, victim + 1, DataPattern::allZeros());
        for (int round = 0; round < 3; ++round) {
            for (int i = 0; i < spec.hcFirst; ++i) {
                program.hammer(0, victim - 1, 1);
                program.hammer(0, victim + 1, 1);
            }
            program.ref(8);
        }
        program.readRow(0, victim);
        expectEquivalent(spec, program, 2021);
    }
}

TEST(Reference, WrWordAndRefreshSweepMatch)
{
    // Word-granular writes layered over a pattern, interleaved with
    // WAITREF windows long enough for several full refresh sweeps.
    const ModuleSpec spec = *findModuleSpec("C0");
    Program program;
    program.act(2, 300);
    program.wr(2, DataPattern::random(77));
    program.wrWord(2, 0, 0xdeadbeefULL);
    program.wrWord(2, 41, 0x0123456789abcdefULL);
    program.pre(2);
    program.waitWithRefresh(msToNs(200));
    program.act(2, 300);
    program.rd(2);
    program.wrWord(2, 41, 0);
    program.rd(2);
    program.pre(2);
    program.waitWithRefresh(msToNs(70));
    program.readRow(2, 300);
    expectEquivalent(spec, program, 13);
}

TEST(Reference, RefreshStormFastPathMatches)
{
    // Dense REF traffic with decay windows that straddle the weakest
    // cells' retention: production skips most per-row cell scans via
    // the cached minimum retention while the reference always walks
    // every cell, so any fast-path skip that misses a due commit (or
    // fails to advance lastRestore on a skipped scan) diverges here.
    RetentionModelConfig ret;
    ret.weakRowFraction = 1.0;
    ret.weakRetMedianMs = 140.0;
    ret.weakRetMinMs = 90.0;
    ret.weakRetMaxMs = 260.0;
    ret.vrtRowFraction = 0.0;

    const ModuleSpec spec = *findModuleSpec("A3");
    Program program;
    for (Row row = 0; row < 64; ++row)
        program.writeRow(0, row, DataPattern::allOnes());
    // Sub-threshold windows (all skips) punctuated by REF bursts, then
    // one window past every floor (slow-path commits).
    for (int round = 0; round < 3; ++round) {
        program.ref(32);
        program.wait(msToNs(60));
    }
    for (Row row = 0; row < 64; ++row)
        program.readRow(0, row);
    program.wait(msToNs(300));
    for (Row row = 0; row < 64; ++row)
        program.readRow(0, row);
    expectEquivalent(spec, program, 31);
}

TEST(Reference, VrtRowsAlwaysTakeTheSlowPathMatches)
{
    // Every row carries a VRT cell: the fast path must be disabled for
    // all of them, because each commit consumes one telegraph draw the
    // reference performs unconditionally. A skipped scan on a VRT row
    // would desynchronize the draw streams and show up within a couple
    // of windows.
    RetentionModelConfig ret = vrtHeavyRetention();
    ret.vrtRowFraction = 1.0;

    const ModuleSpec spec = *findModuleSpec("B0");
    Program program;
    for (Row row = 200; row < 216; ++row)
        program.writeRow(2, row, DataPattern::invCheckerboard());
    for (int burst = 0; burst < 5; ++burst) {
        program.ref(16);
        program.wait(msToNs(90));
        for (Row row = 200; row < 216; ++row)
            program.readRow(2, row);
    }
    expectEquivalent(spec, program, 17, &ret);
}

TEST(Reference, TrrEventAccountingMatchesGroundTruthProbe)
{
    // The white-box surface the accounting oracle uses: ground-truth
    // TRR counters on production vs the reference's own bookkeeping.
    const ModuleSpec spec = *findModuleSpec("A0");
    Program program;
    program.writeRow(0, 500, DataPattern::allOnes());
    for (int i = 0; i < 4 * spec.hcFirst; ++i) {
        program.hammer(0, 499, 1);
        program.hammer(0, 501, 1);
    }
    program.ref(64);
    program.readRow(0, 500);

    DramModule module(spec, 2021);
    SoftMcHost host(module);
    host.execute(program);
    const GroundTruthProbe probe = module.groundTruthProbe();

    ReferenceModule ref(spec, 2021);
    ref.execute(program);

    EXPECT_GT(ref.trrEventCount(), 0U);
    EXPECT_EQ(probe.counter("chip.trr_events"), ref.trrEventCount());
    EXPECT_EQ(probe.counter("chip.trr_victim_refreshes"),
              ref.trrVictimRefreshCount());
}

} // namespace
} // namespace utrr
