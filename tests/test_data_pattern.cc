#include <gtest/gtest.h>

#include "dram/data_pattern.hh"

namespace utrr
{
namespace
{

TEST(DataPattern, AllOnesAndZeros)
{
    const DataPattern ones = DataPattern::allOnes();
    const DataPattern zeros = DataPattern::allZeros();
    EXPECT_TRUE(ones.bit(0, 0));
    EXPECT_TRUE(ones.bit(100, 65'535));
    EXPECT_EQ(ones.word(5, 7), ~0ULL);
    EXPECT_FALSE(zeros.bit(0, 0));
    EXPECT_EQ(zeros.word(5, 7), 0ULL);
}

TEST(DataPattern, CheckerboardAlternatesByRow)
{
    const DataPattern checker = DataPattern::checkerboard();
    EXPECT_NE(checker.word(0, 0), checker.word(1, 0));
    EXPECT_EQ(checker.word(0, 0), checker.word(2, 0));
}

TEST(DataPattern, RandomIsSeedDependent)
{
    const DataPattern a = DataPattern::random(1);
    const DataPattern b = DataPattern::random(2);
    EXPECT_NE(a.word(0, 0), b.word(0, 0));
    EXPECT_EQ(a.word(0, 0), DataPattern::random(1).word(0, 0));
}

TEST(DataPattern, EqualityIgnoresSeedForNonRandom)
{
    EXPECT_TRUE(DataPattern::allOnes() == DataPattern::allOnes());
    EXPECT_FALSE(DataPattern::allOnes() == DataPattern::allZeros());
    EXPECT_TRUE(DataPattern::random(3) == DataPattern::random(3));
    EXPECT_FALSE(DataPattern::random(3) == DataPattern::random(4));
}

TEST(DataPattern, NamesAreDistinct)
{
    EXPECT_EQ(DataPattern::allOnes().name(), "all-ones");
    EXPECT_EQ(DataPattern::colStripe().name(), "col-stripe");
}

/** Property: bit() must agree with word() for every pattern kind. */
class PatternConsistency
    : public ::testing::TestWithParam<DataPattern::Kind>
{
};

TEST_P(PatternConsistency, BitMatchesWord)
{
    const DataPattern pattern(GetParam(), 99);
    for (Row row : {0, 1, 7, 4'000}) {
        for (int word_idx : {0, 1, 63}) {
            const std::uint64_t w = pattern.word(row, word_idx);
            for (int b = 0; b < 64; ++b) {
                const Col col = static_cast<Col>(word_idx) * 64 + b;
                ASSERT_EQ(pattern.bit(row, col),
                          ((w >> b) & 1) != 0)
                    << pattern.name() << " row " << row << " col "
                    << col;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, PatternConsistency,
    ::testing::Values(DataPattern::Kind::kAllOnes,
                      DataPattern::Kind::kAllZeros,
                      DataPattern::Kind::kCheckerboard,
                      DataPattern::Kind::kInvCheckerboard,
                      DataPattern::Kind::kColStripe,
                      DataPattern::Kind::kRandom));

} // namespace
} // namespace utrr
