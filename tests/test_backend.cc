/**
 * @file
 * DeviceBackend conformance suite (DESIGN.md §16).
 *
 * One parameterized battery drives every backend implementation — the
 * production simulator (SimBackend, in both its compiled and
 * interpreted execution tiers, DESIGN.md §17), the naive shadow
 * interpreter (ReferenceBackend) and the canned-session replayer
 * (TraceReplayBackend) — through the same canonical program set and
 * pins the four points of the interface contract:
 *
 *   1. read-back equivalence against a golden simulator execution;
 *   2. an accounting surface that matches the golden execution;
 *   3. a timing-legal command trace (when the backend records one);
 *   4. deterministic re-execution, and bit-identical replay across a
 *      snapshot/restore round trip.
 *
 * A second suite pins the campaign-level payoff of the snapshot work:
 * identification campaigns reusing cached profiles produce a
 * deterministicProjection-identical report to from-scratch runs, for
 * any worker count.
 */

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "check/oracles.hh"
#include "check/reference_backend.hh"
#include "core/device_backend.hh"
#include "core/sim_backend.hh"
#include "dram/module_spec.hh"
#include "fault/fault_injector.hh"
#include "obs/report.hh"
#include "runner/campaign.hh"
#include "runner/profile_cache.hh"
#include "runner/reveng_job.hh"
#include "softmc/timing_checker.hh"

namespace utrr
{
namespace
{

constexpr std::uint64_t kSeed = 2021;

/**
 * Canonical program set: one program per physics regime (retention
 * decay, RowHammer through TRR, word-granular writes under the
 * refresh sweep), executed in sequence on one backend instance so
 * state carries across execute() calls.
 */
std::vector<Program>
canonicalPrograms(const ModuleSpec &spec)
{
    std::vector<Program> programs;
    {
        Program p;
        for (Row row = 100; row < 106; ++row)
            p.writeRow(0, row, DataPattern::allOnes());
        p.wait(msToNs(1'200));
        for (Row row = 100; row < 106; ++row)
            p.readRow(0, row);
        programs.push_back(std::move(p));
    }
    {
        Program p;
        p.writeRow(0, 500, DataPattern::allOnes());
        p.writeRow(0, 499, DataPattern::allZeros());
        p.writeRow(0, 501, DataPattern::allZeros());
        const int hammers = static_cast<int>(spec.hcFirst);
        for (int i = 0; i < hammers; ++i) {
            p.hammer(0, 499, 1);
            p.hammer(0, 501, 1);
        }
        p.ref(32);
        p.readRow(0, 500);
        programs.push_back(std::move(p));
    }
    {
        Program p;
        p.act(1, 300);
        p.wr(1, DataPattern::random(7));
        p.wrWord(1, 3, 0xfeedULL);
        p.pre(1);
        p.waitWithRefresh(msToNs(150));
        p.readRow(1, 300);
        programs.push_back(std::move(p));
    }
    return programs;
}

std::size_t
traceCapacityFor(const std::vector<Program> &programs)
{
    std::size_t cap = 512;
    for (const Program &program : programs)
        cap += estimateTraceEvents(program, Timing{});
    return cap;
}

enum class BackendKind
{
    kSim,
    kReference,
    kReplay,
};

std::string
kindName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::kSim:
        return "Sim";
      case BackendKind::kReference:
        return "Reference";
      case BackendKind::kReplay:
        return "Replay";
    }
    return "?";
}

/** Backend kind × execution tier (DESIGN.md §17). The tier applies to
 *  the sim backend directly and to the replay backend's recording
 *  source; the reference interpreter ignores it. */
using ConformanceParam = std::tuple<BackendKind, ExecMode>;

std::string
modeName(ExecMode mode)
{
    return mode == ExecMode::kCompiled ? "Compiled" : "Interpreted";
}

/**
 * Build a fresh backend of @p kind over (spec, kSeed). The replay
 * backend is recorded from a fresh simulator run of @p programs — the
 * stand-in for a hardware session whose responses arrive as data.
 */
std::unique_ptr<DeviceBackend>
makeBackend(BackendKind kind, ExecMode mode, const ModuleSpec &spec,
            const std::vector<Program> &programs)
{
    switch (kind) {
      case BackendKind::kSim: {
          auto backend = std::make_unique<SimBackend>(spec, kSeed);
          backend->setExecMode(mode);
          backend->host().trace().enable(traceCapacityFor(programs));
          return backend;
      }
      case BackendKind::kReference:
          return std::make_unique<ReferenceBackend>(spec, kSeed);
      case BackendKind::kReplay: {
          SimBackend source(spec, kSeed);
          source.setExecMode(mode);
          source.host().trace().enable(traceCapacityFor(programs));
          return std::make_unique<TraceReplayBackend>(
              recordExecutions(source, programs));
      }
    }
    return nullptr;
}

void
expectAccountingEq(const BackendAccounting &got,
                   const BackendAccounting &want)
{
    EXPECT_EQ(got.refs, want.refs);
    EXPECT_EQ(got.trrEvents, want.trrEvents);
    EXPECT_EQ(got.trrVictimRefreshes, want.trrVictimRefreshes);
    ASSERT_EQ(got.rowRefreshes.size(), want.rowRefreshes.size());
    for (std::size_t b = 0; b < got.rowRefreshes.size(); ++b)
        EXPECT_EQ(got.rowRefreshes[b], want.rowRefreshes[b])
            << "bank " << b;
}

class BackendConformance
    : public ::testing::TestWithParam<ConformanceParam>
{
  protected:
    const ModuleSpec spec = *findModuleSpec("A0");
    const std::vector<Program> programs = canonicalPrograms(spec);

    std::unique_ptr<DeviceBackend>
    make() const
    {
        return makeBackend(std::get<0>(GetParam()),
                           std::get<1>(GetParam()), spec, programs);
    }
};

TEST_P(BackendConformance, ReadbackMatchesGoldenSim)
{
    // Contract point 1: program in, the exact reads a golden simulator
    // execution captures out — bank, row, time and every word.
    SimBackend golden(spec, kSeed);
    const std::unique_ptr<DeviceBackend> backend = make();
    ASSERT_EQ(backend->spec().name, spec.name);
    for (std::size_t i = 0; i < programs.size(); ++i) {
        SCOPED_TRACE("program " + std::to_string(i));
        const BackendResult want = golden.execute(programs[i]);
        const BackendResult got = backend->execute(programs[i]);
        ASSERT_EQ(got.reads.size(), want.reads.size());
        for (std::size_t r = 0; r < got.reads.size(); ++r)
            EXPECT_TRUE(got.reads[r] == want.reads[r]) << "read " << r;
        EXPECT_EQ(got.endTime, want.endTime);
        EXPECT_EQ(hashBackendReads(got), hashBackendReads(want));
        EXPECT_EQ(backend->now(), golden.now());
    }
}

TEST_P(BackendConformance, AccountingMatchesGoldenSim)
{
    // Contract point 2: the accounting surface after every execution
    // equals the golden simulator's, and REF counts grow monotonically.
    SimBackend golden(spec, kSeed);
    const std::unique_ptr<DeviceBackend> backend = make();
    std::uint64_t last_refs = 0;
    for (std::size_t i = 0; i < programs.size(); ++i) {
        SCOPED_TRACE("program " + std::to_string(i));
        golden.execute(programs[i]);
        backend->execute(programs[i]);
        const BackendAccounting got = backend->accounting();
        expectAccountingEq(got, golden.accounting());
        EXPECT_GE(got.refs, last_refs);
        last_refs = got.refs;
    }
    EXPECT_GT(last_refs, 0u);
}

TEST_P(BackendConformance, TraceIsTimingLegalWhenRecorded)
{
    // Contract point 3: traceEvents() may be empty (the reference
    // interpreter records none); when present, the stream must satisfy
    // the DDR4 timing checker.
    const std::unique_ptr<DeviceBackend> backend = make();
    for (const Program &program : programs)
        backend->execute(program);
    const std::vector<TraceEvent> events = backend->traceEvents();
    if (events.empty()) {
        SUCCEED() << backend->name() << " records no trace";
        return;
    }
    TimingChecker checker(Timing{}, spec.banks);
    for (const TraceEvent &event : events) {
        switch (event.kind) {
          case TraceKind::kAct:
            checker.onAct(event.bank, event.row, event.start);
            break;
          case TraceKind::kPre:
            checker.onPre(event.bank, event.start);
            break;
          case TraceKind::kWr:
            checker.onWrite(event.bank, event.start);
            break;
          case TraceKind::kRd:
            checker.onRead(event.bank, event.start);
            break;
          case TraceKind::kRef:
            checker.onRef(event.start);
            break;
          default:
            break;
        }
    }
    EXPECT_TRUE(checker.clean())
        << checker.violations().size() << " timing violations; first: "
        << checker.violations().front().rule << " "
        << checker.violations().front().detail;
}

TEST_P(BackendConformance, DeterministicAcrossInstances)
{
    // Contract point 1 (determinism half): two instances built the
    // same way produce byte-identical results program by program.
    const std::unique_ptr<DeviceBackend> first = make();
    const std::unique_ptr<DeviceBackend> second = make();
    for (std::size_t i = 0; i < programs.size(); ++i) {
        SCOPED_TRACE("program " + std::to_string(i));
        const BackendResult a = first->execute(programs[i]);
        const BackendResult b = second->execute(programs[i]);
        EXPECT_EQ(hashBackendReads(a), hashBackendReads(b));
        EXPECT_EQ(a.endTime, b.endTime);
    }
    expectAccountingEq(first->accounting(), second->accounting());
}

TEST_P(BackendConformance, SnapshotRoundTripMidSequence)
{
    // Contract point 4: snapshot after program 0, run the rest, then
    // restore — the remaining programs must replay bit-identically.
    const std::unique_ptr<DeviceBackend> backend = make();
    ASSERT_TRUE(backend->supportsSnapshot());
    backend->execute(programs[0]);
    const std::uint64_t token = backend->snapshot();

    std::vector<std::uint64_t> hashes;
    std::vector<Time> ends;
    for (std::size_t i = 1; i < programs.size(); ++i) {
        const BackendResult result = backend->execute(programs[i]);
        hashes.push_back(hashBackendReads(result));
        ends.push_back(result.endTime);
    }
    const BackendAccounting final_acc = backend->accounting();

    backend->restore(token);
    for (std::size_t i = 1; i < programs.size(); ++i) {
        SCOPED_TRACE("replayed program " + std::to_string(i));
        const BackendResult result = backend->execute(programs[i]);
        EXPECT_EQ(hashBackendReads(result), hashes[i - 1]);
        EXPECT_EQ(result.endTime, ends[i - 1]);
    }
    expectAccountingEq(backend->accounting(), final_acc);

    // A token may be restored any number of times; dropping it ends
    // its lifetime.
    backend->restore(token);
    backend->dropSnapshot(token);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendConformance,
    ::testing::Combine(::testing::Values(BackendKind::kSim,
                                         BackendKind::kReference,
                                         BackendKind::kReplay),
                       ::testing::Values(ExecMode::kCompiled,
                                         ExecMode::kInterpreted)),
    [](const ::testing::TestParamInfo<ConformanceParam> &info) {
        return kindName(std::get<0>(info.param)) +
            modeName(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------
// Replay-specific contract: divergence is a hard error.
// ---------------------------------------------------------------------

TEST(TraceReplay, DivergedProgramIsRejected)
{
    const ModuleSpec spec = *findModuleSpec("A0");
    const std::vector<Program> programs = canonicalPrograms(spec);
    SimBackend source(spec, kSeed);
    TraceReplayBackend replay(recordExecutions(source, programs));

    Program diverged;
    diverged.readRow(0, 1); // not what was recorded
    EXPECT_THROW(replay.execute(diverged), std::runtime_error);

    // The cursor did not advance: the recorded program still replays.
    const BackendResult result = replay.execute(programs[0]);
    EXPECT_FALSE(result.reads.empty());
}

TEST(TraceReplay, ExhaustedRecordingIsRejected)
{
    const ModuleSpec spec = *findModuleSpec("A0");
    const std::vector<Program> programs = canonicalPrograms(spec);
    SimBackend source(spec, kSeed);
    TraceReplayBackend replay(recordExecutions(source, programs));
    for (const Program &program : programs)
        replay.execute(program);
    EXPECT_EQ(replay.position(), replay.size());
    EXPECT_THROW(replay.execute(programs[0]), std::runtime_error);
}

TEST(TraceReplay, RecordingOwnsItsTraceLabels)
{
    // The recording must stay valid after the source backend dies:
    // interned trace labels are re-homed into the recording's own
    // pool. Fault markers are the label-carrying events that land
    // inside an execution's trace delta, so force one per WR.
    const ModuleSpec spec = *findModuleSpec("A0");
    Program p;
    p.writeRow(0, 7, DataPattern::allOnes());
    p.readRow(0, 7);

    BackendRecording recording;
    {
        SimBackend source(spec, kSeed);
        source.host().trace().enable(4'096);
        FaultConfig faults;
        faults.dropWrChance = 1.0;
        FaultInjector injector(faults, 5);
        source.host().attachFaultInjector(&injector);
        recording = recordExecutions(source, {p});
        source.host().attachFaultInjector(nullptr);
    }

    TraceReplayBackend replay(std::move(recording));
    replay.execute(p);
    bool saw_label = false;
    for (const TraceEvent &event : replay.traceEvents()) {
        if (event.kind == TraceKind::kFault) {
            ASSERT_NE(event.phase, nullptr);
            EXPECT_EQ(std::string(event.phase), "drop_wr");
            saw_label = true;
        }
    }
    EXPECT_TRUE(saw_label);
}

// ---------------------------------------------------------------------
// Profile reuse: the campaign-level acceptance criterion.
// ---------------------------------------------------------------------

/** Full-size specs (shrunk modules lose their RRR-RRR groups). */
std::vector<ModuleSpec>
reuseSpecs()
{
    return {*findModuleSpec("A5"), *findModuleSpec("B2")};
}

/** Narrowed like test_runner's subset config: the suite re-identifies
 *  each module several times, full battery windows would dominate the
 *  tier-1 wall clock. */
IdentifyJobConfig
reuseIdentifyConfig()
{
    IdentifyJobConfig config = IdentifyJobConfig::battery();
    config.reveng.scoutRowEnd = 2 * 1024;
    config.reveng.wideScoutRowEnd = 16 * 1024;
    config.reveng.consistencyChecks = 8;
    config.reveng.periodIterations = 32;
    return config;
}

CampaignResult
runBattery(int jobs, ProfileCache *cache)
{
    CampaignConfig cfg;
    cfg.jobs = jobs;
    cfg.seed = 7;
    cfg.profileCache = cache;
    CampaignRunner runner(cfg);
    return runner.run(reuseSpecs(),
                      makeIdentifyJob(reuseIdentifyConfig()));
}

std::string
projectedReport(const CampaignResult &result)
{
    ExperimentReport report("backend_profile_reuse");
    result.fillReport(report);
    return deterministicProjection(report.json()).dump();
}

TEST(ProfileReuse, CachedCampaignReportMatchesFromScratch)
{
    // First campaign populates the cache; the second restores every
    // profile. Its report must be deterministicProjection-identical to
    // a from-scratch (cache-free) campaign — the acceptance criterion
    // for snapshot-based profile reuse.
    ProfileCache cache;
    runBattery(1, &cache);
    ASSERT_EQ(cache.stats().misses, 2u);
    ASSERT_EQ(cache.stats().hits, 0u);

    const CampaignResult reused = runBattery(1, &cache);
    EXPECT_EQ(cache.stats().hits, 2u);

    const CampaignResult scratch = runBattery(1, nullptr);
    EXPECT_TRUE(scratch.allOk());
    EXPECT_TRUE(reused.allOk());
    EXPECT_EQ(projectedReport(reused), projectedReport(scratch));
}

TEST(ProfileReuse, VerdictsIdenticalForAnyWorkerCount)
{
    // The "for any --jobs N" half: cached campaigns keep the runner's
    // scheduling-independence guarantee.
    ProfileCache cache_serial;
    runBattery(1, &cache_serial);
    const CampaignResult serial = runBattery(1, &cache_serial);

    ProfileCache cache_parallel;
    runBattery(4, &cache_parallel);
    const CampaignResult parallel = runBattery(4, &cache_parallel);

    EXPECT_EQ(serial.verdicts().dump(), parallel.verdicts().dump());
    EXPECT_EQ(serial.verdicts().dump(),
              runBattery(1, nullptr).verdicts().dump());
}

TEST(ProfileReuse, FaultInjectionBypassesCache)
{
    // profiled() must not consult the cache when an injector is
    // attached: injector RNG draws during profiling cannot be replayed
    // by a restore.
    ProfileCache cache;
    CampaignConfig cfg;
    cfg.jobs = 1;
    cfg.seed = 3;
    cfg.faults.vrtFlipChancePerRead = 1e-3;
    cfg.profileCache = &cache;
    CampaignRunner runner(cfg);

    int body_runs = 0;
    const JobFn job = [&body_runs](JobContext &ctx) {
        ctx.profiled("bypass:v1", [&]() {
            ++body_runs;
            return Json(42);
        });
        JobOutcome out;
        out.ok = true;
        out.verdict = Json::object();
        return out;
    };
    const std::vector<ModuleSpec> specs = {*findModuleSpec("A0")};
    runner.run(specs, job);
    runner.run(specs, job);

    EXPECT_EQ(body_runs, 2);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.stats().hits + cache.stats().misses, 0u);
}

TEST(ProfileReuse, HitRestoresDeviceAndPayload)
{
    // The hit path restores module + host + metrics and returns the
    // cached payload: a job observing its own device state cannot tell
    // a hit from having just profiled.
    ProfileCache cache;
    CampaignConfig cfg;
    cfg.jobs = 1;
    cfg.seed = 11;
    cfg.profileCache = &cache;
    CampaignRunner runner(cfg);

    const JobFn job = [](JobContext &ctx) {
        const Json payload = ctx.profiled("state:v1", [&]() {
            ctx.host.writeRow(0, 123, DataPattern::allOnes());
            ctx.host.refBurst(3);
            Json out = Json::object();
            out["stamp"] =
                Json(static_cast<std::int64_t>(ctx.host.now()));
            return out;
        });
        JobOutcome out;
        out.ok = true;
        Json verdict = Json::object();
        verdict["payload_stamp"] = *payload.find("stamp");
        verdict["now"] =
            Json(static_cast<std::int64_t>(ctx.host.now()));
        verdict["refs"] = Json(ctx.module.refCount());
        out.verdict = std::move(verdict);
        return out;
    };
    const std::vector<ModuleSpec> specs = {*findModuleSpec("A0")};
    const CampaignResult miss = runner.run(specs, job);
    const CampaignResult hit = runner.run(specs, job);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(miss.verdicts().dump(), hit.verdicts().dump());
}

} // namespace
} // namespace utrr
