#include <gtest/gtest.h>

#include <map>
#include <set>

#include "attack/synth.hh"
#include "check/fuzzer.hh"
#include "common/rng.hh"
#include "core/sim_backend.hh"
#include "dram/refresh_engine.hh"
#include "ecc/chipkill.hh"
#include "ecc/reed_solomon.hh"
#include "ecc/secded.hh"
#include "fault/fault_injector.hh"
#include "runner/reveng_job.hh"
#include "trr/vendor_a.hh"
#include "trr/vendor_b.hh"
#include "trr/vendor_c.hh"

namespace utrr
{
namespace
{

// ---------------------------------------------------------------------
// Refresh engine: full coverage for arbitrary (rows, period) pairs.
// ---------------------------------------------------------------------

class RefreshEngineGrid
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(RefreshEngineGrid, EveryRowExactlyOncePerPeriod)
{
    const auto [rows, period] = GetParam();
    RefreshEngine engine(rows, period);
    std::vector<int> covered(static_cast<std::size_t>(rows), 0);
    for (int ref = 0; ref < period; ++ref) {
        if (const auto range = engine.onRefresh()) {
            for (Row r = range->first; r < range->second; ++r)
                ++covered[static_cast<std::size_t>(r)];
        }
    }
    for (int c : covered)
        ASSERT_EQ(c, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RefreshEngineGrid,
    ::testing::Values(std::pair{64, 7}, std::pair{100, 100},
                      std::pair{1'000, 3'758}, std::pair{8'192, 8'192},
                      std::pair{65'600, 3'758}, std::pair{7, 64},
                      std::pair{1, 1}));

// ---------------------------------------------------------------------
// Vendor A table: capacity bound holds under random workloads.
// ---------------------------------------------------------------------

class VendorAWorkload : public ::testing::TestWithParam<int>
{
};

TEST_P(VendorAWorkload, TableNeverExceedsCapacity)
{
    VendorATrr trr(2);
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    for (int i = 0; i < 20'000; ++i) {
        const Bank bank = static_cast<Bank>(rng.uniformInt(0, 1));
        const Row row = static_cast<Row>(rng.uniformInt(0, 400));
        trr.onActivate(bank, row);
        if (rng.chance(0.05))
            trr.onRefresh();
        ASSERT_LE(trr.tableOf(0).size(), 16u);
        ASSERT_LE(trr.tableOf(1).size(), 16u);
    }
}

TEST_P(VendorAWorkload, DetectionsAreTrackedRows)
{
    VendorATrr trr(1);
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
    std::set<Row> activated;
    for (int i = 0; i < 5'000; ++i) {
        const Row row = static_cast<Row>(rng.uniformInt(0, 200));
        activated.insert(row);
        trr.onActivate(0, row);
        for (const auto &action : trr.onRefresh()) {
            // TRR can only ever detect a row that was activated.
            ASSERT_TRUE(activated.count(action.aggressorPhysRow))
                << action.aggressorPhysRow;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VendorAWorkload,
                         ::testing::Range(1, 9));

// ---------------------------------------------------------------------
// Vendor B/C: detections only ever name activated rows.
// ---------------------------------------------------------------------

class SamplerWorkload : public ::testing::TestWithParam<int>
{
};

TEST_P(SamplerWorkload, VendorBDetectsOnlyActivatedRows)
{
    VendorBTrr::Params params;
    params.trrRefPeriod = 2;
    VendorBTrr trr(2, params,
                   static_cast<std::uint64_t>(GetParam()));
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7 + 1);
    std::set<Row> activated;
    for (int i = 0; i < 10'000; ++i) {
        const Row row = static_cast<Row>(rng.uniformInt(0, 50));
        activated.insert(row);
        trr.onActivate(static_cast<Bank>(rng.uniformInt(0, 1)), row);
        if (rng.chance(0.02)) {
            for (const auto &action : trr.onRefresh())
                ASSERT_TRUE(activated.count(action.aggressorPhysRow));
        }
    }
}

TEST_P(SamplerWorkload, VendorCDetectsOnlyActivatedRows)
{
    VendorCTrr::Params params;
    params.trrRefPeriod = 4;
    VendorCTrr trr(1, params,
                   static_cast<std::uint64_t>(GetParam()));
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 13 + 5);
    std::set<Row> activated;
    for (int i = 0; i < 10'000; ++i) {
        const Row row = static_cast<Row>(rng.uniformInt(0, 50));
        activated.insert(row);
        trr.onActivate(0, row);
        for (const auto &action : trr.onRefresh())
            ASSERT_TRUE(activated.count(action.aggressorPhysRow));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamplerWorkload,
                         ::testing::Range(1, 7));

// ---------------------------------------------------------------------
// Reed-Solomon across a parameter grid: encode/decode round trips and
// t-error correction for every configuration.
// ---------------------------------------------------------------------

class RsGrid : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(RsGrid, RoundTripAndCorrection)
{
    const auto [n, k] = GetParam();
    const ReedSolomon rs(n, k);
    Rng rng(static_cast<std::uint64_t>(n * 1'000 + k));

    for (int trial = 0; trial < 10; ++trial) {
        std::vector<Gf256::Elem> data;
        for (int i = 0; i < k; ++i) {
            data.push_back(
                static_cast<Gf256::Elem>(rng.uniformInt(0, 255)));
        }
        const auto codeword = rs.encode(data);
        ASSERT_EQ(rs.decode(codeword).status,
                  RsDecodeResult::Status::kClean);

        if (rs.t() == 0)
            continue;
        auto received = codeword;
        std::set<int> positions;
        while (static_cast<int>(positions.size()) < rs.t()) {
            positions.insert(
                static_cast<int>(rng.uniformInt(0, n - 1)));
        }
        for (int pos : positions) {
            received[static_cast<std::size_t>(pos)] ^=
                static_cast<Gf256::Elem>(rng.uniformInt(1, 255));
        }
        const RsDecodeResult result = rs.decode(received);
        ASSERT_EQ(result.status, RsDecodeResult::Status::kCorrected);
        ASSERT_EQ(result.codeword, codeword);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RsGrid,
    ::testing::Values(std::pair{10, 8}, std::pair{12, 8},
                      std::pair{15, 8}, std::pair{22, 8},
                      std::pair{255, 223}, std::pair{20, 4},
                      std::pair{9, 8}, std::pair{64, 32}));

// ---------------------------------------------------------------------
// Campaign runner: for random (seed, module) pairs across all three
// vendors, the identification verdict matches the spec's ground truth
// and a same-seed re-run reproduces the campaign bit for bit.
// ---------------------------------------------------------------------

class RunnerProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(RunnerProperty, VerdictMatchesGroundTruthAndReproduces)
{
    const auto seed = static_cast<std::uint64_t>(GetParam());
    // Seed-derived module pick, cycling through vendors A/B/C so the
    // parameter range as a whole covers all three.
    Rng pick(seed * 9'176'263 + 11);
    const char vendor = "ABC"[seed % 3];
    std::vector<const ModuleSpec *> candidates;
    for (const ModuleSpec &spec : allModuleSpecs()) {
        if (spec.name.front() == vendor)
            candidates.push_back(&spec);
    }
    ASSERT_FALSE(candidates.empty());
    const ModuleSpec &spec = *candidates[static_cast<std::size_t>(
        pick.uniformInt(0, static_cast<int>(candidates.size()) - 1))];

    IdentifyJobConfig job_config = IdentifyJobConfig::battery();
    job_config.reveng.scoutRowEnd = 2 * 1024;
    job_config.reveng.wideScoutRowEnd = 16 * 1024;
    job_config.reveng.consistencyChecks = 8;
    // Vendor C's 1/17 ratio needs the full battery iteration count to
    // resolve a dominant period; fewer misidentifies some seeds.
    job_config.reveng.periodIterations = 64;
    const JobFn job = makeIdentifyJob(job_config);

    // Campaign seed varies per parameter; the die seed stays the
    // calibrated battery default — identification robustness across
    // arbitrary dies is a physics-calibration axis, not a runner
    // property (some dies defeat the narrowed scout windows used
    // here even fault-free).
    CampaignConfig config;
    config.jobs = 1;
    config.seed = seed;
    const CampaignResult first =
        CampaignRunner(config).run({spec}, job);

    ASSERT_EQ(first.modules.size(), 1u);
    EXPECT_TRUE(first.allOk()) << spec.name;
    const Json &verdict = first.modules.front().verdict;
    const TrrTraits truth = spec.traits();
    EXPECT_EQ(verdict.find("period")->asInt(), truth.trrToRefPeriod)
        << spec.name;
    EXPECT_EQ(verdict.find("neighbours")->asInt(),
              spec.paired() ? 1 : truth.neighborsRefreshed)
        << spec.name;

    // Same seed, same campaign — the re-run must reproduce exactly.
    const CampaignResult second =
        CampaignRunner(config).run({spec}, job);
    EXPECT_EQ(first.verdicts().dump(), second.verdicts().dump());
    std::map<std::string, std::uint64_t> counters_first;
    for (const auto &[name, c] :
         first.modules.front().metrics.counters())
        counters_first[name] = c.value;
    std::map<std::string, std::uint64_t> counters_second;
    for (const auto &[name, c] :
         second.modules.front().metrics.counters())
        counters_second[name] = c.value;
    EXPECT_EQ(counters_first, counters_second);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RunnerProperty,
                         ::testing::Range(1, 7));

// ---------------------------------------------------------------------
// ECC codes: randomized k-bit / k-symbol error round trips match each
// code's distance guarantee (and its documented failure modes).
// ---------------------------------------------------------------------

/**
 * Flip @p k distinct bits of a codeword. SECDED uses all 72 positions;
 * OnDieSec(71,64) ignores the overall parity bit (position 71), so its
 * errors must stay within 0..70 to be real.
 */
Secded::Codeword
flipDistinctBits(Rng &rng, Secded::Codeword word, int k,
                 int max_bit = 71)
{
    std::set<int> bits;
    while (static_cast<int>(bits.size()) < k)
        bits.insert(static_cast<int>(rng.uniformInt(0, max_bit)));
    for (int bit : bits)
        word = Secded::flipBit(word, bit);
    return word;
}

TEST(EccProperty, SecdedSingleBitAlwaysCorrected)
{
    Rng rng(101);
    for (int trial = 0; trial < 500; ++trial) {
        const std::uint64_t data = rng.next();
        const auto received = flipDistinctBits(
            rng, Secded::encode(data), 1);
        const auto result = Secded::decode(received);
        ASSERT_EQ(result.status, Secded::Status::kCorrected);
        ASSERT_EQ(result.codeword.data, data);
    }
}

TEST(EccProperty, SecdedDoubleBitAlwaysDetectedNeverMiscorrected)
{
    Rng rng(102);
    for (int trial = 0; trial < 500; ++trial) {
        const std::uint64_t data = rng.next();
        const auto received = flipDistinctBits(
            rng, Secded::encode(data), 2);
        const auto result = Secded::decode(received);
        ASSERT_EQ(result.status, Secded::Status::kDetected);
    }
}

TEST(EccProperty, SecdedTripleBitNeverReadsClean)
{
    // Beyond the guarantee: >= 3 flips may alias to a "corrected"
    // word with wrong data, but must never decode as clean.
    Rng rng(103);
    int aliased = 0;
    for (int trial = 0; trial < 500; ++trial) {
        const std::uint64_t data = rng.next();
        const auto received = flipDistinctBits(
            rng, Secded::encode(data), 3);
        const auto result = Secded::decode(received);
        ASSERT_NE(result.status, Secded::Status::kClean);
        if (result.status == Secded::Status::kCorrected &&
            result.codeword.data != data)
            ++aliased;
    }
    // The aliasing failure mode is real, not hypothetical.
    EXPECT_GT(aliased, 0);
}

TEST(EccProperty, OnDieSecCorrectsOneBitButMiscorrectsTwo)
{
    Rng rng(104);
    int miscorrected = 0;
    for (int trial = 0; trial < 300; ++trial) {
        const std::uint64_t data = rng.next();

        auto one = flipDistinctBits(rng, OnDieSec::encode(data), 1, 70);
        const auto corrected = OnDieSec::decode(one);
        ASSERT_EQ(corrected.status, OnDieSec::Status::kCorrected);
        ASSERT_EQ(corrected.codeword.data, data);

        // Two flips: distinct nonzero syndrome columns never cancel,
        // so the result is never clean — but without the overall
        // parity bit the code cannot tell 2 flips from 1 and silently
        // miscorrects (the weakness the custom patterns exploit).
        auto two = flipDistinctBits(rng, OnDieSec::encode(data), 2, 70);
        const auto result = OnDieSec::decode(two);
        ASSERT_NE(result.status, OnDieSec::Status::kClean);
        if (result.status == OnDieSec::Status::kCorrected &&
            result.codeword.data != data)
            ++miscorrected;
    }
    EXPECT_GT(miscorrected, 0);
}

/** Corrupt @p k distinct symbols of a chipkill codeword. */
std::vector<Gf256::Elem>
corruptSymbols(Rng &rng, std::vector<Gf256::Elem> word, int k)
{
    std::set<int> symbols;
    while (static_cast<int>(symbols.size()) < k)
        symbols.insert(static_cast<int>(
            rng.uniformInt(0, static_cast<int>(word.size()) - 1)));
    for (int s : symbols) {
        const auto xorv = static_cast<Gf256::Elem>(
            rng.uniformInt(1, 255));
        word[static_cast<std::size_t>(s)] ^= xorv;
    }
    return word;
}

TEST(EccProperty, ChipkillSymbolErrorsMatchDistanceGuarantee)
{
    const Chipkill chipkill;
    Rng rng(105);
    for (int trial = 0; trial < 200; ++trial) {
        const std::uint64_t data = rng.next();
        const auto clean = chipkill.encode(data);

        // t = 1: any single-symbol error (a whole dead chip) corrects
        // back to the original data.
        const auto one = chipkill.decode(corruptSymbols(rng, clean, 1));
        ASSERT_EQ(one.status, RsDecodeResult::Status::kCorrected);
        ASSERT_EQ(one.symbolsCorrected, 1);
        ASSERT_EQ(Chipkill::dataOf(one.codeword), data);

        // Distance 4: a double-symbol error is at distance >= 2 from
        // every codeword, hence always detected, never miscorrected.
        const auto two = chipkill.decode(corruptSymbols(rng, clean, 2));
        ASSERT_EQ(two.status, RsDecodeResult::Status::kDetected);

        // Weight 3 < distance 4: never aliases to a clean codeword.
        const auto three =
            chipkill.decode(corruptSymbols(rng, clean, 3));
        ASSERT_NE(three.status, RsDecodeResult::Status::kClean);
    }
}

TEST(EccProperty, ChipkillAdversarialTripleSymbolMiscorrects)
{
    // Any two datawords differing in one byte produce codewords
    // exactly distance 4 apart (d = n - k + 1 = 4, and the diff spans
    // at most 1 data + 3 parity symbols). Flipping 3 of those 4
    // symbols lands within the correction radius of the *wrong*
    // codeword: a triple-symbol error silently decodes to bad data.
    const Chipkill chipkill;
    const std::uint64_t data_a = 0;
    const std::uint64_t data_b = 1;
    const auto cw_a = chipkill.encode(data_a);
    const auto cw_b = chipkill.encode(data_b);

    std::vector<int> differing;
    for (std::size_t i = 0; i < cw_a.size(); ++i)
        if (cw_a[i] != cw_b[i])
            differing.push_back(static_cast<int>(i));
    ASSERT_EQ(differing.size(), 4U);

    auto received = cw_a;
    for (int i = 0; i < 3; ++i) {
        const auto sym = static_cast<std::size_t>(differing[
            static_cast<std::size_t>(i)]);
        received[sym] = cw_b[sym];
    }
    const auto result = chipkill.decode(received);
    ASSERT_EQ(result.status, RsDecodeResult::Status::kCorrected);
    EXPECT_EQ(Chipkill::dataOf(result.codeword), data_b);
    EXPECT_NE(Chipkill::dataOf(result.codeword), data_a);
}

// --- pattern synthesizer ---------------------------------------------

// Every fuzzed draw respects both the hard representation limits and
// the *configured* SynthRanges, for default and tightened ranges alike.
TEST(SynthProperty, DrawsStayInDeclaredRanges)
{
    SynthRanges tight;
    tight.minBasePeriod = 3;
    tight.maxBasePeriod = 9;
    tight.minAmplitude = 12;
    tight.maxAmplitude = 40;
    tight.maxDummyRows = 6;
    tight.maxDummyBanks = 2;

    for (const SynthRanges &ranges : {SynthRanges{}, tight}) {
        Rng rng(7);
        for (int seed = 0; seed < 400; ++seed) {
            const int hint = (seed % 3 == 0) ? -1 : (seed % 20);
            const HammerPattern pattern =
                drawPattern(rng, ranges, hint);

            EXPECT_EQ("", validatePattern(pattern));
            EXPECT_GE(pattern.basePeriod, ranges.minBasePeriod);
            EXPECT_LE(pattern.basePeriod, ranges.maxBasePeriod);
            EXPECT_LE(pattern.basePeriod,
                      PatternLimits::kMaxBasePeriod);
            EXPECT_LE(pattern.elements.size(),
                      static_cast<std::size_t>(
                          PatternLimits::kMaxElements));

            for (const PatternElement &e : pattern.elements) {
                EXPECT_GE(e.frequency, 1);
                EXPECT_GE(e.span, 1);
                EXPECT_GE(e.phase, 0);
                EXPECT_LT(e.phase, pattern.basePeriod);
                EXPECT_LE(e.amplitude, ranges.maxAmplitude);
                if (e.amplitude != 0) {
                    EXPECT_GE(e.amplitude,
                              std::min(ranges.minAmplitude,
                                       ranges.maxAmplitude));
                }
                if (e.kind == ElementKind::kAggressors) {
                    EXPECT_GE(e.rows, 1);
                    EXPECT_LE(e.rows,
                              PatternLimits::kMaxAggressorRows);
                    EXPECT_EQ(e.banks, 1);
                } else {
                    EXPECT_GE(e.rows, 1);
                    EXPECT_LE(e.rows, ranges.maxDummyRows);
                    EXPECT_GE(e.banks, 1);
                    EXPECT_LE(e.banks, ranges.maxDummyBanks);
                }
            }
        }
    }
}

// The ddmin minimizer must never turn a winner into a loser: when a
// module is beaten, the *minimized* pattern is what the replay stage
// re-verifies on a fresh host, so verifyFlips > 0 certifies that the
// reduced pattern still flips bits.
TEST(SynthProperty, MinimizedWinnerKeepsItsVerdict)
{
    for (const char *name : {"C12", "B13"}) {
        const ModuleSpec spec = *findModuleSpec(name);
        SynthConfig cfg;
        cfg.attempts = 16;
        cfg.sweepBanks = 2;
        const SynthModuleResult result = synthesizeForModule(
            spec, cfg, Rng(1).fork(spec.name).fork("synth"));
        ASSERT_TRUE(result.beaten) << name;
        EXPECT_GT(result.verifyFlips, 0) << name;
        EXPECT_LE(result.elementsAfter, result.elementsBefore) << name;
        EXPECT_EQ("", validatePattern(result.best)) << name;
    }
}

// ---------------------------------------------------------------------
// Snapshot/fork (DESIGN.md §16): fork isolation, restore bit-identity
// under chaos faults, and path-independence at random program points.
// ---------------------------------------------------------------------

void
expectSameAccounting(const BackendAccounting &got,
                     const BackendAccounting &want)
{
    EXPECT_EQ(got.refs, want.refs);
    EXPECT_EQ(got.trrEvents, want.trrEvents);
    EXPECT_EQ(got.trrVictimRefreshes, want.trrVictimRefreshes);
    EXPECT_EQ(got.rowRefreshes, want.rowRefreshes);
}

// Mutating a fork must never perturb the parent: the parent's
// subsequent execution stays bit-identical (reads + command trace) to
// an identically built twin that never forked at all.
TEST(SnapshotProperty, ForkMutationNeverPerturbsParent)
{
    const ModuleSpec spec = *findModuleSpec("A0");

    Program setup;
    for (Row row = 40; row < 48; ++row)
        setup.writeRow(0, row, DataPattern::checkerboard());
    setup.waitWithRefresh(msToNs(30));

    Program probe;
    probe.hammer(0, 44, 2'000);
    probe.ref(8);
    for (Row row = 40; row < 48; ++row)
        probe.readRow(0, row);

    SimBackend parent(spec, 2021);
    parent.host().trace().enable(1 << 16);
    SimBackend twin(spec, 2021);
    twin.host().trace().enable(1 << 16);
    parent.execute(setup);
    twin.execute(setup);

    // Fork, then trash exactly the state the parent is about to probe:
    // overwrite its rows, hammer its aggressor, let the fork decay.
    const DeviceSnapshot snap = parent.captureDevice();
    const std::unique_ptr<SimBackend> child = parent.fork(snap);
    Program vandalism;
    for (Row row = 40; row < 48; ++row)
        vandalism.writeRow(0, row, DataPattern::random(3));
    vandalism.hammer(0, 44, 5'000);
    vandalism.wait(msToNs(400));
    for (Row row = 40; row < 48; ++row)
        vandalism.readRow(0, row);
    child->execute(vandalism);

    const BackendResult parent_probe = parent.execute(probe);
    const BackendResult twin_probe = twin.execute(probe);
    EXPECT_EQ(hashBackendReads(parent_probe),
              hashBackendReads(twin_probe));
    EXPECT_EQ(parent_probe.endTime, twin_probe.endTime);
    EXPECT_EQ(parent.host().trace().contentHash(),
              twin.host().trace().contentHash());
    expectSameAccounting(parent.accounting(), twin.accounting());
}

// Snapshot -> mutate -> restore must be bit-identical even when chaos
// faults fired on both sides of the snapshot: the restored device
// carries the pre-snapshot fault damage (VRT modes, temperature
// scale), and a same-seeded injector replays the post-snapshot stream
// exactly.
TEST(SnapshotProperty, RestoreIsBitIdenticalUnderChaosFaults)
{
    const ModuleSpec spec = *findModuleSpec("B2");
    const FaultConfig chaos = FaultConfig::chaosDefaults();

    SimBackend sim(spec, 2021);
    sim.host().trace().enable(1 << 17);

    Program setup;
    for (Row row = 60; row < 66; ++row)
        setup.writeRow(0, row, DataPattern::allOnes());
    setup.hammer(0, 63, 8'000);
    setup.waitWithRefresh(msToNs(100));

    Program probe;
    probe.hammer(0, 62, 6'000);
    probe.waitWithRefresh(msToNs(80));
    for (Row row = 60; row < 66; ++row)
        probe.readRow(0, row);

    FaultInjector warm(chaos, 7);
    sim.host().attachFaultInjector(&warm);
    sim.execute(setup);
    sim.host().attachFaultInjector(nullptr);
    // The snapshot state itself is fault-damaged, not pristine.
    EXPECT_GT(warm.stats().jitteredRefs + warm.stats().tempSteps, 0u);

    const std::uint64_t token = sim.snapshot();

    FaultInjector first(chaos, 99);
    sim.host().attachFaultInjector(&first);
    const BackendResult a = sim.execute(probe);
    sim.host().attachFaultInjector(nullptr);
    const std::uint64_t trace_a = sim.host().trace().contentHash();
    const BackendAccounting acc_a = sim.accounting();
    EXPECT_GT(first.stats().jitteredRefs + first.stats().tempSteps, 0u);

    sim.restore(token);
    FaultInjector second(chaos, 99); // identical fault stream
    sim.host().attachFaultInjector(&second);
    const BackendResult b = sim.execute(probe);
    sim.host().attachFaultInjector(nullptr);

    EXPECT_EQ(hashBackendReads(a), hashBackendReads(b));
    EXPECT_EQ(a.endTime, b.endTime);
    EXPECT_EQ(sim.host().trace().contentHash(), trace_a);
    expectSameAccounting(sim.accounting(), acc_a);
    EXPECT_EQ(first.stats().vrtFlips, second.stats().vrtFlips);
    EXPECT_EQ(first.stats().noiseBits, second.stats().noiseBits);
    EXPECT_EQ(first.stats().jitteredRefs, second.stats().jitteredRefs);
    EXPECT_EQ(first.stats().droppedCommands(),
              second.stats().droppedCommands());
    EXPECT_EQ(first.stats().tempSteps, second.stats().tempSteps);
}

// Fuzz round: for random programs cut at random instruction
// boundaries, a snapshot/restore round trip at the cut point is
// invisible — the continuation replays bit-identically and the split
// execution matches the straight-through one.
TEST(SnapshotProperty, SnapshotRestoreAtRandomPointsIsPathIndependent)
{
    const ModuleSpec spec = *findModuleSpec("A0");
    const ProgramFuzzer fuzzer(spec);
    Rng rng(2024);

    for (std::uint64_t index = 0; index < 6; ++index) {
        SCOPED_TRACE("fuzz program " + std::to_string(index));
        const Program whole = fuzzer.generate(11, index);
        const std::size_t cut = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<int>(whole.size())));
        Program head;
        Program tail;
        for (std::size_t i = 0; i < whole.size(); ++i)
            (i < cut ? head : tail).push(whole.instructions()[i]);

        SimBackend straight(spec, 2021);
        const BackendResult all = straight.execute(whole);

        SimBackend snapped(spec, 2021);
        const BackendResult head_result = snapped.execute(head);
        const std::uint64_t token = snapped.snapshot();
        const BackendResult tail_first = snapped.execute(tail);
        snapped.restore(token);
        const BackendResult tail_replay = snapped.execute(tail);

        // The round trip is invisible to the continuation...
        EXPECT_EQ(hashBackendReads(tail_first),
                  hashBackendReads(tail_replay));
        EXPECT_EQ(tail_first.endTime, tail_replay.endTime);

        // ...and the split run equals the straight-through run.
        BackendResult combined;
        combined.reads = head_result.reads;
        combined.reads.insert(combined.reads.end(),
                              tail_replay.reads.begin(),
                              tail_replay.reads.end());
        EXPECT_EQ(hashBackendReads(combined), hashBackendReads(all));
        EXPECT_EQ(tail_replay.endTime, all.endTime);
        expectSameAccounting(snapped.accounting(),
                             straight.accounting());
    }
}

// The bypass table is a pure function of (config, seed): running the
// campaign with one worker or four must produce byte-identical
// verdicts and the byte-identical table.
TEST(SynthProperty, BypassTableIsJobsInvariant)
{
    const std::vector<std::string> slice = {"A0",  "A5", "A9", "A12",
                                            "B13", "B9", "C12", "C7"};
    std::vector<ModuleSpec> specs;
    for (const std::string &name : slice)
        specs.push_back(*findModuleSpec(name));

    SynthCampaignConfig cfg;
    cfg.seed = 1;
    cfg.synth.attempts = 4;
    cfg.synth.positions = 2;
    cfg.synth.sweepBanks = 2;
    cfg.synth.minimizeMaxEvaluations = 12;

    cfg.jobs = 1;
    const CampaignResult serial = runSynthCampaign(specs, cfg);
    cfg.jobs = 4;
    const CampaignResult parallel = runSynthCampaign(specs, cfg);

    EXPECT_EQ(serial.verdicts().dump(), parallel.verdicts().dump());
    EXPECT_EQ(bypassTable(serial, specs).dump(),
              bypassTable(parallel, specs).dump());
}

} // namespace
} // namespace utrr
