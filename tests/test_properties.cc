#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hh"
#include "dram/refresh_engine.hh"
#include "ecc/reed_solomon.hh"
#include "runner/reveng_job.hh"
#include "trr/vendor_a.hh"
#include "trr/vendor_b.hh"
#include "trr/vendor_c.hh"

namespace utrr
{
namespace
{

// ---------------------------------------------------------------------
// Refresh engine: full coverage for arbitrary (rows, period) pairs.
// ---------------------------------------------------------------------

class RefreshEngineGrid
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(RefreshEngineGrid, EveryRowExactlyOncePerPeriod)
{
    const auto [rows, period] = GetParam();
    RefreshEngine engine(rows, period);
    std::vector<int> covered(static_cast<std::size_t>(rows), 0);
    for (int ref = 0; ref < period; ++ref) {
        for (const auto &[lo, hi] : engine.onRefresh()) {
            for (Row r = lo; r < hi; ++r)
                ++covered[static_cast<std::size_t>(r)];
        }
    }
    for (int c : covered)
        ASSERT_EQ(c, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RefreshEngineGrid,
    ::testing::Values(std::pair{64, 7}, std::pair{100, 100},
                      std::pair{1'000, 3'758}, std::pair{8'192, 8'192},
                      std::pair{65'600, 3'758}, std::pair{7, 64},
                      std::pair{1, 1}));

// ---------------------------------------------------------------------
// Vendor A table: capacity bound holds under random workloads.
// ---------------------------------------------------------------------

class VendorAWorkload : public ::testing::TestWithParam<int>
{
};

TEST_P(VendorAWorkload, TableNeverExceedsCapacity)
{
    VendorATrr trr(2);
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    for (int i = 0; i < 20'000; ++i) {
        const Bank bank = static_cast<Bank>(rng.uniformInt(0, 1));
        const Row row = static_cast<Row>(rng.uniformInt(0, 400));
        trr.onActivate(bank, row);
        if (rng.chance(0.05))
            trr.onRefresh();
        ASSERT_LE(trr.tableOf(0).size(), 16u);
        ASSERT_LE(trr.tableOf(1).size(), 16u);
    }
}

TEST_P(VendorAWorkload, DetectionsAreTrackedRows)
{
    VendorATrr trr(1);
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
    std::set<Row> activated;
    for (int i = 0; i < 5'000; ++i) {
        const Row row = static_cast<Row>(rng.uniformInt(0, 200));
        activated.insert(row);
        trr.onActivate(0, row);
        for (const auto &action : trr.onRefresh()) {
            // TRR can only ever detect a row that was activated.
            ASSERT_TRUE(activated.count(action.aggressorPhysRow))
                << action.aggressorPhysRow;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VendorAWorkload,
                         ::testing::Range(1, 9));

// ---------------------------------------------------------------------
// Vendor B/C: detections only ever name activated rows.
// ---------------------------------------------------------------------

class SamplerWorkload : public ::testing::TestWithParam<int>
{
};

TEST_P(SamplerWorkload, VendorBDetectsOnlyActivatedRows)
{
    VendorBTrr::Params params;
    params.trrRefPeriod = 2;
    VendorBTrr trr(2, params,
                   static_cast<std::uint64_t>(GetParam()));
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7 + 1);
    std::set<Row> activated;
    for (int i = 0; i < 10'000; ++i) {
        const Row row = static_cast<Row>(rng.uniformInt(0, 50));
        activated.insert(row);
        trr.onActivate(static_cast<Bank>(rng.uniformInt(0, 1)), row);
        if (rng.chance(0.02)) {
            for (const auto &action : trr.onRefresh())
                ASSERT_TRUE(activated.count(action.aggressorPhysRow));
        }
    }
}

TEST_P(SamplerWorkload, VendorCDetectsOnlyActivatedRows)
{
    VendorCTrr::Params params;
    params.trrRefPeriod = 4;
    VendorCTrr trr(1, params,
                   static_cast<std::uint64_t>(GetParam()));
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 13 + 5);
    std::set<Row> activated;
    for (int i = 0; i < 10'000; ++i) {
        const Row row = static_cast<Row>(rng.uniformInt(0, 50));
        activated.insert(row);
        trr.onActivate(0, row);
        for (const auto &action : trr.onRefresh())
            ASSERT_TRUE(activated.count(action.aggressorPhysRow));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamplerWorkload,
                         ::testing::Range(1, 7));

// ---------------------------------------------------------------------
// Reed-Solomon across a parameter grid: encode/decode round trips and
// t-error correction for every configuration.
// ---------------------------------------------------------------------

class RsGrid : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(RsGrid, RoundTripAndCorrection)
{
    const auto [n, k] = GetParam();
    const ReedSolomon rs(n, k);
    Rng rng(static_cast<std::uint64_t>(n * 1'000 + k));

    for (int trial = 0; trial < 10; ++trial) {
        std::vector<Gf256::Elem> data;
        for (int i = 0; i < k; ++i) {
            data.push_back(
                static_cast<Gf256::Elem>(rng.uniformInt(0, 255)));
        }
        const auto codeword = rs.encode(data);
        ASSERT_EQ(rs.decode(codeword).status,
                  RsDecodeResult::Status::kClean);

        if (rs.t() == 0)
            continue;
        auto received = codeword;
        std::set<int> positions;
        while (static_cast<int>(positions.size()) < rs.t()) {
            positions.insert(
                static_cast<int>(rng.uniformInt(0, n - 1)));
        }
        for (int pos : positions) {
            received[static_cast<std::size_t>(pos)] ^=
                static_cast<Gf256::Elem>(rng.uniformInt(1, 255));
        }
        const RsDecodeResult result = rs.decode(received);
        ASSERT_EQ(result.status, RsDecodeResult::Status::kCorrected);
        ASSERT_EQ(result.codeword, codeword);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RsGrid,
    ::testing::Values(std::pair{10, 8}, std::pair{12, 8},
                      std::pair{15, 8}, std::pair{22, 8},
                      std::pair{255, 223}, std::pair{20, 4},
                      std::pair{9, 8}, std::pair{64, 32}));

// ---------------------------------------------------------------------
// Campaign runner: for random (seed, module) pairs across all three
// vendors, the identification verdict matches the spec's ground truth
// and a same-seed re-run reproduces the campaign bit for bit.
// ---------------------------------------------------------------------

class RunnerProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(RunnerProperty, VerdictMatchesGroundTruthAndReproduces)
{
    const auto seed = static_cast<std::uint64_t>(GetParam());
    // Seed-derived module pick, cycling through vendors A/B/C so the
    // parameter range as a whole covers all three.
    Rng pick(seed * 9'176'263 + 11);
    const char vendor = "ABC"[seed % 3];
    std::vector<const ModuleSpec *> candidates;
    for (const ModuleSpec &spec : allModuleSpecs()) {
        if (spec.name.front() == vendor)
            candidates.push_back(&spec);
    }
    ASSERT_FALSE(candidates.empty());
    const ModuleSpec &spec = *candidates[static_cast<std::size_t>(
        pick.uniformInt(0, static_cast<int>(candidates.size()) - 1))];

    IdentifyJobConfig job_config = IdentifyJobConfig::battery();
    job_config.reveng.scoutRowEnd = 2 * 1024;
    job_config.reveng.wideScoutRowEnd = 16 * 1024;
    job_config.reveng.consistencyChecks = 8;
    // Vendor C's 1/17 ratio needs the full battery iteration count to
    // resolve a dominant period; fewer misidentifies some seeds.
    job_config.reveng.periodIterations = 64;
    const JobFn job = makeIdentifyJob(job_config);

    // Campaign seed varies per parameter; the die seed stays the
    // calibrated battery default — identification robustness across
    // arbitrary dies is a physics-calibration axis, not a runner
    // property (some dies defeat the narrowed scout windows used
    // here even fault-free).
    CampaignConfig config;
    config.jobs = 1;
    config.seed = seed;
    const CampaignResult first =
        CampaignRunner(config).run({spec}, job);

    ASSERT_EQ(first.modules.size(), 1u);
    EXPECT_TRUE(first.allOk()) << spec.name;
    const Json &verdict = first.modules.front().verdict;
    const TrrTraits truth = spec.traits();
    EXPECT_EQ(verdict.find("period")->asInt(), truth.trrToRefPeriod)
        << spec.name;
    EXPECT_EQ(verdict.find("neighbours")->asInt(),
              spec.paired() ? 1 : truth.neighborsRefreshed)
        << spec.name;

    // Same seed, same campaign — the re-run must reproduce exactly.
    const CampaignResult second =
        CampaignRunner(config).run({spec}, job);
    EXPECT_EQ(first.verdicts().dump(), second.verdicts().dump());
    std::map<std::string, std::uint64_t> counters_first;
    for (const auto &[name, c] :
         first.modules.front().metrics.counters())
        counters_first[name] = c.value;
    std::map<std::string, std::uint64_t> counters_second;
    for (const auto &[name, c] :
         second.modules.front().metrics.counters())
        counters_second[name] = c.value;
    EXPECT_EQ(counters_first, counters_second);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RunnerProperty,
                         ::testing::Range(1, 7));

} // namespace
} // namespace utrr
