#include <gtest/gtest.h>

#include <set>

#include "common/logging.hh"
#include "dram/module_spec.hh"

namespace utrr
{
namespace
{

TEST(ModuleSpecs, Exactly45Modules)
{
    EXPECT_EQ(allModuleSpecs().size(), 45u);
}

TEST(ModuleSpecs, FifteenPerVendor)
{
    int a = 0;
    int b = 0;
    int c = 0;
    for (const ModuleSpec &spec : allModuleSpecs()) {
        a += spec.vendor == 'A' ? 1 : 0;
        b += spec.vendor == 'B' ? 1 : 0;
        c += spec.vendor == 'C' ? 1 : 0;
    }
    EXPECT_EQ(a, 15);
    EXPECT_EQ(b, 15);
    EXPECT_EQ(c, 15);
}

TEST(ModuleSpecs, NamesUniqueAndLookupWorks)
{
    std::set<std::string> names;
    for (const ModuleSpec &spec : allModuleSpecs())
        names.insert(spec.name);
    EXPECT_EQ(names.size(), 45u);

    const auto a5 = findModuleSpec("A5");
    ASSERT_TRUE(a5.has_value());
    EXPECT_EQ(a5->vendor, 'A');
    EXPECT_FALSE(findModuleSpec("Z9").has_value());
}

TEST(ModuleSpecs, Table1HeadlineRows)
{
    const ModuleSpec a0 = *findModuleSpec("A0");
    EXPECT_EQ(a0.date, "19-50");
    EXPECT_EQ(a0.banks, 16);
    EXPECT_EQ(a0.pins, 8);
    EXPECT_EQ(a0.trr, TrrVersion::kATrr1);
    EXPECT_DOUBLE_EQ(a0.hcFirst, 16'000);

    const ModuleSpec b7 = *findModuleSpec("B7");
    EXPECT_EQ(b7.ranks, 2);
    EXPECT_EQ(b7.trr, TrrVersion::kBTrr1);
    EXPECT_DOUBLE_EQ(b7.paperMaxFlipsPerHammer, 31.14);

    const ModuleSpec c12 = *findModuleSpec("C12");
    EXPECT_EQ(c12.chipDensityGbit, 16);
    EXPECT_EQ(c12.trr, TrrVersion::kCTrr3);
}

TEST(ModuleSpecs, BankCountDeterminesRows)
{
    for (const ModuleSpec &spec : allModuleSpecs()) {
        if (spec.banks == 16)
            EXPECT_EQ(spec.rowsPerBank, 32 * 1024) << spec.name;
        else
            EXPECT_EQ(spec.rowsPerBank, 64 * 1024) << spec.name;
    }
}

TEST(ModuleSpecs, VendorARefreshesFasterThanSpec)
{
    // Obs. A8.
    for (const ModuleSpec &spec : allModuleSpecs()) {
        if (spec.vendor == 'A')
            EXPECT_EQ(spec.refreshPeriodRefs, 3'758) << spec.name;
        else
            EXPECT_EQ(spec.refreshPeriodRefs, 8'192) << spec.name;
    }
}

TEST(ModuleSpecs, PairedOnlyForCTrr1)
{
    for (const ModuleSpec &spec : allModuleSpecs()) {
        EXPECT_EQ(spec.paired(), spec.trr == TrrVersion::kCTrr1)
            << spec.name;
    }
    // C0-8 implement C_TRR1 (Table 1).
    for (int i = 0; i <= 8; ++i) {
        EXPECT_TRUE(findModuleSpec(logFmt("C", i))->paired());
    }
    EXPECT_FALSE(findModuleSpec("C9")->paired());
}

TEST(ModuleSpecs, TraitsMatchTable1Columns)
{
    EXPECT_EQ(trrTraits(TrrVersion::kATrr1).trrToRefPeriod, 9);
    EXPECT_EQ(trrTraits(TrrVersion::kATrr1).neighborsRefreshed, 4);
    EXPECT_EQ(trrTraits(TrrVersion::kATrr1).aggressorCapacity, 16);
    EXPECT_TRUE(trrTraits(TrrVersion::kATrr1).perBank);

    EXPECT_EQ(trrTraits(TrrVersion::kATrr2).neighborsRefreshed, 2);

    EXPECT_EQ(trrTraits(TrrVersion::kBTrr1).trrToRefPeriod, 4);
    EXPECT_EQ(trrTraits(TrrVersion::kBTrr1).aggressorCapacity, 1);
    EXPECT_FALSE(trrTraits(TrrVersion::kBTrr1).perBank);
    EXPECT_EQ(trrTraits(TrrVersion::kBTrr2).trrToRefPeriod, 9);
    EXPECT_EQ(trrTraits(TrrVersion::kBTrr3).trrToRefPeriod, 2);
    EXPECT_EQ(trrTraits(TrrVersion::kBTrr3).neighborsRefreshed, 4);
    EXPECT_TRUE(trrTraits(TrrVersion::kBTrr3).perBank);

    EXPECT_EQ(trrTraits(TrrVersion::kCTrr1).trrToRefPeriod, 17);
    EXPECT_EQ(trrTraits(TrrVersion::kCTrr2).trrToRefPeriod, 9);
    EXPECT_EQ(trrTraits(TrrVersion::kCTrr3).trrToRefPeriod, 8);
}

TEST(ModuleSpecs, HcFirstRangesPerTable1)
{
    // Spot-check the HC_first ranges of grouped rows.
    for (int i = 1; i <= 5; ++i) {
        const double hc =
            findModuleSpec(logFmt("A", i))->hcFirst;
        EXPECT_GE(hc, 13'000);
        EXPECT_LE(hc, 15'000);
    }
    for (int i = 1; i <= 4; ++i) {
        const double hc =
            findModuleSpec(logFmt("B", i))->hcFirst;
        EXPECT_GE(hc, 159'000);
        EXPECT_LE(hc, 192'000);
    }
    for (int i = 12; i <= 14; ++i) {
        const double hc =
            findModuleSpec(logFmt("C", i))->hcFirst;
        EXPECT_GE(hc, 6'000);
        EXPECT_LE(hc, 7'000);
    }
}

TEST(ModuleSpecs, VersionNames)
{
    EXPECT_EQ(trrVersionName(TrrVersion::kATrr1), "A_TRR1");
    EXPECT_EQ(trrVersionName(TrrVersion::kBTrr3), "B_TRR3");
    EXPECT_EQ(trrVersionName(TrrVersion::kCTrr2), "C_TRR2");
    EXPECT_EQ(trrVersionName(TrrVersion::kNone), "none");
}

} // namespace
} // namespace utrr
