#include <gtest/gtest.h>

#include <sstream>

#include "core/row_scout.hh"
#include "core/trr_analyzer.hh"
#include "dram/module.hh"
#include "obs/json.hh"
#include "obs/trace.hh"
#include "softmc/host.hh"

namespace utrr
{
namespace
{

TEST(CommandTrace, DisabledByDefault)
{
    CommandTrace trace;
    EXPECT_FALSE(trace.enabled());
    EXPECT_EQ(trace.capacity(), 0u);
    trace.record(TraceKind::kAct, 0, 42, 100, 35);
    trace.beginPhase("ignored", 0);
    EXPECT_EQ(trace.size(), 0u);
    EXPECT_EQ(trace.recorded(), 0u);
}

TEST(CommandTrace, RecordsEventsInOrder)
{
    CommandTrace trace(16);
    trace.record(TraceKind::kAct, 1, 7, 0, 35);
    trace.record(TraceKind::kPre, 1, kInvalidRow, 35, 15);
    trace.record(TraceKind::kRef, 0, kInvalidRow, 50, 350);

    const auto events = trace.events();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].kind, TraceKind::kAct);
    EXPECT_EQ(events[0].bank, 1);
    EXPECT_EQ(events[0].row, 7);
    EXPECT_EQ(events[1].kind, TraceKind::kPre);
    EXPECT_EQ(events[2].kind, TraceKind::kRef);
    EXPECT_EQ(events[2].duration, 350);
}

TEST(CommandTrace, ContentHashStableAndOrderSensitive)
{
    // The hash is the determinism-oracle surface of the fuzz harness:
    // equal iff same events in same order.
    CommandTrace a(16);
    a.record(TraceKind::kAct, 1, 7, 0, 35);
    a.record(TraceKind::kPre, 1, kInvalidRow, 35, 15);

    CommandTrace b(16);
    b.record(TraceKind::kAct, 1, 7, 0, 35);
    b.record(TraceKind::kPre, 1, kInvalidRow, 35, 15);
    EXPECT_EQ(a.contentHash(), b.contentHash());

    // Swapped order must hash differently.
    CommandTrace c(16);
    c.record(TraceKind::kPre, 1, kInvalidRow, 35, 15);
    c.record(TraceKind::kAct, 1, 7, 0, 35);
    EXPECT_NE(a.contentHash(), c.contentHash());

    // Any field perturbation must hash differently.
    CommandTrace d(16);
    d.record(TraceKind::kAct, 1, 8, 0, 35);
    d.record(TraceKind::kPre, 1, kInvalidRow, 35, 15);
    EXPECT_NE(a.contentHash(), d.contentHash());

    EXPECT_EQ(CommandTrace(16).contentHash(),
              CommandTrace(8).contentHash());
}

TEST(CommandTrace, ContentHashIndependentOfRingPosition)
{
    // Two traces holding the same surviving events must hash equal
    // even when one of them wrapped (the hash walks oldest-first, not
    // buffer order).
    CommandTrace wrapped(2);
    wrapped.record(TraceKind::kAct, 0, 1, 0, 35);  // evicted
    wrapped.record(TraceKind::kAct, 0, 2, 35, 35);
    wrapped.record(TraceKind::kPre, 0, kInvalidRow, 70, 15);

    CommandTrace fresh(2);
    fresh.record(TraceKind::kAct, 0, 2, 35, 35);
    fresh.record(TraceKind::kPre, 0, kInvalidRow, 70, 15);

    EXPECT_EQ(wrapped.contentHash(), fresh.contentHash());
}

TEST(CommandTrace, RingWrapsAroundKeepingNewest)
{
    CommandTrace trace(8);
    for (int i = 0; i < 20; ++i) {
        trace.record(TraceKind::kAct, 0, static_cast<Row>(i),
                     static_cast<Time>(i) * 50, 35);
    }
    EXPECT_EQ(trace.size(), 8u);
    EXPECT_EQ(trace.recorded(), 20u);
    EXPECT_EQ(trace.dropped(), 12u);

    // Oldest-first unwrap: rows 12..19 in order.
    const auto events = trace.events();
    ASSERT_EQ(events.size(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(events[static_cast<std::size_t>(i)].row, 12 + i);
}

TEST(CommandTrace, ClearKeepsCapacity)
{
    CommandTrace trace(4);
    trace.record(TraceKind::kAct, 0, 1, 0, 35);
    trace.clear();
    EXPECT_TRUE(trace.enabled());
    EXPECT_EQ(trace.size(), 0u);
    trace.record(TraceKind::kAct, 0, 2, 0, 35);
    EXPECT_EQ(trace.events().front().row, 2);
}

TEST(CommandTrace, MergeFromCopiesEventsAndReInternsPhases)
{
    CommandTrace source(8);
    source.beginPhase("hammer", 0);
    source.record(TraceKind::kAct, 1, 7, 10, 35);
    source.endPhase("hammer", 100);

    CommandTrace sink(16);
    sink.record(TraceKind::kRef, 0, kInvalidRow, 0, 350);
    sink.mergeFrom(source);

    const auto events = sink.events();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0].kind, TraceKind::kRef);
    EXPECT_EQ(events[2].kind, TraceKind::kAct);
    EXPECT_EQ(events[2].row, 7);
    // Phase names survive the merge even after the source dies.
    ASSERT_NE(events[1].phase, nullptr);
    EXPECT_STREQ(events[1].phase, "hammer");

    // Merging into a disabled trace stays a no-op.
    CommandTrace disabled;
    disabled.mergeFrom(source);
    EXPECT_EQ(disabled.size(), 0u);
}

TEST(CommandTrace, TextListingMentionsEveryEvent)
{
    CommandTrace trace(8);
    trace.record(TraceKind::kAct, 2, 99, 0, 35);
    trace.beginPhase("hammer", 35);
    trace.record(TraceKind::kRef, 0, kInvalidRow, 40, 350);
    trace.endPhase("hammer", 400);

    const std::string text = trace.text();
    EXPECT_NE(text.find("ACT"), std::string::npos);
    EXPECT_NE(text.find("REF"), std::string::npos);
    EXPECT_NE(text.find("hammer"), std::string::npos);
    EXPECT_NE(text.find("99"), std::string::npos);
}

TEST(CommandTrace, ChromeTraceRoundTripsThroughJsonParser)
{
    CommandTrace trace(64);
    trace.beginPhase("experiment", 0);
    trace.record(TraceKind::kAct, 3, 123, 10, 35);
    trace.record(TraceKind::kPre, 3, kInvalidRow, 45, 15);
    trace.record(TraceKind::kRef, 0, kInvalidRow, 60, 350);
    trace.endPhase("experiment", 410);

    std::ostringstream os;
    trace.exportChromeTrace(os);
    const auto doc = Json::parse(os.str());
    ASSERT_TRUE(doc.has_value());

    const Json *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->size(), 5u);

    // Phase begin/end plus "X" duration slices; per-bank tid tracks.
    int begins = 0;
    int ends = 0;
    int slices = 0;
    for (std::size_t i = 0; i < events->size(); ++i) {
        const Json &event = events->at(i);
        const std::string ph = event.find("ph")->asString();
        if (ph == "B")
            ++begins;
        else if (ph == "E")
            ++ends;
        else if (ph == "X")
            ++slices;
    }
    EXPECT_EQ(begins, 1);
    EXPECT_EQ(ends, 1);
    EXPECT_EQ(slices, 3);

    // The ACT slice carries its bank track and row argument.
    bool act_found = false;
    for (std::size_t i = 0; i < events->size(); ++i) {
        const Json &event = events->at(i);
        if (event.find("name")->asString() != "ACT")
            continue;
        act_found = true;
        EXPECT_EQ(event.find("tid")->asInt(), 3 + 1);
        const Json *args = event.find("args");
        ASSERT_NE(args, nullptr);
        EXPECT_EQ(args->find("row")->asInt(), 123);
    }
    EXPECT_TRUE(act_found);
}

ModuleSpec
smallSpec(TrrVersion trr)
{
    ModuleSpec spec = *findModuleSpec("A5");
    spec.trr = trr;
    spec.rowsPerBank = 4 * 1024;
    spec.banks = 1;
    spec.remapsPerBank = 0;
    spec.scramble = RowScramble::kSequential;
    return spec;
}

/**
 * Acceptance criterion: a Chrome trace from a real TRR Analyzer run
 * parses as valid JSON, contains ACT and REF events, and its timestamps
 * are monotonically non-decreasing.
 */
TEST(CommandTrace, TrrAnalyzerRunExportsValidMonotonicChromeTrace)
{
    DramModule module(smallSpec(TrrVersion::kATrr1), 41);
    SoftMcHost host(module);
    host.trace().enable(1 << 16);

    const DiscoveredMapping mapping =
        DiscoveredMapping::identity(module.spec().rowsPerBank);
    RowScoutConfig scout_cfg;
    scout_cfg.rowEnd = 2'048;
    scout_cfg.layout = RowGroupLayout::parse("R-R");
    scout_cfg.groupCount = 1;
    scout_cfg.consistencyChecks = 15;
    RowScout scout(host, mapping, scout_cfg);
    const auto groups = scout.scout();
    ASSERT_FALSE(groups.empty());

    TrrAnalyzer analyzer(host, mapping);
    TrrExperimentConfig cfg;
    cfg.aggressors = {{groups.front().gapPhysRows().front(), 3'000}};
    cfg.reset = TrrResetMode::kDummyHammer;
    cfg.resetRefs = 128;
    cfg.rounds = 4;
    analyzer.runExperiment(groups.front(), cfg);

    std::ostringstream os;
    host.trace().exportChromeTrace(os);
    const auto doc = Json::parse(os.str());
    ASSERT_TRUE(doc.has_value()) << "trace is not valid JSON";

    const Json *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_GT(events->size(), 0u);

    bool has_act = false;
    bool has_ref = false;
    double last_ts = -1.0;
    for (std::size_t i = 0; i < events->size(); ++i) {
        const Json &event = events->at(i);
        const std::string name = event.find("name")->asString();
        has_act = has_act || name == "ACT";
        has_ref = has_ref || name == "REF";
        const double ts = event.find("ts")->asNumber();
        EXPECT_GE(ts, last_ts) << "timestamp regression at event " << i;
        last_ts = ts;
    }
    EXPECT_TRUE(has_act);
    EXPECT_TRUE(has_ref);
}

} // namespace
} // namespace utrr
