#include <gtest/gtest.h>

#include "dram/module.hh"
#include "dram/timing.hh"

namespace utrr
{
namespace
{

ModuleSpec
smallSpec(TrrVersion trr = TrrVersion::kNone)
{
    ModuleSpec spec = *findModuleSpec("A5");
    spec.trr = trr;
    spec.rowsPerBank = 4 * 1024;
    spec.banks = 2;
    spec.remapsPerBank = 0;
    spec.scramble = RowScramble::kSequential;
    return spec;
}

TEST(DramModule, WriteReadRoundTrip)
{
    DramModule module(smallSpec(), 1);
    module.act(0, 100, 0);
    module.wr(0, DataPattern::checkerboard(), 0);
    const RowReadout readout = module.rd(0);
    module.pre(0, 0);
    EXPECT_EQ(readout.countFlipsVs(DataPattern::checkerboard(), 100), 0);
    EXPECT_NE(readout.countFlipsVs(DataPattern::allZeros(), 100), 0);
}

TEST(DramModule, LogicalPhysicalTranslation)
{
    ModuleSpec spec = smallSpec();
    spec.scramble = RowScramble::kSwapHalfPairs;
    DramModule module(spec, 1);
    EXPECT_EQ(module.toPhysical(0, 2), 3);
    EXPECT_EQ(module.toLogical(0, 3), 2);
    // ACT of logical 2 opens physical 3.
    module.act(0, 2, 0);
    EXPECT_EQ(module.bankAt(0).openRow(), 3);
    module.pre(0, 0);
}

TEST(DramModule, RegularRefreshKeepsDataAlive)
{
    DramModule module(smallSpec(), 2);
    module.act(0, 50, 0);
    module.wr(0, DataPattern::allOnes(), 0);
    module.pre(0, 0);

    // REF at the default rate for 10 seconds of simulated time: no row
    // may decay.
    Time now = 0;
    const Timing timing;
    while (now < 10 * kNsPerSec) {
        module.ref(now);
        now += timing.tREFI;
    }
    module.act(0, 50, now);
    const RowReadout readout = module.rd(0);
    module.pre(0, now);
    EXPECT_EQ(readout.countFlipsVs(DataPattern::allOnes(), 50), 0);
}

TEST(DramModule, WithoutRefreshWeakRowsDecay)
{
    DramModule module(smallSpec(), 3);
    int failing = 0;
    const Time wait = msToNs(3'000);
    for (Row r = 0; r < 400; ++r) {
        module.act(0, r, 0);
        module.wr(0, DataPattern::allOnes(), 0);
        module.pre(0, 0);
    }
    for (Row r = 0; r < 400; ++r) {
        module.act(0, r, wait);
        const RowReadout readout = module.rd(0);
        module.pre(0, wait);
        if (readout.countFlipsVs(DataPattern::allOnes(), r) > 0)
            ++failing;
    }
    // With ~55% weak rows (retention <= 2.5 s), a large fraction fails
    // after 3 s.
    EXPECT_GT(failing, 120);
    EXPECT_LT(failing, 350);
}

TEST(DramModule, TrrRefreshesVictimsOfDetectedAggressor)
{
    // White-box: with vendor A TRR, hammering one row and issuing REFs
    // must trigger TRR-induced refreshes.
    DramModule module(smallSpec(TrrVersion::kATrr1), 4);
    for (int i = 0; i < 100; ++i) {
        module.act(0, 500, i);
        module.pre(0, i);
    }
    EXPECT_EQ(module.trrRefreshCount(), 0u);
    for (int ref = 0; ref < 18; ++ref)
        module.ref(1'000 + ref);
    // A_TRR1 refreshes 4 neighbours per detection; TREF_a + TREF_b
    // both detected row 500 within 18 REFs.
    EXPECT_GE(module.trrRefreshCount(), 4u);
}

TEST(DramModule, TrrVictimExpansionRespectsVersion)
{
    // A_TRR2 refreshes only +-1 (2 rows per detection).
    DramModule module(smallSpec(TrrVersion::kATrr2), 5);
    for (int i = 0; i < 100; ++i) {
        module.act(0, 500, i);
        module.pre(0, i);
    }
    for (int ref = 0; ref < 9; ++ref)
        module.ref(1'000 + ref);
    EXPECT_EQ(module.trrRefreshCount(), 2u);
}

TEST(DramModule, RefPrechargeProtocolEnforced)
{
    DramModule module(smallSpec(), 6);
    module.act(0, 1, 0);
    EXPECT_DEATH(module.ref(10), "REF with bank");
    module.pre(0, 0);
    module.ref(10);
}

TEST(DramModule, RefsUntilRegularRefreshMatchesGroundTruth)
{
    DramModule module(smallSpec(), 7);
    module.act(0, 200, 0);
    module.wr(0, DataPattern::allOnes(), 0);
    module.pre(0, 0);

    const Row phys = module.toPhysical(0, 200);
    const int wait = module.refsUntilRegularRefresh(phys);
    ASSERT_GE(wait, 0);
    ASSERT_LT(wait, module.regularRefreshPeriod());

    for (int i = 0; i < wait; ++i)
        module.ref(i);
    const Time before = module.bankAt(0).peekRow(phys)->lastRefresh();
    module.ref(10'000);
    EXPECT_EQ(module.bankAt(0).peekRow(phys)->lastRefresh(), 10'000);
    EXPECT_EQ(before, 0);
}

TEST(DramModule, ResetTrrStateClearsDetection)
{
    DramModule module(smallSpec(TrrVersion::kATrr1), 8);
    for (int i = 0; i < 100; ++i) {
        module.act(0, 500, i);
        module.pre(0, i);
    }
    module.resetTrrState();
    for (int ref = 0; ref < 36; ++ref)
        module.ref(1'000 + ref);
    EXPECT_EQ(module.trrRefreshCount(), 0u);
}

TEST(DramModule, PairedModuleRefreshesOnlyPairRow)
{
    ModuleSpec spec = smallSpec(TrrVersion::kCTrr1);
    DramModule module(spec, 9);
    ASSERT_TRUE(spec.paired());
    // Hammer an odd row a lot; its pair (even) row is the only victim.
    for (int i = 0; i < 4'000; ++i) {
        module.act(0, 501, i);
        module.pre(0, i);
    }
    for (int ref = 0; ref < 17; ++ref)
        module.ref(10'000 + ref);
    EXPECT_EQ(module.trrRefreshCount(), 1u);
}

} // namespace
} // namespace utrr
