#include <gtest/gtest.h>

#include "attack/sweep.hh"
#include "dram/module.hh"
#include "mitigation/blockhammer.hh"
#include "mitigation/graphene.hh"
#include "mitigation/para.hh"
#include "softmc/host.hh"

namespace utrr
{
namespace
{

TEST(Para, RefreshRateMatchesProbability)
{
    Para::Params params;
    params.probability = 0.01;
    Para para(params, 1);
    int triggered = 0;
    for (int i = 0; i < 50'000; ++i) {
        if (!para.onActivate(0, 100, 0).refreshRows.empty())
            ++triggered;
    }
    EXPECT_NEAR(triggered / 50'000.0, 0.01, 0.002);
    EXPECT_EQ(para.refreshesOrdered(),
              static_cast<std::uint64_t>(2 * triggered));
}

TEST(Para, BlastRadiusTwoRefreshesFourRows)
{
    Para::Params params;
    params.probability = 1.0;
    params.blastRadius = 2;
    Para para(params, 2);
    const MitigationAction action = para.onActivate(0, 100, 0);
    EXPECT_EQ(action.refreshRows,
              (std::vector<Row>{99, 101, 98, 102}));
}

TEST(Para, ResetRestoresDeterminism)
{
    Para::Params params;
    params.probability = 0.25;
    Para para(params, 3);
    std::vector<bool> first;
    for (int i = 0; i < 100; ++i)
        first.push_back(!para.onActivate(0, 1, 0).refreshRows.empty());
    para.reset();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(!para.onActivate(0, 1, 0).refreshRows.empty(),
                  first[static_cast<std::size_t>(i)]);
}

TEST(Graphene, ThresholdTriggersNeighbourRefresh)
{
    Graphene::Params params;
    params.threshold = 100;
    Graphene graphene(1, params);
    int refreshes = 0;
    for (int i = 0; i < 250; ++i) {
        if (!graphene.onActivate(0, 500, 0).refreshRows.empty())
            ++refreshes;
    }
    // 250 ACTs with threshold 100: triggered at 100 and 200.
    EXPECT_EQ(refreshes, 2);
}

TEST(Graphene, MisraGriesGuarantee)
{
    // No row can be hammered far beyond threshold + W/N without a
    // refresh, regardless of how many decoy rows the attacker mixes in.
    Graphene::Params params;
    params.tableEntries = 16;
    params.threshold = 500;
    Graphene graphene(1, params);

    int aggressor_refreshes = 0;
    int total_acts = 0;
    for (int round = 0; round < 2'000; ++round) {
        // Attacker: hammer the aggressor a few times, then lots of
        // decoys (the anti-vendor-A pattern).
        for (int i = 0; i < 24; ++i) {
            ++total_acts;
            if (!graphene.onActivate(0, 777, 0).refreshRows.empty())
                ++aggressor_refreshes;
        }
        for (Row decoy = 0; decoy < 16; ++decoy) {
            for (int i = 0; i < 6; ++i) {
                ++total_acts;
                graphene.onActivate(0, 10'000 + decoy * 200, 0);
            }
        }
    }
    // 48K aggressor ACTs; bound: every threshold + W/N ACTs at worst.
    const int bound = params.threshold + total_acts / params.tableEntries;
    EXPECT_GE(aggressor_refreshes, 2'000 * 24 / bound);
}

TEST(Graphene, WindowResetClearsCounts)
{
    Graphene::Params params;
    params.threshold = 1'000;
    params.windowRefs = 4;
    Graphene graphene(1, params);
    for (int i = 0; i < 500; ++i)
        graphene.onActivate(0, 9, 0);
    EXPECT_EQ(graphene.countOf(0, 9), 500);
    for (int ref = 0; ref < 4; ++ref)
        graphene.onRefresh(0);
    EXPECT_EQ(graphene.countOf(0, 9), 0);
}

TEST(Graphene, PerBankTables)
{
    Graphene::Params params;
    Graphene graphene(2, params);
    for (int i = 0; i < 10; ++i)
        graphene.onActivate(0, 9, 0);
    EXPECT_EQ(graphene.countOf(0, 9), 10);
    EXPECT_EQ(graphene.countOf(1, 9), 0);
}

TEST(BlockHammer, EstimatesActivationCounts)
{
    BlockHammer::Params params;
    BlockHammer bh(1, params);
    for (int i = 0; i < 300; ++i)
        bh.onActivate(0, 42, 0);
    EXPECT_GE(bh.estimateOf(0, 42), 300);
    EXPECT_FALSE(bh.isBlacklisted(0, 42));
}

TEST(BlockHammer, BlacklistedRowsGetThrottled)
{
    BlockHammer::Params params;
    params.blacklistThreshold = 100;
    params.maxActsPerWindow = 1'000;
    params.windowNs = 1'000'000; // 1 ms window -> 1 us min gap
    BlockHammer bh(1, params);
    Time now = 0;
    Time total_delay = 0;
    for (int i = 0; i < 300; ++i) {
        const MitigationAction action = bh.onActivate(0, 42, now);
        total_delay += action.delayNs;
        now += 50 + action.delayNs;
    }
    EXPECT_TRUE(bh.isBlacklisted(0, 42));
    // 200 post-blacklist ACTs at >= 1 us spacing vs 50 ns natural.
    EXPECT_GE(total_delay, 150'000);
    EXPECT_EQ(bh.delayInjected(), total_delay);
}

TEST(BlockHammer, UnrelatedRowsUnaffected)
{
    BlockHammer::Params params;
    params.blacklistThreshold = 64;
    BlockHammer bh(1, params);
    for (int i = 0; i < 10'000; ++i)
        bh.onActivate(0, 7, 0);
    EXPECT_TRUE(bh.isBlacklisted(0, 7));
    // A different row sharing no dominant counters stays clean.
    EXPECT_EQ(bh.onActivate(0, 900'000, 0).delayNs, 0);
}

TEST(BlockHammer, WindowClearsFilters)
{
    BlockHammer::Params params;
    params.blacklistThreshold = 64;
    params.windowRefs = 2;
    BlockHammer bh(1, params);
    for (int i = 0; i < 100; ++i)
        bh.onActivate(0, 5, 0);
    EXPECT_TRUE(bh.isBlacklisted(0, 5));
    bh.onRefresh(0);
    bh.onRefresh(0);
    EXPECT_FALSE(bh.isBlacklisted(0, 5));
}

// ---------------------------------------------------------------------
// Host integration: the controller policies protect a module whose
// in-DRAM TRR the U-TRR custom pattern defeats.
// ---------------------------------------------------------------------

SweepResult
customSweepWith(ControllerMitigation *mitigation, int positions = 4)
{
    const ModuleSpec spec = *findModuleSpec("A5");
    DramModule module(spec, 91);
    SoftMcHost host(module);
    if (mitigation != nullptr)
        host.attachMitigation(mitigation);
    const DiscoveredMapping mapping(spec.scramble, spec.rowsPerBank);
    SweepConfig cfg;
    cfg.positions = positions;
    return sweepCustomPattern(host, mapping,
                              defaultCustomParams(spec), cfg);
}

TEST(MitigatedHost, CustomPatternDefeatsTrrAlone)
{
    const SweepResult unprotected = customSweepWith(nullptr);
    EXPECT_GE(unprotected.vulnerableRows, 3);
}

TEST(MitigatedHost, GrapheneBlocksTheCustomPattern)
{
    Graphene::Params params;
    params.threshold = 2'000; // well below any HC_first
    Graphene graphene(8, params);
    const SweepResult protected_sweep = customSweepWith(&graphene);
    EXPECT_EQ(protected_sweep.vulnerableRows, 0);
    EXPECT_GT(graphene.refreshesOrdered(), 0u);
}

TEST(MitigatedHost, BlockHammerThrottlesTheCustomPattern)
{
    BlockHammer::Params params;
    params.blacklistThreshold = 1'024;
    params.maxActsPerWindow = 4'096;
    BlockHammer bh(8, params);
    const SweepResult protected_sweep = customSweepWith(&bh);
    EXPECT_EQ(protected_sweep.vulnerableRows, 0);
    EXPECT_GT(bh.delayInjected(), 0);
}

TEST(MitigatedHost, ParaWithStrongProbabilityProtects)
{
    Para::Params params;
    params.probability = 0.01; // strong setting
    Para para(params, 92);
    const SweepResult protected_sweep = customSweepWith(&para);
    EXPECT_EQ(protected_sweep.vulnerableRows, 0);
}

} // namespace
} // namespace utrr
