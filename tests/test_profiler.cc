/**
 * @file
 * Hierarchical span profiler: tree shape, dual-clock attribution,
 * exclusive-time math, exporter formats, merge determinism across
 * campaign worker counts, bit-identity of instrumented simulation with
 * profiling disabled vs enabled, and the always-on substrate perf
 * counters (restore fast path, lazy hammer attaches, COW readouts,
 * trace-ring overflow).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>

#include "dram/module.hh"
#include "obs/metrics.hh"
#include "obs/profiler.hh"
#include "runner/campaign.hh"
#include "softmc/host.hh"

namespace utrr
{
namespace
{

/** Arms the profiler for one test and leaves it clean afterwards. */
class ProfilerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Profiler::instance().reset();
        Profiler::setEnabled(true);
    }

    void
    TearDown() override
    {
        Profiler::setEnabled(false);
        Profiler::instance().reset();
    }
};

const ProfileNode *
childNamed(const ProfileNode &node, const std::string &label)
{
    for (const ProfileNode &child : node.children) {
        if (child.label == label)
            return &child;
    }
    return nullptr;
}

TEST_F(ProfilerTest, NestedSpansBuildTheExpectedTree)
{
    {
        ProfSpan a("a");
        {
            ProfSpan b("b");
        }
        {
            ProfSpan b("b");
        }
    }
    {
        ProfSpan c("c");
    }

    const ProfileTree tree = Profiler::instance().collect();
    ASSERT_EQ(tree.root.children.size(), 2u);
    // Children are sorted by label: deterministic export order.
    EXPECT_EQ(tree.root.children[0].label, "a");
    EXPECT_EQ(tree.root.children[1].label, "c");

    const ProfileNode *a = childNamed(tree.root, "a");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->calls, 1u);
    const ProfileNode *b = childNamed(*a, "b");
    ASSERT_NE(b, nullptr);
    // Same label, same parent: one node, two calls.
    EXPECT_EQ(b->calls, 2u);
    EXPECT_TRUE(b->children.empty());
}

TEST_F(ProfilerTest, SimulatedTimeIsAttributedPerSpan)
{
    Time clock = 0;
    {
        ProfSpan outer("outer", &clock);
        clock += 100;
        {
            ProfSpan inner("inner", &clock);
            clock += 40;
        }
        clock += 10;
    }

    const ProfileTree tree = Profiler::instance().collect();
    const ProfileNode *outer = childNamed(tree.root, "outer");
    ASSERT_NE(outer, nullptr);
    EXPECT_EQ(outer->simNs, 150);
    const ProfileNode *inner = childNamed(*outer, "inner");
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(inner->simNs, 40);
    // Exclusive = inclusive minus children-inclusive.
    EXPECT_EQ(outer->exclusiveSimNs(), 110);
    EXPECT_EQ(inner->exclusiveSimNs(), 40);
}

TEST_F(ProfilerTest, ExclusiveTimeClampsWhenChildrenExceedParent)
{
    // Children measured longer than the parent (possible when a child
    // span is still open at collect() time): exclusive clamps at zero
    // rather than wrapping the unsigned subtraction.
    ProfileNode parent;
    parent.wallNs = 50;
    parent.simNs = 50;
    ProfileNode child;
    child.wallNs = 80;
    child.simNs = 80;
    parent.children.push_back(child);
    EXPECT_EQ(parent.exclusiveWallNs(), 0u);
    EXPECT_EQ(parent.exclusiveSimNs(), 0);
}

TEST_F(ProfilerTest, RootAnchoredSpanIgnoresTheCurrentNesting)
{
    {
        ProfSpan outer("outer");
        ProfSpan rooted("rooted", nullptr, ProfSpan::kAtRoot);
    }
    const ProfileTree tree = Profiler::instance().collect();
    // "rooted" is a top-level sibling of "outer", not its child.
    EXPECT_NE(childNamed(tree.root, "rooted"), nullptr);
    const ProfileNode *outer = childNamed(tree.root, "outer");
    ASSERT_NE(outer, nullptr);
    EXPECT_EQ(childNamed(*outer, "rooted"), nullptr);
}

TEST_F(ProfilerTest, DisabledProfilerRecordsNothing)
{
    Profiler::setEnabled(false);
    {
        ProfSpan a("a");
        UTRR_PROF_SCOPE("b");
    }
    EXPECT_TRUE(Profiler::instance().collect().empty());
}

TEST_F(ProfilerTest, ResetDropsAllRecordedSpans)
{
    {
        ProfSpan a("a");
    }
    EXPECT_FALSE(Profiler::instance().collect().empty());
    Profiler::instance().reset();
    EXPECT_TRUE(Profiler::instance().collect().empty());
}

TEST_F(ProfilerTest, FoldedSimOutputIsTheExpectedFormat)
{
    Time clock = 0;
    {
        ProfSpan a("a", &clock);
        clock += 100;
        {
            ProfSpan b("b", &clock);
            clock += 40;
        }
    }
    std::ostringstream folded;
    Profiler::instance().collect().foldedSim(folded);
    // One "path value" line per node with non-zero exclusive sim time.
    EXPECT_EQ(folded.str(), "a 100\na;b 40\n");
}

TEST_F(ProfilerTest, TableRanksByExclusiveWallTime)
{
    {
        ProfSpan a("alpha");
    }
    const std::string table = Profiler::instance().collect().table();
    EXPECT_NE(table.find("exclusive wall time"), std::string::npos);
    EXPECT_NE(table.find("alpha"), std::string::npos);
}

TEST_F(ProfilerTest, TableTruncationFooterCountsTheHiddenRows)
{
    ProfileTree tree;
    for (const char *label : {"aa", "bb", "cc"}) {
        ProfileNode node;
        node.label = label;
        node.calls = 1;
        node.wallNs = 1'000'000;
        tree.root.children.push_back(std::move(node));
    }
    // Exactly max_rows entries: every row printed, no footer.
    EXPECT_EQ(tree.table(3).find("more"), std::string::npos);
    // One entry over the cap — the historical off-by-one — must still
    // print the footer, with the true hidden count.
    const std::string truncated = tree.table(2);
    EXPECT_NE(truncated.find("... 1 more"), std::string::npos);
    EXPECT_EQ(truncated.find("cc"), std::string::npos);
}

TEST_F(ProfilerTest, ExitedThreadSlotsAreReused)
{
    const auto spanOnFreshThread = []() {
        std::thread([]() {
            ProfSpan span("worker.span");
        }).join();
    };
    spanOnFreshThread();
    const std::size_t slots = Profiler::instance().threadCount();
    // A process running many campaigns spawns fresh workers per run;
    // exited threads hand their slot back, so the registry stays at
    // the peak concurrent count instead of growing per thread spawned.
    for (int i = 0; i < 8; ++i)
        spanOnFreshThread();
    EXPECT_EQ(Profiler::instance().threadCount(), slots);
    // Recorded data survives the hand-back until reset().
    const ProfileTree tree = Profiler::instance().collect();
    const ProfileNode *span = childNamed(tree.root, "worker.span");
    ASSERT_NE(span, nullptr);
    EXPECT_EQ(span->calls, 9u);
}

/**
 * Deterministic projection of a profile tree: every path with its call
 * count and inclusive simulated time (wall time is schedule-dependent
 * and excluded on purpose).
 */
void
simProjection(const ProfileNode &node, const std::string &prefix,
              std::ostream &os)
{
    for (const ProfileNode &child : node.children) {
        const std::string path =
            prefix.empty() ? child.label : prefix + ";" + child.label;
        os << path << " calls=" << child.calls << " sim=" << child.simNs
           << "\n";
        simProjection(child, path, os);
    }
}

std::string
campaignProfile(int jobs)
{
    Profiler::instance().reset();
    CampaignConfig config;
    config.jobs = jobs;
    config.seed = 7;
    CampaignRunner runner(config);
    std::vector<ModuleSpec> specs;
    for (const char *name : {"A0", "B0", "C0", "A5"})
        specs.push_back(*findModuleSpec(name));
    const CampaignResult result =
        runner.run(specs, [](JobContext &ctx) {
            ctx.host.hammer(0, 1'000, 200);
            ctx.host.refBurst(16);
            JobOutcome outcome;
            outcome.ok = true;
            outcome.verdict = Json::object();
            return outcome;
        });
    EXPECT_TRUE(result.allOk());

    std::ostringstream os;
    simProjection(Profiler::instance().collect().root, "", os);
    Profiler::instance().reset();
    return os.str();
}

TEST_F(ProfilerTest, MergedTreeIsIdenticalAcrossWorkerCounts)
{
    // The determinism contract extended to profiling: per-job spans
    // anchor at the tree root, so call counts and simulated time merge
    // to the same tree whether jobs ran inline (jobs=1) or across
    // worker threads.
    const std::string serial = campaignProfile(1);
    const std::string parallel = campaignProfile(3);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
    // Sanity: the instrumented paths actually appear.
    EXPECT_NE(serial.find("campaign.job"), std::string::npos);
    EXPECT_NE(serial.find("softmc.hammer"), std::string::npos);
}

std::uint64_t
tracedSessionHash(bool profiled)
{
    Profiler::instance().reset();
    Profiler::setEnabled(profiled);
    DramModule module(*findModuleSpec("A5"), 99);
    SoftMcHost host(module);
    host.trace().enable(64 * 1024);
    host.writeRow(0, 500, DataPattern::allOnes());
    host.hammer(0, 501, 2'000);
    host.refBurst(32);
    host.waitWithRefresh(msToNs(2));
    (void)host.readRow(0, 500);
    const std::uint64_t hash =
        host.trace().contentHash() ^ (static_cast<std::uint64_t>(
            host.now()) * 31) ^ host.actCount();
    Profiler::setEnabled(false);
    Profiler::instance().reset();
    return hash;
}

TEST_F(ProfilerTest, ProfilingNeverPerturbsTheSimulation)
{
    // Command-for-command bit-identity of an instrumented session with
    // profiling off vs on: spans observe the clock, never advance it.
    EXPECT_EQ(tracedSessionHash(false), tracedSessionHash(true));
}

TEST(RowPerfCountersTest, FastPathCountersMatchPublishedMetrics)
{
    // Identity mapping so aggressor/victim rows address physical
    // neighbours directly.
    ModuleSpec spec = *findModuleSpec("A5");
    spec.trr = TrrVersion::kNone;
    spec.scramble = RowScramble::kSequential;
    spec.remapsPerBank = 0;
    DramModule module(spec, 5);
    SoftMcHost host(module);
    MetricsRegistry registry;
    host.attachMetrics(&registry);

    for (Row r = 0; r < 64; ++r)
        host.writeRow(0, r, DataPattern::allOnes());
    // Double-sided past HC_first (A5: 13-15K): the victim's charge
    // crosses its hammer threshold, so touching it afterwards takes
    // the lazy hammer-cell attach path.
    host.hammerInterleaved({{0, 999}, {0, 1'001}}, {40'000, 40'000});
    (void)host.readRow(0, 1'000);
    host.refBurst(64);            // restores hit the fast path
    for (Row r = 0; r < 8; ++r)
        (void)host.readRow(0, r); // COW readouts share, never copy

    const RowPerfCounters totals = module.perfTotals();
    EXPECT_GT(totals.restoreFastPath, 0u);
    EXPECT_GT(totals.hammerCellAttaches, 0u);
    EXPECT_GT(totals.readoutShares, 0u);

    host.publishPerfCounters();
    EXPECT_EQ(registry.counter("dram.restore.fast_path").value,
              totals.restoreFastPath);
    EXPECT_EQ(registry.counter("dram.restore.slow_path").value,
              totals.restoreSlowPath);
    EXPECT_EQ(registry.counter("dram.hammer_cell_attaches").value,
              totals.hammerCellAttaches);
    EXPECT_EQ(registry.counter("dram.readout.cow_copies").value,
              totals.readoutCowCopies);
    EXPECT_EQ(registry.counter("dram.readout.cow_shares").value,
              totals.readoutShares);

    // Assignment-publish: republishing must not double-count.
    host.publishPerfCounters();
    EXPECT_EQ(registry.counter("dram.restore.fast_path").value,
              totals.restoreFastPath);
}

TEST(RowPerfCountersTest, TraceRingOverflowIsAccounted)
{
    DramModule module(*findModuleSpec("A5"), 6);
    SoftMcHost host(module);
    MetricsRegistry registry;
    host.attachMetrics(&registry);
    host.trace().enable(16);

    host.hammer(0, 100, 64); // 128 ACT/PRE events >> 16-slot ring
    EXPECT_GT(host.trace().dropped(), 0u);
    EXPECT_EQ(host.trace().size(), 16u);

    host.publishPerfCounters();
    EXPECT_EQ(registry.counter("trace.dropped_events").value,
              host.trace().dropped());

    // The Chrome export flags the truncation with an instant marker.
    std::ostringstream os;
    host.trace().exportChromeTrace(os);
    EXPECT_NE(os.str().find("trace ring overflow"), std::string::npos);
}

TEST(RowPerfCountersTest, ChromeExportMergesTheProfileTrack)
{
    Profiler::instance().reset();
    Profiler::setEnabled(true);
    Time clock = 0;
    {
        ProfSpan span("merged.span", &clock);
        clock += 10;
    }
    const ProfileTree tree = Profiler::instance().collect();
    Profiler::setEnabled(false);
    Profiler::instance().reset();

    CommandTrace trace(16);
    trace.record(TraceKind::kAct, 0, 1, 0, 10);
    std::ostringstream os;
    trace.exportChromeTrace(os, &tree);
    EXPECT_NE(os.str().find("merged.span"), std::string::npos);
    EXPECT_NE(os.str().find("profiler"), std::string::npos);
}

} // namespace
} // namespace utrr
