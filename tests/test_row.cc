#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "dram/row.hh"

namespace utrr
{
namespace
{

constexpr int kBits = 64 * 1024;

RowState
makeRow(RowPhysics physics, Time now = 0)
{
    return RowState(std::move(physics), now, Rng(1), kBits,
                    msToNs(4'000), 3.0);
}

RowPhysics
oneWeakCell(Col col, Time retention, bool charged = true)
{
    RowPhysics phys;
    WeakCell cell;
    cell.col = col;
    cell.retention = retention;
    cell.chargedValue = charged;
    phys.weakCells.push_back(cell);
    return phys;
}

TEST(RowState, FreshRowReadsCleanly)
{
    RowState row = makeRow(oneWeakCell(10, msToNs(100)));
    row.writePattern(DataPattern::allOnes(), 5, 0);
    EXPECT_EQ(row.read().countFlipsVs(DataPattern::allOnes(), 5), 0);
}

TEST(RowState, RetentionFlipAppearsAfterRetentionTime)
{
    RowState row = makeRow(oneWeakCell(10, msToNs(100)));
    row.writePattern(DataPattern::allOnes(), 5, 0);
    row.restoreCharge(msToNs(150)); // ACT at 150 ms: flip commits
    const RowReadout readout = row.read();
    const auto flips = readout.flipsVs(DataPattern::allOnes(), 5);
    ASSERT_EQ(flips.size(), 1u);
    EXPECT_EQ(flips[0], 10);
    EXPECT_FALSE(readout.bit(10));
}

TEST(RowState, RefreshBeforeRetentionPreventsFlip)
{
    RowState row = makeRow(oneWeakCell(10, msToNs(100)));
    row.writePattern(DataPattern::allOnes(), 5, 0);
    row.restoreCharge(msToNs(60));  // refresh in time
    row.restoreCharge(msToNs(150)); // 90 ms since refresh: still fine
    EXPECT_EQ(row.read().countFlipsVs(DataPattern::allOnes(), 5), 0);
}

TEST(RowState, RefreshAfterFailureCommitsTheFlip)
{
    // Paper footnote 4 / §3: a refresh restores whatever the cell
    // holds; a flip that already happened is preserved.
    RowState row = makeRow(oneWeakCell(10, msToNs(100)));
    row.writePattern(DataPattern::allOnes(), 5, 0);
    row.restoreCharge(msToNs(150)); // too late, flip committed
    row.restoreCharge(msToNs(160));
    row.restoreCharge(msToNs(10'000));
    EXPECT_EQ(row.read().countFlipsVs(DataPattern::allOnes(), 5), 1);
}

TEST(RowState, WriteClearsFlips)
{
    RowState row = makeRow(oneWeakCell(10, msToNs(100)));
    row.writePattern(DataPattern::allOnes(), 5, 0);
    row.restoreCharge(msToNs(150));
    row.writePattern(DataPattern::allOnes(), 5, msToNs(151));
    EXPECT_EQ(row.read().countFlipsVs(DataPattern::allOnes(), 5), 0);
}

TEST(RowState, DischargedCellDoesNotFlip)
{
    // A true-cell storing 0 has no charge to lose.
    RowState row = makeRow(oneWeakCell(10, msToNs(100), true));
    row.writePattern(DataPattern::allZeros(), 5, 0);
    row.restoreCharge(msToNs(500));
    EXPECT_EQ(row.read().countFlipsVs(DataPattern::allZeros(), 5), 0);
}

TEST(RowState, AntiCellFlipsZeroToOne)
{
    RowState row = makeRow(oneWeakCell(10, msToNs(100), false));
    row.writePattern(DataPattern::allZeros(), 5, 0);
    row.restoreCharge(msToNs(200));
    const RowReadout readout = row.read();
    EXPECT_TRUE(readout.bit(10)); // 0 decayed to 1
}

TEST(RowState, HammerFlipAtThreshold)
{
    RowPhysics phys;
    HammerCell cell;
    cell.col = 20;
    cell.threshold = 100.0;
    cell.chargedValue = true;
    phys.hammerCells.push_back(cell);
    RowState row = makeRow(std::move(phys));
    row.writePattern(DataPattern::allOnes(), 5, 0);
    row.addDisturbance(99, 99.0);
    row.restoreCharge(1'000);
    EXPECT_EQ(row.read().countFlipsVs(DataPattern::allOnes(), 5), 0);
    row.addDisturbance(99, 101.0);
    row.restoreCharge(2'000);
    EXPECT_EQ(row.read().countFlipsVs(DataPattern::allOnes(), 5), 1);
}

TEST(RowState, RestoreResetsHammerCharge)
{
    RowPhysics phys;
    HammerCell cell;
    cell.col = 20;
    cell.threshold = 100.0;
    cell.chargedValue = true;
    phys.hammerCells.push_back(cell);
    RowState row = makeRow(std::move(phys));
    row.writePattern(DataPattern::allOnes(), 5, 0);
    row.addDisturbance(99, 60.0);
    row.restoreCharge(1'000); // resets accumulated charge
    row.addDisturbance(99, 60.0);
    row.restoreCharge(2'000);
    EXPECT_EQ(row.read().countFlipsVs(DataPattern::allOnes(), 5), 0);
    EXPECT_EQ(row.hammerCharge(), 0.0);
}

TEST(RowState, LastDisturberTracked)
{
    RowState row = makeRow(RowPhysics{});
    EXPECT_EQ(row.lastDisturber(), kInvalidRow);
    row.addDisturbance(42, 1.0);
    EXPECT_EQ(row.lastDisturber(), 42);
    row.restoreCharge(10);
    EXPECT_EQ(row.lastDisturber(), kInvalidRow);
}

TEST(RowState, WriteWordOverridesAndRecharges)
{
    RowState row = makeRow(oneWeakCell(10, msToNs(100)));
    row.writePattern(DataPattern::allOnes(), 5, 0);
    row.restoreCharge(msToNs(150)); // col 10 flipped
    row.writeWord(0, 0xffffffffffffffffULL); // rewrite word 0
    EXPECT_EQ(row.read().countFlipsVs(DataPattern::allOnes(), 5), 0);
}

TEST(RowState, WriteWordLeavesOtherFlips)
{
    RowState row = makeRow(oneWeakCell(100, msToNs(100)));
    row.writePattern(DataPattern::allOnes(), 5, 0);
    row.restoreCharge(msToNs(150)); // col 100 (word 1) flipped
    row.writeWord(0, 0x1234ULL);    // unrelated word
    const RowReadout readout = row.read();
    EXPECT_EQ(readout.word(0), 0x1234ULL);
    // Diffs vs all-ones: 59 zero bits of 0x1234 plus the retention
    // flip at col 100.
    EXPECT_EQ(readout.flipsVs(DataPattern::allOnes(), 5).size(), 60u);
}

TEST(RowState, VrtCellRetentionVaries)
{
    RowPhysics phys = oneWeakCell(10, msToNs(100));
    phys.weakCells[0].vrt = true;
    RowState row = makeRow(std::move(phys));

    // Over many trials the VRT cell must sometimes survive past its
    // low-state retention (high state = 3x retention).
    int survived = 0;
    int failed = 0;
    Time now = 0;
    for (int i = 0; i < 200; ++i) {
        row.writePattern(DataPattern::allOnes(), 5, now);
        now += msToNs(150); // beyond low-state, below high-state
        row.restoreCharge(now);
        if (row.read().countFlipsVs(DataPattern::allOnes(), 5) == 0)
            ++survived;
        else
            ++failed;
        now += msToNs(50);
    }
    EXPECT_GT(survived, 5);
    EXPECT_GT(failed, 5);
}

TEST(RowState, FastPathStillAdvancesLastRestore)
{
    // A chain of skipped scans (each restore well inside retention)
    // must keep advancing lastRestore: if a skip left it stale, the
    // final window would look longer than retention and flip a cell
    // that was in fact refreshed in time.
    RowState row = makeRow(oneWeakCell(10, msToNs(100)));
    row.writePattern(DataPattern::allOnes(), 5, 0);
    for (int i = 1; i <= 20; ++i)
        row.restoreCharge(msToNs(90) * i); // always 90 ms apart
    EXPECT_EQ(row.lastRefresh(), msToNs(90) * 20);
    EXPECT_EQ(row.read().countFlipsVs(DataPattern::allOnes(), 5), 0);
    // One window past retention still commits.
    row.restoreCharge(msToNs(90) * 20 + msToNs(150));
    EXPECT_EQ(row.read().countFlipsVs(DataPattern::allOnes(), 5), 1);
}

TEST(RowState, ScaleRetentionInvalidatesFastPathCache)
{
    // Halving the retention scale must take effect on the very next
    // restore, even though the previous restores were fast-path skips
    // that never touched the cell list.
    RowState row = makeRow(oneWeakCell(10, msToNs(100)));
    row.writePattern(DataPattern::allOnes(), 5, 0);
    row.restoreCharge(msToNs(90)); // within nominal retention
    EXPECT_EQ(row.read().countFlipsVs(DataPattern::allOnes(), 5), 0);
    row.scaleRetention(0.5); // effective retention now 50 ms
    row.restoreCharge(msToNs(90) + msToNs(90));
    EXPECT_EQ(row.read().countFlipsVs(DataPattern::allOnes(), 5), 1);
}

TEST(RowState, ScaleRetentionUpExtendsTheSkipWindow)
{
    RowState row = makeRow(oneWeakCell(10, msToNs(100)));
    row.writePattern(DataPattern::allOnes(), 5, 0);
    row.setRetentionScale(10.0); // effective retention 1 s
    row.restoreCharge(msToNs(800));
    EXPECT_EQ(row.read().countFlipsVs(DataPattern::allOnes(), 5), 0);
    row.restoreCharge(msToNs(800) + msToNs(1'100));
    EXPECT_EQ(row.read().countFlipsVs(DataPattern::allOnes(), 5), 1);
}

TEST(RowReadout, IsStableSnapshotAcrossRowMutation)
{
    // The readout shares state with the row copy-on-write: mutating the
    // row after the read must not change the snapshot.
    RowState row = makeRow(oneWeakCell(10, msToNs(100)));
    row.writePattern(DataPattern::allOnes(), 5, 0);
    row.restoreCharge(msToNs(150)); // col 10 flipped
    row.writeWord(2, 0xabcdULL);
    const RowReadout snapshot = row.read();
    // col-10 retention flip + the 54 zero bits of the 0xabcd override.
    ASSERT_EQ(snapshot.countFlipsVs(DataPattern::allOnes(), 5), 1 + 54);

    row.writeWord(0, ~0ULL);        // clears the col-10 flip
    row.writeWord(2, ~0ULL);        // rewrites the override
    row.restoreCharge(msToNs(400)); // commits nothing new
    row.writePattern(DataPattern::allZeros(), 5, msToNs(401));

    // Snapshot unchanged; the row reflects the new state.
    EXPECT_EQ(snapshot.countFlipsVs(DataPattern::allOnes(), 5), 1 + 54);
    EXPECT_FALSE(snapshot.bit(10));
    EXPECT_EQ(snapshot.word(2), 0xabcdULL);
    EXPECT_EQ(row.read().countFlipsVs(DataPattern::allZeros(), 5), 0);
}

TEST(RowReadout, InjectFlipDoesNotTouchTheRow)
{
    RowState row = makeRow(oneWeakCell(10, msToNs(100)));
    row.writePattern(DataPattern::allOnes(), 5, 0);
    row.restoreCharge(msToNs(150)); // col 10 flipped
    RowReadout readout = row.read();

    readout.injectFlip(20);
    EXPECT_EQ(readout.countFlipsVs(DataPattern::allOnes(), 5), 2);
    readout.injectFlip(10); // double fault on the committed flip
    EXPECT_EQ(readout.countFlipsVs(DataPattern::allOnes(), 5), 1);

    // The stored row never saw either injection.
    EXPECT_EQ(row.committedFlipCount(), 1u);
    const auto real = row.read().flipsVs(DataPattern::allOnes(), 5);
    ASSERT_EQ(real.size(), 1u);
    EXPECT_EQ(real[0], 10);
}

TEST(RowReadout, WordAppliesFlips)
{
    RowState row = makeRow(oneWeakCell(3, msToNs(100)));
    row.writePattern(DataPattern::allOnes(), 0, 0);
    row.restoreCharge(msToNs(200));
    const RowReadout readout = row.read();
    EXPECT_EQ(readout.word(0), ~0ULL ^ (1ULL << 3));
    EXPECT_EQ(readout.word(1), ~0ULL);
}

TEST(RowReadout, FlipsVsDifferentPatternDiffsWholeRow)
{
    RowState row = makeRow(RowPhysics{});
    row.writePattern(DataPattern::allOnes(), 0, 0);
    const RowReadout readout = row.read();
    const auto diff = readout.flipsVs(DataPattern::allZeros(), 0);
    EXPECT_EQ(diff.size(), static_cast<std::size_t>(kBits));
}

// ---------------------------------------------------------------------
// diffReadout / diffReadoutCount: the word-at-a-time XOR+ctz diff
// behind every readback scan (DESIGN.md §17).
// ---------------------------------------------------------------------

/** Readout of @p bits bits holding @p pattern at @p row with the given
 *  committed flips — built directly, no RowState needed. */
RowReadout
makeReadout(const DataPattern &pattern, Row row, std::vector<Col> flips,
            int bits)
{
    return RowReadout(
        pattern, row, nullptr,
        flips.empty()
            ? nullptr
            : std::make_shared<const std::vector<Col>>(std::move(flips)),
        bits);
}

/** Reference implementation: probe every bit position one at a time. */
std::vector<Col>
naiveDiff(const RowReadout &readout, const DataPattern &expected,
          Row expected_row)
{
    std::vector<Col> result;
    for (Col col = 0; col < readout.rowBits(); ++col)
        if (readout.bit(col) != expected.bit(expected_row, col))
            result.push_back(col);
    return result;
}

TEST(DiffReadout, AllZeroDiffIsEmpty)
{
    const RowReadout readout =
        makeReadout(DataPattern::random(9), 42, {}, 512);
    EXPECT_TRUE(diffReadout(readout, DataPattern::random(9), 42).empty());
    EXPECT_EQ(diffReadoutCount(readout, DataPattern::random(9), 42), 0);
}

TEST(DiffReadout, SparseFlipsInAlignedRow)
{
    // Flips in the first, a middle and the last word of a word-aligned
    // row, including bit 0 and bit 63 word boundaries.
    const std::vector<Col> flips = {0, 63, 200, 511};
    const RowReadout readout =
        makeReadout(DataPattern::allOnes(), 7, flips, 512);
    EXPECT_EQ(diffReadout(readout, DataPattern::allOnes(), 7), flips);
    EXPECT_EQ(diffReadoutCount(readout, DataPattern::allOnes(), 7), 4);
}

TEST(DiffReadout, UnalignedTailIsMaskedNotTruncated)
{
    // 130-bit row: two full words plus a 2-bit tail. A flip inside the
    // tail must be reported; the 62 garbage bit positions past the end
    // of the row must not be.
    const int bits = 130;
    const RowReadout readout =
        makeReadout(DataPattern::allOnes(), 0, {129}, bits);
    // vs the stored pattern: only the committed tail flip.
    const std::vector<Col> tail_only = {129};
    EXPECT_EQ(diffReadout(readout, DataPattern::allOnes(), 0), tail_only);
    // vs the inverse pattern: every *real* bit differs except col 129
    // (which the flip restored to zero) — nothing beyond bit 129.
    const auto diff = diffReadout(readout, DataPattern::allZeros(), 0);
    EXPECT_EQ(diff.size(), static_cast<std::size_t>(bits - 1));
    EXPECT_EQ(diff.back(), 128);
    EXPECT_EQ(diffReadoutCount(readout, DataPattern::allZeros(), 0),
              bits - 1);
}

TEST(DiffReadout, DenseDiffMatchesNaiveBitProbe)
{
    // Random data vs a different random expectation: roughly half of
    // all bits differ. The word-at-a-time diff must agree with the
    // per-bit reference probe exactly, columns in ascending order.
    for (const int bits : {64, 192, 321}) {
        SCOPED_TRACE(bits);
        const RowReadout readout =
            makeReadout(DataPattern::random(3), 11, {5, 70}, bits);
        const auto fast = diffReadout(readout, DataPattern::random(4), 11);
        EXPECT_EQ(fast, naiveDiff(readout, DataPattern::random(4), 11));
        EXPECT_EQ(diffReadoutCount(readout, DataPattern::random(4), 11),
                  static_cast<int>(fast.size()));
        EXPECT_TRUE(std::is_sorted(fast.begin(), fast.end()));
    }
}

} // namespace
} // namespace utrr
