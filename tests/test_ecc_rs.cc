#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ecc/reed_solomon.hh"

namespace utrr
{
namespace
{

using Elem = Gf256::Elem;

std::vector<Elem>
randomData(Rng &rng, int k)
{
    std::vector<Elem> data;
    for (int i = 0; i < k; ++i)
        data.push_back(static_cast<Elem>(rng.uniformInt(0, 255)));
    return data;
}

TEST(ReedSolomon, CleanRoundTrip)
{
    const ReedSolomon rs(15, 9);
    Rng rng(1);
    const auto data = randomData(rng, 9);
    const auto codeword = rs.encode(data);
    ASSERT_EQ(codeword.size(), 15u);
    // Systematic: data symbols come first.
    for (int i = 0; i < 9; ++i)
        EXPECT_EQ(codeword[static_cast<std::size_t>(i)],
                  data[static_cast<std::size_t>(i)]);
    const auto result = rs.decode(codeword);
    EXPECT_EQ(result.status, RsDecodeResult::Status::kClean);
}

/** Property: up to t random symbol errors are always corrected. */
class RsCorrection : public ::testing::TestWithParam<int>
{
};

TEST_P(RsCorrection, CorrectsUpToT)
{
    const ReedSolomon rs(20, 12); // t = 4
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    const auto data = randomData(rng, 12);
    const auto codeword = rs.encode(data);

    for (int errors = 1; errors <= rs.t(); ++errors) {
        auto received = codeword;
        std::vector<int> positions;
        while (static_cast<int>(positions.size()) < errors) {
            const int pos = static_cast<int>(rng.uniformInt(0, 19));
            if (std::find(positions.begin(), positions.end(), pos) ==
                positions.end())
                positions.push_back(pos);
        }
        for (int pos : positions) {
            received[static_cast<std::size_t>(pos)] ^=
                static_cast<Elem>(rng.uniformInt(1, 255));
        }
        const auto result = rs.decode(received);
        ASSERT_EQ(result.status, RsDecodeResult::Status::kCorrected)
            << errors << " errors";
        EXPECT_EQ(result.codeword, codeword);
        EXPECT_EQ(result.symbolsCorrected, errors);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RsCorrection, ::testing::Range(1, 30));

TEST(ReedSolomon, BeyondTIsDetectedOrWrong)
{
    // t+1 errors: bounded-distance decoding either detects the error
    // or (rarely) lands on a wrong codeword; it must never return the
    // original claiming success with wrong data.
    const ReedSolomon rs(12, 8); // t = 2
    Rng rng(99);
    const auto data = randomData(rng, 8);
    const auto codeword = rs.encode(data);
    int detected = 0;
    for (int trial = 0; trial < 200; ++trial) {
        auto received = codeword;
        std::vector<int> positions;
        while (static_cast<int>(positions.size()) < 3) {
            const int pos = static_cast<int>(rng.uniformInt(0, 11));
            if (std::find(positions.begin(), positions.end(), pos) ==
                positions.end())
                positions.push_back(pos);
        }
        for (int pos : positions) {
            received[static_cast<std::size_t>(pos)] ^=
                static_cast<Elem>(rng.uniformInt(1, 255));
        }
        const auto result = rs.decode(received);
        if (result.status == RsDecodeResult::Status::kDetected) {
            ++detected;
        } else if (result.status == RsDecodeResult::Status::kCorrected) {
            EXPECT_NE(result.codeword, codeword); // miscorrection
        }
    }
    EXPECT_GT(detected, 150); // most 3-error patterns are detected
}

TEST(ReedSolomon, RestrictedTDetectsBetweenTAndDistance)
{
    // RS(11,8) decoded with t=1: two symbol errors must always be
    // detected (d = 4), never miscorrected. This is the Chipkill
    // guarantee.
    const ReedSolomon rs(11, 8, 1);
    Rng rng(7);
    const auto data = randomData(rng, 8);
    const auto codeword = rs.encode(data);
    for (int trial = 0; trial < 300; ++trial) {
        auto received = codeword;
        const int p1 = static_cast<int>(rng.uniformInt(0, 10));
        int p2 = p1;
        while (p2 == p1)
            p2 = static_cast<int>(rng.uniformInt(0, 10));
        received[static_cast<std::size_t>(p1)] ^=
            static_cast<Elem>(rng.uniformInt(1, 255));
        received[static_cast<std::size_t>(p2)] ^=
            static_cast<Elem>(rng.uniformInt(1, 255));
        const auto result = rs.decode(received);
        ASSERT_EQ(result.status, RsDecodeResult::Status::kDetected);
    }
}

TEST(ReedSolomon, ZeroDataEncodesToZero)
{
    const ReedSolomon rs(10, 6);
    const std::vector<Elem> zeros(6, 0);
    const auto codeword = rs.encode(zeros);
    for (Elem symbol : codeword)
        EXPECT_EQ(symbol, 0);
}

TEST(ReedSolomon, ParameterValidation)
{
    EXPECT_DEATH(ReedSolomon(8, 8), "bad RS parameters");
    EXPECT_DEATH(ReedSolomon(10, 8, 3), "t exceeds");
}

} // namespace
} // namespace utrr
