#include <gtest/gtest.h>

#include "core/reveng.hh"
#include "dram/module.hh"
#include "softmc/host.hh"

namespace utrr
{
namespace
{

/**
 * End-to-end reverse engineering on full-size modules: the black-box
 * procedures must re-derive the ground-truth TRR properties. These are
 * the headline methodology tests (paper §6).
 */
struct RevengFixture
{
    explicit RevengFixture(const std::string &module_name,
                           std::uint64_t seed = 11)
        : spec(*findModuleSpec(module_name)), module(spec, seed),
          host(module)
    {
    }

    TrrReveng
    makeReveng()
    {
        TrrRevengConfig cfg;
        cfg.scoutRowEnd = 6 * 1024;
        cfg.consistencyChecks = 30;
        return TrrReveng(
            host, DiscoveredMapping(spec.scramble, spec.rowsPerBank),
            cfg);
    }

    ModuleSpec spec;
    DramModule module;
    SoftMcHost host;
};

TEST(TrrReveng, VendorAPeriodNeighboursDetection)
{
    RevengFixture fix("A5");
    TrrReveng reveng = fix.makeReveng();
    EXPECT_EQ(reveng.discoverTrrRefPeriod(), 9);
    EXPECT_EQ(reveng.discoverNeighborsRefreshed(), 4);
    EXPECT_EQ(reveng.discoverDetectionType(),
              DetectionType::kCounterBased);
}

TEST(TrrReveng, VendorA2RefreshesTwoNeighbours)
{
    RevengFixture fix("A13");
    TrrReveng reveng = fix.makeReveng();
    EXPECT_EQ(reveng.discoverNeighborsRefreshed(), 2);
}

TEST(TrrReveng, VendorACounterSemantics)
{
    RevengFixture fix("A5");
    TrrReveng reveng = fix.makeReveng();
    EXPECT_TRUE(reveng.discoverCounterResetOnDetect()); // Obs. A6
    EXPECT_TRUE(reveng.discoverTablePersistence());     // Obs. A7
}

TEST(TrrReveng, VendorBPeriodAndSampling)
{
    RevengFixture fix("B8");
    TrrReveng reveng = fix.makeReveng();
    EXPECT_EQ(reveng.discoverTrrRefPeriod(), 4);
    EXPECT_EQ(reveng.discoverNeighborsRefreshed(), 2);
    EXPECT_EQ(reveng.discoverDetectionType(),
              DetectionType::kSamplingBased);
    EXPECT_TRUE(reveng.discoverSamplerRetention()); // Obs. B5
}

TEST(TrrReveng, VendorBCapacityIsOne)
{
    RevengFixture fix("B8");
    TrrReveng reveng = fix.makeReveng();
    EXPECT_EQ(reveng.discoverAggressorCapacity(), 1); // Obs. B4
}

TEST(TrrReveng, VendorBScopeChipWideVsPerBank)
{
    RevengFixture chip_wide("B8");
    EXPECT_FALSE(chip_wide.makeReveng().discoverPerBankScope());

    RevengFixture per_bank("B13");
    EXPECT_TRUE(per_bank.makeReveng().discoverPerBankScope());
}

TEST(TrrReveng, VendorCPeriodAndWindowDetection)
{
    RevengFixture fix("C9");
    TrrReveng reveng = fix.makeReveng();
    EXPECT_EQ(reveng.discoverTrrRefPeriod(), 9);
    EXPECT_EQ(reveng.discoverDetectionType(),
              DetectionType::kWindowBased);
}

TEST(TrrReveng, VendorCPairedRefreshesPairRowOnly)
{
    // Obs. C3: for C0-8, a TRR refresh covers exactly the pair row.
    RevengFixture fix("C7");
    TrrReveng reveng = fix.makeReveng();
    EXPECT_EQ(reveng.discoverNeighborsRefreshed(), 1);
}

TEST(TrrReveng, DominantPeriodHelper)
{
    using Trace = TrrReveng::IterationTrace;
    EXPECT_EQ(Trace::dominantPeriod({}), 0);
    EXPECT_EQ(Trace::dominantPeriod({5}), 0);
    EXPECT_EQ(Trace::dominantPeriod({0, 9, 18, 27}), 9);
    EXPECT_EQ(Trace::dominantPeriod({0, 9, 18, 20, 27, 36}), 9);
}

TEST(TrrReveng, IterationTraceEvents)
{
    TrrReveng::IterationTrace trace;
    trace.masks = {{0, 0}, {1, 0}, {0, 0}, {0, 2}, {3, 0}};
    EXPECT_EQ(trace.eventsOf(0), (std::vector<int>{1, 4}));
    EXPECT_EQ(trace.eventsOf(1), (std::vector<int>{3}));
    EXPECT_EQ(trace.anyEvents(), (std::vector<int>{1, 3, 4}));
}

} // namespace
} // namespace utrr
