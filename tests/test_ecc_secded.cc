#include <gtest/gtest.h>

#include "ecc/secded.hh"

namespace utrr
{
namespace
{

TEST(Secded, CleanDecode)
{
    const auto word = Secded::encode(0x0123456789abcdefULL);
    const auto result = Secded::decode(word);
    EXPECT_EQ(result.status, Secded::Status::kClean);
    EXPECT_EQ(result.codeword.data, 0x0123456789abcdefULL);
}

TEST(Secded, EncodeDeterministic)
{
    EXPECT_EQ(Secded::encode(42).check, Secded::encode(42).check);
    EXPECT_NE(Secded::encode(42).check, Secded::encode(43).check);
}

/** Property: every single-bit error (data or check) is corrected. */
class SecdedSingleError : public ::testing::TestWithParam<int>
{
};

TEST_P(SecdedSingleError, Corrected)
{
    const std::uint64_t data = 0xdeadbeefcafef00dULL;
    const auto original = Secded::encode(data);
    const auto corrupted = Secded::flipBit(original, GetParam());
    const auto result = Secded::decode(corrupted);
    EXPECT_EQ(result.status, Secded::Status::kCorrected);
    EXPECT_EQ(result.codeword.data, data);
    EXPECT_EQ(result.codeword.check, original.check);
}

INSTANTIATE_TEST_SUITE_P(AllBits, SecdedSingleError,
                         ::testing::Range(0, 72));

TEST(Secded, AllDoubleErrorsDetected)
{
    const std::uint64_t data = 0x5555aaaa12345678ULL;
    const auto original = Secded::encode(data);
    for (int i = 0; i < 72; ++i) {
        for (int j = i + 1; j < 72; j += 3) { // sampled pairs
            const auto corrupted =
                Secded::flipBit(Secded::flipBit(original, i), j);
            const auto result = Secded::decode(corrupted);
            ASSERT_EQ(result.status, Secded::Status::kDetected)
                << "bits " << i << "," << j;
        }
    }
}

TEST(Secded, TripleErrorsEscapeTheGuarantee)
{
    // >= 3 flips alias into correction/clean classes: the §7.4 failure
    // mode. At least some triples must NOT be reported as detected.
    const std::uint64_t data = 0;
    const auto original = Secded::encode(data);
    int silent = 0;
    int total = 0;
    for (int i = 0; i < 60; i += 5) {
        for (int j = i + 1; j < 64; j += 7) {
            for (int k = j + 1; k < 64; k += 11) {
                const auto corrupted = Secded::flipBit(
                    Secded::flipBit(Secded::flipBit(original, i), j), k);
                const auto result = Secded::decode(corrupted);
                ++total;
                if (result.status == Secded::Status::kCorrected &&
                    result.codeword.data != data) {
                    ++silent; // miscorrection
                }
            }
        }
    }
    EXPECT_GT(total, 50);
    EXPECT_GT(silent, total / 4);
}

TEST(Secded, FlipBitIsInvolution)
{
    const auto word = Secded::encode(0x123);
    for (int bit : {0, 31, 63, 64, 71}) {
        const auto twice =
            Secded::flipBit(Secded::flipBit(word, bit), bit);
        EXPECT_EQ(twice, word);
    }
}

} // namespace
} // namespace utrr
