#include "runner/profile_cache.hh"

#include "common/logging.hh"

namespace utrr
{

std::string
ProfileCache::key(const ModuleSpec &spec, std::uint64_t module_seed,
                  const std::string &tag)
{
    return logFmt(spec.name, "#", module_seed, "#", tag);
}

std::shared_ptr<const ProfileCache::Entry>
ProfileCache::find(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mu);
    const auto it = entries.find(key);
    if (it == entries.end()) {
        ++tally.misses;
        return nullptr;
    }
    ++tally.hits;
    return it->second;
}

void
ProfileCache::insert(const std::string &key,
                     std::shared_ptr<const Entry> entry)
{
    std::lock_guard<std::mutex> lock(mu);
    entries.emplace(key, std::move(entry));
}

ProfileCache::Stats
ProfileCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return tally;
}

std::size_t
ProfileCache::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return entries.size();
}

} // namespace utrr
