#include "runner/reveng_job.hh"

#include "common/logging.hh"

namespace utrr
{

namespace
{

constexpr Time kSimHourNs = 3'600ll * 1'000'000'000;

} // namespace

IdentifyJobConfig
IdentifyJobConfig::battery()
{
    IdentifyJobConfig config;
    config.reveng.scoutRowEnd = 6 * 1024;
    config.reveng.consistencyChecks = 15;
    config.reveng.periodIterations = 64;
    config.reveng.watchdogBudgetNs = kSimHourNs;
    return config;
}

IdentifyJobConfig
IdentifyJobConfig::chaos()
{
    IdentifyJobConfig config;
    config.reveng.scoutRowEnd = 6 * 1024;
    config.reveng.consistencyChecks = 15;
    // Under injection the event stream is thinned (broken rows get
    // quarantined, stolen TRR fires are invisible), so a period-17
    // module needs a larger sample than the fault-free battery.
    config.reveng.periodIterations = 128;
    config.reveng.revalidateChecks = 8;
    config.reveng.watchdogBudgetNs = kSimHourNs;
    return config;
}

JobFn
makeIdentifyJob(const IdentifyJobConfig &config)
{
    return [config](JobContext &ctx) {
        const ModuleSpec &spec = ctx.spec;
        const DiscoveredMapping mapping(spec.scramble, spec.rowsPerBank);
        TrrReveng reveng(ctx.host, mapping, config.reveng);

        // Scouting dominates identification wall time and is a pure
        // function of (spec, moduleSeed); snapshot it at completion so
        // retries and repeated batteries over the same silicon restore
        // the scouted device + pools instead of re-scouting. The tag
        // versions the profiling body and its knobs. With no cache
        // attached (or under fault injection) this is a plain call.
        const Json pools = ctx.profiled(
            logFmt("identify:pools:v1:rows", config.reveng.scoutRowEnd,
                   ":checks", config.reveng.consistencyChecks),
            [&]() {
                reveng.warmUp();
                return reveng.exportPools();
            });
        reveng.importPools(pools);

        const TrrReveng::IdentifyOutcome measured = reveng.identify();

        const TrrTraits truth = spec.traits();
        const int want_neigh =
            spec.paired() ? 1 : truth.neighborsRefreshed;

        JobOutcome out;
        out.ok = measured.trrToRefPeriod == truth.trrToRefPeriod &&
                 measured.neighborsRefreshed == want_neigh;
        Json verdict = Json::object();
        verdict["module"] = Json(spec.name);
        verdict["period"] = Json(measured.trrToRefPeriod);
        verdict["period_truth"] = Json(truth.trrToRefPeriod);
        verdict["neighbours"] = Json(measured.neighborsRefreshed);
        verdict["neighbours_truth"] = Json(want_neigh);
        verdict["fresh_row_retries"] = Json(measured.freshRowRetries);
        verdict["ok"] = Json(out.ok);
        out.verdict = std::move(verdict);
        return out;
    };
}

} // namespace utrr
