#include "runner/journal.hh"

#include <cstring>

#include "common/checksum.hh"
#include "common/logging.hh"

namespace utrr
{

namespace
{

/** Order-sensitive 64-bit accumulator over heterogeneous fields. */
class HashAcc
{
  public:
    explicit HashAcc(std::uint64_t seed) : h(hashMix(seed)) {}

    void
    add(std::uint64_t v)
    {
        h = hashMix(h ^ hashMix(v));
    }

    void
    add(std::int64_t v)
    {
        add(static_cast<std::uint64_t>(v));
    }

    void
    add(double v)
    {
        // Hash the bit pattern: any numeric change (including sign of
        // zero) re-keys the campaign, which errs on the safe side.
        std::uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        add(bits);
    }

    void
    add(std::string_view s)
    {
        add(hashString(s));
    }

    std::uint64_t value() const { return h; }

  private:
    std::uint64_t h;
};

/** Behaviour-relevant fields of one module spec. */
void
addSpec(HashAcc &acc, const ModuleSpec &spec)
{
    acc.add(spec.name);
    acc.add(static_cast<std::uint64_t>(
        static_cast<unsigned char>(spec.vendor)));
    acc.add(spec.date);
    acc.add(static_cast<std::int64_t>(spec.chipDensityGbit));
    acc.add(static_cast<std::int64_t>(spec.ranks));
    acc.add(static_cast<std::int64_t>(spec.banks));
    acc.add(static_cast<std::int64_t>(spec.pins));
    acc.add(static_cast<std::int64_t>(spec.rowsPerBank));
    acc.add(static_cast<std::int64_t>(spec.rowBits));
    acc.add(static_cast<std::int64_t>(spec.trr));
    acc.add(static_cast<std::int64_t>(spec.refreshPeriodRefs));
    acc.add(spec.hcFirst);
    acc.add(spec.hcRowSigma);
    acc.add(static_cast<std::int64_t>(spec.scramble));
    acc.add(static_cast<std::int64_t>(spec.remapsPerBank));
}

std::string
hex16(std::uint64_t value)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(value));
    return std::string(buf);
}

bool
parseHex16(const std::string &text, std::uint64_t &out)
{
    if (text.size() != 16)
        return false;
    std::uint64_t value = 0;
    for (const char c : text) {
        value <<= 4;
        if (c >= '0' && c <= '9')
            value |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            value |= static_cast<std::uint64_t>(c - 'a' + 10);
        else
            return false;
    }
    out = value;
    return true;
}

/** Checked field extraction helpers for the loader. */
const Json *
member(const Json &obj, const char *key, Json::Type type)
{
    const Json *found = obj.find(key);
    if (found == nullptr || found->type() != type)
        return nullptr;
    return found;
}

} // namespace

CampaignKey
CampaignKey::compute(const CampaignConfig &config,
                     const std::vector<ModuleSpec> &specs)
{
    HashAcc acc(0x5eed'0075'11e5'0142ull);
    acc.add(config.seed);
    acc.add(config.moduleSeed);
    acc.add(static_cast<std::int64_t>(config.watchdogBudgetNs));
    acc.add(static_cast<std::int64_t>(config.maxWatchdogRetries));
    acc.add(static_cast<std::uint64_t>(config.traceCapacity));
    acc.add(config.contentTag);

    const FaultConfig &f = config.faults;
    acc.add(f.vrtFlipChancePerRead);
    acc.add(f.vrtScaleFactor);
    acc.add(f.readNoiseChancePerRead);
    acc.add(static_cast<std::int64_t>(f.readNoiseMaxBits));
    acc.add(f.refJitterChance);
    acc.add(static_cast<std::int64_t>(f.refJitterMaxNs));
    acc.add(f.dropRefChance);
    acc.add(f.dropWrChance);
    acc.add(f.dropHammerActChance);
    acc.add(static_cast<std::int64_t>(f.tempStepIntervalNs));
    acc.add(f.tempStepMaxFactor);
    acc.add(f.tempMaxDrift);

    acc.add(static_cast<std::uint64_t>(specs.size()));
    for (const ModuleSpec &spec : specs)
        addSpec(acc, spec);

    CampaignKey key;
    key.hash = acc.value();
    return key;
}

std::string
CampaignKey::hex() const
{
    return hex16(hash);
}

std::uint64_t
CampaignKey::jobKey(const ModuleSpec &spec, std::uint64_t index) const
{
    HashAcc acc(hash);
    acc.add(spec.name);
    acc.add(index);
    return acc.value();
}

Json
moduleResultToJson(const ModuleResult &result)
{
    Json body = Json::object();
    body["record"] = Json("job");
    body["index"] = Json(result.index);
    body["module"] = Json(result.module);
    body["ok"] = Json(result.ok);
    body["quarantined"] = Json(result.quarantined);
    body["attempts"] = Json(result.attempts);
    body["error"] = Json(result.error);
    body["wall_ms"] = Json(result.wallMs);
    body["sim_ns"] = Json(static_cast<std::int64_t>(result.simNs));
    body["trace_recorded"] = Json(result.traceRecorded);
    Json fault = Json::object();
    fault["vrt_flips"] = Json(result.faultStats.vrtFlips);
    fault["noise_bits"] = Json(result.faultStats.noiseBits);
    fault["jittered_refs"] = Json(result.faultStats.jitteredRefs);
    fault["dropped_refs"] = Json(result.faultStats.droppedRefs);
    fault["dropped_wrs"] = Json(result.faultStats.droppedWrs);
    fault["dropped_hammer_acts"] =
        Json(result.faultStats.droppedHammerActs);
    fault["temp_steps"] = Json(result.faultStats.tempSteps);
    body["fault"] = std::move(fault);
    body["verdict"] = result.verdict;
    body["metrics"] = result.metrics.toJson();
    return body;
}

bool
moduleResultFromJson(const Json &body, ModuleResult &out)
{
    if (body.type() != Json::Type::kObject)
        return false;
    const Json *index = member(body, "index", Json::Type::kNumber);
    const Json *module = member(body, "module", Json::Type::kString);
    const Json *ok = member(body, "ok", Json::Type::kBool);
    const Json *quarantined =
        member(body, "quarantined", Json::Type::kBool);
    const Json *attempts = member(body, "attempts", Json::Type::kNumber);
    const Json *error = member(body, "error", Json::Type::kString);
    const Json *wall = member(body, "wall_ms", Json::Type::kNumber);
    const Json *sim = member(body, "sim_ns", Json::Type::kNumber);
    const Json *trace =
        member(body, "trace_recorded", Json::Type::kNumber);
    const Json *fault = member(body, "fault", Json::Type::kObject);
    const Json *verdict = body.find("verdict");
    const Json *metrics = member(body, "metrics", Json::Type::kObject);
    if (index == nullptr || module == nullptr || ok == nullptr ||
        quarantined == nullptr || attempts == nullptr ||
        error == nullptr || wall == nullptr || sim == nullptr ||
        trace == nullptr || fault == nullptr || verdict == nullptr ||
        metrics == nullptr) {
        return false;
    }

    ModuleResult result;
    result.index = static_cast<std::uint64_t>(index->asInt());
    result.module = module->asString();
    result.ok = ok->asBool();
    result.quarantined = quarantined->asBool();
    result.attempts = static_cast<int>(attempts->asInt());
    result.error = error->asString();
    result.wallMs = wall->asNumber();
    result.simNs = sim->asInt();
    result.traceRecorded = static_cast<std::uint64_t>(trace->asInt());

    auto faultField = [&fault](const char *key, std::uint64_t &into) {
        const Json *value = member(*fault, key, Json::Type::kNumber);
        if (value == nullptr)
            return false;
        into = static_cast<std::uint64_t>(value->asInt());
        return true;
    };
    if (!faultField("vrt_flips", result.faultStats.vrtFlips) ||
        !faultField("noise_bits", result.faultStats.noiseBits) ||
        !faultField("jittered_refs", result.faultStats.jitteredRefs) ||
        !faultField("dropped_refs", result.faultStats.droppedRefs) ||
        !faultField("dropped_wrs", result.faultStats.droppedWrs) ||
        !faultField("dropped_hammer_acts",
                    result.faultStats.droppedHammerActs) ||
        !faultField("temp_steps", result.faultStats.tempSteps)) {
        return false;
    }

    result.verdict = *verdict;
    if (!MetricsRegistry::fromJson(*metrics, result.metrics))
        return false;

    result.completed = true;
    result.fromJournal = true;
    out = std::move(result);
    return true;
}

JournalLoad
loadJournal(const std::string &path)
{
    JournalLoad load;
    std::string raw;
    if (!readFileToString(path, raw))
        return load;
    load.fileFound = true;

    std::size_t pos = 0;
    std::size_t record_no = 0;
    while (pos < raw.size()) {
        const std::size_t eol = raw.find('\n', pos);
        const bool torn = eol == std::string::npos;
        const std::string line =
            raw.substr(pos, torn ? std::string::npos : eol - pos);
        pos = torn ? raw.size() : eol + 1;

        // Validate the frame: {"crc":"...","body":{...}} with the CRC
        // taken over the compact re-serialization of body. Json::dump
        // is canonical (insertion-ordered keys, round-trip number
        // formatting), so parse->dump reproduces the writer's bytes.
        auto reject = [&](const char *why) {
            if (torn && pos == raw.size()) {
                load.tornTail = true;
            } else {
                ++load.corruptRecords;
                UTRR_DEBUG("journal: record ", record_no, ": ", why);
            }
        };
        const auto parsed = Json::parse(line);
        if (!parsed) {
            reject("unparsable line");
            ++record_no;
            continue;
        }
        const Json *crc = member(*parsed, "crc", Json::Type::kString);
        const Json *body = member(*parsed, "body", Json::Type::kObject);
        std::uint32_t want_crc = 0;
        if (crc == nullptr || body == nullptr ||
            !parseCrc32cHex(crc->asString(), want_crc)) {
            reject("missing crc/body");
            ++record_no;
            continue;
        }
        if (crc32c(body->dump()) != want_crc) {
            reject("checksum mismatch");
            ++record_no;
            continue;
        }

        const Json *kind = member(*body, "record", Json::Type::kString);
        if (kind == nullptr) {
            reject("missing record kind");
        } else if (kind->asString() == "campaign") {
            const Json *schema =
                member(*body, "schema", Json::Type::kNumber);
            const Json *campaign =
                member(*body, "campaign", Json::Type::kString);
            const Json *seed = member(*body, "seed", Json::Type::kNumber);
            const Json *total =
                member(*body, "jobs_total", Json::Type::kNumber);
            std::uint64_t campaign_hash = 0;
            if (record_no != 0 || schema == nullptr ||
                schema->asInt() != kJournalSchemaVersion ||
                campaign == nullptr || seed == nullptr ||
                total == nullptr ||
                !parseHex16(campaign->asString(), campaign_hash)) {
                reject("bad campaign header");
            } else {
                load.headerValid = true;
                load.headerCampaign = campaign_hash;
                load.headerSeed =
                    static_cast<std::uint64_t>(seed->asInt());
                load.headerJobsTotal =
                    static_cast<std::uint64_t>(total->asInt());
            }
        } else if (kind->asString() == "job") {
            const Json *key = member(*body, "key", Json::Type::kString);
            JournalJobRecord record;
            if (key == nullptr ||
                !parseHex16(key->asString(), record.key) ||
                !moduleResultFromJson(*body, record.result)) {
                reject("bad job record");
            } else {
                load.jobs.push_back(std::move(record));
            }
        } else {
            // Unknown-but-valid record kinds are ignored, so a newer
            // writer can add record types without breaking this
            // reader.
            UTRR_DEBUG("journal: skipping unknown record kind '",
                       kind->asString(), "'");
        }
        ++record_no;
    }
    return load;
}

bool
JournalWriter::open(const std::string &path, const CampaignKey &key,
                    const CampaignConfig &config,
                    std::uint64_t jobs_total, bool append_existing)
{
    const std::lock_guard<std::mutex> lock(mutex);
    recordIndex = 0;
    if (!file.open(path, /*truncate=*/!append_existing,
                   config.journalFsync)) {
        return false;
    }
    if (append_existing)
        return true;

    Json header = Json::object();
    header["record"] = Json("campaign");
    header["schema"] = Json(kJournalSchemaVersion);
    header["campaign"] = Json(key.hex());
    header["seed"] = Json(config.seed);
    header["module_seed"] = Json(config.moduleSeed);
    header["jobs_total"] = Json(jobs_total);
    header["tag"] = Json(config.contentTag);
    if (!appendLine(header)) {
        file.close();
        return false;
    }
    return true;
}

bool
JournalWriter::append(std::uint64_t job_key, const ModuleResult &result)
{
    const std::lock_guard<std::mutex> lock(mutex);
    if (!file.isOpen())
        return false;
    Json body = moduleResultToJson(result);
    body["key"] = Json(hex16(job_key));
    return appendLine(body);
}

std::uint64_t
JournalWriter::recordsWritten() const
{
    const std::lock_guard<std::mutex> lock(mutex);
    return static_cast<std::uint64_t>(recordIndex);
}

void
JournalWriter::setWriteFault(const std::optional<JournalWriteFault> &fault)
{
    const std::lock_guard<std::mutex> lock(mutex);
    writeFault = fault;
}

bool
JournalWriter::appendLine(const Json &body)
{
    const std::string payload = body.dump();
    Json frame = Json::object();
    frame["crc"] = Json(crc32cHex(payload));
    frame["body"] = body;
    const std::string line = frame.dump() + "\n";

    if (writeFault && writeFault->firesAt(recordIndex)) {
        // Crash test: emit the configured byte prefix (fsynced by
        // append) and die without cleanup — the torn tail the reader
        // must survive.
        const std::size_t keep = writeFault->partialBytes < 0
            ? line.size()
            : std::min<std::size_t>(
                  static_cast<std::size_t>(writeFault->partialBytes),
                  line.size());
        file.append(std::string_view(line).substr(0, keep));
        JournalWriteFault::die(-1);
    }

    ++recordIndex;
    return file.append(line);
}

} // namespace utrr
