/**
 * @file
 * Cooperative campaign cancellation.
 *
 * One process-wide stop flag, settable from an async signal handler:
 * SIGINT/SIGTERM call requestStop() (a lone relaxed atomic store — the
 * only async-signal-safe thing a handler may do here), campaign workers
 * poll stopFlagPtr() between jobs, and SoftMcHost polls it at its
 * watchdog poll point so even a single long job unwinds within a few
 * simulated commands. Nothing is lost on a stop: the write-ahead
 * journal already holds every finished job, so the run exits with the
 * resumable status and `--resume` picks up where it left off.
 */

#ifndef UTRR_RUNNER_CANCELLATION_HH
#define UTRR_RUNNER_CANCELLATION_HH

#include <atomic>

namespace utrr
{

/** The process-wide stop flag (for wiring into CampaignConfig). */
const std::atomic<bool> *stopFlagPtr();

/** Has a stop been requested? */
bool stopRequested();

/** Request a cooperative stop. Async-signal-safe. */
void requestStop();

/** Clear the flag (tests / consecutive campaigns in one process). */
void resetStopFlag();

/**
 * Install SIGINT + SIGTERM handlers that call requestStop(). A second
 * SIGINT restores the default disposition, so a stuck campaign can
 * still be killed the usual way. Returns false when sigaction fails.
 */
bool installStopSignalHandlers();

} // namespace utrr

#endif // UTRR_RUNNER_CANCELLATION_HH
