#include "runner/campaign.hh"

#include <atomic>
#include <chrono>
#include <optional>
#include <thread>

#include "common/logging.hh"
#include "obs/profiler.hh"

namespace utrr
{

namespace
{

double
elapsedMs(std::chrono::steady_clock::time_point begin)
{
    const auto delta = std::chrono::steady_clock::now() - begin;
    return std::chrono::duration<double, std::milli>(delta).count();
}

void
accumulate(FaultInjector::Stats &into, const FaultInjector::Stats &from)
{
    into.vrtFlips += from.vrtFlips;
    into.noiseBits += from.noiseBits;
    into.jitteredRefs += from.jitteredRefs;
    into.droppedRefs += from.droppedRefs;
    into.droppedWrs += from.droppedWrs;
    into.droppedHammerActs += from.droppedHammerActs;
    into.tempSteps += from.tempSteps;
}

std::uint64_t
faultEventCount(const FaultInjector::Stats &stats)
{
    return stats.vrtFlips + stats.noiseBits + stats.jitteredRefs +
        stats.droppedCommands();
}

} // namespace

CampaignRunner::CampaignRunner(CampaignConfig config) : cfg(config)
{
}

int
CampaignRunner::hardwareConcurrency()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

ModuleResult
CampaignRunner::runJob(const ModuleSpec &spec, std::uint64_t index,
                       const JobFn &fn) const
{
    ModuleResult result;
    result.module = spec.name;
    result.index = index;
    const auto wall_begin = std::chrono::steady_clock::now();

    const int max_attempts = 1 + std::max(0, cfg.maxWatchdogRetries);
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
        ++result.attempts;

        // A fresh substrate per attempt: a job that died mid-experiment
        // must not leak hammered rows or drifted retention into its
        // retry, and jobs never share an instance with one another.
        DramModule module(spec, cfg.moduleSeed);
        SoftMcHost host(module);
        MetricsRegistry metrics;
        host.attachMetrics(&metrics);
        if (cfg.traceCapacity > 0)
            host.trace().enable(cfg.traceCapacity);

        std::optional<FaultInjector> injector;
        if (cfg.faults.anyEnabled()) {
            // Attempt 0 reproduces the historical serial chaos-sweep
            // seeding exactly; retries re-salt so a deterministic
            // failure is not simply replayed.
            std::uint64_t fault_seed = cfg.seed * 1'000'003 + index;
            if (attempt > 0)
                fault_seed = hashMix(
                    fault_seed ^
                    hashMix(static_cast<std::uint64_t>(attempt)));
            injector.emplace(cfg.faults, fault_seed);
            host.attachFaultInjector(&*injector);
        }
        if (cfg.watchdogBudgetNs > 0)
            host.setWatchdogBudget(cfg.watchdogBudgetNs);

        // Job-keyed RNG: forked off the campaign seed by module name,
        // never by worker id or arrival order.
        Rng job_rng = Rng(cfg.seed).fork(spec.name);
        if (attempt > 0)
            job_rng = job_rng.fork(static_cast<std::uint64_t>(attempt));

        JobContext ctx{spec,
                       index,
                       attempt,
                       job_rng,
                       module,
                       host,
                       injector ? &*injector : nullptr,
                       metrics};

        // Root-anchored so jobs-1 (inline on the caller's thread) and
        // jobs-N (worker threads) merge to identical profile paths.
        ProfSpan job_span("campaign.job", host.clockPtr(),
                          ProfSpan::kAtRoot);

        auto capture = [&]() {
            host.publishPerfCounters();
            result.metrics = metrics;
            result.traceEvents = host.trace().events();
            result.traceRecorded = host.trace().recorded();
            if (injector)
                result.faultStats = injector->stats();
            result.simNs = host.now();
        };

        try {
            JobOutcome outcome = fn(ctx);
            result.ok = outcome.ok;
            result.verdict = std::move(outcome.verdict);
            result.error.clear();
            capture();
            break;
        } catch (const WatchdogTimeout &e) {
            result.ok = false;
            result.error = e.what();
            capture();
            if (attempt + 1 == max_attempts)
                result.quarantined = true;
        } catch (const std::exception &e) {
            // Non-watchdog failures are not retried: they indicate a
            // bug or bad configuration, not a sick-substrate run.
            result.ok = false;
            result.error = e.what();
            capture();
            break;
        }
    }

    result.wallMs = elapsedMs(wall_begin);
    return result;
}

CampaignResult
CampaignRunner::run(const std::vector<ModuleSpec> &specs,
                    const JobFn &fn) const
{
    CampaignResult out;
    out.modules.resize(specs.size());

    const int want = cfg.jobs <= 0 ? hardwareConcurrency() : cfg.jobs;
    const int workers = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(std::max(want, 1)),
        std::max<std::size_t>(specs.size(), 1)));
    out.jobsUsed = workers;

    // Workers report only per-job facts; the sink owns the running
    // campaign tallies and bumps them under its write mutex, so
    // jobs_done stays monotone in stream order under contention.
    const std::uint64_t jobs_total = specs.size();
    auto emitHeartbeat = [&](const ModuleResult &m) {
        if (cfg.telemetry == nullptr)
            return;
        JobHeartbeat beat;
        beat.module = m.module;
        beat.jobIndex = m.index;
        beat.ok = m.ok;
        beat.attempts = m.attempts;
        beat.quarantined = m.quarantined;
        beat.jobWallMs = m.wallMs;
        beat.jobSimNs = m.simNs;
        beat.metrics = &m.metrics;
        cfg.telemetry->heartbeat(beat);
    };
    if (cfg.telemetry != nullptr)
        cfg.telemetry->campaignStart(jobs_total, workers, cfg.seed);

    const auto wall_begin = std::chrono::steady_clock::now();
    if (workers <= 1) {
        // The historical serial path: no threads, campaign order.
        for (std::size_t i = 0; i < specs.size(); ++i) {
            out.modules[i] = runJob(specs[i], i, fn);
            emitHeartbeat(out.modules[i]);
        }
    } else {
        // Work queue: an atomic cursor over the spec vector. Each
        // worker writes only its own results slot, so the pool needs
        // no locking; the joins below order every write before the
        // single-threaded aggregation.
        std::atomic<std::size_t> next{0};
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(workers));
        for (int w = 0; w < workers; ++w) {
            pool.emplace_back([&]() {
                for (;;) {
                    const std::size_t i =
                        next.fetch_add(1, std::memory_order_relaxed);
                    if (i >= specs.size())
                        return;
                    out.modules[i] = runJob(specs[i], i, fn);
                    emitHeartbeat(out.modules[i]);
                }
            });
        }
        for (std::thread &worker : pool)
            worker.join();
    }
    out.wallMs = elapsedMs(wall_begin);

    // Aggregation: single-threaded, in campaign order, so the merged
    // registry and rollups are independent of scheduling.
    Time sim_total = 0;
    for (const ModuleResult &m : out.modules) {
        out.watchdogRetries +=
            static_cast<std::uint64_t>(std::max(m.attempts - 1, 0));
        out.quarantinedJobs += m.quarantined ? 1 : 0;
        out.failedJobs += m.ok ? 0 : 1;
        accumulate(out.faultTotals, m.faultStats);
        sim_total += m.simNs;
        out.merged.merge(m.metrics, "module." + m.module + ".");
    }
    out.merged.counter("campaign.jobs")
        .inc(static_cast<std::uint64_t>(out.modules.size()));
    out.merged.counter("campaign.watchdog_retries")
        .inc(out.watchdogRetries);
    out.merged.counter("campaign.quarantined").inc(out.quarantinedJobs);
    out.merged.counter("campaign.failures").inc(out.failedJobs);
    out.merged.counter("campaign.fault.events")
        .inc(faultEventCount(out.faultTotals));
    out.merged.counter("campaign.fault.dropped_commands")
        .inc(out.faultTotals.droppedCommands());
    out.merged.gauge("campaign.workers").set(workers);
    out.merged.gauge("campaign.wall_ms").set(out.wallMs);
    out.merged.gauge("campaign.sim_ns")
        .set(static_cast<double>(sim_total));
    if (cfg.telemetry != nullptr) {
        cfg.telemetry->campaignEnd(jobs_total, out.failedJobs,
                                   out.watchdogRetries,
                                   out.quarantinedJobs, out.wallMs);
    }
    return out;
}

Json
CampaignResult::verdicts() const
{
    Json array = Json::array();
    for (const ModuleResult &m : modules) {
        Json entry = Json::object();
        entry["module"] = Json(m.module);
        entry["ok"] = Json(m.ok);
        entry["attempts"] = Json(m.attempts);
        entry["quarantined"] = Json(m.quarantined);
        if (!m.error.empty())
            entry["error"] = Json(m.error);
        entry["verdict"] = m.verdict;
        array.push(std::move(entry));
    }
    return array;
}

void
CampaignResult::fillReport(ExperimentReport &report) const
{
    Time sim_total = 0;
    for (const ModuleResult &m : modules) {
        Json round = Json::object();
        round["module"] = Json(m.module);
        round["ok"] = Json(m.ok);
        round["attempts"] = Json(m.attempts);
        round["quarantined"] = Json(m.quarantined);
        if (!m.error.empty())
            round["error"] = Json(m.error);
        round["verdict"] = m.verdict;
        round["fault_events"] = Json(faultEventCount(m.faultStats));
        round["fresh_trace_events"] = Json(m.traceRecorded);
        round["wall_ms"] = Json(m.wallMs);
        round["sim_ns"] = Json(static_cast<std::int64_t>(m.simNs));
        report.addRound(std::move(round));
        sim_total += m.simNs;
    }
    report.setResult("modules",
                     Json(static_cast<std::uint64_t>(modules.size())));
    report.setResult("failures", Json(failedJobs));
    report.setResult("watchdog_retries", Json(watchdogRetries));
    report.setResult("quarantined", Json(quarantinedJobs));
    report.setResult("jobs", Json(jobsUsed));
    report.setResult("fault_events", Json(faultEventCount(faultTotals)));
    report.setResult("vrt_flips", Json(faultTotals.vrtFlips));
    report.setResult("dropped_commands",
                     Json(faultTotals.droppedCommands()));
    report.setTiming(wallMs, sim_total);
    report.attachMetrics(merged);
}

} // namespace utrr
