#include "runner/campaign.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <optional>
#include <thread>

#include "common/logging.hh"
#include "core/sim_backend.hh"
#include "obs/profiler.hh"
#include "runner/journal.hh"
#include "runner/profile_cache.hh"

namespace utrr
{

namespace
{

double
elapsedMs(std::chrono::steady_clock::time_point begin)
{
    const auto delta = std::chrono::steady_clock::now() - begin;
    return std::chrono::duration<double, std::milli>(delta).count();
}

void
accumulate(FaultInjector::Stats &into, const FaultInjector::Stats &from)
{
    into.vrtFlips += from.vrtFlips;
    into.noiseBits += from.noiseBits;
    into.jitteredRefs += from.jitteredRefs;
    into.droppedRefs += from.droppedRefs;
    into.droppedWrs += from.droppedWrs;
    into.droppedHammerActs += from.droppedHammerActs;
    into.tempSteps += from.tempSteps;
}

std::uint64_t
faultEventCount(const FaultInjector::Stats &stats)
{
    return stats.vrtFlips + stats.noiseBits + stats.jitteredRefs +
        stats.droppedCommands();
}

} // namespace

CampaignRunner::CampaignRunner(CampaignConfig config) : cfg(config)
{
}

Json
JobContext::profiled(const std::string &tag,
                     const std::function<Json()> &fn)
{
    // Fault injection bypasses the cache entirely: the injector draws
    // from its own RNG during profiling, and a restore cannot replay
    // those draws — skipping them would shift every later fault.
    if (profiles == nullptr || fault != nullptr)
        return fn();

    const std::string cache_key =
        ProfileCache::key(spec, moduleSeed, tag);
    if (std::shared_ptr<const ProfileCache::Entry> entry =
            profiles->find(cache_key)) {
        module.restore(entry->module);
        host.restoreState(entry->host);
        // Registry value-assignment may reseat map nodes; re-attaching
        // re-resolves every cached counter handle in module and host.
        metrics = entry->metrics;
        host.attachMetrics(&metrics);
        return entry->payload;
    }

    Json payload = fn();
    auto entry = std::make_shared<ProfileCache::Entry>();
    entry->module = module.snapshot();
    entry->host = host.snapshotState();
    entry->metrics = metrics;
    entry->payload = payload;
    profiles->insert(cache_key, std::move(entry));
    return payload;
}

int
CampaignRunner::hardwareConcurrency()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

ModuleResult
CampaignRunner::runJob(const ModuleSpec &spec, std::uint64_t index,
                       const JobFn &fn, int attempt_base) const
{
    ModuleResult result;
    result.module = spec.name;
    result.index = index;
    result.attempts = attempt_base;
    const auto wall_begin = std::chrono::steady_clock::now();

    const int max_attempts = 1 + std::max(0, cfg.maxWatchdogRetries);
    for (int local = 0; local < max_attempts; ++local) {
        // The effective attempt continues a prior run's ladder when
        // this is the resume of a quarantined job (attempt_base > 0),
        // so every salt below draws a stream the failed run never saw.
        const int attempt = attempt_base + local;
        ++result.attempts;

        // A fresh substrate per attempt: a job that died mid-experiment
        // must not leak hammered rows or drifted retention into its
        // retry, and jobs never share an instance with one another.
        DramModule module(spec, cfg.moduleSeed);
        SoftMcHost host(module);
        MetricsRegistry metrics;
        host.attachMetrics(&metrics);
        host.attachStopFlag(cfg.stopFlag);
        if (cfg.traceCapacity > 0)
            host.trace().enable(cfg.traceCapacity);

        std::optional<FaultInjector> injector;
        if (cfg.faults.anyEnabled()) {
            // Attempt 0 reproduces the historical serial chaos-sweep
            // seeding exactly; retries re-salt so a deterministic
            // failure is not simply replayed.
            std::uint64_t fault_seed = cfg.seed * 1'000'003 + index;
            if (attempt > 0)
                fault_seed = hashMix(
                    fault_seed ^
                    hashMix(static_cast<std::uint64_t>(attempt)));
            injector.emplace(cfg.faults, fault_seed);
            host.attachFaultInjector(&*injector);
        }
        if (cfg.watchdogBudgetNs > 0)
            host.setWatchdogBudget(cfg.watchdogBudgetNs);

        // Job-keyed RNG: forked off the campaign seed by module name,
        // never by worker id or arrival order.
        Rng job_rng = Rng(cfg.seed).fork(spec.name);
        if (attempt > 0)
            job_rng = job_rng.fork(static_cast<std::uint64_t>(attempt));

        SimBackend backend(module, host);

        JobContext ctx{spec,
                       index,
                       attempt,
                       job_rng,
                       module,
                       host,
                       injector ? &*injector : nullptr,
                       metrics,
                       cfg.moduleSeed,
                       cfg.stopFlag,
                       backend,
                       cfg.profileCache};

        // Root-anchored so jobs-1 (inline on the caller's thread) and
        // jobs-N (worker threads) merge to identical profile paths.
        ProfSpan job_span("campaign.job", host.clockPtr(),
                          ProfSpan::kAtRoot);

        auto capture = [&]() {
            host.publishPerfCounters();
            result.metrics = metrics;
            result.traceEvents = host.trace().events();
            result.traceRecorded = host.trace().recorded();
            if (injector)
                result.faultStats = injector->stats();
            result.simNs = host.now();
        };

        try {
            JobOutcome outcome = fn(ctx);
            result.ok = outcome.ok;
            result.verdict = std::move(outcome.verdict);
            result.error.clear();
            result.completed = true;
            capture();
            break;
        } catch (const StopRequested &e) {
            // Cooperative stop: the job is abandoned mid-flight, not
            // failed — it stays pending (completed = false) and will
            // be re-run from scratch on resume.
            result.ok = false;
            result.completed = false;
            result.error = e.what();
            capture();
            break;
        } catch (const WatchdogTimeout &e) {
            result.ok = false;
            result.error = e.what();
            capture();
            if (local + 1 == max_attempts) {
                result.quarantined = true;
                result.completed = true;
            }
        } catch (const std::exception &e) {
            // Non-watchdog failures are not retried: they indicate a
            // bug or bad configuration, not a sick-substrate run.
            result.ok = false;
            result.error = e.what();
            result.completed = true;
            capture();
            break;
        }
    }

    result.wallMs = elapsedMs(wall_begin);
    return result;
}

CampaignResult
CampaignRunner::run(const std::vector<ModuleSpec> &specs,
                    const JobFn &fn) const
{
    CampaignResult out;
    out.modules.resize(specs.size());
    const std::uint64_t jobs_total = specs.size();

    // jobsUsed is derived from the *campaign* size, not from how many
    // jobs remain after a resume — the value lands in the report and
    // a resumed run must reproduce the uninterrupted run's bytes.
    const int want = cfg.jobs <= 0 ? hardwareConcurrency() : cfg.jobs;
    const int workers = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(std::max(want, 1)),
        std::max<std::size_t>(specs.size(), 1)));
    out.jobsUsed = workers;

    // --- write-ahead journal / resume (DESIGN.md §14) ----------------
    JournalWriter journal;
    CampaignKey key;
    std::vector<int> attempt_base(specs.size(), 0);
    bool resumed_existing = false;
    if (!cfg.journalPath.empty()) {
        key = CampaignKey::compute(cfg, specs);
        if (cfg.resume) {
            JournalLoad load = loadJournal(cfg.journalPath);
            if (load.fileFound && load.headerValid &&
                load.headerCampaign == key.value()) {
                resumed_existing = true;
                out.journalCorruptRecords = load.corruptRecords;
                out.journalTornTail = load.tornTail;
                for (JournalJobRecord &rec : load.jobs) {
                    // Re-key every record against *this* campaign; a
                    // stale or foreign record can never splice in.
                    const std::uint64_t i = rec.result.index;
                    if (i >= specs.size() ||
                        specs[i].name != rec.result.module ||
                        rec.key != key.jobKey(specs[i], i)) {
                        ++out.journalForeignRecords;
                        continue;
                    }
                    if (rec.result.ok) {
                        // Last occurrence wins (a crash can race a
                        // rewrite of the same job on a prior resume).
                        out.modules[i] = std::move(rec.result);
                        attempt_base[i] = 0;
                    } else if (rec.result.quarantined) {
                        // Re-attempt with the ladder continued past
                        // the recorded attempts: fresh salts, not a
                        // replay of the recorded failure.
                        attempt_base[i] = rec.result.attempts;
                    }
                    // A plain (non-quarantined) failure re-runs from
                    // scratch: it is deterministic, so the re-run
                    // reproduces the uninterrupted run's bytes.
                }
            } else if (load.fileFound) {
                // Valid-looking file for some *other* campaign (or no
                // readable header): rotate it aside rather than
                // overwrite — it may be another run's progress.
                out.journalForeignRecords += load.jobs.size();
                const std::string stale = cfg.journalPath + ".stale";
                if (renameFile(cfg.journalPath, stale)) {
                    warn(logFmt("journal ", cfg.journalPath,
                                " belongs to a different campaign; "
                                "rotated to ",
                                stale));
                } else {
                    warn(logFmt("journal ", cfg.journalPath,
                                " is foreign and could not be "
                                "rotated; overwriting"));
                }
            }
        }
        // Arm the crash hook *before* open(): the header is journal
        // record 0, and the recovery harness must be able to tear it
        // too.
        const std::optional<JournalWriteFault> write_fault =
            cfg.journalFault ? cfg.journalFault
                             : JournalWriteFault::fromEnv();
        if (write_fault)
            journal.setWriteFault(write_fault);
        if (!journal.open(cfg.journalPath, key, cfg, jobs_total,
                          resumed_existing)) {
            warn(logFmt("cannot open journal ", cfg.journalPath,
                        "; campaign continues without durability"));
        }
    }

    std::vector<std::size_t> pending_idx;
    pending_idx.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (!out.modules[i].completed)
            pending_idx.push_back(i);
    }
    out.journaledJobs = jobs_total - pending_idx.size();
    out.scheduledJobs = pending_idx.size();

    // Workers report only per-job facts; the sink owns the running
    // campaign tallies and bumps them under its write mutex, so
    // jobs_done stays monotone in stream order under contention.
    auto emitHeartbeat = [&](const ModuleResult &m) {
        if (cfg.telemetry == nullptr)
            return;
        JobHeartbeat beat;
        beat.module = m.module;
        beat.jobIndex = m.index;
        beat.ok = m.ok;
        beat.attempts = m.attempts;
        beat.quarantined = m.quarantined;
        beat.jobWallMs = m.wallMs;
        beat.jobSimNs = m.simNs;
        beat.metrics = &m.metrics;
        cfg.telemetry->heartbeat(beat);
    };
    if (cfg.telemetry != nullptr) {
        cfg.telemetry->campaignStart(jobs_total, workers, cfg.seed);
        if (resumed_existing) {
            cfg.telemetry->campaignResume(out.journaledJobs,
                                          out.scheduledJobs);
        }
    }

    const auto stopSeen = [this]() {
        return cfg.stopFlag != nullptr &&
            cfg.stopFlag->load(std::memory_order_relaxed);
    };

    // Write-ahead ordering: the journal record is on disk before the
    // result is published to the merge set or telemetry — a crash
    // after either publish can therefore never lose an unjournaled
    // result.
    const auto processJob = [&](std::size_t i) {
        ModuleResult r = runJob(specs[i], i, fn, attempt_base[i]);
        if (r.completed && journal.isOpen())
            journal.append(key.jobKey(specs[i], i), r);
        out.modules[i] = std::move(r);
        if (out.modules[i].completed)
            emitHeartbeat(out.modules[i]);
    };

    const auto wall_begin = std::chrono::steady_clock::now();
    const int spawn = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(workers), pending_idx.size()));
    if (spawn <= 1) {
        // The historical serial path: no threads, campaign order.
        for (const std::size_t i : pending_idx) {
            if (stopSeen())
                break;
            processJob(i);
        }
    } else {
        // Work queue: an atomic cursor over the pending-index vector.
        // Each worker writes only its own results slot, so the pool
        // needs no locking beyond the journal's internal mutex; the
        // joins below order every write before the single-threaded
        // aggregation.
        std::atomic<std::size_t> next{0};
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(spawn));
        for (int w = 0; w < spawn; ++w) {
            pool.emplace_back([&]() {
                for (;;) {
                    if (stopSeen())
                        return;
                    const std::size_t slot =
                        next.fetch_add(1, std::memory_order_relaxed);
                    if (slot >= pending_idx.size())
                        return;
                    processJob(pending_idx[slot]);
                }
            });
        }
        for (std::thread &worker : pool)
            worker.join();
    }
    out.wallMs = elapsedMs(wall_begin);

    // Aggregation: single-threaded, in campaign order, so the merged
    // registry and rollups are independent of scheduling. Jobs without
    // a final result (stop-interrupted or never started) are excluded
    // and surface as pendingJobs instead.
    Time sim_total = 0;
    for (const ModuleResult &m : out.modules) {
        if (!m.completed) {
            ++out.pendingJobs;
            continue;
        }
        out.watchdogRetries +=
            static_cast<std::uint64_t>(std::max(m.attempts - 1, 0));
        out.quarantinedJobs += m.quarantined ? 1 : 0;
        out.failedJobs += m.ok ? 0 : 1;
        accumulate(out.faultTotals, m.faultStats);
        sim_total += m.simNs;
        out.merged.merge(m.metrics, "module." + m.module + ".");
    }
    out.interrupted = out.pendingJobs > 0;
    out.merged.counter("campaign.jobs")
        .inc(static_cast<std::uint64_t>(out.modules.size()));
    out.merged.counter("campaign.watchdog_retries")
        .inc(out.watchdogRetries);
    out.merged.counter("campaign.quarantined").inc(out.quarantinedJobs);
    out.merged.counter("campaign.failures").inc(out.failedJobs);
    out.merged.counter("campaign.fault.events")
        .inc(faultEventCount(out.faultTotals));
    out.merged.counter("campaign.fault.dropped_commands")
        .inc(out.faultTotals.droppedCommands());
    out.merged.gauge("campaign.workers").set(workers);
    out.merged.gauge("campaign.wall_ms").set(out.wallMs);
    out.merged.gauge("campaign.sim_ns")
        .set(static_cast<double>(sim_total));
    if (cfg.telemetry != nullptr) {
        cfg.telemetry->campaignEnd(jobs_total, out.failedJobs,
                                   out.watchdogRetries,
                                   out.quarantinedJobs, out.wallMs);
    }
    return out;
}

Json
CampaignResult::verdicts() const
{
    Json array = Json::array();
    for (const ModuleResult &m : modules) {
        Json entry = Json::object();
        entry["module"] = Json(m.module);
        if (!m.completed) {
            entry["pending"] = Json(true);
            array.push(std::move(entry));
            continue;
        }
        entry["ok"] = Json(m.ok);
        entry["attempts"] = Json(m.attempts);
        entry["quarantined"] = Json(m.quarantined);
        if (!m.error.empty())
            entry["error"] = Json(m.error);
        entry["verdict"] = m.verdict;
        array.push(std::move(entry));
    }
    return array;
}

void
CampaignResult::fillReport(ExperimentReport &report) const
{
    Time sim_total = 0;
    for (const ModuleResult &m : modules) {
        Json round = Json::object();
        round["module"] = Json(m.module);
        if (!m.completed) {
            // Interrupted mid-flight or never started: resumable.
            round["pending"] = Json(true);
            report.addRound(std::move(round));
            continue;
        }
        round["ok"] = Json(m.ok);
        round["attempts"] = Json(m.attempts);
        round["quarantined"] = Json(m.quarantined);
        if (!m.error.empty())
            round["error"] = Json(m.error);
        round["verdict"] = m.verdict;
        round["fault_events"] = Json(faultEventCount(m.faultStats));
        round["fresh_trace_events"] = Json(m.traceRecorded);
        round["wall_ms"] = Json(m.wallMs);
        round["sim_ns"] = Json(static_cast<std::int64_t>(m.simNs));
        report.addRound(std::move(round));
        sim_total += m.simNs;
    }
    report.setResult("modules",
                     Json(static_cast<std::uint64_t>(modules.size())));
    report.setResult("failures", Json(failedJobs));
    report.setResult("watchdog_retries", Json(watchdogRetries));
    report.setResult("quarantined", Json(quarantinedJobs));
    report.setResult("jobs", Json(jobsUsed));
    report.setResult("fault_events", Json(faultEventCount(faultTotals)));
    report.setResult("vrt_flips", Json(faultTotals.vrtFlips));
    report.setResult("dropped_commands",
                     Json(faultTotals.droppedCommands()));
    // Structured error roll-up: one entry per job whose final attempt
    // failed, machine-readable enough for CI to key on. Deterministic
    // (error text carries simulated times only), so the key's presence
    // does not perturb resumed-vs-clean byte equality.
    if (failedJobs > 0) {
        Json errors = Json::array();
        for (const ModuleResult &m : modules) {
            if (!m.completed || m.ok)
                continue;
            Json entry = Json::object();
            entry["module"] = Json(m.module);
            entry["quarantined"] = Json(m.quarantined);
            entry["attempts"] = Json(m.attempts);
            entry["error"] = Json(m.error);
            errors.push(std::move(entry));
        }
        report.setResult("errors", std::move(errors));
    }
    // Emitted only when true so a completed resumed run's report stays
    // byte-identical to the uninterrupted run's.
    if (interrupted) {
        report.setResult("interrupted", Json(true));
        report.setResult("pending", Json(pendingJobs));
    }
    report.setTiming(wallMs, sim_total);
    report.attachMetrics(merged);
}

} // namespace utrr
