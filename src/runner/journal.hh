/**
 * @file
 * Write-ahead result journal for durable campaigns.
 *
 * A campaign that runs for hours must survive a crash, OOM kill or CI
 * timeout without losing finished work. The journal provides that: one
 * checksummed JSONL record per *completed* job, fsynced to disk before
 * the result enters the merge set, so after a SIGKILL at any moment the
 * journal holds exactly the set of jobs whose results are safe to
 * reuse. Determinism (DESIGN.md §10) makes recovery provably correct:
 * re-running only the missing jobs and merging yields a report
 * bit-identical (on the deterministic projection) to an uninterrupted
 * run.
 *
 * On-disk format — one JSON object per line:
 *
 *   {"crc":"<8 hex>","body":{...}}
 *
 * where crc is the CRC-32C of the compact serialization of `body`.
 * The first record's body is the campaign header (schema version,
 * campaign content hash, seed, module seed, job count, job tag); every
 * further record is a finished job keyed by a per-job content hash.
 * The reader tolerates:
 *
 *   - a torn tail (partial last line from a crash mid-write): dropped,
 *   - a corrupt record anywhere (bad JSON, bad checksum): skipped and
 *     counted — one bad sector does not poison the rest,
 *   - stale/foreign job records whose key does not match the current
 *     campaign: rejected during re-keying by the runner.
 *
 * The campaign content hash covers everything that determines job
 * results: the campaign seed, module seed, fault rates, watchdog
 * budget/retry ladder, trace capacity, the module spec list, and a
 * caller-supplied job tag describing the job body and its
 * configuration. Any change to any of these re-keys the campaign and
 * orphans old records — resuming with a different config can never
 * splice in results the current campaign would not have produced.
 */

#ifndef UTRR_RUNNER_JOURNAL_HH
#define UTRR_RUNNER_JOURNAL_HH

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/durable_file.hh"
#include "fault/io_fault.hh"
#include "runner/campaign.hh"

namespace utrr
{

/** Journal on-disk schema version. */
inline constexpr int kJournalSchemaVersion = 1;

/**
 * Content identity of one campaign: a 64-bit hash over every input
 * that determines job results, plus per-job keys derived from it.
 */
class CampaignKey
{
  public:
    /** Hash the campaign config + spec list (+ cfg.contentTag). */
    static CampaignKey compute(const CampaignConfig &config,
                               const std::vector<ModuleSpec> &specs);

    std::uint64_t value() const { return hash; }

    /** 16-hex-digit rendering used in journal records. */
    std::string hex() const;

    /** Content key of job @p index running @p spec. */
    std::uint64_t jobKey(const ModuleSpec &spec,
                         std::uint64_t index) const;

  private:
    std::uint64_t hash = 0;
};

/** One job record parsed back out of a journal file. */
struct JournalJobRecord
{
    /** The record's own job content key (to re-key against). */
    std::uint64_t key = 0;
    ModuleResult result;
};

/** What loading a journal file found. */
struct JournalLoad
{
    /** File existed and its header record was valid. */
    bool fileFound = false;
    bool headerValid = false;

    /** Campaign hash the header claims (valid headers only). */
    std::uint64_t headerCampaign = 0;
    std::uint64_t headerSeed = 0;
    std::uint64_t headerJobsTotal = 0;

    /** Valid job records, in file order (duplicates possible when a
     *  crash raced a retry; the runner keeps the last occurrence). */
    std::vector<JournalJobRecord> jobs;

    /** Records skipped for a bad checksum / unparsable body. */
    std::uint64_t corruptRecords = 0;
    /** True when the final line was torn (no newline / partial). */
    bool tornTail = false;
};

/**
 * Load and validate @p path. Missing file => fileFound = false, which
 * resume treats as "nothing done yet". Corruption never fails the
 * load; bad records are skipped and counted.
 */
JournalLoad loadJournal(const std::string &path);

/** Serialize a finished job for the journal (exact round trip). */
Json moduleResultToJson(const ModuleResult &result);

/**
 * Rebuild a ModuleResult from moduleResultToJson output. Returns false
 * on malformed input. Trace event payloads are not journaled (only the
 * recorded count survives) — campaigns run with tracing off; DESIGN.md
 * §14 documents the exclusion.
 */
bool moduleResultFromJson(const Json &body, ModuleResult &out);

/**
 * The append-side handle. Thread-safe: workers append from the pool,
 * serialized by an internal mutex. Every append is flushed (and by
 * default fsynced) before it returns — write-ahead: the runner calls
 * append() *before* publishing the result to the merge set.
 */
class JournalWriter
{
  public:
    /**
     * Open @p path. When @p append_existing, an existing valid journal
     * for the same campaign is continued (no new header); otherwise
     * the file is truncated and a fresh header written. Returns false
     * when the file cannot be opened or the header write fails.
     */
    bool open(const std::string &path, const CampaignKey &key,
              const CampaignConfig &config, std::uint64_t jobs_total,
              bool append_existing);

    bool isOpen() const { return file.isOpen(); }

    /** Append one finished job under its content key. */
    bool append(std::uint64_t job_key, const ModuleResult &result);

    /** Records appended through this writer (header included). */
    std::uint64_t recordsWritten() const;

    /**
     * Arm the crash-test hook: the append of record N dies by SIGKILL
     * after writing a configurable byte prefix (fault/io_fault.hh).
     */
    void setWriteFault(const std::optional<JournalWriteFault> &fault);

  private:
    bool appendLine(const Json &body);

    mutable std::mutex mutex;
    DurableAppendFile file;
    std::int64_t recordIndex = 0;
    std::optional<JournalWriteFault> writeFault;
};

} // namespace utrr

#endif // UTRR_RUNNER_JOURNAL_HH
