/**
 * @file
 * Deterministic parallel campaign engine.
 *
 * A campaign is a batch of independent module jobs (the Table-1 shape:
 * one black-box experiment per DDR4 module). CampaignRunner executes
 * them on a fixed-size worker pool with these guarantees:
 *
 *  - **Isolation**: every job (and every retry attempt) gets a freshly
 *    constructed DramModule + SoftMcHost + FaultInjector + metrics
 *    registry + command trace. No simulator state is shared between
 *    jobs, so workers never need a lock on the hot path.
 *
 *  - **Determinism**: each job draws from an RNG forked off the
 *    campaign seed by module *name* (Rng::fork(name)), and the fault
 *    injector is seeded from (campaign seed, job index, attempt).
 *    Results are therefore bit-identical regardless of worker count or
 *    scheduling order — the property pinned by test_runner's
 *    serial-vs-parallel equivalence suite.
 *
 *  - **Bounded retry**: a job that dies with WatchdogTimeout is retried
 *    up to maxWatchdogRetries times with an attempt-salted RNG/fault
 *    stream; on exhaustion it is quarantined (reported, not fatal) and
 *    the rest of the campaign still completes.
 *
 *  - **Order-independent aggregation**: per-job verdicts, metric
 *    registries, trace buffers and fault tallies are captured into a
 *    results slot owned by that job alone, then merged single-threaded
 *    after the pool joins (metrics under a "module.<name>." prefix,
 *    campaign-level rollups under "campaign.*").
 *
 * `jobs = 1` runs everything inline on the calling thread — exactly the
 * historical serial path, no threads spawned.
 */

#ifndef UTRR_RUNNER_CAMPAIGN_HH
#define UTRR_RUNNER_CAMPAIGN_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "dram/module.hh"
#include "fault/fault_injector.hh"
#include "fault/io_fault.hh"
#include "obs/metrics.hh"
#include "obs/report.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "softmc/host.hh"

namespace utrr
{

class ProfileCache;
class SimBackend;

/**
 * Campaign-wide knobs. The defaults reproduce the historical serial
 * sweeps: fault-free, no watchdog, no tracing.
 */
struct CampaignConfig
{
    /** Worker threads; <= 0 selects hardwareConcurrency(). */
    int jobs = 0;

    /** Campaign master seed; every job forks from it by module name. */
    std::uint64_t seed = 1;

    /** DramModule physics seed (kept separate so the same silicon can
     *  be campaigned under different experiment seeds). */
    std::uint64_t moduleSeed = 2021;

    /** Fault rates; an all-zero config attaches no injector at all. */
    FaultConfig faults;

    /**
     * Simulated-time watchdog armed per attempt (0 disarms). Jobs may
     * additionally arm their own budget (e.g. TrrRevengConfig's).
     */
    Time watchdogBudgetNs = 0;

    /** Retries after the first attempt for WatchdogTimeout deaths. */
    int maxWatchdogRetries = 2;

    /** Per-job command-trace ring capacity (0 = tracing off). */
    std::size_t traceCapacity = 0;

    /**
     * Streaming telemetry sink (not owned; nullptr = no telemetry).
     * The runner emits campaign_start, one heartbeat per finished job
     * (from whichever worker ran it) and campaign_end. Telemetry is
     * observability only — it never feeds back into job execution, so
     * attaching a sink cannot perturb the determinism guarantees.
     */
    TelemetrySink *telemetry = nullptr;

    // --- durability (DESIGN.md §14) ----------------------------------

    /**
     * Write-ahead result journal path (empty = journaling off). Every
     * finished job is appended as a checksummed, fsynced JSONL record
     * *before* its result is published, so a crash at any instant
     * loses at most the jobs still in flight.
     */
    std::string journalPath;

    /**
     * Resume from an existing journal: completed jobs whose content
     * key matches this campaign are loaded instead of re-run; only the
     * missing (or quarantined — those re-attempt with fresh salts)
     * jobs are scheduled. A journal written by a different campaign
     * configuration is rotated aside to "<journalPath>.stale".
     */
    bool resume = false;

    /** fsync the journal after each record (off only for benches). */
    bool journalFsync = true;

    /**
     * Identity of the job *body* and its configuration, folded into
     * the campaign content hash. Callers must change this string
     * whenever the job function would produce different results for
     * the same (spec, seed) — e.g. "identify:battery:v1" vs a digest
     * of the fuzz options — so stale journals can never resume into a
     * differently-configured campaign.
     */
    std::string contentTag;

    /**
     * Cooperative-stop flag (not owned; nullptr = never stops).
     * Polled by workers between jobs and by the host at its watchdog
     * poll point, so SIGINT/SIGTERM (via runner/cancellation.hh)
     * abandons in-flight work within a few simulated commands, the
     * journal stays complete, and run() returns a partial result with
     * interrupted = true.
     */
    const std::atomic<bool> *stopFlag = nullptr;

    /**
     * Crash-test hook forwarded to the journal writer (tests/CI only):
     * the append of record N kills the process mid-write. When unset,
     * UTRR_JOURNAL_CRASH from the environment is honoured instead.
     */
    std::optional<JournalWriteFault> journalFault;

    /**
     * Cross-job profile cache (not owned; nullptr = caching off).
     * Job bodies that wrap their profiling phase in
     * JobContext::profiled() snapshot the device at profile completion
     * into this cache, keyed by (module, moduleSeed, tag); later jobs
     * — watchdog retries, repeated batteries over the same silicon —
     * restore instead of re-profiling. Fault-injected campaigns bypass
     * the cache (an injector's RNG draws during profiling cannot be
     * replayed by a restore), so chaos sweeps are never perturbed.
     */
    ProfileCache *profileCache = nullptr;
};

/** Everything a job body may touch. All of it is job-private. */
struct JobContext
{
    const ModuleSpec &spec;
    /** Stable campaign position of this job. */
    std::uint64_t index;
    /** 0 on the first try, 1.. on watchdog retries. */
    int attempt;
    /** Job-keyed fork of the campaign seed (attempt-salted on retry). */
    Rng rng;
    DramModule &module;
    SoftMcHost &host;
    /** nullptr when the campaign runs fault-free. */
    FaultInjector *fault;
    MetricsRegistry &metrics;
    /**
     * The campaign's DramModule silicon seed. Job bodies that build
     * additional private module instances (e.g. the pattern
     * synthesizer's fresh-substrate evaluations) must seed them from
     * this so a job is a pure function of (spec, seed, moduleSeed).
     */
    std::uint64_t moduleSeed;
    /**
     * The campaign's cooperative-stop flag (nullptr = never stops).
     * Job bodies that build private SoftMcHosts should attach it so a
     * SIGINT lands inside long in-job loops too, not only at job
     * boundaries.
     */
    const std::atomic<bool> *stopFlag;
    /**
     * The job's module + host behind the DeviceBackend seam
     * (src/core/device_backend.hh). Job bodies written against the
     * interface — execute / accounting / snapshot — run unchanged on
     * any conforming backend; bodies needing the immediate host API
     * keep using `host` (the same underlying pair).
     */
    SimBackend &backend;
    /** Campaign profile cache (nullptr = caching off). */
    ProfileCache *profiles;

    /**
     * Run @p fn once per (module, moduleSeed, tag), campaign-wide.
     *
     * On a cache miss, runs @p fn, then snapshots the device (module +
     * host), the job's metrics registry and the returned payload into
     * the cache. On a hit, restores all of that instead of calling
     * @p fn — the job continues exactly as if it had just profiled.
     * With caching off (no cache attached, or a fault injector
     * present) this is a plain call to @p fn.
     *
     * Contract for @p fn: it must be a pure function of the device
     * state and (spec, moduleSeed) — any randomness must come from a
     * private fork (e.g. ctx.rng.fork(tag)), never from draws that
     * advance state shared with the rest of the job, so hit and miss
     * paths leave the job bit-identical.
     */
    Json profiled(const std::string &tag,
                  const std::function<Json()> &fn);
};

/** What a job body returns. */
struct JobOutcome
{
    bool ok = false;
    /** Free-form verdict payload; byte-compared by equivalence tests,
     *  so job bodies must keep wall-clock values out of it. */
    Json verdict;
};

/**
 * A job body. Must be safe to call concurrently from several workers:
 * touch only the JobContext (and immutable campaign inputs), never
 * shared mutable state.
 */
using JobFn = std::function<JobOutcome(JobContext &)>;

/** Result of one module job (its final attempt). */
struct ModuleResult
{
    std::string module;
    std::uint64_t index = 0;
    bool ok = false;
    /** True when watchdog retries were exhausted. */
    bool quarantined = false;
    /**
     * Holds a final result (fresh or journaled)? False for jobs that
     * were interrupted mid-flight or never scheduled — those are
     * excluded from aggregation and reported as pending.
     */
    bool completed = false;
    /** Restored from the write-ahead journal instead of executed. */
    bool fromJournal = false;
    /**
     * Total attempts, including those of prior interrupted runs (a
     * quarantined job resumed from a journal continues the ladder with
     * freshly salted attempts instead of replaying its failure).
     */
    int attempts = 0;
    /** Last error (watchdog/exception text); empty on success. */
    std::string error;
    Json verdict;
    /** Job-private registry captured at job end. */
    MetricsRegistry metrics;
    FaultInjector::Stats faultStats;
    std::vector<TraceEvent> traceEvents;
    std::uint64_t traceRecorded = 0;
    double wallMs = 0.0;
    Time simNs = 0;
};

/** Aggregated campaign outcome. */
struct CampaignResult
{
    /** Per-module results in campaign (input) order. */
    std::vector<ModuleResult> modules;
    int jobsUsed = 1;
    double wallMs = 0.0;
    std::uint64_t watchdogRetries = 0;
    std::uint64_t quarantinedJobs = 0;
    /** Jobs whose final attempt was not ok (includes quarantined). */
    std::uint64_t failedJobs = 0;
    /**
     * True when a cooperative stop interrupted the campaign before
     * every job finished: the journal (if any) is complete for the
     * finished jobs and the run is resumable.
     */
    bool interrupted = false;
    /** Jobs restored from the journal rather than executed. */
    std::uint64_t journaledJobs = 0;
    /** Jobs actually scheduled (campaign size minus journaled). */
    std::uint64_t scheduledJobs = 0;
    /** Jobs without a final result (interrupted / never started). */
    std::uint64_t pendingJobs = 0;
    /** Journal recovery diagnostics (resume only). */
    std::uint64_t journalCorruptRecords = 0;
    std::uint64_t journalForeignRecords = 0;
    bool journalTornTail = false;
    FaultInjector::Stats faultTotals;
    /**
     * Per-module registries merged under "module.<name>." plus
     * campaign rollup metrics ("campaign.*"). Counters and histograms
     * are deterministic; "campaign.wall_ms" (a gauge) is not.
     */
    MetricsRegistry merged;

    bool allOk() const { return failedJobs == 0 && pendingJobs == 0; }

    /**
     * Deterministic per-module verdict array (campaign order): module,
     * ok, attempts, quarantined, error and the job's verdict payload.
     * dump() of this value is the byte-equality surface of the
     * serial-vs-parallel tests.
     */
    Json verdicts() const;

    /**
     * Fill @p report with per-module rounds, campaign-level results
     * (failures, retries, fault-event totals), timing (campaign wall
     * time + summed simulated time) and the merged metrics snapshot.
     */
    void fillReport(ExperimentReport &report) const;
};

/**
 * The runner. Stateless between run() calls; a single instance may be
 * reused for several campaigns.
 */
class CampaignRunner
{
  public:
    explicit CampaignRunner(CampaignConfig config);

    const CampaignConfig &config() const { return cfg; }

    /** Execute @p fn once per spec; blocks until all jobs finished. */
    CampaignResult run(const std::vector<ModuleSpec> &specs,
                       const JobFn &fn) const;

    /** Detected hardware concurrency (>= 1). */
    static int hardwareConcurrency();

  private:
    /**
     * Execute one job. @p attempt_base > 0 continues a prior run's
     * retry ladder (resume of a quarantined job): every RNG/fault salt
     * uses the *effective* attempt (base + local), so the re-run draws
     * fresh streams instead of replaying the recorded failure.
     */
    ModuleResult runJob(const ModuleSpec &spec, std::uint64_t index,
                        const JobFn &fn, int attempt_base) const;

    CampaignConfig cfg;
};

} // namespace utrr

#endif // UTRR_RUNNER_CAMPAIGN_HH
