/**
 * @file
 * Cross-job profile cache: snapshot-at-profile-completion reuse.
 *
 * Row scouting dominates the wall time of identification campaigns and
 * is a pure function of (module spec, silicon seed): every attempt,
 * fuzz case and repeated battery over the same module re-derives the
 * same row groups from the same physics. The cache stores, per
 * (module, seed, tag) key, the device state right after a profiling
 * block completed — a DramModule snapshot (COW row sharing keeps it
 * cheap), the host snapshot, the job's metrics registry and the block's
 * JSON payload — so later jobs restore and go instead of re-profiling
 * (JobContext::profiled in runner/campaign.hh).
 *
 * Thread-safe: campaign workers may probe and fill it concurrently.
 * Entries are immutable once inserted (shared_ptr<const Entry>), and
 * restoring from one never mutates it — DramModule::restore clones the
 * TRR state and shares row contents copy-on-write.
 */

#ifndef UTRR_RUNNER_PROFILE_CACHE_HH
#define UTRR_RUNNER_PROFILE_CACHE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "dram/module.hh"
#include "obs/metrics.hh"
#include "obs/report.hh"
#include "softmc/host.hh"

namespace utrr
{

class ProfileCache
{
  public:
    /** One cached profile: the device right after the block ran, plus
     *  the block's payload. */
    struct Entry
    {
        DramModule::Snapshot module;
        SoftMcHost::Snapshot host;
        MetricsRegistry metrics;
        Json payload;
    };

    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
    };

    /** Cache key: the profile is a pure function of these three. The
     *  tag must version the profiling body (e.g. "identify:pools:v1")
     *  so a changed block can never resume a stale profile. */
    static std::string key(const ModuleSpec &spec,
                           std::uint64_t module_seed,
                           const std::string &tag);

    /** Look up a key; counts a hit or miss. nullptr when absent. */
    std::shared_ptr<const Entry> find(const std::string &key) const;

    /** Publish an entry. First insert wins (all producers of a key
     *  compute identical state, so dropping a racing duplicate is
     *  harmless). */
    void insert(const std::string &key,
                std::shared_ptr<const Entry> entry);

    Stats stats() const;
    std::size_t size() const;

  private:
    mutable std::mutex mu;
    std::map<std::string, std::shared_ptr<const Entry>> entries;
    mutable Stats tally;
};

} // namespace utrr

#endif // UTRR_RUNNER_PROFILE_CACHE_HH
