/**
 * @file
 * The campaign job used by the 45-module reverse-engineering battery:
 * identify a module's TRR-to-REF period and neighbour count black-box
 * and compare them against the spec's ground truth.
 *
 * Shared by `reverse_engineer --battery/--chaos`, the runner test
 * suite and the bench harness so all three campaign over the exact
 * same per-module procedure.
 */

#ifndef UTRR_RUNNER_REVENG_JOB_HH
#define UTRR_RUNNER_REVENG_JOB_HH

#include "core/reveng.hh"
#include "runner/campaign.hh"

namespace utrr
{

/** Per-module reverse-engineering knobs of the identification job. */
struct IdentifyJobConfig
{
    TrrRevengConfig reveng;

    /** Fault-free battery defaults (lighter sampling suffices). */
    static IdentifyJobConfig battery();

    /**
     * Chaos-sweep defaults: the historical `--chaos` configuration
     * (larger period sample, Row Scout revalidation, one simulated
     * hour of watchdog budget).
     */
    static IdentifyJobConfig chaos();
};

/**
 * Build the identification job body. The verdict payload is fully
 * deterministic: module name, measured vs ground-truth period and
 * neighbour count, fresh-row retries, ok flag. A watchdog overrun
 * propagates as WatchdogTimeout for the runner to retry.
 */
JobFn makeIdentifyJob(const IdentifyJobConfig &config);

} // namespace utrr

#endif // UTRR_RUNNER_REVENG_JOB_HH
