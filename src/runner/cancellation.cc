#include "runner/cancellation.hh"

#include <csignal>

namespace utrr
{

namespace
{

std::atomic<bool> stop_flag{false};

extern "C" void
stopSignalHandler(int signo)
{
    stop_flag.store(true, std::memory_order_relaxed);
    if (signo == SIGINT) {
        // Second ^C kills the process the ordinary way.
        std::signal(SIGINT, SIG_DFL);
    }
}

} // namespace

const std::atomic<bool> *
stopFlagPtr()
{
    return &stop_flag;
}

bool
stopRequested()
{
    return stop_flag.load(std::memory_order_relaxed);
}

void
requestStop()
{
    stop_flag.store(true, std::memory_order_relaxed);
}

void
resetStopFlag()
{
    stop_flag.store(false, std::memory_order_relaxed);
}

bool
installStopSignalHandlers()
{
    struct sigaction action = {};
    action.sa_handler = stopSignalHandler;
    sigemptyset(&action.sa_mask);
    // No SA_RESTART: blocking I/O (if any) returns EINTR so the stop
    // is noticed promptly.
    action.sa_flags = 0;
    if (sigaction(SIGINT, &action, nullptr) != 0)
        return false;
    if (sigaction(SIGTERM, &action, nullptr) != 0)
        return false;
    return true;
}

} // namespace utrr
