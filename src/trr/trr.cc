#include "trr/trr.hh"

#include "common/logging.hh"
#include "trr/vendor_a.hh"
#include "trr/vendor_b.hh"
#include "trr/vendor_c.hh"

namespace utrr
{

std::string
trrVersionName(TrrVersion version)
{
    switch (version) {
      case TrrVersion::kNone:
        return "none";
      case TrrVersion::kATrr1:
        return "A_TRR1";
      case TrrVersion::kATrr2:
        return "A_TRR2";
      case TrrVersion::kBTrr1:
        return "B_TRR1";
      case TrrVersion::kBTrr2:
        return "B_TRR2";
      case TrrVersion::kBTrr3:
        return "B_TRR3";
      case TrrVersion::kCTrr1:
        return "C_TRR1";
      case TrrVersion::kCTrr2:
        return "C_TRR2";
      case TrrVersion::kCTrr3:
        return "C_TRR3";
    }
    return "?";
}

std::unique_ptr<TrrMechanism>
makeTrr(TrrVersion version, int banks, std::uint64_t seed)
{
    switch (version) {
      case TrrVersion::kNone:
        return std::make_unique<NoTrr>();
      case TrrVersion::kATrr1:
      case TrrVersion::kATrr2:
        return std::make_unique<VendorATrr>(
            banks, VendorATrr::Params{16, 9});
      // The chip-wide samplers of B_TRR1/B_TRR2 sample sparsely; the
      // per-bank sampler of B_TRR3 samples aggressively. The split is
      // calibrated so each version reproduces the paper's attack
      // behaviour (see DESIGN.md).
      case TrrVersion::kBTrr1:
        return std::make_unique<VendorBTrr>(
            banks, VendorBTrr::Params{4, false, 1.0 / 115.0}, seed);
      case TrrVersion::kBTrr2:
        return std::make_unique<VendorBTrr>(
            banks, VendorBTrr::Params{9, false, 1.0 / 115.0}, seed);
      case TrrVersion::kBTrr3:
        return std::make_unique<VendorBTrr>(
            banks, VendorBTrr::Params{2, true, 1.0 / 24.0}, seed);
      case TrrVersion::kCTrr1:
        return std::make_unique<VendorCTrr>(
            banks, VendorCTrr::Params{17, 2'048, 1.0 / 128.0}, seed);
      case TrrVersion::kCTrr2:
        return std::make_unique<VendorCTrr>(
            banks, VendorCTrr::Params{9, 2'048, 1.0 / 128.0}, seed);
      case TrrVersion::kCTrr3:
        return std::make_unique<VendorCTrr>(
            banks, VendorCTrr::Params{8, 1'024, 1.0 / 128.0}, seed);
    }
    panic("unknown TRR version");
}

TrrTraits
trrTraits(TrrVersion version)
{
    switch (version) {
      case TrrVersion::kNone:
        return {0, 0, 0, false, "none"};
      case TrrVersion::kATrr1:
        return {9, 4, 16, true, "counter-based"};
      case TrrVersion::kATrr2:
        return {9, 2, 16, true, "counter-based"};
      case TrrVersion::kBTrr1:
        return {4, 2, 1, false, "sampling-based"};
      case TrrVersion::kBTrr2:
        return {9, 2, 1, false, "sampling-based"};
      case TrrVersion::kBTrr3:
        return {2, 4, 1, true, "sampling-based"};
      case TrrVersion::kCTrr1:
        return {17, 2, -1, true, "mix"};
      case TrrVersion::kCTrr2:
        return {9, 2, -1, true, "mix"};
      case TrrVersion::kCTrr3:
        return {8, 2, -1, true, "mix"};
    }
    panic("unknown TRR version");
}

} // namespace utrr
