#include "trr/vendor_c.hh"

#include "common/logging.hh"

namespace utrr
{

VendorCTrr::VendorCTrr(int banks, Params params, std::uint64_t seed)
    : params(params), rng(seed), seed(seed)
{
    UTRR_ASSERT(banks > 0, "need at least one bank");
    bankState.resize(static_cast<std::size_t>(banks));
}

void
VendorCTrr::onActivate(Bank bank, Row phys_row)
{
    auto &state = bankState.at(static_cast<std::size_t>(bank));
    if (state.actsInWindow >= params.windowActs) {
        if (state.candidate)
            return; // beyond the detection window: invisible to TRR
        // No aggressor was detected in the whole window: the deferred
        // TRR-induced refresh keeps looking, so the detection window
        // reopens (Obs. C1).
        state.actsInWindow = 0;
    }
    ++state.actsInWindow;

    // First-sampled-wins: each in-window ACT is sampled with a fixed
    // probability, and the first sampled ACT locks in as the candidate
    // until it is consumed by a TRR-induced refresh. Rows activated
    // earlier in the window are therefore strongly more likely to be
    // detected (Obs. C2).
    if (state.candidate)
        return;
    if (rng.chance(params.sampleProbability)) {
        state.candidate = phys_row;
        if (gtCandidates != nullptr)
            gtCandidates->inc();
    }
}

void
VendorCTrr::onGroundTruthAttached()
{
    gtTrrRefs = &gt->counter("trr.trr_capable_refs");
    gtDetections = &gt->counter("trr.detections");
    gtCandidates = &gt->counter("trr.candidates_sampled");
    gtOccupied = &gt->gauge("trr.candidate_occupancy");
}

std::vector<TrrRefreshAction>
VendorCTrr::onRefresh()
{
    ++refsSinceTrr;
    if (refsSinceTrr < params.trrRefPeriod)
        return {};
    if (gtTrrRefs != nullptr)
        gtTrrRefs->inc();

    // Eligible: fire for every bank holding a candidate; if none exists
    // anywhere, defer to a later REF (Obs. C1).
    std::vector<TrrRefreshAction> actions;
    for (Bank bank = 0;
         bank < static_cast<Bank>(bankState.size()); ++bank) {
        auto &state = bankState[static_cast<std::size_t>(bank)];
        if (!state.candidate)
            continue;
        actions.push_back({bank, *state.candidate});
        state.candidate.reset();
        state.actsInWindow = 0; // reopen the detection window
    }
    if (!actions.empty())
        refsSinceTrr = 0;
    if (gtDetections != nullptr) {
        gtDetections->inc(actions.size());
        int occupied = 0;
        for (const auto &state : bankState)
            occupied += state.candidate ? 1 : 0;
        gtOccupied->set(occupied);
    }
    return actions;
}

std::unique_ptr<TrrMechanism>
VendorCTrr::clone() const
{
    // Memberwise copy carries every piece of detection state
    // (including the Rng stream position) plus the current
    // ground-truth handles; a clone installed into another chip
    // must be re-attached to that chip's store.
    return std::make_unique<VendorCTrr>(*this);
}

void
VendorCTrr::reset()
{
    for (auto &state : bankState)
        state = BankState{};
    refsSinceTrr = 0;
    rng = Rng(seed);
}

std::optional<Row>
VendorCTrr::candidateOf(Bank bank) const
{
    return bankState.at(static_cast<std::size_t>(bank)).candidate;
}

int
VendorCTrr::windowActsOf(Bank bank) const
{
    return bankState.at(static_cast<std::size_t>(bank)).actsInWindow;
}

} // namespace utrr
