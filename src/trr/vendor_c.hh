/**
 * @file
 * Vendor C's window-based TRR (paper §6.3, Observations C1-C3).
 *
 * Behavioural summary implemented here:
 *  - a TRR-induced refresh is *eligible* once every 17 (C_TRR1),
 *    9 (C_TRR2) or 8 (C_TRR3) REF commands; if no aggressor candidate
 *    has been detected when eligibility arrives, the TRR-induced refresh
 *    is deferred to a later REF (Obs. C1);
 *  - candidates are detected only among the rows targeted by the first
 *    2K ACT commands per bank (1K for C_TRR3) following a TRR-induced
 *    refresh; rows activated *earlier* in the window are more likely to
 *    be the detected candidate (Obs. C2). We model this with a
 *    decreasing replacement probability of 1/i^2 for the i-th ACT of
 *    the window;
 *  - detection state is per bank; performing the TRR-induced refresh
 *    consumes the candidate and reopens the detection window.
 *
 * The paired-row organization of modules C0-8 (Obs. C3) is a property of
 * the DRAM array (see HammerModelConfig::paired), not of this state
 * machine; the chip refreshes only the pair row for such modules.
 */

#ifndef UTRR_TRR_VENDOR_C_HH
#define UTRR_TRR_VENDOR_C_HH

#include <optional>
#include <vector>

#include "common/rng.hh"
#include "trr/trr.hh"

namespace utrr
{

/**
 * Window-based TRR (vendor C).
 */
class VendorCTrr : public TrrMechanism
{
  public:
    struct Params
    {
        int trrRefPeriod = 17;
        /** Detection window length in per-bank ACT commands. */
        int windowActs = 2'048;
        /**
         * Per-ACT sampling probability within the window. The first
         * sampled ACT becomes the candidate and stays until consumed,
         * so earlier rows are strongly favoured (Obs. C2).
         */
        double sampleProbability = 1.0 / 128.0;
    };

    VendorCTrr(int banks, Params params, std::uint64_t seed);

    void onActivate(Bank bank, Row phys_row) override;
    std::vector<TrrRefreshAction> onRefresh() override;
    void reset() override;
    std::unique_ptr<TrrMechanism> clone() const override;
    std::string name() const override { return "C-window"; }

    /** White-box view of one bank's current candidate. */
    std::optional<Row> candidateOf(Bank bank) const;

    /** White-box view of one bank's ACT count within its window. */
    int windowActsOf(Bank bank) const;

  protected:
    void onGroundTruthAttached() override;

  private:
    struct BankState
    {
        int actsInWindow = 0;
        std::optional<Row> candidate;
    };

    Params params;
    Rng rng;
    std::uint64_t seed;
    std::vector<BankState> bankState;
    /** REFs since the last performed TRR-induced refresh. */
    int refsSinceTrr = 0;

    // Ground-truth handles (resolved once at attach; null = detached).
    Counter *gtTrrRefs = nullptr;
    Counter *gtDetections = nullptr;
    Counter *gtCandidates = nullptr;
    Gauge *gtOccupied = nullptr;
};

} // namespace utrr

#endif // UTRR_TRR_VENDOR_C_HH
