/**
 * @file
 * Target Row Refresh (TRR) mechanism interface.
 *
 * The paper reverse-engineers eight distinct in-DRAM TRR implementations
 * across three vendors (Table 1). We implement each observed behaviour
 * as an executable model plugged into the simulated chip; U-TRR then
 * re-derives the behaviour from outside, treating the chip as a black
 * box.
 *
 * A TRR mechanism observes two command streams:
 *  - onActivate(bank, physical row): every ACT the chip receives;
 *  - onRefresh(): every REF command; the mechanism may piggyback
 *    TRR-induced refreshes on it (footnote 3 of the paper) by returning
 *    the aggressor rows whose neighbourhoods should be refreshed.
 *
 * The *chip* expands each detected aggressor into its victim rows
 * according to the module's neighbour policy (2 or 4 neighbours, or the
 * pair row for the paired organization).
 */

#ifndef UTRR_TRR_TRR_HH
#define UTRR_TRR_TRR_HH

#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/metrics.hh"

namespace utrr
{

/** The TRR implementation versions observed in the paper (Table 1). */
enum class TrrVersion
{
    kNone,
    kATrr1, // counter-based, 16-entry table, refreshes +-1 and +-2
    kATrr2, // counter-based, 16-entry table, refreshes +-1
    kBTrr1, // sampling-based, chip-wide single sampler, TRR on 1/4 REFs
    kBTrr2, // sampling-based, chip-wide single sampler, TRR on 1/9 REFs
    kBTrr3, // sampling-based, per-bank sampler, TRR on 1/2 REFs
    kCTrr1, // window-based, first 2K ACTs, TRR on 1/17 REFs, paired rows
    kCTrr2, // window-based, first 2K ACTs, TRR on 1/9 REFs
    kCTrr3, // window-based, first 1K ACTs, TRR on 1/8 REFs
};

/** Short identifier, e.g. "A_TRR1". */
std::string trrVersionName(TrrVersion version);

/** An aggressor row detected by TRR during a REF command. */
struct TrrRefreshAction
{
    Bank bank = 0;
    Row aggressorPhysRow = kInvalidRow;
};

/**
 * Abstract in-DRAM RowHammer mitigation mechanism.
 */
class TrrMechanism
{
  public:
    virtual ~TrrMechanism() = default;

    /** Observe an ACT command. */
    virtual void onActivate(Bank bank, Row phys_row) = 0;

    /**
     * Observe @p count back-to-back ACTs of the same row with no other
     * command in between (a fused hammer burst). The default simply
     * replays onActivate() @p count times — every mechanism therefore
     * sees exactly the command stream the interpreter would have issued;
     * mechanisms whose per-ACT work is state-free may override to skip
     * the loop.
     */
    virtual void
    onActivateBurst(Bank bank, Row phys_row, int count)
    {
        for (int i = 0; i < count; ++i)
            onActivate(bank, phys_row);
    }

    /**
     * Observe @p rounds round-robin passes over @p n aggressors — the
     * ACT sequence rows[0], rows[1], ..., rows[n-1] repeated @p rounds
     * times with no other command in between (a fused interleaved
     * hammer, DESIGN.md §17). The default replays onActivate() in
     * exactly that order; mechanisms whose per-ACT update commutes for
     * already-tracked rows may override with a fold.
     */
    virtual void
    onActivateRoundRobin(const Bank *banks, const Row *phys_rows, int n,
                         int rounds)
    {
        for (int k = 0; k < rounds; ++k) {
            for (int i = 0; i < n; ++i)
                onActivate(banks[i], phys_rows[i]);
        }
    }

    /**
     * Observe a REF command; returns the aggressor rows (if any) whose
     * neighbourhoods this REF additionally refreshes.
     */
    virtual std::vector<TrrRefreshAction> onRefresh() = 0;

    /** Clear all internal state (white-box testing / fast bench setup). */
    virtual void reset() = 0;

    /** Implementation name for logs. */
    virtual std::string name() const = 0;

    /**
     * Deep copy of the mechanism's mutable state (tables, samplers,
     * windows, RNG streams). The clone carries the source's ground-truth
     * attachment; callers installing a clone into a different chip must
     * re-attachGroundTruth so the truth handles point at that chip's
     * store. This is the primitive DramModule snapshots build on.
     */
    virtual std::unique_ptr<TrrMechanism> clone() const = 0;

    /**
     * Attach the chip's ground-truth store. The mechanism records its
     * internal truth (detections, table/sampler occupancy) there;
     * experiments can only read it through a counted GroundTruthProbe.
     */
    void
    attachGroundTruth(GroundTruthStore *store)
    {
        gt = store;
        onGroundTruthAttached();
    }

  protected:
    /** Subclass hook to cache metric handles once. */
    virtual void onGroundTruthAttached() {}

    GroundTruthStore *gt = nullptr;
};

/** TRR that does nothing (chips without mitigation / disabled TRR). */
class NoTrr : public TrrMechanism
{
  public:
    void onActivate(Bank, Row) override {}
    void onActivateBurst(Bank, Row, int) override {}
    void onActivateRoundRobin(const Bank *, const Row *, int, int) override
    {
    }
    std::vector<TrrRefreshAction> onRefresh() override { return {}; }
    void reset() override {}
    std::string name() const override { return "none"; }
    std::unique_ptr<TrrMechanism>
    clone() const override
    {
        return std::make_unique<NoTrr>(*this);
    }
};

/**
 * Instantiate the TRR model for a given version.
 *
 * @param version which implementation to build
 * @param banks number of banks in the chip
 * @param seed seed for the pseudo-random elements (vendor B sampler,
 *             vendor C candidate selection)
 */
std::unique_ptr<TrrMechanism> makeTrr(TrrVersion version, int banks,
                                      std::uint64_t seed);

/** Ground-truth properties of a version (drives chip-side expansion). */
struct TrrTraits
{
    /** A TRR-capable REF occurs once every this many REFs. */
    int trrToRefPeriod = 0;
    /** Victim rows refreshed around a detected aggressor (2 or 4). */
    int neighborsRefreshed = 2;
    /** Max aggressor rows tracked (-1 = unknown/not applicable). */
    int aggressorCapacity = 0;
    /** Whether detection state is per-bank or chip-wide. */
    bool perBank = false;
    /** Detection strategy family. */
    std::string detection;
};

/** Traits of each modelled version. */
TrrTraits trrTraits(TrrVersion version);

} // namespace utrr

#endif // UTRR_TRR_TRR_HH
