/**
 * @file
 * Vendor B's sampling-based TRR (paper §6.2, Observations B1-B5).
 *
 * Behavioural summary implemented here:
 *  - every 4th (B_TRR1), 9th (B_TRR2) or 2nd (B_TRR3) REF command is
 *    TRR-capable (Obs. B1);
 *  - the mechanism pseudo-randomly samples the row address of incoming
 *    ACT commands; a newly sampled row overwrites the previous sample
 *    (Obs. B3, B4). The sampling probability is tuned so that ~2K
 *    consecutive ACTs to one row get it sampled essentially always;
 *  - B_TRR1/B_TRR2 share a single sampler across all banks; B_TRR3
 *    samples per bank (Obs. B4 + footnote 13);
 *  - a TRR-induced refresh does not clear the sample: the same row keeps
 *    being detected until another row is sampled (Obs. B5).
 */

#ifndef UTRR_TRR_VENDOR_B_HH
#define UTRR_TRR_VENDOR_B_HH

#include <optional>
#include <vector>

#include "common/rng.hh"
#include "trr/trr.hh"

namespace utrr
{

/**
 * Sampling-based TRR (vendor B).
 */
class VendorBTrr : public TrrMechanism
{
  public:
    struct Params
    {
        int trrRefPeriod = 4;
        bool perBank = false;
        /**
         * Per-ACT sampling probability. High enough that a burst of a
         * few dozen dummy ACTs reliably replaces the sample (§7.2
         * reports that ~12 dummy activations begin to induce flips),
         * while thousands of consecutive ACTs to one row make its
         * detection essentially certain (Obs. B3).
         */
        double sampleProbability = 1.0 / 24.0;
    };

    VendorBTrr(int banks, Params params, std::uint64_t seed);

    void onActivate(Bank bank, Row phys_row) override;
    std::vector<TrrRefreshAction> onRefresh() override;
    void reset() override;
    std::unique_ptr<TrrMechanism> clone() const override;
    std::string name() const override { return "B-sampler"; }

    /** White-box view of the current sample (chip-wide mode). */
    std::optional<TrrRefreshAction> currentSample() const;

    /** White-box view of one bank's sample (per-bank mode). */
    std::optional<Row> currentSampleOf(Bank bank) const;

  protected:
    void onGroundTruthAttached() override;

  private:
    void recordOccupancy();

    Params params;
    int banks;
    Rng rng;
    std::uint64_t seed;
    std::uint64_t refCount = 0;
    /** Chip-wide sample (used when !params.perBank). */
    std::optional<TrrRefreshAction> sample;
    /** Per-bank samples (used when params.perBank). */
    std::vector<std::optional<Row>> bankSamples;

    // Ground-truth handles (resolved once at attach; null = detached).
    Counter *gtTrrRefs = nullptr;
    Counter *gtDetections = nullptr;
    Counter *gtSamples = nullptr;
    Gauge *gtOccupied = nullptr;
};

} // namespace utrr

#endif // UTRR_TRR_VENDOR_B_HH
