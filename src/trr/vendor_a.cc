#include "trr/vendor_a.hh"

#include <algorithm>

#include "common/logging.hh"

namespace utrr
{

VendorATrr::VendorATrr(int banks, Params params) : params(params)
{
    UTRR_ASSERT(banks > 0, "need at least one bank");
    UTRR_ASSERT(params.tableEntries > 0, "table needs entries");
    bankState.resize(static_cast<std::size_t>(banks));
}

void
VendorATrr::onActivate(Bank bank, Row phys_row)
{
    auto &state = bankState.at(static_cast<std::size_t>(bank));
    auto &table = state.table;

    for (Entry &entry : table) {
        if (entry.row == phys_row) {
            ++entry.count;
            return;
        }
    }

    if (table.size() <
        static_cast<std::size_t>(params.tableEntries)) {
        table.push_back({phys_row, 1});
        return;
    }

    // Table full: evict the entry with the smallest counter (Obs. A5).
    auto victim = std::min_element(
        table.begin(), table.end(),
        [](const Entry &a, const Entry &b) { return a.count < b.count; });
    *victim = {phys_row, 1};
}

void
VendorATrr::onActivateBurst(Bank bank, Row phys_row, int count)
{
    // Exact fold of `count` same-row activations: the first ACT
    // inserts (or evicts, Obs. A5) exactly as a lone one would, and
    // every subsequent one finds the row and bumps its counter. No RNG
    // is involved, so one scan plus a bulk increment is bit-identical
    // to `count` scans.
    if (count <= 0)
        return;
    auto &table = bankState.at(static_cast<std::size_t>(bank)).table;
    for (Entry &entry : table) {
        if (entry.row == phys_row) {
            entry.count += static_cast<std::uint64_t>(count);
            return;
        }
    }
    if (table.size() < static_cast<std::size_t>(params.tableEntries)) {
        table.push_back(
            {phys_row, static_cast<std::uint64_t>(count)});
        return;
    }
    auto victim = std::min_element(
        table.begin(), table.end(),
        [](const Entry &a, const Entry &b) { return a.count < b.count; });
    *victim = {phys_row, static_cast<std::uint64_t>(count)};
}

void
VendorATrr::onActivateRoundRobin(const Bank *banks, const Row *phys_rows,
                                 int n, int rounds)
{
    if (n <= 0 || rounds <= 0)
        return;
    // Foldable only when every aggressor already sits in its bank's
    // table: an ACT of a tracked row is a pure counter increment (no
    // insert, no Obs. A5 eviction), so `rounds` round-robin passes add
    // exactly `rounds` to each entry regardless of order. Any miss
    // could evict another listed row mid-sequence — replay per ACT.
    std::vector<Entry *> hits(static_cast<std::size_t>(n), nullptr);
    for (int i = 0; i < n; ++i) {
        auto &table =
            bankState.at(static_cast<std::size_t>(banks[i])).table;
        for (Entry &entry : table) {
            if (entry.row == phys_rows[i]) {
                hits[static_cast<std::size_t>(i)] = &entry;
                break;
            }
        }
        if (hits[static_cast<std::size_t>(i)] == nullptr) {
            TrrMechanism::onActivateRoundRobin(banks, phys_rows, n,
                                               rounds);
            return;
        }
    }
    for (int i = 0; i < n; ++i)
        hits[static_cast<std::size_t>(i)]->count +=
            static_cast<std::uint64_t>(rounds);
}

void
VendorATrr::onGroundTruthAttached()
{
    gtTrrRefs = &gt->counter("trr.trr_capable_refs");
    gtDetections = &gt->counter("trr.detections");
    gtOccupancy.clear();
    for (std::size_t b = 0; b < bankState.size(); ++b) {
        gtOccupancy.push_back(
            &gt->gauge(logFmt("trr.table_occupancy.bank", b)));
    }
}

std::vector<TrrRefreshAction>
VendorATrr::onRefresh()
{
    ++refCount;
    if (refCount % static_cast<std::uint64_t>(params.trrRefPeriod) != 0)
        return {};
    if (gtTrrRefs != nullptr)
        gtTrrRefs->inc();

    const bool tref_b = nextIsTrefB;
    nextIsTrefB = !nextIsTrefB;

    std::vector<TrrRefreshAction> actions;
    for (Bank bank = 0;
         bank < static_cast<Bank>(bankState.size()); ++bank) {
        auto &state = bankState[static_cast<std::size_t>(bank)];
        auto &table = state.table;
        if (table.empty())
            continue;

        if (tref_b) {
            // TREF_b: traverse the table one entry per instance.
            Entry &entry = table[state.trefBPtr % table.size()];
            state.trefBPtr = (state.trefBPtr + 1) % table.size();
            actions.push_back({bank, entry.row});
            entry.count = 0; // Obs. A6
        } else {
            // TREF_a: detect the highest counter since last detection.
            auto hottest = std::max_element(
                table.begin(), table.end(),
                [](const Entry &a, const Entry &b) {
                    return a.count < b.count;
                });
            if (hottest->count == 0)
                continue; // nothing accumulated since the last reset
            actions.push_back({bank, hottest->row});
            hottest->count = 0; // Obs. A6
        }
    }
    if (gtDetections != nullptr) {
        gtDetections->inc(actions.size());
        for (std::size_t b = 0; b < bankState.size(); ++b) {
            gtOccupancy[b]->set(
                static_cast<double>(bankState[b].table.size()));
        }
    }
    return actions;
}

std::unique_ptr<TrrMechanism>
VendorATrr::clone() const
{
    // Memberwise copy carries every piece of detection state
    // (including the Rng stream position) plus the current
    // ground-truth handles; a clone installed into another chip
    // must be re-attached to that chip's store.
    return std::make_unique<VendorATrr>(*this);
}

void
VendorATrr::reset()
{
    for (auto &state : bankState) {
        state.table.clear();
        state.trefBPtr = 0;
    }
    refCount = 0;
    nextIsTrefB = false;
}

std::vector<std::pair<Row, std::uint64_t>>
VendorATrr::tableOf(Bank bank) const
{
    std::vector<std::pair<Row, std::uint64_t>> rows;
    for (const Entry &entry :
         bankState.at(static_cast<std::size_t>(bank)).table) {
        rows.emplace_back(entry.row, entry.count);
    }
    return rows;
}

} // namespace utrr
