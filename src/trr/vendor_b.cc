#include "trr/vendor_b.hh"

#include "common/logging.hh"

namespace utrr
{

VendorBTrr::VendorBTrr(int banks, Params params, std::uint64_t seed)
    : params(params), banks(banks), rng(seed), seed(seed)
{
    UTRR_ASSERT(banks > 0, "need at least one bank");
    bankSamples.resize(static_cast<std::size_t>(banks));
}

void
VendorBTrr::onGroundTruthAttached()
{
    gtTrrRefs = &gt->counter("trr.trr_capable_refs");
    gtDetections = &gt->counter("trr.detections");
    gtSamples = &gt->counter("trr.samples_taken");
    gtOccupied = &gt->gauge("trr.sampler_occupancy");
}

void
VendorBTrr::recordOccupancy()
{
    if (gtOccupied == nullptr)
        return;
    int occupied = 0;
    if (params.perBank) {
        for (const auto &s : bankSamples)
            occupied += s ? 1 : 0;
    } else {
        occupied = sample ? 1 : 0;
    }
    gtOccupied->set(occupied);
}

void
VendorBTrr::onActivate(Bank bank, Row phys_row)
{
    // Pseudo-random ACT sampling: the hardware likely uses an LFSR; we
    // use a seeded deterministic PRNG, which is observationally
    // equivalent to the paper's description.
    if (!rng.chance(params.sampleProbability))
        return;
    if (params.perBank) {
        bankSamples.at(static_cast<std::size_t>(bank)) = phys_row;
    } else {
        sample = TrrRefreshAction{bank, phys_row};
    }
    if (gtSamples != nullptr) {
        gtSamples->inc();
        recordOccupancy();
    }
}

std::vector<TrrRefreshAction>
VendorBTrr::onRefresh()
{
    ++refCount;
    if (refCount % static_cast<std::uint64_t>(params.trrRefPeriod) != 0)
        return {};
    if (gtTrrRefs != nullptr)
        gtTrrRefs->inc();

    std::vector<TrrRefreshAction> actions;
    if (params.perBank) {
        for (Bank bank = 0; bank < banks; ++bank) {
            const auto &s =
                bankSamples[static_cast<std::size_t>(bank)];
            if (s)
                actions.push_back({bank, *s}); // sample kept (Obs. B5)
        }
    } else if (sample) {
        actions.push_back(*sample); // sample kept (Obs. B5)
    }
    if (gtDetections != nullptr)
        gtDetections->inc(actions.size());
    return actions;
}

std::unique_ptr<TrrMechanism>
VendorBTrr::clone() const
{
    // Memberwise copy carries every piece of detection state
    // (including the Rng stream position) plus the current
    // ground-truth handles; a clone installed into another chip
    // must be re-attached to that chip's store.
    return std::make_unique<VendorBTrr>(*this);
}

void
VendorBTrr::reset()
{
    refCount = 0;
    sample.reset();
    for (auto &s : bankSamples)
        s.reset();
    rng = Rng(seed);
}

std::optional<TrrRefreshAction>
VendorBTrr::currentSample() const
{
    return sample;
}

std::optional<Row>
VendorBTrr::currentSampleOf(Bank bank) const
{
    return bankSamples.at(static_cast<std::size_t>(bank));
}

} // namespace utrr
