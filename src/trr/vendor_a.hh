/**
 * @file
 * Vendor A's counter-based TRR (paper §6.1, Observations A1-A7).
 *
 * Behavioural summary implemented here:
 *  - every 9th REF command is TRR-capable (Obs. A1);
 *  - each bank keeps a 16-entry counter table: an ACT increments the
 *    entry of the activated row, inserting it (evicting the entry with
 *    the smallest counter) if absent (Obs. A4, A5);
 *  - TRR-capable REFs alternate between two operations (Obs. A3):
 *      TREF_a: detect the entry with the highest counter value,
 *      TREF_b: detect the entry a table-traversal pointer refers to and
 *              advance the pointer;
 *  - a detected entry's counter resets to zero but the entry stays in
 *    the table indefinitely (Obs. A6, A7).
 *
 * Victim expansion (+-1 and +-2 for A_TRR1, +-1 for A_TRR2; Obs. A2) is
 * performed by the chip, not here.
 */

#ifndef UTRR_TRR_VENDOR_A_HH
#define UTRR_TRR_VENDOR_A_HH

#include <cstdint>
#include <vector>

#include "trr/trr.hh"

namespace utrr
{

/**
 * Counter-based per-bank TRR (vendor A).
 */
class VendorATrr : public TrrMechanism
{
  public:
    /** Tuning knobs, defaulted to the reverse-engineered values. */
    struct Params
    {
        int tableEntries = 16;
        int trrRefPeriod = 9;
    };

    explicit VendorATrr(int banks) : VendorATrr(banks, Params()) {}
    VendorATrr(int banks, Params params);

    void onActivate(Bank bank, Row phys_row) override;
    void onActivateBurst(Bank bank, Row phys_row, int count) override;
    void onActivateRoundRobin(const Bank *banks, const Row *phys_rows,
                              int n, int rounds) override;
    std::vector<TrrRefreshAction> onRefresh() override;
    void reset() override;
    std::unique_ptr<TrrMechanism> clone() const override;
    std::string name() const override { return "A-counter"; }

    /** White-box view of one bank's table (row, counter) pairs. */
    std::vector<std::pair<Row, std::uint64_t>> tableOf(Bank bank) const;

  protected:
    void onGroundTruthAttached() override;

  private:
    struct Entry
    {
        Row row = kInvalidRow;
        std::uint64_t count = 0;
    };

    struct BankState
    {
        std::vector<Entry> table;
        std::size_t trefBPtr = 0;
    };

    Params params;
    std::vector<BankState> bankState;
    std::uint64_t refCount = 0;
    bool nextIsTrefB = false;

    // Ground-truth handles (resolved once at attach; null = detached).
    Counter *gtTrrRefs = nullptr;
    Counter *gtDetections = nullptr;
    std::vector<Gauge *> gtOccupancy;
};

} // namespace utrr

#endif // UTRR_TRR_VENDOR_A_HH
