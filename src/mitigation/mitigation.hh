/**
 * @file
 * Controller-side RowHammer mitigations (paper §2.4, §8).
 *
 * The paper classifies proposed mitigations into refresh-rate
 * increases, isolation, activation tracking and throttling, and
 * suggests (§8) using the U-TRR principles to evaluate them. This
 * library implements three representative tracking/throttling
 * mechanisms from the literature as *memory-controller* policies:
 *
 *  - PARA (Kim et al., ISCA'14): probabilistic adjacent-row refresh
 *    on every activation;
 *  - Graphene (Park et al., MICRO'20): Misra-Gries frequent-item
 *    counting with a guaranteed detection threshold per refresh window;
 *  - BlockHammer-style throttling (Yaglikci et al., HPCA'21):
 *    rate-tracking with activation delays for blacklisted rows.
 *
 * A mitigation attaches to the SoftMC host: on every ACT it may order
 * neighbour-row refreshes (performed as real ACT+PRE cycles, costing
 * command-bus time like a real controller) and/or delay the
 * activation. Unlike the in-DRAM TRR models, these are *not*
 * reverse-engineering targets — they are evaluation baselines for the
 * custom attack patterns.
 *
 * Controllers do not know the in-DRAM physical row mapping unless the
 * vendor discloses it; each mechanism therefore takes a
 * `mapping_aware` flag. Unaware mechanisms assume logical adjacency
 * and refresh the wrong rows on scrambled modules — measurably
 * weakening them (see bench_mitigations).
 */

#ifndef UTRR_MITIGATION_MITIGATION_HH
#define UTRR_MITIGATION_MITIGATION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace utrr
{

/** What the controller does around one ACT command. */
struct MitigationAction
{
    /** Logical rows to refresh (ACT+PRE) immediately after the ACT. */
    std::vector<Row> refreshRows;
    /** Delay injected before the ACT (throttling mechanisms). */
    Time delayNs = 0;
};

/**
 * A memory-controller RowHammer mitigation policy.
 */
class ControllerMitigation
{
  public:
    virtual ~ControllerMitigation() = default;

    /** Consulted on every ACT the host issues. */
    virtual MitigationAction onActivate(Bank bank, Row logical_row,
                                        Time now) = 0;

    /** Consulted on every REF the host issues (window bookkeeping). */
    virtual void onRefresh(Time /*now*/) {}

    /** Clear all state. */
    virtual void reset() = 0;

    virtual std::string name() const = 0;

    /** Victim refreshes this mitigation ordered so far. */
    std::uint64_t refreshesOrdered() const { return ordered; }

    /** Total delay injected so far (throttling cost). */
    Time delayInjected() const { return delayed; }

  protected:
    std::uint64_t ordered = 0;
    Time delayed = 0;
};

} // namespace utrr

#endif // UTRR_MITIGATION_MITIGATION_HH
