#include "mitigation/para.hh"

namespace utrr
{

Para::Para(Params params, std::uint64_t seed)
    : params(params), rng(seed), seed(seed)
{
}

MitigationAction
Para::onActivate(Bank /*bank*/, Row logical_row, Time /*now*/)
{
    MitigationAction action;
    if (!rng.chance(params.probability))
        return action;
    for (int d = 1; d <= params.blastRadius; ++d) {
        action.refreshRows.push_back(logical_row - d);
        action.refreshRows.push_back(logical_row + d);
    }
    ordered += action.refreshRows.size();
    return action;
}

void
Para::reset()
{
    rng = Rng(seed);
    ordered = 0;
    delayed = 0;
}

} // namespace utrr
