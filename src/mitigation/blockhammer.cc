#include "mitigation/blockhammer.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace utrr
{

BlockHammer::BlockHammer(int banks, Params params) : params(params)
{
    UTRR_ASSERT(banks > 0, "need at least one bank");
    bankState.resize(static_cast<std::size_t>(banks));
    for (auto &state : bankState) {
        state.counters.assign(
            static_cast<std::size_t>(params.filterCounters), 0);
    }
}

std::size_t
BlockHammer::slotOf(Row logical_row, int hash) const
{
    const std::uint64_t mixed = hashMix(
        (static_cast<std::uint64_t>(hash) << 40) ^
        static_cast<std::uint64_t>(logical_row));
    return static_cast<std::size_t>(
        mixed % static_cast<std::uint64_t>(params.filterCounters));
}

int
BlockHammer::estimateOf(Bank bank, Row logical_row) const
{
    const auto &counters =
        bankState.at(static_cast<std::size_t>(bank)).counters;
    int estimate = counters[slotOf(logical_row, 0)];
    for (int h = 1; h < params.hashes; ++h) {
        estimate =
            std::min(estimate, counters[slotOf(logical_row, h)]);
    }
    return estimate;
}

bool
BlockHammer::isBlacklisted(Bank bank, Row logical_row) const
{
    return estimateOf(bank, logical_row) >= params.blacklistThreshold;
}

MitigationAction
BlockHammer::onActivate(Bank bank, Row logical_row, Time now)
{
    auto &state = bankState.at(static_cast<std::size_t>(bank));
    for (int h = 0; h < params.hashes; ++h)
        ++state.counters[slotOf(logical_row, h)];

    MitigationAction action;
    if (!isBlacklisted(bank, logical_row))
        return action;

    // Throttle: spread the remaining allowed activations of the
    // blacklisted row uniformly over the remaining window so that it
    // cannot exceed maxActsPerWindow.
    const Time min_gap = params.windowNs /
        std::max(1, params.maxActsPerWindow);
    const Time release = std::max(state.nextAllowed, now) + min_gap;
    if (release > now) {
        action.delayNs = release - now;
        delayed += action.delayNs;
    }
    state.nextAllowed = release;
    return action;
}

void
BlockHammer::onRefresh(Time /*now*/)
{
    ++refs;
    if (refs % static_cast<std::uint64_t>(params.windowRefs) != 0)
        return;
    for (auto &state : bankState) {
        std::fill(state.counters.begin(), state.counters.end(), 0);
        state.nextAllowed = 0;
    }
}

void
BlockHammer::reset()
{
    for (auto &state : bankState) {
        std::fill(state.counters.begin(), state.counters.end(), 0);
        state.nextAllowed = 0;
    }
    refs = 0;
    ordered = 0;
    delayed = 0;
}

} // namespace utrr
