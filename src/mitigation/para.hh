/**
 * @file
 * PARA: Probabilistic Adjacent Row Activation (Kim et al., ISCA'14).
 *
 * On every activation, with a small probability p, the controller
 * refreshes the activated row's neighbours. Stateless, so it cannot be
 * "overflowed" like a counter table or diverted like a sampler — its
 * protection degrades only with the adversary's patience: the
 * probability that N hammers escape refresh is (1-p)^N.
 */

#ifndef UTRR_MITIGATION_PARA_HH
#define UTRR_MITIGATION_PARA_HH

#include "common/rng.hh"
#include "mitigation/mitigation.hh"

namespace utrr
{

/**
 * PARA controller mitigation.
 */
class Para : public ControllerMitigation
{
  public:
    struct Params
    {
        /** Per-ACT neighbour-refresh probability. */
        double probability = 0.001;
        /** Refresh rows at distance 1 and (optionally) 2. */
        int blastRadius = 1;
    };

    Para(Params params, std::uint64_t seed);

    MitigationAction onActivate(Bank bank, Row logical_row,
                                Time now) override;
    void reset() override;
    std::string name() const override { return "PARA"; }

  private:
    Params params;
    Rng rng;
    std::uint64_t seed;
};

} // namespace utrr

#endif // UTRR_MITIGATION_PARA_HH
