#include "mitigation/graphene.hh"

#include "common/logging.hh"

namespace utrr
{

Graphene::Graphene(int banks, Params params) : params(params)
{
    UTRR_ASSERT(banks > 0, "need at least one bank");
    bankState.resize(static_cast<std::size_t>(banks));
}

MitigationAction
Graphene::onActivate(Bank bank, Row logical_row, Time /*now*/)
{
    auto &state = bankState.at(static_cast<std::size_t>(bank));
    auto &counts = state.counts;

    // Misra-Gries update.
    auto it = counts.find(logical_row);
    if (it != counts.end()) {
        ++it->second;
    } else if (static_cast<int>(counts.size()) < params.tableEntries) {
        it = counts.emplace(logical_row, state.spillover + 1).first;
    } else {
        // Decrement-all step: every tracked count and the newcomer
        // share one decrement; entries at the spillover floor vanish.
        ++state.spillover;
        for (auto entry = counts.begin(); entry != counts.end();) {
            if (entry->second <= state.spillover)
                entry = counts.erase(entry);
            else
                ++entry;
        }
        return {};
    }

    MitigationAction action;
    if (it->second >= params.threshold) {
        for (int d = 1; d <= params.blastRadius; ++d) {
            action.refreshRows.push_back(logical_row - d);
            action.refreshRows.push_back(logical_row + d);
        }
        ordered += action.refreshRows.size();
        it->second = state.spillover; // restart the estimate
    }
    return action;
}

void
Graphene::onRefresh(Time /*now*/)
{
    ++refs;
    if (refs % static_cast<std::uint64_t>(params.windowRefs) != 0)
        return;
    for (auto &state : bankState) {
        state.counts.clear();
        state.spillover = 0;
    }
}

void
Graphene::reset()
{
    for (auto &state : bankState) {
        state.counts.clear();
        state.spillover = 0;
    }
    refs = 0;
    ordered = 0;
    delayed = 0;
}

int
Graphene::countOf(Bank bank, Row logical_row) const
{
    const auto &counts =
        bankState.at(static_cast<std::size_t>(bank)).counts;
    const auto it = counts.find(logical_row);
    return it == counts.end() ? 0 : it->second;
}

} // namespace utrr
