/**
 * @file
 * Graphene (Park et al., MICRO'20): Misra-Gries frequent-item counting
 * in the memory controller.
 *
 * Per bank, a Misra-Gries summary with N entries plus a spillover
 * counter tracks row activations within one refresh window (tREFW).
 * Whenever a row's estimated count crosses the threshold T, the
 * controller refreshes its neighbours and resets the estimate. The
 * Misra-Gries guarantee makes this exhaustive: *no* row can be
 * activated more than T + W/N times (W = window activations) without
 * a neighbour refresh — unlike the reverse-engineered TRR tables,
 * there is no dummy-row pattern that starves a tracked aggressor.
 */

#ifndef UTRR_MITIGATION_GRAPHENE_HH
#define UTRR_MITIGATION_GRAPHENE_HH

#include <unordered_map>
#include <vector>

#include "mitigation/mitigation.hh"

namespace utrr
{

/**
 * Graphene controller mitigation.
 */
class Graphene : public ControllerMitigation
{
  public:
    struct Params
    {
        /** Misra-Gries table entries per bank. */
        int tableEntries = 128;
        /** Estimated-count threshold triggering a neighbour refresh. */
        int threshold = 2'000;
        /** REF commands per tracking window (reset cadence). */
        int windowRefs = 8'192;
        int blastRadius = 1;
    };

    Graphene(int banks, Params params);

    MitigationAction onActivate(Bank bank, Row logical_row,
                                Time now) override;
    void onRefresh(Time now) override;
    void reset() override;
    std::string name() const override { return "Graphene"; }

    /** White-box: estimated count of a row (0 if untracked). */
    int countOf(Bank bank, Row logical_row) const;

  private:
    struct BankState
    {
        /** row -> estimated count. */
        std::unordered_map<Row, int> counts;
        /** Misra-Gries spillover counter. */
        int spillover = 0;
    };

    Params params;
    std::vector<BankState> bankState;
    std::uint64_t refs = 0;
};

} // namespace utrr

#endif // UTRR_MITIGATION_GRAPHENE_HH
