/**
 * @file
 * BlockHammer-style activation throttling (Yaglikci et al., HPCA'21).
 *
 * Instead of refreshing victims, the controller bounds how fast any
 * row can be activated: per-bank counting Bloom filters estimate each
 * row's activation count in the current window; rows whose estimate
 * exceeds the blacklist threshold have their subsequent activations
 * delayed so that no row can reach HC_first activations within a
 * refresh window. Dummy-row evasion does not help an attacker — the
 * aggressors themselves get throttled, not mis-tracked.
 */

#ifndef UTRR_MITIGATION_BLOCKHAMMER_HH
#define UTRR_MITIGATION_BLOCKHAMMER_HH

#include <array>
#include <vector>

#include "mitigation/mitigation.hh"

namespace utrr
{

/**
 * BlockHammer-style throttler.
 */
class BlockHammer : public ControllerMitigation
{
  public:
    struct Params
    {
        /** Counting-Bloom-filter size (counters per bank). */
        int filterCounters = 4'096;
        /** Hash functions. */
        int hashes = 3;
        /** Estimated count at which a row is blacklisted. */
        int blacklistThreshold = 512;
        /** Max activations of one row allowed per window. */
        int maxActsPerWindow = 4'096;
        /** REF commands per window (filters swap/clear). */
        int windowRefs = 8'192;
        /** Window duration used to spread allowed ACTs (ns). */
        Time windowNs = 64 * kNsPerMs;
    };

    BlockHammer(int banks, Params params);

    MitigationAction onActivate(Bank bank, Row logical_row,
                                Time now) override;
    void onRefresh(Time now) override;
    void reset() override;
    std::string name() const override { return "BlockHammer"; }

    /** White-box: current count estimate of a row. */
    int estimateOf(Bank bank, Row logical_row) const;

    /** Rows currently considered blacklisted. */
    bool isBlacklisted(Bank bank, Row logical_row) const;

  private:
    std::size_t slotOf(Row logical_row, int hash) const;

    struct BankState
    {
        std::vector<int> counters;
        /** Per-row last throttled-ACT release time is approximated by
         *  one shared value per bank slot; good enough for the
         *  single-aggressor-pair workloads evaluated here. */
        Time nextAllowed = 0;
    };

    Params params;
    std::vector<BankState> bankState;
    std::uint64_t refs = 0;
};

} // namespace utrr

#endif // UTRR_MITIGATION_BLOCKHAMMER_HH
