/**
 * @file
 * Descriptive statistics used by the benchmark harnesses.
 *
 * The paper reports its headline results as box-and-whisker plots
 * (Figs. 8 and 10): first/third quartile box, median, whiskers at
 * 1.5*IQR, and outliers. BoxStats reproduces exactly that summary so a
 * bench binary can print the same series the figures show.
 */

#ifndef UTRR_COMMON_STATS_HH
#define UTRR_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace utrr
{

/**
 * Five-number box-and-whisker summary matching the paper's footnote 14:
 * quartiles are the medians of the lower/upper halves of the sorted data,
 * whiskers sit at 1.5*IQR beyond the box (clamped to observed points),
 * values outside the whiskers are outliers.
 */
struct BoxStats
{
    std::size_t count = 0;
    double min = 0.0;
    double q1 = 0.0;
    double median = 0.0;
    double q3 = 0.0;
    double max = 0.0;
    double whiskerLo = 0.0;
    double whiskerHi = 0.0;
    double mean = 0.0;
    std::size_t outliers = 0;

    /** Compute the summary of a sample (copies + sorts internally). */
    static BoxStats compute(std::vector<double> values);

    /** Render as "min/q1/med/q3/max" style text for table output. */
    std::string summary() const;
};

/**
 * Integer-valued histogram, used e.g. for "number of 8-byte words with k
 * bit flips" (Fig. 10).
 */
class Histogram
{
  public:
    /** Record one observation of the given integer value. */
    void add(std::int64_t value, std::uint64_t weight = 1);

    /**
     * Fold another histogram into this one (bin-wise addition). Used to
     * combine per-worker histograms after a parallel campaign joins.
     */
    void merge(const Histogram &other);

    /** Number of observations of exactly @p value. */
    std::uint64_t countOf(std::int64_t value) const;

    /** Total number of observations. */
    std::uint64_t total() const;

    /** Largest value observed (0 if empty). */
    std::int64_t maxValue() const;

    /** All (value, count) pairs in ascending value order. */
    const std::map<std::int64_t, std::uint64_t> &bins() const
    {
        return counts;
    }

  private:
    std::map<std::int64_t, std::uint64_t> counts;
    std::uint64_t totalCount = 0;
};

/** Arithmetic mean (0 for empty input). */
double mean(const std::vector<double> &values);

/** Percentile via linear interpolation, p in [0, 100]. */
double percentile(std::vector<double> values, double p);

} // namespace utrr

#endif // UTRR_COMMON_STATS_HH
