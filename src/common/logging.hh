/**
 * @file
 * Minimal logging and error-reporting helpers, in the spirit of gem5's
 * base/logging.hh.
 *
 * - panic():  a bug in the simulator itself; aborts.
 * - fatal():  an unrecoverable user/configuration error; exits with code 1.
 * - warn():   suspicious but survivable condition.
 * - inform(): status message.
 *
 * Verbosity is controlled globally; benches lower it to keep table output
 * clean while examples keep it chatty.
 */

#ifndef UTRR_COMMON_LOGGING_HH
#define UTRR_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace utrr
{

/** Global log levels, most severe first. */
enum class LogLevel
{
    kSilent = 0,
    kWarn = 1,
    kInform = 2,
    kDebug = 3,
};

/** Set/get the global verbosity threshold. */
void setLogLevel(LogLevel level);
LogLevel logLevel();

/** Report a simulator bug and abort. */
[[noreturn]] void panic(const std::string &msg);

/** Report an unrecoverable user error and exit(1). */
[[noreturn]] void fatal(const std::string &msg);

/** Print a warning (if verbosity allows). */
void warn(const std::string &msg);

/** Print a status message (if verbosity allows). */
void inform(const std::string &msg);

/** Print a debug message (if verbosity allows). */
void debug(const std::string &msg);

/**
 * Tiny printf-free formatter: concatenates stream-formattable arguments.
 * Example: logFmt("row ", row, " failed after ", ms, " ms").
 */
template <typename... Args>
std::string
logFmt(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

/**
 * Lazy debug logging: the arguments are only formatted when the global
 * verbosity actually admits debug output, so hot paths can log freely
 * without paying for string building on every call.
 * Example: UTRR_DEBUG("row ", row, " failed after ", ms, " ms").
 */
#define UTRR_DEBUG(...)                                                     \
    do {                                                                    \
        if (::utrr::logLevel() >= ::utrr::LogLevel::kDebug)                 \
            ::utrr::debug(::utrr::logFmt(__VA_ARGS__));                     \
    } while (false)

/** Assert a simulator invariant; panics with location info on failure. */
#define UTRR_ASSERT(cond, msg)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::utrr::panic(::utrr::logFmt(                                   \
                __FILE__, ":", __LINE__, ": assertion failed: ", #cond,     \
                " — ", msg));                                               \
        }                                                                   \
    } while (false)

} // namespace utrr

#endif // UTRR_COMMON_LOGGING_HH
