#include "common/logging.hh"

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>

namespace utrr
{

namespace
{

/**
 * Parse the UTRR_LOG_LEVEL environment variable: a name (silent, warn,
 * inform/info, debug) or a numeric level 0-3. Unset, empty or
 * unparsable values yield nullopt (compiled-in default / setLogLevel
 * stays in charge).
 */
std::optional<LogLevel>
envLogLevel()
{
    const char *raw = std::getenv("UTRR_LOG_LEVEL");
    if (raw == nullptr || *raw == '\0')
        return std::nullopt;
    if (std::strcmp(raw, "silent") == 0 || std::strcmp(raw, "0") == 0)
        return LogLevel::kSilent;
    if (std::strcmp(raw, "warn") == 0 || std::strcmp(raw, "1") == 0)
        return LogLevel::kWarn;
    if (std::strcmp(raw, "inform") == 0 ||
        std::strcmp(raw, "info") == 0 || std::strcmp(raw, "2") == 0)
        return LogLevel::kInform;
    if (std::strcmp(raw, "debug") == 0 || std::strcmp(raw, "3") == 0)
        return LogLevel::kDebug;
    std::cerr << "warn: UTRR_LOG_LEVEL=" << raw
              << " not recognized (use silent|warn|inform|debug or 0-3);"
              << " ignoring\n";
    return std::nullopt;
}

/**
 * The environment override outranks setLogLevel() so a campaign binary
 * can be made quieter/chattier without recompiling — benches and
 * examples call setLogLevel() at startup, and the operator's
 * environment must still win. Read once, on first use.
 */
const std::optional<LogLevel> &
envOverride()
{
    static const std::optional<LogLevel> cached = envLogLevel();
    return cached;
}

LogLevel g_level = LogLevel::kWarn;

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    const std::optional<LogLevel> &env = envOverride();
    return env ? *env : g_level;
}

void
panic(const std::string &msg)
{
    std::cerr << "panic: " << msg << std::endl;
    std::abort();
}

void
fatal(const std::string &msg)
{
    std::cerr << "fatal: " << msg << std::endl;
    std::exit(1);
}

void
warn(const std::string &msg)
{
    if (logLevel() >= LogLevel::kWarn)
        std::cerr << "warn: " << msg << "\n";
}

void
inform(const std::string &msg)
{
    if (logLevel() >= LogLevel::kInform)
        std::cout << "info: " << msg << "\n";
}

void
debug(const std::string &msg)
{
    if (logLevel() >= LogLevel::kDebug)
        std::cout << "debug: " << msg << "\n";
}

} // namespace utrr
