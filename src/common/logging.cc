#include "common/logging.hh"

#include <cstdlib>
#include <iostream>

namespace utrr
{

namespace
{

LogLevel g_level = LogLevel::kWarn;

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
panic(const std::string &msg)
{
    std::cerr << "panic: " << msg << std::endl;
    std::abort();
}

void
fatal(const std::string &msg)
{
    std::cerr << "fatal: " << msg << std::endl;
    std::exit(1);
}

void
warn(const std::string &msg)
{
    if (g_level >= LogLevel::kWarn)
        std::cerr << "warn: " << msg << "\n";
}

void
inform(const std::string &msg)
{
    if (g_level >= LogLevel::kInform)
        std::cout << "info: " << msg << "\n";
}

void
debug(const std::string &msg)
{
    if (g_level >= LogLevel::kDebug)
        std::cout << "debug: " << msg << "\n";
}

} // namespace utrr
