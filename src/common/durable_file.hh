/**
 * @file
 * Crash-safe file primitives for the durability layer.
 *
 * Two building blocks, both POSIX (the simulator targets Linux):
 *
 *  - DurableAppendFile — an append-only handle whose append() writes a
 *    whole record and (optionally) fsyncs before returning, so a record
 *    either reaches the disk completely or shows up as a torn tail the
 *    journal reader can detect and drop. Used by the write-ahead result
 *    journal; a test-only fault hook can truncate one write mid-record
 *    and kill the process to simulate exactly that tear.
 *
 *  - atomicReplaceFile — the classic write-to-temp + fsync + rename
 *    dance: readers of the destination path observe either the old
 *    contents or the new contents, never a partial file. Used to
 *    rotate a stale (foreign-campaign) journal aside and by anything
 *    that rewrites a report in place.
 */

#ifndef UTRR_COMMON_DURABLE_FILE_HH
#define UTRR_COMMON_DURABLE_FILE_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace utrr
{

/**
 * Append-only file with per-record durability. Not thread-safe; the
 * owner serializes appends (the campaign journal holds its own mutex).
 */
class DurableAppendFile
{
  public:
    DurableAppendFile() = default;
    ~DurableAppendFile();

    DurableAppendFile(const DurableAppendFile &) = delete;
    DurableAppendFile &operator=(const DurableAppendFile &) = delete;

    /**
     * Open @p path for appending, creating it when absent and
     * truncating first when @p truncate. Returns false on failure
     * (the handle stays closed).
     */
    bool open(const std::string &path, bool truncate,
              bool fsync_each_record = true);

    bool isOpen() const { return fd >= 0; }

    /**
     * Append @p record (the caller includes any trailing newline) and
     * flush it to disk. Returns false on a short write or I/O error.
     * Partial progress is possible on failure — exactly the torn tail
     * the journal reader tolerates.
     */
    bool append(std::string_view record);

    /** fsync whatever has been appended so far. */
    bool sync();

    void close();

  private:
    int fd = -1;
    bool fsyncEachRecord = true;
};

/**
 * Atomically replace @p path with @p contents: write to a temp file in
 * the same directory, fsync it, rename over @p path. Returns false on
 * any failure (the destination is left untouched).
 */
bool atomicReplaceFile(const std::string &path, std::string_view contents);

/**
 * Rename @p path to @p newPath (atomic within a filesystem). Returns
 * false on failure.
 */
bool renameFile(const std::string &path, const std::string &newPath);

/** Slurp a whole file; false when it cannot be opened/read. */
bool readFileToString(const std::string &path, std::string &out);

/** Does a regular file exist at @p path? */
bool fileExists(const std::string &path);

/** fsync the given file by path (data only). False on failure. */
bool fsyncPath(const std::string &path);

} // namespace utrr

#endif // UTRR_COMMON_DURABLE_FILE_HH
