/**
 * @file
 * Fundamental types shared across the U-TRR codebase.
 *
 * The simulator models time in integer nanoseconds (64-bit, enough for
 * ~292 years of simulated time) and addresses DRAM with explicit
 * bank/row/column coordinates, mirroring how the SoftMC host addresses
 * a real module.
 */

#ifndef UTRR_COMMON_TYPES_HH
#define UTRR_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace utrr
{

/** Simulated time in nanoseconds. */
using Time = std::int64_t;

/** Logical or physical DRAM row index within a bank. */
using Row = std::int32_t;

/** DRAM bank index within a chip/rank. */
using Bank = std::int32_t;

/** Bit position within a DRAM row (column granularity is one bit). */
using Col = std::int32_t;

/** Number of nanoseconds in common units. */
constexpr Time kNsPerUs = 1'000;
constexpr Time kNsPerMs = 1'000'000;
constexpr Time kNsPerSec = 1'000'000'000;

/** Sentinel for "no row". */
constexpr Row kInvalidRow = -1;

/** Sentinel for "no time". */
constexpr Time kInvalidTime = std::numeric_limits<Time>::min();

/**
 * Convert milliseconds (possibly fractional) to nanoseconds.
 */
constexpr Time
msToNs(double ms)
{
    return static_cast<Time>(ms * static_cast<double>(kNsPerMs));
}

/** Convert nanoseconds to (fractional) milliseconds. */
constexpr double
nsToMs(Time ns)
{
    return static_cast<double>(ns) / static_cast<double>(kNsPerMs);
}

} // namespace utrr

#endif // UTRR_COMMON_TYPES_HH
