#include "common/rng.hh"

#include <cmath>
#include <numbers>

namespace utrr
{

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
hashMix(std::uint64_t x)
{
    std::uint64_t s = x;
    return splitmix64(s);
}

namespace
{

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next() % span);
}

double
Rng::uniformReal(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::gaussian()
{
    // Box-Muller; draw until u1 is nonzero to avoid log(0).
    double u1 = uniform();
    while (u1 == 0.0)
        u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
        std::cos(2.0 * std::numbers::pi * u2);
}

double
Rng::gaussian(double mean, double sigma)
{
    return mean + sigma * gaussian();
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(gaussian(mu, sigma));
}

double
Rng::exponential(double mean)
{
    double u = uniform();
    while (u == 0.0)
        u = uniform();
    return -mean * std::log(u);
}

Rng
Rng::fork(std::uint64_t stream)
{
    return Rng(hashMix(s[0] ^ hashMix(stream)));
}

Rng
Rng::fork(std::string_view name)
{
    return fork(hashString(name));
}

std::uint64_t
hashString(std::string_view text)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace utrr
