#include "common/checksum.hh"

#include <array>
#include <cstdio>

namespace utrr
{

namespace
{

/** Bytewise CRC-32C table (reflected polynomial 0x82f63b78). */
std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit) {
            crc = (crc & 1u) ? (crc >> 1) ^ 0x82f63b78u : crc >> 1;
        }
        table[i] = crc;
    }
    return table;
}

} // namespace

std::uint32_t
crc32c(std::string_view data)
{
    static const std::array<std::uint32_t, 256> table = makeTable();
    std::uint32_t crc = 0xffffffffu;
    for (const char c : data) {
        const auto byte = static_cast<unsigned char>(c);
        crc = (crc >> 8) ^ table[(crc ^ byte) & 0xffu];
    }
    return crc ^ 0xffffffffu;
}

std::string
crc32cHex(std::string_view data)
{
    char buf[9];
    std::snprintf(buf, sizeof(buf), "%08x", crc32c(data));
    return std::string(buf);
}

bool
parseCrc32cHex(std::string_view text, std::uint32_t &out)
{
    if (text.size() != 8)
        return false;
    std::uint32_t value = 0;
    for (const char c : text) {
        value <<= 4;
        if (c >= '0' && c <= '9')
            value |= static_cast<std::uint32_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            value |= static_cast<std::uint32_t>(c - 'a' + 10);
        else
            return false;
    }
    out = value;
    return true;
}

} // namespace utrr
