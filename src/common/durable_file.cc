#include "common/durable_file.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/logging.hh"

namespace utrr
{

DurableAppendFile::~DurableAppendFile()
{
    close();
}

bool
DurableAppendFile::open(const std::string &path, bool truncate,
                        bool fsync_each_record)
{
    close();
    int flags = O_WRONLY | O_CREAT | O_APPEND;
    if (truncate)
        flags |= O_TRUNC;
    fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) {
        warn(logFmt("durable_file: cannot open ", path, ": ",
                    std::strerror(errno)));
        return false;
    }
    fsyncEachRecord = fsync_each_record;
    return true;
}

bool
DurableAppendFile::append(std::string_view record)
{
    if (fd < 0)
        return false;
    std::size_t written = 0;
    while (written < record.size()) {
        const ssize_t n = ::write(fd, record.data() + written,
                                  record.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            warn(logFmt("durable_file: write failed: ",
                        std::strerror(errno)));
            return false;
        }
        written += static_cast<std::size_t>(n);
    }
    return fsyncEachRecord ? sync() : true;
}

bool
DurableAppendFile::sync()
{
    return fd >= 0 && ::fsync(fd) == 0;
}

void
DurableAppendFile::close()
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

bool
atomicReplaceFile(const std::string &path, std::string_view contents)
{
    const std::string tmp = path + ".tmp";
    {
        DurableAppendFile file;
        if (!file.open(tmp, /*truncate=*/true, /*fsync=*/false))
            return false;
        if (!file.append(contents) || !file.sync()) {
            file.close();
            ::unlink(tmp.c_str());
            return false;
        }
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        warn(logFmt("durable_file: rename ", tmp, " -> ", path,
                    " failed: ", std::strerror(errno)));
        ::unlink(tmp.c_str());
        return false;
    }
    return true;
}

bool
renameFile(const std::string &path, const std::string &newPath)
{
    if (::rename(path.c_str(), newPath.c_str()) != 0) {
        warn(logFmt("durable_file: rename ", path, " -> ", newPath,
                    " failed: ", std::strerror(errno)));
        return false;
    }
    return true;
}

bool
readFileToString(const std::string &path, std::string &out)
{
    std::ifstream is(path, std::ios::in | std::ios::binary);
    if (!is)
        return false;
    std::ostringstream buf;
    buf << is.rdbuf();
    if (is.bad())
        return false;
    out = buf.str();
    return true;
}

bool
fileExists(const std::string &path)
{
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

bool
fsyncPath(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_WRONLY);
    if (fd < 0)
        return false;
    const bool ok = ::fsync(fd) == 0;
    ::close(fd);
    return ok;
}

} // namespace utrr
