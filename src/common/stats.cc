#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/logging.hh"

namespace utrr
{

namespace
{

/** Median of values[lo, hi) of a sorted vector. */
double
medianOfRange(const std::vector<double> &values, std::size_t lo,
              std::size_t hi)
{
    const std::size_t n = hi - lo;
    UTRR_ASSERT(n > 0, "median of empty range");
    const std::size_t mid = lo + n / 2;
    if (n % 2 == 1)
        return values[mid];
    return 0.5 * (values[mid - 1] + values[mid]);
}

} // namespace

BoxStats
BoxStats::compute(std::vector<double> values)
{
    BoxStats stats;
    stats.count = values.size();
    if (values.empty())
        return stats;

    std::sort(values.begin(), values.end());
    const std::size_t n = values.size();

    stats.min = values.front();
    stats.max = values.back();
    stats.mean =
        std::accumulate(values.begin(), values.end(), 0.0) /
        static_cast<double>(n);
    stats.median = medianOfRange(values, 0, n);

    // Quartiles as medians of the two halves (exclusive of the overall
    // median for odd n), per the paper's footnote 14.
    const std::size_t half = n / 2;
    if (n == 1) {
        stats.q1 = stats.q3 = values[0];
    } else {
        stats.q1 = medianOfRange(values, 0, half);
        stats.q3 = medianOfRange(values, n % 2 == 0 ? half : half + 1, n);
    }

    const double iqr = stats.q3 - stats.q1;
    const double lo_fence = stats.q1 - 1.5 * iqr;
    const double hi_fence = stats.q3 + 1.5 * iqr;

    // Whiskers clamp to the most extreme data points inside the fences.
    stats.whiskerLo = stats.max;
    stats.whiskerHi = stats.min;
    stats.outliers = 0;
    for (double v : values) {
        if (v < lo_fence || v > hi_fence) {
            ++stats.outliers;
        } else {
            stats.whiskerLo = std::min(stats.whiskerLo, v);
            stats.whiskerHi = std::max(stats.whiskerHi, v);
        }
    }
    return stats;
}

std::string
BoxStats::summary() const
{
    std::ostringstream oss;
    oss << min << "/" << q1 << "/" << median << "/" << q3 << "/" << max;
    return oss.str();
}

void
Histogram::add(std::int64_t value, std::uint64_t weight)
{
    counts[value] += weight;
    totalCount += weight;
}

void
Histogram::merge(const Histogram &other)
{
    for (const auto &[value, count] : other.bins())
        add(value, count);
}

std::uint64_t
Histogram::countOf(std::int64_t value) const
{
    const auto it = counts.find(value);
    return it == counts.end() ? 0 : it->second;
}

std::uint64_t
Histogram::total() const
{
    return totalCount;
}

std::int64_t
Histogram::maxValue() const
{
    return counts.empty() ? 0 : counts.rbegin()->first;
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    return std::accumulate(values.begin(), values.end(), 0.0) /
        static_cast<double>(values.size());
}

double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const double rank =
        (p / 100.0) * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - std::floor(rank);
    return values[lo] + frac * (values[hi] - values[lo]);
}

} // namespace utrr
