#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace utrr
{

TextTable::TextTable(std::string title) : title(std::move(title))
{
}

void
TextTable::header(std::vector<std::string> cells)
{
    head = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    data.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    // Compute column widths over header + data.
    std::vector<std::size_t> widths;
    auto grow = [&widths](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(head);
    for (const auto &r : data)
        grow(r);

    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 3;

    if (!title.empty()) {
        os << "\n== " << title << " ==\n";
    }
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string &text = i < cells.size() ? cells[i] : "";
            os << std::left << std::setw(static_cast<int>(widths[i]))
               << text;
            if (i + 1 < widths.size())
                os << " | ";
        }
        os << "\n";
    };
    if (!head.empty()) {
        emit(head);
        os << std::string(total > 3 ? total - 3 : total, '-') << "\n";
    }
    for (const auto &r : data)
        emit(r);
    os.flush();
}

std::string
fmtDouble(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    std::string text = oss.str();
    if (text.find('.') != std::string::npos) {
        while (!text.empty() && text.back() == '0')
            text.pop_back();
        if (!text.empty() && text.back() == '.')
            text.pop_back();
    }
    return text;
}

std::string
fmtPercent(double fraction, int precision)
{
    return fmtDouble(fraction * 100.0, precision) + "%";
}

} // namespace utrr
