/**
 * @file
 * Data checksums for durable on-disk records.
 *
 * The write-ahead result journal (src/runner/journal.hh) stamps every
 * JSONL record with a CRC-32C so a reader can tell a torn tail or a
 * corrupted line from a valid record without trusting file length or
 * JSON well-formedness. CRC-32C (Castagnoli) is the variant used by
 * ext4 metadata, iSCSI and LevelDB journals — a good error-detection
 * polynomial with a well-known reference implementation; we carry the
 * bytewise table-driven software form (no SSE4.2 dependency).
 */

#ifndef UTRR_COMMON_CHECKSUM_HH
#define UTRR_COMMON_CHECKSUM_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace utrr
{

/** CRC-32C (Castagnoli) of a byte string. */
std::uint32_t crc32c(std::string_view data);

/** CRC-32C rendered as 8 lowercase hex digits ("00000000".."ffffffff"). */
std::string crc32cHex(std::string_view data);

/**
 * Parse an 8-hex-digit checksum as produced by crc32cHex. Returns
 * false (leaving @p out untouched) on any malformed input.
 */
bool parseCrc32cHex(std::string_view text, std::uint32_t &out);

} // namespace utrr

#endif // UTRR_COMMON_CHECKSUM_HH
