/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the simulator (retention-time sampling, VRT
 * switching, TRR sampler decisions, ...) flows through Rng so that every
 * experiment is exactly reproducible from a seed. The generator is
 * xoshiro256** (Blackman & Vigna), seeded via splitmix64.
 */

#ifndef UTRR_COMMON_RNG_HH
#define UTRR_COMMON_RNG_HH

#include <array>
#include <cstdint>
#include <string_view>

namespace utrr
{

/**
 * Deterministic 64-bit PRNG (xoshiro256**) with convenience samplers.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x5eed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [lo, hi] (inclusive). Requires lo <= hi. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [lo, hi). */
    double uniformReal(double lo, double hi);

    /** Bernoulli trial with success probability p. */
    bool chance(double p);

    /** Standard normal via Box-Muller (deterministic, no cached spare). */
    double gaussian();

    /** Normal with given mean and standard deviation. */
    double gaussian(double mean, double sigma);

    /** Log-normal: exp(N(mu, sigma)). */
    double logNormal(double mu, double sigma);

    /** Exponential with given mean (mean > 0). */
    double exponential(double mean);

    /**
     * Derive an independent child generator; used to give each DRAM row
     * its own deterministic stream regardless of evaluation order.
     */
    Rng fork(std::uint64_t stream);

    /**
     * Derive an independent *named* sub-stream ("fault.vrt",
     * "fault.noise", ...). Subsystems that draw from their own named
     * stream cannot perturb anyone else's sequence, so enabling such a
     * subsystem with all its rates at zero stays bit-identical to not
     * having it at all.
     */
    Rng fork(std::string_view name);

  private:
    std::array<std::uint64_t, 4> s;
};

/** splitmix64 step; exposed for seeding/hashing helpers. */
std::uint64_t splitmix64(std::uint64_t &state);

/** Stateless 64-bit mix (useful to hash coordinates into seeds). */
std::uint64_t hashMix(std::uint64_t x);

/** FNV-1a 64-bit string hash (names -> RNG stream ids). */
std::uint64_t hashString(std::string_view text);

} // namespace utrr

#endif // UTRR_COMMON_RNG_HH
