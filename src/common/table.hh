/**
 * @file
 * Plain-text table rendering for benchmark output.
 *
 * Every bench binary regenerates one of the paper's tables or figure
 * series; TextTable prints them with aligned columns so the output can be
 * diffed against EXPERIMENTS.md.
 */

#ifndef UTRR_COMMON_TABLE_HH
#define UTRR_COMMON_TABLE_HH

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace utrr
{

/**
 * Column-aligned text table with a header row and an optional title.
 */
class TextTable
{
  public:
    explicit TextTable(std::string title = "");

    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row (cells beyond the header width are kept). */
    void row(std::vector<std::string> cells);

    /** Convenience: format arbitrary streamable cells into a row. */
    template <typename... Args>
    void
    addRow(Args &&...args)
    {
        row({cell(std::forward<Args>(args))...});
    }

    /** Render the table to a stream. */
    void print(std::ostream &os) const;

    /** Number of data rows so far. */
    std::size_t rows() const { return data.size(); }

    /** Format one value the way addRow() would. */
    template <typename T>
    static std::string cell(const T &value);

  private:
    std::string title;
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> data;
};

/** Format a double with fixed precision, trimming trailing zeros. */
std::string fmtDouble(double value, int precision = 2);

/** Format a ratio as a percentage string, e.g. 0.9987 -> "99.9%". */
std::string fmtPercent(double fraction, int precision = 1);

template <typename T>
std::string
TextTable::cell(const T &value)
{
    if constexpr (std::is_same_v<T, std::string>) {
        return value;
    } else if constexpr (std::is_convertible_v<T, const char *>) {
        return std::string(value);
    } else if constexpr (std::is_floating_point_v<T>) {
        return fmtDouble(static_cast<double>(value));
    } else {
        return std::to_string(value);
    }
}

} // namespace utrr

#endif // UTRR_COMMON_TABLE_HH
