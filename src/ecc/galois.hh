/**
 * @file
 * GF(2^8) arithmetic for the Reed-Solomon and Chipkill codes used in
 * the ECC-bypass analysis (paper §7.4).
 *
 * The field is GF(256) with the primitive polynomial
 * x^8 + x^4 + x^3 + x^2 + 1 (0x11D) and generator alpha = 2.
 */

#ifndef UTRR_ECC_GALOIS_HH
#define UTRR_ECC_GALOIS_HH

#include <array>
#include <cstdint>

namespace utrr
{

/**
 * GF(2^8) arithmetic with precomputed log/antilog tables.
 */
class Gf256
{
  public:
    using Elem = std::uint8_t;

    /** Addition (= subtraction) is XOR. */
    static Elem add(Elem a, Elem b) { return a ^ b; }

    /** Multiplication via log tables. */
    static Elem mul(Elem a, Elem b);

    /** Division a / b; b must be nonzero. */
    static Elem div(Elem a, Elem b);

    /** Multiplicative inverse; a must be nonzero. */
    static Elem inv(Elem a);

    /** alpha^power (power may exceed 255; reduced mod 255). */
    static Elem expAlpha(int power);

    /** Discrete log base alpha; a must be nonzero. */
    static int logAlpha(Elem a);

    /** a^n for integer n >= 0. */
    static Elem pow(Elem a, int n);

  private:
    struct Tables
    {
        std::array<Elem, 512> exp{};
        std::array<int, 256> log{};
        Tables();
    };
    static const Tables &tables();
};

} // namespace utrr

#endif // UTRR_ECC_GALOIS_HH
