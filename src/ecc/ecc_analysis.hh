/**
 * @file
 * Classifies RowHammer flip patterns against ECC schemes (paper §7.4).
 *
 * Given the bit positions flipped within an 8-byte dataword, each
 * scheme's codec is exercised end-to-end (encode a known word, apply
 * the flips to the data bits, decode, compare with the original) and
 * the outcome is classified:
 *
 *  - corrected:    decoder fixed the word (data matches the original);
 *  - detected:     decoder flagged an uncorrectable error;
 *  - miscorrected: decoder "corrected" to the wrong data;
 *  - undetected:   decoder accepted a wrong word as clean.
 *
 * Miscorrected and undetected outcomes are silent data corruption —
 * the paper's headline ECC result.
 */

#ifndef UTRR_ECC_ECC_ANALYSIS_HH
#define UTRR_ECC_ECC_ANALYSIS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace utrr
{

/** End-to-end ECC outcome for one flipped dataword. */
enum class EccOutcome
{
    kClean,        // no flips
    kCorrected,
    kDetected,
    kMiscorrected, // silent corruption ("corrected" wrongly)
    kUndetected,   // silent corruption (accepted as clean)
};

std::string eccOutcomeName(EccOutcome outcome);

/** Evaluate SECDED Hamming(72,64) against data-bit flips. */
EccOutcome evaluateSecded(const std::vector<int> &flipped_bits,
                          std::uint64_t data = 0xa5a5a5a5a5a5a5a5ULL);

/** Evaluate on-die SEC Hamming(71,64) against data-bit flips. */
EccOutcome evaluateOnDieSec(const std::vector<int> &flipped_bits,
                            std::uint64_t data =
                                0xa5a5a5a5a5a5a5a5ULL);

/** Evaluate the Chipkill symbol code against data-bit flips. */
EccOutcome evaluateChipkill(const std::vector<int> &flipped_bits,
                            std::uint64_t data = 0xa5a5a5a5a5a5a5a5ULL);

/**
 * Evaluate an RS(8+parity, 8) code with byte symbols and correction
 * capability floor(parity/2) against data-bit flips.
 */
EccOutcome evaluateReedSolomon(const std::vector<int> &flipped_bits,
                               int parity_symbols,
                               std::uint64_t data =
                                   0xa5a5a5a5a5a5a5a5ULL);

/** Aggregate outcome counts of one scheme over many words. */
struct EccTally
{
    std::map<EccOutcome, std::uint64_t> counts;

    void add(EccOutcome outcome) { ++counts[outcome]; }

    std::uint64_t of(EccOutcome outcome) const;
    std::uint64_t total() const;
    /** Miscorrected + undetected. */
    std::uint64_t silentCorruption() const;
};

/**
 * Run all schemes over a distribution of per-word flip counts (as the
 * Fig. 10 histogram provides), assuming flips within a word land on
 * distinct uniformly random data bits (the paper observed arbitrary
 * locations). Deterministic given @p seed.
 */
struct EccStudy
{
    EccTally secded;
    EccTally onDieSec;
    EccTally chipkill;
    std::map<int, EccTally> reedSolomon; // parity symbols -> tally
};

EccStudy studyWordFlipHistogram(const Histogram &word_flips,
                                const std::vector<int> &rs_parities,
                                std::uint64_t seed = 42,
                                std::uint64_t max_words_per_bin =
                                    20'000);

} // namespace utrr

#endif // UTRR_ECC_ECC_ANALYSIS_HH
