/**
 * @file
 * Systematic Reed-Solomon codes over GF(256).
 *
 * Used two ways in the §7.4 analysis:
 *  - as the Chipkill-style symbol code (correct one symbol, detect two);
 *  - to quantify the parity overhead a code would need to withstand the
 *    up-to-7-bit-flip words the custom patterns produce (the paper
 *    concludes at least 7 parity-check symbols are required).
 *
 * The decoder is bounded-distance: syndromes, Berlekamp-Massey, Chien
 * search and Forney's algorithm, correcting up to a configurable number
 * of symbol errors t <= floor((n-k)/2) and reporting a detected
 * (uncorrectable) error otherwise. As with real codes, error patterns
 * beyond the guaranteed distance can decode to a *wrong* codeword —
 * the miscorrections the paper exploits.
 */

#ifndef UTRR_ECC_REED_SOLOMON_HH
#define UTRR_ECC_REED_SOLOMON_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "ecc/galois.hh"

namespace utrr
{

/** Result of a Reed-Solomon decode attempt. */
struct RsDecodeResult
{
    enum class Status
    {
        kClean,     // syndromes all zero
        kCorrected, // <= t symbol errors corrected
        kDetected,  // uncorrectable error detected
    };

    Status status = Status::kClean;
    /** Decoded codeword (corrected when status == kCorrected). */
    std::vector<Gf256::Elem> codeword;
    /** Number of symbols corrected. */
    int symbolsCorrected = 0;
};

/**
 * RS(n, k) over GF(256), systematic (data symbols first).
 */
class ReedSolomon
{
  public:
    /**
     * @param n codeword length in symbols (n <= 255)
     * @param k data symbols (k < n)
     * @param t correction capability; default floor((n-k)/2)
     */
    ReedSolomon(int n, int k, int t = -1);

    int n() const { return nLen; }
    int k() const { return kLen; }
    int t() const { return tCap; }

    /** Encode @p data (k symbols) into an n-symbol codeword. */
    std::vector<Gf256::Elem>
    encode(const std::vector<Gf256::Elem> &data) const;

    /** Decode a received n-symbol word. */
    RsDecodeResult decode(const std::vector<Gf256::Elem> &received) const;

  private:
    std::vector<Gf256::Elem> syndromes(
        const std::vector<Gf256::Elem> &received) const;

    int nLen;
    int kLen;
    int tCap;
    /** Generator polynomial, lowest degree first. */
    std::vector<Gf256::Elem> gen;
};

} // namespace utrr

#endif // UTRR_ECC_REED_SOLOMON_HH
