#include "ecc/ecc_analysis.hh"

#include <algorithm>
#include <set>

#include "common/logging.hh"
#include "common/rng.hh"
#include "ecc/chipkill.hh"
#include "ecc/secded.hh"

namespace utrr
{

std::string
eccOutcomeName(EccOutcome outcome)
{
    switch (outcome) {
      case EccOutcome::kClean:
        return "clean";
      case EccOutcome::kCorrected:
        return "corrected";
      case EccOutcome::kDetected:
        return "detected";
      case EccOutcome::kMiscorrected:
        return "miscorrected";
      case EccOutcome::kUndetected:
        return "undetected";
    }
    return "?";
}

EccOutcome
evaluateSecded(const std::vector<int> &flipped_bits, std::uint64_t data)
{
    if (flipped_bits.empty())
        return EccOutcome::kClean;

    const Secded::Codeword original = Secded::encode(data);
    Secded::Codeword received = original;
    for (int bit : flipped_bits) {
        UTRR_ASSERT(bit >= 0 && bit < 64, "data-bit flips only");
        received = Secded::flipBit(received, bit);
    }

    const Secded::DecodeResult result = Secded::decode(received);
    switch (result.status) {
      case Secded::Status::kClean:
        return result.codeword.data == data ? EccOutcome::kClean
                                            : EccOutcome::kUndetected;
      case Secded::Status::kCorrected:
        return result.codeword.data == data ? EccOutcome::kCorrected
                                            : EccOutcome::kMiscorrected;
      case Secded::Status::kDetected:
        return EccOutcome::kDetected;
    }
    return EccOutcome::kDetected;
}

EccOutcome
evaluateOnDieSec(const std::vector<int> &flipped_bits,
                 std::uint64_t data)
{
    if (flipped_bits.empty())
        return EccOutcome::kClean;

    const OnDieSec::Codeword original = OnDieSec::encode(data);
    OnDieSec::Codeword received = original;
    for (int bit : flipped_bits) {
        UTRR_ASSERT(bit >= 0 && bit < 64, "data-bit flips only");
        received = Secded::flipBit(received, bit);
    }

    const OnDieSec::DecodeResult result = OnDieSec::decode(received);
    switch (result.status) {
      case OnDieSec::Status::kClean:
        return result.codeword.data == data ? EccOutcome::kClean
                                            : EccOutcome::kUndetected;
      case OnDieSec::Status::kCorrected:
        return result.codeword.data == data ? EccOutcome::kCorrected
                                            : EccOutcome::kMiscorrected;
      case OnDieSec::Status::kDetected:
        return EccOutcome::kDetected;
    }
    return EccOutcome::kDetected;
}

namespace
{

EccOutcome
classifyRs(const RsDecodeResult &result,
           const std::vector<Gf256::Elem> &original,
           std::uint64_t original_data)
{
    switch (result.status) {
      case RsDecodeResult::Status::kClean:
        return Chipkill::dataOf(result.codeword) == original_data
            ? EccOutcome::kClean
            : EccOutcome::kUndetected;
      case RsDecodeResult::Status::kCorrected:
        return result.codeword == original ? EccOutcome::kCorrected
                                           : EccOutcome::kMiscorrected;
      case RsDecodeResult::Status::kDetected:
        return EccOutcome::kDetected;
    }
    return EccOutcome::kDetected;
}

std::vector<Gf256::Elem>
applyDataFlips(std::vector<Gf256::Elem> word,
               const std::vector<int> &flipped_bits)
{
    for (int bit : flipped_bits) {
        UTRR_ASSERT(bit >= 0 && bit < 64, "data-bit flips only");
        word[static_cast<std::size_t>(bit / 8)] ^=
            static_cast<Gf256::Elem>(1u << (bit % 8));
    }
    return word;
}

} // namespace

EccOutcome
evaluateChipkill(const std::vector<int> &flipped_bits,
                 std::uint64_t data)
{
    if (flipped_bits.empty())
        return EccOutcome::kClean;

    static const Chipkill codec;
    const std::vector<Gf256::Elem> original = codec.encode(data);
    const std::vector<Gf256::Elem> received =
        applyDataFlips(original, flipped_bits);
    return classifyRs(codec.decode(received), original, data);
}

EccOutcome
evaluateReedSolomon(const std::vector<int> &flipped_bits,
                    int parity_symbols, std::uint64_t data)
{
    if (flipped_bits.empty())
        return EccOutcome::kClean;

    const ReedSolomon rs(8 + parity_symbols, 8);
    std::vector<Gf256::Elem> message;
    for (int chip = 0; chip < 8; ++chip) {
        message.push_back(
            static_cast<Gf256::Elem>((data >> (8 * chip)) & 0xff));
    }
    const std::vector<Gf256::Elem> original = rs.encode(message);
    const std::vector<Gf256::Elem> received =
        applyDataFlips(original, flipped_bits);
    return classifyRs(rs.decode(received), original, data);
}

std::uint64_t
EccTally::of(EccOutcome outcome) const
{
    const auto it = counts.find(outcome);
    return it == counts.end() ? 0 : it->second;
}

std::uint64_t
EccTally::total() const
{
    std::uint64_t sum = 0;
    for (const auto &[outcome, count] : counts)
        sum += count;
    return sum;
}

std::uint64_t
EccTally::silentCorruption() const
{
    return of(EccOutcome::kMiscorrected) + of(EccOutcome::kUndetected);
}

EccStudy
studyWordFlipHistogram(const Histogram &word_flips,
                       const std::vector<int> &rs_parities,
                       std::uint64_t seed,
                       std::uint64_t max_words_per_bin)
{
    EccStudy study;
    Rng rng(seed);
    for (const auto &[flips, count] : word_flips.bins()) {
        const std::uint64_t words =
            std::min<std::uint64_t>(count, max_words_per_bin);
        for (std::uint64_t w = 0; w < words; ++w) {
            // Flips land on distinct random data bits of the word.
            std::set<int> bits;
            while (static_cast<std::int64_t>(bits.size()) < flips)
                bits.insert(static_cast<int>(rng.uniformInt(0, 63)));
            const std::vector<int> flipped(bits.begin(), bits.end());

            study.secded.add(evaluateSecded(flipped));
            study.onDieSec.add(evaluateOnDieSec(flipped));
            study.chipkill.add(evaluateChipkill(flipped));
            for (int parity : rs_parities)
                study.reedSolomon[parity].add(
                    evaluateReedSolomon(flipped, parity));
        }
    }
    return study;
}

} // namespace utrr
