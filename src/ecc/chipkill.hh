/**
 * @file
 * Chipkill-style symbol-based ECC (paper §7.4).
 *
 * Conventional Chipkill corrects all errors within one DRAM chip
 * (one symbol) and detects errors spanning two chips. We model an
 * 8-byte dataword striped across chips — each chip contributes one
 * 8-bit symbol (x8 devices) — protected by an RS(11, 8) code over
 * GF(256) decoded with t = 1 (distance 4: single-symbol correct,
 * double-symbol detect). Flips spread over three or more chips exceed
 * the guarantee and can decode to a wrong codeword, which is precisely
 * what the paper's >= 3-flips-per-word patterns cause.
 */

#ifndef UTRR_ECC_CHIPKILL_HH
#define UTRR_ECC_CHIPKILL_HH

#include <cstdint>
#include <vector>

#include "ecc/reed_solomon.hh"

namespace utrr
{

/**
 * Chipkill codec for one 64-bit dataword across 8 chips.
 */
class Chipkill
{
  public:
    Chipkill();

    /** Symbols per codeword (8 data + 3 parity). */
    int symbols() const { return rs.n(); }

    /** Encode a 64-bit word into 11 byte-symbols. */
    std::vector<Gf256::Elem> encode(std::uint64_t data) const;

    /** Extract the 64-bit data from a codeword. */
    static std::uint64_t dataOf(const std::vector<Gf256::Elem> &word);

    /** Decode a received codeword. */
    RsDecodeResult decode(const std::vector<Gf256::Elem> &received) const;

  private:
    ReedSolomon rs;
};

} // namespace utrr

#endif // UTRR_ECC_CHIPKILL_HH
