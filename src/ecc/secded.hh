/**
 * @file
 * SECDED Hamming(72,64): the typical DRAM ECC the paper's custom
 * patterns defeat (§7.4).
 *
 * Layout: the 64 data bits and 7 Hamming check bits occupy codeword
 * positions 1..71 (check bits at the power-of-two positions), plus an
 * overall parity bit at position 0. Decoding classifies a received
 * word as clean, single-error-corrected, or double-error-detected;
 * patterns with >= 3 flipped bits alias into the other classes (often
 * "correcting" the wrong bit), which is exactly the failure mode the
 * paper demonstrates.
 */

#ifndef UTRR_ECC_SECDED_HH
#define UTRR_ECC_SECDED_HH

#include <cstdint>
#include <vector>

namespace utrr
{

/**
 * Hamming(72,64) SECDED codec.
 */
class Secded
{
  public:
    /** A 72-bit codeword: 64 data bits + 8 check bits. */
    struct Codeword
    {
        std::uint64_t data = 0;
        std::uint8_t check = 0; // bit 7 = overall parity

        bool operator==(const Codeword &other) const = default;
    };

    enum class Status
    {
        kClean,
        kCorrected, // single-bit error corrected
        kDetected,  // uncorrectable double-bit error
    };

    struct DecodeResult
    {
        Status status = Status::kClean;
        Codeword codeword;
    };

    /** Encode 64 data bits. */
    static Codeword encode(std::uint64_t data);

    /** Decode (and possibly correct) a received codeword. */
    static DecodeResult decode(Codeword received);

    /** Flip one bit of a codeword: positions 0..63 = data bits,
     *  64..71 = check bits. */
    static Codeword flipBit(Codeword word, int bit);
};

/**
 * On-die SEC Hamming(71,64): the single-error-correcting (no DED) code
 * DRAM vendors integrate on the die (cf. the paper's on-die-ECC
 * references [92, 93]). Same layout as Secded minus the overall parity
 * bit, so a double-bit error aliases to a single-bit syndrome and is
 * silently miscorrected — on-die ECC offers no protection against the
 * multi-flip words the custom patterns produce.
 */
class OnDieSec
{
  public:
    using Codeword = Secded::Codeword; // check bit 7 unused

    enum class Status
    {
        kClean,
        kCorrected,
        kDetected, // syndrome outside the codeword (never guaranteed)
    };

    struct DecodeResult
    {
        Status status = Status::kClean;
        Codeword codeword;
    };

    static Codeword encode(std::uint64_t data);
    static DecodeResult decode(Codeword received);
};

} // namespace utrr

#endif // UTRR_ECC_SECDED_HH
