#include "ecc/chipkill.hh"

#include "common/logging.hh"

namespace utrr
{

Chipkill::Chipkill() : rs(11, 8, 1)
{
}

std::vector<Gf256::Elem>
Chipkill::encode(std::uint64_t data) const
{
    std::vector<Gf256::Elem> symbols;
    for (int chip = 0; chip < 8; ++chip) {
        symbols.push_back(
            static_cast<Gf256::Elem>((data >> (8 * chip)) & 0xff));
    }
    return rs.encode(symbols);
}

std::uint64_t
Chipkill::dataOf(const std::vector<Gf256::Elem> &word)
{
    UTRR_ASSERT(word.size() >= 8, "codeword too short");
    std::uint64_t data = 0;
    for (int chip = 0; chip < 8; ++chip) {
        data |= static_cast<std::uint64_t>(word[static_cast<std::size_t>(
                    chip)])
            << (8 * chip);
    }
    return data;
}

RsDecodeResult
Chipkill::decode(const std::vector<Gf256::Elem> &received) const
{
    return rs.decode(received);
}

} // namespace utrr
