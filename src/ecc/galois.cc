#include "ecc/galois.hh"

#include "common/logging.hh"

namespace utrr
{

Gf256::Tables::Tables()
{
    // Build antilog/log tables for generator alpha = 2 with the
    // primitive polynomial 0x11D.
    int x = 1;
    for (int i = 0; i < 255; ++i) {
        exp[static_cast<std::size_t>(i)] = static_cast<Elem>(x);
        log[static_cast<std::size_t>(x)] = i;
        x <<= 1;
        if (x & 0x100)
            x ^= 0x11D;
    }
    for (int i = 255; i < 512; ++i)
        exp[static_cast<std::size_t>(i)] =
            exp[static_cast<std::size_t>(i - 255)];
    log[0] = -1;
}

const Gf256::Tables &
Gf256::tables()
{
    static const Tables t;
    return t;
}

Gf256::Elem
Gf256::mul(Elem a, Elem b)
{
    if (a == 0 || b == 0)
        return 0;
    const Tables &t = tables();
    return t.exp[static_cast<std::size_t>(
        t.log[a] + t.log[b])];
}

Gf256::Elem
Gf256::div(Elem a, Elem b)
{
    UTRR_ASSERT(b != 0, "division by zero in GF(256)");
    if (a == 0)
        return 0;
    const Tables &t = tables();
    int diff = t.log[a] - t.log[b];
    if (diff < 0)
        diff += 255;
    return t.exp[static_cast<std::size_t>(diff)];
}

Gf256::Elem
Gf256::inv(Elem a)
{
    UTRR_ASSERT(a != 0, "inverse of zero in GF(256)");
    const Tables &t = tables();
    return t.exp[static_cast<std::size_t>(255 - t.log[a])];
}

Gf256::Elem
Gf256::expAlpha(int power)
{
    const Tables &t = tables();
    int p = power % 255;
    if (p < 0)
        p += 255;
    return t.exp[static_cast<std::size_t>(p)];
}

int
Gf256::logAlpha(Elem a)
{
    UTRR_ASSERT(a != 0, "log of zero in GF(256)");
    return tables().log[a];
}

Gf256::Elem
Gf256::pow(Elem a, int n)
{
    if (n == 0)
        return 1;
    if (a == 0)
        return 0;
    const int l = (logAlpha(a) * n) % 255;
    return expAlpha(l);
}

} // namespace utrr
