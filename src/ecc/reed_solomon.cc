#include "ecc/reed_solomon.hh"

#include <algorithm>

#include "common/logging.hh"

namespace utrr
{

namespace
{

using Elem = Gf256::Elem;

/** Evaluate a polynomial (lowest degree first) at x. */
Elem
polyEval(const std::vector<Elem> &poly, Elem x)
{
    Elem result = 0;
    Elem power = 1;
    for (Elem coeff : poly) {
        result = Gf256::add(result, Gf256::mul(coeff, power));
        power = Gf256::mul(power, x);
    }
    return result;
}

} // namespace

ReedSolomon::ReedSolomon(int n, int k, int t) : nLen(n), kLen(k)
{
    UTRR_ASSERT(n > k && k > 0 && n <= 255, "bad RS parameters");
    tCap = t >= 0 ? t : (n - k) / 2;
    UTRR_ASSERT(tCap <= (n - k) / 2, "t exceeds (n-k)/2");

    // g(x) = prod_{i=0}^{n-k-1} (x - alpha^i), lowest degree first.
    gen = {1};
    for (int i = 0; i < n - k; ++i) {
        const Elem root = Gf256::expAlpha(i);
        std::vector<Elem> next(gen.size() + 1, 0);
        for (std::size_t j = 0; j < gen.size(); ++j) {
            next[j + 1] = Gf256::add(next[j + 1], gen[j]); // x * gen
            next[j] = Gf256::add(next[j], Gf256::mul(gen[j], root));
        }
        gen = std::move(next);
    }
}

std::vector<Elem>
ReedSolomon::encode(const std::vector<Elem> &data) const
{
    UTRR_ASSERT(static_cast<int>(data.size()) == kLen,
                "data must have k symbols");
    // Systematic encoding: codeword = [data | remainder], where
    // remainder = (data(x) * x^(n-k)) mod g(x).
    const int parity = nLen - kLen;
    std::vector<Elem> rem(static_cast<std::size_t>(parity), 0);
    // Process data symbols from highest degree (data[0] is the highest
    // degree symbol in the shifted message polynomial).
    for (int i = 0; i < kLen; ++i) {
        const Elem feedback = Gf256::add(data[static_cast<std::size_t>(i)],
                                         rem[static_cast<std::size_t>(
                                             parity - 1)]);
        // Shift remainder up by one and add feedback * g.
        for (int j = parity - 1; j > 0; --j) {
            rem[static_cast<std::size_t>(j)] = Gf256::add(
                rem[static_cast<std::size_t>(j - 1)],
                Gf256::mul(feedback,
                           gen[static_cast<std::size_t>(j)]));
        }
        rem[0] = Gf256::mul(feedback, gen[0]);
    }

    std::vector<Elem> codeword(data);
    // Parity appended highest-degree-first to keep the polynomial
    // convention consistent in decode().
    for (int j = parity - 1; j >= 0; --j)
        codeword.push_back(rem[static_cast<std::size_t>(j)]);
    return codeword;
}

std::vector<Elem>
ReedSolomon::syndromes(const std::vector<Elem> &received) const
{
    // Treat received[0] as the highest-degree coefficient.
    std::vector<Elem> synd(static_cast<std::size_t>(nLen - kLen), 0);
    for (int i = 0; i < nLen - kLen; ++i) {
        const Elem x = Gf256::expAlpha(i);
        Elem value = 0;
        for (const Elem symbol : received)
            value = Gf256::add(Gf256::mul(value, x), symbol);
        synd[static_cast<std::size_t>(i)] = value;
    }
    return synd;
}

RsDecodeResult
ReedSolomon::decode(const std::vector<Elem> &received) const
{
    UTRR_ASSERT(static_cast<int>(received.size()) == nLen,
                "received word must have n symbols");
    RsDecodeResult result;
    result.codeword = received;

    const std::vector<Elem> synd = syndromes(received);
    const bool clean = std::all_of(synd.begin(), synd.end(),
                                   [](Elem s) { return s == 0; });
    if (clean) {
        result.status = RsDecodeResult::Status::kClean;
        return result;
    }

    // Berlekamp-Massey: find the error locator polynomial sigma
    // (lowest degree first).
    std::vector<Elem> sigma = {1};
    std::vector<Elem> prev = {1};
    int l = 0;
    int m = 1;
    Elem b = 1;
    for (int iter = 0; iter < nLen - kLen; ++iter) {
        Elem delta = synd[static_cast<std::size_t>(iter)];
        for (int j = 1; j <= l; ++j) {
            if (j < static_cast<int>(sigma.size())) {
                delta = Gf256::add(
                    delta,
                    Gf256::mul(sigma[static_cast<std::size_t>(j)],
                               synd[static_cast<std::size_t>(
                                   iter - j)]));
            }
        }
        if (delta == 0) {
            ++m;
            continue;
        }
        const std::vector<Elem> sigma_copy = sigma;
        // sigma = sigma - (delta/b) * x^m * prev
        const Elem coeff = Gf256::div(delta, b);
        if (sigma.size() < prev.size() + static_cast<std::size_t>(m))
            sigma.resize(prev.size() + static_cast<std::size_t>(m), 0);
        for (std::size_t j = 0; j < prev.size(); ++j) {
            sigma[j + static_cast<std::size_t>(m)] = Gf256::add(
                sigma[j + static_cast<std::size_t>(m)],
                Gf256::mul(coeff, prev[j]));
        }
        if (2 * l <= iter) {
            l = iter + 1 - l;
            prev = sigma_copy;
            b = delta;
            m = 1;
        } else {
            ++m;
        }
    }

    const int degree = l;
    if (degree > tCap) {
        result.status = RsDecodeResult::Status::kDetected;
        return result;
    }

    // Chien search: roots of sigma give error positions. received[i]
    // has polynomial degree n-1-i, and sigma's roots are alpha^{-deg}.
    std::vector<int> error_positions;
    for (int i = 0; i < nLen; ++i) {
        const int deg = nLen - 1 - i;
        const Elem x = Gf256::expAlpha(-deg); // alpha^{-deg}
        if (polyEval(sigma, x) == 0)
            error_positions.push_back(i);
    }
    if (static_cast<int>(error_positions.size()) != degree) {
        result.status = RsDecodeResult::Status::kDetected;
        return result;
    }

    // Forney: error evaluator omega = (synd * sigma) mod x^{n-k}
    // (syndromes as a polynomial, lowest degree first).
    std::vector<Elem> omega(static_cast<std::size_t>(nLen - kLen), 0);
    for (std::size_t i = 0; i < omega.size(); ++i) {
        Elem value = 0;
        for (std::size_t j = 0; j <= i && j < sigma.size(); ++j) {
            value = Gf256::add(value,
                               Gf256::mul(sigma[j], synd[i - j]));
        }
        omega[i] = value;
    }

    // Formal derivative of sigma.
    std::vector<Elem> sigma_prime;
    for (std::size_t j = 1; j < sigma.size(); ++j)
        sigma_prime.push_back(j % 2 == 1 ? sigma[j] : 0);

    for (int pos : error_positions) {
        const int deg = nLen - 1 - pos;
        const Elem x_inv = Gf256::expAlpha(-deg);
        const Elem denom = polyEval(sigma_prime, x_inv);
        if (denom == 0) {
            result.status = RsDecodeResult::Status::kDetected;
            return result;
        }
        const Elem num = polyEval(omega, x_inv);
        // Error magnitude for a code with syndromes starting at
        // alpha^0: e = X * omega(X^-1) / sigma'(X^-1).
        const Elem magnitude = Gf256::mul(
            Gf256::expAlpha(deg), Gf256::div(num, denom));
        result.codeword[static_cast<std::size_t>(pos)] = Gf256::add(
            result.codeword[static_cast<std::size_t>(pos)], magnitude);
    }

    // Sanity: the corrected word must be a codeword; otherwise report
    // detection rather than hand back garbage.
    const std::vector<Elem> check = syndromes(result.codeword);
    const bool ok = std::all_of(check.begin(), check.end(),
                                [](Elem s) { return s == 0; });
    if (!ok) {
        result.codeword = received;
        result.status = RsDecodeResult::Status::kDetected;
        return result;
    }
    result.status = RsDecodeResult::Status::kCorrected;
    result.symbolsCorrected = degree;
    return result;
}

} // namespace utrr
