#include "ecc/secded.hh"

#include <array>
#include <bit>

#include "common/logging.hh"

namespace utrr
{

namespace
{

/** Codeword positions (1..71) of the 64 data bits: every position that
 *  is not a power of two. */
const std::array<int, 64> &
dataPositions()
{
    static const std::array<int, 64> positions = [] {
        std::array<int, 64> result{};
        int next = 0;
        for (int pos = 1; pos < 72 && next < 64; ++pos) {
            if ((pos & (pos - 1)) == 0)
                continue; // power of two: check bit
            result[static_cast<std::size_t>(next++)] = pos;
        }
        return result;
    }();
    return positions;
}

/** 72-entry bit array of a codeword, position 0 = overall parity. */
std::array<bool, 72>
toBits(const Secded::Codeword &word)
{
    std::array<bool, 72> bits{};
    bits[0] = (word.check >> 7) & 1;
    for (int j = 0; j < 7; ++j)
        bits[static_cast<std::size_t>(1 << j)] = (word.check >> j) & 1;
    const auto &positions = dataPositions();
    for (int i = 0; i < 64; ++i) {
        bits[static_cast<std::size_t>(positions[
            static_cast<std::size_t>(i)])] = (word.data >> i) & 1;
    }
    return bits;
}

Secded::Codeword
fromBits(const std::array<bool, 72> &bits)
{
    Secded::Codeword word;
    for (int j = 0; j < 7; ++j) {
        if (bits[static_cast<std::size_t>(1 << j)])
            word.check |= static_cast<std::uint8_t>(1u << j);
    }
    if (bits[0])
        word.check |= 0x80;
    const auto &positions = dataPositions();
    for (int i = 0; i < 64; ++i) {
        if (bits[static_cast<std::size_t>(positions[
                static_cast<std::size_t>(i)])])
            word.data |= 1ULL << i;
    }
    return word;
}

} // namespace

Secded::Codeword
Secded::encode(std::uint64_t data)
{
    Codeword word;
    word.data = data;

    std::array<bool, 72> bits = toBits(word);
    // Hamming check bits: parity over all positions sharing the bit.
    for (int j = 0; j < 7; ++j) {
        bool parity = false;
        for (int pos = 1; pos < 72; ++pos) {
            if ((pos & (1 << j)) && (pos & (pos - 1)) != 0)
                parity ^= bits[static_cast<std::size_t>(pos)];
        }
        bits[static_cast<std::size_t>(1 << j)] = parity;
    }
    // Overall parity over positions 1..71.
    bool overall = false;
    for (int pos = 1; pos < 72; ++pos)
        overall ^= bits[static_cast<std::size_t>(pos)];
    bits[0] = overall;

    return fromBits(bits);
}

Secded::DecodeResult
Secded::decode(Codeword received)
{
    const std::array<bool, 72> bits = toBits(received);

    int syndrome = 0;
    for (int pos = 1; pos < 72; ++pos) {
        if (bits[static_cast<std::size_t>(pos)])
            syndrome ^= pos;
    }
    bool parity = false;
    for (int pos = 0; pos < 72; ++pos)
        parity ^= bits[static_cast<std::size_t>(pos)];

    DecodeResult result;
    result.codeword = received;

    if (syndrome == 0 && !parity) {
        result.status = Status::kClean;
        return result;
    }
    if (!parity) {
        // Nonzero syndrome with even overall parity: >= 2 errors.
        result.status = Status::kDetected;
        return result;
    }
    // Odd overall parity: classified as a single error (which may be a
    // miscorrection when >= 3 bits actually flipped).
    if (syndrome >= 72) {
        // Syndrome points outside the codeword: uncorrectable.
        result.status = Status::kDetected;
        return result;
    }
    std::array<bool, 72> fixed = bits;
    fixed[static_cast<std::size_t>(syndrome)] =
        !fixed[static_cast<std::size_t>(syndrome)];
    result.codeword = fromBits(fixed);
    result.status = Status::kCorrected;
    return result;
}

Secded::Codeword
Secded::flipBit(Codeword word, int bit)
{
    UTRR_ASSERT(bit >= 0 && bit < 72, "bit out of range");
    if (bit < 64) {
        word.data ^= 1ULL << bit;
    } else {
        word.check ^= static_cast<std::uint8_t>(1u << (bit - 64));
    }
    return word;
}

OnDieSec::Codeword
OnDieSec::encode(std::uint64_t data)
{
    Codeword word = Secded::encode(data);
    word.check &= 0x7f; // no overall parity bit
    return word;
}

OnDieSec::DecodeResult
OnDieSec::decode(Codeword received)
{
    received.check &= 0x7f;
    const std::array<bool, 72> bits = toBits(received);

    int syndrome = 0;
    for (int pos = 1; pos < 72; ++pos) {
        if (bits[static_cast<std::size_t>(pos)])
            syndrome ^= pos;
    }

    DecodeResult result;
    result.codeword = received;
    if (syndrome == 0) {
        result.status = Status::kClean;
        return result;
    }
    if (syndrome >= 72) {
        result.status = Status::kDetected;
        return result;
    }
    std::array<bool, 72> fixed = bits;
    fixed[static_cast<std::size_t>(syndrome)] =
        !fixed[static_cast<std::size_t>(syndrome)];
    result.codeword = fromBits(fixed);
    result.codeword.check &= 0x7f;
    result.status = Status::kCorrected;
    return result;
}

} // namespace utrr
