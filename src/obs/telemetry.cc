#include "obs/telemetry.hh"

#include <algorithm>

#include "common/durable_file.hh"
#include "common/logging.hh"

namespace utrr
{

TelemetrySink::TelemetrySink(const std::string &path,
                             bool fsync_each_record)
    : owned(std::make_unique<std::ofstream>(path,
                                            std::ios::out |
                                                std::ios::trunc)),
      out(owned.get()), startWall(std::chrono::steady_clock::now())
{
    if (!owned->good())
        warn(logFmt("telemetry: cannot open ", path, " for writing"));
    else if (fsync_each_record)
        fsyncTarget = path;
}

TelemetrySink::TelemetrySink(std::ostream &os)
    : out(&os), startWall(std::chrono::steady_clock::now())
{
}

bool
TelemetrySink::good() const
{
    const std::lock_guard<std::mutex> lock(mutex);
    return out != nullptr && out->good();
}

std::uint64_t
TelemetrySink::recordsWritten() const
{
    const std::lock_guard<std::mutex> lock(mutex);
    return seq;
}

double
TelemetrySink::elapsedMs() const
{
    const auto delta = std::chrono::steady_clock::now() - startWall;
    return std::chrono::duration<double, std::milli>(delta).count();
}

void
TelemetrySink::emit(const char *type, Json record)
{
    // `record` already holds the type-specific fields; prepend the
    // envelope by building a fresh object (keys keep insertion order).
    Json line = Json::object();
    line["type"] = type;
    line["seq"] = seq;
    line["wall_ms"] = elapsedMs();
    for (const auto &[key, value] : record.members())
        line[key] = value;
    ++seq;
    *out << line.dump() << '\n';
    out->flush();
    // A flush reaches the OS; the fsync (a second fd on the same file
    // — fsync durability is per-file, not per-descriptor) reaches the
    // disk, matching the result journal's crash guarantee.
    if (!fsyncTarget.empty())
        fsyncPath(fsyncTarget);
}

void
TelemetrySink::campaignStart(std::uint64_t jobs_total, int workers,
                             std::uint64_t seed)
{
    const std::lock_guard<std::mutex> lock(mutex);
    startWall = std::chrono::steady_clock::now();
    totalJobs = jobs_total;
    jobsDone = 0;
    retriesTotal = 0;
    quarantinedTotal = 0;
    failuresTotal = 0;
    Json record = Json::object();
    record["schema"] = kTelemetrySchemaVersion;
    record["jobs_total"] = jobs_total;
    record["workers"] = workers;
    record["seed"] = seed;
    emit("campaign_start", std::move(record));
}

void
TelemetrySink::campaignResume(std::uint64_t journaled,
                              std::uint64_t scheduled)
{
    const std::lock_guard<std::mutex> lock(mutex);
    // Journaled jobs emit no heartbeat of their own; seeding the tally
    // here keeps jobs_done monotone and lets it still reach jobs_total
    // by campaign_end.
    jobsDone = journaled;
    Json record = Json::object();
    record["schema"] = kTelemetrySchemaVersion;
    record["journaled"] = journaled;
    record["scheduled"] = scheduled;
    record["jobs_total"] = totalJobs;
    emit("campaign_resume", std::move(record));
}

void
TelemetrySink::heartbeat(const JobHeartbeat &beat)
{
    const std::lock_guard<std::mutex> lock(mutex);
    // Tally update and record emission happen under the same mutex, so
    // the stream's jobs_done is strictly monotone in file order even
    // when workers finish (and contend) simultaneously.
    jobsDone += 1;
    retriesTotal +=
        static_cast<std::uint64_t>(std::max(beat.attempts - 1, 0));
    quarantinedTotal += beat.quarantined ? 1 : 0;
    failuresTotal += beat.ok ? 0 : 1;

    Json record = Json::object();
    record["module"] = beat.module;
    record["job_index"] = beat.jobIndex;
    record["ok"] = beat.ok;
    record["attempts"] = beat.attempts;
    record["quarantined"] = beat.quarantined;
    record["jobs_done"] = jobsDone;
    record["jobs_total"] = totalJobs;
    // Wall-clock ETA: elapsed / done scaled to the remainder. Crude but
    // honest for a pool draining uniform jobs; -1 when undefined (no
    // campaign_start announced a plausible total).
    double eta_ms = -1.0;
    if (totalJobs >= jobsDone) {
        eta_ms = elapsedMs() / static_cast<double>(jobsDone) *
            static_cast<double>(totalJobs - jobsDone);
    }
    record["eta_ms"] = eta_ms;
    record["retries"] = retriesTotal;
    record["quarantined_total"] = quarantinedTotal;
    record["failures"] = failuresTotal;
    record["job_wall_ms"] = beat.jobWallMs;
    record["job_sim_ns"] = static_cast<std::int64_t>(beat.jobSimNs);
    Json metrics = Json::object();
    if (beat.metrics != nullptr) {
        for (const auto &[name, counter] : beat.metrics->counters())
            metrics[name] = counter.value;
    }
    record["metrics"] = std::move(metrics);
    emit("heartbeat", std::move(record));
}

void
TelemetrySink::campaignEnd(std::uint64_t jobs_total,
                           std::uint64_t failures, std::uint64_t retries,
                           std::uint64_t quarantined, double wall_ms)
{
    const std::lock_guard<std::mutex> lock(mutex);
    Json record = Json::object();
    record["jobs_total"] = jobs_total;
    record["failures"] = failures;
    record["retries"] = retries;
    record["quarantined"] = quarantined;
    record["campaign_wall_ms"] = wall_ms;
    record["ok"] = failures == 0;
    emit("campaign_end", std::move(record));
}

} // namespace utrr
