/**
 * @file
 * Streaming campaign telemetry: JSONL heartbeats that make a
 * long-running campaign observable while it runs instead of only after
 * it exits.
 *
 * One record per line, flushed as written, so `tail -f telemetry.jsonl`
 * (or the future campaign server) sees progress live. Three record
 * types share a `type` field and a monotonically increasing `seq`:
 *
 *   campaign_start — schema version, job count, worker count, seed
 *   heartbeat      — one per finished job: which module, ok/attempts/
 *                    quarantined, jobs done/total, wall-clock ETA,
 *                    campaign retry/quarantine/failure tallies, the
 *                    job's wall and simulated time, and the job's
 *                    private counter registry (its metrics delta —
 *                    job registries start empty, so the snapshot IS
 *                    the delta)
 *   campaign_end   — final tallies and overall ok
 *
 * Telemetry is explicitly *outside* the determinism surface: wall
 * times, ETA and arrival order depend on scheduling. Everything the
 * equivalence tests byte-compare (verdicts, merged counters) stays in
 * CampaignResult. The sink serializes writers with a mutex and owns
 * the running campaign tallies (jobs done, retries, quarantines,
 * failures), bumping them under that same mutex — so tally updates and
 * record emission are atomic and jobs_done is monotone in file order
 * no matter which worker finished first. Schema is validated in CI by
 * scripts/telemetry_check.py.
 */

#ifndef UTRR_OBS_TELEMETRY_HH
#define UTRR_OBS_TELEMETRY_HH

#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>

#include "common/types.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"

namespace utrr
{

/**
 * Everything a per-job heartbeat reports. Only per-job facts live
 * here; the campaign-wide running totals (jobs done, retries,
 * quarantines, failures) are accumulated by the sink itself under its
 * write mutex, keeping them consistent with emission order.
 */
struct JobHeartbeat
{
    std::string module;
    std::uint64_t jobIndex = 0;
    bool ok = false;
    int attempts = 0;
    bool quarantined = false;

    double jobWallMs = 0.0;
    Time jobSimNs = 0;

    /** The job's private registry (counters only are emitted). */
    const MetricsRegistry *metrics = nullptr;
};

/** Current version of the JSONL record schema. */
inline constexpr int kTelemetrySchemaVersion = 1;

/**
 * Thread-safe JSONL writer. Construct with a path (owns the stream) or
 * an external ostream (tests). Each record is one compact JSON line,
 * flushed immediately.
 */
class TelemetrySink
{
  public:
    /**
     * Open (truncate) @p path; good() reports whether that worked.
     * With @p fsync_each_record, every emitted line is additionally
     * fsynced, so telemetry survives a crash as completely as the
     * result journal does (at a per-record I/O cost — reserve it for
     * durable campaigns).
     */
    explicit TelemetrySink(const std::string &path,
                           bool fsync_each_record = false);

    /** Write into a caller-owned stream (kept alive by the caller). */
    explicit TelemetrySink(std::ostream &os);

    TelemetrySink(const TelemetrySink &) = delete;
    TelemetrySink &operator=(const TelemetrySink &) = delete;

    bool good() const;

    /**
     * Emit the campaign_start record, start the ETA clock and zero the
     * running campaign tallies.
     */
    void campaignStart(std::uint64_t jobs_total, int workers,
                       std::uint64_t seed);

    /**
     * Emit the campaign_resume record (right after campaign_start, by
     * a campaign resuming from a write-ahead journal): how many jobs
     * were restored from the journal versus scheduled to run. Seeds
     * the jobs_done tally with the journaled count so heartbeat
     * jobs_done keeps counting toward jobs_total.
     */
    void campaignResume(std::uint64_t journaled,
                        std::uint64_t scheduled);

    /**
     * Emit one heartbeat record (safe from any worker thread). Counts
     * the job into the running tallies under the write mutex, so
     * jobs_done in the emitted stream is strictly monotone.
     */
    void heartbeat(const JobHeartbeat &beat);

    /** Emit the campaign_end record. */
    void campaignEnd(std::uint64_t jobs_total, std::uint64_t failures,
                     std::uint64_t retries, std::uint64_t quarantined,
                     double wall_ms);

    /** Records written so far. */
    std::uint64_t recordsWritten() const;

  private:
    /** Stamp type/seq/wall_ms onto @p record and write one line. */
    void emit(const char *type, Json record);

    double elapsedMs() const;

    mutable std::mutex mutex;
    std::unique_ptr<std::ofstream> owned;
    std::ostream *out = nullptr;
    /** Non-empty => fsync this path after every emitted record. */
    std::string fsyncTarget;
    std::uint64_t seq = 0;
    std::uint64_t totalJobs = 0;
    /** Running campaign tallies, guarded by `mutex` like the stream. */
    std::uint64_t jobsDone = 0;
    std::uint64_t retriesTotal = 0;
    std::uint64_t quarantinedTotal = 0;
    std::uint64_t failuresTotal = 0;
    std::chrono::steady_clock::time_point startWall;
};

} // namespace utrr

#endif // UTRR_OBS_TELEMETRY_HH
