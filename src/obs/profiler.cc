#include "obs/profiler.hh"

#include <algorithm>
#include <cstring>
#include <iomanip>
#include <sstream>

namespace utrr
{

namespace detail
{

ThreadProf::ThreadProf()
{
    nodes.emplace_back(); // node 0: the root (no label, no timings)
}

std::int32_t
ThreadProf::childOf(std::int32_t parent, const char *label)
{
    // Labels are string literals, so pointer equality catches nearly
    // every lookup; strcmp covers the same literal duplicated across
    // translation units.
    for (std::int32_t c = nodes[parent].firstChild; c >= 0;
         c = nodes[c].nextSibling) {
        if (nodes[c].label == label ||
            std::strcmp(nodes[c].label, label) == 0)
            return c;
    }
    const auto idx = static_cast<std::int32_t>(nodes.size());
    ThreadProfNode node;
    node.label = label;
    node.parent = parent;
    node.nextSibling = nodes[parent].firstChild;
    nodes.push_back(node);
    nodes[parent].firstChild = idx;
    return idx;
}

void
ThreadProf::clear()
{
    nodes.clear();
    nodes.emplace_back();
    current = 0;
}

} // namespace detail

// --- ProfileNode / ProfileTree -----------------------------------------

std::uint64_t
ProfileNode::exclusiveWallNs() const
{
    std::uint64_t child_sum = 0;
    for (const ProfileNode &c : children)
        child_sum += c.wallNs;
    return child_sum >= wallNs ? 0 : wallNs - child_sum;
}

Time
ProfileNode::exclusiveSimNs() const
{
    Time child_sum = 0;
    for (const ProfileNode &c : children)
        child_sum += c.simNs;
    return child_sum >= simNs ? 0 : simNs - child_sum;
}

namespace
{

std::uint64_t
sumExclusiveWall(const ProfileNode &node)
{
    std::uint64_t total = node.exclusiveWallNs();
    for (const ProfileNode &c : node.children)
        total += sumExclusiveWall(c);
    return total;
}

void
foldedRec(const ProfileNode &node, std::string &path, bool wall,
          std::ostream &os)
{
    const std::size_t mark = path.size();
    if (!path.empty())
        path += ';';
    path += node.label;

    if (wall) {
        // flamegraph.pl expects integer sample counts; use exclusive
        // microseconds so short spans still show up.
        const std::uint64_t us = node.exclusiveWallNs() / 1000;
        if (us > 0)
            os << path << ' ' << us << '\n';
    } else {
        const Time ns = node.exclusiveSimNs();
        if (ns > 0)
            os << path << ' ' << ns << '\n';
    }

    for (const ProfileNode &c : node.children)
        foldedRec(c, path, wall, os);
    path.resize(mark);
}

Json
nodeToJson(const ProfileNode &node)
{
    Json obj = Json::object();
    obj["label"] = node.label;
    obj["calls"] = node.calls;
    obj["wall_ns"] = node.wallNs;
    obj["sim_ns"] = node.simNs;
    obj["excl_wall_ns"] = node.exclusiveWallNs();
    obj["excl_sim_ns"] = node.exclusiveSimNs();
    Json children = Json::array();
    for (const ProfileNode &c : node.children)
        children.push(nodeToJson(c));
    obj["children"] = std::move(children);
    return obj;
}

void
rankRec(const ProfileNode &node,
        std::vector<ProfileRankEntry> &entries)
{
    if (!node.label.empty()) {
        auto it = std::find_if(entries.begin(), entries.end(),
                               [&](const ProfileRankEntry &e) {
                                   return e.label == node.label;
                               });
        if (it == entries.end()) {
            entries.push_back({node.label, 0, 0, 0});
            it = entries.end() - 1;
        }
        it->calls += node.calls;
        it->exclusiveWallNs += node.exclusiveWallNs();
        it->exclusiveSimNs += node.exclusiveSimNs();
    }
    for (const ProfileNode &c : node.children)
        rankRec(c, entries);
}

} // namespace

std::uint64_t
ProfileTree::totalWallNs() const
{
    std::uint64_t total = 0;
    for (const ProfileNode &c : root.children)
        total += sumExclusiveWall(c);
    return total;
}

void
ProfileTree::foldedWall(std::ostream &os) const
{
    std::string path;
    for (const ProfileNode &c : root.children)
        foldedRec(c, path, /*wall=*/true, os);
}

void
ProfileTree::foldedSim(std::ostream &os) const
{
    std::string path;
    for (const ProfileNode &c : root.children)
        foldedRec(c, path, /*wall=*/false, os);
}

Json
ProfileTree::toJson() const
{
    Json obj = Json::object();
    obj["total_wall_ns"] = totalWallNs();
    Json spans = Json::array();
    for (const ProfileNode &c : root.children)
        spans.push(nodeToJson(c));
    obj["spans"] = std::move(spans);
    return obj;
}

std::vector<ProfileRankEntry>
ProfileTree::ranking() const
{
    std::vector<ProfileRankEntry> entries;
    rankRec(root, entries);
    std::stable_sort(entries.begin(), entries.end(),
                     [](const ProfileRankEntry &a,
                        const ProfileRankEntry &b) {
                         if (a.exclusiveWallNs != b.exclusiveWallNs)
                             return a.exclusiveWallNs > b.exclusiveWallNs;
                         return a.label < b.label;
                     });
    return entries;
}

std::string
ProfileTree::table(std::size_t max_rows) const
{
    const std::vector<ProfileRankEntry> entries = ranking();
    const std::uint64_t total = totalWallNs();

    std::ostringstream os;
    os << "profile: subsystems by exclusive wall time\n";
    os << std::left << std::setw(34) << "  span" << std::right
       << std::setw(12) << "calls" << std::setw(14) << "excl wall ms"
       << std::setw(8) << "share" << std::setw(16) << "excl sim ms"
       << '\n';
    std::size_t rows = 0;
    for (const ProfileRankEntry &e : entries) {
        if (rows >= max_rows)
            break;
        ++rows;
        const double wall_ms =
            static_cast<double>(e.exclusiveWallNs) / 1e6;
        const double sim_ms = static_cast<double>(e.exclusiveSimNs) / 1e6;
        const double share = total == 0
            ? 0.0
            : 100.0 * static_cast<double>(e.exclusiveWallNs) /
                static_cast<double>(total);
        os << "  " << std::left << std::setw(32) << e.label << std::right
           << std::setw(12) << e.calls << std::setw(14) << std::fixed
           << std::setprecision(2) << wall_ms << std::setw(7)
           << std::setprecision(1) << share << '%' << std::setw(16)
           << std::setprecision(2) << sim_ms << '\n';
    }
    if (entries.size() > max_rows)
        os << "  ... " << (entries.size() - max_rows) << " more\n";
    return os.str();
}

namespace
{

/**
 * Lay the aggregate tree out as a flame chart: each node becomes one
 * "X" event whose duration is its inclusive wall time, children placed
 * sequentially from the parent's start. Aggregate times are not a real
 * timeline, but nesting and relative widths are exact.
 */
std::uint64_t
chromeRec(const ProfileNode &node, std::uint64_t start_us, int pid,
          Json &events)
{
    const std::uint64_t dur_us = node.wallNs / 1000;
    Json ev = Json::object();
    ev["name"] = node.label;
    ev["ph"] = "X";
    ev["ts"] = start_us;
    ev["dur"] = dur_us == 0 ? std::uint64_t{1} : dur_us;
    ev["pid"] = pid;
    ev["tid"] = 0;
    Json args = Json::object();
    args["calls"] = node.calls;
    args["sim_ms"] = static_cast<double>(node.simNs) / 1e6;
    ev["args"] = std::move(args);
    events.push(std::move(ev));

    std::uint64_t cursor = start_us;
    for (const ProfileNode &c : node.children)
        cursor += chromeRec(c, cursor, pid, events);
    return dur_us == 0 ? 1 : dur_us;
}

} // namespace

void
ProfileTree::appendChromeEvents(Json &trace_events, int pid) const
{
    Json meta = Json::object();
    meta["name"] = "process_name";
    meta["ph"] = "M";
    meta["pid"] = pid;
    meta["tid"] = 0;
    Json margs = Json::object();
    margs["name"] = "profiler (aggregate wall time)";
    meta["args"] = std::move(margs);
    trace_events.push(std::move(meta));

    std::uint64_t cursor = 0;
    for (const ProfileNode &c : root.children)
        cursor += chromeRec(c, cursor, pid, trace_events);
}

// --- Profiler -----------------------------------------------------------

Profiler &
Profiler::instance()
{
    static Profiler profiler;
    return profiler;
}

detail::ThreadProf &
Profiler::threadState()
{
    // One registration per thread; afterwards the span path touches
    // only thread-local state. The cached pointer stays valid because
    // `threads` owns states by unique_ptr and reset() clears rather
    // than deletes them. The guard's destructor hands the slot back at
    // thread exit, so a process that runs many campaigns (each with
    // fresh worker threads) reuses slots instead of growing `threads`
    // without bound; the slot's recorded data survives the hand-back
    // and keeps merging into collect() until reset().
    struct Registration
    {
        Profiler *owner = nullptr;
        detail::ThreadProf *state = nullptr;

        ~Registration()
        {
            if (owner != nullptr)
                owner->releaseThread(state);
        }
    };
    thread_local Registration reg;
    if (reg.state == nullptr || reg.owner != this) {
        const std::lock_guard<std::mutex> lock(mutex);
        if (freeStates.empty()) {
            auto state = std::make_unique<detail::ThreadProf>();
            reg.state = state.get();
            threads.push_back(std::move(state));
        } else {
            reg.state = freeStates.back();
            freeStates.pop_back();
        }
        reg.owner = this;
    }
    return *reg.state;
}

void
Profiler::releaseThread(detail::ThreadProf *state)
{
    const std::lock_guard<std::mutex> lock(mutex);
    // The exiting thread is past every span (RAII scopes closed before
    // thread_local destruction), so parking the cursor at the root
    // leaves a clean slate for whichever thread reuses the slot.
    state->current = 0;
    freeStates.push_back(state);
}

namespace
{

void
mergeThreadNode(const detail::ThreadProf &prof, std::int32_t idx,
                ProfileNode &into)
{
    const detail::ThreadProfNode &src = prof.nodes[idx];
    auto it = std::find_if(into.children.begin(), into.children.end(),
                           [&](const ProfileNode &n) {
                               return n.label == src.label;
                           });
    if (it == into.children.end()) {
        into.children.emplace_back();
        it = into.children.end() - 1;
        it->label = src.label;
    }
    it->calls += src.calls;
    it->wallNs += src.wallNs;
    it->simNs += src.simNs;
    for (std::int32_t c = prof.nodes[idx].firstChild; c >= 0;
         c = prof.nodes[c].nextSibling)
        mergeThreadNode(prof, c, *it);
}

void
sortTree(ProfileNode &node)
{
    std::sort(node.children.begin(), node.children.end(),
              [](const ProfileNode &a, const ProfileNode &b) {
                  return a.label < b.label;
              });
    for (ProfileNode &c : node.children)
        sortTree(c);
}

} // namespace

ProfileTree
Profiler::collect() const
{
    ProfileTree tree;
    const std::lock_guard<std::mutex> lock(mutex);
    for (const auto &prof : threads) {
        for (std::int32_t c = prof->nodes[0].firstChild; c >= 0;
             c = prof->nodes[c].nextSibling)
            mergeThreadNode(*prof, c, tree.root);
    }
    sortTree(tree.root);
    return tree;
}

void
Profiler::reset()
{
    const std::lock_guard<std::mutex> lock(mutex);
    for (auto &prof : threads)
        prof->clear();
}

std::size_t
Profiler::threadCount() const
{
    const std::lock_guard<std::mutex> lock(mutex);
    return threads.size();
}

// --- ProfSpan -----------------------------------------------------------

void
ProfSpan::open(const char *label, const Time *sim_clock, Anchor anchor)
{
    state = &Profiler::instance().threadState();
    parentAtOpen = state->current;
    const std::int32_t at =
        anchor == kAtRoot ? 0 : parentAtOpen;
    node = state->childOf(at, label);
    state->current = node;
    sim = sim_clock;
    if (sim != nullptr)
        simStart = *sim;
    wallStart = std::chrono::steady_clock::now();
}

void
ProfSpan::close()
{
    const auto wall_end = std::chrono::steady_clock::now();
    // A reset() between open and close invalidates the node index;
    // guard so the span degrades to a no-op instead of writing out of
    // bounds (reset is documented as quiescent-only, this is defensive).
    if (static_cast<std::size_t>(node) < state->nodes.size()) {
        detail::ThreadProfNode &n = state->nodes[node];
        n.calls += 1;
        n.wallNs += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                wall_end - wallStart)
                .count());
        if (sim != nullptr)
            n.simNs += *sim - simStart;
        state->current = parentAtOpen;
    } else {
        state->current = 0;
    }
    state = nullptr;
}

} // namespace utrr
