#include "obs/metrics.hh"

#include <cstdlib>

namespace utrr
{

Counter &
MetricsRegistry::counter(const std::string &name)
{
    return counterMap[name];
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    return gaugeMap[name];
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    return histogramMap[name];
}

const Counter *
MetricsRegistry::findCounter(const std::string &name) const
{
    const auto it = counterMap.find(name);
    return it == counterMap.end() ? nullptr : &it->second;
}

const Gauge *
MetricsRegistry::findGauge(const std::string &name) const
{
    const auto it = gaugeMap.find(name);
    return it == gaugeMap.end() ? nullptr : &it->second;
}

const Histogram *
MetricsRegistry::findHistogram(const std::string &name) const
{
    const auto it = histogramMap.find(name);
    return it == histogramMap.end() ? nullptr : &it->second;
}

void
MetricsRegistry::clear()
{
    counterMap.clear();
    gaugeMap.clear();
    histogramMap.clear();
}

void
MetricsRegistry::merge(const MetricsRegistry &other,
                       const std::string &prefix)
{
    for (const auto &[name, c] : other.counters())
        counter(prefix + name).inc(c.value);
    for (const auto &[name, g] : other.gauges())
        gauge(prefix + name).set(g.value);
    for (const auto &[name, h] : other.histograms())
        histogram(prefix + name).merge(h);
}

Json
MetricsRegistry::toJson() const
{
    Json root = Json::object();
    Json &counters = root["counters"];
    counters = Json::object();
    for (const auto &[name, c] : counterMap)
        counters[name] = Json(c.value);
    Json &gauges = root["gauges"];
    gauges = Json::object();
    for (const auto &[name, g] : gaugeMap)
        gauges[name] = Json(g.value);
    Json &histograms = root["histograms"];
    histograms = Json::object();
    for (const auto &[name, h] : histogramMap) {
        Json bins = Json::object();
        for (const auto &[value, count] : h.bins())
            bins[std::to_string(value)] = Json(count);
        histograms[name] = std::move(bins);
    }
    return root;
}

bool
MetricsRegistry::fromJson(const Json &snapshot, MetricsRegistry &out)
{
    out.clear();
    if (snapshot.type() != Json::Type::kObject)
        return false;
    if (const Json *counters = snapshot.find("counters")) {
        for (const auto &[name, value] : counters->members()) {
            if (value.type() != Json::Type::kNumber)
                return false;
            out.counter(name).value =
                static_cast<std::uint64_t>(value.asInt());
        }
    }
    if (const Json *gauges = snapshot.find("gauges")) {
        for (const auto &[name, value] : gauges->members()) {
            if (value.type() != Json::Type::kNumber)
                return false;
            out.gauge(name).value = value.asNumber();
        }
    }
    if (const Json *histograms = snapshot.find("histograms")) {
        for (const auto &[name, bins] : histograms->members()) {
            if (bins.type() != Json::Type::kObject)
                return false;
            Histogram &h = out.histogram(name);
            for (const auto &[bin, count] : bins.members()) {
                if (count.type() != Json::Type::kNumber)
                    return false;
                char *end = nullptr;
                const long long value =
                    std::strtoll(bin.c_str(), &end, 10);
                if (end != bin.c_str() + bin.size())
                    return false;
                h.add(static_cast<std::int64_t>(value),
                      static_cast<std::uint64_t>(count.asInt()));
            }
        }
    }
    return true;
}

std::uint64_t
GroundTruthProbe::counter(const std::string &name) const
{
    ++store->peeks;
    const Counter *c = store->inner.findCounter(name);
    return c == nullptr ? 0 : c->value;
}

double
GroundTruthProbe::gauge(const std::string &name) const
{
    ++store->peeks;
    const Gauge *g = store->inner.findGauge(name);
    return g == nullptr ? 0.0 : g->value;
}

Json
GroundTruthProbe::snapshot() const
{
    ++store->peeks;
    return store->inner.toJson();
}

} // namespace utrr
