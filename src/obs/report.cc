#include "obs/report.hh"

#include <fstream>

#include "common/logging.hh"

#include "obs/profiler.hh"

namespace utrr
{

ExperimentReport::ExperimentReport(const std::string &name)
{
    root = Json::object();
    root["report"] = Json(name);
    root["config"] = Json::object();
    root["rounds"] = Json::array();
    root["results"] = Json::object();
    root["timing"] = Json::object();
}

void
ExperimentReport::setConfig(const std::string &key, Json value)
{
    root["config"][key] = std::move(value);
}

void
ExperimentReport::setSeed(std::uint64_t seed)
{
    setConfig("seed", Json(seed));
}

void
ExperimentReport::addRound(Json round)
{
    root["rounds"].push(std::move(round));
}

void
ExperimentReport::setResult(const std::string &key, Json value)
{
    root["results"][key] = std::move(value);
}

void
ExperimentReport::setSection(const std::string &name, Json value)
{
    root[name] = std::move(value);
}

void
ExperimentReport::setTiming(double wall_ms, Time sim_ns)
{
    Json &timing = root["timing"];
    timing["wall_ms"] = Json(wall_ms);
    timing["sim_ns"] = Json(static_cast<std::int64_t>(sim_ns));
}

void
ExperimentReport::attachMetrics(const MetricsRegistry &registry)
{
    root["metrics"] = registry.toJson();
}

void
ExperimentReport::attachProfile(const ProfileTree &profile)
{
    Json section = profile.toJson();
    Json ranking = Json::array();
    for (const ProfileRankEntry &e : profile.ranking()) {
        Json row = Json::object();
        row["span"] = e.label;
        row["calls"] = e.calls;
        row["excl_wall_ns"] = e.exclusiveWallNs;
        row["excl_sim_ns"] = static_cast<std::int64_t>(e.exclusiveSimNs);
        ranking.push(std::move(row));
    }
    section["ranking"] = std::move(ranking);
    root["profile"] = std::move(section);
}

namespace
{

/** Keys whose values depend on the host's wall clock or scheduling. */
bool
wallClockKey(const std::string &key)
{
    // "<name>.us" is the ScopedTimer convention (obs/timer.hh): a
    // histogram of wall-clock microseconds. The paired ".calls"
    // counters are deterministic and stay.
    if (key.size() > 3 && key.compare(key.size() - 3, 3, ".us") == 0)
        return true;
    return key == "wall_ms" || key == "job_wall_ms" ||
        key == "eta_ms" || key == "campaign_wall_ms" ||
        key == "campaign.wall_ms";
}

/**
 * Keys whose values depend on host memory management rather than
 * simulated device behaviour: the RowState copy-on-write tallies
 * change when a snapshot pins row containers (a cached-profile
 * campaign COW-copies rows a from-scratch run mutates in place), so
 * they cannot be part of the reuse-vs-scratch equality surface.
 */
bool
memoryArtifactKey(const std::string &key)
{
    for (const char *suffix :
         {".cow_copies", ".cow_shares", ".restore.fast_path",
          ".restore.slow_path"}) {
        const std::size_t len = std::char_traits<char>::length(suffix);
        if (key.size() > len &&
            key.compare(key.size() - len, len, suffix) == 0)
            return true;
    }
    return false;
}

Json
stripWallClock(const Json &value)
{
    switch (value.type()) {
      case Json::Type::kObject: {
        Json out = Json::object();
        for (const auto &[key, member] : value.members()) {
            if (wallClockKey(key) || memoryArtifactKey(key))
                continue;
            out[key] = stripWallClock(member);
        }
        return out;
      }
      case Json::Type::kArray: {
        Json out = Json::array();
        for (std::size_t i = 0; i < value.size(); ++i)
            out.push(stripWallClock(value.at(i)));
        return out;
      }
      default:
        return value;
    }
}

} // namespace

Json
deterministicProjection(const Json &report)
{
    if (report.type() != Json::Type::kObject)
        return stripWallClock(report);
    Json out = Json::object();
    for (const auto &[key, member] : report.members()) {
        // The profile section is wall time through and through.
        if (key == "profile" || wallClockKey(key) ||
            memoryArtifactKey(key))
            continue;
        out[key] = stripWallClock(member);
    }
    return out;
}

bool
ExperimentReport::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        warn(logFmt("cannot write report to ", path));
        return false;
    }
    out << dump() << "\n";
    out.flush();
    if (!out) {
        warn(logFmt("short write while saving report to ", path));
        return false;
    }
    return true;
}

} // namespace utrr
