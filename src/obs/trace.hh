/**
 * @file
 * Command trace: a bounded ring buffer of every DDR command the SoftMC
 * host issues (ACT/PRE/WR/RD/REF/WAIT), stamped with simulated time,
 * plus begin/end phase markers from the experiment harnesses.
 *
 * Disabled by default; when disabled the hot-path cost is one branch.
 * The buffer exports as human-readable text and as Chrome trace_event
 * JSON, so a run opens directly in chrome://tracing or Perfetto: DDR
 * commands appear as duration slices on one track per bank, phases on a
 * dedicated track.
 */

#ifndef UTRR_OBS_TRACE_HH
#define UTRR_OBS_TRACE_HH

#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace utrr
{

struct ProfileTree;

/** What a trace event records. */
enum class TraceKind : std::uint8_t
{
    kAct,
    kPre,
    kWr,
    kRd,
    kRef,
    kWait,
    kPhaseBegin,
    kPhaseEnd,
    kFault,
};

/** Short mnemonic ("ACT", "REF", ...). */
const char *traceKindName(TraceKind kind);

/** One recorded event. */
struct TraceEvent
{
    TraceKind kind = TraceKind::kAct;
    Bank bank = 0;
    Row row = kInvalidRow;
    /** Simulated start time (ns). */
    Time start = 0;
    /** Simulated duration (ns); 0 for instantaneous markers. */
    Time duration = 0;
    /** Phase name for kPhaseBegin/kPhaseEnd (interned), else nullptr. */
    const char *phase = nullptr;
};

/**
 * The ring buffer. Capacity 0 == disabled (the default).
 */
class CommandTrace
{
  public:
    CommandTrace() = default;
    explicit CommandTrace(std::size_t capacity) { enable(capacity); }

    /**
     * Copies re-intern phase names: ring events point into the owning
     * instance's name pool, so a memberwise copy would leave the new
     * ring dangling into the old pool. Moves keep the pool (deque
     * element addresses survive the move), so the defaults are safe.
     * Copy support is what makes a SoftMcHost snapshot self-contained.
     */
    CommandTrace(const CommandTrace &other) { copyFrom(other); }
    CommandTrace &
    operator=(const CommandTrace &other)
    {
        if (this != &other)
            copyFrom(other);
        return *this;
    }
    CommandTrace(CommandTrace &&) = default;
    CommandTrace &operator=(CommandTrace &&) = default;

    /** (Re)enable with the given capacity; clears recorded events. */
    void enable(std::size_t capacity);

    /** Disable and drop all events. */
    void disable();

    /** Hot-path guard: is recording active? */
    bool enabled() const { return cap != 0; }

    /** Record one command (no-op while disabled). */
    void
    record(TraceKind kind, Bank bank, Row row, Time start, Time duration)
    {
        if (cap == 0)
            return;
        TraceEvent &slot = ring[head];
        slot.kind = kind;
        slot.bank = bank;
        slot.row = row;
        slot.start = start;
        slot.duration = duration;
        slot.phase = nullptr;
        advance();
    }

    /** Record a phase marker (names are interned; no-op if disabled). */
    void beginPhase(const std::string &name, Time now);
    void endPhase(const std::string &name, Time now);

    /**
     * Record an injected-fault event ("drop_ref", "vrt_flip", ...) as
     * an instant marker; @p row may be kInvalidRow when the fault is
     * not row-specific.
     */
    void recordFault(const std::string &what, Bank bank, Row row,
                     Time now);

    std::size_t capacity() const { return cap; }

    /** Events currently held (<= capacity). */
    std::size_t size() const { return count; }

    /** Events recorded over the trace's lifetime (incl. overwritten). */
    std::uint64_t recorded() const { return total; }

    /** Events lost to ring wraparound. */
    std::uint64_t dropped() const { return total - count; }

    /** Drop events, keep capacity. */
    void clear();

    /**
     * Append every event currently held by @p other (oldest first),
     * re-interning phase names so the copies outlive @p other. This is
     * the join-time path for parallel campaigns: each worker records
     * into its own ring lock-free, and the merged buffer is assembled
     * single-threaded after the workers are joined. No-op while
     * disabled; the ring's capacity bounds the merged result as usual.
     */
    void mergeFrom(const CommandTrace &other);

    /** Held events, oldest first. */
    std::vector<TraceEvent> events() const;

    /**
     * Order-sensitive FNV-1a hash of every held event (kind, bank, row,
     * start, duration, phase/fault label). Two traces hash equal iff
     * they recorded the same events in the same order, which is the
     * same-seed determinism surface of the fuzzing oracle suite.
     */
    std::uint64_t contentHash() const;

    /** Human-readable listing (one line per event). */
    std::string text() const;

    /**
     * Chrome trace_event JSON ({"traceEvents": [...]}); timestamps are
     * simulated microseconds, commands are "X" slices on a per-bank
     * track, phases are "B"/"E" pairs on track 0. When @p profile is
     * given, the merged span-profiler tree is appended as nested
     * duration events on its own process track (aggregate wall time,
     * not the simulated timeline). When events were lost to ring
     * wraparound, an instant marker carrying the dropped count flags
     * the truncation.
     */
    void exportChromeTrace(std::ostream &os,
                           const ProfileTree *profile = nullptr) const;

  private:
    void
    advance()
    {
        head = (head + 1) % cap;
        if (count < cap)
            ++count;
        else if (!overflowWarned)
            noteOverflow();
        ++total;
    }

    /** Cold path: warn once when the ring starts overwriting events. */
    void noteOverflow();

    const char *intern(const std::string &name);

    /** Copy every field, re-pointing phases into this name pool. */
    void copyFrom(const CommandTrace &other);

    std::vector<TraceEvent> ring;
    std::size_t cap = 0;
    std::size_t head = 0; // next slot to write
    std::size_t count = 0;
    std::uint64_t total = 0;
    bool overflowWarned = false;
    std::deque<std::string> phaseNames;
};

} // namespace utrr

#endif // UTRR_OBS_TRACE_HH
