#include "obs/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace utrr
{

Json
Json::array()
{
    Json value;
    value.kind = Type::kArray;
    return value;
}

Json
Json::object()
{
    Json value;
    value.kind = Type::kObject;
    return value;
}

void
Json::push(Json value)
{
    if (kind == Type::kNull)
        kind = Type::kArray;
    items.push_back(std::move(value));
}

Json &
Json::operator[](const std::string &key)
{
    if (kind == Type::kNull)
        kind = Type::kObject;
    for (auto &[name, value] : fields) {
        if (name == key)
            return value;
    }
    fields.emplace_back(key, Json());
    return fields.back().second;
}

const Json *
Json::find(const std::string &key) const
{
    for (const auto &[name, value] : fields) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

std::string
jsonEscape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size() + 2);
    out.push_back('"');
    for (unsigned char c : raw) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(static_cast<char>(c));
            }
        }
    }
    out.push_back('"');
    return out;
}

namespace
{

void
writeNumber(std::ostream &os, double value)
{
    if (!std::isfinite(value)) {
        // JSON has no Inf/NaN; emit null rather than an invalid token.
        os << "null";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    os << buf;
}

} // namespace

void
Json::writeIndented(std::ostream &os, int indent, int depth) const
{
    const bool pretty = indent >= 0;
    const std::string pad =
        pretty ? std::string(static_cast<std::size_t>(indent) *
                                 static_cast<std::size_t>(depth + 1),
                             ' ')
               : std::string();
    const std::string closePad =
        pretty ? std::string(static_cast<std::size_t>(indent) *
                                 static_cast<std::size_t>(depth),
                             ' ')
               : std::string();
    const char *nl = pretty ? "\n" : "";

    switch (kind) {
      case Type::kNull:
        os << "null";
        break;
      case Type::kBool:
        os << (boolean ? "true" : "false");
        break;
      case Type::kNumber:
        if (isInteger)
            os << integer;
        else
            writeNumber(os, number);
        break;
      case Type::kString:
        os << jsonEscape(text);
        break;
      case Type::kArray: {
        os << '[';
        bool first = true;
        for (const Json &item : items) {
            os << (first ? "" : ",") << nl << pad;
            item.writeIndented(os, indent, depth + 1);
            first = false;
        }
        if (!items.empty())
            os << nl << closePad;
        os << ']';
        break;
      }
      case Type::kObject: {
        os << '{';
        bool first = true;
        for (const auto &[name, value] : fields) {
            os << (first ? "" : ",") << nl << pad;
            os << jsonEscape(name) << (pretty ? ": " : ":");
            value.writeIndented(os, indent, depth + 1);
            first = false;
        }
        if (!fields.empty())
            os << nl << closePad;
        os << '}';
        break;
      }
    }
}

void
Json::write(std::ostream &os, int indent) const
{
    writeIndented(os, indent, 0);
}

std::string
Json::dump(int indent) const
{
    std::ostringstream oss;
    write(oss, indent);
    return oss.str();
}

// --- parser ------------------------------------------------------------

namespace
{

/** Recursive-descent JSON parser over an in-memory string. */
class Parser
{
  public:
    explicit Parser(const std::string &source) : src(source) {}

    std::optional<Json>
    document()
    {
        auto value = parseValue();
        if (!value)
            return std::nullopt;
        skipSpace();
        if (pos != src.size())
            return std::nullopt; // trailing garbage
        return value;
    }

  private:
    void
    skipSpace()
    {
        while (pos < src.size() &&
               std::isspace(static_cast<unsigned char>(src[pos]))) {
            ++pos;
        }
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos < src.size() && src[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::char_traits<char>::length(word);
        if (src.compare(pos, n, word) != 0)
            return false;
        pos += n;
        return true;
    }

    std::optional<std::string>
    parseString()
    {
        if (!consume('"'))
            return std::nullopt;
        std::string out;
        while (pos < src.size()) {
            const char c = src[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos >= src.size())
                return std::nullopt;
            const char esc = src[pos++];
            switch (esc) {
              case '"':
                out.push_back('"');
                break;
              case '\\':
                out.push_back('\\');
                break;
              case '/':
                out.push_back('/');
                break;
              case 'b':
                out.push_back('\b');
                break;
              case 'f':
                out.push_back('\f');
                break;
              case 'n':
                out.push_back('\n');
                break;
              case 'r':
                out.push_back('\r');
                break;
              case 't':
                out.push_back('\t');
                break;
              case 'u': {
                if (pos + 4 > src.size())
                    return std::nullopt;
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = src[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return std::nullopt;
                }
                // UTF-8 encode (no surrogate-pair recombination; the
                // writer never emits escapes above U+001F).
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(
                        static_cast<char>(0xC0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(
                        static_cast<char>(0xE0 | (code >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
              }
              default:
                return std::nullopt;
            }
        }
        return std::nullopt; // unterminated
    }

    std::optional<Json>
    parseNumber()
    {
        const std::size_t start = pos;
        if (pos < src.size() && src[pos] == '-')
            ++pos;
        bool isInt = true;
        while (pos < src.size()) {
            const char c = src[pos];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                isInt = false;
                ++pos;
            } else {
                break;
            }
        }
        if (pos == start)
            return std::nullopt;
        const std::string token = src.substr(start, pos - start);
        errno = 0;
        char *end = nullptr;
        if (isInt) {
            const long long value =
                std::strtoll(token.c_str(), &end, 10);
            if (errno == 0 && end == token.c_str() + token.size())
                return Json(static_cast<std::int64_t>(value));
            // fall through to double on overflow
        }
        errno = 0;
        const double value = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            return std::nullopt;
        return Json(value);
    }

    std::optional<Json>
    parseValue()
    {
        skipSpace();
        if (pos >= src.size())
            return std::nullopt;
        const char c = src[pos];
        if (c == '{') {
            ++pos;
            Json obj = Json::object();
            skipSpace();
            if (consume('}'))
                return obj;
            while (true) {
                skipSpace();
                auto key = parseString();
                if (!key || !consume(':'))
                    return std::nullopt;
                auto value = parseValue();
                if (!value)
                    return std::nullopt;
                obj[*key] = std::move(*value);
                if (consume(','))
                    continue;
                if (consume('}'))
                    return obj;
                return std::nullopt;
            }
        }
        if (c == '[') {
            ++pos;
            Json arr = Json::array();
            skipSpace();
            if (consume(']'))
                return arr;
            while (true) {
                auto value = parseValue();
                if (!value)
                    return std::nullopt;
                arr.push(std::move(*value));
                if (consume(','))
                    continue;
                if (consume(']'))
                    return arr;
                return std::nullopt;
            }
        }
        if (c == '"') {
            auto text = parseString();
            if (!text)
                return std::nullopt;
            return Json(std::move(*text));
        }
        if (literal("true"))
            return Json(true);
        if (literal("false"))
            return Json(false);
        if (literal("null"))
            return Json();
        return parseNumber();
    }

    const std::string &src;
    std::size_t pos = 0;
};

} // namespace

std::optional<Json>
Json::parse(const std::string &source)
{
    return Parser(source).document();
}

} // namespace utrr
