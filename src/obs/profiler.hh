/**
 * @file
 * Hierarchical span profiler: RAII scopes nest into a call tree keyed
 * by *static* labels, each node recording wall time, simulated DRAM
 * time and invocation counts.
 *
 * Design constraints (DESIGN.md §13):
 *
 *  - **Near-zero disabled cost.** Profiling is off by default; a
 *    ProfSpan constructed while disabled is one relaxed atomic load and
 *    nothing else. The hot paths (hammer loops, refresh sweeps) are
 *    instrumented unconditionally and pay only that branch.
 *
 *  - **Thread-local recording, merge at join.** Every thread records
 *    into its own call tree with no synchronization on the span path;
 *    Profiler::collect() merges the per-thread trees single-threaded.
 *    The campaign runner's determinism contract is untouched: spans
 *    never feed back into simulation state, and the *simulated*-time
 *    and call-count fields of the merged tree are bit-identical for any
 *    worker count (wall time is the only schedule-dependent field).
 *
 *  - **Dual clocks.** A span measures wall time always and simulated
 *    DRAM time when given a pointer to a simulated clock (e.g.
 *    SoftMcHost's); sim attribution is what tells "the campaign spends
 *    its simulated hours in retention waits" apart from "the process
 *    spends its wall seconds in readout diffing".
 *
 * Exporters: folded stacks for flamegraph.pl, nested duration events
 * merged into the Chrome trace (see CommandTrace::exportChromeTrace),
 * a JSON tree for ExperimentReport::attachProfile, and a ranking table
 * of subsystems by exclusive wall time.
 */

#ifndef UTRR_OBS_PROFILER_HH
#define UTRR_OBS_PROFILER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/json.hh"

namespace utrr
{

namespace detail
{

/** One node of a thread-private call tree (first-child/next-sibling). */
struct ThreadProfNode
{
    const char *label = nullptr;
    std::int32_t parent = -1;
    std::int32_t firstChild = -1;
    std::int32_t nextSibling = -1;
    std::uint64_t calls = 0;
    /** Inclusive wall nanoseconds. */
    std::uint64_t wallNs = 0;
    /** Inclusive simulated nanoseconds (0 when no sim clock given). */
    Time simNs = 0;
};

/** Per-thread recording state. Only its owning thread writes it. */
struct ThreadProf
{
    std::vector<ThreadProfNode> nodes;
    std::int32_t current = 0;

    ThreadProf();

    /** Find-or-create the child of @p parent labelled @p label. */
    std::int32_t childOf(std::int32_t parent, const char *label);

    /** Drop all recorded spans (keep the root; see Profiler::reset). */
    void clear();
};

} // namespace detail

/** Aggregated profile node after the per-thread trees are merged. */
struct ProfileNode
{
    std::string label;
    std::uint64_t calls = 0;
    /** Inclusive wall nanoseconds (schedule-dependent). */
    std::uint64_t wallNs = 0;
    /** Inclusive simulated nanoseconds (deterministic). */
    Time simNs = 0;
    /** Children sorted by label (deterministic order). */
    std::vector<ProfileNode> children;

    /** Inclusive minus children-inclusive (clamped at zero). */
    std::uint64_t exclusiveWallNs() const;
    Time exclusiveSimNs() const;
};

/** One row of the subsystem ranking (labels aggregated across paths). */
struct ProfileRankEntry
{
    std::string label;
    std::uint64_t calls = 0;
    std::uint64_t exclusiveWallNs = 0;
    Time exclusiveSimNs = 0;
};

/**
 * Merged result of Profiler::collect(). The root node carries no
 * measurements of its own; its children are the top-level spans.
 */
struct ProfileTree
{
    ProfileNode root;

    bool empty() const { return root.children.empty(); }

    /** Sum of every node's exclusive wall time (total measured). */
    std::uint64_t totalWallNs() const;

    /**
     * flamegraph.pl folded-stack output: one "a;b;c value" line per
     * node with a non-zero exclusive value. Wall values are integer
     * microseconds; sim values are integer nanoseconds (deterministic,
     * used by the merge-determinism tests).
     */
    void foldedWall(std::ostream &os) const;
    void foldedSim(std::ostream &os) const;

    /** Nested {label, calls, wall_ns, sim_ns, children} document. */
    Json toJson() const;

    /**
     * Labels aggregated across all tree paths, ranked by exclusive
     * wall time (descending).
     */
    std::vector<ProfileRankEntry> ranking() const;

    /**
     * Human-readable ranking table ("what do we optimize next"):
     * subsystem, calls, exclusive wall ms, share of measured wall,
     * exclusive simulated ms.
     */
    std::string table(std::size_t max_rows = 24) const;

    /**
     * Append the tree as synthetic nested "X" duration events laid out
     * as a flame chart (children sequential inside their parent) on a
     * dedicated process track. Timestamps are cumulative *wall*
     * microseconds, not simulated time — the track is labelled
     * accordingly via a process_name metadata event.
     */
    void appendChromeEvents(Json &trace_events, int pid = 1) const;
};

/**
 * The process-wide profiler. Spans record through thread-local state;
 * this singleton owns every thread's tree and merges them on demand.
 */
class Profiler
{
  public:
    static Profiler &instance();

    /** Hot-path guard: is span recording active? */
    static bool profilingEnabled()
    {
        return enabledFlag.load(std::memory_order_relaxed);
    }

    /** Globally enable/disable span recording. */
    static void setEnabled(bool on)
    {
        enabledFlag.store(on, std::memory_order_relaxed);
    }

    /**
     * Merge every thread's tree into one ProfileTree (children sorted
     * by label). Quiescent-only, like reset(): every recording thread
     * must have joined (or be provably between spans for the duration
     * of the call) — the merge reads per-thread node vectors with no
     * synchronization, so a concurrent span opening on another thread
     * is a data race. A span still open on the *calling* thread is
     * fine; it contributes its completed children only.
     */
    ProfileTree collect() const;

    /**
     * Drop all recorded spans on every registered thread. Only call
     * while no span is open anywhere (between experiments / at
     * campaign start); a live span across reset() is discarded.
     */
    void reset();

    /**
     * Registered recording slots: threads currently recording plus
     * exited threads' slots awaiting reuse. Bounded by the peak
     * concurrent thread count, not the number of threads ever spawned.
     */
    std::size_t threadCount() const;

  private:
    friend class ProfSpan;

    Profiler() = default;

    /** The calling thread's recording state (registered on demand). */
    detail::ThreadProf &threadState();

    /**
     * Return a slot to the free list at thread exit. Recorded data is
     * kept (collect() after join still sees it); only the slot itself
     * becomes reusable by the next registering thread.
     */
    void releaseThread(detail::ThreadProf *state);

    inline static std::atomic<bool> enabledFlag{false};

    mutable std::mutex mutex;
    std::vector<std::unique_ptr<detail::ThreadProf>> threads;
    std::vector<detail::ThreadProf *> freeStates;
};

/**
 * RAII span. Construct with a static (string-literal) label; the label
 * pointer may be stored for the profiler's lifetime. Pass the host's
 * simulated clock to attribute simulated time as well as wall time.
 *
 * kAtRoot anchors the span at the thread's tree root instead of the
 * current span — the campaign runner uses it for per-job spans so the
 * merged tree has identical paths whether a job ran inline (jobs=1,
 * inside the caller's spans) or on a worker thread.
 */
class ProfSpan
{
  public:
    enum Anchor
    {
        kNested,
        kAtRoot,
    };

    explicit ProfSpan(const char *label, const Time *sim_clock = nullptr,
                      Anchor anchor = kNested)
    {
        if (Profiler::profilingEnabled())
            open(label, sim_clock, anchor);
    }

    ProfSpan(const ProfSpan &) = delete;
    ProfSpan &operator=(const ProfSpan &) = delete;

    ~ProfSpan()
    {
        if (state != nullptr)
            close();
    }

  private:
    void open(const char *label, const Time *sim_clock, Anchor anchor);
    void close();

    detail::ThreadProf *state = nullptr;
    std::int32_t node = 0;
    std::int32_t parentAtOpen = 0;
    const Time *sim = nullptr;
    Time simStart = 0;
    std::chrono::steady_clock::time_point wallStart;
};

/** Convenience macros for the common wall-only / wall+sim spans. */
#define UTRR_PROF_CAT2(a, b) a##b
#define UTRR_PROF_CAT(a, b) UTRR_PROF_CAT2(a, b)
#define UTRR_PROF_SCOPE(label)                                              \
    ::utrr::ProfSpan UTRR_PROF_CAT(utrr_prof_span_, __LINE__)(label)
#define UTRR_PROF_SCOPE_SIM(label, sim_clock_ptr)                           \
    ::utrr::ProfSpan UTRR_PROF_CAT(utrr_prof_span_, __LINE__)(              \
        label, sim_clock_ptr)

} // namespace utrr

#endif // UTRR_OBS_PROFILER_HH
