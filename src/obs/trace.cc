#include "obs/trace.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "common/rng.hh"
#include "obs/json.hh"
#include "obs/profiler.hh"

namespace utrr
{

const char *
traceKindName(TraceKind kind)
{
    switch (kind) {
      case TraceKind::kAct:
        return "ACT";
      case TraceKind::kPre:
        return "PRE";
      case TraceKind::kWr:
        return "WR";
      case TraceKind::kRd:
        return "RD";
      case TraceKind::kRef:
        return "REF";
      case TraceKind::kWait:
        return "WAIT";
      case TraceKind::kPhaseBegin:
        return "PHASE_BEGIN";
      case TraceKind::kPhaseEnd:
        return "PHASE_END";
      case TraceKind::kFault:
        return "FAULT";
    }
    return "?";
}

void
CommandTrace::enable(std::size_t capacity)
{
    cap = capacity;
    ring.assign(cap, TraceEvent{});
    head = 0;
    count = 0;
    total = 0;
    overflowWarned = false;
}

void
CommandTrace::disable()
{
    cap = 0;
    ring.clear();
    ring.shrink_to_fit();
    head = 0;
    count = 0;
    total = 0;
    overflowWarned = false;
}

void
CommandTrace::clear()
{
    head = 0;
    count = 0;
    total = 0;
    overflowWarned = false;
}

void
CommandTrace::noteOverflow()
{
    // Out of line so the record() fast path stays small; fires exactly
    // once per enable()/clear(). The final dropped count is published
    // as the trace.dropped_events counter when metrics are captured.
    overflowWarned = true;
    warn(logFmt("command trace ring full (capacity ", cap,
                "): oldest events are being overwritten; raise the "
                "trace capacity for a complete Chrome trace"));
}

void
CommandTrace::copyFrom(const CommandTrace &other)
{
    ring = other.ring;
    cap = other.cap;
    head = other.head;
    count = other.count;
    total = other.total;
    overflowWarned = other.overflowWarned;
    phaseNames = other.phaseNames;
    // Re-point every interned phase at this instance's name pool. The
    // pools are element-wise identical after the deque copy, so a
    // linear scan per distinct name is exact (and the name count is
    // tiny — phases come from a handful of harness call sites).
    if (phaseNames.empty())
        return;
    for (TraceEvent &event : ring) {
        if (event.phase != nullptr)
            event.phase = intern(event.phase);
    }
}

void
CommandTrace::mergeFrom(const CommandTrace &other)
{
    if (cap == 0)
        return;
    for (const TraceEvent &event : other.events()) {
        TraceEvent &slot = ring[head];
        slot = event;
        if (event.phase != nullptr)
            slot.phase = intern(event.phase);
        advance();
    }
}

const char *
CommandTrace::intern(const std::string &name)
{
    for (const std::string &known : phaseNames) {
        if (known == name)
            return known.c_str();
    }
    phaseNames.push_back(name);
    return phaseNames.back().c_str();
}

void
CommandTrace::beginPhase(const std::string &name, Time now)
{
    if (cap == 0)
        return;
    TraceEvent &slot = ring[head];
    slot = TraceEvent{TraceKind::kPhaseBegin, 0, kInvalidRow, now, 0,
                      intern(name)};
    advance();
}

void
CommandTrace::endPhase(const std::string &name, Time now)
{
    if (cap == 0)
        return;
    TraceEvent &slot = ring[head];
    slot = TraceEvent{TraceKind::kPhaseEnd, 0, kInvalidRow, now, 0,
                      intern(name)};
    advance();
}

void
CommandTrace::recordFault(const std::string &what, Bank bank, Row row,
                          Time now)
{
    if (cap == 0)
        return;
    TraceEvent &slot = ring[head];
    slot = TraceEvent{TraceKind::kFault, bank, row, now, 0, intern(what)};
    advance();
}

std::vector<TraceEvent>
CommandTrace::events() const
{
    std::vector<TraceEvent> out;
    out.reserve(count);
    // Oldest event sits at `head` once the ring has wrapped, else at 0.
    const std::size_t first = count == cap ? head : 0;
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(ring[(first + i) % cap]);
    return out;
}

std::uint64_t
CommandTrace::contentHash() const
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    const auto mix = [&hash](std::uint64_t value) {
        for (int byte = 0; byte < 8; ++byte) {
            hash ^= (value >> (byte * 8)) & 0xff;
            hash *= 0x100000001b3ULL;
        }
    };
    const std::size_t first = count == cap && cap != 0 ? head : 0;
    for (std::size_t i = 0; i < count; ++i) {
        const TraceEvent &event = ring[(first + i) % cap];
        mix(static_cast<std::uint64_t>(event.kind));
        mix(static_cast<std::uint64_t>(event.bank));
        mix(static_cast<std::uint64_t>(event.row));
        mix(static_cast<std::uint64_t>(event.start));
        mix(static_cast<std::uint64_t>(event.duration));
        if (event.phase != nullptr)
            mix(hashString(event.phase));
    }
    return hash;
}

std::string
CommandTrace::text() const
{
    std::ostringstream oss;
    for (const TraceEvent &event : events()) {
        oss << event.start << "ns " << traceKindName(event.kind);
        if (event.phase != nullptr)
            oss << " " << event.phase;
        if (event.phase == nullptr || event.kind == TraceKind::kFault) {
            oss << " bank=" << event.bank;
            if (event.row != kInvalidRow)
                oss << " row=" << event.row;
            if (event.duration > 0)
                oss << " dur=" << event.duration << "ns";
        }
        oss << "\n";
    }
    return oss.str();
}

void
CommandTrace::exportChromeTrace(std::ostream &os,
                                const ProfileTree *profile) const
{
    std::vector<TraceEvent> ordered = events();
    // The simulated clock is monotonic, but mitigation-penalty
    // accounting can record a batch at a rolled-back clock; viewers
    // require non-decreasing timestamps, so order stably by start.
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.start < b.start;
                     });

    Json root = Json::object();
    root["displayTimeUnit"] = Json("ns");
    Json &traceEvents = root["traceEvents"];
    traceEvents = Json::array();
    for (const TraceEvent &event : ordered) {
        Json entry = Json::object();
        const bool is_phase = event.kind == TraceKind::kPhaseBegin ||
                              event.kind == TraceKind::kPhaseEnd;
        const bool is_fault = event.kind == TraceKind::kFault;
        entry["name"] = Json(event.phase != nullptr
                                 ? event.phase
                                 : traceKindName(event.kind));
        if (is_phase)
            entry["ph"] = Json(event.kind == TraceKind::kPhaseBegin
                                   ? "B"
                                   : "E");
        else if (is_fault)
            entry["ph"] = Json("i"); // instant marker
        else
            entry["ph"] = Json("X");
        if (is_fault)
            entry["s"] = Json("g"); // global-scope instant
        // trace_event timestamps are microseconds; keep sub-ns detail.
        entry["ts"] = Json(static_cast<double>(event.start) / 1e3);
        if (!is_phase && !is_fault)
            entry["dur"] =
                Json(static_cast<double>(event.duration) / 1e3);
        entry["pid"] = Json(0);
        // One track per bank for commands; phases on track 0 share the
        // timeline header.
        entry["tid"] = Json(is_phase ? 0 : event.bank + 1);
        if (!is_phase && event.row != kInvalidRow) {
            Json args = Json::object();
            args["row"] = Json(static_cast<std::int64_t>(event.row));
            entry["args"] = std::move(args);
        }
        traceEvents.push(std::move(entry));
    }
    if (dropped() > 0) {
        // Make the truncation visible inside the viewer, not just on
        // stderr: an instant marker at the (new) start of the trace.
        Json lost = Json::object();
        lost["name"] = Json("trace ring overflow");
        lost["ph"] = Json("i");
        lost["s"] = Json("g");
        lost["ts"] = Json(ordered.empty()
                              ? 0.0
                              : static_cast<double>(ordered.front().start)
                                  / 1e3);
        lost["pid"] = Json(0);
        lost["tid"] = Json(0);
        Json args = Json::object();
        args["dropped_events"] = Json(dropped());
        lost["args"] = std::move(args);
        traceEvents.push(std::move(lost));
    }
    if (profile != nullptr && !profile->empty())
        profile->appendChromeEvents(traceEvents, /*pid=*/1);
    root.write(os, 1);
    os << "\n";
}

} // namespace utrr
