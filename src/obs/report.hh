/**
 * @file
 * Structured experiment reports: a conventional JSON shape shared by
 * the TRR Analyzer, Row Scout and the bench harnesses so every run
 * leaves a machine-readable artifact (config + RNG seed + per-round
 * data + results + wall/sim time + a metrics snapshot).
 *
 * Shape:
 *   {
 *     "report": "<name>",
 *     "config":  { ... },            // experiment configuration
 *     "rounds":  [ {...}, ... ],     // per-round vectors (optional)
 *     "results": { ... },            // outcome summary
 *     "timing":  { "wall_ms": w, "sim_ns": s },
 *     "metrics": { counters/gauges/histograms }   // optional snapshot
 *   }
 */

#ifndef UTRR_OBS_REPORT_HH
#define UTRR_OBS_REPORT_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"

namespace utrr
{

struct ProfileTree;

/**
 * Builder for one experiment report.
 */
class ExperimentReport
{
  public:
    explicit ExperimentReport(const std::string &name);

    /** Record a configuration key (any Json-convertible scalar). */
    void setConfig(const std::string &key, Json value);

    /** Record the master RNG seed of the run (config section). */
    void setSeed(std::uint64_t seed);

    /** Append one per-round record. */
    void addRound(Json round);

    /** Record a result key. */
    void setResult(const std::string &key, Json value);

    /**
     * Install a whole named top-level section (e.g. the synthesizer's
     * "bypass_table"). Section content survives deterministicProjection
     * except for the usual wall-clock keys, so sections must hold only
     * campaign-input-determined data if byte-equality matters.
     */
    void setSection(const std::string &name, Json value);

    /** Record wall-clock and simulated duration. */
    void setTiming(double wall_ms, Time sim_ns);

    /** Attach a metrics snapshot. */
    void attachMetrics(const MetricsRegistry &registry);

    /**
     * Attach the span-profiler self-report: the full tree plus the
     * per-subsystem ranking by exclusive wall time ("profile" section).
     */
    void attachProfile(const ProfileTree &profile);

    /** Direct access for nested structures. */
    Json &config() { return root["config"]; }
    Json &results() { return root["results"]; }

    const Json &json() const { return root; }

    /** Serialize (pretty-printed). */
    std::string dump() const { return root.dump(1); }

    /**
     * Write to a file. Returns false (after warning) when the file
     * cannot be opened or the write fails — callers that persist
     * results must check and propagate the failure.
     */
    [[nodiscard]] bool writeFile(const std::string &path) const;

  private:
    Json root;
};

/**
 * The deterministic projection of a report: a deep copy with every
 * wall-clock-dependent key removed — timing.wall_ms, per-round
 * wall_ms, the "campaign.wall_ms" gauge, every "<name>.us"
 * ScopedTimer histogram (obs/timer.hh), and the whole profile
 * section (span wall times) — along with the host memory-management
 * tallies (RowState COW copy/share and restore-path counters), which
 * shift when a snapshot pins row containers and would otherwise
 * separate a cached-profile campaign from an identically-behaving
 * from-scratch one. What remains is a pure function of the
 * campaign inputs, so an interrupted-then-resumed campaign must
 * reproduce it byte-for-byte (DESIGN.md §14); the crash-recovery
 * tests and scripts/report_diff.py compare dump()s of this value.
 */
Json deterministicProjection(const Json &report);

} // namespace utrr

#endif // UTRR_OBS_REPORT_HH
