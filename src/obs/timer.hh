/**
 * @file
 * RAII instrumentation helpers for the experiment harnesses:
 *
 *  - ScopedTimer measures wall-clock time of a scope and records it
 *    into a MetricsRegistry histogram ("<name>.us") plus a call counter
 *    ("<name>.calls");
 *  - SimPhase brackets a scope with begin/end phase markers in a
 *    CommandTrace, stamped with *simulated* time supplied by a clock
 *    callback (the host's now()).
 *
 * Both are null-safe: constructed with a null registry/trace they cost
 * one branch and do nothing, so call sites need no conditionals.
 */

#ifndef UTRR_OBS_TIMER_HH
#define UTRR_OBS_TIMER_HH

#include <chrono>
#include <functional>
#include <string>
#include <utility>

#include "common/types.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace utrr
{

/** Wall-clock scope timer feeding a metrics registry. */
class ScopedTimer
{
  public:
    ScopedTimer(MetricsRegistry *registry, std::string name)
        : registry(registry), name(std::move(name)),
          begin(std::chrono::steady_clock::now())
    {
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    /** Microseconds elapsed since construction. */
    double
    elapsedUs() const
    {
        const auto delta = std::chrono::steady_clock::now() - begin;
        return std::chrono::duration<double, std::micro>(delta).count();
    }

    /** Record now instead of at destruction (idempotent). */
    void
    stop()
    {
        if (registry == nullptr || stopped)
            return;
        stopped = true;
        registry->histogram(name + ".us")
            .add(static_cast<std::int64_t>(elapsedUs()));
        registry->counter(name + ".calls").inc();
    }

    ~ScopedTimer() { stop(); }

  private:
    MetricsRegistry *registry;
    std::string name;
    std::chrono::steady_clock::time_point begin;
    bool stopped = false;
};

/** Simulated-time phase bracket in a command trace. */
class SimPhase
{
  public:
    SimPhase(CommandTrace *trace, std::string name,
             std::function<Time()> sim_now)
        : trace(trace), name(std::move(name)), simNow(std::move(sim_now))
    {
        if (trace != nullptr && trace->enabled())
            trace->beginPhase(this->name, simNow());
    }

    SimPhase(const SimPhase &) = delete;
    SimPhase &operator=(const SimPhase &) = delete;

    ~SimPhase()
    {
        if (trace != nullptr && trace->enabled())
            trace->endPhase(name, simNow());
    }

  private:
    CommandTrace *trace;
    std::string name;
    std::function<Time()> simNow;
};

} // namespace utrr

#endif // UTRR_OBS_TIMER_HH
