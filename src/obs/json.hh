/**
 * @file
 * Minimal JSON document model, writer and parser.
 *
 * The observability layer emits machine-readable artifacts (Chrome
 * trace_event files, metric snapshots, experiment reports) and the test
 * suite must round-trip them, so we carry a tiny dependency-free JSON
 * implementation instead of gating the feature on an external library.
 * Object keys preserve insertion order so emitted reports read in the
 * order they were built.
 */

#ifndef UTRR_OBS_JSON_HH
#define UTRR_OBS_JSON_HH

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace utrr
{

/**
 * One JSON value (null, bool, number, string, array or object).
 */
class Json
{
  public:
    enum class Type
    {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject,
    };

    Json() = default;
    Json(bool value) : kind(Type::kBool), boolean(value) {}
    Json(double value) : kind(Type::kNumber), number(value) {}
    Json(std::int64_t value)
        : kind(Type::kNumber), number(static_cast<double>(value)),
          integer(value), isInteger(true)
    {
    }
    Json(std::uint64_t value)
        : Json(static_cast<std::int64_t>(value))
    {
    }
    Json(int value) : Json(static_cast<std::int64_t>(value)) {}
    Json(const char *value) : kind(Type::kString), text(value) {}
    Json(std::string value) : kind(Type::kString), text(std::move(value))
    {
    }

    /** Empty array / object factories. */
    static Json array();
    static Json object();

    Type type() const { return kind; }
    bool isNull() const { return kind == Type::kNull; }

    // --- scalar accessors (0/false/"" on type mismatch) ---------------

    bool asBool() const { return kind == Type::kBool && boolean; }
    double asNumber() const
    {
        return kind == Type::kNumber ? number : 0.0;
    }
    std::int64_t asInt() const
    {
        if (kind != Type::kNumber)
            return 0;
        return isInteger ? integer : static_cast<std::int64_t>(number);
    }
    const std::string &asString() const { return text; }

    // --- array operations ----------------------------------------------

    /** Append to an array (converts a null value into an array). */
    void push(Json value);

    std::size_t size() const { return items.size(); }
    const Json &at(std::size_t index) const { return items[index]; }

    // --- object operations ---------------------------------------------

    /**
     * Find-or-insert a member (converts a null value into an object).
     */
    Json &operator[](const std::string &key);

    /** Member lookup; nullptr when absent or not an object. */
    const Json *find(const std::string &key) const;

    /** Object members in insertion order. */
    const std::vector<std::pair<std::string, Json>> &members() const
    {
        return fields;
    }

    // --- serialization ------------------------------------------------

    /** Serialize; indent < 0 means compact single-line output. */
    std::string dump(int indent = -1) const;
    void write(std::ostream &os, int indent = -1) const;

    /** Parse a JSON document; nullopt on any syntax error. */
    static std::optional<Json> parse(const std::string &source);

  private:
    void writeIndented(std::ostream &os, int indent, int depth) const;

    Type kind = Type::kNull;
    bool boolean = false;
    double number = 0.0;
    std::int64_t integer = 0;
    bool isInteger = false;
    std::string text;
    std::vector<Json> items;
    std::vector<std::pair<std::string, Json>> fields;
};

/** Escape a string into its JSON representation (including quotes). */
std::string jsonEscape(const std::string &raw);

} // namespace utrr

#endif // UTRR_OBS_JSON_HH
