/**
 * @file
 * Metrics registry: named counters, gauges and histograms populated by
 * the simulator substrate (DRAM module, refresh engine, TRR models) and
 * by the experiment harnesses.
 *
 * Two access regimes:
 *
 *  - MetricsRegistry — metrics a real memory controller could observe
 *    (command counts, read-back flips, wall time). Handles returned by
 *    the registry are stable for its lifetime, so hot paths resolve a
 *    name once and increment through the pointer.
 *
 *  - GroundTruthStore — chip-internal truth (TRR detections, counter
 *    table / sampler occupancy, TRR-induced victim refreshes) that
 *    U-TRR must *infer* rather than read. Reading it is only possible
 *    through a GroundTruthProbe, and every probe read is counted, so a
 *    black-box experiment can prove after the fact that it never peeked
 *    (peekCount() == 0) while validation tests may compare inference
 *    against truth openly.
 */

#ifndef UTRR_OBS_METRICS_HH
#define UTRR_OBS_METRICS_HH

#include <cstdint>
#include <map>
#include <string>

#include "common/stats.hh"
#include "obs/json.hh"

namespace utrr
{

/** Monotonically increasing event count. */
struct Counter
{
    std::uint64_t value = 0;

    void inc(std::uint64_t n = 1) { value += n; }
};

/** Last-write-wins instantaneous value. */
struct Gauge
{
    double value = 0.0;

    void set(double v) { value = v; }
};

/**
 * Named metric store. Names are free-form; the convention is
 * dotted paths ("dram.acts.bank0", "row_scout.validate.us").
 */
class MetricsRegistry
{
  public:
    /** Find-or-create. Returned references stay valid until clear(). */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Lookup without creating; nullptr when absent. */
    const Counter *findCounter(const std::string &name) const;
    const Gauge *findGauge(const std::string &name) const;
    const Histogram *findHistogram(const std::string &name) const;

    const std::map<std::string, Counter> &counters() const
    {
        return counterMap;
    }
    const std::map<std::string, Gauge> &gauges() const
    {
        return gaugeMap;
    }
    const std::map<std::string, Histogram> &histograms() const
    {
        return histogramMap;
    }

    /** Drop every metric (invalidates all handles). */
    void clear();

    /**
     * Fold @p other into this registry, prepending @p prefix to every
     * name: counters add, gauges last-write-wins, histograms merge
     * bin-wise. With per-source prefixes (e.g. "module.A5.") the result
     * is independent of merge order, which is how a parallel campaign
     * combines per-worker registries at join time — each worker writes
     * its own registry lock-free and the single-threaded merge happens
     * after the threads are joined.
     */
    void merge(const MetricsRegistry &other,
               const std::string &prefix = "");

    /**
     * Snapshot as {"counters": {...}, "gauges": {...},
     * "histograms": {name: {value: count, ...}}}.
     */
    Json toJson() const;

    /**
     * Rebuild a registry from a toJson() snapshot. The inverse is
     * exact — counters and histogram bins are integers, gauges are
     * doubles printed with round-trip precision — so a registry that
     * goes through the result journal merges bit-identically to one
     * that never left memory. Returns false on a malformed snapshot
     * (@p out is left cleared).
     */
    static bool fromJson(const Json &snapshot, MetricsRegistry &out);

  private:
    std::map<std::string, Counter> counterMap;
    std::map<std::string, Gauge> gaugeMap;
    std::map<std::string, Histogram> histogramMap;
};

class GroundTruthProbe;

/**
 * Chip-internal metric store. The chip writes through the handles;
 * reading requires a GroundTruthProbe (each read is tallied).
 */
class GroundTruthStore
{
  public:
    /** Write handles for the chip-side instrumentation. */
    Counter &counter(const std::string &name)
    {
        return inner.counter(name);
    }
    Gauge &gauge(const std::string &name) { return inner.gauge(name); }

    /** Probe reads performed so far (0 == provably black-box run). */
    std::uint64_t peekCount() const { return peeks; }

  private:
    friend class GroundTruthProbe;

    MetricsRegistry inner;
    mutable std::uint64_t peeks = 0;
};

/**
 * Read-side handle onto a GroundTruthStore. Every accessor bumps the
 * store's peek counter — the audit trail separating white-box
 * validation from the black-box methodology.
 */
class GroundTruthProbe
{
  public:
    explicit GroundTruthProbe(const GroundTruthStore &store)
        : store(&store)
    {
    }

    /** Counter value (0 when the counter was never written). */
    std::uint64_t counter(const std::string &name) const;

    /** Gauge value (0 when never written). */
    double gauge(const std::string &name) const;

    /** Full snapshot of the store. */
    Json snapshot() const;

  private:
    const GroundTruthStore *store;
};

} // namespace utrr

#endif // UTRR_OBS_METRICS_HH
