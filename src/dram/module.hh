/**
 * @file
 * Top-level simulated DDR4 module.
 *
 * Exposes exactly the interface a memory controller (or SoftMC) has to a
 * real module: ACT/PRE/WR/RD/REF with logical addresses. Internally it
 * translates logical rows to physical locations, applies retention and
 * RowHammer physics through the banks, runs the internal regular-refresh
 * engine, and hosts the (proprietary, invisible from outside) TRR
 * mechanism.
 *
 * Chips of a rank operate in lock step and the modelled TRR designs are
 * command-stream-deterministic, so a single chip-wide model stands in
 * for the per-chip instances (see DESIGN.md).
 */

#ifndef UTRR_DRAM_MODULE_HH
#define UTRR_DRAM_MODULE_HH

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "dram/bank.hh"
#include "dram/mapping.hh"
#include "dram/module_spec.hh"
#include "dram/physics.hh"
#include "dram/refresh_engine.hh"
#include "obs/metrics.hh"
#include "trr/trr.hh"

namespace utrr
{

/**
 * A simulated DDR4 DRAM module.
 */
class DramModule
{
  public:
    /**
     * @param spec module geometry, physics and TRR configuration
     * @param seed master seed; all per-row physics derive from it
     * @param retention_overrides optional replacement retention config
     */
    DramModule(ModuleSpec spec, std::uint64_t seed = 1,
               const RetentionModelConfig *retention_overrides = nullptr);

    /** Activate (open) a logical row. */
    void act(Bank bank, Row logical_row, Time now);

    /** Precharge (close) a bank. */
    void pre(Bank bank, Time now);

    /** Write a whole-row pattern into the open row of a bank. */
    void wr(Bank bank, const DataPattern &pattern, Time now);

    /** Write one 64-bit word of the open row. */
    void wrWord(Bank bank, int word_idx, std::uint64_t value);

    /** Read the open row of a bank. */
    RowReadout rd(Bank bank) const;

    /** Refresh command: regular refresh sweep + possible TRR refresh. */
    void ref(Time now);

    // ------------------------------------------------------------------
    // Batched activation (the compiled execution tier, DESIGN.md §17).
    // Bit-identical to the equivalent act()/pre() loops: the bank fuses
    // the physical work, the TRR mechanism still observes every ACT.
    // ------------------------------------------------------------------

    /**
     * Execute @p count ACT+PRE cycles of one logical row, @p cycle ns
     * apart starting at @p start. Requires the bank to be precharged;
     * it is precharged again afterwards.
     */
    void actBurst(Bank bank, Row logical_row, int count, Time start,
                  Time cycle);

    /** A bank ActPlan plus the module-level addressing around it. */
    struct ActPlan
    {
        Bank bank = 0;
        Row phys = kInvalidRow;
        DramBank *bankPtr = nullptr;
        DramBank::ActPlan bankPlan;
    };

    /**
     * Build a reusable single-activation plan for (bank, logical row).
     * See DramBank::buildActPlan for the materialization caveat.
     */
    ActPlan buildActPlan(Bank bank, Row logical_row, Time now);

    /**
     * One ACT+immediate-PRE via a prebuilt plan: bank side effects, TRR
     * observation and metrics, with the address translation and row
     * lookups already resolved. The bank must be (and stays) precharged.
     */
    void actPlanned(const ActPlan &plan, Time now);

    /**
     * Attempt to apply @p rounds round-robin ACT+PRE passes over the
     * @p n planned aggressors in one call — the ACT sequence plans[0],
     * plans[1], ..., plans[n-1] repeated @p rounds times, one ACT every
     * @p stride ns starting at @p start. Bit-identical to the matching
     * actPlanned() loop (bank physics, TRR observation order, metrics)
     * when it succeeds; returns false with nothing mutated when any
     * bank's aggressors fail interleavedRoundsFoldable(), in which case
     * the caller must fall back to the per-cycle loop.
     */
    bool actInterleavedBurst(const ActPlan *plans, int n, int rounds,
                             Time start, Time stride);

    /**
     * actBurst() from a prebuilt plan (cross-call plan-cache path).
     * The caller must have checked that planEpoch() still equals the
     * epoch the plan was built under.
     */
    void actBurstPlanned(const ActPlan &plan, int count, Time start,
                         Time cycle);

    /**
     * Monotonic counter that advances whenever a cached ActPlan could
     * go stale: a WR/wrWord lands (stored coupling words feed the
     * pre-multiplied plan weights) or a snapshot restore replaces the
     * banks' row storage (the plan's RowState pointers dangle). Plans
     * built under the current epoch stay valid while it is unchanged —
     * activations, refreshes, TRR refreshes and new-row materialization
     * neither move row states (deque storage) nor touch stored data.
     * Starts at 1 so a zero-initialized cache slot can never match.
     */
    std::uint64_t planEpoch() const { return planEpochV; }

    const ModuleSpec &spec() const { return moduleSpec; }

    /** Master seed the module was built with (for experiment reports). */
    std::uint64_t seed() const { return masterSeed; }

    /** Logical<->physical translation for one bank. */
    Row toPhysical(Bank bank, Row logical_row) const;
    Row toLogical(Bank bank, Row phys_row) const;
    const RowMapping &mapping(Bank bank) const;

    /** Total REF commands received. */
    std::uint64_t refCount() const { return refs; }

    /** REFs until the sweep next regular-refreshes a physical row. */
    int refsUntilRegularRefresh(Row phys_row) const;

    /** REF commands per regular-refresh sweep (ground truth). */
    int regularRefreshPeriod() const { return engine.periodRefs(); }

    // ------------------------------------------------------------------
    // White-box access for substrate tests and fast bench setup. U-TRR
    // itself never uses these: it must work through the commands above.
    // ------------------------------------------------------------------

    /** Direct access to the TRR model. */
    TrrMechanism &trrMechanism() { return *trr; }

    /** Direct access to a bank. */
    DramBank &bankAt(Bank bank);
    const DramBank &bankAt(Bank bank) const;

    /** Reset TRR internal state without the dummy-hammer dance. */
    void resetTrrState() { trr->reset(); }

    /** The module's physics generator (tests). */
    const PhysicsGenerator &physics() const { return *gen; }

    /** TRR-induced row refreshes performed so far (ground truth). */
    std::uint64_t trrRefreshCount() const { return trrRefreshes; }

    /** TRR refresh actions (detected aggressors) so far. */
    std::uint64_t trrEventCount() const { return trrEvents; }

    // ------------------------------------------------------------------
    // Snapshot / restore (DESIGN.md §16)
    // ------------------------------------------------------------------

    /**
     * A module's complete restorable state: per-bank slot tables and
     * rows (row contents stay copy-on-write, see DramBank::Snapshot),
     * open-row registers, the refresh engine's sweep position, a deep
     * clone of the TRR mechanism and the command counters.
     *
     * Not captured: the ground-truth store (a monotone observability
     * audit trail, not device state — white-box probe comparisons
     * across a restore are out of scope) and attached metrics handles
     * (environment). Move-only because of the TRR clone.
     */
    struct Snapshot
    {
        std::vector<DramBank::Snapshot> banks;
        std::vector<Row> openLogical;
        RefreshEngine::Snapshot engine;
        std::unique_ptr<TrrMechanism> trr;
        std::uint64_t refs = 0;
        std::uint64_t trrRefreshes = 0;
        std::uint64_t trrEvents = 0;
    };

    /** Capture the module's state at this instant. */
    Snapshot snapshot() const;

    /**
     * Rewind to a snapshot. Valid on the module the snapshot was taken
     * from *and* on any module built from the same (spec, seed) — the
     * physics generator and mappings are pure functions of those, so
     * restoring into a fresh instance forks the captured state. One
     * snapshot can be restored any number of times.
     */
    void restore(const Snapshot &snap);

    // ------------------------------------------------------------------
    // Fault-injection hooks (see src/fault/). Scaling by exactly 1.0 is
    // bit-identical to no injection.
    // ------------------------------------------------------------------

    /** Multiply one physical row's effective retention time. */
    void scaleRowRetention(Bank bank, Row phys_row, double factor,
                           Time now);

    /** Multiply every row's effective retention time (temp drift). */
    void scaleAllRetention(double factor);

    // ------------------------------------------------------------------
    // Observability
    // ------------------------------------------------------------------

    /**
     * Attach a metrics registry (not owned; nullptr detaches). The
     * module records controller-observable metrics: total and per-bank
     * ACTs, REFs, rows swept by regular refresh, and flipped bits seen
     * by RD bursts.
     */
    void attachMetrics(MetricsRegistry *registry);

    /**
     * Counted read-side handle onto the chip's ground truth (TRR
     * detections, table/sampler occupancy, per-row TRR-induced victim
     * refreshes as "chip.trr_victim_refresh.b<bank>.r<phys>").
     */
    GroundTruthProbe groundTruthProbe() const
    {
        return GroundTruthProbe(gtStore);
    }

    /** Ground-truth reads so far; 0 proves a black-box run. */
    std::uint64_t groundTruthPeeks() const { return gtStore.peekCount(); }

    /** Summed fast-path tallies of every bank (always counted). */
    RowPerfCounters perfTotals() const;

    /**
     * Publish the fast-path tallies into the attached metrics registry
     * (dram.restore.fast_path / .slow_path, dram.hammer_cell_attaches,
     * dram.readout.cow_copies / .cow_shares). Publishing *assigns* the
     * counter values, so calling it repeatedly (e.g. once per campaign
     * capture and once at report time) never double-counts. No-op
     * without a registry.
     */
    void publishPerfCounters();

  private:
    std::vector<Row> victimRowsOf(Row aggressor_phys) const;
    Counter &gtVictimCounter(Bank bank, Row phys_row);

    ModuleSpec moduleSpec;
    std::unique_ptr<PhysicsGenerator> gen;
    std::vector<DramBank> banks;
    std::vector<RowMapping> mappings;
    std::vector<Row> openLogical;
    RefreshEngine engine;
    std::unique_ptr<TrrMechanism> trr;
    std::uint64_t refs = 0;
    std::uint64_t trrRefreshes = 0;
    std::uint64_t trrEvents = 0;
    std::uint64_t masterSeed = 0;
    /** See planEpoch(). */
    std::uint64_t planEpochV = 1;

    GroundTruthStore gtStore;
    Counter *gtTrrEvents = nullptr;
    Counter *gtTrrVictims = nullptr;
    /** Per-(bank, victim row) counters, cached to avoid name building
     *  on the REF path. */
    std::map<std::pair<Bank, Row>, Counter *> gtVictimCounters;

    MetricsRegistry *metrics = nullptr;
    Counter *ctrActs = nullptr;
    Counter *ctrRefs = nullptr;
    Counter *ctrReadFlipBits = nullptr;
    std::vector<Counter *> ctrBankActs;
};

} // namespace utrr

#endif // UTRR_DRAM_MODULE_HH
