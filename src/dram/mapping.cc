#include "dram/mapping.hh"

#include "common/logging.hh"

namespace utrr
{

std::string
scrambleName(RowScramble scramble)
{
    switch (scramble) {
      case RowScramble::kSequential:
        return "sequential";
      case RowScramble::kSwapHalfPairs:
        return "swap-half-pairs";
      case RowScramble::kBitSwap01:
        return "bit-swap-01";
    }
    return "?";
}

Row
applyScramble(RowScramble scramble, Row row)
{
    switch (scramble) {
      case RowScramble::kSequential:
        return row;
      case RowScramble::kSwapHalfPairs:
        // 0,1,2,3 -> 0,1,3,2 within every 4-row group.
        return (row & 2) ? (row ^ 1) : row;
      case RowScramble::kBitSwap01: {
        const Row b0 = row & 1;
        const Row b1 = (row >> 1) & 1;
        return (row & ~3) | (b0 << 1) | b1;
      }
    }
    return row;
}

RowMapping::RowMapping(RowScramble scramble, Row rows, int remap_count,
                       Rng rng, Row spare_rows)
    : scramble(scramble), rowCount(rows), spareCount(spare_rows)
{
    UTRR_ASSERT(rows > 0, "need at least one row");
    UTRR_ASSERT(remap_count <= spare_rows,
                "more remaps than spare rows");
    // Pick distinct logical rows to remap; keep them away from row 0 and
    // the end of the bank so experiments near the edges stay simple.
    int placed = 0;
    int guard = 0;
    while (placed < remap_count && guard < remap_count * 100 + 100) {
        ++guard;
        const Row victim = static_cast<Row>(
            rng.uniformInt(8, static_cast<std::int64_t>(rows) - 9));
        if (remaps.count(victim))
            continue;
        const Row spare = rowCount + placed;
        remaps[victim] = spare;
        reverseRemaps[spare] = victim;
        vacated[scrambleRow(victim)] = true;
        ++placed;
    }
}

Row
RowMapping::scrambleRow(Row logical) const
{
    return applyScramble(scramble, logical);
}

Row
RowMapping::unscrambleRow(Row physical) const
{
    // All modelled scramblers are involutions.
    return scrambleRow(physical);
}

Row
RowMapping::toPhysical(Row logical) const
{
    UTRR_ASSERT(logical >= 0 && logical < rowCount,
                logFmt("logical row ", logical, " out of range"));
    const auto it = remaps.find(logical);
    if (it != remaps.end())
        return it->second;
    return scrambleRow(logical);
}

Row
RowMapping::toLogical(Row physical) const
{
    UTRR_ASSERT(physical >= 0 && physical < physicalRows(),
                logFmt("physical row ", physical, " out of range"));
    if (physical >= rowCount) {
        const auto it = reverseRemaps.find(physical);
        return it == reverseRemaps.end() ? kInvalidRow : it->second;
    }
    if (vacated.count(physical))
        return kInvalidRow;
    return unscrambleRow(physical);
}

bool
RowMapping::isRemapped(Row logical) const
{
    return remaps.count(logical) != 0;
}

} // namespace utrr
