#include "dram/module_spec.hh"

#include "common/logging.hh"

namespace utrr
{

namespace
{

/** Vendor A refreshes internally faster than spec (Obs. A8). */
constexpr int kVendorARefreshPeriod = 3'758;
constexpr int kNominalRefreshPeriod = 8'192;

ModuleSpec
base(std::string name, char vendor, std::string date, int density,
     int ranks, int banks, int pins, double hc_first, TrrVersion trr)
{
    ModuleSpec spec;
    spec.name = std::move(name);
    spec.vendor = vendor;
    spec.date = std::move(date);
    spec.chipDensityGbit = density;
    spec.ranks = ranks;
    spec.banks = banks;
    spec.pins = pins;
    // The paper notes 16-bank modules have 32K-row banks and 8-bank
    // modules 64K-row banks (§7.3).
    spec.rowsPerBank = banks == 16 ? 32 * 1024 : 64 * 1024;
    spec.hcFirst = hc_first;
    spec.trr = trr;
    spec.refreshPeriodRefs =
        vendor == 'A' ? kVendorARefreshPeriod : kNominalRefreshPeriod;
    // Vendor A modules use a scrambled decoder; B sequential; C swaps
    // address bits 0/1 (arbitrary but fixed choices exercising §5.3).
    switch (vendor) {
      case 'A':
        spec.scramble = RowScramble::kSwapHalfPairs;
        break;
      case 'B':
        spec.scramble = RowScramble::kSequential;
        break;
      default:
        spec.scramble = RowScramble::kBitSwap01;
        break;
    }
    return spec;
}

ModuleSpec
withPaper(ModuleSpec spec, double vulnerable_pct, double max_flips)
{
    spec.paperVulnerableRowsPct = vulnerable_pct;
    spec.paperMaxFlipsPerHammer = max_flips;
    return spec;
}

std::vector<ModuleSpec>
buildSpecs()
{
    std::vector<ModuleSpec> specs;

    // --- Vendor A --------------------------------------------------
    specs.push_back(withPaper(
        base("A0", 'A', "19-50", 8, 1, 16, 8, 16'000, TrrVersion::kATrr1),
        73.3, 1.16));
    // A1-5: HC_first 13K-15K, 8 banks, x16. A5 is the most vulnerable
    // module of the group (used in Fig. 8), so it gets the low end.
    const double a15_hc[] = {15'000, 14'500, 14'000, 13'500, 13'000};
    const double a15_vuln[] = {99.2, 99.2, 99.3, 99.3, 99.4};
    const double a15_flips[] = {2.32, 2.9, 3.5, 4.1, 4.73};
    for (int i = 0; i < 5; ++i) {
        specs.push_back(withPaper(
            base(logFmt("A", 1 + i), 'A', "19-36", 8, 1, 8, 16,
                 a15_hc[i], TrrVersion::kATrr1),
            a15_vuln[i], a15_flips[i]));
    }
    specs.push_back(withPaper(
        base("A6", 'A', "19-45", 8, 1, 8, 16, 13'000,
             TrrVersion::kATrr1),
        99.4, 3.86));
    specs.push_back(withPaper(
        base("A7", 'A', "19-45", 8, 1, 8, 16, 15'000,
             TrrVersion::kATrr1),
        99.3, 2.12));
    specs.push_back(withPaper(
        base("A8", 'A', "20-07", 8, 1, 16, 8, 12'000,
             TrrVersion::kATrr1),
        75.0, 2.96));
    specs.push_back(withPaper(
        base("A9", 'A', "20-07", 8, 1, 16, 8, 14'000,
             TrrVersion::kATrr1),
        74.6, 1.96));
    const double a1012_hc[] = {12'000, 12'500, 13'000};
    const double a1012_flips[] = {2.86, 2.2, 1.48};
    for (int i = 0; i < 3; ++i) {
        specs.push_back(withPaper(
            base(logFmt("A", 10 + i), 'A', "19-51", 8, 1, 16, 8,
                 a1012_hc[i], TrrVersion::kATrr1),
            74.8, a1012_flips[i]));
    }
    specs.push_back(withPaper(
        base("A13", 'A', "20-31", 8, 1, 8, 16, 11'000,
             TrrVersion::kATrr2),
        98.6, 2.78));
    specs.push_back(withPaper(
        base("A14", 'A', "20-31", 8, 1, 8, 16, 14'000,
             TrrVersion::kATrr2),
        94.3, 1.53));

    // --- Vendor B --------------------------------------------------
    specs.push_back(withPaper(
        base("B0", 'B', "18-22", 4, 1, 16, 8, 44'000,
             TrrVersion::kBTrr1),
        99.9, 2.13));
    // B1-4: much stronger rows (HC_first 159K-192K).
    const double b14_hc[] = {159'000, 170'000, 181'000, 192'000};
    const double b14_vuln[] = {51.2, 42.0, 31.5, 23.3};
    const double b14_flips[] = {0.11, 0.09, 0.07, 0.06};
    for (int i = 0; i < 4; ++i) {
        specs.push_back(withPaper(
            base(logFmt("B", 1 + i), 'B', "20-17", 4, 1, 16, 8,
                 b14_hc[i], TrrVersion::kBTrr1),
            b14_vuln[i], b14_flips[i]));
    }
    specs.push_back(withPaper(
        base("B5", 'B', "16-48", 4, 1, 16, 8, 44'000,
             TrrVersion::kBTrr1),
        99.9, 2.03));
    specs.push_back(withPaper(
        base("B6", 'B', "16-48", 4, 1, 16, 8, 50'000,
             TrrVersion::kBTrr1),
        99.9, 1.85));
    specs.push_back(withPaper(
        base("B7", 'B', "19-06", 8, 2, 16, 8, 20'000,
             TrrVersion::kBTrr1),
        99.9, 31.14));
    specs.push_back(withPaper(
        base("B8", 'B', "18-03", 4, 1, 16, 8, 43'000,
             TrrVersion::kBTrr1),
        99.9, 2.57));
    const double b912_hc[] = {42'000, 50'000, 57'000, 65'000};
    const double b912_flips[] = {24.26, 21.5, 19.0, 16.83};
    for (int i = 0; i < 4; ++i) {
        specs.push_back(withPaper(
            base(logFmt("B", 9 + i), 'B', "19-48", 8, 1, 16, 8,
                 b912_hc[i], TrrVersion::kBTrr2),
            37.5, b912_flips[i]));
    }
    specs.push_back(withPaper(
        base("B13", 'B', "20-08", 4, 1, 16, 8, 11'000,
             TrrVersion::kBTrr3),
        99.9, 18.12));
    specs.push_back(withPaper(
        base("B14", 'B', "20-08", 4, 1, 16, 8, 14'000,
             TrrVersion::kBTrr3),
        99.9, 16.20));

    // --- Vendor C --------------------------------------------------
    const double c03_hc[] = {137'000, 156'000, 175'000, 194'000};
    const double c03_vuln[] = {23.2, 15.0, 7.0, 1.0};
    const double c03_flips[] = {0.15, 0.12, 0.08, 0.05};
    for (int i = 0; i < 4; ++i) {
        specs.push_back(withPaper(
            base(logFmt("C", i), 'C', "16-48", 4, 1, 16, 8,
                 c03_hc[i], TrrVersion::kCTrr1),
            c03_vuln[i], c03_flips[i]));
    }
    const double c46_hc[] = {130'000, 140'000, 150'000};
    const double c46_vuln[] = {12.0, 9.9, 7.8};
    const double c46_flips[] = {0.08, 0.07, 0.06};
    for (int i = 0; i < 3; ++i) {
        specs.push_back(withPaper(
            base(logFmt("C", 4 + i), 'C', "17-12", 8, 1, 16, 8,
                 c46_hc[i], TrrVersion::kCTrr1),
            c46_vuln[i], c46_flips[i]));
    }
    specs.push_back(withPaper(
        base("C7", 'C', "20-31", 8, 1, 8, 16, 40'000,
             TrrVersion::kCTrr1),
        41.8, 14.56));
    specs.push_back(withPaper(
        base("C8", 'C', "20-31", 8, 1, 8, 16, 44'000,
             TrrVersion::kCTrr1),
        39.8, 9.66));
    const double c911_hc[] = {42'000, 47'000, 53'000};
    const double c911_flips[] = {32.04, 20.0, 9.30};
    for (int i = 0; i < 3; ++i) {
        specs.push_back(withPaper(
            base(logFmt("C", 9 + i), 'C', "20-31", 8, 1, 8, 16,
                 c911_hc[i], TrrVersion::kCTrr2),
            99.7, c911_flips[i]));
    }
    const double c1214_hc[] = {6'000, 6'500, 7'000};
    const double c1214_flips[] = {12.64, 8.5, 4.91};
    for (int i = 0; i < 3; ++i) {
        specs.push_back(withPaper(
            base(logFmt("C", 12 + i), 'C', "20-46", 16, 1, 8, 16,
                 c1214_hc[i], TrrVersion::kCTrr3),
            99.9, c1214_flips[i]));
    }

    UTRR_ASSERT(specs.size() == 45, "Table 1 lists 45 modules");
    return specs;
}

} // namespace

const std::vector<ModuleSpec> &
allModuleSpecs()
{
    static const std::vector<ModuleSpec> specs = buildSpecs();
    return specs;
}

std::optional<ModuleSpec>
findModuleSpec(const std::string &name)
{
    for (const ModuleSpec &spec : allModuleSpecs()) {
        if (spec.name == name)
            return spec;
    }
    return std::nullopt;
}

} // namespace utrr
