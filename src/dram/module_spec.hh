/**
 * @file
 * Specifications of the 45 DDR4 modules the paper characterizes
 * (Table 1).
 *
 * Each spec carries the module's geometry, its ground-truth TRR version,
 * the measured HC_first, and the paper-reported results
 * (% vulnerable rows, max bit flips per row per hammer) that our bench
 * harnesses compare against. Ranges in Table 1 (e.g. "13K-15K" for
 * modules A1-5) are interpolated across the modules of the group.
 */

#ifndef UTRR_DRAM_MODULE_SPEC_HH
#define UTRR_DRAM_MODULE_SPEC_HH

#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "dram/mapping.hh"
#include "trr/trr.hh"

namespace utrr
{

/**
 * Static description of one DDR4 module.
 */
struct ModuleSpec
{
    std::string name;    // e.g. "A5"
    char vendor = 'A';   // 'A', 'B' or 'C'
    std::string date;    // manufacturing date, yy-ww
    int chipDensityGbit = 8;
    int ranks = 1;
    int banks = 16;
    int pins = 8; // DQ pins per chip (x8 / x16)
    Row rowsPerBank = 32 * 1024;
    int rowBits = 64 * 1024; // 8 KiB row across the rank

    /** Ground-truth TRR implementation. */
    TrrVersion trr = TrrVersion::kNone;

    /** REF commands per full regular-refresh sweep (Obs. A8: 3758). */
    int refreshPeriodRefs = 8'192;

    /** Minimum per-aggressor double-sided ACTs for the first flip. */
    double hcFirst = 15'000.0;
    /** Row-to-row spread (lognormal sigma) of hammer thresholds. */
    double hcRowSigma = 0.45;

    /** Row-decoder scrambling of this module. */
    RowScramble scramble = RowScramble::kSequential;
    /** Repaired (remapped) rows per bank. */
    int remapsPerBank = 3;

    /** Paper-reported fraction of vulnerable rows (for comparison). */
    double paperVulnerableRowsPct = 0.0;
    /** Paper-reported max bit flips per row per hammer. */
    double paperMaxFlipsPerHammer = 0.0;

    /** Paired-row organization (vendor C modules C0-8, Obs. C3). */
    bool
    paired() const
    {
        return trr == TrrVersion::kCTrr1;
    }

    /** Total physical rows per bank including the spare region. */
    Row
    physRowsPerBank() const
    {
        return rowsPerBank + 64;
    }

    /** Convenience accessors mirroring Table 1 columns. */
    TrrTraits traits() const { return trrTraits(trr); }
};

/** All 45 module specs of Table 1, in table order. */
const std::vector<ModuleSpec> &allModuleSpecs();

/** Look up a module spec by name ("A0" ... "C14"). */
std::optional<ModuleSpec> findModuleSpec(const std::string &name);

} // namespace utrr

#endif // UTRR_DRAM_MODULE_SPEC_HH
