#include "dram/data_pattern.hh"

#include "common/rng.hh"

namespace utrr
{

bool
DataPattern::bit(Row row, Col col) const
{
    switch (patKind) {
      case Kind::kAllOnes:
        return true;
      case Kind::kAllZeros:
        return false;
      case Kind::kCheckerboard:
        // 0x55 bytes on even rows, inverted on odd rows.
        return ((col & 1) == 0) ^ ((row & 1) != 0);
      case Kind::kInvCheckerboard:
        return ((col & 1) != 0) ^ ((row & 1) != 0);
      case Kind::kColStripe:
        return (col & 1) != 0;
      case Kind::kRandom: {
        const std::uint64_t w = hashMix(
            seed ^ (static_cast<std::uint64_t>(row) << 32) ^
            static_cast<std::uint64_t>(col / 64));
        return ((w >> (col % 64)) & 1) != 0;
      }
    }
    return false;
}

std::uint64_t
DataPattern::word(Row row, int word_idx) const
{
    switch (patKind) {
      case Kind::kAllOnes:
        return ~0ULL;
      case Kind::kAllZeros:
        return 0ULL;
      case Kind::kCheckerboard: {
        const std::uint64_t base = 0x5555555555555555ULL;
        return (row & 1) ? ~base : base;
      }
      case Kind::kInvCheckerboard: {
        const std::uint64_t base = 0xaaaaaaaaaaaaaaaaULL;
        return (row & 1) ? ~base : base;
      }
      case Kind::kColStripe:
        return 0xaaaaaaaaaaaaaaaaULL;
      case Kind::kRandom:
        return hashMix(seed ^ (static_cast<std::uint64_t>(row) << 32) ^
                       static_cast<std::uint64_t>(word_idx));
    }
    return 0;
}

std::string
DataPattern::name() const
{
    switch (patKind) {
      case Kind::kAllOnes:
        return "all-ones";
      case Kind::kAllZeros:
        return "all-zeros";
      case Kind::kCheckerboard:
        return "checkerboard";
      case Kind::kInvCheckerboard:
        return "inv-checkerboard";
      case Kind::kColStripe:
        return "col-stripe";
      case Kind::kRandom:
        return "random";
    }
    return "?";
}

} // namespace utrr
