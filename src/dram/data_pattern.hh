/**
 * @file
 * Whole-row data patterns.
 *
 * Retention failures and RowHammer bit flips are both data-dependent, so
 * Row Scout profiles rows with a specific pattern and the TRR Analyzer
 * re-initializes victim/aggressor rows with configurable patterns
 * (paper §3.2 step 1). A DataPattern describes the value of every bit of
 * a row as a function of (row, column).
 */

#ifndef UTRR_DRAM_DATA_PATTERN_HH
#define UTRR_DRAM_DATA_PATTERN_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace utrr
{

/**
 * A deterministic whole-row data pattern.
 */
class DataPattern
{
  public:
    enum class Kind
    {
        kAllOnes,
        kAllZeros,
        kCheckerboard,    // 0x55 bytes, inverted on odd rows
        kInvCheckerboard, // 0xAA bytes, inverted on odd rows
        kColStripe,       // alternating bit columns
        kRandom,          // deterministic pseudo-random per (seed,row,col)
    };

    /** Default pattern is all ones, matching the paper's examples. */
    constexpr DataPattern() = default;

    constexpr explicit DataPattern(Kind kind, std::uint64_t seed = 0)
        : patKind(kind), seed(seed)
    {
    }

    static constexpr DataPattern allOnes()
    {
        return DataPattern(Kind::kAllOnes);
    }
    static constexpr DataPattern allZeros()
    {
        return DataPattern(Kind::kAllZeros);
    }
    static constexpr DataPattern checkerboard()
    {
        return DataPattern(Kind::kCheckerboard);
    }
    static constexpr DataPattern invCheckerboard()
    {
        return DataPattern(Kind::kInvCheckerboard);
    }
    static constexpr DataPattern colStripe()
    {
        return DataPattern(Kind::kColStripe);
    }
    static constexpr DataPattern random(std::uint64_t seed)
    {
        return DataPattern(Kind::kRandom, seed);
    }

    Kind kind() const { return patKind; }

    /** Seed of a kRandom pattern (0 for the deterministic kinds). */
    std::uint64_t patternSeed() const { return seed; }

    /** Value of bit @p col of row @p row under this pattern. */
    bool bit(Row row, Col col) const;

    /** 64-bit word @p word_idx of row @p row under this pattern. */
    std::uint64_t word(Row row, int word_idx) const;

    /** True if both patterns generate identical data everywhere. */
    bool operator==(const DataPattern &other) const
    {
        return patKind == other.patKind &&
            (patKind != Kind::kRandom || seed == other.seed);
    }

    /** Human-readable name for logs and tables. */
    std::string name() const;

  private:
    Kind patKind = Kind::kAllOnes;
    std::uint64_t seed = 0;
};

} // namespace utrr

#endif // UTRR_DRAM_DATA_PATTERN_HH
