/**
 * @file
 * Logical-to-physical row address mapping (paper §5.3).
 *
 * Two effects make consecutive logical rows non-adjacent in silicon:
 *
 *  1. the row decoder may scramble addresses (we model the common
 *     "swap the last two rows of every 4-row group" layout observed in
 *     real chips, i.e. logical 0,1,2,3 -> physical 0,1,3,2);
 *  2. post-manufacturing repair remaps faulty logical rows to spare
 *     physical rows elsewhere in the bank.
 *
 * U-TRR must reverse-engineer this mapping before running experiments;
 * core/mapping_reveng.{hh,cc} does exactly that against this model.
 */

#ifndef UTRR_DRAM_MAPPING_HH
#define UTRR_DRAM_MAPPING_HH

#include <string>
#include <unordered_map>

#include "common/rng.hh"
#include "common/types.hh"

namespace utrr
{

/** Row-decoder scrambling schemes. */
enum class RowScramble
{
    /** Physical order equals logical order. */
    kSequential,
    /** Within each 4-row group, the last two rows are swapped. */
    kSwapHalfPairs,
    /** Bit 0 and bit 1 of the row address are exchanged. */
    kBitSwap01,
};

/** Human-readable scramble name. */
std::string scrambleName(RowScramble scramble);

/**
 * Apply a decoder scramble to a row address. All modelled schemes are
 * involutions, so the same function maps logical->physical and back.
 */
Row applyScramble(RowScramble scramble, Row row);

/**
 * Bijective logical<->physical row mapping for one bank, including
 * spare-row remaps.
 *
 * The physical row space is [0, rows + spareRows): indices >= rows are
 * spare rows used as remap targets.
 */
class RowMapping
{
  public:
    /**
     * @param scramble decoder scrambling scheme
     * @param rows number of addressable (logical) rows
     * @param remap_count number of repaired rows remapped to spares
     * @param rng source of randomness for choosing repaired rows
     * @param spare_rows size of the spare region
     */
    RowMapping(RowScramble scramble, Row rows, int remap_count, Rng rng,
               Row spare_rows = 64);

    /** Map a logical row address to its physical location. */
    Row toPhysical(Row logical) const;

    /**
     * Map a physical location back to the logical address that selects
     * it, or kInvalidRow for unmapped physical rows (vacated by repair,
     * or unused spares).
     */
    Row toLogical(Row physical) const;

    /** Number of addressable logical rows. */
    Row rows() const { return rowCount; }

    /** Total physical rows including spares. */
    Row physicalRows() const { return rowCount + spareCount; }

    /** True if the given logical row was remapped by repair. */
    bool isRemapped(Row logical) const;

    /** Number of remapped rows. */
    int remapCount() const { return static_cast<int>(remaps.size()); }

  private:
    Row scrambleRow(Row logical) const;
    Row unscrambleRow(Row physical) const;

    RowScramble scramble;
    Row rowCount;
    Row spareCount;
    /** logical -> spare physical */
    std::unordered_map<Row, Row> remaps;
    /** spare physical -> logical */
    std::unordered_map<Row, Row> reverseRemaps;
    /** physical slots vacated by repair (toLogical -> invalid) */
    std::unordered_map<Row, bool> vacated;
};

} // namespace utrr

#endif // UTRR_DRAM_MAPPING_HH
