#include "dram/refresh_engine.hh"

#include "common/logging.hh"
#include "obs/profiler.hh"

namespace utrr
{

RefreshEngine::RefreshEngine(Row phys_rows, int period_refs)
    : physRows(phys_rows), period(period_refs)
{
    UTRR_ASSERT(phys_rows > 0, "need rows");
    UTRR_ASSERT(period_refs > 0, "need a positive refresh period");
}

std::optional<std::pair<Row, Row>>
RefreshEngine::onRefresh()
{
    UTRR_PROF_SCOPE("refresh_engine.on_refresh");
    // Integer bresenham-style accumulator: after `period` REFs exactly
    // `physRows` rows have been refreshed, with no drift.
    const std::uint64_t step = refs % static_cast<std::uint64_t>(period);
    const auto rows64 = static_cast<std::uint64_t>(physRows);
    Row begin = static_cast<Row>(step * rows64 /
                                 static_cast<std::uint64_t>(period));
    const Row end = static_cast<Row>((step + 1) * rows64 /
                                     static_cast<std::uint64_t>(period));
#ifdef UTRR_MUTATION_REFRESH_OFF_BY_ONE
    // Deliberate mutation (-DUTRR_MUTATION=ON): every sweep chunk skips
    // its first row, so chunk-start rows are never regular-refreshed.
    // The differential fuzzing oracle must flag this (mutation sanity
    // test); never enable it in a real build.
    if (begin < end)
        ++begin;
#endif
    ++refs;
    position = end >= physRows ? 0 : end;

    if (ctrRowsRefreshed != nullptr && end > begin)
        ctrRowsRefreshed->inc(static_cast<std::uint64_t>(end - begin));
    if (ctrSweeps != nullptr && refs % static_cast<std::uint64_t>(period) == 0)
        ctrSweeps->inc();

    if (end > begin)
        return std::make_pair(begin, end);
    return std::nullopt;
}

int
RefreshEngine::refsUntilRow(Row phys_row) const
{
    UTRR_ASSERT(phys_row >= 0 && phys_row < physRows, "row out of range");
    // Find the smallest k >= 0 such that REF number (refs + k) covers
    // phys_row. REF with in-period step s covers [s*R/P, (s+1)*R/P).
    const auto rows64 = static_cast<std::uint64_t>(physRows);
    const auto period64 = static_cast<std::uint64_t>(period);
    // The step that covers phys_row: s = floor((row * P + P - 1) / R)
    // adjusted; derive directly: s is the largest s with
    // s*R/P <= row, i.e. s = floor(((row + 1) * P - 1) / R).
    const std::uint64_t target =
        ((static_cast<std::uint64_t>(phys_row) + 1) * period64 - 1) /
        rows64;
    const std::uint64_t current = refs % period64;
    if (target >= current)
        return static_cast<int>(target - current);
    return static_cast<int>(period64 - current + target);
}

void
RefreshEngine::reset()
{
    refs = 0;
    position = 0;
}

void
RefreshEngine::attachMetrics(MetricsRegistry *registry)
{
    if (registry == nullptr) {
        ctrRowsRefreshed = nullptr;
        ctrSweeps = nullptr;
        return;
    }
    ctrRowsRefreshed = &registry->counter("dram.rows_regular_refreshed");
    ctrSweeps = &registry->counter("dram.refresh_sweeps");
}

} // namespace utrr
