/**
 * @file
 * DDR4 timing parameters used by the SoftMC-like host to advance the
 * simulated clock.
 *
 * Values follow the typical DDR4 datasheet numbers the paper quotes
 * (footnote 10): tRAS = 35 ns, tRP = 15 ns, tRFC = 350 ns and
 * tREFI = 7.8 us, which allow at most 149 single-bank hammers between two
 * REF commands.
 */

#ifndef UTRR_DRAM_TIMING_HH
#define UTRR_DRAM_TIMING_HH

#include "common/types.hh"

namespace utrr
{

/**
 * DDR4 timing parameters (all in nanoseconds).
 */
struct Timing
{
    /** ACT to PRE minimum (row active time). */
    Time tRAS = 35;
    /** PRE to ACT minimum (precharge time). */
    Time tRP = 15;
    /** ACT to RD/WR minimum. */
    Time tRCD = 15;
    /** REF completion time. */
    Time tRFC = 350;
    /** Average periodic refresh interval. */
    Time tREFI = 7'800;
    /** Four-activation window: at most 4 ACTs per tFAW across banks. */
    Time tFAW = 30;
    /** RD/WR burst occupancy (command to data completion). */
    Time tBURST = 5;
    /** Write recovery before PRE. */
    Time tWR = 15;

    /** Nominal refresh period over which all rows must be refreshed. */
    Time refreshPeriod = 64 * kNsPerMs;

    /** One full ACT+PRE hammer cycle. */
    Time hammerCycle() const { return tRAS + tRP; }

    /**
     * Maximum number of single-bank hammers that fit between two REF
     * commands at the default refresh rate (149 with default values).
     */
    int
    hammersPerRefi() const
    {
        return static_cast<int>((tREFI - tRFC) / hammerCycle());
    }

    /** Number of REF commands the controller issues per refresh period. */
    int
    refsPerPeriod() const
    {
        return static_cast<int>(refreshPeriod / tREFI);
    }
};

} // namespace utrr

#endif // UTRR_DRAM_TIMING_HH
