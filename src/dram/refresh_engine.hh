/**
 * @file
 * In-DRAM regular-refresh engine.
 *
 * The memory controller only issues opaque REF commands; the chip
 * internally decides which rows each REF refreshes. The paper's
 * Observation A8 shows vendor A refreshes every row once every 3758 REF
 * commands (i.e. faster than the 64 ms / ~8K-REF specification), while
 * vendors B and C follow the nominal ~8K-REF period. U-TRR relies on
 * this periodicity to tell regular refreshes apart from TRR-induced
 * ones.
 */

#ifndef UTRR_DRAM_REFRESH_ENGINE_HH
#define UTRR_DRAM_REFRESH_ENGINE_HH

#include <cstdint>
#include <optional>
#include <utility>

#include "common/types.hh"
#include "obs/metrics.hh"

namespace utrr
{

/**
 * Sliding-window regular refresh: each REF refreshes the next chunk of
 * physical rows; a full sweep takes exactly `periodRefs` REF commands.
 */
class RefreshEngine
{
  public:
    /**
     * @param phys_rows physical rows per bank (all banks refresh in
     *                  lock step)
     * @param period_refs REF commands per full sweep
     */
    RefreshEngine(Row phys_rows, int period_refs);

    /**
     * Advance by one REF command; returns the half-open physical row
     * range [lo, hi) refreshed by this REF, or nullopt when this REF
     * refreshes no rows (period longer than the row count). Each sweep
     * chunk is contiguous, so a single range always suffices — no heap
     * allocation on the per-REF hot path.
     */
    std::optional<std::pair<Row, Row>> onRefresh();

    /** REF commands needed to refresh every row once. */
    int periodRefs() const { return period; }

    /** Total REF commands seen. */
    std::uint64_t refCount() const { return refs; }

    /**
     * Number of REF commands from now until the sweep next reaches the
     * given physical row (0 if the next REF refreshes it).
     */
    int refsUntilRow(Row phys_row) const;

    /** Restart the sweep from row 0 (testing convenience). */
    void reset();

    /**
     * Sweep state for module snapshots. Geometry (physRows, period) is
     * construction-time configuration and metric handles are
     * environment, so the REF count and sweep position are the whole
     * restorable state.
     */
    struct Snapshot
    {
        std::uint64_t refs = 0;
        Row position = 0;
    };

    Snapshot
    snapshotState() const
    {
        return Snapshot{refs, position};
    }

    void
    restoreState(const Snapshot &snap)
    {
        refs = snap.refs;
        position = snap.position;
    }

    /**
     * Attach a metrics registry (not owned; nullptr detaches). Records
     * rows swept ("dram.rows_regular_refreshed") and completed sweeps
     * ("dram.refresh_sweeps").
     */
    void attachMetrics(MetricsRegistry *registry);

  private:
    Row physRows;
    int period;
    std::uint64_t refs = 0;
    Row position = 0;
    Counter *ctrRowsRefreshed = nullptr;
    Counter *ctrSweeps = nullptr;
};

} // namespace utrr

#endif // UTRR_DRAM_REFRESH_ENGINE_HH
