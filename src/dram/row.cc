#include "dram/row.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace utrr
{

namespace
{

const std::vector<Col> kNoFlips;

} // namespace

RowReadout::RowReadout(
    DataPattern pattern, Row pattern_row,
    std::shared_ptr<const std::unordered_map<int, std::uint64_t>>
        overrides,
    std::shared_ptr<const std::vector<Col>> flips, int row_bits)
    : pattern(pattern), patternRow(pattern_row),
      overrides(std::move(overrides)), flips(std::move(flips)),
      bits(row_bits)
{
}

std::uint64_t
RowReadout::storedWord(int word_idx) const
{
    if (overrides) {
        const auto it = overrides->find(word_idx);
        if (it != overrides->end())
            return it->second;
    }
    return pattern.word(patternRow, word_idx);
}

const std::vector<Col> &
RowReadout::rawFlips() const
{
    return flips ? *flips : kNoFlips;
}

bool
RowReadout::bit(Col col) const
{
    const std::uint64_t w = storedWord(col / 64);
    const bool stored = ((w >> (col % 64)) & 1) != 0;
    const auto &f = rawFlips();
    const bool is_flipped = std::binary_search(f.begin(), f.end(), col);
    return stored ^ is_flipped;
}

std::uint64_t
RowReadout::word(int word_idx) const
{
    std::uint64_t w = storedWord(word_idx);
    // Apply flips within this word.
    const auto &f = rawFlips();
    const Col lo = static_cast<Col>(word_idx) * 64;
    auto it = std::lower_bound(f.begin(), f.end(), lo);
    for (; it != f.end() && *it < lo + 64; ++it)
        w ^= 1ULL << (*it - lo);
    return w;
}

void
RowReadout::injectFlip(Col col)
{
    UTRR_ASSERT(col >= 0 && col < bits,
                logFmt("injected flip column ", col, " out of range"));
    // The flip list may be shared with the row that produced this
    // readout: mutate a private copy.
    auto copy = flips ? std::make_shared<std::vector<Col>>(*flips)
                      : std::make_shared<std::vector<Col>>();
    const auto it = std::lower_bound(copy->begin(), copy->end(), col);
    if (it != copy->end() && *it == col)
        copy->erase(it); // double fault cancels out
    else
        copy->insert(it, col);
    flips = std::move(copy);
}

std::vector<Col>
RowReadout::flipsVs(const DataPattern &expected, Row expected_row) const
{
    // Fast path: the expectation is exactly what was last written, so
    // the committed flips are the answer (modulo word overrides).
    if (!hasOverrides() && expected == pattern &&
        expected_row == patternRow) {
        return rawFlips();
    }
    return diffReadout(*this, expected, expected_row);
}

int
RowReadout::countFlipsVs(const DataPattern &expected,
                         Row expected_row) const
{
    if (!hasOverrides() && expected == pattern &&
        expected_row == patternRow) {
        return static_cast<int>(rawFlips().size());
    }
    return diffReadoutCount(*this, expected, expected_row);
}

std::vector<Col>
diffReadout(const RowReadout &readout, const DataPattern &expected,
            Row expected_row)
{
    std::vector<Col> result;
    const int bits = readout.rowBits();
    const int full = bits / 64;
    for (int w = 0; w < full; ++w) {
        std::uint64_t diff =
            readout.word(w) ^ expected.word(expected_row, w);
        while (diff != 0) {
            const int b = __builtin_ctzll(diff);
            result.push_back(static_cast<Col>(w) * 64 + b);
            diff &= diff - 1;
        }
    }
    const int tail = bits % 64;
    if (tail != 0) {
        const std::uint64_t mask = (1ULL << tail) - 1;
        std::uint64_t diff =
            (readout.word(full) ^ expected.word(expected_row, full)) &
            mask;
        while (diff != 0) {
            const int b = __builtin_ctzll(diff);
            result.push_back(static_cast<Col>(full) * 64 + b);
            diff &= diff - 1;
        }
    }
    return result;
}

int
diffReadoutCount(const RowReadout &readout, const DataPattern &expected,
                 Row expected_row)
{
    int count = 0;
    const int bits = readout.rowBits();
    const int full = bits / 64;
    for (int w = 0; w < full; ++w) {
        count += __builtin_popcountll(
            readout.word(w) ^ expected.word(expected_row, w));
    }
    const int tail = bits % 64;
    if (tail != 0) {
        const std::uint64_t mask = (1ULL << tail) - 1;
        count += __builtin_popcountll(
            (readout.word(full) ^ expected.word(expected_row, full)) &
            mask);
    }
    return count;
}

RowState::RowState(RowPhysics physics, Time now, Rng vrt_rng, int row_bits,
                   Time vrt_dwell, double vrt_high_factor)
    : phys(std::move(physics)), lastRestore(now), vrtRng(vrt_rng),
      lastVrtCheck(now), vrtDwell(vrt_dwell),
      vrtHighFactor(vrt_high_factor), bits(row_bits)
{
    for (const WeakCell &cell : phys.weakCells)
        vrtRow = vrtRow || cell.vrt;
    weakSorted = std::is_sorted(
        phys.weakCells.begin(), phys.weakCells.end(),
        [](const WeakCell &a, const WeakCell &b) {
            return a.retention < b.retention;
        });
    refreshMinRetention();
    if (!phys.hammerCells.empty()) {
        // Hammer cells supplied up front (hand-built physics): behave
        // exactly as if they had just been attached.
        hammerAttached = true;
        hammerFloor = std::numeric_limits<double>::infinity();
        for (const HammerCell &cell : phys.hammerCells)
            hammerFloor = std::min(hammerFloor, cell.threshold);
    } else {
        hammerFloor = phys.hammerBaseThreshold;
    }
}

void
RowState::refreshMinRetention()
{
    if (phys.weakCells.empty()) {
        minRetCache = std::numeric_limits<Time>::max();
        return;
    }
    Time min_ret = phys.weakCells.front().retention;
    if (!weakSorted) {
        for (const WeakCell &cell : phys.weakCells)
            min_ret = std::min(min_ret, cell.retention);
    }
    // Mirror effectiveRetention()'s arithmetic exactly: the scaled value
    // is monotone in the raw retention, so the weakest cell's scaled
    // retention bounds every cell's.
    minRetCache = retScale == 1.0
        ? min_ret
        : static_cast<Time>(static_cast<double>(min_ret) * retScale);
}

std::unordered_map<int, std::uint64_t> &
RowState::mutableOverrides()
{
    if (!overrides) {
        overrides =
            std::make_shared<std::unordered_map<int, std::uint64_t>>();
    } else if (overrides.use_count() > 1) {
        overrides =
            std::make_shared<std::unordered_map<int, std::uint64_t>>(
                *overrides);
        if (perf != nullptr)
            ++perf->readoutCowCopies;
    }
    return *overrides;
}

std::vector<Col> &
RowState::mutableFlips()
{
    if (!flips) {
        flips = std::make_shared<std::vector<Col>>();
    } else if (flips.use_count() > 1) {
        flips = std::make_shared<std::vector<Col>>(*flips);
        if (perf != nullptr)
            ++perf->readoutCowCopies;
    }
    return *flips;
}

bool
RowState::storedBit(Col col) const
{
    if (overrides) {
        const auto it = overrides->find(col / 64);
        if (it != overrides->end())
            return ((it->second >> (col % 64)) & 1) != 0;
    }
    return pattern.bit(patRow, col);
}

Time
RowState::effectiveRetention(const WeakCell &cell, Time now)
{
    // Injected retention scaling (VRT mode flips, temperature drift).
    // The scale-1.0 fast path keeps the unfaulted simulation bit-exact.
    const Time retention = retScale == 1.0
        ? cell.retention
        : static_cast<Time>(static_cast<double>(cell.retention) *
                            retScale);
    if (!cell.vrt)
        return retention;

    // Symmetric random-telegraph process: probability the state differs
    // after dt is (1 - exp(-2 dt / dwell)) / 2.
    const Time dt = now - lastVrtCheck;
    if (dt > 0 && vrtDwell > 0) {
        const double p_switch =
            0.5 * (1.0 -
                   std::exp(-2.0 * static_cast<double>(dt) /
                            static_cast<double>(vrtDwell)));
        if (vrtRng.chance(p_switch))
            vrtHigh = !vrtHigh;
        lastVrtCheck = now;
    }
    if (!vrtHigh)
        return retention;
    return static_cast<Time>(
        static_cast<double>(retention) * vrtHighFactor);
}

void
RowState::commitFlip(Col col)
{
    std::vector<Col> &f = mutableFlips();
    const auto it = std::lower_bound(f.begin(), f.end(), col);
    if (it == f.end() || *it != col)
        f.insert(it, col);
}

void
RowState::commitDueFlips(Time now)
{
    const Time elapsed = now - lastRestore;

    // Retention failures: a charged cell decays once elapsed exceeds its
    // (VRT-adjusted) retention time. The cells are sorted by retention,
    // so on a VRT-free row the first surviving cell ends the scan (a VRT
    // cell's retention draw is visible state and must always happen).
    for (const WeakCell &cell : phys.weakCells) {
        if (elapsed <= effectiveRetention(cell, now)) {
            if (weakSorted && !vrtRow)
                break;
            continue;
        }
        if (storedBit(cell.col) != cell.chargedValue)
            continue; // already in the discharged state
        commitFlip(cell.col);
    }

    // RowHammer failures: cells whose threshold has been crossed by the
    // accumulated disturbance charge flip. hammerCells is sorted by
    // threshold, so we stop at the first cell that survives.
    for (const HammerCell &cell : phys.hammerCells) {
        if (cell.threshold > charge)
            break;
        if (storedBit(cell.col) != cell.chargedValue)
            continue;
        commitFlip(cell.col);
    }
}

bool
RowState::canSkipCommit(Time now) const
{
    if (vrtRow || charge >= hammerFloor)
        return false;
    return now - lastRestore <= minRetCache;
}

void
RowState::restoreCharge(Time now)
{
    UTRR_ASSERT(hammerAttached || charge < phys.hammerBaseThreshold,
                "hammer cells must be attached before a restore that "
                "crosses the row's base threshold");
    if (canSkipCommit(now)) {
        if (perf != nullptr)
            ++perf->restoreFastPath;
    } else {
        if (perf != nullptr)
            ++perf->restoreSlowPath;
        commitDueFlips(now);
    }
    lastRestore = now;
    charge = 0.0;
    lastAggressor = kInvalidRow;
}

void
RowState::addDisturbance(Row aggressor_phys, double added)
{
    charge += added;
    lastAggressor = aggressor_phys;
}

void
RowState::addDisturbanceRun(Row aggressor_phys, double added, int n)
{
    // n separate additions, not one multiply: FP addition is not
    // associative and the charge must stay bit-identical to n
    // interpreter-issued addDisturbance() calls.
    double c = charge;
    for (int i = 0; i < n; ++i)
        c += added;
    charge = c;
    lastAggressor = aggressor_phys;
}

void
RowState::addDisturbanceRoundRobin(const Row *aggrs, const double *w_first,
                                   const double *w_repeat, int m,
                                   int rounds)
{
    // Live weight resolution per add: the first pass may still see a
    // pre-burst lastDisturber, and a single-aggressor victim takes the
    // repeat weight throughout — both fall out of replaying the branch
    // rather than precomputing a steady-state schedule.
    double c = charge;
    Row last = lastAggressor;
    for (int k = 0; k < rounds; ++k) {
        for (int i = 0; i < m; ++i) {
            c += last == aggrs[i] ? w_repeat[i] : w_first[i];
            last = aggrs[i];
        }
    }
    charge = c;
    lastAggressor = last;
}

void
RowState::fastForwardRestores(Time last_now, std::uint64_t n)
{
    if (perf != nullptr)
        perf->restoreFastPath += n;
    lastRestore = last_now;
    charge = 0.0;
    lastAggressor = kInvalidRow;
}

void
RowState::writePattern(const DataPattern &new_pattern, Row pattern_row,
                       Time now)
{
    pattern = new_pattern;
    patRow = pattern_row;
    overrides.reset();
    flips.reset();
    lastRestore = now;
}

void
RowState::writeWord(int word_idx, std::uint64_t value)
{
    mutableOverrides()[word_idx] = value;
    // Writing a word recharges exactly its cells: drop flips within it.
    if (!flips || flips->empty())
        return;
    const Col lo = static_cast<Col>(word_idx) * 64;
    auto first = std::lower_bound(flips->begin(), flips->end(), lo);
    if (first == flips->end() || *first >= lo + 64)
        return; // nothing to drop: leave the shared list untouched
    std::vector<Col> &f = mutableFlips();
    const auto begin = std::lower_bound(f.begin(), f.end(), lo);
    const auto end = std::lower_bound(begin, f.end(), lo + 64);
    f.erase(begin, end);
}

RowReadout
RowState::read() const
{
    if (perf != nullptr)
        ++perf->readoutShares;
    return RowReadout(pattern, patRow, overrides, flips, bits);
}

std::uint64_t
RowState::storedWord0() const
{
    if (overrides) {
        const auto it = overrides->find(0);
        if (it != overrides->end())
            return it->second;
    }
    return pattern.word(patRow, 0);
}

void
RowState::setHammerCells(std::vector<HammerCell> cells)
{
    phys.hammerCells = std::move(cells);
    hammerAttached = true;
    hammerFloor = std::numeric_limits<double>::infinity();
    for (const HammerCell &cell : phys.hammerCells)
        hammerFloor = std::min(hammerFloor, cell.threshold);
}

} // namespace utrr
