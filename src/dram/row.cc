#include "dram/row.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace utrr
{

RowReadout::RowReadout(DataPattern pattern, Row pattern_row,
                       std::unordered_map<int, std::uint64_t> overrides,
                       std::vector<Col> flips, int row_bits)
    : pattern(pattern), patternRow(pattern_row),
      overrides(std::move(overrides)), flips(std::move(flips)),
      bits(row_bits)
{
}

std::uint64_t
RowReadout::storedWord(int word_idx) const
{
    const auto it = overrides.find(word_idx);
    if (it != overrides.end())
        return it->second;
    return pattern.word(patternRow, word_idx);
}

bool
RowReadout::bit(Col col) const
{
    const std::uint64_t w = storedWord(col / 64);
    const bool stored = ((w >> (col % 64)) & 1) != 0;
    const bool is_flipped =
        std::binary_search(flips.begin(), flips.end(), col);
    return stored ^ is_flipped;
}

std::uint64_t
RowReadout::word(int word_idx) const
{
    std::uint64_t w = storedWord(word_idx);
    // Apply flips within this word.
    const Col lo = static_cast<Col>(word_idx) * 64;
    auto it = std::lower_bound(flips.begin(), flips.end(), lo);
    for (; it != flips.end() && *it < lo + 64; ++it)
        w ^= 1ULL << (*it - lo);
    return w;
}

void
RowReadout::injectFlip(Col col)
{
    UTRR_ASSERT(col >= 0 && col < bits,
                logFmt("injected flip column ", col, " out of range"));
    const auto it = std::lower_bound(flips.begin(), flips.end(), col);
    if (it != flips.end() && *it == col)
        flips.erase(it); // double fault cancels out
    else
        flips.insert(it, col);
}

std::vector<Col>
RowReadout::flipsVs(const DataPattern &expected, Row expected_row) const
{
    // Fast path: the expectation is exactly what was last written, so
    // the committed flips are the answer (modulo word overrides).
    if (overrides.empty() && expected == pattern &&
        expected_row == patternRow) {
        return flips;
    }

    std::vector<Col> result;
    for (int w = 0; w < words(); ++w) {
        const std::uint64_t diff =
            word(w) ^ expected.word(expected_row, w);
        if (diff == 0)
            continue;
        for (int b = 0; b < 64; ++b) {
            if ((diff >> b) & 1)
                result.push_back(static_cast<Col>(w) * 64 + b);
        }
    }
    return result;
}

int
RowReadout::countFlipsVs(const DataPattern &expected,
                         Row expected_row) const
{
    if (overrides.empty() && expected == pattern &&
        expected_row == patternRow) {
        return static_cast<int>(flips.size());
    }
    return static_cast<int>(flipsVs(expected, expected_row).size());
}

RowState::RowState(RowPhysics physics, Time now, Rng vrt_rng, int row_bits,
                   Time vrt_dwell, double vrt_high_factor)
    : phys(std::move(physics)), lastRestore(now), vrtRng(vrt_rng),
      lastVrtCheck(now), vrtDwell(vrt_dwell),
      vrtHighFactor(vrt_high_factor), bits(row_bits)
{
}

bool
RowState::storedBit(Col col) const
{
    const auto it = overrides.find(col / 64);
    if (it != overrides.end())
        return ((it->second >> (col % 64)) & 1) != 0;
    return pattern.bit(patRow, col);
}

Time
RowState::effectiveRetention(const WeakCell &cell, Time now)
{
    // Injected retention scaling (VRT mode flips, temperature drift).
    // The scale-1.0 fast path keeps the unfaulted simulation bit-exact.
    const Time retention = retScale == 1.0
        ? cell.retention
        : static_cast<Time>(static_cast<double>(cell.retention) *
                            retScale);
    if (!cell.vrt)
        return retention;

    // Symmetric random-telegraph process: probability the state differs
    // after dt is (1 - exp(-2 dt / dwell)) / 2.
    const Time dt = now - lastVrtCheck;
    if (dt > 0 && vrtDwell > 0) {
        const double p_switch =
            0.5 * (1.0 -
                   std::exp(-2.0 * static_cast<double>(dt) /
                            static_cast<double>(vrtDwell)));
        if (vrtRng.chance(p_switch))
            vrtHigh = !vrtHigh;
        lastVrtCheck = now;
    }
    if (!vrtHigh)
        return retention;
    return static_cast<Time>(
        static_cast<double>(retention) * vrtHighFactor);
}

void
RowState::commitDueFlips(Time now)
{
    const Time elapsed = now - lastRestore;

    // Retention failures: a charged cell decays once elapsed exceeds its
    // (VRT-adjusted) retention time.
    for (const WeakCell &cell : phys.weakCells) {
        if (elapsed <= effectiveRetention(cell, now))
            continue;
        if (storedBit(cell.col) != cell.chargedValue)
            continue; // already in the discharged state
        flipped.insert(cell.col);
    }

    // RowHammer failures: cells whose threshold has been crossed by the
    // accumulated disturbance charge flip. hammerCells is sorted by
    // threshold, so we stop at the first cell that survives.
    for (const HammerCell &cell : phys.hammerCells) {
        if (cell.threshold > charge)
            break;
        if (storedBit(cell.col) != cell.chargedValue)
            continue;
        flipped.insert(cell.col);
    }
}

void
RowState::restoreCharge(Time now)
{
    commitDueFlips(now);
    lastRestore = now;
    charge = 0.0;
    lastAggressor = kInvalidRow;
}

void
RowState::addDisturbance(Row aggressor_phys, double added)
{
    charge += added;
    lastAggressor = aggressor_phys;
}

void
RowState::writePattern(const DataPattern &new_pattern, Row pattern_row,
                       Time now)
{
    pattern = new_pattern;
    patRow = pattern_row;
    overrides.clear();
    flipped.clear();
    lastRestore = now;
}

void
RowState::writeWord(int word_idx, std::uint64_t value)
{
    overrides[word_idx] = value;
    // Writing a word recharges exactly its cells: drop flips within it.
    const Col lo = static_cast<Col>(word_idx) * 64;
    auto it = flipped.lower_bound(lo);
    while (it != flipped.end() && *it < lo + 64)
        it = flipped.erase(it);
}

RowReadout
RowState::read() const
{
    std::vector<Col> flips(flipped.begin(), flipped.end());
    return RowReadout(pattern, patRow, overrides, std::move(flips), bits);
}

std::uint64_t
RowState::storedWord0() const
{
    const auto it = overrides.find(0);
    if (it != overrides.end())
        return it->second;
    return pattern.word(patRow, 0);
}

void
RowState::setHammerCells(std::vector<HammerCell> cells)
{
    phys.hammerCells = std::move(cells);
}

} // namespace utrr
