/**
 * @file
 * Cell-level physical models: data retention (including VRT) and
 * RowHammer charge disturbance.
 *
 * These models are the substitute for real DDR4 silicon (see DESIGN.md).
 * They reproduce the behaviours U-TRR exploits:
 *
 *  - every row retains data for a row-specific time once refreshes stop;
 *    a small fraction of rows are "retention-weak" (hundreds of ms),
 *    which is what Row Scout hunts for;
 *  - some weak cells exhibit Variable Retention Time (VRT): their
 *    retention toggles between a low and a high state, defeating naive
 *    profiling — Row Scout's 1000x validation must filter them out;
 *  - activating a row disturbs physically adjacent rows; enough
 *    disturbance charge flips cells. Each row has a distribution of
 *    vulnerable cells; the weakest one defines the row's HC_first.
 *    Alternating between two aggressors pumps more charge per ACT than
 *    re-activating the same aggressor, making interleaved double-sided
 *    hammering emergently stronger than cascaded hammering (§5.2).
 */

#ifndef UTRR_DRAM_PHYSICS_HH
#define UTRR_DRAM_PHYSICS_HH

#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace utrr
{

/**
 * Configuration of the retention-failure model.
 */
struct RetentionModelConfig
{
    /**
     * Fraction of rows whose weakest cell fails within a few seconds at
     * the reference temperature (85 C). Retention-weak rows are common
     * at high temperature; Row Scout needs enough of them to assemble
     * multi-row groups such as RRR-RRR (paper §4.1).
     */
    double weakRowFraction = 0.62;
    /** Weak-row retention: lognormal median (ms) and sigma. */
    double weakRetMedianMs = 450.0;
    double weakRetSigma = 0.6;
    /** Clamp range (ms) for weak-row retention. */
    double weakRetMinMs = 110.0;
    double weakRetMaxMs = 2'500.0;
    /** Strong-row retention range (ms), uniform. */
    double strongRetMinMs = 4'000.0;
    double strongRetMaxMs = 60'000.0;
    /** Maximum number of failing cells per weak row. */
    int maxWeakCellsPerRow = 4;
    /** Additional weak cells fall in [T, T*(1+spread)]. */
    double weakCellSpread = 0.9;
    /** Fraction of weak rows containing a VRT cell. */
    double vrtRowFraction = 0.06;
    /** High-state retention multiplier for VRT cells. */
    double vrtHighFactor = 3.0;
    /** Mean dwell time in each VRT state (ms). */
    double vrtDwellMs = 4'000.0;
    /** Operating temperature; retention halves every +10 C. */
    double tempCelsius = 85.0;
    /** Reference temperature of the ranges above. */
    double refTempCelsius = 85.0;

    /** Retention scale factor for the configured temperature. */
    double tempScale() const;
};

/**
 * Configuration of the RowHammer disturbance model.
 *
 * Charge is measured in "units": one unit is the disturbance a victim
 * receives from one ACT of an immediately adjacent aggressor when the
 * previous disturbance came from a different row (alternating pattern).
 * HC_first counts per-aggressor ACTs of an interleaved double-sided
 * attack, so the weakest cell of the module's weakest row has a
 * threshold of 2 * hcFirst units.
 */
struct HammerModelConfig
{
    /** Module-level HC_first (Table 1 column). */
    double hcFirst = 15'000.0;
    /** Lognormal sigma of the per-row base threshold above hcFirst. */
    double rowSigma = 0.45;
    /** Number of hammer-vulnerable cells modelled per row. */
    int cellsPerRow = 192;
    /** Strongest modelled cell threshold = base * (1 + cellSpreadMax). */
    double cellSpreadMax = 9.0;
    /** Disturbance weight of a distance-2 aggressor. */
    double distance2Weight = 0.05;
    /**
     * Weight of an ACT whose previous disturber was the same row.
     * Makes alternating (interleaved double-sided) hammering stronger
     * than back-to-back re-activation, and single-sided hammering
     * ~4x weaker than interleaved double-sided per aggressor ACT.
     */
    double repeatWeight = 0.5;
    /** Weight factor when aggressor and victim store the same data. */
    double sameDataWeight = 0.6;
    /**
     * Paired-row organization (vendor C modules C0-8, Observation C3):
     * row R only disturbs its pair row R^1, and vice versa.
     */
    bool paired = false;
};

/**
 * A retention-weak cell within a row.
 */
struct WeakCell
{
    Col col = 0;
    /** Low-state retention time (ns) at operating temperature. */
    Time retention = 0;
    /** The data value this cell holds charge for; it decays to !charged. */
    bool chargedValue = true;
    /** Whether the cell exhibits VRT. */
    bool vrt = false;
};

/**
 * A RowHammer-vulnerable cell within a row.
 */
struct HammerCell
{
    /** Charge units required to flip this cell. */
    double threshold = 0.0;
    Col col = 0;
    /** The value the cell flips away from. */
    bool chargedValue = true;
};

/**
 * Immutable physical description of one row, generated deterministically
 * from (module seed, bank, physical row).
 */
struct RowPhysics
{
    /** Weak cells sorted by ascending retention. */
    std::vector<WeakCell> weakCells;
    /** Hammer cells sorted by ascending threshold. */
    std::vector<HammerCell> hammerCells;

    /**
     * Strict lower bound on every hammer-cell threshold of this row,
     * known without generating the cells themselves (it is the per-row
     * base threshold; cells spread upward from it). The bank defers
     * hammer-cell generation until a row's accumulated charge reaches
     * this bound, which keeps lightly-disturbed rows (every neighbour
     * of a scanned row) free of the ~cellsPerRow generation cost.
     * +inf for hand-built physics that never attach hammer cells.
     */
    double hammerBaseThreshold =
        std::numeric_limits<double>::infinity();

    /** Retention of the weakest (non-VRT-adjusted) cell; 0 if none. */
    Time minRetention() const
    {
        return weakCells.empty() ? 0 : weakCells.front().retention;
    }

    /** Threshold of the weakest hammer cell (+inf if none modelled). */
    double minHammerThreshold() const;
};

/**
 * Generates per-row physics on demand.
 */
class PhysicsGenerator
{
  public:
    PhysicsGenerator(RetentionModelConfig ret_cfg,
                     HammerModelConfig ham_cfg, std::uint64_t module_seed,
                     int row_bits);

    /** Deterministically generate the physics of one physical row. */
    RowPhysics generate(Bank bank, Row phys_row) const;

    /** Generate only the retention part (cheaper; used by tests). */
    RowPhysics generateRetention(Bank bank, Row phys_row) const;

    const RetentionModelConfig &retentionConfig() const { return retCfg; }
    const HammerModelConfig &hammerConfig() const { return hamCfg; }
    int rowBits() const { return bits; }

  private:
    void fillRetention(RowPhysics &phys, Rng &rng) const;
    double drawHammerBase(Rng &rng) const;
    void fillHammer(RowPhysics &phys, Rng &rng, double base) const;

    Rng rowRng(Bank bank, Row phys_row) const;

    RetentionModelConfig retCfg;
    HammerModelConfig hamCfg;
    std::uint64_t seed;
    int bits;
};

} // namespace utrr

#endif // UTRR_DRAM_PHYSICS_HH
