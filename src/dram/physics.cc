#include "dram/physics.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace utrr
{

double
RetentionModelConfig::tempScale() const
{
    // Retention roughly halves for every +10 C.
    return std::pow(2.0, (refTempCelsius - tempCelsius) / 10.0);
}

double
RowPhysics::minHammerThreshold() const
{
    if (hammerCells.empty())
        return std::numeric_limits<double>::infinity();
    return hammerCells.front().threshold;
}

PhysicsGenerator::PhysicsGenerator(RetentionModelConfig ret_cfg,
                                   HammerModelConfig ham_cfg,
                                   std::uint64_t module_seed, int row_bits)
    : retCfg(ret_cfg), hamCfg(ham_cfg), seed(module_seed), bits(row_bits)
{
    UTRR_ASSERT(bits > 0 && bits % 64 == 0, "row bits must be 64-aligned");
}

Rng
PhysicsGenerator::rowRng(Bank bank, Row phys_row) const
{
    const std::uint64_t stream =
        (static_cast<std::uint64_t>(bank) << 40) ^
        static_cast<std::uint64_t>(phys_row);
    return Rng(hashMix(seed ^ hashMix(stream)));
}

void
PhysicsGenerator::fillRetention(RowPhysics &phys, Rng &rng) const
{
    const double scale = retCfg.tempScale();
    const bool weak = rng.chance(retCfg.weakRowFraction);

    double base_ms;
    int cells;
    if (weak) {
        base_ms = std::clamp(
            retCfg.weakRetMedianMs *
                rng.logNormal(0.0, retCfg.weakRetSigma),
            retCfg.weakRetMinMs, retCfg.weakRetMaxMs);
        cells = static_cast<int>(
            rng.uniformInt(1, std::max(1, retCfg.maxWeakCellsPerRow)));
    } else {
        base_ms =
            rng.uniformReal(retCfg.strongRetMinMs, retCfg.strongRetMaxMs);
        cells = 1;
    }

    const bool has_vrt = weak && rng.chance(retCfg.vrtRowFraction);

    phys.weakCells.reserve(static_cast<std::size_t>(cells));
    for (int i = 0; i < cells; ++i) {
        WeakCell cell;
        cell.col = static_cast<Col>(rng.uniformInt(0, bits - 1));
        const double ms = i == 0
            ? base_ms
            : base_ms * (1.0 + retCfg.weakCellSpread * rng.uniform());
        cell.retention = msToNs(ms * scale);
        cell.chargedValue = rng.chance(0.5);
        // If the row has a VRT cell, it is the weakest one: that is the
        // case Row Scout's consistency check must catch.
        cell.vrt = has_vrt && i == 0;
        phys.weakCells.push_back(cell);
    }
    std::sort(phys.weakCells.begin(), phys.weakCells.end(),
              [](const WeakCell &a, const WeakCell &b) {
                  return a.retention < b.retention;
              });
}

double
PhysicsGenerator::drawHammerBase(Rng &rng) const
{
    // Per-row base threshold: the module's weakest rows flip at
    // HC_first per-aggressor ACTs of interleaved double-sided
    // hammering. With normal coupling the victim collects 2 units per
    // hammer pair (one from each side); in the paired organization it
    // couples to a single aggressor whose repeated ACTs carry the
    // repeat-discounted weight, so HC_first hammers deliver
    // ~0.5 * HC_first units.
    //
    // This single draw sits between the retention draws and the
    // hammer-cell draws, so generate() and generateRetention() consume
    // identical RNG prefixes and lazy hammer-cell attachment stays
    // bit-identical to eager generation.
    const double hc_units =
        (hamCfg.paired ? hamCfg.repeatWeight : 2.0) * hamCfg.hcFirst;
    return hc_units * (1.0 + std::abs(rng.gaussian(0.0, hamCfg.rowSigma)));
}

void
PhysicsGenerator::fillHammer(RowPhysics &phys, Rng &rng, double base) const
{
    // Hammer-vulnerable cells cluster in a limited set of words: the
    // paper observes up to 7 RowHammer bit flips within a single
    // 8-byte dataword (§7.4), which requires spatial locality of the
    // vulnerable cells.
    const int word_pool_size =
        std::max(1, hamCfg.cellsPerRow / 4);
    std::vector<int> word_pool;
    word_pool.reserve(static_cast<std::size_t>(word_pool_size));
    for (int i = 0; i < word_pool_size; ++i) {
        word_pool.push_back(
            static_cast<int>(rng.uniformInt(0, bits / 64 - 1)));
    }

    phys.hammerCells.reserve(static_cast<std::size_t>(hamCfg.cellsPerRow));
    for (int i = 0; i < hamCfg.cellsPerRow; ++i) {
        HammerCell cell;
        // Spread cell thresholds from the row base upward so that the
        // number of flips grows as accumulated charge exceeds the base.
        const double frac =
            static_cast<double>(i) /
            std::max(1, hamCfg.cellsPerRow - 1);
        const double jitter = 1.0 + 0.1 * rng.uniform();
        cell.threshold =
            base * (1.0 + hamCfg.cellSpreadMax * frac * frac) * jitter;
        const int word = word_pool[static_cast<std::size_t>(
            rng.uniformInt(0, word_pool_size - 1))];
        cell.col = static_cast<Col>(word) * 64 +
            static_cast<Col>(rng.uniformInt(0, 63));
        cell.chargedValue = rng.chance(0.5);
        phys.hammerCells.push_back(cell);
    }
    std::sort(phys.hammerCells.begin(), phys.hammerCells.end(),
              [](const HammerCell &a, const HammerCell &b) {
                  return a.threshold < b.threshold;
              });
}

RowPhysics
PhysicsGenerator::generate(Bank bank, Row phys_row) const
{
    RowPhysics phys;
    Rng rng = rowRng(bank, phys_row);
    fillRetention(phys, rng);
    phys.hammerBaseThreshold = drawHammerBase(rng);
    fillHammer(phys, rng, phys.hammerBaseThreshold);
    return phys;
}

RowPhysics
PhysicsGenerator::generateRetention(Bank bank, Row phys_row) const
{
    RowPhysics phys;
    Rng rng = rowRng(bank, phys_row);
    fillRetention(phys, rng);
    phys.hammerBaseThreshold = drawHammerBase(rng);
    return phys;
}

} // namespace utrr
