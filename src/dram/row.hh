/**
 * @file
 * Per-row DRAM state: stored data, committed bit flips, charge bookkeeping.
 *
 * A row's contents are represented sparsely: a whole-row DataPattern (what
 * was last written), optional per-word overrides, and the set of columns
 * whose cells have lost their charge ("committed flips"). Charge
 * bookkeeping follows real DRAM behaviour:
 *
 *  - ACT / REF restores the charge of all cells of the row, but a cell
 *    that has *already* decayed past its retention time (or flipped due
 *    to hammering) is sensed wrong and the wrong value is restored — the
 *    flip is committed until the row is rewritten;
 *  - between restores, retention flips become due once
 *    `now - lastRefresh` exceeds a cell's (VRT-state-dependent) retention
 *    time, and hammer flips become due once accumulated disturbance
 *    charge exceeds a cell's threshold.
 */

#ifndef UTRR_DRAM_ROW_HH
#define UTRR_DRAM_ROW_HH

#include <cstdint>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "dram/data_pattern.hh"
#include "dram/physics.hh"

namespace utrr
{

/**
 * Snapshot of a row's contents as seen by a READ burst.
 */
class RowReadout
{
  public:
    /** Empty readout (zero-sized row); useful as a placeholder. */
    RowReadout() = default;

    RowReadout(DataPattern pattern, Row pattern_row,
               std::unordered_map<int, std::uint64_t> overrides,
               std::vector<Col> flips, int row_bits);

    /** Value of bit @p col. */
    bool bit(Col col) const;

    /** 64-bit word @p word_idx. */
    std::uint64_t word(int word_idx) const;

    /** Number of 64-bit words in the row. */
    int words() const { return bits / 64; }

    /**
     * Columns whose value differs from @p expected (evaluated at row
     * address @p expected_row). Fast path when the expectation matches
     * what was last written.
     */
    std::vector<Col> flipsVs(const DataPattern &expected,
                             Row expected_row) const;

    /** Convenience: number of differing bits vs @p expected. */
    int countFlipsVs(const DataPattern &expected, Row expected_row) const;

    /** Columns currently flipped relative to the last written data. */
    const std::vector<Col> &rawFlips() const { return flips; }

    /**
     * Fault-injection hook: toggle one bit of this readout in place
     * (models a transient read-back corruption on the bus, not a change
     * to the stored row).
     */
    void injectFlip(Col col);

  private:
    std::uint64_t storedWord(int word_idx) const;

    DataPattern pattern{};
    Row patternRow = 0;
    std::unordered_map<int, std::uint64_t> overrides;
    std::vector<Col> flips;
    int bits = 0;
};

/**
 * Mutable state of one physical DRAM row.
 */
class RowState
{
  public:
    /**
     * @param physics immutable retention physics of the row
     * @param now creation time; the row counts as freshly refreshed
     * @param vrt_rng per-row RNG stream driving VRT state switches
     * @param row_bits bits per row
     * @param vrt_dwell mean dwell time (ns) per VRT state
     * @param vrt_high_factor retention multiplier in the VRT high state
     */
    RowState(RowPhysics physics, Time now, Rng vrt_rng, int row_bits,
             Time vrt_dwell, double vrt_high_factor);

    /** Restore charge (ACT or REF): commit due flips, reset charge. */
    void restoreCharge(Time now);

    /** Record disturbance from an aggressor ACT. */
    void addDisturbance(Row aggressor_phys, double charge);

    /** Overwrite the whole row with a pattern (WR burst sequence). */
    void writePattern(const DataPattern &pattern, Row pattern_row,
                      Time now);

    /** Overwrite one 64-bit word. */
    void writeWord(int word_idx, std::uint64_t value);

    /** Read the row's current contents. Only valid right after ACT. */
    RowReadout read() const;

    /** The pattern last written (defaults to all-zeros). */
    const DataPattern &storedPattern() const { return pattern; }

    /** Row address the pattern was evaluated at. */
    Row patternRow() const { return patRow; }

    /** First stored word; used for cheap aggressor-data coupling. */
    std::uint64_t storedWord0() const;

    /** Accumulated, uncommitted disturbance charge (units). */
    double hammerCharge() const { return charge; }

    /** Physical row of the last aggressor that disturbed this row. */
    Row lastDisturber() const { return lastAggressor; }

    /** Time of last charge restore. */
    Time lastRefresh() const { return lastRestore; }

    /** Lazily attach hammer cells (generated on first disturbance). */
    bool hasHammerCells() const { return !phys.hammerCells.empty(); }
    void setHammerCells(std::vector<HammerCell> cells);

    /** The row's physics (read-only). */
    const RowPhysics &physics() const { return phys; }

    /**
     * Fault-injection hook: scale the effective retention of every weak
     * cell in this row (1.0 = nominal). A mid-experiment VRT mode flip
     * multiplies by the VRT high factor (or its inverse); temperature
     * drift walks the scale of all rows together. Exactly 1.0 is
     * guaranteed bit-identical to the unscaled physics.
     */
    void scaleRetention(double factor) { retScale *= factor; }
    void setRetentionScale(double scale) { retScale = scale; }
    double retentionScale() const { return retScale; }

    /** Number of committed flips. */
    std::size_t committedFlipCount() const { return flipped.size(); }

  private:
    bool storedBit(Col col) const;
    Time effectiveRetention(const WeakCell &cell, Time now);
    void commitDueFlips(Time now);

    RowPhysics phys;
    DataPattern pattern = DataPattern::allZeros();
    Row patRow = 0;
    std::unordered_map<int, std::uint64_t> overrides;
    std::set<Col> flipped;
    Time lastRestore;
    double charge = 0.0;
    Row lastAggressor = kInvalidRow;
    Rng vrtRng;
    bool vrtHigh = false;
    Time lastVrtCheck;
    Time vrtDwell;
    double vrtHighFactor;
    double retScale = 1.0;
    int bits;
};

} // namespace utrr

#endif // UTRR_DRAM_ROW_HH
