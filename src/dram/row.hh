/**
 * @file
 * Per-row DRAM state: stored data, committed bit flips, charge bookkeeping.
 *
 * A row's contents are represented sparsely: a whole-row DataPattern (what
 * was last written), optional per-word overrides, and the set of columns
 * whose cells have lost their charge ("committed flips"). Charge
 * bookkeeping follows real DRAM behaviour:
 *
 *  - ACT / REF restores the charge of all cells of the row, but a cell
 *    that has *already* decayed past its retention time (or flipped due
 *    to hammering) is sensed wrong and the wrong value is restored — the
 *    flip is committed until the row is rewritten;
 *  - between restores, retention flips become due once
 *    `now - lastRefresh` exceeds a cell's (VRT-state-dependent) retention
 *    time, and hammer flips become due once accumulated disturbance
 *    charge exceeds a cell's threshold.
 *
 * Two hot-path optimizations keep this cheap without changing semantics:
 *
 *  - restoreCharge() skips the cell scan entirely when the elapsed time
 *    is within the row's cached minimum effective retention and the
 *    accumulated charge is below the row's hammer floor. VRT rows never
 *    take the fast path (their telegraph RNG draws are visible state);
 *    retention scaling recomputes the cache.
 *  - read() returns a RowReadout that *shares* the overrides map and
 *    flip list with the row (copy-on-write at every mutation point), so
 *    a RD is O(1) instead of copying both containers.
 */

#ifndef UTRR_DRAM_ROW_HH
#define UTRR_DRAM_ROW_HH

#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "dram/data_pattern.hh"
#include "dram/physics.hh"

namespace utrr
{

/**
 * Always-on tallies of the row-state fast paths (one per bank, see
 * DramBank). Plain integers bumped through a pointer — deterministic,
 * cheap enough to leave enabled unconditionally — published into the
 * metrics registry as dram.restore.*, dram.hammer_cell_attaches and
 * dram.readout.cow_* so a regression in the PR 5 invariants (fast-path
 * hit rate collapsing, COW clones exploding) shows up as numbers
 * instead of silent slowdown.
 */
struct RowPerfCounters
{
    /** restoreCharge() calls that skipped the cell scan entirely. */
    std::uint64_t restoreFastPath = 0;
    /** restoreCharge() calls that ran commitDueFlips(). */
    std::uint64_t restoreSlowPath = 0;
    /** Lazy hammer-cell generations (the deferred cold path). */
    std::uint64_t hammerCellAttaches = 0;
    /** Copy-on-write clones forced by a live shared readout. */
    std::uint64_t readoutCowCopies = 0;
    /** Readouts served zero-copy by sharing the row's containers. */
    std::uint64_t readoutShares = 0;
};

/**
 * Snapshot of a row's contents as seen by a READ burst.
 *
 * The snapshot shares immutable state with the RowState it came from:
 * both containers are held behind shared_ptr-to-const (null meaning
 * empty) and the row copies-on-write before mutating, so the readout
 * stays a stable snapshot at zero copy cost.
 */
class RowReadout
{
  public:
    /** Empty readout (zero-sized row); useful as a placeholder. */
    RowReadout() = default;

    RowReadout(
        DataPattern pattern, Row pattern_row,
        std::shared_ptr<const std::unordered_map<int, std::uint64_t>>
            overrides,
        std::shared_ptr<const std::vector<Col>> flips, int row_bits);

    /** Value of bit @p col. */
    bool bit(Col col) const;

    /** 64-bit word @p word_idx. */
    std::uint64_t word(int word_idx) const;

    /** Number of whole 64-bit words in the row. */
    int words() const { return bits / 64; }

    /** Total number of bits in the row (may not be word-aligned). */
    int rowBits() const { return bits; }

    /**
     * Columns whose value differs from @p expected (evaluated at row
     * address @p expected_row). Fast path when the expectation matches
     * what was last written.
     */
    std::vector<Col> flipsVs(const DataPattern &expected,
                             Row expected_row) const;

    /** Convenience: number of differing bits vs @p expected. */
    int countFlipsVs(const DataPattern &expected, Row expected_row) const;

    /** Columns currently flipped relative to the last written data. */
    const std::vector<Col> &rawFlips() const;

    /**
     * Fault-injection hook: toggle one bit of this readout in place
     * (models a transient read-back corruption on the bus, not a change
     * to the stored row). Copies-on-write, so the originating row is
     * untouched.
     */
    void injectFlip(Col col);

  private:
    std::uint64_t storedWord(int word_idx) const;
    bool hasOverrides() const { return overrides && !overrides->empty(); }

    DataPattern pattern{};
    Row patternRow = 0;
    std::shared_ptr<const std::unordered_map<int, std::uint64_t>> overrides;
    std::shared_ptr<const std::vector<Col>> flips;
    int bits = 0;
};

/**
 * Word-at-a-time readback diff: XOR each 64-bit word of @p readout
 * against @p expected (evaluated at @p expected_row) and extract
 * differing columns with ctz instead of probing all 64 bit positions.
 * A non-word-aligned tail is masked and compared too. Shared by
 * RowReadout::flipsVs and every readback-scanning caller (RowScout,
 * TRR analyzer, attack evaluator).
 */
std::vector<Col> diffReadout(const RowReadout &readout,
                             const DataPattern &expected, Row expected_row);

/** Popcount-only variant: the number of differing bits, no column list. */
int diffReadoutCount(const RowReadout &readout, const DataPattern &expected,
                     Row expected_row);

/**
 * Mutable state of one physical DRAM row.
 */
class RowState
{
  public:
    /**
     * @param physics immutable retention physics of the row
     * @param now creation time; the row counts as freshly refreshed
     * @param vrt_rng per-row RNG stream driving VRT state switches
     * @param row_bits bits per row
     * @param vrt_dwell mean dwell time (ns) per VRT state
     * @param vrt_high_factor retention multiplier in the VRT high state
     */
    RowState(RowPhysics physics, Time now, Rng vrt_rng, int row_bits,
             Time vrt_dwell, double vrt_high_factor);

    /** Restore charge (ACT or REF): commit due flips, reset charge. */
    void restoreCharge(Time now);

    /** Record disturbance from an aggressor ACT. */
    void addDisturbance(Row aggressor_phys, double charge);

    /**
     * Batched equivalent of @p n consecutive
     * addDisturbance(@p aggressor_phys, @p added) calls. Performs n
     * separate floating-point additions so the accumulation order — and
     * therefore the resulting charge, bit for bit — matches n
     * interpreter-issued ACTs.
     */
    void addDisturbanceRun(Row aggressor_phys, double added, int n);

    /**
     * Batched equivalent of @p rounds round-robin passes over @p m
     * disturbing aggressors: the add sequence aggrs[0], aggrs[1], ...,
     * aggrs[m-1] repeated @p rounds times. Each add resolves the
     * repeat-vs-first weight from the row's live lastDisturber — and
     * performs one separate floating-point addition — exactly as the
     * matching interpreter-issued addDisturbance() calls would.
     */
    void addDisturbanceRoundRobin(const Row *aggrs, const double *w_first,
                                  const double *w_repeat, int m,
                                  int rounds);

    /**
     * True when restoreCharge() called with a gap of @p gap ns from the
     * row's current (zero-charge) state is guaranteed to take the
     * fast path — i.e. a uniform train of restores @p gap apart can be
     * fast-forwarded without any per-call check. VRT rows never qualify
     * (their telegraph RNG draws are visible state).
     */
    bool restoresFastForwardable(Time gap) const
    {
        return !vrtRow && charge < hammerFloor && gap <= minRetCache;
    }

    /**
     * Variant for restores with disturbance landing in between: true
     * when every restore of a uniform train @p gap apart is guaranteed
     * the fast path even if the row accrues up to @p charge_bound extra
     * charge between consecutive restores (each restore wipes the
     * accrual, so the pre-restore charge never exceeds the current
     * charge plus @p charge_bound).
     */
    bool restoresFastForwardable(Time gap, double charge_bound) const
    {
        return !vrtRow && charge + charge_bound < hammerFloor &&
            gap <= minRetCache;
    }

    /**
     * Batched equivalent of @p n consecutive fast-path restoreCharge()
     * calls, the last one at @p last_now. The caller must have verified
     * restoresFastForwardable() for the uniform step, and that no
     * disturbance lands on this row between the restores.
     */
    void fastForwardRestores(Time last_now, std::uint64_t n);

    /** Overwrite the whole row with a pattern (WR burst sequence). */
    void writePattern(const DataPattern &pattern, Row pattern_row,
                      Time now);

    /** Overwrite one 64-bit word. */
    void writeWord(int word_idx, std::uint64_t value);

    /** Read the row's current contents. Only valid right after ACT. */
    RowReadout read() const;

    /** The pattern last written (defaults to all-zeros). */
    const DataPattern &storedPattern() const { return pattern; }

    /** Row address the pattern was evaluated at. */
    Row patternRow() const { return patRow; }

    /** First stored word; used for cheap aggressor-data coupling. */
    std::uint64_t storedWord0() const;

    /** Accumulated, uncommitted disturbance charge (units). */
    double hammerCharge() const { return charge; }

    /** Physical row of the last aggressor that disturbed this row. */
    Row lastDisturber() const { return lastAggressor; }

    /** Time of last charge restore. */
    Time lastRefresh() const { return lastRestore; }

    /** Lazily attach hammer cells (generated on first threshold risk). */
    bool hasHammerCells() const { return !phys.hammerCells.empty(); }
    void setHammerCells(std::vector<HammerCell> cells);

    /**
     * True when the accumulated charge has reached the row's hammer
     * base threshold but the hammer cell list has not been generated
     * yet. The bank must attach the cells (one generate() call) before
     * the next restore so the due flips can commit.
     */
    bool needsHammerCells() const
    {
        return !hammerAttached && charge >= phys.hammerBaseThreshold;
    }

    /** The row's physics (read-only). */
    const RowPhysics &physics() const { return phys; }

    /**
     * Fault-injection hook: scale the effective retention of every weak
     * cell in this row (1.0 = nominal). A mid-experiment VRT mode flip
     * multiplies by the VRT high factor (or its inverse); temperature
     * drift walks the scale of all rows together. Exactly 1.0 is
     * guaranteed bit-identical to the unscaled physics. Invalidates the
     * fast-path minimum-retention cache.
     */
    void scaleRetention(double factor)
    {
        retScale *= factor;
        refreshMinRetention();
    }
    void setRetentionScale(double scale)
    {
        retScale = scale;
        refreshMinRetention();
    }
    double retentionScale() const { return retScale; }

    /** Number of committed flips. */
    std::size_t committedFlipCount() const
    {
        return flips ? flips->size() : 0;
    }

    /** Attach the owning bank's fast-path tallies (nullptr detaches). */
    void attachPerf(RowPerfCounters *counters) { perf = counters; }

  private:
    bool storedBit(Col col) const;
    Time effectiveRetention(const WeakCell &cell, Time now);
    void commitDueFlips(Time now);
    void commitFlip(Col col);
    bool canSkipCommit(Time now) const;
    void refreshMinRetention();

    /** Copy-on-write accessors: clone when a readout shares the state. */
    std::unordered_map<int, std::uint64_t> &mutableOverrides();
    std::vector<Col> &mutableFlips();

    RowPhysics phys;
    DataPattern pattern = DataPattern::allZeros();
    Row patRow = 0;
    /** Null means empty; shared with readouts, copy-on-write. */
    std::shared_ptr<std::unordered_map<int, std::uint64_t>> overrides;
    /** Sorted columns; null means empty; shared, copy-on-write. */
    std::shared_ptr<std::vector<Col>> flips;
    Time lastRestore;
    double charge = 0.0;
    Row lastAggressor = kInvalidRow;
    Rng vrtRng;
    bool vrtHigh = false;
    Time lastVrtCheck;
    Time vrtDwell;
    double vrtHighFactor;
    double retScale = 1.0;
    int bits;
    /** Owning bank's fast-path tallies (not owned; may be null). */
    RowPerfCounters *perf = nullptr;

    // --- restoreCharge fast-path cache ---
    /** Scaled retention of the weakest cell (Time max if none). */
    Time minRetCache = std::numeric_limits<Time>::max();
    /** Minimum hammer threshold to worry about: generated cells' floor
     *  once attached, else the physics' base-threshold lower bound. */
    double hammerFloor = std::numeric_limits<double>::infinity();
    /** Any VRT cell forces the slow path (telegraph draws are state). */
    bool vrtRow = false;
    /** weakCells verified sorted: slow path may stop at first survivor. */
    bool weakSorted = true;
    /** Hammer cells generated (or supplied at construction). */
    bool hammerAttached = false;
};

} // namespace utrr

#endif // UTRR_DRAM_ROW_HH
