#include "dram/module.hh"

#include <sstream>

#include "common/logging.hh"
#include "obs/profiler.hh"

namespace utrr
{

DramModule::DramModule(ModuleSpec spec, std::uint64_t seed,
                       const RetentionModelConfig *retention_overrides)
    : moduleSpec(std::move(spec)),
      engine(moduleSpec.physRowsPerBank(), moduleSpec.refreshPeriodRefs),
      masterSeed(seed)
{
    RetentionModelConfig ret_cfg;
    if (retention_overrides != nullptr)
        ret_cfg = *retention_overrides;

    HammerModelConfig ham_cfg;
    ham_cfg.hcFirst = moduleSpec.hcFirst;
    ham_cfg.rowSigma = moduleSpec.hcRowSigma;
    ham_cfg.paired = moduleSpec.paired();

    gen = std::make_unique<PhysicsGenerator>(ret_cfg, ham_cfg, seed,
                                             moduleSpec.rowBits);

    Rng map_rng(hashMix(seed ^ 0xdeadbeefULL));
    banks.reserve(static_cast<std::size_t>(moduleSpec.banks));
    mappings.reserve(static_cast<std::size_t>(moduleSpec.banks));
    for (Bank b = 0; b < moduleSpec.banks; ++b) {
        banks.emplace_back(b, moduleSpec.physRowsPerBank(), gen.get());
        mappings.emplace_back(moduleSpec.scramble, moduleSpec.rowsPerBank,
                              moduleSpec.remapsPerBank,
                              map_rng.fork(static_cast<std::uint64_t>(b)));
        openLogical.push_back(kInvalidRow);
    }

    trr = makeTrr(moduleSpec.trr, moduleSpec.banks,
                  hashMix(seed ^ 0x7272ULL));
    trr->attachGroundTruth(&gtStore);
    gtTrrEvents = &gtStore.counter("chip.trr_events");
    gtTrrVictims = &gtStore.counter("chip.trr_victim_refreshes");
}

DramBank &
DramModule::bankAt(Bank bank)
{
    UTRR_ASSERT(bank >= 0 && bank < moduleSpec.banks,
                logFmt("bank ", bank, " out of range"));
    return banks[static_cast<std::size_t>(bank)];
}

const DramBank &
DramModule::bankAt(Bank bank) const
{
    UTRR_ASSERT(bank >= 0 && bank < moduleSpec.banks,
                logFmt("bank ", bank, " out of range"));
    return banks[static_cast<std::size_t>(bank)];
}

const RowMapping &
DramModule::mapping(Bank bank) const
{
    UTRR_ASSERT(bank >= 0 && bank < moduleSpec.banks,
                logFmt("bank ", bank, " out of range"));
    return mappings[static_cast<std::size_t>(bank)];
}

Row
DramModule::toPhysical(Bank bank, Row logical_row) const
{
    return mapping(bank).toPhysical(logical_row);
}

Row
DramModule::toLogical(Bank bank, Row phys_row) const
{
    return mapping(bank).toLogical(phys_row);
}

void
DramModule::act(Bank bank, Row logical_row, Time now)
{
    const Row phys = toPhysical(bank, logical_row);
    bankAt(bank).activate(phys, now);
    openLogical[static_cast<std::size_t>(bank)] = logical_row;
    trr->onActivate(bank, phys);
    if (ctrActs != nullptr) {
        ctrActs->inc();
        ctrBankActs[static_cast<std::size_t>(bank)]->inc();
    }
}

void
DramModule::actBurst(Bank bank, Row logical_row, int count, Time start,
                     Time cycle)
{
    const Row phys = toPhysical(bank, logical_row);
    bankAt(bank).applyActivationBurst(phys, count, start, cycle);
    // Each fused cycle opens and immediately closes the row, so the
    // open-row register ends (and stays) invalid.
    openLogical[static_cast<std::size_t>(bank)] = kInvalidRow;
    trr->onActivateBurst(bank, phys, count);
    if (ctrActs != nullptr) {
        ctrActs->inc(static_cast<std::uint64_t>(count));
        ctrBankActs[static_cast<std::size_t>(bank)]->inc(
            static_cast<std::uint64_t>(count));
    }
}

void
DramModule::actBurstPlanned(const ActPlan &plan, int count, Time start,
                            Time cycle)
{
    plan.bankPtr->applyActivationBurstPlanned(plan.bankPlan, count,
                                              start, cycle);
    openLogical[static_cast<std::size_t>(plan.bank)] = kInvalidRow;
    trr->onActivateBurst(plan.bank, plan.phys, count);
    if (ctrActs != nullptr) {
        ctrActs->inc(static_cast<std::uint64_t>(count));
        ctrBankActs[static_cast<std::size_t>(plan.bank)]->inc(
            static_cast<std::uint64_t>(count));
    }
}

DramModule::ActPlan
DramModule::buildActPlan(Bank bank, Row logical_row, Time now)
{
    ActPlan plan;
    plan.bank = bank;
    plan.phys = toPhysical(bank, logical_row);
    plan.bankPtr = &bankAt(bank);
    plan.bankPlan = plan.bankPtr->buildActPlan(plan.phys, now);
    return plan;
}

bool
DramModule::actInterleavedBurst(const ActPlan *plans, int n, int rounds,
                                Time start, Time stride)
{
    if (n <= 0 || n > DramBank::kMaxInterleavedFold || rounds <= 0)
        return false;
    // Group the plans per bank (preserving global round order — the
    // within-bank subsequence keeps every victim's contributor order
    // and the earlier/later-in-round aggressor relation intact), and
    // verify eligibility for every bank before anything mutates. All
    // scratch is stack-allocated: the fold's win over the per-cycle
    // loop would drown in per-call heap traffic otherwise.
    constexpr int kCap = DramBank::kMaxInterleavedFold;
    const Time round_gap = static_cast<Time>(n) * stride;
    DramBank *banks[kCap];
    const DramBank::ActPlan *groups[kCap][kCap];
    Time lastTimes[kCap][kCap];
    int groupSize[kCap] = {};
    int bankCount = 0;
    for (int i = 0; i < n; ++i) {
        DramBank *bank = plans[i].bankPtr;
        int g = 0;
        while (g < bankCount && banks[g] != bank)
            ++g;
        if (g == bankCount)
            banks[bankCount++] = bank;
        groups[g][groupSize[g]] = &plans[i].bankPlan;
        // This aggressor's final-pass ACT lands at global slot
        // (rounds-1)*n + i of the fused train.
        lastTimes[g][groupSize[g]] = start +
            (static_cast<Time>(rounds - 1) * static_cast<Time>(n) +
             static_cast<Time>(i)) *
                stride;
        ++groupSize[g];
    }
    for (int g = 0; g < bankCount; ++g) {
        if (!banks[g]->interleavedRoundsFoldable(groups[g], groupSize[g],
                                                 round_gap)) {
            return false;
        }
    }
    for (int g = 0; g < bankCount; ++g) {
        banks[g]->applyInterleavedRounds(groups[g], lastTimes[g],
                                         groupSize[g], rounds);
    }
    // TRR observes the exact round-robin ACT order (folded or replayed
    // per mechanism); the TRR tables never read bank charge state
    // mid-burst, so physics-then-TRR ordering is state-preserving.
    Bank trrBanks[kCap];
    Row trrRows[kCap];
    for (int i = 0; i < n; ++i) {
        trrBanks[i] = plans[i].bank;
        trrRows[i] = plans[i].phys;
    }
    trr->onActivateRoundRobin(trrBanks, trrRows, n, rounds);
    if (ctrActs != nullptr) {
        ctrActs->inc(static_cast<std::uint64_t>(n) *
                     static_cast<std::uint64_t>(rounds));
        for (int i = 0; i < n; ++i) {
            ctrBankActs[static_cast<std::size_t>(plans[i].bank)]->inc(
                static_cast<std::uint64_t>(rounds));
        }
    }
    return true;
}

void
DramModule::actPlanned(const ActPlan &plan, Time now)
{
    plan.bankPtr->activatePlanned(plan.bankPlan, now);
    trr->onActivate(plan.bank, plan.phys);
    if (ctrActs != nullptr) {
        ctrActs->inc();
        ctrBankActs[static_cast<std::size_t>(plan.bank)]->inc();
    }
}

void
DramModule::pre(Bank bank, Time now)
{
    bankAt(bank).precharge(now);
    openLogical[static_cast<std::size_t>(bank)] = kInvalidRow;
}

void
DramModule::wr(Bank bank, const DataPattern &pattern, Time now)
{
    const Row logical = openLogical[static_cast<std::size_t>(bank)];
    UTRR_ASSERT(logical != kInvalidRow, "WR with no open row");
    bankAt(bank).writeOpenRow(pattern, logical, now);
    ++planEpochV; // stored words changed: cached plan weights are stale
}

void
DramModule::wrWord(Bank bank, int word_idx, std::uint64_t value)
{
    bankAt(bank).writeOpenRowWord(word_idx, value);
    ++planEpochV; // stored words changed: cached plan weights are stale
}

RowReadout
DramModule::rd(Bank bank) const
{
    RowReadout readout = bankAt(bank).readOpenRow();
    if (ctrReadFlipBits != nullptr)
        ctrReadFlipBits->inc(readout.rawFlips().size());
    return readout;
}

std::vector<Row>
DramModule::victimRowsOf(Row aggressor_phys) const
{
    std::vector<Row> victims;
    if (moduleSpec.paired()) {
        // Obs. C3: only the pair row is coupled, and only it is
        // refreshed.
        victims.push_back(aggressor_phys ^ 1);
        return victims;
    }
    const int neighbours = moduleSpec.traits().neighborsRefreshed;
    const int reach = neighbours >= 4 ? 2 : 1;
    for (int d = 1; d <= reach; ++d) {
        victims.push_back(aggressor_phys - d);
        victims.push_back(aggressor_phys + d);
    }
    return victims;
}

void
DramModule::ref(Time now)
{
    UTRR_PROF_SCOPE("dram.ref");
    for (Bank b = 0; b < moduleSpec.banks; ++b) {
        UTRR_ASSERT(banks[static_cast<std::size_t>(b)].openRow() ==
                        kInvalidRow,
                    logFmt("REF with bank ", b, " open"));
    }
    ++refs;

    // Regular refresh: every bank refreshes the same physical window.
    if (const auto range = engine.onRefresh()) {
        for (auto &bank : banks)
            bank.refreshRange(range->first, range->second, now);
    }

    // TRR-induced refresh piggybacking on this REF (footnote 3).
    for (const TrrRefreshAction &action : trr->onRefresh()) {
        DramBank &bank = bankAt(action.bank);
        ++trrEvents;
        gtTrrEvents->inc();
        for (Row victim : victimRowsOf(action.aggressorPhysRow)) {
            if (victim < 0 || victim >= moduleSpec.physRowsPerBank())
                continue;
            bank.refreshRow(victim, now);
            ++trrRefreshes;
            gtTrrVictims->inc();
            gtVictimCounter(action.bank, victim).inc();
        }
    }
    if (ctrRefs != nullptr)
        ctrRefs->inc();
}

Counter &
DramModule::gtVictimCounter(Bank bank, Row phys_row)
{
    const auto key = std::make_pair(bank, phys_row);
    auto it = gtVictimCounters.find(key);
    if (it == gtVictimCounters.end()) {
        std::ostringstream name;
        name << "chip.trr_victim_refresh.b" << bank << ".r" << phys_row;
        it = gtVictimCounters.emplace(key, &gtStore.counter(name.str()))
                 .first;
    }
    return *it->second;
}

DramModule::Snapshot
DramModule::snapshot() const
{
    Snapshot snap;
    snap.banks.reserve(banks.size());
    for (const DramBank &bank : banks)
        snap.banks.push_back(bank.snapshotState());
    snap.openLogical = openLogical;
    snap.engine = engine.snapshotState();
    snap.trr = trr->clone();
    snap.refs = refs;
    snap.trrRefreshes = trrRefreshes;
    snap.trrEvents = trrEvents;
    return snap;
}

void
DramModule::restore(const Snapshot &snap)
{
    UTRR_ASSERT(snap.banks.size() == banks.size(),
                "snapshot from a different module geometry");
    for (std::size_t b = 0; b < banks.size(); ++b)
        banks[b].restoreState(snap.banks[b]);
    ++planEpochV; // row storage replaced: cached plan pointers dangle
    openLogical = snap.openLogical;
    engine.restoreState(snap.engine);
    // The snapshot keeps its own TRR clone so it can be restored many
    // times; each restore installs a fresh clone re-attached to *this*
    // module's ground-truth store.
    trr = snap.trr->clone();
    trr->attachGroundTruth(&gtStore);
    refs = snap.refs;
    trrRefreshes = snap.trrRefreshes;
    trrEvents = snap.trrEvents;
}

void
DramModule::attachMetrics(MetricsRegistry *registry)
{
    metrics = registry;
    engine.attachMetrics(registry);
    if (registry == nullptr) {
        ctrActs = nullptr;
        ctrRefs = nullptr;
        ctrReadFlipBits = nullptr;
        ctrBankActs.clear();
        return;
    }
    ctrActs = &registry->counter("dram.acts");
    ctrRefs = &registry->counter("dram.refs");
    ctrReadFlipBits = &registry->counter("dram.read_flip_bits");
    ctrBankActs.clear();
    for (Bank b = 0; b < moduleSpec.banks; ++b) {
        std::ostringstream name;
        name << "dram.acts.bank" << b;
        ctrBankActs.push_back(&registry->counter(name.str()));
    }
}

int
DramModule::refsUntilRegularRefresh(Row phys_row) const
{
    return engine.refsUntilRow(phys_row);
}

RowPerfCounters
DramModule::perfTotals() const
{
    RowPerfCounters total;
    for (const DramBank &bank : banks) {
        const RowPerfCounters &p = bank.perf();
        total.restoreFastPath += p.restoreFastPath;
        total.restoreSlowPath += p.restoreSlowPath;
        total.hammerCellAttaches += p.hammerCellAttaches;
        total.readoutCowCopies += p.readoutCowCopies;
        total.readoutShares += p.readoutShares;
    }
    return total;
}

void
DramModule::publishPerfCounters()
{
    if (metrics == nullptr)
        return;
    const RowPerfCounters t = perfTotals();
    metrics->counter("dram.restore.fast_path").value = t.restoreFastPath;
    metrics->counter("dram.restore.slow_path").value = t.restoreSlowPath;
    metrics->counter("dram.hammer_cell_attaches").value =
        t.hammerCellAttaches;
    metrics->counter("dram.readout.cow_copies").value = t.readoutCowCopies;
    metrics->counter("dram.readout.cow_shares").value = t.readoutShares;
}

void
DramModule::scaleRowRetention(Bank bank, Row phys_row, double factor,
                              Time now)
{
    bankAt(bank).scaleRowRetention(phys_row, factor, now);
}

void
DramModule::scaleAllRetention(double factor)
{
    for (auto &bank : banks)
        bank.scaleAllRetention(factor);
}

} // namespace utrr
