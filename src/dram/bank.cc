#include "dram/bank.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "obs/profiler.hh"

namespace utrr
{

DramBank::DramBank(Bank id, Row phys_rows,
                   const PhysicsGenerator *generator)
    : id(id), physRowCount(phys_rows), gen(generator),
      slotOf(static_cast<std::size_t>(phys_rows), -1)
{
    UTRR_ASSERT(gen != nullptr, "bank needs a physics generator");
}

RowState &
DramBank::rowAt(Row phys_row, Time now)
{
    UTRR_ASSERT(phys_row >= 0 && phys_row < physRowCount,
                logFmt("physical row ", phys_row, " out of range in bank ",
                       id));
    std::int32_t &slot = slotOf[static_cast<std::size_t>(phys_row)];
    if (slot < 0) {
        // Materialize with retention physics only; hammer cells attach
        // lazily once disturbance charge approaches the row's base
        // threshold (they are ~30x larger to generate).
        RowPhysics phys = gen->generateRetention(id, phys_row);
        const auto &ret = gen->retentionConfig();
        Rng vrt_rng = Rng(hashMix(
            0x9e3779b9ULL ^ (static_cast<std::uint64_t>(id) << 44) ^
            static_cast<std::uint64_t>(phys_row)));
        slot = static_cast<std::int32_t>(states.size());
        states.emplace_back(std::move(phys), now, vrt_rng, gen->rowBits(),
                            msToNs(ret.vrtDwellMs), ret.vrtHighFactor);
        states.back().attachPerf(&perfCounters);
        if (baseRetentionScale != 1.0)
            states.back().setRetentionScale(baseRetentionScale);
    }
    return states[static_cast<std::size_t>(slot)];
}

void
DramBank::attachHammerCells(Row phys_row, RowState &state)
{
    UTRR_PROF_SCOPE("bank.attach_hammer_cells");
    ++perfCounters.hammerCellAttaches;
    RowPhysics full = gen->generate(id, phys_row);
    state.setHammerCells(std::move(full.hammerCells));
}

void
DramBank::scaleRowRetention(Row phys_row, double factor, Time now)
{
    rowAt(phys_row, now).scaleRetention(factor);
}

void
DramBank::scaleAllRetention(double factor)
{
    baseRetentionScale *= factor;
    for (RowState &state : states)
        state.scaleRetention(factor);
}

const RowState *
DramBank::peekRow(Row phys_row) const
{
    if (phys_row < 0 || phys_row >= physRowCount)
        return nullptr;
    const std::int32_t slot = slotOf[static_cast<std::size_t>(phys_row)];
    return slot < 0 ? nullptr : &states[static_cast<std::size_t>(slot)];
}

void
DramBank::disturbOne(Row aggressor, std::uint64_t aggr_word0, Row victim,
                     double weight, Time now)
{
    if (victim < 0 || victim >= physRowCount)
        return;
    RowState &v = rowAt(victim, now);

    const auto &ham = gen->hammerConfig();
    double w = weight;
    // Alternating aggressors pump more charge than repeated activation
    // of the same row (makes interleaved > cascaded, §5.2).
    if (v.lastDisturber() == aggressor)
        w *= ham.repeatWeight;
    // Aggressor/victim data coupling: same stored data disturbs less.
    if (aggr_word0 == v.storedWord0())
        w *= ham.sameDataWeight;
    v.addDisturbance(aggressor, w);
}

void
DramBank::disturbNeighbours(Row aggressor, Time now)
{
    const auto &ham = gen->hammerConfig();
    // Pass the aggressor's coupling word by value: victim
    // materialization must not rely on the aggressor reference.
    const std::uint64_t word0 = rowAt(aggressor, now).storedWord0();
    if (ham.paired) {
        // Paired-row organization (C0-8): a row only disturbs its pair.
        disturbOne(aggressor, word0, aggressor ^ 1, 1.0, now);
        return;
    }
    disturbOne(aggressor, word0, aggressor - 1, 1.0, now);
    disturbOne(aggressor, word0, aggressor + 1, 1.0, now);
    if (ham.distance2Weight > 0.0) {
        disturbOne(aggressor, word0, aggressor - 2, ham.distance2Weight,
                   now);
        disturbOne(aggressor, word0, aggressor + 2, ham.distance2Weight,
                   now);
    }
}

void
DramBank::activate(Row phys_row, Time now)
{
    UTRR_ASSERT(open == kInvalidRow,
                logFmt("ACT to bank ", id, " with row ", open,
                       " still open"));
    open = phys_row;
    ++acts;
    RowState &state = rowAt(phys_row, now);
    if (state.needsHammerCells())
        attachHammerCells(phys_row, state);
    state.restoreCharge(now);
    disturbNeighbours(phys_row, now);
}

void
DramBank::precharge(Time /*now*/)
{
    open = kInvalidRow;
}

void
DramBank::writeOpenRow(const DataPattern &pattern, Row pattern_row,
                       Time now)
{
    UTRR_ASSERT(open != kInvalidRow, "WR with no open row");
    rowAt(open, now).writePattern(pattern, pattern_row, now);
}

void
DramBank::writeOpenRowWord(int word_idx, std::uint64_t value)
{
    UTRR_ASSERT(open != kInvalidRow, "WR with no open row");
    const std::int32_t slot = slotOf[static_cast<std::size_t>(open)];
    UTRR_ASSERT(slot >= 0, "open row must be materialized");
    states[static_cast<std::size_t>(slot)].writeWord(word_idx, value);
}

RowReadout
DramBank::readOpenRow() const
{
    UTRR_ASSERT(open != kInvalidRow, "RD with no open row");
    const std::int32_t slot = slotOf[static_cast<std::size_t>(open)];
    UTRR_ASSERT(slot >= 0, "open row must be materialized");
    return states[static_cast<std::size_t>(slot)].read();
}

void
DramBank::refreshRow(Row phys_row, Time now)
{
    ++rowRefreshes;
    if (phys_row < 0 || phys_row >= physRowCount)
        return;
    const std::int32_t slot = slotOf[static_cast<std::size_t>(phys_row)];
    if (slot < 0)
        return; // untouched rows count as fresh at materialization
    RowState &state = states[static_cast<std::size_t>(slot)];
    if (state.needsHammerCells())
        attachHammerCells(phys_row, state);
    state.restoreCharge(now);
}

void
DramBank::refreshRange(Row phys_lo, Row phys_hi, Time now)
{
    const Row lo = std::max<Row>(phys_lo, 0);
    const Row hi = std::min(phys_hi, physRowCount);
    for (Row r = lo; r < hi; ++r) {
        const std::int32_t slot = slotOf[static_cast<std::size_t>(r)];
        if (slot < 0)
            continue;
        ++rowRefreshes;
        RowState &state = states[static_cast<std::size_t>(slot)];
        if (state.needsHammerCells())
            attachHammerCells(r, state);
        state.restoreCharge(now);
    }
}

DramBank::Snapshot
DramBank::snapshotState() const
{
    Snapshot snap;
    snap.slotOf = slotOf;
    // Copying a RowState shares its overrides/flips containers
    // copy-on-write; the snapshot therefore pins this instant's row
    // contents without duplicating them, and the live bank clones lazily
    // on its next mutation of each row.
    snap.states = states;
    snap.open = open;
    snap.acts = acts;
    snap.rowRefreshes = rowRefreshes;
    snap.baseRetentionScale = baseRetentionScale;
    snap.perfCounters = perfCounters;
    return snap;
}

void
DramBank::restoreState(const Snapshot &snap)
{
    slotOf = snap.slotOf;
    states = snap.states;
    open = snap.open;
    acts = snap.acts;
    rowRefreshes = snap.rowRefreshes;
    baseRetentionScale = snap.baseRetentionScale;
    perfCounters = snap.perfCounters;
    // The copied rows still point their perf tallies at whatever bank
    // the snapshot was taken from; re-home them here.
    for (RowState &state : states)
        state.attachPerf(&perfCounters);
}

} // namespace utrr
