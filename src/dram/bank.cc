#include "dram/bank.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "obs/profiler.hh"

namespace utrr
{

DramBank::DramBank(Bank id, Row phys_rows,
                   const PhysicsGenerator *generator)
    : id(id), physRowCount(phys_rows), gen(generator),
      slotOf(static_cast<std::size_t>(phys_rows), -1)
{
    UTRR_ASSERT(gen != nullptr, "bank needs a physics generator");
}

RowState &
DramBank::rowAt(Row phys_row, Time now)
{
    UTRR_ASSERT(phys_row >= 0 && phys_row < physRowCount,
                logFmt("physical row ", phys_row, " out of range in bank ",
                       id));
    std::int32_t &slot = slotOf[static_cast<std::size_t>(phys_row)];
    if (slot < 0) {
        // Materialize with retention physics only; hammer cells attach
        // lazily once disturbance charge approaches the row's base
        // threshold (they are ~30x larger to generate).
        RowPhysics phys = gen->generateRetention(id, phys_row);
        const auto &ret = gen->retentionConfig();
        Rng vrt_rng = Rng(hashMix(
            0x9e3779b9ULL ^ (static_cast<std::uint64_t>(id) << 44) ^
            static_cast<std::uint64_t>(phys_row)));
        slot = static_cast<std::int32_t>(states.size());
        states.emplace_back(std::move(phys), now, vrt_rng, gen->rowBits(),
                            msToNs(ret.vrtDwellMs), ret.vrtHighFactor);
        states.back().attachPerf(&perfCounters);
        if (baseRetentionScale != 1.0)
            states.back().setRetentionScale(baseRetentionScale);
    }
    return states[static_cast<std::size_t>(slot)];
}

void
DramBank::attachHammerCells(Row phys_row, RowState &state)
{
    UTRR_PROF_SCOPE("bank.attach_hammer_cells");
    ++perfCounters.hammerCellAttaches;
    RowPhysics full = gen->generate(id, phys_row);
    state.setHammerCells(std::move(full.hammerCells));
}

void
DramBank::scaleRowRetention(Row phys_row, double factor, Time now)
{
    rowAt(phys_row, now).scaleRetention(factor);
}

void
DramBank::scaleAllRetention(double factor)
{
    baseRetentionScale *= factor;
    for (RowState &state : states)
        state.scaleRetention(factor);
}

const RowState *
DramBank::peekRow(Row phys_row) const
{
    if (phys_row < 0 || phys_row >= physRowCount)
        return nullptr;
    const std::int32_t slot = slotOf[static_cast<std::size_t>(phys_row)];
    return slot < 0 ? nullptr : &states[static_cast<std::size_t>(slot)];
}

void
DramBank::disturbOne(Row aggressor, std::uint64_t aggr_word0, Row victim,
                     double weight, Time now)
{
    if (victim < 0 || victim >= physRowCount)
        return;
    RowState &v = rowAt(victim, now);

    const auto &ham = gen->hammerConfig();
    double w = weight;
    // Alternating aggressors pump more charge than repeated activation
    // of the same row (makes interleaved > cascaded, §5.2).
    if (v.lastDisturber() == aggressor)
        w *= ham.repeatWeight;
    // Aggressor/victim data coupling: same stored data disturbs less.
    if (aggr_word0 == v.storedWord0())
        w *= ham.sameDataWeight;
    v.addDisturbance(aggressor, w);
}

void
DramBank::disturbNeighbours(Row aggressor, Time now)
{
    const auto &ham = gen->hammerConfig();
    // Pass the aggressor's coupling word by value: victim
    // materialization must not rely on the aggressor reference.
    const std::uint64_t word0 = rowAt(aggressor, now).storedWord0();
    if (ham.paired) {
        // Paired-row organization (C0-8): a row only disturbs its pair.
        disturbOne(aggressor, word0, aggressor ^ 1, 1.0, now);
        return;
    }
    disturbOne(aggressor, word0, aggressor - 1, 1.0, now);
    disturbOne(aggressor, word0, aggressor + 1, 1.0, now);
    if (ham.distance2Weight > 0.0) {
        disturbOne(aggressor, word0, aggressor - 2, ham.distance2Weight,
                   now);
        disturbOne(aggressor, word0, aggressor + 2, ham.distance2Weight,
                   now);
    }
}

void
DramBank::activate(Row phys_row, Time now)
{
    UTRR_ASSERT(open == kInvalidRow,
                logFmt("ACT to bank ", id, " with row ", open,
                       " still open"));
    open = phys_row;
    ++acts;
    RowState &state = rowAt(phys_row, now);
    if (state.needsHammerCells())
        attachHammerCells(phys_row, state);
    state.restoreCharge(now);
    disturbNeighbours(phys_row, now);
}

void
DramBank::precharge(Time /*now*/)
{
    open = kInvalidRow;
}

DramBank::ActPlan
DramBank::buildActPlan(Row phys_row, Time now)
{
    ActPlan plan;
    plan.phys = phys_row;
    plan.aggr = &rowAt(phys_row, now);
    const auto &ham = gen->hammerConfig();
    const std::uint64_t word0 = plan.aggr->storedWord0();
    const auto add = [&](Row victim, double base) {
        if (victim < 0 || victim >= physRowCount)
            return;
        RowState &v = rowAt(victim, now);
        // Mirror disturbOne()'s multiply order exactly: FP products are
        // order-sensitive and both weights must match what the
        // interpreter would compute on each branch.
        double w_first = base;
        double w_repeat = base * ham.repeatWeight;
        if (word0 == v.storedWord0()) {
            w_first *= ham.sameDataWeight;
            w_repeat *= ham.sameDataWeight;
        }
        plan.victims[plan.victimCount++] = {&v, w_first, w_repeat};
    };
    if (ham.paired) {
        add(phys_row ^ 1, 1.0);
    } else {
        add(phys_row - 1, 1.0);
        add(phys_row + 1, 1.0);
        if (ham.distance2Weight > 0.0) {
            add(phys_row - 2, ham.distance2Weight);
            add(phys_row + 2, ham.distance2Weight);
        }
    }
    return plan;
}

void
DramBank::activatePlanned(const ActPlan &plan, Time now)
{
    ++acts;
    RowState &aggr = *plan.aggr;
    if (aggr.needsHammerCells())
        attachHammerCells(plan.phys, aggr);
    aggr.restoreCharge(now);
    for (int i = 0; i < plan.victimCount; ++i) {
        const ActPlan::PlannedVictim &v = plan.victims[i];
        const double w = v.state->lastDisturber() == plan.phys
            ? v.wRepeat : v.wFirst;
        v.state->addDisturbance(plan.phys, w);
    }
}

bool
DramBank::interleavedRoundsFoldable(const ActPlan *const *plans, int n,
                                    Time round_gap) const
{
    if (n > kMaxInterleavedFold)
        return false; // keeps applyInterleavedRounds allocation-free
    for (int i = 0; i < n; ++i) {
        // A duplicate aggressor would restore twice per pass, breaking
        // the one-fast-forward-per-aggressor bookkeeping below.
        for (int j = 0; j < i; ++j) {
            if (plans[j]->phys == plans[i]->phys)
                return false;
        }
    }
    for (int i = 0; i < n; ++i) {
        // Worst-case charge the other listed aggressors pump into this
        // one between two of its restores: each lands at most once per
        // pass, with whichever of its two planned weights is larger.
        double bound = 0.0;
        for (int j = 0; j < n; ++j) {
            if (j == i)
                continue;
            for (int v = 0; v < plans[j]->victimCount; ++v) {
                const ActPlan::PlannedVictim &pv = plans[j]->victims[v];
                if (pv.state == plans[i]->aggr)
                    bound += std::max(pv.wFirst, pv.wRepeat);
            }
        }
        if (!plans[i]->aggr->restoresFastForwardable(round_gap, bound))
            return false;
    }
    return true;
}

void
DramBank::applyInterleavedRounds(const ActPlan *const *plans,
                                 const Time *last_times, int n, int rounds)
{
    // Non-aggressor victims: gather each unique row's contributors in
    // round order, then replay `rounds` passes of per-ACT additions
    // with the live repeat-weight branch (addDisturbanceRoundRobin).
    // All scratch lives on the stack — kMaxInterleavedFold aggressors
    // with at most 4 planned victims each, every aggressor hitting a
    // given victim at most once per pass.
    struct VictimSeq
    {
        RowState *state;
        int m;
        Row aggrs[kMaxInterleavedFold];
        double wFirst[kMaxInterleavedFold];
        double wRepeat[kMaxInterleavedFold];
    };
    const auto isListedAggr = [&](const RowState *s) {
        for (int k = 0; k < n; ++k) {
            if (plans[k]->aggr == s)
                return true;
        }
        return false;
    };
    VictimSeq seqs[kMaxInterleavedFold * 4];
    int seqCount = 0;
    for (int i = 0; i < n; ++i) {
        for (int v = 0; v < plans[i]->victimCount; ++v) {
            const ActPlan::PlannedVictim &pv = plans[i]->victims[v];
            if (isListedAggr(pv.state))
                continue;
            VictimSeq *seq = nullptr;
            for (int s = 0; s < seqCount; ++s) {
                if (seqs[s].state == pv.state) {
                    seq = &seqs[s];
                    break;
                }
            }
            if (seq == nullptr) {
                seq = &seqs[seqCount++];
                seq->state = pv.state;
                seq->m = 0;
            }
            seq->aggrs[seq->m] = plans[i]->phys;
            seq->wFirst[seq->m] = pv.wFirst;
            seq->wRepeat[seq->m] = pv.wRepeat;
            ++seq->m;
        }
    }
    for (int s = 0; s < seqCount; ++s) {
        seqs[s].state->addDisturbanceRoundRobin(
            seqs[s].aggrs, seqs[s].wFirst, seqs[s].wRepeat, seqs[s].m,
            rounds);
    }

    // Aggressors: every pass restores each one on the proven fast path,
    // wiping whatever earlier-in-round aggressors added since its last
    // restore — so only the final pass's disturbances from
    // later-in-round aggressors survive, applied here against the
    // post-restore (invalid) lastDisturber exactly as the per-cycle
    // loop would leave them.
    for (int i = 0; i < n; ++i) {
        plans[i]->aggr->fastForwardRestores(
            last_times[i], static_cast<std::uint64_t>(rounds));
    }
    for (int i = 0; i < n; ++i) {
        for (int v = 0; v < plans[i]->victimCount; ++v) {
            const ActPlan::PlannedVictim &pv = plans[i]->victims[v];
            for (int k = 0; k < i; ++k) {
                if (plans[k]->aggr != pv.state)
                    continue;
                const double w =
                    pv.state->lastDisturber() == plans[i]->phys
                    ? pv.wRepeat : pv.wFirst;
                pv.state->addDisturbance(plans[i]->phys, w);
            }
        }
    }
    acts += static_cast<std::uint64_t>(n) *
        static_cast<std::uint64_t>(rounds);
}

void
DramBank::applyActivationBurst(Row phys_row, int count, Time start,
                               Time cycle)
{
    // Plan building materializes the aggressor first and then the
    // victims in exactly the interpreter's -1/+1/-2/+2 order, and the
    // coupling word it caches does not depend on the aggressor's charge
    // (storedWord0 reads pattern + overrides only), so building before
    // cycle 0 is value-identical to activate()'s restore-then-disturb
    // sequence — with one row lookup per row instead of activate()'s
    // pass plus a second plan-build pass.
    const ActPlan plan = buildActPlan(phys_row, start);
    applyActivationBurstPlanned(plan, count, start, cycle);
}

void
DramBank::applyActivationBurstPlanned(const ActPlan &plan, int count,
                                      Time start, Time cycle)
{
    UTRR_ASSERT(count >= 1, "activation burst needs at least one cycle");
    UTRR_ASSERT(open == kInvalidRow,
                logFmt("ACT to bank ", id, " with row ", open,
                       " still open"));
    // Cycle 0 through the plan's live weight branch (activatePlanned
    // bumps the ACT counter, attaches hammer cells on demand, restores
    // the aggressor and disturbs the planned victims).
    activatePlanned(plan, start);
    if (count <= 1)
        return;

    RowState &aggr = *plan.aggr;
    const int rest = count - 1;

    // A row is never its own neighbour, so after the cycle-0 restore
    // the aggressor's charge stays zero for the whole burst and each
    // per-cycle restore is provably the fast path — unless the row has
    // VRT cells, whose telegraph draws are visible state and must
    // happen one restore at a time.
    if (aggr.restoresFastForwardable(cycle)) {
        for (int i = 0; i < plan.victimCount; ++i) {
            const ActPlan::PlannedVictim &v = plan.victims[i];
            // Cycle 0 made this row every victim's last disturber and
            // nothing else touches them mid-burst, so the repeat weight
            // applies to all remaining cycles.
            v.state->addDisturbanceRun(plan.phys, v.wRepeat, rest);
        }
        acts += static_cast<std::uint64_t>(rest);
        aggr.fastForwardRestores(start + static_cast<Time>(rest) * cycle,
                                 static_cast<std::uint64_t>(rest));
    } else {
        Time now = start;
        for (int i = 0; i < rest; ++i) {
            now += cycle;
            activatePlanned(plan, now);
        }
    }
}

void
DramBank::writeOpenRow(const DataPattern &pattern, Row pattern_row,
                       Time now)
{
    UTRR_ASSERT(open != kInvalidRow, "WR with no open row");
    rowAt(open, now).writePattern(pattern, pattern_row, now);
}

void
DramBank::writeOpenRowWord(int word_idx, std::uint64_t value)
{
    UTRR_ASSERT(open != kInvalidRow, "WR with no open row");
    const std::int32_t slot = slotOf[static_cast<std::size_t>(open)];
    UTRR_ASSERT(slot >= 0, "open row must be materialized");
    states[static_cast<std::size_t>(slot)].writeWord(word_idx, value);
}

RowReadout
DramBank::readOpenRow() const
{
    UTRR_ASSERT(open != kInvalidRow, "RD with no open row");
    const std::int32_t slot = slotOf[static_cast<std::size_t>(open)];
    UTRR_ASSERT(slot >= 0, "open row must be materialized");
    return states[static_cast<std::size_t>(slot)].read();
}

void
DramBank::refreshRow(Row phys_row, Time now)
{
    ++rowRefreshes;
    if (phys_row < 0 || phys_row >= physRowCount)
        return;
    const std::int32_t slot = slotOf[static_cast<std::size_t>(phys_row)];
    if (slot < 0)
        return; // untouched rows count as fresh at materialization
    RowState &state = states[static_cast<std::size_t>(slot)];
    if (state.needsHammerCells())
        attachHammerCells(phys_row, state);
    state.restoreCharge(now);
}

void
DramBank::refreshRange(Row phys_lo, Row phys_hi, Time now)
{
    const Row lo = std::max<Row>(phys_lo, 0);
    const Row hi = std::min(phys_hi, physRowCount);
    for (Row r = lo; r < hi; ++r) {
        const std::int32_t slot = slotOf[static_cast<std::size_t>(r)];
        if (slot < 0)
            continue;
        ++rowRefreshes;
        RowState &state = states[static_cast<std::size_t>(slot)];
        if (state.needsHammerCells())
            attachHammerCells(r, state);
        state.restoreCharge(now);
    }
}

DramBank::Snapshot
DramBank::snapshotState() const
{
    Snapshot snap;
    snap.slotOf = slotOf;
    // Copying a RowState shares its overrides/flips containers
    // copy-on-write; the snapshot therefore pins this instant's row
    // contents without duplicating them, and the live bank clones lazily
    // on its next mutation of each row.
    snap.states = states;
    snap.open = open;
    snap.acts = acts;
    snap.rowRefreshes = rowRefreshes;
    snap.baseRetentionScale = baseRetentionScale;
    snap.perfCounters = perfCounters;
    return snap;
}

void
DramBank::restoreState(const Snapshot &snap)
{
    slotOf = snap.slotOf;
    states = snap.states;
    open = snap.open;
    acts = snap.acts;
    rowRefreshes = snap.rowRefreshes;
    baseRetentionScale = snap.baseRetentionScale;
    perfCounters = snap.perfCounters;
    // The copied rows still point their perf tallies at whatever bank
    // the snapshot was taken from; re-home them here.
    for (RowState &state : states)
        state.attachPerf(&perfCounters);
}

} // namespace utrr
