#include "dram/bank.hh"

#include <utility>

#include "common/logging.hh"

namespace utrr
{

DramBank::DramBank(Bank id, Row phys_rows,
                   const PhysicsGenerator *generator)
    : id(id), physRowCount(phys_rows), gen(generator)
{
    UTRR_ASSERT(gen != nullptr, "bank needs a physics generator");
}

RowState &
DramBank::rowAt(Row phys_row, Time now)
{
    UTRR_ASSERT(phys_row >= 0 && phys_row < physRowCount,
                logFmt("physical row ", phys_row, " out of range in bank ",
                       id));
    auto it = rows.find(phys_row);
    if (it == rows.end()) {
        // Materialize with retention physics only; hammer cells attach
        // lazily on first disturbance (they are ~30x larger).
        RowPhysics phys = gen->generateRetention(id, phys_row);
        const auto &ret = gen->retentionConfig();
        Rng vrt_rng = Rng(hashMix(
            0x9e3779b9ULL ^ (static_cast<std::uint64_t>(id) << 44) ^
            static_cast<std::uint64_t>(phys_row)));
        it = rows
                 .emplace(phys_row,
                          RowState(std::move(phys), now, vrt_rng,
                                   gen->rowBits(),
                                   msToNs(ret.vrtDwellMs),
                                   ret.vrtHighFactor))
                 .first;
        if (baseRetentionScale != 1.0)
            it->second.setRetentionScale(baseRetentionScale);
    }
    return it->second;
}

void
DramBank::scaleRowRetention(Row phys_row, double factor, Time now)
{
    rowAt(phys_row, now).scaleRetention(factor);
}

void
DramBank::scaleAllRetention(double factor)
{
    baseRetentionScale *= factor;
    for (auto &[row, state] : rows)
        state.scaleRetention(factor);
}

const RowState *
DramBank::peekRow(Row phys_row) const
{
    const auto it = rows.find(phys_row);
    return it == rows.end() ? nullptr : &it->second;
}

void
DramBank::disturbOne(Row aggressor, RowState &aggr_state, Row victim,
                     double weight, Time now)
{
    if (victim < 0 || victim >= physRowCount)
        return;
    RowState &v = rowAt(victim, now);
    if (!v.hasHammerCells()) {
        RowPhysics full = gen->generate(id, victim);
        v.setHammerCells(std::move(full.hammerCells));
    }

    const auto &ham = gen->hammerConfig();
    double w = weight;
    // Alternating aggressors pump more charge than repeated activation
    // of the same row (makes interleaved > cascaded, §5.2).
    if (v.lastDisturber() == aggressor)
        w *= ham.repeatWeight;
    // Aggressor/victim data coupling: same stored data disturbs less.
    if (aggr_state.storedWord0() == v.storedWord0())
        w *= ham.sameDataWeight;
    v.addDisturbance(aggressor, w);
}

void
DramBank::disturbNeighbours(Row aggressor, Time now)
{
    const auto &ham = gen->hammerConfig();
    RowState &aggr = rowAt(aggressor, now);
    if (ham.paired) {
        // Paired-row organization (C0-8): a row only disturbs its pair.
        disturbOne(aggressor, aggr, aggressor ^ 1, 1.0, now);
        return;
    }
    disturbOne(aggressor, aggr, aggressor - 1, 1.0, now);
    disturbOne(aggressor, aggr, aggressor + 1, 1.0, now);
    if (ham.distance2Weight > 0.0) {
        disturbOne(aggressor, aggr, aggressor - 2, ham.distance2Weight,
                   now);
        disturbOne(aggressor, aggr, aggressor + 2, ham.distance2Weight,
                   now);
    }
}

void
DramBank::activate(Row phys_row, Time now)
{
    UTRR_ASSERT(open == kInvalidRow,
                logFmt("ACT to bank ", id, " with row ", open,
                       " still open"));
    open = phys_row;
    ++acts;
    rowAt(phys_row, now).restoreCharge(now);
    disturbNeighbours(phys_row, now);
}

void
DramBank::precharge(Time /*now*/)
{
    open = kInvalidRow;
}

void
DramBank::writeOpenRow(const DataPattern &pattern, Row pattern_row,
                       Time now)
{
    UTRR_ASSERT(open != kInvalidRow, "WR with no open row");
    rowAt(open, now).writePattern(pattern, pattern_row, now);
}

void
DramBank::writeOpenRowWord(int word_idx, std::uint64_t value)
{
    UTRR_ASSERT(open != kInvalidRow, "WR with no open row");
    rows.at(open).writeWord(word_idx, value);
}

RowReadout
DramBank::readOpenRow() const
{
    UTRR_ASSERT(open != kInvalidRow, "RD with no open row");
    return rows.at(open).read();
}

void
DramBank::refreshRow(Row phys_row, Time now)
{
    ++rowRefreshes;
    auto it = rows.find(phys_row);
    if (it == rows.end())
        return; // untouched rows count as fresh at materialization
    it->second.restoreCharge(now);
}

void
DramBank::refreshRange(Row phys_lo, Row phys_hi, Time now)
{
    for (auto it = rows.lower_bound(phys_lo);
         it != rows.end() && it->first < phys_hi; ++it) {
        ++rowRefreshes;
        it->second.restoreCharge(now);
    }
}

} // namespace utrr
