/**
 * @file
 * One DRAM bank, operating entirely in *physical* row space.
 *
 * The bank owns the sparse per-row state (rows materialize on first
 * touch), executes the physical side effects of ACT/PRE/WR/RD/row-refresh
 * and applies RowHammer disturbance to the physical neighbours of every
 * activated row. Logical-to-physical translation happens one level up,
 * in DramModule.
 *
 * Row storage is a direct-mapped slot table (`slotOf[phys_row]` indexes
 * into a deque of RowState), so every lookup — including the contiguous
 * scan of refreshRange — is O(1) with no tree walks. The deque keeps
 * references stable while neighbour materialization happens mid-ACT.
 * Hammer cells stay ungenerated until a row's accumulated charge reaches
 * its base-threshold lower bound (RowPhysics::hammerBaseThreshold); until
 * then the cells are inert at any charge the row can hold, so deferring
 * them is bit-identical and skips the dominant cold-path cost.
 */

#ifndef UTRR_DRAM_BANK_HH
#define UTRR_DRAM_BANK_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.hh"
#include "dram/physics.hh"
#include "dram/row.hh"

namespace utrr
{

/**
 * Physical state of one DRAM bank.
 */
class DramBank
{
  public:
    /**
     * @param id bank index (used to derive per-row physics streams)
     * @param phys_rows number of physical rows including spares
     * @param generator shared per-module physics generator (not owned)
     */
    DramBank(Bank id, Row phys_rows, const PhysicsGenerator *generator);

    /** Open a row: restore its charge, disturb its neighbours. */
    void activate(Row phys_row, Time now);

    /** Close the open row. */
    void precharge(Time now);

    /**
     * Pre-resolved single-activation work for one aggressor row: the
     * aggressor's row state and each in-range victim with both possible
     * disturbance weights pre-multiplied (the repeat/same-data factors
     * are constant while no WR lands, so only the lastDisturber branch
     * remains per ACT). Row pointers stay valid while the bank's row
     * storage does — build plans per burst, never across snapshot
     * restores.
     */
    struct ActPlan
    {
        struct PlannedVictim
        {
            RowState *state;
            /** Weight when the victim's last disturber is another row. */
            double wFirst;
            /** Weight when this row was also the previous disturber. */
            double wRepeat;
        };
        Row phys = kInvalidRow;
        RowState *aggr = nullptr;
        int victimCount = 0;
        PlannedVictim victims[4];
    };

    /**
     * Build an activation plan for @p phys_row. The aggressor and its
     * victims must not change stored data while the plan is in use.
     * Materializes any not-yet-touched victim rows at @p now — callers
     * that need interpreter-exact materialization order must run the
     * first activation through activate() and build the plan afterwards.
     */
    ActPlan buildActPlan(Row phys_row, Time now);

    /**
     * One ACT(+immediate PRE) worth of physical side effects from a
     * prebuilt plan: bump the ACT counter, restore the aggressor's
     * charge, disturb the planned victims. The bank must be (and stays)
     * precharged.
     */
    void activatePlanned(const ActPlan &plan, Time now);

    /**
     * Execute @p count ACT+PRE cycles of @p phys_row, @p cycle ns apart
     * starting at @p start, in one call — bit-identical to the same loop
     * of activate()/precharge(). Cycle 0 runs the standard path (exact
     * materialization order and hammer-cell attach); the remaining
     * cycles run off an ActPlan, and when the aggressor's restores are
     * provably all fast-path its per-cycle bookkeeping collapses to one
     * fast-forward while each victim's charge still accumulates with
     * per-ACT floating-point additions.
     */
    void applyActivationBurst(Row phys_row, int count, Time start,
                              Time cycle);

    /**
     * applyActivationBurst() from a prebuilt plan — the form behind the
     * host's cross-call plan cache. Every row the plan references is
     * already materialized (plan building materializes), so cycle 0 is
     * a plain activatePlanned() and no per-burst row lookups remain.
     * The plan must still be valid: no WR/wrWord landed in this bank
     * and no snapshot restore replaced the row storage since it was
     * built (DramModule::planEpoch() tracks both).
     */
    void applyActivationBurstPlanned(const ActPlan &plan, int count,
                                     Time start, Time cycle);

    /**
     * True when @p rounds round-robin ACT+PRE passes over the @p n
     * planned aggressors (all in this bank, in global round order, one
     * ACT each per pass, consecutive restores of the same aggressor
     * @p round_gap ns apart) can be applied as one fold by
     * applyInterleavedRounds(): distinct aggressor rows, and every
     * aggressor's restores provably fast-path even with the worst-case
     * charge the other listed aggressors can pump into it per round.
     * Pure check — mutates nothing.
     */
    /** Most aggressors one interleaved fold accepts (stack bounds). */
    static constexpr int kMaxInterleavedFold = 8;

    bool interleavedRoundsFoldable(const ActPlan *const *plans, int n,
                                   Time round_gap) const;

    /**
     * Apply @p rounds round-robin passes over the planned aggressors in
     * one call — bit-identical to the same actPlanned() loop. Victim
     * charge accumulates with per-ACT floating-point additions in round
     * order; each aggressor's restores collapse to one fast-forward at
     * @p last_times[i] (its final-pass ACT) plus the surviving
     * final-pass disturbances from later-in-round aggressors. The
     * caller must have checked interleavedRoundsFoldable().
     */
    void applyInterleavedRounds(const ActPlan *const *plans,
                                const Time *last_times, int n,
                                int rounds);

    /** Write a whole-row pattern into the open row. */
    void writeOpenRow(const DataPattern &pattern, Row pattern_row,
                      Time now);

    /** Write one 64-bit word of the open row. */
    void writeOpenRowWord(int word_idx, std::uint64_t value);

    /** Read the open row. */
    RowReadout readOpenRow() const;

    /**
     * Refresh a single physical row (used by the internal refresh engine
     * and by TRR-induced refreshes). No disturbance is applied.
     */
    void refreshRow(Row phys_row, Time now);

    /** Refresh all materialized rows in [phys_lo, phys_hi). */
    void refreshRange(Row phys_lo, Row phys_hi, Time now);

    /** Currently open physical row, or kInvalidRow. */
    Row openRow() const { return open; }

    /** Physical rows in this bank (including spares). */
    Row physRows() const { return physRowCount; }

    /** Direct row-state access for white-box tests and fast readback. */
    const RowState *peekRow(Row phys_row) const;

    /** Materialize (if needed) and return a row's state. */
    RowState &rowAt(Row phys_row, Time now);

    /** Total ACT commands seen by this bank. */
    std::uint64_t actCount() const { return acts; }

    /** Total single-row refreshes performed in this bank. */
    std::uint64_t rowRefreshCount() const { return rowRefreshes; }

    /** Number of materialized rows (memory footprint diagnostics). */
    std::size_t materializedRows() const { return states.size(); }

    /** Fast-path tallies of every row this bank owns. */
    const RowPerfCounters &perf() const { return perfCounters; }

    /**
     * Fault-injection hook: multiply one row's retention scale
     * (materializing the row if needed).
     */
    void scaleRowRetention(Row phys_row, double factor, Time now);

    /**
     * Fault-injection hook: multiply the retention scale of every
     * materialized row and of all rows materialized later (temperature
     * drift affects the whole bank).
     */
    void scaleAllRetention(double factor);

    // ------------------------------------------------------------------
    // Snapshot / restore (DESIGN.md §16)
    // ------------------------------------------------------------------

    /**
     * Everything a bank needs to be rewound to an earlier point. Row
     * contents stay copy-on-write: copying a RowState shares its
     * override map and flip list behind shared_ptr, and either side
     * clones at its next mutation (the PR 5 readout COW extended to
     * snapshots), so the deep-copied part is only the slot table and
     * the per-row bookkeeping scalars.
     */
    struct Snapshot
    {
        std::vector<std::int32_t> slotOf;
        std::deque<RowState> states;
        Row open = kInvalidRow;
        std::uint64_t acts = 0;
        std::uint64_t rowRefreshes = 0;
        double baseRetentionScale = 1.0;
        RowPerfCounters perfCounters;
    };

    /** Capture this bank's mutable state. */
    Snapshot snapshotState() const;

    /**
     * Restore a snapshot taken from this bank or from any bank with the
     * same (id, physRows, generator) — i.e. the same position in a
     * module built from the same (spec, seed). Re-attaches every row's
     * perf tallies to this bank.
     */
    void restoreState(const Snapshot &snap);

  private:
    void disturbNeighbours(Row aggressor, Time now);
    void disturbOne(Row aggressor, std::uint64_t aggr_word0, Row victim,
                    double weight, Time now);
    /** Generate and attach hammer cells once charge demands them. */
    void attachHammerCells(Row phys_row, RowState &state);

    Bank id;
    Row physRowCount;
    double baseRetentionScale = 1.0;
    const PhysicsGenerator *gen;
    /** phys_row -> index into `states`; -1 = not materialized. */
    std::vector<std::int32_t> slotOf;
    /** Materialized rows in first-touch order (stable references). */
    std::deque<RowState> states;
    Row open = kInvalidRow;
    std::uint64_t acts = 0;
    std::uint64_t rowRefreshes = 0;
    /** Shared by every RowState in `states` (addresses stay stable as
     *  long as the bank itself does — banks are built once per module
     *  and never moved). */
    RowPerfCounters perfCounters;
};

} // namespace utrr

#endif // UTRR_DRAM_BANK_HH
