/**
 * @file
 * I/O-layer fault injection for the durability subsystem.
 *
 * PR 2's FaultInjector perturbs the simulated DRAM substrate; this hook
 * perturbs the *host process* instead: it lets the crash-recovery
 * harness kill a campaign at an exactly chosen point of the write-ahead
 * journal stream — including halfway through a record's bytes, the torn
 * write a real power cut or SIGKILL produces.
 *
 * The journal writer consults an attached JournalWriteFault before each
 * record append. When the armed record index is reached, the writer
 * emits only the configured byte prefix of that record and the process
 * dies by SIGKILL — no destructors, no buffers flushed, exactly like a
 * crash. A plan can also be armed from the environment
 * (UTRR_JOURNAL_CRASH="N" or "N:B": die at record N after B bytes),
 * which is how the subprocess-based recovery tests and the CI smoke
 * drive a deterministic mid-write crash without test hooks leaking into
 * production binaries.
 */

#ifndef UTRR_FAULT_IO_FAULT_HH
#define UTRR_FAULT_IO_FAULT_HH

#include <cstdint>
#include <optional>
#include <string>

namespace utrr
{

/**
 * A planned crash inside the journal writer. Indices count every
 * record append (header record included) since the writer was opened.
 */
struct JournalWriteFault
{
    /** Record append at which to crash (0-based); < 0 disarms. */
    std::int64_t crashAtRecord = -1;

    /**
     * Bytes of that record actually written before dying. Negative
     * writes the whole record (crash-after-commit); smaller values
     * leave a torn tail.
     */
    std::int64_t partialBytes = -1;

    bool armed() const { return crashAtRecord >= 0; }

    /**
     * Should the append of record @p index crash? When true the writer
     * appends min(partialBytes, record size) bytes and calls die().
     */
    bool firesAt(std::int64_t index) const
    {
        return armed() && index == crashAtRecord;
    }

    /**
     * Kill the calling process with SIGKILL (after fsyncing @p fd when
     * >= 0, so the torn prefix is actually on disk and the test
     * observes the planned tear, not an unflushed page).
     */
    [[noreturn]] static void die(int fd);

    /**
     * Parse UTRR_JOURNAL_CRASH ("N" or "N:B"). nullopt when unset or
     * malformed (malformed values warn — a crash test that silently
     * doesn't crash would pass vacuously).
     */
    static std::optional<JournalWriteFault> fromEnv();

    /** Parse the "N[:B]" spec itself (exposed for tests). */
    static std::optional<JournalWriteFault> parse(const std::string &spec);
};

} // namespace utrr

#endif // UTRR_FAULT_IO_FAULT_HH
