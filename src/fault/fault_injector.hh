/**
 * @file
 * Seeded fault-injection layer perturbing the simulated substrate
 * through well-defined hooks:
 *
 *  - mid-experiment VRT mode flips on rows the host reads (a profiled
 *    row's retention jumps by the VRT factor after Row Scout accepted
 *    it),
 *  - slow retention drift of the whole module (temperature walk),
 *  - sporadic read-back bit noise (bus corruption, not stored-state
 *    change),
 *  - REF-interval jitter when refreshing at the default rate,
 *  - dropped DDR commands at the host/module boundary (REF, WR, and
 *    hammer ACT+PRE cycles; the command occupies the bus but the module
 *    ignores it).
 *
 * The injector draws exclusively from its own *named* RNG sub-streams
 * (Rng::fork(name)), so attaching an injector with every rate at zero
 * is bit-identical to not attaching one at all — the invariant the
 * determinism tests pin down. All fault events are counted, exported to
 * an attached MetricsRegistry under "fault.*", and recorded in the
 * host's command trace as instant FAULT events.
 */

#ifndef UTRR_FAULT_FAULT_INJECTOR_HH
#define UTRR_FAULT_FAULT_INJECTOR_HH

#include <cstdint>
#include <set>
#include <utility>

#include "common/rng.hh"
#include "common/types.hh"
#include "dram/module.hh"
#include "dram/row.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace utrr
{

/**
 * Per-hook fault rates. Every rate defaults to zero (= hook disabled);
 * chaosDefaults() returns the documented rates under which the full
 * 45-module identification must still succeed (EXPERIMENTS.md).
 */
struct FaultConfig
{
    /** Chance per host RD that the read row's VRT mode flips. */
    double vrtFlipChancePerRead = 0.0;
    /** Retention multiplier applied on a VRT mode flip (toggles). */
    double vrtScaleFactor = 3.0;

    /** Chance per host RD that the readout is corrupted on the bus. */
    double readNoiseChancePerRead = 0.0;
    /** Max corrupted bits per noisy readout (uniform in [1, max]). */
    int readNoiseMaxBits = 2;

    /** Chance per default-rate REF interval of timing jitter. */
    double refJitterChance = 0.0;
    /** Jitter magnitude bound (ns, uniform in [-max, +max]). */
    Time refJitterMaxNs = 200;

    /** Chance a REF command is ignored by the module. */
    double dropRefChance = 0.0;
    /** Chance a WR burst is ignored by the module. */
    double dropWrChance = 0.0;
    /** Chance one hammer ACT+PRE cycle is ignored by the module. */
    double dropHammerActChance = 0.0;

    /** Simulated time between temperature-drift steps (0 disables). */
    Time tempStepIntervalNs = 0;
    /** Per-step retention-scale bound (step uniform in [1/b, b]). */
    double tempStepMaxFactor = 1.002;
    /** Cumulative drift clamp: scale stays in [1/c, c]. */
    double tempMaxDrift = 1.05;

    /** Any hook active? Consumers gate behaviour changes on this. */
    bool anyEnabled() const;

    /** Documented default chaos rates (DESIGN.md). */
    static FaultConfig chaosDefaults();
};

/**
 * The injector. Attach to a SoftMcHost (not owned); the host consults
 * it on every REF/WR/RD, hammer cycle, and bulk time advance.
 */
class FaultInjector
{
  public:
    /** Fault-event tallies (mirrored into "fault.*" counters). */
    struct Stats
    {
        std::uint64_t vrtFlips = 0;
        std::uint64_t noiseBits = 0;
        std::uint64_t jitteredRefs = 0;
        std::uint64_t droppedRefs = 0;
        std::uint64_t droppedWrs = 0;
        std::uint64_t droppedHammerActs = 0;
        std::uint64_t tempSteps = 0;

        std::uint64_t droppedCommands() const
        {
            return droppedRefs + droppedWrs + droppedHammerActs;
        }
    };

    FaultInjector(const FaultConfig &config, std::uint64_t seed);

    const FaultConfig &config() const { return cfg; }

    /** True iff any hook can fire (rate-0 injectors are inert). */
    bool enabled() const { return cfg.anyEnabled(); }

    // --- host hooks ----------------------------------------------------

    /** Should this REF command be dropped? */
    bool shouldDropRef(Time now);

    /** Should this WR burst be dropped? */
    bool shouldDropWr(Bank bank, Time now);

    /** Should this hammer ACT+PRE cycle be dropped? */
    bool shouldDropHammerAct(Bank bank, Row row, Time now);

    /** Signed jitter (ns) to add to one default-rate REF interval. */
    Time refJitter(Time now);

    /**
     * Called when the host reads physical row @p phys_row of @p bank:
     * may flip the row's VRT mode (toggling its retention scale by the
     * configured factor).
     */
    void onRowRead(DramModule &dram, Bank bank, Row phys_row, Time now);

    /** May inject bit noise into a readout (bus corruption). */
    void corruptReadout(RowReadout &readout, Bank bank, Time now);

    /**
     * Called after bulk time advances (wait / waitWithRefresh /
     * refAtDefaultRate): walks the module-wide retention scale one
     * temperature step per elapsed interval.
     */
    void onTimeAdvance(DramModule &dram, Time from, Time to);

    // --- observability -------------------------------------------------

    const Stats &stats() const { return tallies; }

    /** Rows whose VRT mode is currently flipped high. */
    std::size_t vrtFlippedRowCount() const { return vrtFlipped.size(); }

    /** Cumulative temperature-drift retention scale (1.0 = nominal). */
    double temperatureScale() const { return tempScale; }

    /**
     * Attach a metrics registry (not owned; nullptr detaches). Fault
     * events land as "fault.vrt_flips", "fault.read_noise_bits",
     * "fault.jittered_refs", "fault.dropped_refs", "fault.dropped_wrs",
     * "fault.dropped_hammer_acts", "fault.temp_steps".
     */
    void attachMetrics(MetricsRegistry *registry);

    /**
     * Attach a command trace (not owned; nullptr detaches). Every fired
     * fault is recorded as an instant FAULT event ("drop_ref",
     * "vrt_flip", "read_noise", "ref_jitter", "temp_step", ...).
     */
    void attachTrace(CommandTrace *command_trace) { trace = command_trace; }

  private:
    void traceFault(const char *what, Bank bank, Row row, Time now);

    FaultConfig cfg;
    Rng vrtRng;
    Rng noiseRng;
    Rng jitterRng;
    Rng dropRng;
    Rng tempRng;

    /** (bank, physical row) pairs currently scaled by vrtScaleFactor. */
    std::set<std::pair<Bank, Row>> vrtFlipped;
    double tempScale = 1.0;
    Time tempAccum = 0;

    Stats tallies;

    MetricsRegistry *metrics = nullptr;
    CommandTrace *trace = nullptr;
    Counter *ctrVrtFlips = nullptr;
    Counter *ctrNoiseBits = nullptr;
    Counter *ctrJitteredRefs = nullptr;
    Counter *ctrDroppedRefs = nullptr;
    Counter *ctrDroppedWrs = nullptr;
    Counter *ctrDroppedHammerActs = nullptr;
    Counter *ctrTempSteps = nullptr;
    Gauge *gaugeTempScale = nullptr;
};

} // namespace utrr

#endif // UTRR_FAULT_FAULT_INJECTOR_HH
