#include "fault/fault_injector.hh"

#include "common/logging.hh"

namespace utrr
{

bool
FaultConfig::anyEnabled() const
{
    return vrtFlipChancePerRead > 0.0 || readNoiseChancePerRead > 0.0 ||
           refJitterChance > 0.0 || dropRefChance > 0.0 ||
           dropWrChance > 0.0 || dropHammerActChance > 0.0 ||
           tempStepIntervalNs > 0;
}

FaultConfig
FaultConfig::chaosDefaults()
{
    // Default chaos rates: frequent enough that a full reverse_engineer
    // run sees every fault class fire, rare enough that the self-healing
    // consumers (Row Scout re-validation, TRR Analyzer quorum voting and
    // retries) keep all 45 module identifications correct. Documented in
    // DESIGN.md; changing them requires re-running `reverse_engineer
    // --chaos`.
    FaultConfig cfg;
    cfg.vrtFlipChancePerRead = 3e-4;
    cfg.vrtScaleFactor = 3.0;
    cfg.readNoiseChancePerRead = 5e-4;
    cfg.readNoiseMaxBits = 2;
    cfg.refJitterChance = 0.02;
    cfg.refJitterMaxNs = 200;
    cfg.dropRefChance = 2e-4;
    cfg.dropWrChance = 1e-4;
    cfg.dropHammerActChance = 1e-4;
    // Temperature drift is deliberately gentle: U-TRR experiments run
    // under controlled temperature (the paper heats modules to a fixed
    // point), and the retention side channel itself — not just this
    // pipeline — breaks physically once retention moves past a
    // profiled row's margin within one experiment. Retention roughly
    // halves per 10 °C, so the ±0.5% ceiling here corresponds to the
    // sub-0.1 °C regulation a real retention testbed needs; larger
    // drift destroys the information (refreshed rows decay past their
    // threshold anyway), which no amount of self-healing can recover —
    // empirically, a ±2% walk makes most TRR fires on single-pair-row
    // vendor-C modules invisible for runs of 4-6 fires at a stretch.
    cfg.tempStepIntervalNs = msToNs(50);
    cfg.tempStepMaxFactor = 1.0002;
    cfg.tempMaxDrift = 1.005;
    return cfg;
}

FaultInjector::FaultInjector(const FaultConfig &config, std::uint64_t seed)
    : cfg(config)
{
    // Each hook draws from its own named sub-stream so the firing of one
    // fault class never shifts another's sequence (and none of them can
    // shift the substrate's streams).
    Rng base(seed);
    vrtRng = base.fork("fault.vrt");
    noiseRng = base.fork("fault.noise");
    jitterRng = base.fork("fault.jitter");
    dropRng = base.fork("fault.drop");
    tempRng = base.fork("fault.temp");
}

void
FaultInjector::traceFault(const char *what, Bank bank, Row row, Time now)
{
    if (trace != nullptr)
        trace->recordFault(what, bank, row, now);
}

bool
FaultInjector::shouldDropRef(Time now)
{
    if (!dropRng.chance(cfg.dropRefChance))
        return false;
    ++tallies.droppedRefs;
    if (ctrDroppedRefs != nullptr)
        ctrDroppedRefs->inc();
    traceFault("drop_ref", 0, kInvalidRow, now);
    return true;
}

bool
FaultInjector::shouldDropWr(Bank bank, Time now)
{
    if (!dropRng.chance(cfg.dropWrChance))
        return false;
    ++tallies.droppedWrs;
    if (ctrDroppedWrs != nullptr)
        ctrDroppedWrs->inc();
    traceFault("drop_wr", bank, kInvalidRow, now);
    return true;
}

bool
FaultInjector::shouldDropHammerAct(Bank bank, Row row, Time now)
{
    if (!dropRng.chance(cfg.dropHammerActChance))
        return false;
    ++tallies.droppedHammerActs;
    if (ctrDroppedHammerActs != nullptr)
        ctrDroppedHammerActs->inc();
    traceFault("drop_hammer_act", bank, row, now);
    return true;
}

Time
FaultInjector::refJitter(Time now)
{
    if (!jitterRng.chance(cfg.refJitterChance))
        return 0;
    ++tallies.jitteredRefs;
    if (ctrJitteredRefs != nullptr)
        ctrJitteredRefs->inc();
    traceFault("ref_jitter", 0, kInvalidRow, now);
    return jitterRng.uniformInt(-cfg.refJitterMaxNs, cfg.refJitterMaxNs);
}

void
FaultInjector::onRowRead(DramModule &dram, Bank bank, Row phys_row,
                         Time now)
{
    if (!vrtRng.chance(cfg.vrtFlipChancePerRead))
        return;
    UTRR_ASSERT(cfg.vrtScaleFactor > 0.0,
                "VRT scale factor must be positive");
    const auto key = std::make_pair(bank, phys_row);
    const auto it = vrtFlipped.find(key);
    if (it == vrtFlipped.end()) {
        dram.scaleRowRetention(bank, phys_row, cfg.vrtScaleFactor, now);
        vrtFlipped.insert(key);
    } else {
        dram.scaleRowRetention(bank, phys_row, 1.0 / cfg.vrtScaleFactor,
                               now);
        vrtFlipped.erase(it);
    }
    ++tallies.vrtFlips;
    if (ctrVrtFlips != nullptr)
        ctrVrtFlips->inc();
    traceFault("vrt_flip", bank, phys_row, now);
}

void
FaultInjector::corruptReadout(RowReadout &readout, Bank bank, Time now)
{
    if (!noiseRng.chance(cfg.readNoiseChancePerRead))
        return;
    const int row_bits = readout.words() * 64;
    if (row_bits <= 0)
        return;
    const auto bits = static_cast<int>(noiseRng.uniformInt(
        1, cfg.readNoiseMaxBits < 1 ? 1 : cfg.readNoiseMaxBits));
    for (int i = 0; i < bits; ++i) {
        readout.injectFlip(
            static_cast<Col>(noiseRng.uniformInt(0, row_bits - 1)));
        ++tallies.noiseBits;
        if (ctrNoiseBits != nullptr)
            ctrNoiseBits->inc();
    }
    traceFault("read_noise", bank, kInvalidRow, now);
}

void
FaultInjector::onTimeAdvance(DramModule &dram, Time from, Time to)
{
    if (cfg.tempStepIntervalNs <= 0 || to <= from)
        return;
    tempAccum += to - from;
    while (tempAccum >= cfg.tempStepIntervalNs) {
        tempAccum -= cfg.tempStepIntervalNs;
        const double bound = cfg.tempStepMaxFactor;
        double step = tempRng.uniformReal(1.0 / bound, bound);
        // Clamp the cumulative walk so drift never outruns the T-step
        // granularity Row Scout profiles at.
        const double lo = 1.0 / cfg.tempMaxDrift;
        const double hi = cfg.tempMaxDrift;
        if (tempScale * step > hi)
            step = hi / tempScale;
        else if (tempScale * step < lo)
            step = lo / tempScale;
        tempScale *= step;
        dram.scaleAllRetention(step);
        ++tallies.tempSteps;
        if (ctrTempSteps != nullptr)
            ctrTempSteps->inc();
        if (gaugeTempScale != nullptr)
            gaugeTempScale->set(tempScale);
        traceFault("temp_step", 0, kInvalidRow, to);
    }
}

void
FaultInjector::attachMetrics(MetricsRegistry *registry)
{
    metrics = registry;
    if (registry == nullptr) {
        ctrVrtFlips = nullptr;
        ctrNoiseBits = nullptr;
        ctrJitteredRefs = nullptr;
        ctrDroppedRefs = nullptr;
        ctrDroppedWrs = nullptr;
        ctrDroppedHammerActs = nullptr;
        ctrTempSteps = nullptr;
        gaugeTempScale = nullptr;
        return;
    }
    ctrVrtFlips = &registry->counter("fault.vrt_flips");
    ctrNoiseBits = &registry->counter("fault.read_noise_bits");
    ctrJitteredRefs = &registry->counter("fault.jittered_refs");
    ctrDroppedRefs = &registry->counter("fault.dropped_refs");
    ctrDroppedWrs = &registry->counter("fault.dropped_wrs");
    ctrDroppedHammerActs =
        &registry->counter("fault.dropped_hammer_acts");
    ctrTempSteps = &registry->counter("fault.temp_steps");
    gaugeTempScale = &registry->gauge("fault.temp_scale");
    // Seed existing tallies so late attachment still reports totals.
    ctrVrtFlips->value = tallies.vrtFlips;
    ctrNoiseBits->value = tallies.noiseBits;
    ctrJitteredRefs->value = tallies.jitteredRefs;
    ctrDroppedRefs->value = tallies.droppedRefs;
    ctrDroppedWrs->value = tallies.droppedWrs;
    ctrDroppedHammerActs->value = tallies.droppedHammerActs;
    ctrTempSteps->value = tallies.tempSteps;
    gaugeTempScale->set(tempScale);
}

} // namespace utrr
