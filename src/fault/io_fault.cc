#include "fault/io_fault.hh"

#include <cstdlib>

#include <signal.h>
#include <unistd.h>

#include "common/logging.hh"

namespace utrr
{

void
JournalWriteFault::die(int fd)
{
    if (fd >= 0)
        ::fsync(fd);
    ::kill(::getpid(), SIGKILL);
    // SIGKILL cannot be caught; if delivery is somehow delayed, stop
    // here rather than returning into the journal writer.
    ::_exit(137);
}

std::optional<JournalWriteFault>
JournalWriteFault::parse(const std::string &spec)
{
    if (spec.empty())
        return std::nullopt;
    JournalWriteFault fault;
    char *end = nullptr;
    fault.crashAtRecord = std::strtoll(spec.c_str(), &end, 10);
    if (end == spec.c_str() || fault.crashAtRecord < 0)
        return std::nullopt;
    if (*end == ':') {
        const char *bytes = end + 1;
        fault.partialBytes = std::strtoll(bytes, &end, 10);
        if (end == bytes || fault.partialBytes < 0)
            return std::nullopt;
    }
    if (*end != '\0')
        return std::nullopt;
    return fault;
}

std::optional<JournalWriteFault>
JournalWriteFault::fromEnv()
{
    const char *spec = std::getenv("UTRR_JOURNAL_CRASH");
    if (spec == nullptr || *spec == '\0')
        return std::nullopt;
    auto fault = parse(spec);
    if (!fault)
        warn(logFmt("io_fault: malformed UTRR_JOURNAL_CRASH '", spec,
                    "' (want N or N:B); ignoring"));
    return fault;
}

} // namespace utrr
