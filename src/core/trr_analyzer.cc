#include "core/trr_analyzer.hh"

#include <algorithm>

#include "common/logging.hh"
#include "fault/fault_injector.hh"
#include "obs/profiler.hh"
#include "obs/timer.hh"

namespace utrr
{

bool
TrrExperimentResult::anyRefreshed() const
{
    return std::any_of(refreshed.begin(), refreshed.end(),
                       [](bool r) { return r; });
}

std::uint64_t
TrrExperimentResult::refreshedMask() const
{
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < refreshed.size() && i < 64; ++i) {
        if (refreshed[i])
            mask |= 1ULL << i;
    }
    return mask;
}

TrrAnalyzer::TrrAnalyzer(SoftMcHost &host, DiscoveredMapping mapping)
    : host(host), mapping(std::move(mapping))
{
}

std::vector<Row>
TrrAnalyzer::pickDummyRows(Bank bank, const std::vector<Row> &avoid_phys,
                           int count) const
{
    // Dummy rows come from the same bank (TRR may be bank-scoped) and
    // must sit >= 100 physical rows away from every avoided row so that
    // hammering them cannot disturb the experiment (paper §5.2).
    constexpr Row kMinDistance = 100;
    UTRR_ASSERT(bank >= 0 && bank < host.module().spec().banks,
                "bad bank");
    const Row rows = host.module().spec().rowsPerBank;

    std::vector<Row> dummies;
    Row candidate_phys = 0;
    // Start scanning from a position past the densest avoided cluster.
    for (Row phys : avoid_phys)
        candidate_phys = std::max(candidate_phys, phys);
    candidate_phys += kMinDistance;

    int guard = 0;
    while (static_cast<int>(dummies.size()) < count &&
           guard < 4 * count + 1'000) {
        ++guard;
        Row phys = candidate_phys % rows;
        candidate_phys += 4; // spacing so dummies don't disturb each other
        bool ok = true;
        for (Row avoided : avoid_phys) {
            if (std::abs(phys - avoided) < kMinDistance) {
                ok = false;
                break;
            }
        }
        if (!ok)
            continue;
        const Row logical = mapping.toLogical(phys);
        if (logical < 0 || logical >= rows ||
            mapping.isAnomalous(logical)) {
            continue;
        }
        dummies.push_back(logical);
    }
    UTRR_ASSERT(static_cast<int>(dummies.size()) == count,
                "could not place the requested dummy rows");
    return dummies;
}

void
TrrAnalyzer::resetTrrState(Bank bank, const std::vector<Row> &avoid_phys,
                           int refs, int dummies, int hammers_per_refi)
{
    UTRR_PROF_SCOPE_SIM("trr_analyzer.reset_trr_state", host.clockPtr());
    const std::vector<Row> dummy_rows =
        pickDummyRows(bank, avoid_phys, dummies);
    std::size_t next = 0;
    for (int i = 0; i < refs; ++i) {
        for (int h = 0; h < hammers_per_refi; ++h) {
            host.hammer(bank, dummy_rows[next], 1);
            next = (next + 1) % dummy_rows.size();
        }
        host.ref();
        // Pad to the default REF rate.
        const Time used = static_cast<Time>(hammers_per_refi) *
                host.timing().hammerCycle() +
            host.timing().tRFC;
        if (used < host.timing().tREFI)
            host.wait(host.timing().tREFI - used);
    }
}

std::vector<Row>
TrrAnalyzer::avoidListOf(
    const RowGroup &group,
    const std::vector<AggressorSpec> &aggressors) const
{
    std::vector<Row> avoid;
    for (const ProfiledRow &row : group.rows)
        avoid.push_back(row.physRow);
    for (const AggressorSpec &aggr : aggressors)
        avoid.push_back(aggr.physRow);
    return avoid;
}

TrrExperimentResult
TrrAnalyzer::runExperiment(const RowGroup &group,
                           const TrrExperimentConfig &config)
{
    TrrMultiResult multi = runExperimentMulti({group}, config);
    return std::move(multi.perGroup.front());
}

TrrMultiResult
TrrAnalyzer::runExperimentMulti(const std::vector<RowGroup> &groups,
                                const TrrExperimentConfig &config)
{
    UTRR_ASSERT(!groups.empty(), "need at least one row group");
    const Bank bank = groups.front().bank;
    const Time retention = groups.front().retention;

    UTRR_PROF_SCOPE_SIM("trr_analyzer.experiment", host.clockPtr());
    ScopedTimer timer(host.attachedMetrics(), "trr_analyzer.experiment");
    const auto sim_now = [this] { return host.now(); };
    const Time sim_begin = host.now();
    SimPhase experiment_phase(&host.trace(), "trr_experiment", sim_now);

    std::vector<Row> avoid;
    for (const RowGroup &group : groups) {
        UTRR_ASSERT(group.bank == bank,
                    "multi-group experiments are single-bank");
        UTRR_ASSERT(group.retention == retention,
                    "groups must share one retention time");
        for (const ProfiledRow &row : group.rows)
            avoid.push_back(row.physRow);
    }
    for (const AggressorSpec &aggr : config.aggressors)
        avoid.push_back(aggr.physRow);

    // Step 0 (optional): reset TRR internal state (Requirement 4).
    if (config.reset == TrrResetMode::kDummyHammer) {
        SimPhase phase(&host.trace(), "trr_reset", sim_now);
        resetTrrState(bank, avoid, config.resetRefs, config.resetDummies,
                      config.resetHammersPerRefi);
    }

    // Step 1: initialize aggressor and victim rows.
    {
        SimPhase phase(&host.trace(), "init_rows", sim_now);
        auto init_aggressors = [&] {
            if (config.skipAggressorInit)
                return;
            for (const AggressorSpec &aggr : config.aggressors) {
                host.writeRow(bank, mapping.toLogical(aggr.physRow),
                              config.aggressorPattern);
            }
        };
        auto init_victims = [&] {
            for (const RowGroup &group : groups) {
                for (const ProfiledRow &row : group.rows) {
                    host.writeRow(bank, row.logicalRow,
                                  config.victimPattern);
                }
            }
        };
        if (config.initAggressorsFirst) {
            init_aggressors();
            init_victims();
        } else {
            init_victims();
            init_aggressors();
        }
    }

    // Step 2: let the victims decay for T/2.
    host.wait(retention / 2);

    // Step 3: hammer rounds, each ending in REF commands.
    std::vector<std::pair<Bank, Row>> aggr_rows;
    std::vector<int> aggr_counts;
    for (const AggressorSpec &aggr : config.aggressors) {
        aggr_rows.emplace_back(bank, mapping.toLogical(aggr.physRow));
        aggr_counts.push_back(aggr.hammers);
    }
    std::vector<Row> dummy_rows;
    if (config.dummyRowCount > 0) {
        dummy_rows =
            pickDummyRows(bank, avoid, config.dummyRowCount);
    }
    auto hammer_dummies = [&] {
        for (Row dummy : dummy_rows)
            host.hammer(bank, dummy, config.dummyHammers);
    };

    TrrMultiResult multi;
    multi.refsBefore = host.refCommandCount();
    {
        SimPhase phase(&host.trace(), "hammer_rounds", sim_now);
        for (int round = 0; round < config.rounds; ++round) {
            if (config.dummiesFirst)
                hammer_dummies();
            if (!aggr_rows.empty()) {
                if (config.mode == HammerMode::kInterleaved)
                    host.hammerInterleaved(aggr_rows, aggr_counts);
                else
                    host.hammerCascaded(aggr_rows, aggr_counts);
            }
            if (!config.dummiesFirst)
                hammer_dummies();
            host.refBurst(config.refsPerRound);
            multi.rounds.push_back({host.refCommandCount(),
                                    host.actCount(), host.now()});
        }
    }
    multi.refsAfter = host.refCommandCount();

    // Step 4: second half of the retention window.
    host.wait(retention / 2);

    // Step 5: read the victims back. Under active fault injection each
    // row is read several times and the verdict taken by majority
    // (quorum voting): a transient read-back corruption then cannot
    // flip the refreshed/not-refreshed signal the whole methodology
    // rests on. Repeated reads are side-effect-free — the first ACT of
    // the read-back already committed all due retention flips.
    FaultInjector *injector = host.faultInjector();
    const int votes =
        injector != nullptr && injector->enabled() && config.readVotes > 1
            ? config.readVotes
            : 1;
    {
        SimPhase phase(&host.trace(), "readback", sim_now);
        for (const RowGroup &group : groups) {
            TrrExperimentResult result;
            result.refsBefore = multi.refsBefore;
            result.refsAfter = multi.refsAfter;
            for (const ProfiledRow &row : group.rows) {
                int zero_votes = 0;
                std::vector<int> counts;
                counts.reserve(static_cast<std::size_t>(votes));
                for (int v = 0; v < votes; ++v) {
                    const RowReadout readout =
                        host.readRow(bank, row.logicalRow);
                    const int flips = readout.countFlipsVs(
                        config.victimPattern, row.logicalRow);
                    counts.push_back(flips);
                    if (flips == 0)
                        ++zero_votes;
                }
                const bool refreshed = 2 * zero_votes > votes;
                // Report the median flip count so one corrupted read
                // cannot skew the magnitude either.
                std::sort(counts.begin(), counts.end());
                result.flips.push_back(
                    counts[counts.size() / 2]);
                result.refreshed.push_back(refreshed);
                if (MetricsRegistry *m = host.attachedMetrics();
                    m != nullptr && votes > 1) {
                    m->counter("trr_analyzer.read_votes")
                        .inc(static_cast<std::uint64_t>(votes));
                    const bool unanimous =
                        zero_votes == 0 || zero_votes == votes;
                    if (!unanimous)
                        m->counter("trr_analyzer.vote_overrides").inc();
                }
            }
            multi.perGroup.push_back(std::move(result));
        }
    }
    multi.simNs = host.now() - sim_begin;
    multi.wallMs = timer.elapsedUs() / 1'000.0;
    return multi;
}

ExperimentReport
TrrAnalyzer::makeReport(const TrrExperimentConfig &config,
                        const TrrMultiResult &result) const
{
    ExperimentReport report("trr_analyzer");

    Json aggressors = Json::array();
    for (const AggressorSpec &aggr : config.aggressors) {
        Json entry = Json::object();
        entry["phys_row"] = Json(static_cast<std::int64_t>(aggr.physRow));
        entry["hammers"] = Json(static_cast<std::int64_t>(aggr.hammers));
        aggressors.push(std::move(entry));
    }
    report.setConfig("aggressors", std::move(aggressors));
    report.setConfig("hammer_mode",
                     Json(config.mode == HammerMode::kInterleaved
                              ? "interleaved"
                              : "cascaded"));
    report.setConfig("rounds",
                     Json(static_cast<std::int64_t>(config.rounds)));
    report.setConfig("refs_per_round",
                     Json(static_cast<std::int64_t>(config.refsPerRound)));
    report.setConfig("dummy_rows",
                     Json(static_cast<std::int64_t>(config.dummyRowCount)));
    report.setConfig(
        "reset",
        Json(config.reset == TrrResetMode::kDummyHammer ? "dummy_hammer"
                                                        : "none"));
    report.setSeed(host.module().seed());

    for (const RoundRecord &round : result.rounds) {
        Json entry = Json::object();
        entry["refs_after"] =
            Json(static_cast<std::uint64_t>(round.refsAfter));
        entry["acts_after"] =
            Json(static_cast<std::uint64_t>(round.actsAfter));
        entry["sim_after_ns"] =
            Json(static_cast<std::int64_t>(round.simAfter));
        report.addRound(std::move(entry));
    }

    Json groups = Json::array();
    for (const TrrExperimentResult &group : result.perGroup) {
        Json entry = Json::object();
        Json flips = Json::array();
        for (int f : group.flips)
            flips.push(Json(static_cast<std::int64_t>(f)));
        Json refreshed = Json::array();
        for (bool r : group.refreshed)
            refreshed.push(Json(r));
        entry["flips"] = std::move(flips);
        entry["refreshed"] = std::move(refreshed);
        entry["any_refreshed"] = Json(group.anyRefreshed());
        groups.push(std::move(entry));
    }
    report.setResult("groups", std::move(groups));
    report.setResult("refs_before",
                     Json(static_cast<std::uint64_t>(result.refsBefore)));
    report.setResult("refs_after",
                     Json(static_cast<std::uint64_t>(result.refsAfter)));
    report.setTiming(result.wallMs, result.simNs);
    return report;
}

bool
TrrAnalyzer::verifyAdjacency(const RowGroup &group,
                             const std::vector<AggressorSpec> &aggressors,
                             int hammers)
{
    const Bank bank = group.bank;
    for (const ProfiledRow &row : group.rows)
        host.writeRow(bank, row.logicalRow, DataPattern::allOnes());

    std::vector<std::pair<Bank, Row>> rows;
    std::vector<int> counts;
    for (const AggressorSpec &aggr : aggressors) {
        host.writeRow(bank, mapping.toLogical(aggr.physRow),
                      DataPattern::allZeros());
        rows.emplace_back(bank, mapping.toLogical(aggr.physRow));
        counts.push_back(hammers);
    }
    host.hammerInterleaved(rows, counts);

    // Each aggressor must flip at least one profiled row in its
    // physical neighbourhood; none flipping means the row addresses do
    // not land where assumed (a remapped aggressor or victim, §5.3).
    // The criterion is per-aggressor (not per-victim) so it also holds
    // for paired-row organizations, where only the pair row couples.
    std::vector<int> flips;
    for (const ProfiledRow &row : group.rows) {
        const RowReadout readout = host.readRow(bank, row.logicalRow);
        flips.push_back(readout.countFlipsVs(DataPattern::allOnes(),
                                             row.logicalRow));
    }
    for (const AggressorSpec &aggr : aggressors) {
        bool hit = false;
        for (std::size_t i = 0; i < group.rows.size(); ++i) {
            if (std::abs(group.rows[i].physRow - aggr.physRow) <= 2 &&
                flips[i] > 0) {
                hit = true;
                break;
            }
        }
        if (!hit)
            return false;
    }
    return true;
}

bool
TrrAnalyzer::verifyAdjacencyEscalating(
    const RowGroup &group, const std::vector<AggressorSpec> &aggressors,
    int max_hammers)
{
    for (int hammers = 300'000; hammers <= max_hammers; hammers *= 2) {
        if (verifyAdjacency(group, aggressors, hammers))
            return true;
    }
    return false;
}

} // namespace utrr
