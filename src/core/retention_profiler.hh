/**
 * @file
 * Whole-range retention characterization (paper §4 context).
 *
 * Row Scout deliberately avoids profiling every row — it hunts for a
 * handful of usable ones. This companion profiler does the opposite:
 * it sweeps a row range at increasing retention targets and builds the
 * retention-time distribution (plus a VRT-suspect count), the kind of
 * data classic profilers (RAIDR, REAPER) collect and the basis for the
 * substrate's calibration (see DESIGN.md §5). Used by bench_rowscout
 * and the substrate validation tests.
 */

#ifndef UTRR_CORE_RETENTION_PROFILER_HH
#define UTRR_CORE_RETENTION_PROFILER_HH

#include <map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "dram/data_pattern.hh"
#include "softmc/host.hh"

namespace utrr
{

/** Distribution of observed per-row retention times. */
struct RetentionProfile
{
    /** Retention bucket (ms, bucket upper edge) -> rows first failing
     *  in that bucket. */
    std::map<double, int> histogramMs;
    /** Rows that failed at the smallest tested time. */
    int failedAtMin = 0;
    /** Rows that never failed within the tested horizon. */
    int neverFailed = 0;
    /** Rows whose failure behaviour changed between repetitions
     *  (VRT suspects). */
    int vrtSuspects = 0;
    int rowsProfiled = 0;

    /** Fraction of rows failing within the horizon. */
    double weakFraction() const;
};

/**
 * Range retention profiler.
 */
class RetentionProfiler
{
  public:
    struct Config
    {
        Bank bank = 0;
        Row rowStart = 0;
        Row rowEnd = 4 * 1024;
        DataPattern pattern = DataPattern::allOnes();
        /** Tested retention targets: start, multiplicative step, max. */
        Time initialT = 125 * kNsPerMs;
        double stepFactor = 2.0;
        Time maxT = 4'000 * kNsPerMs;
        /** Re-test rounds used to spot VRT suspects. */
        int repeats = 3;
    };

    RetentionProfiler(SoftMcHost &host, Config config);

    /** Run the sweep and build the distribution. */
    RetentionProfile profile();

  private:
    /** Rows of the range failing within t (one pass). */
    std::vector<bool> failingAt(Time t);

    SoftMcHost &host;
    Config cfg;
};

} // namespace utrr

#endif // UTRR_CORE_RETENTION_PROFILER_HH
