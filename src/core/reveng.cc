#include "core/reveng.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"
#include "fault/fault_injector.hh"
#include "obs/profiler.hh"

namespace utrr
{

std::string
detectionTypeName(DetectionType type)
{
    switch (type) {
      case DetectionType::kUnknown:
        return "unknown";
      case DetectionType::kCounterBased:
        return "counter-based";
      case DetectionType::kSamplingBased:
        return "sampling-based";
      case DetectionType::kWindowBased:
        return "window-based";
    }
    return "?";
}

std::string
TrrProfile::summary() const
{
    return logFmt("TRR: 1/", trrToRefPeriod, " REFs, ",
                  neighborsRefreshed, " neighbours, ",
                  detectionTypeName(detection), ", capacity ",
                  aggressorCapacity, ", ",
                  perBank ? "per-bank" : "chip-wide",
                  ", regular refresh every ", regularRefreshPeriodRefs,
                  " REFs");
}

std::vector<int>
TrrReveng::IterationTrace::eventsOf(std::size_t group) const
{
    std::vector<int> events;
    for (std::size_t it = 0; it < masks.size(); ++it) {
        if (masks[it].at(group) != 0)
            events.push_back(static_cast<int>(it));
    }
    return events;
}

std::vector<int>
TrrReveng::IterationTrace::anyEvents() const
{
    std::vector<int> events;
    for (std::size_t it = 0; it < masks.size(); ++it) {
        bool any = false;
        for (std::uint64_t mask : masks[it])
            any = any || mask != 0;
        if (any)
            events.push_back(static_cast<int>(it));
    }
    return events;
}

int
TrrReveng::IterationTrace::dominantPeriod(const std::vector<int> &events)
{
    if (events.size() < 2)
        return 0;
    std::map<int, int> diff_counts;
    for (std::size_t i = 1; i < events.size(); ++i)
        ++diff_counts[events[i] - events[i - 1]];
    int best_diff = 0;
    int best_count = 0;
    for (const auto &[diff, count] : diff_counts) {
        if (count > best_count) {
            best_count = count;
            best_diff = diff;
        }
    }
    return best_diff;
}

TrrReveng::TrrReveng(SoftMcHost &host, DiscoveredMapping mapping,
                     TrrRevengConfig config)
    : host(host), mapping(mapping), cfg(std::move(config)),
      analyzer(host, std::move(mapping))
{
}

void
TrrReveng::retryWithFreshRows(const char *why, Bank bank)
{
    auto &burned = burnedByBank[bank];
    for (const RowGroup &group : rrPools[bank]) {
        for (const ProfiledRow &row : group.rows)
            burned.push_back(row.physRow);
        for (Row gap : group.gapPhysRows())
            burned.push_back(gap);
    }
    rrPools[bank].clear();
    ++freshRowRetries;
    if (MetricsRegistry *m = host.attachedMetrics())
        m->counter("reveng.fresh_row_retries").inc();
    warn(logFmt("reveng: ", why, " — retrying with fresh rows (",
                burned.size(), " burned in bank ", bank, ")"));
}

void
TrrReveng::retryWithFreshWideGroup(const char *why)
{
    for (const RowGroup &group : widePool) {
        auto &burned = burnedByBank[group.bank];
        for (const ProfiledRow &row : group.rows)
            burned.push_back(row.physRow);
        for (Row gap : group.gapPhysRows())
            burned.push_back(gap);
    }
    widePool.clear();
    ++freshRowRetries;
    if (MetricsRegistry *m = host.attachedMetrics())
        m->counter("reveng.fresh_row_retries").inc();
    warn(logFmt("reveng: ", why,
                " — retrying with a fresh wide group"));
}

bool
TrrReveng::chaosActive() const
{
    const FaultInjector *injector = host.faultInjector();
    return injector != nullptr && injector->enabled();
}

bool
TrrReveng::groupStillHealthy(const RowGroup &group)
{
    RowScoutConfig scout_cfg;
    scout_cfg.bank = group.bank;
    RowScout scout(host, mapping, scout_cfg);
    for (const ProfiledRow &row : group.rows)
        if (!scout.validateRetention(row.logicalRow, group.retention, 1))
            return false;
    return true;
}

void
TrrReveng::quarantineGroups(Bank bank, const std::vector<RowGroup> &bad)
{
    auto &burned = burnedByBank[bank];
    for (const RowGroup &group : bad) {
        for (const ProfiledRow &row : group.rows)
            burned.push_back(row.physRow);
        for (Row gap : group.gapPhysRows())
            burned.push_back(gap);
    }
    auto &pool = rrPools[bank];
    pool.erase(std::remove_if(pool.begin(), pool.end(),
                              [&bad](const RowGroup &group) {
                                  for (const RowGroup &b : bad)
                                      if (b.basePhysRow ==
                                          group.basePhysRow)
                                          return true;
                                  return false;
                              }),
               pool.end());
    if (MetricsRegistry *m = host.attachedMetrics())
        m->counter("reveng.quarantined_groups").inc(bad.size());
    warn(logFmt("reveng: quarantined ", bad.size(),
                " group(s) that read refreshed unconditionally (bank ",
                bank, ")"));
}

std::vector<RowGroup>
TrrReveng::groupsRR(int count, Bank bank)
{
    UTRR_PROF_SCOPE_SIM("reveng.scout_groups", host.clockPtr());
    auto &pool = rrPools[bank];
    if (static_cast<int>(pool.size()) < count) {
        // Over-scout: the §5.3 adjacency pre-check drops groups whose
        // aggressor slot or profiled rows were remapped by repair.
        RowScoutConfig scout_cfg;
        scout_cfg.bank = bank;
        scout_cfg.rowStart = cfg.scoutRowStart;
        scout_cfg.rowEnd = cfg.scoutRowEnd;
        scout_cfg.layout = RowGroupLayout::parse("R-R");
        scout_cfg.groupCount = count + 3;
        scout_cfg.consistencyChecks = cfg.consistencyChecks;
        scout_cfg.revalidateChecks = cfg.revalidateChecks;
        scout_cfg.excludePhys = burnedByBank[bank];
        RowScout scout(host, mapping, scout_cfg);
        pool.clear();
        for (RowGroup &group : scout.scout()) {
            AggressorSpec probe;
            probe.physRow = group.gapPhysRows().front();
            if (!analyzer.verifyAdjacencyEscalating(group, {probe})) {
                warn(logFmt("dropping group at physical row ",
                            group.basePhysRow,
                            ": aggressor cannot hammer it (remapped?)"));
                continue;
            }
            pool.push_back(std::move(group));
        }
    }
    const int have = std::min<int>(count, static_cast<int>(pool.size()));
    return {pool.begin(), pool.begin() + have};
}

bool
TrrReveng::refillWidePool()
{
    // Six retention-matched rows in a 7-row span are rare; scan the
    // whole bank and fall back to other banks if needed.
    const int banks = host.module().spec().banks;
    for (int attempt = 0; attempt < banks && widePool.empty();
         ++attempt) {
        RowScoutConfig scout_cfg;
        scout_cfg.bank = (cfg.bank + attempt) % banks;
        scout_cfg.rowStart = cfg.scoutRowStart;
        scout_cfg.rowEnd = std::min(cfg.wideScoutRowEnd,
                                    host.module().spec().rowsPerBank);
        scout_cfg.layout = RowGroupLayout::parse("RRR-RRR");
        scout_cfg.groupCount = 1;
        scout_cfg.consistencyChecks = cfg.consistencyChecks;
        scout_cfg.revalidateChecks = cfg.revalidateChecks;
        scout_cfg.excludePhys = burnedByBank[scout_cfg.bank];
        RowScout scout(host, mapping, scout_cfg);
        widePool = scout.scout();
    }
    return !widePool.empty();
}

const RowGroup &
TrrReveng::groupWide()
{
    if (widePool.empty()) {
        refillWidePool();
        UTRR_ASSERT(!widePool.empty(),
                    "row scout found no RRR-RRR group in any bank");
    }
    return widePool.front();
}

void
TrrReveng::warmUp()
{
    // Scout only the R-R pool: identify() consumes it first, so
    // pre-scouting it leaves the device command stream identical to
    // the lazy flow. The wide (RRR-RRR) group must NOT be pre-scouted
    // here — lazily it is scouted *after* the period experiments, and
    // hoisting those commands ahead of them shifts the refresh-engine
    // interleaving enough to flip identifications on some modules.
    UTRR_PROF_SCOPE_SIM("reveng.warm_up", host.clockPtr());
    groupsRR(16, cfg.bank);
}

namespace
{

Json
groupToJson(const RowGroup &group)
{
    Json out = Json::object();
    out["layout"] = Json(group.layout.text());
    out["base"] = Json(static_cast<std::int64_t>(group.basePhysRow));
    out["bank"] = Json(static_cast<std::int64_t>(group.bank));
    out["retention"] =
        Json(static_cast<std::int64_t>(group.retention));
    Json rows = Json::array();
    for (const ProfiledRow &row : group.rows) {
        Json entry = Json::object();
        entry["bank"] = Json(static_cast<std::int64_t>(row.bank));
        entry["logical"] =
            Json(static_cast<std::int64_t>(row.logicalRow));
        entry["phys"] = Json(static_cast<std::int64_t>(row.physRow));
        entry["retention"] =
            Json(static_cast<std::int64_t>(row.retention));
        rows.push(std::move(entry));
    }
    out["rows"] = std::move(rows);
    return out;
}

RowGroup
groupFromJson(const Json &json)
{
    RowGroup group;
    if (const Json *layout = json.find("layout"))
        group.layout = RowGroupLayout::parse(layout->asString());
    if (const Json *base = json.find("base"))
        group.basePhysRow = static_cast<Row>(base->asInt());
    if (const Json *bank = json.find("bank"))
        group.bank = static_cast<Bank>(bank->asInt());
    if (const Json *retention = json.find("retention"))
        group.retention = static_cast<Time>(retention->asInt());
    if (const Json *rows = json.find("rows")) {
        for (std::size_t i = 0; i < rows->size(); ++i) {
            const Json &entry = rows->at(i);
            ProfiledRow row;
            if (const Json *bank = entry.find("bank"))
                row.bank = static_cast<Bank>(bank->asInt());
            if (const Json *logical = entry.find("logical"))
                row.logicalRow = static_cast<Row>(logical->asInt());
            if (const Json *phys = entry.find("phys"))
                row.physRow = static_cast<Row>(phys->asInt());
            if (const Json *retention = entry.find("retention"))
                row.retention = static_cast<Time>(retention->asInt());
            group.rows.push_back(row);
        }
    }
    return group;
}

} // namespace

Json
TrrReveng::exportPools() const
{
    Json out = Json::object();
    Json rr = Json::object();
    for (const auto &[bank, pool] : rrPools) {
        Json groups = Json::array();
        for (const RowGroup &group : pool)
            groups.push(groupToJson(group));
        rr[logFmt(bank)] = std::move(groups);
    }
    out["rr"] = std::move(rr);
    Json wide = Json::array();
    for (const RowGroup &group : widePool)
        wide.push(groupToJson(group));
    out["wide"] = std::move(wide);
    Json burned = Json::object();
    for (const auto &[bank, rows] : burnedByBank) {
        Json list = Json::array();
        for (const Row row : rows)
            list.push(Json(static_cast<std::int64_t>(row)));
        burned[logFmt(bank)] = std::move(list);
    }
    out["burned"] = std::move(burned);
    out["fresh_row_retries"] = Json(freshRowRetries);
    return out;
}

void
TrrReveng::importPools(const Json &pools)
{
    rrPools.clear();
    widePool.clear();
    burnedByBank.clear();
    if (const Json *rr = pools.find("rr")) {
        for (const auto &[bank_text, groups] : rr->members()) {
            const Bank bank =
                static_cast<Bank>(std::stoll(bank_text));
            std::vector<RowGroup> &pool = rrPools[bank];
            for (std::size_t i = 0; i < groups.size(); ++i)
                pool.push_back(groupFromJson(groups.at(i)));
        }
    }
    if (const Json *wide = pools.find("wide")) {
        for (std::size_t i = 0; i < wide->size(); ++i)
            widePool.push_back(groupFromJson(wide->at(i)));
    }
    if (const Json *burned = pools.find("burned")) {
        for (const auto &[bank_text, rows] : burned->members()) {
            const Bank bank =
                static_cast<Bank>(std::stoll(bank_text));
            std::vector<Row> &list = burnedByBank[bank];
            for (std::size_t i = 0; i < rows.size(); ++i)
                list.push_back(static_cast<Row>(rows.at(i).asInt()));
        }
    }
    if (const Json *retries = pools.find("fresh_row_retries"))
        freshRowRetries =
            static_cast<std::uint64_t>(retries->asInt());
}

TrrExperimentConfig
TrrReveng::configFor(const std::vector<RowGroup> &groups,
                     const IterationPlan &plan) const
{
    UTRR_ASSERT(plan.hammersPerGroup.size() == groups.size(),
                "one hammer count per group");
    TrrExperimentConfig config;
    for (std::size_t g = 0; g < groups.size(); ++g) {
        if (plan.hammersPerGroup[g] <= 0)
            continue;
        AggressorSpec aggr;
        aggr.physRow = groups[g].gapPhysRows().front();
        aggr.hammers = plan.hammersPerGroup[g];
        config.aggressors.push_back(aggr);
    }
    config.mode = plan.mode;
    config.rounds = 1;
    config.refsPerRound = 1;
    config.dummyRowCount = plan.dummyRowCount;
    config.dummyHammers = plan.dummyHammers;
    config.dummiesFirst = plan.dummiesFirst;
    config.reset = TrrResetMode::kNone;
    config.skipAggressorInit = !plan.initAggressorsEachIter;
    config.readVotes = plan.readVotes;
    return config;
}

TrrReveng::IterationTrace
TrrReveng::runIterations(const std::vector<RowGroup> &groups,
                         const IterationPlan &plan, int iterations,
                         const IterationPlan *first_iter_plan)
{
    UTRR_PROF_SCOPE_SIM("reveng.iterations", host.clockPtr());
    // One reset up front; iterations themselves must not reset so that
    // REF-count periodicities stay observable.
    std::vector<Row> avoid;
    for (const RowGroup &group : groups) {
        for (const ProfiledRow &row : group.rows)
            avoid.push_back(row.physRow);
        for (Row gap : group.gapPhysRows())
            avoid.push_back(gap);
    }
    analyzer.resetTrrState(groups.front().bank, avoid, 768, 32, 16);

    IterationTrace trace;
    for (int it = 0; it < iterations; ++it) {
        const IterationPlan &active =
            (it == 0 && first_iter_plan != nullptr) ? *first_iter_plan
                                                    : plan;
        TrrExperimentConfig config = configFor(groups, active);
        if (it == 0)
            config.skipAggressorInit = false; // data must exist once
        const TrrMultiResult result =
            analyzer.runExperimentMulti(groups, config);
        std::vector<std::uint64_t> masks;
        for (const TrrExperimentResult &res : result.perGroup)
            masks.push_back(res.refreshedMask());
        trace.masks.push_back(std::move(masks));
    }
    return trace;
}

namespace
{

/**
 * Period estimate from event iterations, aware of TRR deferral: a
 * vendor-C TRR eligible every p REFs may defer when no aggressor is
 * detected at the eligible REF, lengthening some gaps to p+1 — but a
 * gap can never be shorter than p. When the mode lands on a gap whose
 * predecessor is also frequent, the mode is the deferred variant and
 * the shorter gap is the true period. Vendors without deferral produce
 * exact gaps, so the rule never fires for them.
 */
int
periodFromEvents(const std::vector<int> &events)
{
    if (events.size() < 2)
        return 0;
    std::map<int, int> counts;
    for (std::size_t i = 1; i < events.size(); ++i)
        ++counts[events[i] - events[i - 1]];
    int mode = 0;
    int mode_count = 0;
    for (const auto &[gap, count] : counts) {
        if (count > mode_count) {
            mode = gap;
            mode_count = count;
        }
    }
    const auto prev = counts.find(mode - 1);
    if (prev != counts.end() && prev->second * 2 >= mode_count)
        return mode - 1;
    return mode;
}

} // namespace

int
TrrReveng::discoverTrrRefPeriod()
{
    // Paper §6.1.1: with N >= 16 hammered row groups, some group is
    // refreshed at every TRR-capable REF, exposing the TRR-to-REF
    // ratio as the dominant gap between refresh events.
    const bool chaos = chaosActive();

    // One measurement pass over @p iterations iterations, with the
    // per-round sanity checks, two layers. First: one TRR-capable REF
    // serves one of the 16 hammered groups, so no healthy group can
    // see events in nearly every iteration. Second (only under active
    // fault injection): re-validate each group's retention margin after
    // the measurement — the check issues no REF, so a row reading clean
    // after T proves its margin silently vanished (VRT flip,
    // temperature drift) and its events were garbage at whatever rate
    // they fired. Broken groups are dropped from the analysis and
    // their rows burned.
    auto measure = [&](int iterations) {
        std::vector<RowGroup> groups = groupsRR(16, cfg.bank);
        UTRR_ASSERT(!groups.empty(), "no R-R groups available");

        IterationPlan plan;
        plan.hammersPerGroup.assign(groups.size(), 2'000);
        plan.mode = HammerMode::kCascaded;

        const IterationTrace trace =
            runIterations(groups, plan, iterations);

        std::vector<bool> stuck(groups.size(), false);
        std::vector<RowGroup> stuck_groups;
        for (std::size_t g = 0; g < groups.size(); ++g) {
            const auto group_events = trace.eventsOf(g);
            const bool always_on =
                static_cast<int>(group_events.size()) * 10 >
                iterations * 9;
            if (always_on || (chaos && !groupStillHealthy(groups[g]))) {
                stuck[g] = true;
                stuck_groups.push_back(groups[g]);
            }
        }
        if (!stuck_groups.empty())
            quarantineGroups(cfg.bank, stuck_groups);

        std::vector<int> events;
        for (int it = 0; it < iterations; ++it) {
            bool any = false;
            for (std::size_t g = 0; g < groups.size(); ++g)
                any = any || (!stuck[g] && trace.masks[it][g] != 0);
            if (any)
                events.push_back(it);
        }
        return periodFromEvents(events);
    };

    for (int attempt = 0;; ++attempt) {
        int period = measure(cfg.periodIterations);

        // Long periods leave few gap samples (period 17 in 64
        // iterations is only ~3 gaps), so under fault injection a
        // single disturbed gap can hijack the vote. Confirm with an
        // iteration count scaled to the estimate — enough fires for a
        // robust mode — before trusting it.
        if (chaos && period > 1 && cfg.periodIterations < 10 * period) {
            const int confirm_iters = std::min(12 * period, 400);
            warn(logFmt("reveng: period estimate ", period,
                        " rests on few samples — confirming over ",
                        confirm_iters, " iterations"));
            period = measure(confirm_iters);
        }

        // Period 1 (an event every iteration) is as degenerate as no
        // period at all: it means every surviving signal row is broken,
        // not that every REF is TRR-capable.
        if (period > 1 || attempt >= cfg.maxRetries) {
            inform(logFmt("TRR-capable REF period: ", period));
            return period;
        }
        retryWithFreshRows("no dominant TRR-REF period", cfg.bank);
    }
}

int
TrrReveng::discoverNeighborsRefreshed()
{
    // Paper Obs. A2/B2/C3: profile three rows on each side of one
    // aggressor (RRR-RRR) and see which of them a TRR-induced refresh
    // covers. The dominant refresh mask across events belongs to the
    // aggressor (counter/sampler noise produces minority masks).
    for (int attempt = 0;; ++attempt) {
        // By value: the retry paths below burn the pool this reference
        // would point into.
        const RowGroup group = groupWide();

        IterationPlan plan;
        plan.hammersPerGroup = {cfg.aggressorHammers};

        const IterationTrace trace =
            runIterations({group}, plan, cfg.periodIterations);

        // Per-round sanity checks (as in discoverTrrRefPeriod): a row
        // whose bit is set in nearly every iteration, or that fails the
        // no-REF retention re-validation after the measurement, has
        // lost its retention margin and reads "refreshed" regardless of
        // TRR; mask it out so it cannot pose as part of the dominant
        // TRR footprint.
        const int iterations = static_cast<int>(trace.masks.size());
        std::uint64_t stuck_mask = 0;
        RowScoutConfig check_cfg;
        check_cfg.bank = group.bank;
        RowScout checker(host, mapping, check_cfg);
        for (std::size_t r = 0; r < group.rows.size(); ++r) {
            int set_count = 0;
            for (const auto &masks : trace.masks)
                set_count += (masks[0] >> r) & 1 ? 1 : 0;
            const bool always_on = set_count * 10 > iterations * 9;
            if (always_on ||
                (chaosActive() &&
                 !checker.validateRetention(group.rows[r].logicalRow,
                                            group.retention, 1)))
                stuck_mask |= std::uint64_t{1} << r;
        }
        if (stuck_mask != 0) {
            if (MetricsRegistry *m = host.attachedMetrics())
                m->counter("reveng.stuck_rows")
                    .inc(static_cast<std::uint64_t>(
                        std::popcount(stuck_mask)));
            // A broken row may itself be a true victim — masking it out
            // would silently undercount the TRR footprint. Prefer a
            // fresh group; fall back to masked analysis only when the
            // retry budget or the supply of fresh groups is spent.
            if (attempt < cfg.maxRetries) {
                retryWithFreshWideGroup(
                    "broken row in the neighbour analysis");
                if (refillWidePool())
                    continue;
            }
            warn(logFmt("reveng: masking ", std::popcount(stuck_mask),
                        " broken row(s) out of the neighbour analysis "
                        "(no retry budget or fresh groups left)"));
        }

        std::map<std::uint64_t, int> mask_counts;
        for (const auto &masks : trace.masks) {
            if ((masks[0] & ~stuck_mask) != 0)
                ++mask_counts[masks[0] & ~stuck_mask];
        }
        std::uint64_t best_mask = 0;
        int best_count = 0;
        for (const auto &[mask, count] : mask_counts) {
            if (count > best_count) {
                best_count = count;
                best_mask = mask;
            }
        }
        const int neighbours = std::popcount(best_mask);
        if (neighbours > 0 || attempt >= cfg.maxRetries) {
            inform(logFmt("neighbours refreshed per TRR refresh: ",
                          neighbours));
            return neighbours;
        }
        retryWithFreshWideGroup("no TRR refresh mask observed");
        if (!refillWidePool()) {
            warn("reveng: no fresh RRR-RRR group available — giving "
                 "up on the neighbour analysis");
            return neighbours;
        }
    }
}

DetectionType
TrrReveng::discoverDetectionType()
{
    DetectionType type = DetectionType::kUnknown;
    for (int attempt = 0;; ++attempt) {
        type = discoverDetectionTypeOnce();
        if (type != DetectionType::kUnknown ||
            attempt >= cfg.maxRetries) {
            return type;
        }
        retryWithFreshRows("ambiguous detection type", cfg.bank);
    }
}

DetectionType
TrrReveng::discoverDetectionTypeOnce()
{
    std::vector<RowGroup> groups = groupsRR(2, cfg.bank);
    UTRR_ASSERT(groups.size() == 2, "need two R-R groups");

    // Test (a) — multi-aggressor state with traversal: hammer the
    // first aggressor once, then give it ZERO activations (not even
    // re-initialization). A counter table retains the entry and its
    // traversal (TREF_b) keeps detecting it periodically (Obs. A7); a
    // sampler or detection window can never detect a row that is not
    // activated again.
    {
        IterationPlan first;
        first.hammersPerGroup = {2'000, cfg.aggressorHammers};
        first.mode = HammerMode::kCascaded;
        IterationPlan rest = first;
        rest.hammersPerGroup = {0, cfg.aggressorHammers};
        rest.initAggressorsEachIter = false;

        const IterationTrace trace =
            runIterations(groups, rest, 900, &first);
        int late_events = 0;
        for (int it : trace.eventsOf(0)) {
            if (it >= 2)
                ++late_events;
        }
        if (late_events >= 2) {
            inform("detection type: counter-based");
            return DetectionType::kCounterBased;
        }
    }

    // Test (b) — order bias with equal hammer counts: a sampler favours
    // the aggressor hammered last; a post-TRR detection window favours
    // the one hammered first.
    {
        IterationPlan plan;
        plan.hammersPerGroup = {2'000, 2'000};
        plan.mode = HammerMode::kCascaded;
        const IterationTrace trace = runIterations(groups, plan, 160);
        const auto e0 = trace.eventsOf(0).size();
        const auto e1 = trace.eventsOf(1).size();
        if (e0 + e1 == 0) {
            warn("detection-type probe saw no TRR refreshes");
            return DetectionType::kUnknown;
        }
        const double share0 = static_cast<double>(e0) /
            static_cast<double>(e0 + e1);
        if (share0 <= 0.3) {
            inform("detection type: sampling-based");
            return DetectionType::kSamplingBased;
        }
        if (share0 >= 0.7) {
            inform("detection type: window-based");
            return DetectionType::kWindowBased;
        }
        warn(logFmt("ambiguous detection-type share ", share0));
        return DetectionType::kUnknown;
    }
}

int
TrrReveng::discoverAggressorCapacity()
{
    // Paper §6.1.2: grow the number of simultaneously hammered
    // aggressors until some group stops ever being refreshed.
    int last_pass = 1;
    for (int n : cfg.capacityProbes) {
        std::vector<RowGroup> groups = groupsRR(n, cfg.bank);
        if (static_cast<int>(groups.size()) < n) {
            warn(logFmt("capacity probe stopped at N=", n,
                        ": only ", groups.size(), " groups available"));
            break;
        }
        IterationPlan plan;
        plan.hammersPerGroup.assign(groups.size(), 1'000);
        plan.mode = HammerMode::kCascaded;
        // With N tracked aggressors, each one is only detected every
        // ~N TRR-refresh rounds; scale the run so a covered group sees
        // ~10 expected events and a zero count really means starvation.
        const int iterations = std::max(cfg.capacityIterations, 90 * n);
        const IterationTrace trace =
            runIterations(groups, plan, iterations);
        // Starvation shows as a group receiving far less than its fair
        // share of refreshes (a starved aggressor may still catch a
        // stray detection during the initial transient).
        std::vector<int> event_counts;
        for (std::size_t g = 0; g < groups.size(); ++g) {
            event_counts.push_back(
                static_cast<int>(trace.eventsOf(g).size()));
        }
        std::vector<int> sorted = event_counts;
        std::sort(sorted.begin(), sorted.end());
        const int median = sorted[sorted.size() / 2];
        bool all_covered = true;
        for (int events : event_counts) {
            if (events < std::max(1, median / 3)) {
                all_covered = false;
                break;
            }
        }
        inform(logFmt("capacity probe N=", n, ": ",
                      all_covered ? "all groups refreshed"
                                  : "starving group found"));
        if (!all_covered)
            break;
        last_pass = n;
    }
    return last_pass;
}

bool
TrrReveng::discoverEvictMinPolicy()
{
    // Paper Obs. A5: with 17 aggressors, the one hammered least must be
    // the standing eviction victim and never get detected.
    std::vector<RowGroup> groups = groupsRR(17, cfg.bank);
    if (groups.size() < 17) {
        warn("evict-min probe needs 17 groups; skipping");
        return false;
    }
    IterationPlan plan;
    plan.hammersPerGroup.assign(groups.size(), 100);
    plan.hammersPerGroup[0] = 50; // the low-count aggressor, first
    plan.mode = HammerMode::kCascaded;
    const IterationTrace trace = runIterations(groups, plan, 300);
    return trace.eventsOf(0).empty();
}

bool
TrrReveng::discoverCounterResetOnDetect()
{
    // Paper Obs. A6: with counters reset on detection, two steadily
    // hammered aggressors alternate in TREF_a detections, so the
    // lighter one receives a substantial share of the refreshes.
    std::vector<RowGroup> groups = groupsRR(2, cfg.bank);
    UTRR_ASSERT(groups.size() == 2, "need two R-R groups");
    IterationPlan plan;
    plan.hammersPerGroup = {2'000, 3'000};
    plan.mode = HammerMode::kCascaded;
    const IterationTrace trace = runIterations(groups, plan, 400);
    const auto e0 = trace.eventsOf(0).size();
    const auto e1 = trace.eventsOf(1).size();
    if (e0 + e1 == 0)
        return false;
    const double share0 =
        static_cast<double>(e0) / static_cast<double>(e0 + e1);
    return share0 >= 0.25;
}

bool
TrrReveng::discoverTablePersistence()
{
    // Paper Obs. A7: hammer once, then watch: table entries keep being
    // detected (via the traversal) long after hammering stops.
    std::vector<RowGroup> groups = groupsRR(1, cfg.bank);
    UTRR_ASSERT(!groups.empty(), "need one R-R group");
    IterationPlan first;
    first.hammersPerGroup = {cfg.aggressorHammers};
    IterationPlan rest;
    rest.hammersPerGroup = {0};

    const int iterations = 510;
    const IterationTrace trace =
        runIterations(groups, rest, iterations, &first);
    for (int it : trace.eventsOf(0)) {
        if (it >= 2 * iterations / 3)
            return true;
    }
    return false;
}

bool
TrrReveng::discoverSamplerRetention()
{
    // Paper Obs. B5: a TRR-induced refresh does not clear the sampled
    // row. Observing *two* refresh events from a single hammer burst
    // proves it: a cleared-on-use sampler could only produce one.
    // The victims' own init/read ACTs eventually re-seed the sampler,
    // so the window is short; several independent trials make the
    // probe robust.
    std::vector<RowGroup> groups = groupsRR(1, cfg.bank);
    UTRR_ASSERT(!groups.empty(), "need one R-R group");
    IterationPlan first;
    first.hammersPerGroup = {cfg.aggressorHammers};
    IterationPlan rest;
    rest.hammersPerGroup = {0};
    for (int trial = 0; trial < 6; ++trial) {
        const IterationTrace trace =
            runIterations(groups, rest, 16, &first);
        if (trace.eventsOf(0).size() >= 2)
            return true;
    }
    return false;
}

int
TrrReveng::discoverDetectionWindow()
{
    // Paper Obs. C2: insert a growing burst of ACTs to a first
    // aggressor before hammering a second one. Once the burst covers
    // the whole detection window, the second aggressor becomes
    // invisible to TRR. Only meaningful for window-based detection —
    // discoverAll() gates on the detection type.
    std::vector<RowGroup> groups = groupsRR(2, cfg.bank);
    UTRR_ASSERT(groups.size() == 2, "need two R-R groups");

    double baseline_share = -1.0;
    for (int burst : cfg.windowProbes) {
        IterationPlan plan;
        plan.hammersPerGroup = {burst, 2'000};
        plan.mode = HammerMode::kCascaded;
        plan.initAggressorsEachIter = false;
        const IterationTrace trace = runIterations(groups, plan, 170);
        const auto e0 = trace.eventsOf(0).size();
        const auto e1 = trace.eventsOf(1).size();
        const double share1 = e0 + e1 == 0
            ? 0.0
            : static_cast<double>(e1) / static_cast<double>(e0 + e1);
        inform(logFmt("window probe burst=", burst, ": late-aggressor ",
                      "share ", share1));
        if (baseline_share < 0.0) {
            baseline_share = share1;
            if (baseline_share < 0.3)
                return 0; // no early-ACT advantage: not window-based
            continue;
        }
        if (share1 <= 0.12)
            return burst;
    }
    return 0;
}

bool
TrrReveng::discoverPerBankScope()
{
    // Paper Obs. A4/B4: hammer one aggressor in each of two banks; if
    // detection state is chip-wide, only the most recently hammered
    // bank's victims ever get refreshed.
    std::vector<RowGroup> groups_a = groupsRR(1, cfg.bank);
    UTRR_ASSERT(!groups_a.empty(), "need a group in the first bank");
    const RowGroup &group_a = groups_a.front();
    const Time t = group_a.retention;

    // The second bank's group must share the first group's retention
    // time so a single experiment timeline serves both.
    RowScoutConfig scout_cfg;
    scout_cfg.bank = cfg.secondBank;
    scout_cfg.rowStart = cfg.scoutRowStart;
    scout_cfg.rowEnd = cfg.scoutRowEnd;
    scout_cfg.layout = RowGroupLayout::parse("R-R");
    scout_cfg.groupCount = 1;
    scout_cfg.consistencyChecks = cfg.consistencyChecks;
    scout_cfg.initialT = t;
    scout_cfg.stepT = 50 * kNsPerMs;
    scout_cfg.maxT = t;
    RowScout scout(host, mapping, scout_cfg);
    const std::vector<RowGroup> groups_b = scout.scout();
    if (groups_b.empty()) {
        warn("per-bank probe: no matching-T group in second bank");
        return true;
    }
    const RowGroup &group_b = groups_b.front();

    auto avoid_of = [](const RowGroup &group) {
        std::vector<Row> avoid;
        for (const ProfiledRow &row : group.rows)
            avoid.push_back(row.physRow);
        for (Row gap : group.gapPhysRows())
            avoid.push_back(gap);
        return avoid;
    };
    analyzer.resetTrrState(group_a.bank, avoid_of(group_a), 384, 32, 16);
    analyzer.resetTrrState(group_b.bank, avoid_of(group_b), 384, 32, 16);

    const Row aggr_a =
        mapping.toLogical(group_a.gapPhysRows().front());
    const Row aggr_b =
        mapping.toLogical(group_b.gapPhysRows().front());

    int events_a = 0;
    int events_b = 0;
    for (int it = 0; it < 72; ++it) {
        host.writeRow(group_a.bank, aggr_a, DataPattern::allZeros());
        host.writeRow(group_b.bank, aggr_b, DataPattern::allZeros());
        for (const ProfiledRow &row : group_a.rows)
            host.writeRow(row.bank, row.logicalRow,
                          DataPattern::allOnes());
        for (const ProfiledRow &row : group_b.rows)
            host.writeRow(row.bank, row.logicalRow,
                          DataPattern::allOnes());
        host.wait(t / 2);
        // Bank A first, bank B last: a chip-wide sampler ends up
        // holding the bank-B aggressor.
        host.hammer(group_a.bank, aggr_a, 3'000);
        host.hammer(group_b.bank, aggr_b, 3'000);
        host.ref();
        host.wait(t / 2);

        bool hit_a = false;
        for (const ProfiledRow &row : group_a.rows) {
            if (host.readRow(row.bank, row.logicalRow)
                    .countFlipsVs(DataPattern::allOnes(),
                                  row.logicalRow) == 0) {
                hit_a = true;
            }
        }
        bool hit_b = false;
        for (const ProfiledRow &row : group_b.rows) {
            if (host.readRow(row.bank, row.logicalRow)
                    .countFlipsVs(DataPattern::allOnes(),
                                  row.logicalRow) == 0) {
                hit_b = true;
            }
        }
        events_a += hit_a ? 1 : 0;
        events_b += hit_b ? 1 : 0;
    }
    inform(logFmt("per-bank probe: bank-A events ", events_a,
                  ", bank-B events ", events_b));
    return events_a >= 1;
}

int
TrrReveng::discoverRegularRefreshPeriod()
{
    // Paper Obs. A8: with no hammering at all, a profiled row is only
    // ever refreshed by the periodic sweep; the gap (in REF commands)
    // between refresh events is the internal regular-refresh period.
    // A single-R layout keeps TRR-induced refreshes of the profiled
    // row's own neighbourhood out of the picture.
    RowScoutConfig scout_cfg;
    scout_cfg.bank = cfg.bank;
    scout_cfg.rowStart = cfg.scoutRowStart;
    scout_cfg.rowEnd = cfg.scoutRowEnd;
    scout_cfg.layout = RowGroupLayout::parse("R");
    scout_cfg.groupCount = 1;
    // This analysis watches a single row over thousands of iterations;
    // a VRT row that sneaks past a reduced validation budget would fake
    // refresh events, so insist on a strong consistency check here.
    scout_cfg.consistencyChecks = std::max(cfg.consistencyChecks, 250);
    RowScout scout(host, mapping, scout_cfg);
    const std::vector<RowGroup> groups = scout.scout();
    UTRR_ASSERT(!groups.empty(), "no single-R group found");
    const RowGroup &group = groups.front();

    TrrExperimentConfig config;
    config.reset = TrrResetMode::kNone;
    config.refsPerRound = 1;

    std::vector<int> events;
    for (int it = 0; it < cfg.regularRefreshMaxIters; ++it) {
        const TrrExperimentResult result =
            analyzer.runExperiment(group, config);
        if (result.anyRefreshed())
            events.push_back(it);
        if (events.size() >= 4)
            break;
    }
    if (events.size() < 2) {
        warn("regular-refresh probe saw fewer than two events");
        return 0;
    }
    const int period = IterationTrace::dominantPeriod(events);
    inform(logFmt("regular-refresh period: ", period, " REFs"));
    return period;
}

TrrReveng::IdentifyOutcome
TrrReveng::identify()
{
    UTRR_PROF_SCOPE_SIM("reveng.identify", host.clockPtr());
    if (cfg.watchdogBudgetNs > 0)
        host.setWatchdogBudget(cfg.watchdogBudgetNs);
    IdentifyOutcome outcome;
    try {
        outcome.trrToRefPeriod = discoverTrrRefPeriod();
        outcome.neighborsRefreshed = discoverNeighborsRefreshed();
    } catch (...) {
        host.clearWatchdog();
        throw;
    }
    host.clearWatchdog();
    outcome.freshRowRetries = freshRowRetries;
    return outcome;
}

TrrProfile
TrrReveng::discoverAll(bool include_slow)
{
    UTRR_PROF_SCOPE_SIM("reveng.discover_all", host.clockPtr());
    if (cfg.watchdogBudgetNs > 0)
        host.setWatchdogBudget(cfg.watchdogBudgetNs);
    TrrProfile profile;
    profile.trrToRefPeriod = discoverTrrRefPeriod();
    profile.neighborsRefreshed = discoverNeighborsRefreshed();
    profile.detection = discoverDetectionType();

    switch (profile.detection) {
      case DetectionType::kCounterBased:
        profile.countersResetOnDetect = discoverCounterResetOnDetect();
        profile.tableEntriesPersist = discoverTablePersistence();
        if (include_slow)
            profile.evictsMinCounter = discoverEvictMinPolicy();
        break;
      case DetectionType::kSamplingBased:
        profile.samplerRetained = discoverSamplerRetention();
        break;
      case DetectionType::kWindowBased:
        profile.detectionWindowActs = discoverDetectionWindow();
        break;
      case DetectionType::kUnknown:
        break;
    }

    if (include_slow) {
        profile.aggressorCapacity = discoverAggressorCapacity();
        profile.perBank = discoverPerBankScope();
        profile.regularRefreshPeriodRefs = discoverRegularRefreshPeriod();
    }
    return profile;
}

} // namespace utrr
