/**
 * @file
 * Automated TRR reverse engineering (paper §6).
 *
 * TrrReveng drives Row Scout and the TRR Analyzer to re-derive, from
 * outside the chip, every property the paper uncovers:
 *
 *  - which REF commands are TRR-capable (Obs. A1 / B1 / C1);
 *  - how many neighbours a TRR-induced refresh covers (A2 / B2 / C3);
 *  - the aggressor-detection strategy: counter table vs. ACT sampling
 *    vs. post-TRR detection window (A3 / B3 / C2);
 *  - the aggressor-tracking capacity (A4 / B4);
 *  - vendor-A specifics: evict-min insertion (A5), counter reset on
 *    detection (A6), indefinite table persistence (A7);
 *  - vendor-B specifics: sampler retention across TRR refreshes (B5);
 *  - vendor-C specifics: detection-window length (C2);
 *  - whether detection state is per-bank or chip-wide (A4 / B4);
 *  - the regular-refresh period in REF commands (A8).
 *
 * Every procedure is black-box: it only issues DDR commands and reads
 * data back through the retention side channel.
 */

#ifndef UTRR_CORE_REVENG_HH
#define UTRR_CORE_REVENG_HH

#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "core/row_scout.hh"
#include "core/trr_analyzer.hh"
#include "obs/json.hh"

namespace utrr
{

/** Aggressor-detection strategy families (Table 1 column). */
enum class DetectionType
{
    kUnknown,
    kCounterBased,  // vendor A
    kSamplingBased, // vendor B
    kWindowBased,   // vendor C ("Mix" in Table 1)
};

std::string detectionTypeName(DetectionType type);

/**
 * Everything TrrReveng can discover about a module's TRR mechanism.
 */
struct TrrProfile
{
    int trrToRefPeriod = 0;
    int neighborsRefreshed = 0;
    DetectionType detection = DetectionType::kUnknown;
    int aggressorCapacity = -1;
    bool perBank = false;
    bool evictsMinCounter = false;
    bool countersResetOnDetect = false;
    bool tableEntriesPersist = false;
    bool samplerRetained = false;
    /** Detection-window length in ACTs (0 = no window observed). */
    int detectionWindowActs = 0;
    int regularRefreshPeriodRefs = 0;

    std::string summary() const;
};

/**
 * Reverse-engineering configuration.
 */
struct TrrRevengConfig
{
    Bank bank = 0;
    Bank secondBank = 1; // for the per-bank-scope experiment
    Row scoutRowStart = 0;
    Row scoutRowEnd = 6 * 1024;
    /**
     * Row range for the RRR-RRR layout: six retention-matched rows in
     * a 7-row span are rare, so the wide-group scout covers much more
     * of the bank (clamped to the bank size).
     */
    Row wideScoutRowEnd = 48 * 1024;
    /** Retention-consistency validations per scouted row. */
    int consistencyChecks = 50;
    /**
     * Post-acceptance stability checks per profiled row (Row Scout
     * self-healing; 0 disables). Enable when a fault injector is
     * active so VRT-flipped rows are evicted and replaced.
     */
    int revalidateChecks = 0;
    /** Default per-aggressor hammers in discovery experiments. */
    int aggressorHammers = 5'000;
    /** Iterations for REF-periodicity discovery. */
    int periodIterations = 128;
    /** Capacity probe points (ascending). */
    std::vector<int> capacityProbes = {2, 4, 8, 15, 16, 17, 18};
    /** Iterations per capacity probe. */
    int capacityIterations = 480;
    /** Upper bound on iterations for regular-refresh discovery. */
    int regularRefreshMaxIters = 22'000;
    /** Dummy-burst sizes probed for the detection window. The first
     *  (small) probe establishes the baseline detectability of a
     *  late-hammered aggressor. */
    std::vector<int> windowProbes = {16, 128, 512, 1'024, 2'048};
    /**
     * Self-healing: retries with freshly scouted rows when a discovery
     * procedure returns a degenerate result (no dominant period, zero
     * neighbours, unknown detection type). The previous pool's rows are
     * burned — a row whose retention silently changed (VRT, drift)
     * would keep producing garbage.
     */
    int maxRetries = 2;
    /**
     * Simulated-time watchdog budget armed at the start of discoverAll
     * (0 disables): an experiment that overruns it fails with a
     * structured WatchdogTimeout instead of spinning forever.
     */
    Time watchdogBudgetNs = 0;
};

/**
 * The reverse-engineering driver.
 */
class TrrReveng
{
  public:
    TrrReveng(SoftMcHost &host, DiscoveredMapping mapping,
              TrrRevengConfig config);

    // --- individual discovery procedures -----------------------------

    /** Obs. A1/B1/C1: one TRR-capable REF per how many REFs. */
    int discoverTrrRefPeriod();

    /** Obs. A2/B2/C3: rows refreshed around a detected aggressor. */
    int discoverNeighborsRefreshed();

    /** Obs. A3/B3/C2: detection strategy family. */
    DetectionType discoverDetectionType();

    /** Obs. A4/B4: how many aggressors TRR can track at once. */
    int discoverAggressorCapacity();

    /** Obs. A5: is the lowest-counter entry evicted on insertion? */
    bool discoverEvictMinPolicy();

    /** Obs. A6: does detection reset the detected row's counter? */
    bool discoverCounterResetOnDetect();

    /** Obs. A7: do table entries persist until evicted? */
    bool discoverTablePersistence();

    /** Obs. B5: does the sampled row survive a TRR-induced refresh? */
    bool discoverSamplerRetention();

    /** Obs. C2: detection-window length in ACTs (0 = unbounded). */
    int discoverDetectionWindow();

    /** Obs. A4/B4: per-bank or chip-wide detection state. */
    bool discoverPerBankScope();

    /** Obs. A8: REF commands per regular-refresh sweep. */
    int discoverRegularRefreshPeriod();

    /** Run the full battery. @p include_slow adds capacity/regular. */
    TrrProfile discoverAll(bool include_slow = true);

    /**
     * Outcome of the campaign-battery identification (the two
     * properties every Table-1 module can be told apart by).
     */
    struct IdentifyOutcome
    {
        int trrToRefPeriod = 0;
        int neighborsRefreshed = 0;
        /** Fresh-row retries the identification needed. */
        std::uint64_t freshRowRetries = 0;
    };

    /**
     * TRR-to-REF period plus neighbour count under the config's
     * watchdog budget (cfg.watchdogBudgetNs, 0 = disarmed). A budget
     * overrun propagates as WatchdogTimeout so a campaign runner can
     * retry or quarantine the job; the watchdog is disarmed either way.
     */
    IdentifyOutcome identify();

    // --- profile reuse (DESIGN.md §16) --------------------------------

    /**
     * Pre-scout the 16-group R-R pool of cfg.bank — the first pool
     * identify() consumes — without running any discovery. Campaign
     * jobs wrap this call in JobContext::profiled() so the scouting is
     * snapshotted once per module and restored on every later job over
     * the same silicon. The wide (RRR-RRR) group is deliberately left
     * to its lazy scouting point between the period and neighbour
     * experiments: hoisting it ahead of the period experiments shifts
     * the refresh-engine interleaving and can flip identifications.
     */
    void warmUp();

    /**
     * Serialize the scouted pools (R-R pools, wide pool, burned rows,
     * fresh-row-retry count) as JSON. All fields are integers or
     * layout strings, so an export/import round trip is exact.
     */
    Json exportPools() const;

    /**
     * Replace the pools with a previously exported state. Importing
     * what exportPools() just returned is a no-op by construction;
     * importing into a fresh TrrReveng over a restored device snapshot
     * reconstructs the scouted state without re-scouting.
     */
    void importPools(const Json &pools);

    // --- primitives shared by the procedures (public for tests) ------

    /**
     * Lazily scout a pool of R-R groups in @p bank (all sharing one
     * retention time) and return the first @p count of them.
     */
    std::vector<RowGroup> groupsRR(int count, Bank bank);

    /** Lazily scout one RRR-RRR group. */
    const RowGroup &groupWide();

    /**
     * Hammer plan for one iteration of an iteration sequence: per-group
     * aggressor hammers (0 = skip) placed on each group's gap row.
     */
    struct IterationPlan
    {
        std::vector<int> hammersPerGroup;
        HammerMode mode = HammerMode::kCascaded;
        int dummyRowCount = 0;
        int dummyHammers = 0;
        bool dummiesFirst = false;
        bool initAggressorsEachIter = true;
        /**
         * Read-back votes per profiled row. Iteration analyses keep
         * this at 1 even under fault injection: every RD is an ACT the
         * TRR observes, and on first-sampled-wins TRRs the analyzer's
         * own reads — the first in-window ACTs after a TRR fire — get
         * sampled as the "aggressor", diverting the next TRR refresh
         * to unprofiled rows (an invisible event). Read noise can only
         * add flips, never fake the all-zeros "refreshed" signal, so
         * minimal reads are strictly safer for event-timing analyses;
         * quorum voting stays the TrrAnalyzer default where flip
         * verdicts, not timing, are at stake.
         */
        int readVotes = 1;
    };

    /** Refresh-event trace of an iteration sequence. */
    struct IterationTrace
    {
        /** [iteration][group] -> refreshed-rows bitmask. */
        std::vector<std::vector<std::uint64_t>> masks;

        /** Iterations at which any row of @p group was refreshed. */
        std::vector<int> eventsOf(std::size_t group) const;
        /** Iterations at which any group saw a refresh. */
        std::vector<int> anyEvents() const;
        /** Most common gap between successive events (0 if < 2). */
        static int dominantPeriod(const std::vector<int> &events);
    };

    /**
     * Run an iteration sequence: one TRR-state reset, then
     * @p iterations single-REF experiments following @p plan
     * (first_iter_plan, when provided, replaces the plan in
     * iteration 0 — used by the persistence analyses).
     */
    IterationTrace runIterations(const std::vector<RowGroup> &groups,
                                 const IterationPlan &plan,
                                 int iterations,
                                 const IterationPlan *first_iter_plan =
                                     nullptr);

    /** Fresh-row retries performed so far (degenerate results). */
    std::uint64_t freshRowRetriesPerformed() const
    {
        return freshRowRetries;
    }

  private:
    TrrExperimentConfig configFor(const std::vector<RowGroup> &groups,
                                  const IterationPlan &plan) const;

    /** One detection-type probe (retry loop lives in the public API). */
    DetectionType discoverDetectionTypeOnce();

    /**
     * Burn the cached R-R pool of @p bank (its rows are never selected
     * again) so the next groupsRR call scouts fresh rows; counts as one
     * fresh-row retry.
     */
    void retryWithFreshRows(const char *why, Bank bank);

    /** Same for the wide (RRR-RRR) pool. */
    void retryWithFreshWideGroup(const char *why);

    /**
     * Scout a replacement RRR-RRR group (any bank, burned rows
     * excluded); false when none can be found, so callers can fall
     * back instead of asserting.
     */
    bool refillWidePool();

    /**
     * Burn the rows of @p bad (groups caught by a per-round sanity
     * check: they read "refreshed" unconditionally because their
     * retention margin silently vanished) and drop them from the cached
     * pool of @p bank, so the next groupsRR call tops it up with fresh
     * rows.
     */
    void quarantineGroups(Bank bank, const std::vector<RowGroup> &bad);

    /**
     * Post-measurement health check (only run under an active fault
     * injector): every profiled row of @p group must still hold for
     * T/2 and fail after T. The check issues no REF, so a clean read
     * after T cannot be a TRR refresh — it proves the row's retention
     * margin silently vanished (VRT flip, temperature drift) and its
     * refresh events were garbage.
     */
    bool groupStillHealthy(const RowGroup &group);

    /** True when an attached fault injector has any hook active. */
    bool chaosActive() const;

    SoftMcHost &host;
    DiscoveredMapping mapping;
    TrrRevengConfig cfg;
    TrrAnalyzer analyzer;
    /** Cached R-R pools per bank. */
    std::map<Bank, std::vector<RowGroup>> rrPools;
    std::vector<RowGroup> widePool;
    /** Physical rows burned by fresh-row retries, per bank. */
    std::map<Bank, std::vector<Row>> burnedByBank;
    std::uint64_t freshRowRetries = 0;
};

} // namespace utrr

#endif // UTRR_CORE_REVENG_HH
