/**
 * @file
 * Narrow device-backend seam: command stream in, readouts/trace out.
 *
 * A DeviceBackend is anything that can execute a recorded
 * softmc::Program and report what a memory controller could observe:
 * the captured READ bursts, the simulated clock, and the accounting
 * surface the differential oracles compare (REF counts, TRR events,
 * per-bank row refreshes). Three implementations conform:
 *
 *  - SimBackend (src/core/sim_backend.hh): the production
 *    DramModule + SoftMcHost pair;
 *  - ReferenceBackend (src/check/reference_backend.hh): the naive
 *    exact-mirror interpreter used as the fuzzing oracle;
 *  - TraceReplayBackend (below): replays a previously recorded
 *    execution with canned readouts — a stand-in for remote or
 *    hardware backends whose responses arrive as data, and the cheap
 *    way to rerun analyses against a captured session.
 *
 * The interface contract, pinned by tests/test_backend.cc for every
 * implementation:
 *
 *  1. execute() is deterministic: the same backend construction
 *     executing the same programs yields byte-identical BackendResults.
 *  2. accounting() grows monotonically with execution and is part of
 *     the deterministic surface.
 *  3. traceEvents() MAY be empty (a backend need not record a trace);
 *     when non-empty it must be a timing-legal DDR command stream.
 *  4. A backend advertising supportsSnapshot() must round-trip:
 *     snapshot() then arbitrary execution then restore(token) replays
 *     the remaining programs bit-identically.
 *
 * Intentionally *not* in the interface: the immediate host API
 * (hammer, refBurst, ...) — hammerMultiBank's tFAW-parallel timing
 * cannot be expressed as a serial Program, so RowScout/TrrAnalyzer
 * keep a SoftMcHost reference and reach it through SimBackend::host().
 */

#ifndef UTRR_CORE_DEVICE_BACKEND_HH
#define UTRR_CORE_DEVICE_BACKEND_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/types.hh"
#include "dram/module_spec.hh"
#include "obs/trace.hh"
#include "softmc/command.hh"

namespace utrr
{

/** One captured READ, with the row contents materialized word-wise. */
struct BackendRead
{
    Bank bank = 0;
    /** Host-visible (logical) row address. */
    Row row = kInvalidRow;
    /** Simulated time of the READ (ns). */
    Time when = 0;
    /** Full row contents, word by word. */
    std::vector<std::uint64_t> words;

    bool
    operator==(const BackendRead &other) const
    {
        return bank == other.bank && row == other.row &&
            when == other.when && words == other.words;
    }
    bool operator!=(const BackendRead &o) const { return !(*this == o); }
};

/** Result of executing one Program. */
struct BackendResult
{
    std::vector<BackendRead> reads;
    Time startTime = 0;
    Time endTime = 0;
};

/** The accounting surface the oracles compare across backends. */
struct BackendAccounting
{
    /** REF commands the device received. */
    std::uint64_t refs = 0;
    /** TRR refresh actions (detected aggressors). */
    std::uint64_t trrEvents = 0;
    /** TRR-induced victim row refreshes. */
    std::uint64_t trrVictimRefreshes = 0;
    /** Single-row refreshes per bank (regular + TRR). */
    std::vector<std::uint64_t> rowRefreshes;
};

/** Order-sensitive FNV-1a hash over every read (bank, row, when,
 *  words) — the readback-equivalence surface of the conformance and
 *  fuzzing suites. */
std::uint64_t hashBackendReads(const BackendResult &result);

/** Content hash of a program (instruction-wise; used by trace replay
 *  to reject replaying against a diverged command stream). */
std::uint64_t programHash(const Program &program);

/**
 * The backend interface.
 */
class DeviceBackend
{
  public:
    virtual ~DeviceBackend() = default;

    /** Implementation name for logs and reports ("sim", "reference",
     *  "replay:sim", ...). */
    virtual std::string name() const = 0;

    /** The module this backend stands in for. */
    virtual const ModuleSpec &spec() const = 0;

    /** Execute a program, capturing reads. State persists across
     *  calls, mirroring a host + module pair. */
    virtual BackendResult execute(const Program &program) = 0;

    /** Current simulated time (ns). */
    virtual Time now() const = 0;

    /** Accounting totals so far. */
    virtual BackendAccounting accounting() const = 0;

    /**
     * Command-level trace of everything executed so far, oldest first.
     * Empty when the backend records none (contract point 3); bounded
     * by the backend's ring capacity when it does.
     */
    virtual std::vector<TraceEvent> traceEvents() const { return {}; }

    // --- snapshot / fork ------------------------------------------------

    /** Can this backend snapshot and rewind its state? */
    virtual bool supportsSnapshot() const { return false; }

    /**
     * Capture the backend's state; returns a token for restore(). A
     * token stays valid until dropSnapshot() and may be restored any
     * number of times. Throws std::logic_error when unsupported.
     */
    virtual std::uint64_t snapshot();

    /** Rewind to a snapshot token. Throws std::logic_error when
     *  unsupported, std::out_of_range on an unknown token. */
    virtual void restore(std::uint64_t token);

    /** Release a snapshot's storage (no-op on unknown tokens). */
    virtual void dropSnapshot(std::uint64_t token);
};

// ----------------------------------------------------------------------
// Trace replay
// ----------------------------------------------------------------------

/** One recorded execute() call. */
struct RecordedExecution
{
    std::uint64_t programHash = 0;
    BackendResult result;
    /** Accounting totals *after* this execution. */
    BackendAccounting accounting;
    /** Trace events this execution appended (may be empty). */
    std::vector<TraceEvent> trace;
};

/** A recorded session: the canned responses a TraceReplayBackend
 *  serves. */
struct BackendRecording
{
    /** name() of the backend the session was recorded from. */
    std::string source;
    ModuleSpec spec;
    std::vector<RecordedExecution> executions;
    /**
     * Owned copies of every interned phase/fault label the recorded
     * trace events point at — the source backend's name pool dies with
     * it, the recording must outlive it (see recordExecutions).
     */
    std::deque<std::string> phaseNames;
};

/**
 * Record @p programs against @p source, capturing per-execution reads,
 * accounting and trace deltas. The trace deltas are exact only while
 * the source's trace ring does not wrap; record with adequate capacity
 * (or none — replay of a traceless recording is still exact on reads
 * and accounting).
 */
BackendRecording recordExecutions(DeviceBackend &source,
                                  const std::vector<Program> &programs);

/**
 * Replays a recorded session. execute() serves the next canned result
 * after verifying the submitted program hashes to what was recorded —
 * a diverged command stream is a hard error, not a silent wrong
 * answer. Snapshots are trivially O(1): the whole mutable state is the
 * replay cursor.
 */
class TraceReplayBackend : public DeviceBackend
{
  public:
    explicit TraceReplayBackend(BackendRecording recording);

    std::string name() const override { return backendName; }
    const ModuleSpec &spec() const override { return session.spec; }
    BackendResult execute(const Program &program) override;
    Time now() const override;
    BackendAccounting accounting() const override;
    std::vector<TraceEvent> traceEvents() const override;

    bool supportsSnapshot() const override { return true; }
    std::uint64_t snapshot() override;
    void restore(std::uint64_t token) override;
    void dropSnapshot(std::uint64_t /*token*/) override {}

    /** Executions served so far (the replay cursor). */
    std::size_t position() const { return cursor; }

    /** Executions the recording holds. */
    std::size_t size() const { return session.executions.size(); }

  private:
    BackendRecording session;
    std::string backendName;
    std::size_t cursor = 0;
};

} // namespace utrr

#endif // UTRR_CORE_DEVICE_BACKEND_HH
