#include "core/retention_profiler.hh"

#include "common/logging.hh"

namespace utrr
{

double
RetentionProfile::weakFraction() const
{
    if (rowsProfiled == 0)
        return 0.0;
    return 1.0 -
        static_cast<double>(neverFailed) /
        static_cast<double>(rowsProfiled);
}

RetentionProfiler::RetentionProfiler(SoftMcHost &host, Config config)
    : host(host), cfg(config)
{
    UTRR_ASSERT(cfg.rowEnd > cfg.rowStart, "bad row range");
    UTRR_ASSERT(cfg.stepFactor > 1.0, "step factor must grow");
}

std::vector<bool>
RetentionProfiler::failingAt(Time t)
{
    const Row count = cfg.rowEnd - cfg.rowStart;
    std::vector<bool> failing(static_cast<std::size_t>(count), false);
    for (Row r = cfg.rowStart; r < cfg.rowEnd; ++r)
        host.writeRow(cfg.bank, r, cfg.pattern);
    host.wait(t);
    for (Row r = cfg.rowStart; r < cfg.rowEnd; ++r) {
        const int flips = host.readRow(cfg.bank, r)
                              .countFlipsVs(cfg.pattern, r);
        failing[static_cast<std::size_t>(r - cfg.rowStart)] =
            flips > 0;
    }
    return failing;
}

RetentionProfile
RetentionProfiler::profile()
{
    const Row count = cfg.rowEnd - cfg.rowStart;
    RetentionProfile result;
    result.rowsProfiled = static_cast<int>(count);

    // firstFail[i]: smallest tested T at which row i failed (0 = never).
    std::vector<Time> first_fail(static_cast<std::size_t>(count), 0);
    std::vector<bool> inconsistent(static_cast<std::size_t>(count),
                                   false);

    for (Time t = cfg.initialT; t <= cfg.maxT;
         t = static_cast<Time>(static_cast<double>(t) *
                               cfg.stepFactor)) {
        // Repeat the pass: a row flapping between pass/fail at the
        // same target is a VRT suspect.
        std::vector<bool> seen = failingAt(t);
        for (int rep = 1; rep < cfg.repeats; ++rep) {
            const std::vector<bool> again = failingAt(t);
            for (std::size_t i = 0; i < seen.size(); ++i) {
                if (seen[i] != again[i])
                    inconsistent[i] = true;
                seen[i] = seen[i] || again[i];
            }
        }
        for (std::size_t i = 0; i < seen.size(); ++i) {
            if (seen[i] && first_fail[i] == 0)
                first_fail[i] = t;
        }
    }

    for (std::size_t i = 0; i < first_fail.size(); ++i) {
        if (inconsistent[i])
            ++result.vrtSuspects;
        if (first_fail[i] == 0) {
            ++result.neverFailed;
            continue;
        }
        if (first_fail[i] == cfg.initialT)
            ++result.failedAtMin;
        ++result.histogramMs[nsToMs(first_fail[i])];
    }
    return result;
}

} // namespace utrr
