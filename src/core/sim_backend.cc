#include "core/sim_backend.hh"

namespace utrr
{

SimBackend::SimBackend(const ModuleSpec &spec, std::uint64_t seed,
                       const RetentionModelConfig *retention_overrides,
                       Timing timing)
    : ownedModule(
          std::make_unique<DramModule>(spec, seed, retention_overrides)),
      ownedHost(std::make_unique<SoftMcHost>(*ownedModule, timing)),
      mod(ownedModule.get()), mc(ownedHost.get()), masterSeed(seed)
{
}

SimBackend::SimBackend(DramModule &module, SoftMcHost &host)
    : mod(&module), mc(&host), masterSeed(module.seed())
{
}

BackendResult
SimBackend::execute(const Program &program)
{
    const ExecResult exec = mc->execute(program);
    BackendResult result;
    result.startTime = exec.startTime;
    result.endTime = exec.endTime;
    result.reads.reserve(exec.reads.size());
    for (const ReadRecord &record : exec.reads) {
        BackendRead read;
        read.bank = record.bank;
        read.row = record.row;
        read.when = record.when;
        const int words = record.readout.words();
        read.words.reserve(static_cast<std::size_t>(words));
        for (int w = 0; w < words; ++w)
            read.words.push_back(record.readout.word(w));
        result.reads.push_back(std::move(read));
    }
    return result;
}

BackendAccounting
SimBackend::accounting() const
{
    BackendAccounting acc;
    acc.refs = mod->refCount();
    acc.trrEvents = mod->trrEventCount();
    acc.trrVictimRefreshes = mod->trrRefreshCount();
    acc.rowRefreshes.reserve(static_cast<std::size_t>(mod->spec().banks));
    for (Bank b = 0; b < mod->spec().banks; ++b)
        acc.rowRefreshes.push_back(mod->bankAt(b).rowRefreshCount());
    return acc;
}

std::uint64_t
SimBackend::snapshot()
{
    const std::uint64_t token = nextToken++;
    snapshots.emplace(token, captureDevice());
    return token;
}

void
SimBackend::restore(std::uint64_t token)
{
    const auto it = snapshots.find(token);
    if (it == snapshots.end())
        throw std::out_of_range("unknown sim snapshot token");
    restoreDevice(it->second);
}

void
SimBackend::dropSnapshot(std::uint64_t token)
{
    snapshots.erase(token);
}

DeviceSnapshot
SimBackend::captureDevice() const
{
    DeviceSnapshot snap;
    snap.module = mod->snapshot();
    snap.host = mc->snapshotState();
    return snap;
}

void
SimBackend::restoreDevice(const DeviceSnapshot &snap)
{
    mod->restore(snap.module);
    mc->restoreState(snap.host);
}

std::unique_ptr<SimBackend>
SimBackend::fork(const DeviceSnapshot &snap) const
{
    auto child = std::make_unique<SimBackend>(mod->spec(), masterSeed,
                                              nullptr, mc->timing());
    child->restoreDevice(snap);
    return child;
}

} // namespace utrr
