/**
 * @file
 * TRR Analyzer (TRR-A): runs retention-side-channel experiments that
 * reveal when a TRR mechanism refreshes a victim row (paper §3.2, §5,
 * Figs. 4 and 7).
 *
 * An experiment follows the paper's template:
 *  1. (optional) reset the TRR mechanism's internal state by issuing
 *     REFs at the default rate while hammering many dummy rows
 *     (Requirement 4);
 *  2. initialize the aggressor rows and the RS-provided victim rows
 *     with their configured data patterns;
 *  3. wait T/2 with refresh disabled;
 *  4. for each round: hammer the aggressor rows (interleaved or
 *     cascaded; Requirements 1-2) plus optional dummy rows, then issue
 *     the configured number of REF commands (Requirement 3);
 *  5. wait another T/2;
 *  6. read the profiled rows: a row with no bit flips must have been
 *     refreshed (TRR-induced or regular) during step 4.
 */

#ifndef UTRR_CORE_TRR_ANALYZER_HH
#define UTRR_CORE_TRR_ANALYZER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "core/mapping_reveng.hh"
#include "core/row_group.hh"
#include "dram/data_pattern.hh"
#include "obs/report.hh"
#include "softmc/host.hh"

namespace utrr
{

/** §5.2: the order in which multiple aggressor rows are hammered. */
enum class HammerMode
{
    kInterleaved, // one ACT per aggressor per pass
    kCascaded,    // each aggressor hammered to completion in turn
};

/** How to reset TRR internal state before an experiment. */
enum class TrrResetMode
{
    kNone,        // keep state (needed for REF-periodicity analyses)
    kDummyHammer, // the paper's black-box dummy-hammering procedure
};

/** One aggressor row and its hammer count (Requirement 1). */
struct AggressorSpec
{
    /** Physical row (groups are laid out physically). */
    Row physRow = kInvalidRow;
    int hammers = 0;
};

/**
 * Experiment configuration (the "experiment configuration" of Fig. 3).
 */
struct TrrExperimentConfig
{
    std::vector<AggressorSpec> aggressors;
    HammerMode mode = HammerMode::kInterleaved;

    /** Rounds of (hammer + REF); hammer counts apply per round. */
    int rounds = 1;
    /** REF commands issued at the end of each round. */
    int refsPerRound = 1;

    /** Dummy rows hammered in addition to aggressors (Requirement 2). */
    int dummyRowCount = 0;
    int dummyHammers = 0;
    /** Hammer dummies before (true) or after (false) the aggressors. */
    bool dummiesFirst = false;

    TrrResetMode reset = TrrResetMode::kDummyHammer;
    /** REFs issued at the default rate during the reset dance. */
    int resetRefs = 768;
    /** Dummy rows cycled during reset and ACTs issued between REFs. */
    int resetDummies = 32;
    int resetHammersPerRefi = 16;

    /** Victim init pattern; must match the RS profiling pattern. */
    DataPattern victimPattern = DataPattern::allOnes();
    DataPattern aggressorPattern = DataPattern::allZeros();
    /** Initialize aggressors before victims (ACT order matters for
     *  window-based TRR). */
    bool initAggressorsFirst = true;
    /**
     * Skip aggressor initialization entirely. Hammered rows restore
     * their own charge on every ACT, so re-initialization is only
     * needed when the aggressor data pattern must change; skipping it
     * keeps init ACTs out of ACT-order-sensitive analyses.
     */
    bool skipAggressorInit = false;

    /**
     * Self-healing: read-back votes per profiled row. When a fault
     * injector with any active rate is attached to the host, each
     * profiled row is read this many times and the refreshed/flip
     * verdict is taken by majority, so transient read-back bit noise
     * cannot masquerade as a (missed) TRR refresh. Without an active
     * injector a single read is issued — keeping fault-free runs
     * bit-identical to the baseline.
     */
    int readVotes = 3;
};

/**
 * Outcome of one experiment.
 */
struct TrrExperimentResult
{
    /** Per profiled row (group order): retention flips observed. */
    std::vector<int> flips;
    /** Per profiled row: true if the row must have been refreshed. */
    std::vector<bool> refreshed;
    /** Host REF-command count just before the first round's REFs. */
    std::uint64_t refsBefore = 0;
    /** Host REF-command count after the last round's REFs. */
    std::uint64_t refsAfter = 0;

    /** True if at least one profiled row was refreshed. */
    bool anyRefreshed() const;
    /** Bitmask of refreshed rows (LSB = first profiled row). */
    std::uint64_t refreshedMask() const;
};

/** Cumulative command counts sampled at the end of one hammer round. */
struct RoundRecord
{
    /** Host REF-command count after this round's REF burst. */
    std::uint64_t refsAfter = 0;
    /** Host ACT count after this round's hammering. */
    std::uint64_t actsAfter = 0;
    /** Simulated time after this round (ns). */
    Time simAfter = 0;
};

/** Outcome of an experiment spanning several row groups at once. */
struct TrrMultiResult
{
    /** Per-group results (flips/refreshed per profiled row). */
    std::vector<TrrExperimentResult> perGroup;
    std::uint64_t refsBefore = 0;
    std::uint64_t refsAfter = 0;
    /** One record per hammer round, in round order. */
    std::vector<RoundRecord> rounds;
    /** Wall-clock time of the experiment (ms). */
    double wallMs = 0.0;
    /** Simulated time the experiment occupied (ns). */
    Time simNs = 0;

    /** True if any row of group @p g was refreshed. */
    bool groupRefreshed(std::size_t g) const
    {
        return perGroup.at(g).anyRefreshed();
    }
};

/**
 * The TRR Analyzer.
 */
class TrrAnalyzer
{
  public:
    TrrAnalyzer(SoftMcHost &host, DiscoveredMapping mapping);

    /** Run one experiment against a row group. */
    TrrExperimentResult runExperiment(const RowGroup &group,
                                      const TrrExperimentConfig &config);

    /**
     * Run one experiment observing several groups simultaneously (all
     * must share the same retention time; Row Scout guarantees this).
     * Aggressors in @p config may reference any group's gap rows.
     */
    TrrMultiResult runExperimentMulti(const std::vector<RowGroup> &groups,
                                      const TrrExperimentConfig &config);

    /**
     * §5.3 pre-check: verify (with refresh disabled) that the given
     * aggressors actually hammer the group's profiled rows, i.e. no row
     * involved was remapped by post-manufacturing repair.
     */
    bool verifyAdjacency(const RowGroup &group,
                         const std::vector<AggressorSpec> &aggressors,
                         int hammers = 300'000);

    /**
     * Adjacency verification with hammer-count escalation: modules with
     * very high HC_first need more than the paper's 300K single-sided
     * activations before flips appear in the simulated cells.
     */
    bool verifyAdjacencyEscalating(
        const RowGroup &group,
        const std::vector<AggressorSpec> &aggressors,
        int max_hammers = 8 * 1024 * 1024);

    /**
     * The black-box TRR-state reset dance (Requirement 4): REFs at the
     * default rate while round-robin hammering dummy rows at least 100
     * rows away from every row in @p avoid_phys.
     */
    void resetTrrState(Bank bank, const std::vector<Row> &avoid_phys,
                       int refs, int dummies, int hammers_per_refi);

    /**
     * Pick @p count dummy logical rows in @p bank at least 100 physical
     * rows away from every entry of @p avoid_phys.
     */
    std::vector<Row> pickDummyRows(Bank bank,
                                   const std::vector<Row> &avoid_phys,
                                   int count) const;

    const DiscoveredMapping &discoveredMapping() const { return mapping; }

    /**
     * Build a structured report from a finished experiment: config
     * (aggressors, mode, rounds, REFs per round), per-round command
     * counts, per-group flip/refresh vectors, module seed and timing.
     * Attach a metrics snapshot yourself if one is wanted.
     */
    ExperimentReport makeReport(const TrrExperimentConfig &config,
                                const TrrMultiResult &result) const;

  private:
    std::vector<Row> avoidListOf(
        const RowGroup &group,
        const std::vector<AggressorSpec> &aggressors) const;

    SoftMcHost &host;
    DiscoveredMapping mapping;
};

} // namespace utrr

#endif // UTRR_CORE_TRR_ANALYZER_HH
