#include "core/row_group.hh"

#include "common/logging.hh"

namespace utrr
{

RowGroupLayout
RowGroupLayout::parse(const std::string &text)
{
    RowGroupLayout layout;
    layout.layoutText = text;
    UTRR_ASSERT(!text.empty(), "empty layout");
    int offset = 0;
    for (char c : text) {
        switch (c) {
          case 'R':
          case 'r':
            layout.rOffsets.push_back(offset);
            ++offset;
            break;
          case '-':
            layout.gaps.push_back(offset);
            ++offset;
            break;
          default:
            fatal(logFmt("bad layout character '", c, "' in \"", text,
                         "\"; use 'R' and '-'"));
        }
    }
    layout.spanRows = offset;
    UTRR_ASSERT(!layout.rOffsets.empty(),
                "layout needs at least one profiled row");
    return layout;
}

std::vector<Row>
RowGroup::gapPhysRows() const
{
    std::vector<Row> rows;
    for (int gap : layout.gapOffsets())
        rows.push_back(basePhysRow + gap);
    return rows;
}

} // namespace utrr
