/**
 * @file
 * Black-box reverse engineering of the logical-to-physical row mapping
 * (paper §5.3).
 *
 * A TRR mechanism refreshes rows that are *physically* adjacent to a
 * detected aggressor, so every U-TRR experiment needs the decoder
 * scramble and any repair remaps uncovered first. The procedure follows
 * the paper: disable refresh, hammer a probe row a large number of
 * times, and observe which logical rows develop RowHammer bit flips —
 * those are the probe's physical neighbours. Classifying the observed
 * adjacency against candidate decoder schemes yields the mapping;
 * probes whose neighbourhood shows no flips at all are flagged as
 * anomalies (likely victims of post-manufacturing repair remapping).
 */

#ifndef UTRR_CORE_MAPPING_REVENG_HH
#define UTRR_CORE_MAPPING_REVENG_HH

#include <set>
#include <string>
#include <vector>

#include "common/types.hh"
#include "dram/mapping.hh"
#include "softmc/host.hh"

namespace utrr
{

/**
 * The result of mapping reverse engineering: a believed scramble scheme
 * plus the set of anomalous (probably remapped) logical rows.
 */
class DiscoveredMapping
{
  public:
    DiscoveredMapping() = default;
    DiscoveredMapping(RowScramble scheme, Row rows,
                      std::set<Row> anomalies = {});

    /** Identity mapping over @p rows rows (for tests/uninitialized). */
    static DiscoveredMapping identity(Row rows);

    /** Believed physical location of a logical row. */
    Row toPhysical(Row logical) const;

    /** Believed logical address selecting a physical row. */
    Row toLogical(Row physical) const;

    RowScramble scheme() const { return scrambleScheme; }
    Row rows() const { return rowCount; }

    /** Logical rows that did not behave per the scheme. */
    const std::set<Row> &anomalies() const { return anomalousRows; }
    bool isAnomalous(Row logical) const
    {
        return anomalousRows.count(logical) != 0;
    }

  private:
    RowScramble scrambleScheme = RowScramble::kSequential;
    Row rowCount = 0;
    std::set<Row> anomalousRows;
};

/**
 * Runs the §5.3 discovery procedure on one bank.
 */
class MappingReveng
{
  public:
    struct Config
    {
        Bank bank = 0;
        /** Number of probe rows to hammer. */
        int probes = 12;
        /** First probe row and spacing between probes. */
        Row probeStart = 64;
        Row probeStride = 997;
        /** Neighbourhood radius inspected for flips. */
        int windowRadius = 4;
        /** Hammer-count escalation: start, factor, max. */
        int hammersStart = 128 * 1024;
        int hammersMax = 8 * 1024 * 1024;
    };

    MappingReveng(SoftMcHost &host, Config config);

    /** Result of one probe. */
    struct ProbeResult
    {
        Row probeRow = kInvalidRow;
        /** Logical rows (within the window) that developed flips. */
        std::vector<Row> flippedNeighbours;
        /** Hammers needed before the first flip appeared. */
        int hammersUsed = 0;
    };

    /** Hammer one probe row and report which neighbours flipped. */
    ProbeResult probe(Row logical_row);

    /** Full discovery: probe, classify, flag anomalies. */
    DiscoveredMapping discover();

  private:
    /** Fraction of probes a scheme's prediction explains. */
    double scoreScheme(RowScramble scheme,
                       const std::vector<ProbeResult> &results) const;

    SoftMcHost &host;
    Config cfg;
};

} // namespace utrr

#endif // UTRR_CORE_MAPPING_REVENG_HH
