/**
 * @file
 * Row Scout (RS): DRAM retention-time profiler (paper §4, Fig. 6).
 *
 * RS finds row groups that satisfy the TRR Analyzer's requirements:
 *  - profiled rows hold their data for T/2 but reliably fail after T
 *    (so a missing failure can only mean a refresh occurred);
 *  - rows within a group share the same nominal retention time T;
 *  - rows sit at the physical distances prescribed by the row-group
 *    layout (e.g. "R-R" leaves one aggressor slot between them);
 *  - retention is *consistent*: RS re-validates every candidate many
 *    times (1000x in the paper) to reject rows affected by Variable
 *    Retention Time.
 *
 * The algorithm mirrors Fig. 6: scan the configured row range with an
 * escalating retention target T, form candidate groups matching the
 * layout, validate their consistency, and escalate T until enough
 * groups are found.
 */

#ifndef UTRR_CORE_ROW_SCOUT_HH
#define UTRR_CORE_ROW_SCOUT_HH

#include <map>
#include <set>
#include <vector>

#include "common/types.hh"
#include "core/mapping_reveng.hh"
#include "core/row_group.hh"
#include "dram/data_pattern.hh"
#include "obs/report.hh"
#include "softmc/host.hh"

namespace utrr
{

/**
 * Row Scout profiling configuration (the "profiling configuration" box
 * of Fig. 3).
 */
struct RowScoutConfig
{
    Bank bank = 0;
    /** Logical row range [rowStart, rowEnd) to search. */
    Row rowStart = 0;
    Row rowEnd = 8 * 1024;
    /** Desired group layout. */
    RowGroupLayout layout = RowGroupLayout::parse("R-R");
    /** Number of groups to find. */
    int groupCount = 1;
    /** Data pattern used for profiling (and later by TRR-A). */
    DataPattern pattern = DataPattern::allOnes();
    /** Initial retention target and escalation step. */
    Time initialT = 200 * kNsPerMs;
    Time stepT = 100 * kNsPerMs;
    Time maxT = 2'000 * kNsPerMs;
    /**
     * Retention-consistency validations per candidate row. The paper
     * uses 1000; tests lower it for speed.
     */
    int consistencyChecks = 1000;
    /** Minimum physical distance between two selected groups. */
    int groupSeparation = 16;
    /**
     * Self-healing: post-acceptance stability re-validations per
     * profiled row (0 disables the pass). Under fault injection a row
     * can flip to a VRT high-retention mode *after* acceptance; the
     * re-validation pass catches it, evicts the group and scouts a
     * replacement at the same retention T.
     */
    int revalidateChecks = 0;
    /** Bounded retries: max group evictions per re-validation pass. */
    int maxEvictions = 8;
    /**
     * Physical rows never to select (e.g. rows burned by a previous
     * scout whose groups produced degenerate analyzer results).
     */
    std::vector<Row> excludePhys;
};

/**
 * Row Scout.
 */
class RowScout
{
  public:
    RowScout(SoftMcHost &host, DiscoveredMapping mapping,
             RowScoutConfig config);

    /**
     * Run the Fig. 6 search. Returns the found groups (possibly fewer
     * than requested if maxT is reached; a warning is emitted then).
     */
    std::vector<RowGroup> scout();

    /**
     * Scan the configured range once: rows that fail within @p t.
     * Returned map: logical row -> observed flip count.
     */
    std::map<Row, int> scanFailingRows(Time t);

    /**
     * Validate that a row holds data for T/2 and fails after T,
     * @p checks times (the VRT filter).
     */
    bool validateRetention(Row logical_row, Time t, int checks);

    /** Number of consistency validations performed so far. */
    std::uint64_t validationsRun() const { return validations; }

    /**
     * Self-healing pass (also run by scout() when revalidateChecks > 0):
     * re-validate every group's rows against their profiled retention;
     * evict groups with a row that no longer holds-then-fails (VRT mode
     * flip, retention drift), permanently burn the offending rows, and
     * scout replacement groups at the same retention T. Bounded by
     * maxEvictions; may return fewer groups than requested.
     */
    std::vector<RowGroup> revalidateAndReplace(std::vector<RowGroup> groups);

    /** Groups evicted by re-validation so far. */
    std::uint64_t evictionsPerformed() const { return evictions; }

    /** Replacement groups found after evictions so far. */
    std::uint64_t replacementsFound() const { return replacements; }

    /**
     * Build a structured report of a finished scout: profiling config,
     * groups found (base rows, layout, shared retention T) and the
     * validation effort spent.
     */
    ExperimentReport makeReport(const std::vector<RowGroup> &groups) const;

  private:
    std::vector<RowGroup> formCandidateGroups(
        const std::map<Row, Time> &first_fail, Time t) const;
    std::vector<RowGroup> scoutReplacements(
        const std::vector<RowGroup> &existing, Time t, int needed);

    SoftMcHost &host;
    DiscoveredMapping mapping;
    RowScoutConfig cfg;
    std::uint64_t validations = 0;
    std::uint64_t evictions = 0;
    std::uint64_t replacements = 0;
    /** Physical rows evicted by re-validation; never selected again. */
    std::set<Row> burnedPhys;
};

} // namespace utrr

#endif // UTRR_CORE_ROW_SCOUT_HH
