/**
 * @file
 * The production simulator behind the DeviceBackend seam.
 *
 * SimBackend pairs a DramModule with a SoftMcHost. It can own the pair
 * (standalone use: conformance tests, oracles, recording sessions) or
 * borrow one that already exists (the campaign runner's per-job
 * module/host, which job bodies also drive through the immediate host
 * API). Snapshots combine DramModule::snapshot() with
 * SoftMcHost::snapshotState(), so a token rewinds the full device —
 * bank state, TRR mechanism, refresh-engine position, clock, command
 * counters and trace — and fork() stamps a snapshot into a freshly
 * built module, the profile-reuse primitive of DESIGN.md §16.
 */

#ifndef UTRR_CORE_SIM_BACKEND_HH
#define UTRR_CORE_SIM_BACKEND_HH

#include <map>
#include <memory>

#include "core/device_backend.hh"
#include "dram/module.hh"
#include "softmc/host.hh"

namespace utrr
{

/** A full-device snapshot: module and host state taken together. */
struct DeviceSnapshot
{
    DramModule::Snapshot module;
    SoftMcHost::Snapshot host;
};

class SimBackend : public DeviceBackend
{
  public:
    /** Owning: build a fresh module + host. */
    SimBackend(const ModuleSpec &spec, std::uint64_t seed,
               const RetentionModelConfig *retention_overrides = nullptr,
               Timing timing = {});

    /** Borrowing: wrap an existing pair (not owned; must outlive the
     *  backend). @p host must drive @p module. */
    SimBackend(DramModule &module, SoftMcHost &host);

    std::string name() const override { return "sim"; }
    const ModuleSpec &spec() const override { return mod->spec(); }
    BackendResult execute(const Program &program) override;
    Time now() const override { return mc->now(); }
    BackendAccounting accounting() const override;
    std::vector<TraceEvent> traceEvents() const override
    {
        return mc->trace().events();
    }

    bool supportsSnapshot() const override { return true; }
    std::uint64_t snapshot() override;
    void restore(std::uint64_t token) override;
    void dropSnapshot(std::uint64_t token) override;

    /**
     * Capture the device state as a standalone snapshot (not tracked
     * by a token). Restorable onto this backend or onto any SimBackend
     * built from the same (spec, seed) — the fork path.
     */
    DeviceSnapshot captureDevice() const;

    /** Restore a standalone snapshot (see DramModule::restore). */
    void restoreDevice(const DeviceSnapshot &snap);

    /**
     * Fork: a new owning SimBackend over a fresh module built from
     * this backend's (spec, seed), rewound to @p snap. Mutating the
     * fork never perturbs this backend (and vice versa) — row contents
     * are shared copy-on-write, everything else is per-instance.
     */
    std::unique_ptr<SimBackend> fork(const DeviceSnapshot &snap) const;

    /**
     * Select the execution tier (DESIGN.md §17): kCompiled lowers each
     * program through ProgramCompiler and batches hammer bursts,
     * kInterpreted runs one command at a time. Both are bit-identical;
     * new backends start in SoftMcHost::defaultExecMode().
     */
    void setExecMode(ExecMode mode) { mc->setExecMode(mode); }
    ExecMode execMode() const { return mc->execMode(); }

    // --- escape hatch ---------------------------------------------------
    // The immediate host API (hammer, refBurst, multi-bank timing)
    // cannot be expressed as a serial Program; harnesses that need it
    // reach through here. Conformance applies to the Program surface.
    DramModule &module() { return *mod; }
    SoftMcHost &host() { return *mc; }
    const SoftMcHost &host() const { return *mc; }

  private:
    std::unique_ptr<DramModule> ownedModule;
    std::unique_ptr<SoftMcHost> ownedHost;
    DramModule *mod = nullptr;
    SoftMcHost *mc = nullptr;
    std::uint64_t masterSeed = 0;
    std::map<std::uint64_t, DeviceSnapshot> snapshots;
    std::uint64_t nextToken = 1;
};

} // namespace utrr

#endif // UTRR_CORE_SIM_BACKEND_HH
