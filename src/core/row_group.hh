/**
 * @file
 * Row groups: sets of retention-profiled rows at configurable relative
 * positions (paper §3.1, §4.1).
 *
 * A layout string uses 'R' for a retention-profiled row and '-' for a
 * one-row gap, e.g. "R-R" (two profiled rows around one aggressor
 * position) or "RRR-RRR" (three profiled rows on each side of an
 * aggressor position). Positions refer to *physical* row order; Row
 * Scout uses the reverse-engineered mapping to realize them.
 */

#ifndef UTRR_CORE_ROW_GROUP_HH
#define UTRR_CORE_ROW_GROUP_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace utrr
{

/**
 * Parsed row-group layout.
 */
class RowGroupLayout
{
  public:
    /** Parse a layout string such as "R-R" or "RRR-RRR". */
    static RowGroupLayout parse(const std::string &text);

    /** Offsets (in physical rows) of the profiled ('R') positions. */
    const std::vector<int> &profiledOffsets() const { return rOffsets; }

    /** Offsets of the gap ('-') positions (aggressor candidates). */
    const std::vector<int> &gapOffsets() const { return gaps; }

    /** Total number of row positions the layout spans. */
    int span() const { return spanRows; }

    /** Number of profiled rows. */
    int profiledRows() const
    {
        return static_cast<int>(rOffsets.size());
    }

    /** Original layout string. */
    const std::string &text() const { return layoutText; }

  private:
    std::string layoutText;
    std::vector<int> rOffsets;
    std::vector<int> gaps;
    int spanRows = 0;
};

/**
 * One retention-profiled row as reported by Row Scout.
 */
struct ProfiledRow
{
    Bank bank = 0;
    /** Host-visible (logical) row address. */
    Row logicalRow = kInvalidRow;
    /** Physical location according to the discovered mapping. */
    Row physRow = kInvalidRow;
    /** Nominal retention time T: the row holds data for T/2 but fails
     *  after T. */
    Time retention = 0;
};

/**
 * A group of profiled rows matching a layout, anchored at a base
 * physical row.
 */
struct RowGroup
{
    RowGroupLayout layout;
    Row basePhysRow = kInvalidRow;
    Bank bank = 0;
    /** Profiled rows, in layout order. */
    std::vector<ProfiledRow> rows;
    /** Nominal retention time shared by the group. */
    Time retention = 0;

    /** Physical rows of the gap positions (aggressor placements). */
    std::vector<Row> gapPhysRows() const;
};

} // namespace utrr

#endif // UTRR_CORE_ROW_GROUP_HH
